bench/bench_common.ml: Array Farm List Net Printf Sim String

bench/exp_ablation.ml: Bench_common Farm List Placement Printf Sim

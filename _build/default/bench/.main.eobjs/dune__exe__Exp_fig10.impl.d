bench/exp_fig10.ml: Bench_common Farm List Net Printf Runtime Sim

bench/exp_fig4.ml: Almanac Baselines Bench_common Farm Float List Net Printf Runtime Sim Tasks

bench/exp_fig5.ml: Array Bench_common Farm List Net Printf Runtime Sim

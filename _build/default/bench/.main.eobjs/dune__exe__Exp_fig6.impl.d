bench/exp_fig6.ml: Almanac Array Bench_common Farm List Net Option Printf Runtime Sim Tasks

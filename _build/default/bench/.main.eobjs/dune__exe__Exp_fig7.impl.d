bench/exp_fig7.ml: Array Bench_common Farm Farm_almanac Float Fun Hashtbl List Optim Placement Printf Sim Unix

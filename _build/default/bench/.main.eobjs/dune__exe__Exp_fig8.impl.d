bench/exp_fig8.ml: Bench_common Farm List Net Printf Runtime Sim

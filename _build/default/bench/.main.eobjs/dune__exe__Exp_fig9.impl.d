bench/exp_fig9.ml: Bench_common Farm List Net Printf Runtime Sim

bench/exp_table1.ml: Bench_common Farm List Printf Tasks

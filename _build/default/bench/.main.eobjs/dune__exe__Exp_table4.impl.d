bench/exp_table4.ml: Almanac Baselines Bench_common Farm List Printf Runtime Sim Tasks

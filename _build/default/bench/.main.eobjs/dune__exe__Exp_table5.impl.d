bench/exp_table5.ml: Bench_common

bench/main.ml: Array Exp_ablation Exp_fig10 Exp_fig4 Exp_fig5 Exp_fig6 Exp_fig7 Exp_fig8 Exp_fig9 Exp_table1 Exp_table4 Exp_table5 List Micro Printf String Sys

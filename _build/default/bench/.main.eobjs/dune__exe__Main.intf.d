bench/main.mli:

bench/micro.ml: Almanac Analyze Array Bechamel Bench_common Benchmark Farm Hashtbl Instance List Measure Optim Placement Printf Sim Staged Tasks Test Time Toolkit

(* Ablation of the Alg. 1 heuristic phases (DESIGN.md §ablations): utility
   after greedy placement only, after adding LP resource redistribution,
   and with migration enabled — on random instances with a non-trivial
   previous placement so migration has something to improve. *)

open Farm
module Model = Placement.Model
module Heuristic = Placement.Heuristic
module Rng = Sim.Rng

let run_one ~seed ~phases =
  let rng = Rng.create seed in
  let inst =
    Model.random_instance ~rng ~switches:40 ~tasks:8 ~seeds_per_task:25 ()
  in
  (* first optimize greedily to create a "current" placement, then re-run
     with a larger one of the phase combinations *)
  let base, _ = Heuristic.optimize ~phases:Heuristic.greedy_only inst in
  let inst = { inst with previous = base.assignments } in
  let p, stats = Heuristic.optimize ~phases inst in
  (p.utility, stats)

let run () =
  Bench_common.section "Ablation: heuristic phases (Alg. 1)";
  let seeds = [ 11; 22; 33; 44; 55 ] in
  let configs =
    [ ("greedy only", Heuristic.greedy_only);
      ("greedy + LP redistribution",
       { Heuristic.redistribute = true; migrate = false });
      ("greedy + migration",
       { Heuristic.redistribute = false; migrate = true });
      ("full (greedy + LP + migration)", Heuristic.all_phases) ]
  in
  let rows =
    List.map
      (fun (name, phases) ->
        let results = List.map (fun s -> run_one ~seed:s ~phases) seeds in
        let util = Bench_common.mean (List.map fst results) in
        let migr =
          Bench_common.mean
            (List.map (fun (_, (s : Heuristic.stats)) ->
                 float_of_int s.migrations) results)
        in
        let time =
          Bench_common.mean
            (List.map (fun (_, (s : Heuristic.stats)) -> s.runtime_s) results)
        in
        [ name; Printf.sprintf "%.0f" util; Printf.sprintf "%.1f" migr;
          Bench_common.fmt_time time ])
      configs
  in
  Bench_common.table [ "Phases"; "Utility"; "Migrations"; "Runtime" ] rows;
  Printf.printf
    "\n(LP redistribution is the main utility lever; migration helps when \
     the previous placement is stale)\n%!"

(* Fig. 10: soil <-> seed communication latency, shared ring buffer vs
   gRPC, seeds as threads vs processes.  Measured end to end through the
   soil pipeline: ASIC read issue -> seed handler (PCIe transfer plus the
   IPC hop); gRPC becomes the bottleneck as the seed count grows, the
   shared buffer stays flat — the finding that motivated FARM's custom
   transport (§V-A b). *)

open Farm
module Engine = Sim.Engine

let sim_seconds = 2.

let latency ~n ~scheme ~exec_model =
  let engine = Engine.create ~seed:7 () in
  let sw = Net.Switch_model.create ~id:0 ~ports:8 () in
  let config =
    { Runtime.Soil.default_config with scheme; exec_model }
  in
  let soil = Runtime.Soil.create ~config engine sw in
  (* n co-located seeds; one polls, the rest load the transport *)
  for i = 1 to n do
    Runtime.Soil.attach_seed soil i
  done;
  ignore
    (Runtime.Soil.subscribe_poll soil ~seed_id:1 ~subject:Net.Filter.All_ports
       ~period:0.005 (fun _ -> ()));
  Engine.run ~until:sim_seconds engine;
  Sim.Metrics.Histogram.mean (Runtime.Soil.delivery_latency soil)

let run () =
  Bench_common.section
    "Fig. 10: soil<->seed delivery latency by transport and execution model";
  let rows =
    List.map
      (fun n ->
        let sb_t = latency ~n ~scheme:Runtime.Ipc.Shared_buffer
            ~exec_model:Runtime.Ipc.Threads in
        let sb_p = latency ~n ~scheme:Runtime.Ipc.Shared_buffer
            ~exec_model:Runtime.Ipc.Processes in
        let g_t = latency ~n ~scheme:Runtime.Ipc.Grpc
            ~exec_model:Runtime.Ipc.Threads in
        let g_p = latency ~n ~scheme:Runtime.Ipc.Grpc
            ~exec_model:Runtime.Ipc.Processes in
        [ string_of_int n;
          Bench_common.fmt_time sb_t;
          Bench_common.fmt_time sb_p;
          Bench_common.fmt_time g_t;
          Bench_common.fmt_time g_p ])
      [ 10; 50; 100; 150 ]
  in
  Bench_common.table
    [ "Seeds"; "shm+threads"; "shm+procs"; "gRPC+threads"; "gRPC+procs" ]
    rows;
  Printf.printf
    "\n(paper: gRPC latency grows linearly with deployed seeds; the shared \
     buffer shows marginal overhead even at 150 seeds)\n%!"

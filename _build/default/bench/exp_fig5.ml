(* Fig. 5: switch CPU load of FARM vs sFlow while monitoring a growing
   number of flow rules at 10 ms accuracy.

   sFlow samples packets at a fixed rate and forwards them unprocessed —
   its switch CPU is flat in the number of flows.  A FARM seed polls and
   analyzes every monitored counter, so its cost grows with the rule
   count.  This experiment measures the runtime substrate (soil polling,
   PCIe post-processing, per-record analysis); the production system runs
   compiled seeds, so the Almanac interpreter is not part of the modelled
   cost. *)

open Farm
module Engine = Sim.Engine

let sim_seconds = 2.
let accuracy = 0.01  (* 10 ms *)
let analyze_per_record = 0.04e-6  (* seed-side HH check per counter *)

(* FARM: one seed polling [flows] hardware flow counters every 10 ms. *)
let farm_cpu ~flows =
  let engine = Engine.create ~seed:3 () in
  (* a wide ASIC: one counter per monitored rule; PCIe kept uncongested so
     the experiment isolates CPU (Fig. 8 covers the bus) *)
  let caps = { Bench_common.stress_caps with pcie_bps = 1e12 } in
  let sw = Net.Switch_model.create ~caps ~id:0 ~ports:flows () in
  let soil = Runtime.Soil.create engine sw in
  let _sub =
    Runtime.Soil.subscribe_poll soil ~seed_id:0 ~subject:Net.Filter.All_ports
      ~period:accuracy (fun stats ->
        (* the seed's analysis pass over every record *)
        Runtime.Soil.charge_cpu soil
          (analyze_per_record *. float_of_int (Array.length stats)))
  in
  Engine.run ~until:sim_seconds engine;
  Runtime.Soil.cpu_load soil ~window:sim_seconds

(* sFlow: fixed-rate packet sampling agent — flat in the flow count. *)
let sflow_cpu ~flows =
  ignore flows;
  let engine = Engine.create ~seed:3 () in
  let busy = ref 0. in
  (* the agent mirrors and exports ~3000 samples/s regardless of how many
     flows exist; each costs kernel mirror + UDP tx work *)
  let per_sample = 100e-6 and rate = 3000. in
  let _t =
    Engine.every engine ~period:(1. /. rate) (fun _ ->
        busy := !busy +. per_sample)
  in
  Engine.run ~until:sim_seconds engine;
  !busy /. sim_seconds

let run () =
  Bench_common.section
    "Fig. 5: switch CPU load vs monitored flow rules (10 ms accuracy)";
  let sweep = [ 100; 1_000; 10_000; 50_000; 100_000 ] in
  let rows =
    List.map
      (fun flows ->
        let f = farm_cpu ~flows in
        let s = sflow_cpu ~flows in
        [ string_of_int flows;
          Printf.sprintf "%.2f%%" (100. *. f);
          Printf.sprintf "%.2f%%" (100. *. s);
          (if f <= s then "FARM" else "sFlow") ])
      sweep
  in
  Bench_common.table
    [ "Flow rules"; "FARM CPU"; "sFlow CPU"; "lower" ]
    rows;
  Printf.printf
    "\n(paper: sFlow is flat; FARM grows with monitored rules yet stays \
     below sFlow over most of the range)\n%!"

(* Fig. 6: switch CPU load (and polling accuracy) as the number of
   co-located seeds grows, for the lightweight HH task and the
   CPU-intensive ML (SVR) task.

   (a) HH @ 1 ms   (b) HH @ 10 ms
   (c) ML @ 1 ms, 1 iteration  (d) ML @ 10 ms, 10 iterations

   Seeds run as threads of the soil with aggregation on (the production
   configuration); CPU load is offered busy time over the window (can
   exceed 100% on the 4-core management CPU), accuracy = the fraction of
   offered work the CPU can actually absorb. *)

open Farm
module Engine = Sim.Engine

let sim_seconds = 2.

let deploy_n_seeds ~entry ~n =
  let engine = Engine.create ~seed:4 () in
  let sw =
    Net.Switch_model.create ~caps:Bench_common.stress_caps ~id:0 ~ports:16 ()
  in
  let soil = Runtime.Soil.create engine sw in
  (* some traffic so polls return moving counters *)
  Net.Switch_model.add_flow sw ~time:0. ~flow_id:0
    ~tuple:{ Net.Flow.src = Net.Ipaddr.of_string "10.1.1.1";
             dst = Net.Ipaddr.of_string "10.2.1.1"; sport = 1; dport = 2;
             proto = Net.Flow.Tcp }
    ~rate:50_000. ~egress:1 ();
  let program =
    Almanac.Typecheck.check
      ~extra:entry.Tasks.Task_common.extra_sigs
      (Almanac.Parser.program entry.Tasks.Task_common.source)
  in
  let machine = (List.hd program.machines).mname in
  let m = List.hd program.machines in
  let externals =
    Option.value
      (List.assoc_opt machine entry.Tasks.Task_common.externals)
      ~default:[]
  in
  let bindings name =
    List.assoc_opt name externals
  in
  let polls =
    match Almanac.Analysis.polls ~bindings m with
    | Ok p -> p
    | Error e -> failwith e
  in
  let res = Array.make Almanac.Analysis.n_resources 100. in
  for i = 1 to n do
    ignore
      (Runtime.Seed_exec.deploy ~soil ~program ~machine ~externals
         ~builtins:entry.Tasks.Task_common.builtins ~resources:res ~polls
         ~send:(fun _ _ _ -> ())
         ~seed_id:i ())
  done;
  Engine.run ~until:sim_seconds engine;
  let load = Runtime.Soil.cpu_load soil ~window:sim_seconds in
  let acc = Runtime.Soil.cpu_accuracy soil ~window:sim_seconds in
  (load, acc)

let series ?(partition = 1) title entry counts =
  Bench_common.subsection title;
  let rows =
    List.map
      (fun n ->
        (* Fig. 6d partitions the task: n logical seeds run as n/partition
           physical seeds, each doing [partition] iterations per poll *)
        let load, acc = deploy_n_seeds ~entry ~n:(n / partition) in
        [ string_of_int n;
          Printf.sprintf "%.0f%%" (100. *. load);
          Printf.sprintf "%.0f%%" (100. *. acc) ])
      counts
  in
  Bench_common.table [ "Seeds"; "CPU load"; "Polling accuracy" ] rows

let run () =
  Bench_common.section
    "Fig. 6: CPU load of FARM for HH and ML tasks vs co-located seeds";
  series "(a) HH task, 1 ms accuracy"
    (Tasks.Hh.hh_at ~accuracy:0.001)
    [ 20; 40; 60; 80; 100 ];
  series "(b) HH task, 10 ms accuracy"
    (Tasks.Hh.hh_at ~accuracy:0.01)
    [ 20; 40; 60; 80; 100 ];
  series "(c) ML task, 1 ms accuracy, 1 iteration"
    (Tasks.Infra_tasks.ml_task ~iterations:1 ~accuracy:0.001)
    [ 10; 20; 30; 40; 50 ];
  series ~partition:10 "(d) ML task, 10 ms accuracy, 10 iterations (n/10 partitions)"
    (Tasks.Infra_tasks.ml_task ~iterations:10 ~accuracy:0.01)
    [ 50; 100; 150; 200; 250 ];
  Printf.printf
    "\n(paper: HH scales to >100 seeds; ML @1ms overloads the CPU around 50 \
     seeds (~350%%), partitioned ML @10ms scales to 250 seeds)\n%!"

(* Fig. 7: global seed placement optimization at scale — monitoring
   utility (a) and runtime (b) of FARM's heuristic vs the MILP solved by a
   commodity-style branch-and-bound with a timeout ("Gurobi" role).

   1040 switches, up to 10200 seeds from 10 task profiles, randomized
   demands per run.  The 1 s-budget MILP starts from a naive first-fit
   incumbent; the long-budget MILP is MIP-started from the heuristic
   solution (standard warm-start practice).  At these sizes the dense root
   relaxation exceeds any reasonable budget — the same scalability wall
   the paper attributes to the MILP approach — so each budget returns its
   best incumbent. *)

open Farm
module Model = Placement.Model
module Heuristic = Placement.Heuristic
module Milp_formulation = Placement.Milp_formulation
module Rng = Sim.Rng

let switches = 1040
let runs = 3
let gurobi_short = 1.0
let gurobi_long = 20.0  (* stands in for the paper's 10 min budget *)

(* naive first-fit incumbent: what a solver's presolve heuristic finds
   immediately — minimal allocations, first candidate with room *)
let naive_placement (inst : Model.instance) =
  let remaining = Hashtbl.create 64 in
  List.iter
    (fun (c : Model.switch_caps) ->
      Hashtbl.replace remaining c.node (Array.copy c.avail))
    inst.switches;
  let assignments = ref [] in
  List.iter
    (fun (t, seeds) ->
      ignore t;
      let placed =
        List.filter_map
          (fun (s : Model.seed_spec) ->
            match s.branches with
            | [] -> None
            | branch :: _ ->
                (* minimal feasible point: constraint lower bounds *)
                let res = Array.make Farm_almanac.Analysis.n_resources 0. in
                List.iter
                  (fun c ->
                    (* c is lin >= 0 with single-variable constraints in
                       the random instances: x_r - k >= 0 *)
                    List.iter
                      (fun (v, coef) ->
                        if coef > 0. then
                          res.(v) <-
                            Float.max res.(v)
                              (-.Optim.Lin_expr.constant c /. coef))
                      (Optim.Lin_expr.coeffs c))
                  branch.constraints;
                let fits n =
                  match Hashtbl.find_opt remaining n with
                  | None -> false
                  | Some rem ->
                      Array.for_all Fun.id
                        (Array.mapi (fun r v -> res.(r) <= v) rem)
                in
                (match List.find_opt fits s.candidates with
                | None -> None
                | Some n ->
                    let rem = Hashtbl.find remaining n in
                    Array.iteri (fun r _ -> rem.(r) <- rem.(r) -. res.(r)) res;
                    Some { Model.a_seed = s.seed_id; a_node = n; a_branch = 0;
                           a_res = res }))
          seeds
      in
      (* C1: all-or-nothing *)
      if List.length placed = List.length seeds then
        assignments := placed @ !assignments)
    (Model.tasks inst);
  let assignments = !assignments in
  { Model.assignments; utility = Model.total_utility inst assignments }

let one_run ~seeds ~seed =
  let rng = Rng.create seed in
  let inst =
    Model.random_instance ~rng ~switches ~tasks:10
      ~seeds_per_task:(seeds / 10) ()
  in
  let t0 = Unix.gettimeofday () in
  let farm, _stats = Heuristic.optimize inst in
  let farm_time = Unix.gettimeofday () -. t0 in
  let naive = naive_placement inst in
  let short =
    Milp_formulation.solve ~timeout:gurobi_short ~warm_start:naive inst
  in
  let long =
    Milp_formulation.solve ~timeout:gurobi_long ~warm_start:farm inst
  in
  ( (farm.utility, farm_time),
    (short.placement.utility, short.runtime_s),
    (long.placement.utility, long.runtime_s) )

let run () =
  Bench_common.section
    (Printf.sprintf
       "Fig. 7: placement utility and runtime, %d switches, %d runs/point"
       switches runs);
  let sweep = [ 1000; 4000; 7000; 10200 ] in
  let rows =
    List.map
      (fun seeds ->
        let results =
          List.init runs (fun i -> one_run ~seeds ~seed:(100 + i))
        in
        let pick f = Bench_common.mean (List.map f results) in
        let fu = pick (fun ((u, _), _, _) -> u) in
        let ft = pick (fun ((_, t), _, _) -> t) in
        let su = pick (fun (_, (u, _), _) -> u) in
        let st = pick (fun (_, (_, t), _) -> t) in
        let lu = pick (fun (_, _, (u, _)) -> u) in
        let lt = pick (fun (_, _, (_, t)) -> t) in
        [ string_of_int seeds;
          Printf.sprintf "%.0f" fu; Bench_common.fmt_time ft;
          Printf.sprintf "%.0f" su; Bench_common.fmt_time st;
          Printf.sprintf "%.0f" lu; Bench_common.fmt_time lt;
          Printf.sprintf "%.2f" (fu /. Float.max lu 1e-9) ])
      sweep
  in
  Bench_common.table
    [ "Seeds"; "FARM util"; "FARM time"; "MILP-1s util"; "MILP-1s time";
      "MILP-long util"; "MILP-long time"; "FARM/long" ]
    rows;
  Printf.printf
    "\n(paper: FARM matches the 10-min MILP's utility at the 1-s MILP's \
     speed)\n%!"

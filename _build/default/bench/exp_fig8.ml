(* Fig. 8: the PCIe bus between the management CPU and the ASIC congests
   at 8 Mbit/s of polling traffic while the ASIC switches 100 Gbit/s — a
   1:12500 ratio.  We sweep the offered polling demand and report achieved
   throughput and drop rate, with and without the soil's poll
   aggregation. *)

open Farm
module Engine = Sim.Engine

let sim_seconds = 3.

(* [n] seeds each polling at [rate] polls/s; distinct subjects (no
   sharing) unless [shared]. *)
let offered_vs_achieved ~n ~rate ~shared ~aggregate =
  let engine = Engine.create ~seed:5 () in
  let sw = Net.Switch_model.create ~id:0 ~ports:8 () in
  let config = { Runtime.Soil.default_config with aggregate_polls = aggregate } in
  let soil = Runtime.Soil.create ~config engine sw in
  for i = 1 to n do
    let subject =
      if shared then Net.Filter.All_ports else Net.Filter.Port_counter i
    in
    ignore
      (Runtime.Soil.subscribe_poll soil ~seed_id:i ~subject
         ~period:(1. /. rate) (fun _ -> ()))
  done;
  Engine.run ~until:sim_seconds engine;
  let stats = Runtime.Soil.poll_stats soil in
  let achieved_bps = stats.pcie_bytes *. 8. /. sim_seconds in
  let drop =
    if stats.requested = 0 then 0.
    else float_of_int stats.dropped /. float_of_int stats.requested
  in
  (achieved_bps, drop)

let run () =
  Bench_common.section
    "Fig. 8: PCIe polling bottleneck (8 Mb/s bus vs 100 Gb/s ASIC)";
  let record_bits = 16. *. 8. in
  Bench_common.subsection "distinct polling subjects (no aggregation possible)";
  let rows =
    List.map
      (fun n ->
        let rate = 2000. in
        let offered = float_of_int n *. rate *. record_bits in
        let achieved, drop =
          offered_vs_achieved ~n ~rate ~shared:false ~aggregate:true
        in
        [ string_of_int n;
          Bench_common.fmt_bits_rate offered;
          Bench_common.fmt_bits_rate achieved;
          Printf.sprintf "%.0f%%" (100. *. drop) ])
      [ 5; 15; 30; 60; 120 ]
  in
  Bench_common.table
    [ "Seeds (2k polls/s each)"; "Offered"; "Achieved"; "Dropped" ]
    rows;
  Bench_common.subsection
    "ablation: same demand on a shared subject (soil aggregation)";
  let rows =
    List.map
      (fun n ->
        let rate = 2000. in
        let achieved, drop =
          offered_vs_achieved ~n ~rate ~shared:true ~aggregate:true
        in
        [ string_of_int n;
          Bench_common.fmt_bits_rate achieved;
          Printf.sprintf "%.0f%%" (100. *. drop) ])
      [ 5; 15; 30; 60; 120 ]
  in
  Bench_common.table [ "Seeds"; "PCIe traffic"; "Dropped" ] rows;
  Printf.printf
    "\n(paper: polling congests the 8 Mb/s PCIe bus while the ASIC has \
     100 Gb/s; aggregation is the cure)\n%!"

(* Table I: the 16 use cases (17 rows) implemented in Almanac, with lines
   of code for the seed programs and harvester logic. *)

open Farm

let run () =
  Bench_common.section
    "Table I: network monitoring and attack examples implemented in Almanac";
  let topo = Bench_common.paper_topology () in
  let compile_status = Tasks.Catalog.compile_all topo in
  let rows =
    List.map
      (fun (e : Tasks.Task_common.entry) ->
        let status =
          match List.assoc_opt e.name compile_status with
          | Some (Ok ()) -> "ok"
          | Some (Error m) -> "FAIL: " ^ m
          | None -> "?"
        in
        [ e.name;
          string_of_int (Tasks.Catalog.table1_loc e);
          string_of_int e.harvester_loc;
          status ])
      Tasks.Catalog.all
  in
  Bench_common.table
    [ "Use case"; "Seed LoC"; "Harv. LoC"; "compiles" ]
    rows;
  Printf.printf
    "\n(inherited HHH counts only its delta over the HH machine, as in the \
     paper)\n%!"

(* Tab. 4: time to recognize a heavy hitter — FARM vs the specialized
   (Planck, Helios) and generic (sFlow, Sonata) systems.  Each system runs
   the same scenario (background traffic, elephant flow onset) on the same
   20-switch fabric; the detection pipeline delays are what differ. *)

open Farm
module Engine = Sim.Engine

let trials = 5

(* FARM: deploy the catalog HH task; detection is the seed's local state
   transition, observed at the harvester one control-latency later. *)
let farm_detect ~seed =
  let topo = Bench_common.paper_topology () in
  let w = Bench_common.hh_scenario ~seed topo in
  let seeder = Runtime.Seeder.create w.engine w.fabric in
  let entry = Tasks.Catalog.find "heavy-hitter" in
  let entry =
    { entry with
      externals =
        [ ("HH",
           [ ("threshold", Almanac.Value.Num Bench_common.hh_threshold);
             ("interval", Almanac.Value.Num 1e-3) ]) ] }
  in
  let task =
    match Runtime.Seeder.deploy seeder (Tasks.Task_common.to_task_spec entry) with
    | Ok t -> t
    | Error m -> failwith ("table4: FARM deploy failed: " ^ m)
  in
  Engine.run ~until:(w.onset +. 2.) w.engine;
  let reports =
    List.rev (Runtime.Harvester.received (Runtime.Seeder.harvester task))
  in
  match List.find_opt (fun (t, _, _) -> t >= w.onset) reports with
  | Some (t, _, _) ->
      (* subtract the report's network latency: recognition is local *)
      Some (t -. Runtime.Seeder.default_config.control_latency -. w.onset)
  | None -> None

let baseline_detect ~seed deploy detect_after shutdown =
  let topo = Bench_common.paper_topology () in
  let w = Bench_common.hh_scenario ~seed topo in
  let t = deploy w.engine w.fabric in
  Engine.run ~until:(w.onset +. 10.) w.engine;
  let result =
    match detect_after t w.onset with
    | Some (d, _, _) -> Some (d -. w.onset)
    | None -> None
  in
  shutdown t;
  result

let sflow_detect ~seed ~period =
  baseline_detect ~seed
    (fun engine fabric ->
      Baselines.Sflow.deploy
        ~config:{ Baselines.Sflow.default_config with poll_period = period }
        engine fabric ~hh_threshold:Bench_common.hh_threshold)
    (fun t onset ->
      Baselines.Collector.first_detection_after (Baselines.Sflow.collector t)
        onset)
    Baselines.Sflow.shutdown

let sonata_detect ~seed =
  baseline_detect ~seed
    (fun engine fabric ->
      Baselines.Sonata.deploy engine fabric
        ~hh_threshold:Bench_common.hh_threshold)
    Baselines.Sonata.first_detection_after Baselines.Sonata.shutdown

let planck_detect ~seed =
  baseline_detect ~seed
    (fun engine fabric ->
      Baselines.Planck.deploy engine fabric
        ~hh_threshold:Bench_common.hh_threshold)
    Baselines.Planck.first_detection_after Baselines.Planck.shutdown

let helios_detect ~seed =
  baseline_detect ~seed
    (fun engine fabric ->
      Baselines.Helios.deploy engine fabric
        ~hh_threshold:Bench_common.hh_threshold)
    Baselines.Helios.first_detection_after Baselines.Helios.shutdown

let avg detect =
  let ds =
    List.filter_map (fun seed -> detect ~seed) (List.init trials (fun i -> i + 1))
  in
  if ds = [] then None else Some (Bench_common.mean ds)

let run () =
  Bench_common.section
    "Tab. 4: heavy-hitter detection time (mean over trials)";
  let results =
    [ ("FARM", "G", avg farm_detect, "1 ms");
      ("Planck", "S", avg planck_detect, "4 ms");
      ("Helios", "S", avg helios_detect, "77 ms");
      ("sFlow (100 ms)", "G", avg (sflow_detect ~period:0.1), "100 ms");
      ("Sonata", "G", avg sonata_detect, "3427 ms") ]
  in
  let farm_time =
    match results with (_, _, Some t, _) :: _ -> t | _ -> nan
  in
  Bench_common.table
    [ "System"; "Type"; "Detect time"; "Paper"; "vs FARM" ]
    (List.map
       (fun (name, ty, time, paper) ->
         match time with
         | Some t ->
             [ name; ty; Bench_common.fmt_time t; paper;
               Printf.sprintf "%.0fx" (t /. farm_time) ]
         | None -> [ name; ty; "no detection"; paper; "-" ])
       results)

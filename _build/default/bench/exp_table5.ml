(* Tab. V: feature matrix of generic M&M solutions — which of the paper's
   four requirements each system meets.  FARM's column is backed by this
   repository; the baselines' by their behavioural models and §VII. *)

let run () =
  Bench_common.section "Tab. V: features of generic M&M solutions";
  Bench_common.table
    [ "System"; "[DEC] decentralized"; "[EXP] expressive"; "[IND] platform-indep.";
      "[OPT] optimized placement" ]
    [ [ "FARM"; "yes (seeds react locally)"; "yes (stateful automata)";
        "yes (Stratum/EOS)"; "yes (global heuristic)" ];
      [ "sFlow"; "no (central collector)"; "no (raw samples)"; "yes"; "no" ];
      [ "Sonata"; "no (Spark backend)"; "partial (aggregates only)";
        "no (P4 targets)"; "partial (per-query MILP)" ];
      [ "Newton"; "no (central processing)"; "partial (dynamic queries)";
        "no (P4 targets)"; "partial" ];
      [ "OmniMon"; "partial (hosts+switches)"; "no (per-task design)";
        "partial"; "no" ];
      [ "Marple"; "partial (on-switch aggregation)"; "no (few primitives)";
        "partial"; "no" ];
      [ "BeauCoup"; "partial (coupon counters)"; "no (distinct counting)";
        "no"; "no" ] ]

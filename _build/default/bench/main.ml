(* FARM evaluation harness: regenerates every table and figure of the
   paper's §VI.  Run with no argument for the full suite, or name one or
   more experiments: table1 table4 table5 fig4 fig5 fig6 fig7 fig8 fig9
   fig10 ablation micro. *)

let experiments =
  [ ("table1", Exp_table1.run);
    ("table4", Exp_table4.run);
    ("fig4", Exp_fig4.run);
    ("fig5", Exp_fig5.run);
    ("fig6", Exp_fig6.run);
    ("fig7", Exp_fig7.run);
    ("fig8", Exp_fig8.run);
    ("fig9", Exp_fig9.run);
    ("fig10", Exp_fig10.run);
    ("table5", Exp_table5.run);
    ("ablation", Exp_ablation.run);
    ("micro", Micro.run) ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  match args with
  | [] ->
      List.iter (fun (_, run) -> run ()) experiments;
      print_newline ()
  | names ->
      List.iter
        (fun name ->
          match List.assoc_opt name experiments with
          | Some run -> run ()
          | None ->
              Printf.eprintf "unknown experiment %S; available: %s\n" name
                (String.concat " " (List.map fst experiments));
              exit 1)
        names

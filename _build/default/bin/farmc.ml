(* farmc — the Almanac compiler / task driver CLI.

   Subcommands:
     farmc check <file.alm>      parse + type-check
     farmc format <file.alm>     pretty-print the parsed program
     farmc compile <file.alm>    emit the XML interchange form
     farmc analyze <file.alm>    run the seeder's static analyses
     farmc tasks                 list the built-in Table I catalog
     farmc run <task> [-d SECS]  simulate a catalog task under its workload
*)

open Farm
open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load path =
  match Almanac.Parser.program (read_file path) with
  | p -> Ok p
  | exception Almanac.Parser.Error m ->
      Error (Printf.sprintf "%s: syntax error: %s" path m)

let check_program path =
  match load path with
  | Error m -> Error m
  | Ok parsed -> (
      match Almanac.Typecheck.check_result parsed with
      | Ok p -> Ok p
      | Error m -> Error (Printf.sprintf "%s: type error: %s" path m))

let or_die = function
  | Ok v -> v
  | Error m ->
      prerr_endline m;
      exit 1

(* ---------------- check ---------------- *)

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.alm")

let check_cmd =
  let run file =
    let p = or_die (check_program file) in
    Printf.printf "%s: ok (%d machine(s), %d auxiliary function(s))\n" file
      (List.length p.machines) (List.length p.funcs)
  in
  Cmd.v (Cmd.info "check" ~doc:"Parse and type-check an Almanac program")
    Term.(const run $ file_arg)

(* ---------------- format ---------------- *)

let format_cmd =
  let run file =
    let p = or_die (check_program file) in
    print_string (Almanac.Pretty.program_to_string p)
  in
  Cmd.v (Cmd.info "format" ~doc:"Pretty-print an Almanac program")
    Term.(const run $ file_arg)

(* ---------------- compile (XML interchange, §V-A d) ---------------- *)

let compile_cmd =
  let run file =
    let p = or_die (check_program file) in
    print_string (Almanac.Machine_xml.compile p)
  in
  Cmd.v
    (Cmd.info "compile"
       ~doc:
         "Compile an Almanac program to the XML interchange form the           seeder ships to switches")
    Term.(const run $ file_arg)

(* ---------------- analyze ---------------- *)

let analyze_cmd =
  let run file =
    let p = or_die (check_program file) in
    let topo = Net.Topology.spine_leaf ~spines:2 ~leaves:4 ~hosts_per_leaf:2 in
    List.iter
      (fun (m : Almanac.Ast.machine) ->
        Printf.printf "machine %s\n" m.mname;
        match Almanac.Analysis.summarize ~topo m with
        | Error e -> Printf.printf "  analysis error: %s\n" e
        | Ok s ->
            Printf.printf "  seeds (on a 2x4 spine-leaf reference fabric): %d\n"
              (List.length s.seeds);
            List.iter
              (fun (state, branches) ->
                Printf.printf "  state %s: %d utility branch(es)\n" state
                  (List.length branches);
                List.iter
                  (fun (b : Almanac.Analysis.util_branch) ->
                    List.iter
                      (fun c ->
                        Printf.printf "    constraint %s >= 0\n"
                          (Optim.Lin_expr.to_string c))
                      b.constraints;
                    Printf.printf "    utility min(%s)\n"
                      (String.concat ", "
                         (List.map Optim.Lin_expr.to_string b.utility)))
                  branches)
              s.state_utils;
            List.iter
              (fun (pv : Almanac.Analysis.poll_summary) ->
                Printf.printf "  %s %s: subjects [%s]\n"
                  (Almanac.Ast.trigger_type_to_string pv.ptrig)
                  pv.poll_name
                  (String.concat "; "
                     (List.map
                        (fun subj ->
                          Format.asprintf "%a" Net.Filter.pp_subject subj)
                        pv.subjects)))
              s.poll_vars)
      p.machines
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"Run the seeder's static analyses (placement, utility, polling)")
    Term.(const run $ file_arg)

(* ---------------- tasks ---------------- *)

let tasks_cmd =
  let run () =
    List.iter
      (fun (e : Tasks.Task_common.entry) ->
        Printf.printf "%-40s %s\n" e.name e.description)
      Tasks.Catalog.all
  in
  Cmd.v (Cmd.info "tasks" ~doc:"List the built-in Table I task catalog")
    Term.(const run $ const ())

(* ---------------- run ---------------- *)

let run_cmd =
  let task_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"TASK")
  in
  let duration_arg =
    Arg.(value & opt float 5. & info [ "d"; "duration" ] ~docv:"SECONDS")
  in
  let run name duration =
    let entry =
      try Tasks.Catalog.find name
      with Invalid_argument m ->
        prerr_endline m;
        exit 1
    in
    let world = World.create () in
    let task =
      match
        Runtime.Seeder.deploy world.seeder
          (Tasks.Task_common.to_task_spec entry)
      with
      | Ok t -> t
      | Error m ->
          prerr_endline m;
          exit 1
    in
    Printf.printf "deployed %s: %d seeds on %d switches\n" name
      (List.length (Runtime.Seeder.seeds world.seeder task))
      (List.length (Net.Topology.switches world.topology));
    World.background_traffic ~flows:50 world;
    (* a generic anomaly so detection tasks have something to find *)
    let victim = Net.Ipaddr.of_string "10.2.1.9" in
    Net.Traffic.syn_flood world.engine world.fabric world.rng
      ~at:(duration /. 3.) ~duration:(duration /. 2.) ~victim
      ~rate_per_source:200_000. ~sources:60;
    let _ =
      Net.Traffic.heavy_hitter world.engine world.fabric world.rng
        ~at:(duration /. 3.) ~rate:2e7 ()
    in
    World.run ~until:duration world;
    let h = Runtime.Seeder.harvester task in
    Printf.printf "simulated %.1fs: %d harvester message(s)\n" duration
      (Runtime.Harvester.received_count h);
    List.iteri
      (fun i (t, sw, v) ->
        if i < 10 then
          Printf.printf "  t=%.3fs  switch %d: %s\n" t sw
            (Almanac.Value.to_string v))
      (List.rev (Runtime.Harvester.received h))
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Deploy a catalog task on a simulated DC and run it")
    Term.(const run $ task_arg $ duration_arg)

let () =
  let doc = "the Almanac compiler and FARM task driver" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "farmc" ~version:"1.0.0" ~doc)
          [ check_cmd; format_cmd; compile_cmd; analyze_cmd; tasks_cmd;
            run_cmd ]))

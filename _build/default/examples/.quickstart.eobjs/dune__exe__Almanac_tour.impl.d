examples/almanac_tour.ml: Almanac Array Farm Format List Net Optim Printf String

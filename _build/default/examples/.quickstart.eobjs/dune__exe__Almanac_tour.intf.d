examples/almanac_tour.mli:

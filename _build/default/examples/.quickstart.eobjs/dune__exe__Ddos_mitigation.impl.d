examples/ddos_mitigation.ml: Almanac Farm List Net Option Printf Runtime String World

examples/multi_task_placement.ml: Farm List Net Printf Runtime World

examples/multi_task_placement.mli:

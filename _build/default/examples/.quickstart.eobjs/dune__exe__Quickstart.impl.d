examples/quickstart.ml: Farm List Net Printf Runtime World

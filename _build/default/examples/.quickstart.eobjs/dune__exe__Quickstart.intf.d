examples/quickstart.mli:

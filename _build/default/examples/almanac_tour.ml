(* A tour of the Almanac toolchain: parse a program, type-check it
   (inheritance included), and run the static analyses the seeder uses —
   placement resolution (pi), utility extraction (kappa/epsilon) and
   polling analysis.

   Run with:  dune exec examples/almanac_tour.exe *)

open Farm

let source = {|
machine PrefixWatch {
  place any receiver dstIP "10.2.0.0/16" range <= 1;
  poll traffic = Poll {
    .ival = 10 / res().PCIe,          // poll faster with more bus share
    .what = dstIP "10.2.0.0/16"
  };
  external float limit = 500000;
  float last = 0;
  state calm {
    util (res) {
      if (res.vCPU >= 0.5 and res.RAM >= 64) then {
        return min(4 * res.vCPU, res.PCIe / 10);
      }
    }
    when (traffic as s) do {
      if (stat(s, 0) - last > limit) then { transit busy; }
      last = stat(s, 0);
    }
  }
  state busy {
    util (res) { return 42; }
    when (enter) do {
      send last to harvester;
      transit calm;
    }
  }
}
|}

let () =
  (* 1. parse + type-check *)
  let program = Almanac.Typecheck.check (Almanac.Parser.program source) in
  let machine = List.hd program.machines in
  Printf.printf "machine %s: %d states, %d trigger variable(s)\n"
    machine.mname
    (List.length machine.states)
    (List.length machine.mtrigs);

  (* 2. pretty-print round trip *)
  let printed = Almanac.Pretty.program_to_string program in
  assert (Almanac.Parser.program printed = program);
  Printf.printf "pretty-print round-trip: ok (%d chars)\n"
    (String.length printed);

  (* 3. placement analysis against a topology *)
  let topo = Net.Topology.spine_leaf ~spines:2 ~leaves:3 ~hosts_per_leaf:2 in
  let summary =
    match Almanac.Analysis.summarize ~topo machine with
    | Ok s -> s
    | Error m -> failwith m
  in
  Printf.printf "\nplacement pi[[...]]: %d seed(s)\n"
    (List.length summary.seeds);
  List.iteri
    (fun i (site : Almanac.Analysis.seed_site) ->
      Printf.printf "  seed %d can run on: %s\n" i
        (String.concat ", "
           (List.map
              (fun id -> (Net.Topology.node topo id).name)
              site.candidates)))
    summary.seeds;

  (* 4. utility analysis: constraints and utility as polynomials *)
  List.iter
    (fun (state, branches) ->
      Printf.printf "\nutility of state %S:\n" state;
      List.iter
        (fun (b : Almanac.Analysis.util_branch) ->
          List.iter
            (fun c ->
              Printf.printf "  constraint: %s >= 0\n"
                (Optim.Lin_expr.to_string c))
            b.constraints;
          Printf.printf "  utility: min(%s)\n"
            (String.concat ", "
               (List.map Optim.Lin_expr.to_string b.utility)))
        branches)
    summary.state_utils;

  (* 5. polling analysis: subjects and resource-dependent rate *)
  List.iter
    (fun (p : Almanac.Analysis.poll_summary) ->
      Printf.printf "\npoll %S: subjects = [%s]\n" p.poll_name
        (String.concat "; "
           (List.map
              (fun s -> Format.asprintf "%a" Net.Filter.pp_subject s)
              p.subjects));
      let res = Array.make Almanac.Analysis.n_resources 0. in
      res.(Almanac.Analysis.resource_index Almanac.Analysis.Pcie) <- 100.;
      Printf.printf "  with 100 units of PCIe the seed polls %.1f times/s\n"
        (Almanac.Analysis.poll_rate p.ival res))
    summary.poll_vars

(* DDoS mitigation: the Table I DDoS task placed near the protected
   prefix's receiver, quenching a spoofed flood with a local drop rule
   within milliseconds — the paper's flagship "local reaction" scenario.

   Run with:  dune exec examples/ddos_mitigation.exe *)

open Farm

let victim = Net.Ipaddr.of_string "10.2.1.50"

let () =
  let world = World.create ~seed:7 ~spines:2 ~leaves:3 ~hosts_per_leaf:2 () in
  let task =
    match World.deploy_catalog_task world "ddos" with
    | Ok t -> t
    | Error m -> failwith ("deploy failed: " ^ m)
  in
  (* The placement constraint (place any receiver dstIP "10.2.0.0/16"
     range <= 1) yields one seed per traffic path towards the protected
     prefix (the paper's pi semantics), all pinned near the receiver. *)
  let seeds = Runtime.Seeder.seeds world.seeder task in
  let where =
    List.sort_uniq compare
      (List.map
         (fun s ->
           (Net.Topology.node world.topology (Runtime.Seed_exec.node s)).name)
         seeds)
  in
  Printf.printf "%d DDoS seeds placed on: %s\n" (List.length seeds)
    (String.concat ", " where);

  World.background_traffic ~flows:30 world;
  World.run ~until:1. world;

  (* 120 spoofed sources flood the victim *)
  Printf.printf "\nt=1.0s  flood begins (120 sources)\n";
  Net.Traffic.syn_flood world.engine world.fabric world.rng ~at:1.
    ~duration:5. ~victim ~rate_per_source:100_000. ~sources:120;

  (* measure flood intensity at the victim leaf before mitigation *)
  let victim_leaf =
    Option.get (Net.Topology.host_of_addr world.topology victim)
    |> Net.Topology.neighbors world.topology
    |> List.hd
  in
  let leaf_sw = Net.Fabric.switch world.fabric victim_leaf in
  World.run ~until:1.5 world;
  let during_flood = Net.Switch_model.total_rate leaf_sw in
  World.run ~until:3. world;
  let h = Runtime.Seeder.harvester task in
  (match List.rev (Runtime.Harvester.received h) with
  | (t, sw, v) :: _ ->
      Printf.printf
        "t=%.3fs  switch %d reported the flood (%s distinct sources), %.0f ms \
         after onset\n"
        t sw (Almanac.Value.to_string v)
        ((t -. 1.) *. 1e3)
  | [] -> print_endline "no detection (unexpected)");

  (* the drop rule was installed where the seeds run, quenching the flood
     at the receiver leaf *)
  List.iter
    (fun soil ->
      let tcam = Net.Switch_model.tcam (Runtime.Soil.switch soil) in
      List.iter
        (fun (r : Net.Tcam.installed) ->
          if r.rule.action = Net.Tcam.Drop then
            Printf.printf "drop rule active on %s: %s\n"
              (Net.Topology.node world.topology (Runtime.Soil.node_id soil)).name
              (Net.Filter.to_string r.rule.pattern))
        (Net.Tcam.rules tcam Net.Tcam.Monitoring))
    (Runtime.Seeder.soils world.seeder);

  (* the quench: flood traffic through the victim leaf collapses once the
     drop rule is in *)
  World.run ~until:5. world;
  let after = Net.Switch_model.total_rate leaf_sw in
  Printf.printf
    "\nflood traffic at the victim leaf: %.1f MB/s during the attack, \
     %.1f MB/s after local mitigation\n"
    (during_flood /. 1e6) (after /. 1e6)

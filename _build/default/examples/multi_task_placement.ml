(* Side-by-side tasks and global placement: deploy several Table I tasks
   at once, observe how the seeder's optimizer shares switch resources and
   how the soils aggregate polls that different tasks request for the same
   subject — the [OPT] story of the paper.

   Run with:  dune exec examples/multi_task_placement.exe *)

open Farm

let () =
  let world = World.create ~seed:11 ~spines:2 ~leaves:4 ~hosts_per_leaf:2 () in
  let deploy name =
    match World.deploy_catalog_task world name with
    | Ok t ->
        Printf.printf "deployed %-24s %d seeds\n" name
          (List.length (Runtime.Seeder.seeds world.seeder t));
        t
    | Error m -> failwith (name ^ ": " ^ m)
  in
  (* three monitoring tasks that all poll the per-port counters *)
  let _hh = deploy "heavy-hitter" in
  let _tc = deploy "traffic-change" in
  let _lf = deploy "link-failure" in
  (* and one that probes packets *)
  let _ss = deploy "superspreader" in

  Printf.printf "\nglobal monitoring utility: %.1f\n"
    (Runtime.Seeder.current_utility world.seeder);

  World.background_traffic ~flows:60 world;
  (* one heavy hitter so the HH task has something to report *)
  let _ =
    Net.Traffic.heavy_hitter world.engine world.fabric world.rng ~at:1.5
      ~rate:2e7 ()
  in
  World.run ~until:3. world;

  (* Aggregation benefit: three tasks poll [port ANY] on every switch, yet
     each soil issues a single ASIC poll stream per subject. *)
  Printf.printf "\n%-8s %14s %16s %10s\n" "switch" "ASIC polls" "seed deliveries"
    "sharing";
  List.iter
    (fun soil ->
      let s = Runtime.Soil.poll_stats soil in
      if s.asic_polls > 0 then
        Printf.printf "%-8d %14d %16d %9.1fx\n"
          (Runtime.Soil.node_id soil)
          s.asic_polls s.completed
          (float_of_int s.completed /. float_of_int s.asic_polls))
    (List.sort
       (fun a b -> compare (Runtime.Soil.node_id a) (Runtime.Soil.node_id b))
       (Runtime.Seeder.soils world.seeder));

  (* network load towards the central components stays tiny *)
  Printf.printf
    "\ncollector traffic after %.0fs with 4 tasks on %d switches: %.0f bytes \
     (%d messages)\n"
    (World.now world)
    (List.length (Net.Topology.switches world.topology))
    (Runtime.Seeder.collector_bytes world.seeder)
    (Runtime.Seeder.collector_messages world.seeder);

  (* placement re-optimization keeps running tasks alive *)
  Runtime.Seeder.reoptimize world.seeder;
  World.run ~until:4. world;
  Printf.printf "after re-optimization: utility %.1f, %d migrations so far\n"
    (Runtime.Seeder.current_utility world.seeder)
    (Runtime.Seeder.migrations world.seeder)

(* Quickstart: write a monitoring task in Almanac, deploy it on a
   simulated data center, generate traffic, and watch it detect and react.

   Run with:  dune exec examples/quickstart.exe *)

open Farm

(* A threshold watchdog: poll every port counter each 10 ms; if the total
   rate looks like a heavy hitter, report to the harvester and QoS-mark
   the offending traffic locally — no controller round-trip needed. *)
let watchdog = {|
machine Watchdog {
  place all;                         // one seed per switch
  poll counters = Poll { .ival = 0.01, .what = port ANY };
  external float limit = 1000000;    // bytes per second
  float prevTotal = 0;
  state observe {
    when (counters as stats) do {
      float rate = (stats_sum(stats) - prevTotal) / 0.01;
      prevTotal = stats_sum(stats);
      if (rate > limit) then {
        transit alerting;
      }
    }
  }
  state alerting {
    when (enter) do {
      send now() to harvester;                    // global visibility
      addTCAMRule(mkRule(port ANY, qos_action(2))); // local reaction
    }
    when (counters as stats) do {
      float rate = (stats_sum(stats) - prevTotal) / 0.01;
      prevTotal = stats_sum(stats);
      if (rate <= limit) then {
        removeTCAMRule(port ANY);                 // calm again: undo
        transit observe;
      }
    }
  }
}
|}

let () =
  (* a spine-leaf data center with a soil on every switch *)
  let world = World.create ~spines:2 ~leaves:4 ~hosts_per_leaf:2 () in
  Printf.printf "Topology: %d switches, %d hosts\n"
    (List.length (Net.Topology.switches world.topology))
    (List.length (Net.Topology.hosts world.topology));

  (* deploy: parse, type-check, analyze, optimize placement, start seeds *)
  let task =
    match World.deploy_source world ~name:"watchdog" watchdog with
    | Ok t -> t
    | Error m -> failwith ("deploy failed: " ^ m)
  in
  Printf.printf "Deployed %d seeds\n"
    (List.length (Runtime.Seeder.seeds world.seeder task));

  (* normal traffic for 2 simulated seconds: nothing to report *)
  World.background_traffic ~flows:40 world;
  World.run ~until:2. world;
  Printf.printf "t=%.1fs  alerts so far: %d\n" (World.now world)
    (Runtime.Harvester.received_count (Runtime.Seeder.harvester task));

  (* a 5 MB/s elephant flow appears *)
  let _ =
    Net.Traffic.heavy_hitter world.engine world.fabric world.rng ~at:2.5
      ~rate:5e6 ()
  in
  World.run ~until:4. world;
  let h = Runtime.Seeder.harvester task in
  Printf.printf "t=%.1fs  alerts so far: %d\n" (World.now world)
    (Runtime.Harvester.received_count h);
  (match List.rev (Runtime.Harvester.received h) with
  | (t, sw, _) :: _ ->
      Printf.printf "first alert %.1f ms after onset, from switch %d\n"
        ((t -. 2.5) *. 1e3) sw
  | [] -> ());

  (* the local reaction is already in place on the switches *)
  let reacted =
    List.filter
      (fun soil ->
        Runtime.Soil.get_tcam_rule soil
          ~pattern:(Net.Filter.atom Net.Filter.Any)
        <> None)
      (Runtime.Seeder.soils world.seeder)
  in
  Printf.printf "QoS rules installed on %d switches (no controller involved)\n"
    (List.length reacted)

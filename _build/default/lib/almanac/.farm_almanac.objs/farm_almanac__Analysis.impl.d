lib/almanac/analysis.ml: Array Ast Farm_net Farm_optim Float Int List Printf Result Stdlib Value

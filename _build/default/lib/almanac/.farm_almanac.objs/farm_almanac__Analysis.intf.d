lib/almanac/analysis.mli: Ast Farm_net Farm_optim Value

lib/almanac/ast.ml:

lib/almanac/interp.ml: Analysis Array Ast Farm_net Filter Float Hashtbl Ipaddr List Printf String Value

lib/almanac/interp.mli: Ast Value

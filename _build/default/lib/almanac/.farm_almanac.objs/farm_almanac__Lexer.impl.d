lib/almanac/lexer.ml: Buffer List Printf String Token

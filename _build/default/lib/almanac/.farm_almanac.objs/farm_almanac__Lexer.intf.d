lib/almanac/lexer.mli: Token

lib/almanac/machine_xml.ml: Ast List Option Printf Xml

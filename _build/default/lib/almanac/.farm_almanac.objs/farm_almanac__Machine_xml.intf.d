lib/almanac/machine_xml.mli: Ast Xml

lib/almanac/parser.ml: Array Ast Lexer List Printf Token

lib/almanac/parser.mli: Ast

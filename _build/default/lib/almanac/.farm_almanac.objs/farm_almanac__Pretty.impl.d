lib/almanac/pretty.ml: Ast Float Format List Option Printf String

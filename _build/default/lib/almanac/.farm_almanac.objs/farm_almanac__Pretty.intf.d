lib/almanac/pretty.mli: Ast Format

lib/almanac/token.ml: List Printf

lib/almanac/typecheck.ml: Ast Hashtbl List Printf Result String

lib/almanac/typecheck.mli: Ast

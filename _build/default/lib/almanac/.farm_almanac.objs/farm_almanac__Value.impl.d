lib/almanac/value.ml: Array Ast Farm_net Float Flow Format Ipaddr List Printf String

lib/almanac/value.mli: Ast Farm_net Format

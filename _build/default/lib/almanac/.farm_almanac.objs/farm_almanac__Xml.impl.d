lib/almanac/xml.ml: Buffer List Printf String

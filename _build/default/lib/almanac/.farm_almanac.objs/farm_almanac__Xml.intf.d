lib/almanac/xml.mli:

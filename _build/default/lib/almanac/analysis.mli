(** Static analyses of Almanac machines (§III-B): everything the seeder
    derives from a program before placement optimization.

    - {b Placement} (π⟦·⟧): resolve [place] directives against the topology
      into seeds and their candidate switch sets N{^s}.
    - {b Utility} (κ{^s}⟦·⟧, ε{^s}⟦·⟧): turn each state's [util] callback
      into explicit resource-constraint polynomials C{^s} and a utility
      function u{^s}, both linear (with min-combinations), suitable for the
      LP/MILP placement model.  [or]-conditions and [max] produce several
      branches — the "seed copies, at most one placed" of §III-B b.
    - {b Polling} (φ{^s}⟦·⟧, φ{_enc}): for each poll variable, the polling
      subjects and the interval as a function of allocated resources. *)

(** The resource types tracked by the soil (order fixes LP variable
    indices). *)
type resource = VCpu | Ram | TcamR | Pcie

val n_resources : int
val resource_index : resource -> int
val resource_name : resource -> string
val resource_of_name : string -> resource option
val all_resources : resource list

(** {2 Utility analysis} *)

(** One alternative of a utility function: place the seed with resources
    [r] satisfying [c(r) >= 0] for every [c] in [constraints]; the yield is
    [min] over [utility] (a single-element list is just linear). *)
type util_branch = {
  constraints : Farm_optim.Lin_expr.t list;
  utility : Farm_optim.Lin_expr.t list;  (** min of these *)
}

type util_summary = util_branch list

(** Bindings for [external] variables (and any machine constant needed to
    evaluate analysis-time expressions). *)
type bindings = string -> Value.t option

val no_bindings : bindings

(** Analyze a [util] block.  Fails on non-linear utilities (the paper
    restricts [util] so this cannot happen for type-checked programs,
    except division by a non-constant). *)
val utility :
  ?bindings:bindings -> Ast.util_decl -> (util_summary, string) result

(** Utility of a seed whose state lacks a [util] block: a single
    unconstrained branch with utility 0. *)
val default_utility : util_summary

(** Evaluate a branch under concrete resource amounts. *)
val eval_utility : util_branch -> float array -> float

val branch_feasible : util_branch -> float array -> bool

(** {2 Polling analysis} *)

(** The polling interval as a function of allocated resources.  The paper
    requires 1/ival to be linear; [Const] covers resource-independent
    rates. *)
type ival_spec =
  | Const_ival of float
  | Inv_linear of Farm_optim.Lin_expr.t
      (** the {e inverse} 1/ival, linear over resource variables *)

(** Polls per second under a resource assignment. *)
val poll_rate : ival_spec -> float array -> float

type poll_summary = {
  poll_name : string;
  ptrig : Ast.trigger_type;
  what : Farm_net.Filter.t;
  subjects : Farm_net.Filter.subject list;  (** φ{_enc}(φ{^s}⟦what⟧) *)
  ival : ival_spec;
}

(** All poll/probe/time variables of a machine with their analysis. *)
val polls :
  ?bindings:bindings -> Ast.machine -> (poll_summary list, string) result

(** φ{^s}⟦·⟧: evaluate a filter expression to a closed filter. *)
val eval_filter :
  ?bindings:bindings -> Ast.expr -> (Farm_net.Filter.t, string) result

(** {2 Placement analysis} *)

(** One seed to place: candidate switches and, for bookkeeping, which
    [place] directive produced it. *)
type seed_site = { candidates : int list; directive : int }

(** π⟦·⟧: resolve a machine's [place] directives against a topology.
    Returns one entry per seed. *)
val placement :
  ?bindings:bindings ->
  topo:Farm_net.Topology.t ->
  Ast.machine ->
  (seed_site list, string) result

(** {2 Whole-machine summary} *)

type summary = {
  machine : Ast.machine;
  seeds : seed_site list;
  (* per state: the utility branches *)
  state_utils : (string * util_summary) list;
  poll_vars : poll_summary list;
}

val summarize :
  ?bindings:bindings ->
  topo:Farm_net.Topology.t ->
  Ast.machine ->
  (summary, string) result

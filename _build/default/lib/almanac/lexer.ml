exception Error of string

type located = { token : Token.t; line : int; col : int }

let error line col fmt =
  Printf.ksprintf (fun m -> raise (Error (Printf.sprintf "%d:%d: %s" line col m))) fmt

let is_digit c = c >= '0' && c <= '9'
let is_alpha c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_alnum c = is_alpha c || is_digit c

let tokenize src =
  let n = String.length src in
  let pos = ref 0 and line = ref 1 and col = ref 1 in
  let out = ref [] in
  let peek k = if !pos + k < n then Some src.[!pos + k] else None in
  let cur () = peek 0 in
  let advance () =
    (match cur () with
    | Some '\n' ->
        incr line;
        col := 1
    | Some _ -> incr col
    | None -> ());
    incr pos
  in
  let emit tok l c = out := { token = tok; line = l; col = c } :: !out in
  let rec skip_ws () =
    match cur () with
    | Some (' ' | '\t' | '\r' | '\n') ->
        advance ();
        skip_ws ()
    | Some '/' when peek 1 = Some '/' ->
        while cur () <> None && cur () <> Some '\n' do
          advance ()
        done;
        skip_ws ()
    | Some '/' when peek 1 = Some '*' ->
        let l0 = !line and c0 = !col in
        advance ();
        advance ();
        let rec go () =
          match (cur (), peek 1) with
          | Some '*', Some '/' ->
              advance ();
              advance ()
          | Some _, _ ->
              advance ();
              go ()
          | None, _ -> error l0 c0 "unterminated block comment"
        in
        go ();
        skip_ws ()
    | Some _ | None -> ()
  in
  let lex_number l c =
    let start = !pos in
    while (match cur () with Some ch -> is_digit ch | None -> false) do
      advance ()
    done;
    let has_frac =
      cur () = Some '.'
      && (match peek 1 with Some ch -> is_digit ch | None -> false)
    in
    if has_frac then begin
      advance ();
      while (match cur () with Some ch -> is_digit ch | None -> false) do
        advance ()
      done
    end;
    (* scientific notation: 1e-3, 2.5E6 *)
    let has_exp =
      match (cur (), peek 1, peek 2) with
      | Some ('e' | 'E'), Some d, _ when is_digit d -> true
      | Some ('e' | 'E'), Some ('+' | '-'), Some d when is_digit d -> true
      | _ -> false
    in
    if has_exp then begin
      advance ();
      (match cur () with
      | Some ('+' | '-') -> advance ()
      | _ -> ());
      while (match cur () with Some ch -> is_digit ch | None -> false) do
        advance ()
      done
    end;
    let s = String.sub src start (!pos - start) in
    if has_frac || has_exp then emit (Token.FLOAT (float_of_string s)) l c
    else emit (Token.INT (int_of_string s)) l c
  in
  let lex_ident l c =
    let start = !pos in
    while (match cur () with Some ch -> is_alnum ch | None -> false) do
      advance ()
    done;
    let s = String.sub src start (!pos - start) in
    match List.assoc_opt s Token.keyword_table with
    | Some kw -> emit kw l c
    | None -> emit (Token.IDENT s) l c
  in
  let lex_string l c =
    advance ();
    let buf = Buffer.create 16 in
    let rec go () =
      match cur () with
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match cur () with
          | Some 'n' ->
              Buffer.add_char buf '\n';
              advance ();
              go ()
          | Some ch ->
              Buffer.add_char buf ch;
              advance ();
              go ()
          | None -> error l c "unterminated string")
      | Some ch ->
          Buffer.add_char buf ch;
          advance ();
          go ()
      | None -> error l c "unterminated string"
    in
    go ();
    emit (Token.STRING (Buffer.contents buf)) l c
  in
  let rec go () =
    skip_ws ();
    let l = !line and c = !col in
    match cur () with
    | None -> emit Token.EOF l c
    | Some ch ->
        (match ch with
        | '{' -> advance (); emit Token.LBRACE l c
        | '}' -> advance (); emit Token.RBRACE l c
        | '(' -> advance (); emit Token.LPAREN l c
        | ')' -> advance (); emit Token.RPAREN l c
        | '[' -> advance (); emit Token.LBRACKET l c
        | ']' -> advance (); emit Token.RBRACKET l c
        | ';' -> advance (); emit Token.SEMI l c
        | ',' -> advance (); emit Token.COMMA l c
        | '.' -> advance (); emit Token.DOT l c
        | '@' -> advance (); emit Token.AT l c
        | '+' -> advance (); emit Token.PLUS l c
        | '-' -> advance (); emit Token.MINUS l c
        | '*' -> advance (); emit Token.STAR l c
        | '/' -> advance (); emit Token.SLASH l c
        | '=' ->
            advance ();
            if cur () = Some '=' then begin
              advance ();
              emit Token.EQ l c
            end
            else emit Token.ASSIGN l c
        | '<' ->
            advance ();
            if cur () = Some '=' then begin
              advance ();
              emit Token.LE l c
            end
            else if cur () = Some '>' then begin
              advance ();
              emit Token.NEQ l c
            end
            else emit Token.LT l c
        | '>' ->
            advance ();
            if cur () = Some '=' then begin
              advance ();
              emit Token.GE l c
            end
            else emit Token.GT l c
        | '"' -> lex_string l c
        | ch when is_digit ch -> lex_number l c
        | ch when is_alpha ch -> lex_ident l c
        | ch -> error l c "unexpected character %C" ch);
        if (match !out with { token = Token.EOF; _ } :: _ -> false | _ -> true)
        then go ()
  in
  go ();
  List.rev !out

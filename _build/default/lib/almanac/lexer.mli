(** Hand-written lexer for Almanac.  Supports [//] line comments and
    [/* ... */] block comments. *)

exception Error of string
(** Lexical error with a "line:col: message" payload. *)

type located = { token : Token.t; line : int; col : int }

(** Tokenize a whole source string; the last element is [EOF]. *)
val tokenize : string -> located list

(** The seed interchange format of §V-A d: Almanac programs compiled by
    the seeder to XML and decompiled back into executable machines by each
    switch's soil.  The encoding is a complete structural serialization of
    the AST, so [of_xml (to_xml p) = p]. *)

val program_to_xml : Ast.program -> Xml.t
val program_of_xml : Xml.t -> Ast.program

(** Convenience: serialize straight to/from strings. *)
val compile : Ast.program -> string

exception Decode_error of string

(** Raises {!Decode_error} or {!Xml.Parse_error} on malformed input. *)
val load : string -> Ast.program

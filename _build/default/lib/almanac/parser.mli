(** Recursive-descent parser for Almanac (concrete syntax of Fig. 3 /
    List. 2). *)

exception Error of string
(** Syntax error with a "line:col: message" payload. *)

(** Parse a full program (auxiliary functions + machines). *)
val program : string -> Ast.program

(** Parse a single expression (used by tests and the REPL-ish tooling). *)
val expression : string -> Ast.expr

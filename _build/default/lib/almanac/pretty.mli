(** Pretty-printer from the Almanac AST back to concrete syntax.
    [Parser.program (program_to_string p)] yields a structurally equal AST
    (modulo redundant parentheses), which the test suite checks. *)

val pp_expr : Format.formatter -> Ast.expr -> unit
val pp_stmt : Format.formatter -> Ast.stmt -> unit
val pp_machine : Format.formatter -> Ast.machine -> unit
val pp_program : Format.formatter -> Ast.program -> unit
val expr_to_string : Ast.expr -> string
val program_to_string : Ast.program -> string

(** Lexical tokens of Almanac. *)

type t =
  | IDENT of string
  | INT of int
  | FLOAT of float
  | STRING of string
  (* keywords *)
  | KW_MACHINE
  | KW_EXTENDS
  | KW_STATE
  | KW_PLACE
  | KW_ALL
  | KW_ANY  (* quantifier in [place] *)
  | KW_ANYCAP  (* the [ANY] wildcard literal *)
  | KW_SENDER
  | KW_RECEIVER
  | KW_MIDPOINT
  | KW_RANGE
  | KW_UTIL
  | KW_WHEN
  | KW_DO
  | KW_RECV
  | KW_FROM
  | KW_HARVESTER
  | KW_ENTER
  | KW_EXIT
  | KW_REALLOC
  | KW_AS
  | KW_TRANSIT
  | KW_SEND
  | KW_TO
  | KW_IF
  | KW_THEN
  | KW_ELSE
  | KW_WHILE
  | KW_RETURN
  | KW_EXTERNAL
  | KW_TRUE
  | KW_FALSE
  | KW_AND
  | KW_OR
  | KW_NOT
  (* types *)
  | KW_BOOL
  | KW_INT
  | KW_LONG
  | KW_FLOAT
  | KW_STRING
  | KW_LIST
  | KW_PACKET
  | KW_ACTION
  | KW_FILTER
  | KW_STATS
  | KW_RULE
  | KW_VOID
  (* trigger types *)
  | KW_TIME
  | KW_POLL
  | KW_PROBE
  (* punctuation / operators *)
  | LBRACE
  | RBRACE
  | LPAREN
  | RPAREN
  | LBRACKET
  | RBRACKET
  | SEMI
  | COMMA
  | DOT
  | AT
  | ASSIGN  (* = *)
  | EQ  (* == *)
  | NEQ  (* <> *)
  | LE
  | GE
  | LT
  | GT
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | EOF

let keyword_table : (string * t) list =
  [ ("machine", KW_MACHINE); ("extends", KW_EXTENDS); ("state", KW_STATE);
    ("place", KW_PLACE); ("all", KW_ALL); ("any", KW_ANY); ("ANY", KW_ANYCAP);
    ("sender", KW_SENDER); ("receiver", KW_RECEIVER);
    ("midpoint", KW_MIDPOINT); ("range", KW_RANGE); ("util", KW_UTIL);
    ("when", KW_WHEN); ("do", KW_DO); ("recv", KW_RECV); ("from", KW_FROM);
    ("harvester", KW_HARVESTER); ("enter", KW_ENTER); ("exit", KW_EXIT);
    ("realloc", KW_REALLOC); ("as", KW_AS); ("transit", KW_TRANSIT);
    ("send", KW_SEND); ("to", KW_TO); ("if", KW_IF); ("then", KW_THEN);
    ("else", KW_ELSE); ("while", KW_WHILE); ("return", KW_RETURN);
    ("external", KW_EXTERNAL); ("true", KW_TRUE); ("false", KW_FALSE);
    ("and", KW_AND); ("or", KW_OR); ("not", KW_NOT); ("bool", KW_BOOL);
    ("int", KW_INT); ("long", KW_LONG); ("float", KW_FLOAT);
    ("string", KW_STRING); ("list", KW_LIST); ("packet", KW_PACKET);
    (* "stats" is a soft keyword: it names a type but the paper's own
       examples also use it as a variable ([when (pollStats as stats)]),
       so the parser recognizes it contextually *)
    ("action", KW_ACTION); ("filter", KW_FILTER);
    ("rule", KW_RULE); ("void", KW_VOID); ("time", KW_TIME);
    ("poll", KW_POLL); ("probe", KW_PROBE) ]

let to_string = function
  | IDENT s -> Printf.sprintf "identifier %S" s
  | INT i -> Printf.sprintf "integer %d" i
  | FLOAT f -> Printf.sprintf "float %g" f
  | STRING s -> Printf.sprintf "string %S" s
  | LBRACE -> "'{'"
  | RBRACE -> "'}'"
  | LPAREN -> "'('"
  | RPAREN -> "')'"
  | LBRACKET -> "'['"
  | RBRACKET -> "']'"
  | SEMI -> "';'"
  | COMMA -> "','"
  | DOT -> "'.'"
  | AT -> "'@'"
  | ASSIGN -> "'='"
  | EQ -> "'=='"
  | NEQ -> "'<>'"
  | LE -> "'<='"
  | GE -> "'>='"
  | LT -> "'<'"
  | GT -> "'>'"
  | PLUS -> "'+'"
  | MINUS -> "'-'"
  | STAR -> "'*'"
  | SLASH -> "'/'"
  | EOF -> "end of input"
  | t -> (
      match List.find_opt (fun (_, tok) -> tok = t) keyword_table with
      | Some (kw, _) -> Printf.sprintf "keyword %S" kw
      | None -> "token")

type t =
  | Unit
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Packet of Farm_net.Flow.packet
  | Action of Farm_net.Tcam.action
  | FilterV of Farm_net.Filter.t
  | Stats of float array
  | Struct of string * (string * t) list

exception Type_error of string

let type_error fmt = Printf.ksprintf (fun m -> raise (Type_error m)) fmt

let kind = function
  | Unit -> "unit"
  | Bool _ -> "bool"
  | Num _ -> "number"
  | Str _ -> "string"
  | List _ -> "list"
  | Packet _ -> "packet"
  | Action _ -> "action"
  | FilterV _ -> "filter"
  | Stats _ -> "stats"
  | Struct (n, _) -> n

let truthy = function
  | Bool b -> b
  | Num n -> n <> 0.
  | Unit -> false
  | v -> type_error "expected a boolean, got %s" (kind v)

let as_num = function
  | Num n -> n
  | Bool true -> 1.
  | Bool false -> 0.
  | v -> type_error "expected a number, got %s" (kind v)

let as_str = function
  | Str s -> s
  | v -> type_error "expected a string, got %s" (kind v)

let as_list = function
  | List l -> l
  | v -> type_error "expected a list, got %s" (kind v)

let as_filter = function
  | FilterV f -> f
  | v -> type_error "expected a filter, got %s" (kind v)

let as_action = function
  | Action a -> a
  | v -> type_error "expected an action, got %s" (kind v)

let as_stats = function
  | Stats s -> s
  | v -> type_error "expected stats, got %s" (kind v)

let rec equal a b =
  match (a, b) with
  | Unit, Unit -> true
  | Bool x, Bool y -> x = y
  | Num x, Num y -> x = y
  | Str x, Str y -> String.equal x y
  | List x, List y -> List.length x = List.length y && List.for_all2 equal x y
  | Packet x, Packet y -> x = y
  | Action x, Action y -> x = y
  | FilterV x, FilterV y -> Farm_net.Filter.equal x y
  | Stats x, Stats y -> x = y
  | Struct (n, fx), Struct (m, fy) ->
      String.equal n m
      && List.length fx = List.length fy
      && List.for_all2
           (fun (k1, v1) (k2, v2) -> String.equal k1 k2 && equal v1 v2)
           fx fy
  | ( ( Unit | Bool _ | Num _ | Str _ | List _ | Packet _ | Action _
      | FilterV _ | Stats _ | Struct _ ),
      _ ) ->
      false

let default_of_typ = function
  | Ast.Tbool -> Bool false
  | Ast.Tint | Ast.Tlong | Ast.Tfloat -> Num 0.
  | Ast.Tstring -> Str ""
  | Ast.Tlist -> List []
  | Ast.Tpacket ->
      Packet
        (Farm_net.Flow.packet
           { Farm_net.Flow.src = Farm_net.Ipaddr.of_int 0;
             dst = Farm_net.Ipaddr.of_int 0; sport = 0; dport = 0;
             proto = Farm_net.Flow.Tcp }
           0)
  | Ast.Taction -> Action Farm_net.Tcam.Count
  | Ast.Tfilter -> FilterV Farm_net.Filter.False
  | Ast.Tstats -> Stats [||]
  | Ast.Trule ->
      Struct
        ("Rule",
         [ ("pattern", FilterV Farm_net.Filter.False);
           ("act", Action Farm_net.Tcam.Count) ])
  | Ast.Tresources -> Struct ("Resources", [])
  | Ast.Tunit -> Unit

let field v name =
  match v with
  | Struct (sname, fields) -> (
      match List.assoc_opt name fields with
      | Some x -> x
      | None -> type_error "struct %s has no field %s" sname name)
  | Packet p -> (
      let open Farm_net in
      match name with
      | "size" -> Num (float_of_int p.Flow.size)
      | "srcIP" -> Str (Ipaddr.to_string p.Flow.tuple.src)
      | "dstIP" -> Str (Ipaddr.to_string p.Flow.tuple.dst)
      | "srcPort" -> Num (float_of_int p.Flow.tuple.sport)
      | "dstPort" -> Num (float_of_int p.Flow.tuple.dport)
      | "proto" -> Str (Flow.proto_to_string p.Flow.tuple.proto)
      | "syn" -> Bool p.Flow.flags.syn
      | "ack" -> Bool p.Flow.flags.ack
      | "fin" -> Bool p.Flow.flags.fin
      | "rst" -> Bool p.Flow.flags.rst
      | "payload" -> Str p.Flow.payload
      | _ -> type_error "packet has no field %s" name)
  | v -> type_error "%s has no fields" (kind v)

let rec pp ppf = function
  | Unit -> Format.pp_print_string ppf "()"
  | Bool b -> Format.pp_print_bool ppf b
  | Num n ->
      if Float.is_integer n && Float.abs n < 1e15 then
        Format.fprintf ppf "%.0f" n
      else Format.fprintf ppf "%g" n
  | Str s -> Format.fprintf ppf "%S" s
  | List l ->
      Format.fprintf ppf "[%a]"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
           pp)
        l
  | Packet p -> Format.fprintf ppf "<packet %a>" Farm_net.Flow.pp_tuple p.tuple
  | Action _ -> Format.pp_print_string ppf "<action>"
  | FilterV f -> Farm_net.Filter.pp ppf f
  | Stats s -> Format.fprintf ppf "<stats[%d]>" (Array.length s)
  | Struct (n, fields) ->
      Format.fprintf ppf "%s{%a}" n
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
           (fun ppf (k, v) -> Format.fprintf ppf ".%s=%a" k pp v))
        fields

let to_string v = Format.asprintf "%a" pp v

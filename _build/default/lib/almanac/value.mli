(** Runtime values of Almanac programs.  All numeric types (int, long,
    float) share one representation — monitoring arithmetic is counter math
    and the distinction only matters statically. *)

type t =
  | Unit
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Packet of Farm_net.Flow.packet
  | Action of Farm_net.Tcam.action
  | FilterV of Farm_net.Filter.t
  | Stats of float array  (** polled counter values *)
  | Struct of string * (string * t) list
      (** [Resources], [Rule], [Poll], ... *)

val truthy : t -> bool

(** Numeric view; raises [Type_error] otherwise. *)
val as_num : t -> float

val as_str : t -> string
val as_list : t -> t list
val as_filter : t -> Farm_net.Filter.t
val as_action : t -> Farm_net.Tcam.action
val as_stats : t -> float array

exception Type_error of string

(** Structural equality (used by [==] in the language). *)
val equal : t -> t -> bool

(** Default value of a declared type (before initialization). *)
val default_of_typ : Ast.typ -> t

val field : t -> string -> t
(** Field access on packets, resources and other structs. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

type t = Element of string * (string * string) list * t list | Text of string

let element ?(attrs = []) name children = Element (name, attrs, children)
let text s = Text s

let name = function
  | Element (n, _, _) -> n
  | Text _ -> invalid_arg "Xml.name: text node"

let attr t key =
  match t with
  | Element (_, attrs, _) -> List.assoc_opt key attrs
  | Text _ -> None

let attr_exn t key =
  match attr t key with
  | Some v -> v
  | None ->
      invalid_arg
        (Printf.sprintf "Xml.attr_exn: missing attribute %S on <%s>" key
           (match t with Element (n, _, _) -> n | Text _ -> "#text"))

let children = function Element (_, _, c) -> c | Text _ -> []

let select t n =
  List.filter
    (function Element (n', _, _) -> n' = n | Text _ -> false)
    (children t)

let first t n = match select t n with x :: _ -> Some x | [] -> None

let rec text_content = function
  | Text s -> s
  | Element (_, _, c) -> String.concat "" (List.map text_content c)

(* ------------------------------------------------------------------ *)
(* Writer                                                              *)
(* ------------------------------------------------------------------ *)

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '&' -> Buffer.add_string buf "&amp;"
      | '"' -> Buffer.add_string buf "&quot;"
      | '\'' -> Buffer.add_string buf "&apos;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_string ?(indent = true) t =
  let buf = Buffer.create 1024 in
  let rec go depth t =
    let pad = if indent then String.make (2 * depth) ' ' else "" in
    match t with
    | Text s -> Buffer.add_string buf (pad ^ escape s ^ if indent then "\n" else "")
    | Element (n, attrs, kids) ->
        Buffer.add_string buf (pad ^ "<" ^ n);
        List.iter
          (fun (k, v) ->
            Buffer.add_string buf (Printf.sprintf " %s=\"%s\"" k (escape v)))
          attrs;
        if kids = [] then
          Buffer.add_string buf ("/>" ^ if indent then "\n" else "")
        else begin
          Buffer.add_string buf (">" ^ if indent then "\n" else "");
          List.iter (go (depth + 1)) kids;
          Buffer.add_string buf (pad ^ "</" ^ n ^ ">");
          if indent then Buffer.add_char buf '\n'
        end
  in
  go 0 t;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)
(* ------------------------------------------------------------------ *)

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Parse_error m)) fmt

type cursor = { src : string; mutable pos : int }

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None
let advance c = c.pos <- c.pos + 1

let starts_with c s =
  let n = String.length s in
  c.pos + n <= String.length c.src && String.sub c.src c.pos n = s

let skip c s = c.pos <- c.pos + String.length s

let skip_ws c =
  while
    match peek c with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance c;
        true
    | _ -> false
  do
    ()
  done

let rec skip_misc c =
  skip_ws c;
  if starts_with c "<?" then begin
    (match String.index_from_opt c.src c.pos '>' with
    | Some i -> c.pos <- i + 1
    | None -> fail "unterminated prolog");
    skip_misc c
  end
  else if starts_with c "<!--" then begin
    let rec go i =
      if i + 3 > String.length c.src then fail "unterminated comment"
      else if String.sub c.src i 3 = "-->" then c.pos <- i + 3
      else go (i + 1)
    in
    go (c.pos + 4);
    skip_misc c
  end

let is_name_char ch =
  (ch >= 'a' && ch <= 'z')
  || (ch >= 'A' && ch <= 'Z')
  || (ch >= '0' && ch <= '9')
  || ch = '_' || ch = '-' || ch = ':' || ch = '.'

let parse_name c =
  let start = c.pos in
  while (match peek c with Some ch -> is_name_char ch | None -> false) do
    advance c
  done;
  if c.pos = start then fail "expected a name at offset %d" c.pos;
  String.sub c.src start (c.pos - start)

let unescape s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    if s.[!i] = '&' then begin
      let j = try String.index_from s !i ';' with Not_found -> fail "bad entity" in
      (match String.sub s (!i + 1) (j - !i - 1) with
      | "lt" -> Buffer.add_char buf '<'
      | "gt" -> Buffer.add_char buf '>'
      | "amp" -> Buffer.add_char buf '&'
      | "quot" -> Buffer.add_char buf '"'
      | "apos" -> Buffer.add_char buf '\''
      | e -> fail "unknown entity &%s;" e);
      i := j + 1
    end
    else begin
      Buffer.add_char buf s.[!i];
      incr i
    end
  done;
  Buffer.contents buf

let parse_attrs c =
  let attrs = ref [] in
  let rec go () =
    skip_ws c;
    match peek c with
    | Some ch when is_name_char ch ->
        let key = parse_name c in
        skip_ws c;
        (match peek c with
        | Some '=' -> advance c
        | _ -> fail "expected '=' after attribute %s" key);
        skip_ws c;
        let quote =
          match peek c with
          | Some (('"' | '\'') as q) ->
              advance c;
              q
          | _ -> fail "expected a quoted attribute value"
        in
        let start = c.pos in
        while (match peek c with Some ch -> ch <> quote | None -> false) do
          advance c
        done;
        (match peek c with
        | Some _ -> ()
        | None -> fail "unterminated attribute value");
        let v = String.sub c.src start (c.pos - start) in
        advance c;
        attrs := (key, unescape v) :: !attrs;
        go ()
    | _ -> ()
  in
  go ();
  List.rev !attrs

let rec parse_element c =
  if not (starts_with c "<") then fail "expected '<' at offset %d" c.pos;
  advance c;
  let tag = parse_name c in
  let attrs = parse_attrs c in
  skip_ws c;
  if starts_with c "/>" then begin
    skip c "/>";
    Element (tag, attrs, [])
  end
  else if starts_with c ">" then begin
    advance c;
    let kids = ref [] in
    let rec go () =
      if peek c = None then fail "unterminated <%s>" tag
      else if starts_with c "</" then begin
        skip c "</";
        let close = parse_name c in
        if close <> tag then fail "mismatched </%s> for <%s>" close tag;
        skip_ws c;
        if starts_with c ">" then advance c else fail "expected '>'"
      end
      else if starts_with c "<!--" then begin
        skip_misc c;
        go ()
      end
      else if starts_with c "<" then begin
        kids := parse_element c :: !kids;
        go ()
      end
      else begin
        let start = c.pos in
        while
          (match peek c with Some ch -> ch <> '<' | None -> false)
        do
          advance c
        done;
        let s = unescape (String.sub c.src start (c.pos - start)) in
        if String.trim s <> "" then kids := Text s :: !kids;
        go ()
      end
    in
    go ();
    Element (tag, attrs, List.rev !kids)
  end
  else fail "malformed tag <%s" tag

let parse src =
  let c = { src; pos = 0 } in
  skip_misc c;
  let e = parse_element c in
  skip_ws c;
  e

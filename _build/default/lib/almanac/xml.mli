(** A small self-contained XML layer (writer + parser) used for the seed
    interchange format of §V-A d: the seeder compiles Almanac machines to
    XML "for interoperability and portability across OSs", and each
    switch's soil turns the XML back into executable seeds. *)

type t = Element of string * (string * string) list * t list | Text of string

val element : ?attrs:(string * string) list -> string -> t list -> t
val text : string -> t

(** Name of an element ([Invalid_argument] on [Text]). *)
val name : t -> string

val attr : t -> string -> string option

(** Attribute that must exist. *)
val attr_exn : t -> string -> string

val children : t -> t list

(** Child elements with the given name. *)
val select : t -> string -> t list

(** First child element with the name, if any. *)
val first : t -> string -> t option

(** Concatenated text content of a node. *)
val text_content : t -> string

(** Serialize with proper escaping; [indent] pretty-prints (default). *)
val to_string : ?indent:bool -> t -> string

exception Parse_error of string

(** Parse one document element (prolog allowed, comments skipped). *)
val parse : string -> t

lib/baselines/collector.ml: Array Farm_sim Hashtbl List

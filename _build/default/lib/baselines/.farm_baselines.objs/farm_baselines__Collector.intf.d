lib/baselines/collector.mli: Farm_sim

lib/baselines/helios.ml: Farm_net Farm_sim Hashtbl List

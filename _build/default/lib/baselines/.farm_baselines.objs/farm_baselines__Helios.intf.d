lib/baselines/helios.mli: Farm_net Farm_sim

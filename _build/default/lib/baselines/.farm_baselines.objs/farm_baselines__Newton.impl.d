lib/baselines/newton.ml: Farm_net Farm_sim Hashtbl List Option

lib/baselines/newton.mli: Farm_net Farm_sim

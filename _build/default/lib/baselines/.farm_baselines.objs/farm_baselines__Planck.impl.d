lib/baselines/planck.ml: Farm_net Farm_sim Hashtbl List Option

lib/baselines/planck.mli: Farm_net Farm_sim

lib/baselines/sflow.ml: Array Collector Farm_net Farm_sim Hashtbl List

lib/baselines/sflow.mli: Collector Farm_net Farm_sim

lib/baselines/sonata.ml: Array Collector Farm_net Farm_sim Hashtbl List

lib/baselines/sonata.mli: Farm_net Farm_sim

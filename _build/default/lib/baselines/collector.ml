module Engine = Farm_sim.Engine

type t = {
  engine : Engine.t;
  latency : float;
  process_cost : float;
  hh_threshold : float;
  last : (int * int, float * float) Hashtbl.t;  (* (sw,port) -> time,bytes *)
  reported : (int * int, unit) Hashtbl.t;
  mutable detections : (float * int * int) list;  (* newest first *)
  mutable rx_bytes : float;
  mutable rx_records : int;
  mutable cpu : float;
}

let create engine ~latency ~process_cost ~hh_threshold =
  { engine; latency; process_cost; hh_threshold;
    last = Hashtbl.create 256; reported = Hashtbl.create 64;
    detections = []; rx_bytes = 0.; rx_records = 0; cpu = 0. }

let counter_record_bytes = 28.

let process_record t engine ~switch ~port ~bytes ~read_time =
  t.rx_bytes <- t.rx_bytes +. counter_record_bytes;
  t.rx_records <- t.rx_records + 1;
  t.cpu <- t.cpu +. t.process_cost;
  let key = (switch, port) in
  (match Hashtbl.find_opt t.last key with
  | Some (t0, b0) when read_time > t0 ->
      let rate = (bytes -. b0) /. (read_time -. t0) in
      if rate >= t.hh_threshold && not (Hashtbl.mem t.reported key) then begin
        Hashtbl.replace t.reported key ();
        t.detections <- (Engine.now engine, switch, port) :: t.detections
      end
  | Some _ | None -> ());
  Hashtbl.replace t.last key (read_time, bytes)

let push_counters t ~switch ~port ~bytes ~read_time =
  Engine.schedule t.engine ~delay:t.latency (fun engine ->
      process_record t engine ~switch ~port ~bytes ~read_time)

let push_counters_batch t ~switch ~read_time readings =
  Engine.schedule t.engine ~delay:t.latency (fun engine ->
      Array.iteri
        (fun port bytes ->
          process_record t engine ~switch ~port ~bytes ~read_time)
        readings)

let push_opaque t ~bytes ~records =
  Engine.schedule t.engine ~delay:t.latency (fun _ ->
      t.rx_bytes <- t.rx_bytes +. bytes;
      t.rx_records <- t.rx_records + records;
      t.cpu <- t.cpu +. (t.process_cost *. float_of_int records))

let detections t = List.rev t.detections

let first_detection_after t time =
  List.find_opt (fun (d, _, _) -> d >= time) (detections t)

let reset_detections t =
  t.detections <- [];
  Hashtbl.reset t.reported

let rx_bytes t = t.rx_bytes
let rx_records t = t.rx_records
let cpu_busy t = t.cpu

let reset_stats t =
  t.rx_bytes <- 0.;
  t.rx_records <- 0;
  t.cpu <- 0.

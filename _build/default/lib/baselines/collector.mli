(** Central collector shared by the collection-centric baselines: receives
    reports from switch agents over the network, burns collector CPU, keeps
    per-(switch, port) rate estimates and fires heavy-hitter detections.

    This is the "logically centralized collector" whose congestion and
    compute bottleneck motivates FARM (§I). *)

type t

(** [create engine ~latency ~process_cost ~hh_threshold] — [latency] is the
    agent→collector one-way delay, [process_cost] the collector CPU seconds
    per record processed, [hh_threshold] the heavy-hitter rate in bytes/s. *)
val create :
  Farm_sim.Engine.t ->
  latency:float ->
  process_cost:float ->
  hh_threshold:float ->
  t

(** An agent pushes a counter report: cumulative [bytes] of ([switch],
    [port]) read at [read_time].  The collector receives it after the
    network latency, estimates the port rate from consecutive reports and
    records a detection when it crosses the threshold. *)
val push_counters :
  t -> switch:int -> port:int -> bytes:float -> read_time:float -> unit

(** Batched variant: one network event delivering every port counter of a
    switch ([readings.(port) = bytes]). *)
val push_counters_batch :
  t -> switch:int -> read_time:float -> float array -> unit

(** Raw sample/record push that only counts network/CPU load (streams that
    the collector forwards or aggregates without rate tracking). *)
val push_opaque : t -> bytes:float -> records:int -> unit

(** Detections as (detection time, switch, port), oldest first.  A given
    (switch, port) is reported once until [reset_detections]. *)
val detections : t -> (float * int * int) list

val first_detection_after : t -> float -> (float * int * int) option
val reset_detections : t -> unit

(** Total application bytes received (network load towards the collector). *)
val rx_bytes : t -> float

val rx_records : t -> int

(** Collector CPU busy seconds. *)
val cpu_busy : t -> float

val reset_stats : t -> unit

(** Helios model: the topology manager of a hybrid electrical/optical DC
    polls link utilization of every switch in a fixed control loop to
    decide circuit reconfiguration.  Its responsiveness is bounded by the
    loop period (Tab. 4: 77 ms). *)

type config = {
  loop_period : float;  (** the central control loop (77 ms) *)
  collector_latency : float;
}

val default_config : config

type t

val deploy :
  ?config:config ->
  Farm_sim.Engine.t ->
  Farm_net.Fabric.t ->
  hh_threshold:float ->
  t

val detections : t -> (float * int * int) list
val first_detection_after : t -> float -> (float * int * int) option
val rx_bytes : t -> float
val shutdown : t -> unit

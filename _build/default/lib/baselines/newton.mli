(** Newton model: inherits Sonata's P4-based streaming approach but adds
    (1) dynamic deployment — queries can be installed/retuned at runtime
    without switch reboots — and (2) cross-switch stream merging, enabling
    network-wide heavy hitters.  Processing remains logically centralized,
    so its responsiveness is akin to Sonata's (§VII). *)

type config = {
  window : float;
  batch_process_time : float;
  record_bytes : float;
  aggregation_factor : float;
  collector_latency : float;
}

val default_config : config

type t

val deploy :
  ?config:config ->
  Farm_sim.Engine.t ->
  Farm_net.Fabric.t ->
  hh_threshold:float ->
  t

(** Dynamic query update (Newton's key addition over Sonata): change the
    detection threshold at runtime; takes effect at the next batch, no
    redeployment. *)
val update_threshold : t -> float -> unit

(** Network-wide detections (time, port): per-port rates are merged across
    switches before thresholding, so a flow split over paths is still
    caught. *)
val detections : t -> (float * int) list

val first_detection_after : t -> float -> (float * int) option
val rx_bytes : t -> float
val shutdown : t -> unit

(** Planck model: millisecond-scale monitoring through oversubscribed port
    mirroring.  Each switch mirrors sampled packets at a high rate to a
    dedicated collector that estimates per-port rates over a very short
    sliding window — specialized hardware support buys millisecond
    detection (Tab. 4: ~4 ms at 10 Gb/s) at the price of generality. *)

type config = {
  sample_period : float;  (** per-switch mirror sampling interval *)
  min_samples : int;  (** samples of one port needed before deciding *)
  process_latency : float;  (** collector pipeline delay *)
  mirror_latency : float;
}

val default_config : config

type t

val deploy :
  ?config:config ->
  Farm_sim.Engine.t ->
  Farm_net.Fabric.t ->
  hh_threshold:float ->
  t

val detections : t -> (float * int * int) list
val first_detection_after : t -> float -> (float * int * int) option

(** Mirrored bytes shipped to the Planck collector. *)
val rx_bytes : t -> float

val shutdown : t -> unit

module Engine = Farm_sim.Engine
module Fabric = Farm_net.Fabric
module Switch_model = Farm_net.Switch_model

type config = {
  poll_period : float;
  collector_latency : float;
  collector_process_cost : float;
  agent_tick_cost : float;
}

let default_config =
  { poll_period = 0.1;  (* classic 100 ms export *)
    collector_latency = 250e-6;
    collector_process_cost = 2e-6;
    agent_tick_cost = 30e-6 }

type t = {
  collector : Collector.t;
  agent_cpu : (int, float ref) Hashtbl.t;
  timers : Engine.timer list;
}

let deploy ?(config = default_config) engine fabric ~hh_threshold =
  let collector =
    Collector.create engine ~latency:config.collector_latency
      ~process_cost:config.collector_process_cost ~hh_threshold
  in
  let agent_cpu = Hashtbl.create 32 in
  let timers =
    List.map
      (fun sw ->
        let node = Switch_model.id sw in
        let cpu = ref 0. in
        Hashtbl.replace agent_cpu node cpu;
        Engine.every engine ~period:config.poll_period (fun engine ->
            (* read and export every port counter, no local filtering *)
            cpu := !cpu +. config.agent_tick_cost;
            let now = Engine.now engine in
            let readings =
              Array.init (Switch_model.port_count sw) (fun port ->
                  Switch_model.port_bytes sw ~time:now ~port)
            in
            Collector.push_counters_batch collector ~switch:node
              ~read_time:now readings))
      (Fabric.switch_models fabric)
  in
  { collector; agent_cpu; timers }

let collector t = t.collector

let agent_cpu_busy t node =
  match Hashtbl.find_opt t.agent_cpu node with
  | Some r -> !r
  | None -> 0.

let shutdown t = List.iter Engine.cancel t.timers

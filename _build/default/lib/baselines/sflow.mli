(** sFlow model (RFC 3176): lightweight agents on every switch
    periodically read {e all} port counters and forward them, unfiltered,
    to the central collector which does every bit of analysis.

    Agent-side processing is minimal and constant (the paper's Fig. 5:
    sFlow's switch CPU load is flat in the number of flows) while network
    load to the collector grows linearly with port count and polling rate
    (Fig. 4). *)

type config = {
  poll_period : float;  (** counter export period (1 ms / 10 ms in Fig. 4) *)
  collector_latency : float;
  collector_process_cost : float;  (** CPU s per record at the collector *)
  agent_tick_cost : float;  (** switch CPU s per export tick *)
}

val default_config : config

type t

val deploy :
  ?config:config ->
  Farm_sim.Engine.t ->
  Farm_net.Fabric.t ->
  hh_threshold:float ->
  t

val collector : t -> Collector.t

(** Switch-agent CPU busy seconds on one switch. *)
val agent_cpu_busy : t -> int -> float

(** Stop the agents. *)
val shutdown : t -> unit

(** Sonata model: query-driven streaming telemetry.  The data plane
    reduces traffic to per-window records (the paper grants it a 75 %
    aggregation factor); a central Spark-Streaming-like job processes each
    window as a batch.  Detection can therefore only happen at
    {e batch boundaries} plus the batch processing delay — the source of
    Sonata's multi-second responsiveness in Tab. 4.  Per §VII it computes
    {e switch-local} heavy hitters only (no cross-switch merge). *)

type config = {
  window : float;  (** streaming batch window (s) *)
  batch_process_time : float;  (** Spark batch processing delay (s) *)
  aggregation_factor : float;  (** fraction of records removed in-network *)
  record_bytes : float;
  collector_latency : float;
  collector_process_cost : float;
}

val default_config : config

type t

val deploy :
  ?config:config ->
  Farm_sim.Engine.t ->
  Farm_net.Fabric.t ->
  hh_threshold:float ->
  t

(** (time, switch, port) detections, oldest first. *)
val detections : t -> (float * int * int) list

val first_detection_after : t -> float -> (float * int * int) option

(** Bytes shipped to the streaming backend. *)
val rx_bytes : t -> float

val shutdown : t -> unit

lib/net/fabric.ml: Array Farm_sim Flow Hashtbl Ipaddr List Option Printf Routing Stdlib Switch_model Topology

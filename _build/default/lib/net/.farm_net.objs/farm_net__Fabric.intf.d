lib/net/fabric.mli: Farm_sim Flow Ipaddr Routing Switch_model Topology

lib/net/filter.ml: Flow Format Int Ipaddr List Stdlib

lib/net/filter.mli: Flow Format Ipaddr

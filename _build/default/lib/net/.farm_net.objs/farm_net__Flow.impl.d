lib/net/flow.ml: Format Int Ipaddr Stdlib

lib/net/flow.mli: Format Ipaddr

lib/net/ipaddr.ml: Format Int Option Printf String

lib/net/ipaddr.mli: Format

lib/net/routing.ml: Array Filter Flow Hashtbl Ipaddr List Queue Topology

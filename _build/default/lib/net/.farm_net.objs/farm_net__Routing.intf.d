lib/net/routing.mli: Filter Flow Ipaddr Topology

lib/net/switch_model.ml: Array Farm_sim Filter Float Flow Hashtbl Ipaddr Map Option Printf Stdlib Tcam

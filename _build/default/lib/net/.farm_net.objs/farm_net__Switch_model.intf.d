lib/net/switch_model.mli: Farm_sim Filter Flow Tcam

lib/net/tcam.ml: Filter Float List

lib/net/tcam.mli: Filter Flow

lib/net/topology.ml: Array Hashtbl Ipaddr List Option Printf

lib/net/topology.mli: Ipaddr

lib/net/traffic.ml: Fabric Farm_sim Flow Fun List Option

lib/net/traffic.mli: Fabric Farm_sim Ipaddr

type atom =
  | Src_ip of Ipaddr.Prefix.t
  | Dst_ip of Ipaddr.Prefix.t
  | Src_port of int
  | Dst_port of int
  | Port of int
  | Proto of Flow.proto
  | Any

type t =
  | True
  | False
  | Atom of atom
  | And of t * t
  | Or of t * t
  | Not of t

let atom a = Atom a
let ( &&& ) a b = And (a, b)
let ( ||| ) a b = Or (a, b)

let matches_atom a (h : Flow.five_tuple) =
  match a with
  | Src_ip p -> Ipaddr.Prefix.mem h.src p
  | Dst_ip p -> Ipaddr.Prefix.mem h.dst p
  | Src_port p -> h.sport = p
  | Dst_port p -> h.dport = p
  | Port p -> h.sport = p || h.dport = p
  | Proto p -> h.proto = p
  | Any -> true

let rec matches t h =
  match t with
  | True -> true
  | False -> false
  | Atom a -> matches_atom a h
  | And (a, b) -> matches a h && matches b h
  | Or (a, b) -> matches a h || matches b h
  | Not a -> not (matches a h)

type subject =
  | All_ports
  | Port_counter of int
  | Prefix_counter of Ipaddr.Prefix.t
  | Proto_counter of Flow.proto

let subject_equal a b =
  match (a, b) with
  | All_ports, All_ports -> true
  | Port_counter x, Port_counter y -> x = y
  | Prefix_counter x, Prefix_counter y -> Ipaddr.Prefix.equal x y
  | Proto_counter x, Proto_counter y -> x = y
  | (All_ports | Port_counter _ | Prefix_counter _ | Proto_counter _), _ ->
      false

let subject_compare a b =
  let rank = function
    | All_ports -> 0
    | Port_counter _ -> 1
    | Prefix_counter _ -> 2
    | Proto_counter _ -> 3
  in
  match (a, b) with
  | All_ports, All_ports -> 0
  | Port_counter x, Port_counter y -> Int.compare x y
  | Prefix_counter x, Prefix_counter y -> Ipaddr.Prefix.compare x y
  | Proto_counter x, Proto_counter y -> Stdlib.compare x y
  | _ -> Int.compare (rank a) (rank b)

let pp_subject ppf = function
  | All_ports -> Format.pp_print_string ppf "ports:*"
  | Port_counter p -> Format.fprintf ppf "port:%d" p
  | Prefix_counter p -> Format.fprintf ppf "prefix:%a" Ipaddr.Prefix.pp p
  | Proto_counter p ->
      Format.fprintf ppf "proto:%s" (Flow.proto_to_string p)

let subjects t =
  (* φ_enc: conservative — every atom appearing (non-negated) in the filter
     contributes the counters needed to evaluate it. *)
  let add acc s = if List.exists (subject_equal s) acc then acc else s :: acc in
  let rec go acc = function
    | True | False -> acc
    | Atom Any -> add acc All_ports
    | Atom (Src_port p | Dst_port p | Port p) -> add acc (Port_counter p)
    | Atom (Src_ip p | Dst_ip p) -> add acc (Prefix_counter p)
    | Atom (Proto p) -> add acc (Proto_counter p)
    | And (a, b) | Or (a, b) -> go (go acc a) b
    | Not a -> go acc a
  in
  List.rev (go [] t)

let atom_equal a b =
  match (a, b) with
  | Src_ip x, Src_ip y | Dst_ip x, Dst_ip y -> Ipaddr.Prefix.equal x y
  | Src_port x, Src_port y | Dst_port x, Dst_port y | Port x, Port y -> x = y
  | Proto x, Proto y -> x = y
  | Any, Any -> true
  | (Src_ip _ | Dst_ip _ | Src_port _ | Dst_port _ | Port _ | Proto _ | Any), _
    ->
      false

let rec equal a b =
  match (a, b) with
  | True, True | False, False -> true
  | Atom x, Atom y -> atom_equal x y
  | And (a1, a2), And (b1, b2) | Or (a1, a2), Or (b1, b2) ->
      equal a1 b1 && equal a2 b2
  | Not x, Not y -> equal x y
  | (True | False | Atom _ | And _ | Or _ | Not _), _ -> false

let pp_atom ppf = function
  | Src_ip p -> Format.fprintf ppf "srcIP %a" Ipaddr.Prefix.pp p
  | Dst_ip p -> Format.fprintf ppf "dstIP %a" Ipaddr.Prefix.pp p
  | Src_port p -> Format.fprintf ppf "srcPort %d" p
  | Dst_port p -> Format.fprintf ppf "dstPort %d" p
  | Port p -> Format.fprintf ppf "port %d" p
  | Proto p -> Format.fprintf ppf "proto %s" (Flow.proto_to_string p)
  | Any -> Format.pp_print_string ppf "port ANY"

let rec pp ppf = function
  | True -> Format.pp_print_string ppf "true"
  | False -> Format.pp_print_string ppf "false"
  | Atom a -> pp_atom ppf a
  | And (a, b) -> Format.fprintf ppf "(%a and %a)" pp a pp b
  | Or (a, b) -> Format.fprintf ppf "(%a or %a)" pp a pp b
  | Not a -> Format.fprintf ppf "(not %a)" pp a

let to_string t = Format.asprintf "%a" pp t

(** Packet/traffic filter expressions — the [fil] production of Almanac's
    grammar.  Filters serve three distinct purposes in FARM, all covered
    here:

    - matching packets at runtime (probing, TCAM patterns);
    - describing {e polling subjects} for the poll-aggregation analysis
      ([subjects], the paper's φ{_enc});
    - constraining seed placement to paths carrying matching traffic
      (evaluated against host prefixes by the SDN controller model). *)

type atom =
  | Src_ip of Ipaddr.Prefix.t
  | Dst_ip of Ipaddr.Prefix.t
  | Src_port of int
  | Dst_port of int
  | Port of int  (** either source or destination port *)
  | Proto of Flow.proto
  | Any  (** wildcard: every port / every packet *)

type t =
  | True
  | False
  | Atom of atom
  | And of t * t
  | Or of t * t
  | Not of t

val atom : atom -> t
val ( &&& ) : t -> t -> t
val ( ||| ) : t -> t -> t

(** Does a packet header match? *)
val matches : t -> Flow.five_tuple -> bool

(** A {e polling subject} identifies one unit of data polled from the ASIC
    (a port counter group, a per-prefix counter, a protocol counter...).
    Two poll variables whose subject sets intersect can share polls — the
    aggregation opportunity exploited by the soil and the placement
    optimizer. *)
type subject =
  | All_ports
  | Port_counter of int
  | Prefix_counter of Ipaddr.Prefix.t
  | Proto_counter of Flow.proto

val subject_equal : subject -> subject -> bool
val subject_compare : subject -> subject -> int
val pp_subject : Format.formatter -> subject -> unit

(** φ{_enc}: the polling subjects a filter requires from the ASIC. *)
val subjects : t -> subject list

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string

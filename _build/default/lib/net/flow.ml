type proto = Tcp | Udp | Icmp

let proto_to_string = function Tcp -> "tcp" | Udp -> "udp" | Icmp -> "icmp"

type five_tuple = {
  src : Ipaddr.t;
  dst : Ipaddr.t;
  sport : int;
  dport : int;
  proto : proto;
}

type tcp_flags = { syn : bool; ack : bool; fin : bool; rst : bool }

let no_flags = { syn = false; ack = false; fin = false; rst = false }
let syn_only = { no_flags with syn = true }
let syn_ack = { no_flags with syn = true; ack = true }

type packet = {
  tuple : five_tuple;
  size : int;
  flags : tcp_flags;
  payload : string;
}

type t = { id : int; tuple : five_tuple; rate : float; path : int list }

let tuple_equal a b =
  Ipaddr.equal a.src b.src && Ipaddr.equal a.dst b.dst && a.sport = b.sport
  && a.dport = b.dport && a.proto = b.proto

let tuple_compare a b =
  let c = Ipaddr.compare a.src b.src in
  if c <> 0 then c
  else
    let c = Ipaddr.compare a.dst b.dst in
    if c <> 0 then c
    else
      let c = Int.compare a.sport b.sport in
      if c <> 0 then c
      else
        let c = Int.compare a.dport b.dport in
        if c <> 0 then c else Stdlib.compare a.proto b.proto

let pp_tuple ppf t =
  Format.fprintf ppf "%a:%d -> %a:%d (%s)" Ipaddr.pp t.src t.sport Ipaddr.pp
    t.dst t.dport (proto_to_string t.proto)

let packet ?(flags = no_flags) ?(payload = "") tuple size =
  { tuple; size; flags; payload }

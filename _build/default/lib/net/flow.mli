(** Flows and packet headers — the traffic objects seen by filters, TCAM
    rules and monitoring tasks. *)

type proto = Tcp | Udp | Icmp

val proto_to_string : proto -> string

type five_tuple = {
  src : Ipaddr.t;
  dst : Ipaddr.t;
  sport : int;
  dport : int;
  proto : proto;
}

(** TCP flag view carried by sampled/probed packets (SYN-flood detection and
    friends inspect these). *)
type tcp_flags = { syn : bool; ack : bool; fin : bool; rst : bool }

val no_flags : tcp_flags
val syn_only : tcp_flags
val syn_ack : tcp_flags

type packet = {
  tuple : five_tuple;
  size : int;  (** bytes *)
  flags : tcp_flags;
  payload : string;  (** synthetic payload excerpt, e.g. DNS qname *)
}

type t = {
  id : int;
  tuple : five_tuple;
  rate : float;  (** bytes per second while active *)
  path : int list;  (** switch ids traversed, in order *)
}

val tuple_equal : five_tuple -> five_tuple -> bool
val tuple_compare : five_tuple -> five_tuple -> int
val pp_tuple : Format.formatter -> five_tuple -> unit

(** A fresh packet of [size] bytes for the tuple with default flags. *)
val packet : ?flags:tcp_flags -> ?payload:string -> five_tuple -> int -> packet

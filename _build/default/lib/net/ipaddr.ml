type t = int

let mask32 = 0xFFFFFFFF
let of_int i = i land mask32
let to_int t = t

let make a b c d =
  let octet x =
    if x < 0 || x > 255 then invalid_arg "Ipaddr.make: octet out of range"
    else x
  in
  (octet a lsl 24) lor (octet b lsl 16) lor (octet c lsl 8) lor octet d

let of_string_opt s =
  match String.split_on_char '.' s with
  | [ a; b; c; d ] -> (
      match
        (int_of_string_opt a, int_of_string_opt b, int_of_string_opt c,
         int_of_string_opt d)
      with
      | Some a, Some b, Some c, Some d
        when a >= 0 && a <= 255 && b >= 0 && b <= 255 && c >= 0 && c <= 255
             && d >= 0 && d <= 255 ->
          Some (make a b c d)
      | _ -> None)
  | _ -> None

let of_string s =
  match of_string_opt s with
  | Some t -> t
  | None -> invalid_arg (Printf.sprintf "Ipaddr.of_string: %S" s)

let to_string t =
  Printf.sprintf "%d.%d.%d.%d" ((t lsr 24) land 0xFF) ((t lsr 16) land 0xFF)
    ((t lsr 8) land 0xFF) (t land 0xFF)

let equal = Int.equal
let compare = Int.compare
let pp ppf t = Format.pp_print_string ppf (to_string t)

module Prefix = struct
  type addr = t
  type t = { addr : addr; len : int }

  let mask len = if len = 0 then 0 else mask32 lxor ((1 lsl (32 - len)) - 1)

  let make addr len =
    if len < 0 || len > 32 then invalid_arg "Ipaddr.Prefix.make: bad length";
    { addr = addr land mask len; len }

  let of_string_opt s =
    match String.index_opt s '/' with
    | None -> Option.map (fun a -> make a 32) (of_string_opt s)
    | Some i -> (
        let a = String.sub s 0 i in
        let l = String.sub s (i + 1) (String.length s - i - 1) in
        match (of_string_opt a, int_of_string_opt l) with
        | Some a, Some l when l >= 0 && l <= 32 -> Some (make a l)
        | _ -> None)

  let of_string s =
    match of_string_opt s with
    | Some t -> t
    | None -> invalid_arg (Printf.sprintf "Ipaddr.Prefix.of_string: %S" s)

  let to_string t = Printf.sprintf "%s/%d" (to_string t.addr) t.len
  let address t = t.addr
  let length t = t.len
  let mem a t = a land mask t.len = t.addr

  let subset a b = a.len >= b.len && mem a.addr b

  let overlap a b = subset a b || subset b a

  let equal a b = a.addr = b.addr && a.len = b.len

  let compare a b =
    match Int.compare a.addr b.addr with
    | 0 -> Int.compare a.len b.len
    | c -> c

  let pp ppf t = Format.pp_print_string ppf (to_string t)
end

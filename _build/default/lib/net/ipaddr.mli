(** IPv4 addresses and CIDR prefixes (the address substrate for Almanac
    packet filters and TCAM rules). *)

type t = private int
(** An IPv4 address as a 32-bit value in a native int. *)

val of_int : int -> t
val to_int : t -> int

(** [of_string "10.1.1.4"] — raises [Invalid_argument] on malformed input. *)
val of_string : string -> t

val of_string_opt : string -> t option
val to_string : t -> string

(** [make a b c d] builds [a.b.c.d]; each octet must be in [0, 255]. *)
val make : int -> int -> int -> int -> t

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit

module Prefix : sig
  type addr := t

  type t
  (** A CIDR prefix such as [10.0.1.0/24]. *)

  (** [make addr len] with [len] in [0, 32]; host bits are zeroed. *)
  val make : addr -> int -> t

  (** Parses ["10.0.1.0/24"]; a bare address is a /32. *)
  val of_string : string -> t

  val of_string_opt : string -> t option
  val to_string : t -> string
  val address : t -> addr
  val length : t -> int
  val mem : addr -> t -> bool

  (** [subset a b] is true when every address of [a] is in [b]. *)
  val subset : t -> t -> bool

  (** Do the two prefixes share any address? *)
  val overlap : t -> t -> bool

  val equal : t -> t -> bool
  val compare : t -> t -> int
  val pp : Format.formatter -> t -> unit
end

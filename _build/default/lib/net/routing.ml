type path = int list

(* BFS from dst computing distance, then enumerate shortest paths from src
   by walking strictly-decreasing distances. *)
let shortest_paths ?(max_paths = 64) topo ~src ~dst =
  let n = Topology.node_count topo in
  if src < 0 || src >= n || dst < 0 || dst >= n then []
  else begin
    let dist = Array.make n max_int in
    dist.(dst) <- 0;
    let q = Queue.create () in
    Queue.add dst q;
    while not (Queue.is_empty q) do
      let u = Queue.pop q in
      List.iter
        (fun v ->
          if dist.(v) = max_int then begin
            dist.(v) <- dist.(u) + 1;
            Queue.add v q
          end)
        (Topology.neighbors topo u)
    done;
    if dist.(src) = max_int then []
    else begin
      let acc = ref [] in
      let count = ref 0 in
      let rec walk node prefix =
        if !count < max_paths then
          if node = dst then begin
            acc := List.rev (dst :: prefix) :: !acc;
            incr count
          end
          else
            List.iter
              (fun v ->
                if dist.(v) = dist.(node) - 1 then walk v (node :: prefix))
              (Topology.neighbors topo node)
      in
      walk src [];
      List.rev !acc
    end
  end

let tuple_hash (t : Flow.five_tuple) =
  let h = Hashtbl.hash (Ipaddr.to_int t.src, Ipaddr.to_int t.dst, t.sport,
                        t.dport, t.proto) in
  abs h

let route_flow topo tuple =
  match
    ( Topology.host_of_addr topo tuple.Flow.src,
      Topology.host_of_addr topo tuple.Flow.dst )
  with
  | Some s, Some d -> (
      match shortest_paths topo ~src:s ~dst:d with
      | [] -> None
      | paths ->
          let k = tuple_hash tuple mod List.length paths in
          Some (List.nth paths k))
  | _ -> None

(* Three-valued filter evaluation under src/dst prefix constraints.
   Returns (certainly_true, possibly_true). *)
let rec eval3 f ~src ~dst =
  match f with
  | Filter.True -> (true, true)
  | Filter.False -> (false, false)
  | Filter.Atom a -> (
      match a with
      | Filter.Src_ip p ->
          (Ipaddr.Prefix.subset src p, Ipaddr.Prefix.overlap src p)
      | Filter.Dst_ip p ->
          (Ipaddr.Prefix.subset dst p, Ipaddr.Prefix.overlap dst p)
      | Filter.Src_port _ | Filter.Dst_port _ | Filter.Port _
      | Filter.Proto _ ->
          (false, true)  (* ports/protocols unconstrained by host prefixes *)
      | Filter.Any -> (true, true))
  | Filter.And (a, b) ->
      let ca, pa = eval3 a ~src ~dst and cb, pb = eval3 b ~src ~dst in
      (ca && cb, pa && pb)
  | Filter.Or (a, b) ->
      let ca, pa = eval3 a ~src ~dst and cb, pb = eval3 b ~src ~dst in
      (ca || cb, pa || pb)
  | Filter.Not a ->
      let c, p = eval3 a ~src ~dst in
      (not p, not c)

let satisfiable f ~src ~dst = snd (eval3 f ~src ~dst)

let paths_matching ?(max_paths = 64) topo f =
  let hosts = Topology.hosts topo in
  let pairs =
    List.concat_map
      (fun (h1 : Topology.node) ->
        List.filter_map
          (fun (h2 : Topology.node) ->
            if h1.id = h2.id then None
            else
              match (h1.prefix, h2.prefix) with
              | Some p1, Some p2 when satisfiable f ~src:p1 ~dst:p2 ->
                  Some (h1.id, h2.id)
              | _ -> None)
          hosts)
      hosts
  in
  List.concat_map
    (fun (s, d) -> shortest_paths ~max_paths topo ~src:s ~dst:d)
    pairs

let path_switches topo p = List.filter (Topology.is_switch topo) p

let path_latency topo p =
  let rec go acc = function
    | a :: (b :: _ as rest) -> go (acc +. Topology.link_latency topo a b) rest
    | [ _ ] | [] -> acc
  in
  go 0. p

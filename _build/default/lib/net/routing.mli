(** Routing and the SDN-controller path queries used by the seeder.

    Provides all-shortest-path enumeration (ECMP candidate set) and
    φ{_path}: the set of paths that traffic matching a filter can take —
    the primitive behind Almanac's range-based placement constraints
    ([place any receiver ex range <= 1] etc., §III-B). *)

type path = int list
(** Node ids in order, endpoints included. *)

(** All shortest paths between two nodes (BFS + DAG enumeration).  Empty if
    disconnected.  [max_paths] caps enumeration (default 64). *)
val shortest_paths : ?max_paths:int -> Topology.t -> src:int -> dst:int -> path list

(** One ECMP path chosen deterministically from [flow] (hash of the tuple
    selects among equal-cost candidates). *)
val route_flow : Topology.t -> Flow.five_tuple -> path option

(** φ{_path}: paths between host pairs that can carry traffic matching the
    filter.  A host pair (h1, h2) qualifies when the filter is satisfiable
    given src ∈ prefix(h1) and dst ∈ prefix(h2). *)
val paths_matching : ?max_paths:int -> Topology.t -> Filter.t -> path list

(** Switch ids of a path, in order (drops host endpoints). *)
val path_switches : Topology.t -> path -> int list

(** Sum of link latencies along a path. *)
val path_latency : Topology.t -> path -> float

(** Can the filter match a packet with src in [src] and dst in [dst]?
    Three-valued evaluation, conservative towards "possible". *)
val satisfiable :
  Filter.t -> src:Ipaddr.Prefix.t -> dst:Ipaddr.Prefix.t -> bool

type action =
  | Forward of int
  | Drop
  | Rate_limit of float
  | Set_qos of int
  | Mirror
  | Count

type region = Forwarding | Monitoring

type rule = { pattern : Filter.t; action : action; priority : int }

type installed = {
  id : int;
  region : region;
  rule : rule;
  mutable bytes : float;
  mutable packets : float;
}

type t = {
  capacity : int;
  mon_capacity : int;
  mutable next_id : int;
  mutable forwarding : installed list;  (* sorted by decreasing priority *)
  mutable monitoring : installed list;
}

let create ?(monitoring_share = 0.25) ~capacity () =
  if capacity <= 0 then invalid_arg "Tcam.create: capacity must be positive";
  if monitoring_share < 0. || monitoring_share > 1. then
    invalid_arg "Tcam.create: monitoring_share must be in [0, 1]";
  let mon_capacity = int_of_float (float_of_int capacity *. monitoring_share) in
  { capacity; mon_capacity; next_id = 0; forwarding = []; monitoring = [] }

let capacity t = t.capacity

let region_capacity t = function
  | Forwarding -> t.capacity - t.mon_capacity
  | Monitoring -> t.mon_capacity

let region_rules t = function
  | Forwarding -> t.forwarding
  | Monitoring -> t.monitoring

let region_used t r = List.length (region_rules t r)
let free t r = region_capacity t r - region_used t r

let insert_sorted entry rules =
  let rec go = function
    | [] -> [ entry ]
    | e :: rest when e.rule.priority >= entry.rule.priority -> e :: go rest
    | rest -> entry :: rest
  in
  go rules

let add t region rule =
  if free t region <= 0 then Error `Full
  else begin
    let entry =
      { id = t.next_id; region; rule; bytes = 0.; packets = 0. }
    in
    t.next_id <- t.next_id + 1;
    (match region with
    | Forwarding -> t.forwarding <- insert_sorted entry t.forwarding
    | Monitoring -> t.monitoring <- insert_sorted entry t.monitoring);
    Ok entry
  end

let remove t region ~pattern =
  let keep, gone =
    List.partition
      (fun e -> not (Filter.equal e.rule.pattern pattern))
      (region_rules t region)
  in
  (match region with
  | Forwarding -> t.forwarding <- keep
  | Monitoring -> t.monitoring <- keep);
  List.length gone

let find t region ~pattern =
  List.find_opt
    (fun e -> Filter.equal e.rule.pattern pattern)
    (region_rules t region)

let lookup t tuple =
  let best rules =
    List.find_opt (fun e -> Filter.matches e.rule.pattern tuple) rules
  in
  match best t.forwarding with
  | Some e -> (
      (* a higher-priority monitoring rule can still win *)
      match best t.monitoring with
      | Some m when m.rule.priority > e.rule.priority -> Some m
      | Some _ | None -> Some e)
  | None -> best t.monitoring

let record t tuple ~bytes =
  let touch e =
    if Filter.matches e.rule.pattern tuple then begin
      e.bytes <- e.bytes +. bytes;
      (* packet counter estimated at ~1000 B/packet; at least one packet
         per recorded burst *)
      e.packets <- e.packets +. Float.max 1. (bytes /. 1000.)
    end
  in
  List.iter touch t.forwarding;
  List.iter touch t.monitoring

let rules t region = region_rules t region

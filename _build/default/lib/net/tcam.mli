(** Ternary content-addressable memory (TCAM) model.

    The TCAM is split into a {e forwarding} region and a {e monitoring}
    region (the iSTAMP-inspired division of §II-B): monitoring rules
    installed by seeds can never evict or starve forwarding rules, so
    switching behaviour is unaffected by FARM operation.  Each rule carries
    byte/packet counters pollable over the PCIe bus. *)

type action =
  | Forward of int  (** egress port *)
  | Drop
  | Rate_limit of float  (** bytes per second cap *)
  | Set_qos of int  (** QoS class *)
  | Mirror  (** copy to the monitoring channel *)
  | Count  (** pure telemetry rule *)

type region = Forwarding | Monitoring

type rule = { pattern : Filter.t; action : action; priority : int }

type installed = private {
  id : int;
  region : region;
  rule : rule;
  mutable bytes : float;
  mutable packets : float;
}

type t

(** [create ~capacity ~monitoring_share] — [monitoring_share] in [0,1] is the
    fraction of entries reserved for the monitoring region (default 0.25). *)
val create : ?monitoring_share:float -> capacity:int -> unit -> t

val capacity : t -> int
val region_capacity : t -> region -> int
val region_used : t -> region -> int
val free : t -> region -> int

(** Install a rule; [Error `Full] if the region is out of entries. *)
val add : t -> region -> rule -> (installed, [ `Full ]) result

(** Remove all rules of the region whose pattern equals [pattern]; returns
    how many were removed. *)
val remove : t -> region -> pattern:Filter.t -> int

val find : t -> region -> pattern:Filter.t -> installed option

(** Highest-priority matching rule across both regions (forwarding wins
    ties, as the ASIC evaluates it first). *)
val lookup : t -> Flow.five_tuple -> installed option

(** Account [bytes] of traffic for the tuple on every matching rule (the
    ASIC updates counters for all matched entries in its counter banks). *)
val record : t -> Flow.five_tuple -> bytes:float -> unit

val rules : t -> region -> installed list

module Engine = Farm_sim.Engine
module Rng = Farm_sim.Rng

type profile = {
  concurrent_flows : int;
  mean_rate : float;
  zipf_s : float;
  mean_lifetime : float;
}

let default_profile =
  { concurrent_flows = 100; mean_rate = 100_000.; zipf_s = 1.;
    mean_lifetime = 30. }

let random_tuple fabric rng ?src ?dst ?(sport = 0) ?(dport = 0)
    ?(proto = Flow.Tcp) () =
  let src = match src with Some s -> s | None -> Fabric.random_host_addr fabric rng in
  let dst = match dst with Some d -> d | None -> Fabric.random_host_addr fabric rng in
  let sport = if sport > 0 then sport else 1024 + Rng.int rng 60_000 in
  let dport = if dport > 0 then dport else 1024 + Rng.int rng 60_000 in
  { Flow.src; dst; sport; dport; proto }

let background engine fabric rng profile =
  let spawn_one engine =
    let tuple = random_tuple fabric rng () in
    (* Zipf rank scales the rate: a handful of flows are much faster *)
    let rank = Rng.zipf rng ~n:1000 ~s:profile.zipf_s in
    let rate = profile.mean_rate *. (10. /. float_of_int (rank + 10)) in
    let time = Engine.now engine in
    match Fabric.start_flow fabric ~time ~tuple ~rate () with
    | None -> ()
    | Some id ->
        let life = Rng.exponential rng (1. /. profile.mean_lifetime) in
        Engine.schedule engine ~delay:life (fun engine ->
            Fabric.stop_flow fabric ~time:(Engine.now engine) id)
  in
  (* refill loop keeps the target concurrency *)
  let refill engine =
    let missing = profile.concurrent_flows - Fabric.active_flow_count fabric in
    for _ = 1 to missing do
      spawn_one engine
    done
  in
  Engine.schedule engine ~delay:0. refill;
  ignore
    (Engine.every engine ~period:(profile.mean_lifetime /. 10.) refill)

let heavy_hitter engine fabric rng ~at ~rate ?src ?dst () =
  let result = ref None in
  Engine.schedule_at engine ~time:at (fun engine ->
      let tuple = random_tuple fabric rng ?src ?dst () in
      result :=
        Fabric.start_flow fabric ~time:(Engine.now engine) ~tuple ~rate ());
  result

let timed_flows engine fabric ~at ~duration mk_flows =
  Engine.schedule_at engine ~time:at (fun engine ->
      let time = Engine.now engine in
      let ids = mk_flows time in
      Engine.schedule engine ~delay:duration (fun engine ->
          List.iter
            (fun id -> Fabric.stop_flow fabric ~time:(Engine.now engine) id)
            ids))

let syn_flood engine fabric rng ~at ~duration ~victim ~rate_per_source
    ~sources =
  timed_flows engine fabric ~at ~duration (fun time ->
      List.filter_map
        (fun _ ->
          let tuple = random_tuple fabric rng ~dst:victim ~dport:80 () in
          Fabric.start_flow fabric ~time ~tuple ~rate:rate_per_source
            ~flags:Flow.syn_only ())
        (List.init sources Fun.id))

let port_scan engine fabric rng ~at ~duration ~victim ~ports =
  timed_flows engine fabric ~at ~duration (fun time ->
      let src = Fabric.random_host_addr fabric rng in
      List.filter_map
        (fun i ->
          let tuple =
            { Flow.src; dst = victim; sport = 40_000 + i; dport = 1 + i;
              proto = Flow.Tcp }
          in
          Fabric.start_flow fabric ~time ~tuple ~rate:500.
            ~flags:Flow.syn_only ())
        (List.init ports Fun.id))

let superspreader engine fabric rng ~at ~duration ~fanout =
  timed_flows engine fabric ~at ~duration (fun time ->
      let src = Fabric.random_host_addr fabric rng in
      List.filter_map
        (fun _ ->
          let tuple = random_tuple fabric rng ~src () in
          Fabric.start_flow fabric ~time ~tuple ~rate:2000. ())
        (List.init fanout Fun.id))

let dns_reflection engine fabric rng ~at ~duration ~victim ~reflectors
    ~rate_per_reflector =
  timed_flows engine fabric ~at ~duration (fun time ->
      List.filter_map
        (fun _ ->
          let src = Fabric.random_host_addr fabric rng in
          let tuple =
            { Flow.src; dst = victim; sport = 53;
              dport = 1024 + Rng.int rng 60_000; proto = Flow.Udp }
          in
          Fabric.start_flow fabric ~time ~tuple ~rate:rate_per_reflector
            ~payload:"dns-resp" ())
        (List.init reflectors Fun.id))

let ssh_brute_force engine fabric rng ~at ~duration ~victim ~attempts_per_sec =
  (* short-lived connections to port 22, re-spawned at the attempt rate *)
  Engine.schedule_at engine ~time:at (fun engine ->
      let src = Fabric.random_host_addr fabric rng in
      let stop_at = Engine.now engine +. duration in
      let timer = ref None in
      let attempt engine =
        if Engine.now engine >= stop_at then
          Option.iter Engine.cancel !timer
        else begin
          let tuple = random_tuple fabric rng ~src ~dst:victim ~dport:22 () in
          match
            Fabric.start_flow fabric ~time:(Engine.now engine) ~tuple
              ~rate:1000. ~flags:Flow.syn_only ()
          with
          | None -> ()
          | Some id ->
              Engine.schedule engine ~delay:0.2 (fun engine ->
                  Fabric.stop_flow fabric ~time:(Engine.now engine) id)
        end
      in
      timer := Some (Engine.every engine ~period:(1. /. attempts_per_sec) attempt))

let slowloris engine fabric rng ~at ~duration ~victim ~connections =
  timed_flows engine fabric ~at ~duration (fun time ->
      List.filter_map
        (fun _ ->
          let tuple = random_tuple fabric rng ~dst:victim ~dport:80 () in
          (* barely-alive connections: a few bytes per second *)
          Fabric.start_flow fabric ~time ~tuple ~rate:10. ())
        (List.init connections Fun.id))

(** Synthetic workload generation: background data-center traffic with
    Zipf-distributed flow rates, heavy-hitter injection with controlled
    ratio and churn, and the attack patterns behind the 16 use cases of
    Table I. *)

type profile = {
  concurrent_flows : int;  (** target number of active background flows *)
  mean_rate : float;  (** bytes/s of a median flow *)
  zipf_s : float;  (** rate skew; 0 = uniform *)
  mean_lifetime : float;  (** seconds, exponential *)
}

val default_profile : profile

(** Keeps [profile.concurrent_flows] background flows active: each finished
    flow is replaced by a fresh one between random hosts. *)
val background :
  Farm_sim.Engine.t -> Fabric.t -> Farm_sim.Rng.t -> profile -> unit

(** Start a long-lived elephant flow of [rate] bytes/s at time [at] between
    random (or given) endpoints; the returned ref holds the flow id once
    started. *)
val heavy_hitter :
  Farm_sim.Engine.t ->
  Fabric.t ->
  Farm_sim.Rng.t ->
  at:float ->
  rate:float ->
  ?src:Ipaddr.t ->
  ?dst:Ipaddr.t ->
  unit ->
  int option ref

(** {2 Attack generators (Table I workloads)}

    Each starts at [at] and lasts [duration] seconds. *)

(** Many SYN-only small flows from spoofed sources to one victim. *)
val syn_flood :
  Farm_sim.Engine.t -> Fabric.t -> Farm_sim.Rng.t ->
  at:float -> duration:float -> victim:Ipaddr.t -> rate_per_source:float ->
  sources:int -> unit

(** One scanner probing [ports] consecutive destination ports of a victim. *)
val port_scan :
  Farm_sim.Engine.t -> Fabric.t -> Farm_sim.Rng.t ->
  at:float -> duration:float -> victim:Ipaddr.t -> ports:int -> unit

(** One source contacting [fanout] distinct destinations. *)
val superspreader :
  Farm_sim.Engine.t -> Fabric.t -> Farm_sim.Rng.t ->
  at:float -> duration:float -> fanout:int -> unit

(** Large UDP responses from port 53 towards the victim (amplification). *)
val dns_reflection :
  Farm_sim.Engine.t -> Fabric.t -> Farm_sim.Rng.t ->
  at:float -> duration:float -> victim:Ipaddr.t -> reflectors:int ->
  rate_per_reflector:float -> unit

(** Repeated short TCP connections to port 22 of the victim. *)
val ssh_brute_force :
  Farm_sim.Engine.t -> Fabric.t -> Farm_sim.Rng.t ->
  at:float -> duration:float -> victim:Ipaddr.t -> attempts_per_sec:float ->
  unit

(** Many long-lived, very low-rate connections to port 80 of the victim. *)
val slowloris :
  Farm_sim.Engine.t -> Fabric.t -> Farm_sim.Rng.t ->
  at:float -> duration:float -> victim:Ipaddr.t -> connections:int -> unit

lib/optim/lin_expr.ml: Float Format Int List Map Option

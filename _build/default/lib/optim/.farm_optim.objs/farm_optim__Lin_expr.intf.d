lib/optim/lin_expr.mli: Format

lib/optim/milp.ml: Array Float Int Lin_expr List Map Option Simplex Unix

lib/optim/milp.mli: Lin_expr Simplex

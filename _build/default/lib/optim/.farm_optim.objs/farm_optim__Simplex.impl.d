lib/optim/simplex.ml: Array Float Lin_expr List Printf Unix

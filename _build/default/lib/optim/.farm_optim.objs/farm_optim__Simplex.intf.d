lib/optim/simplex.mli: Lin_expr

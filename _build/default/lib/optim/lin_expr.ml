module Imap = Map.Make (Int)

type t = { base : float; terms : float Imap.t }

let prune terms = Imap.filter (fun _ c -> Float.abs c > 0.) terms
let zero = { base = 0.; terms = Imap.empty }
let const c = { base = c; terms = Imap.empty }

let var ?(coeff = 1.) i =
  if Float.abs coeff = 0. then zero
  else { base = 0.; terms = Imap.singleton i coeff }

let merge f a b =
  Imap.merge
    (fun _ ca cb ->
      let c = f (Option.value ca ~default:0.) (Option.value cb ~default:0.) in
      if Float.abs c = 0. then None else Some c)
    a b

let add a b = { base = a.base +. b.base; terms = merge ( +. ) a.terms b.terms }
let sub a b = { base = a.base -. b.base; terms = merge ( -. ) a.terms b.terms }

let scale k a =
  if k = 0. then zero
  else { base = k *. a.base; terms = prune (Imap.map (fun c -> k *. c) a.terms) }

let neg a = scale (-1.) a
let constant a = a.base
let coeff a i = match Imap.find_opt i a.terms with Some c -> c | None -> 0.
let coeffs a = Imap.bindings a.terms
let vars a = List.map fst (coeffs a)
let is_constant a = Imap.is_empty a.terms

let eval env a =
  Imap.fold (fun i c acc -> acc +. (c *. env i)) a.terms a.base

let subst i by a =
  let c = coeff a i in
  if c = 0. then a
  else add { a with terms = Imap.remove i a.terms } (scale c by)

let equal ?(eps = 1e-9) a b =
  let d = sub a b in
  Float.abs d.base <= eps && Imap.for_all (fun _ c -> Float.abs c <= eps) d.terms

let pp ppf a =
  let open Format in
  let first = ref true in
  let term ppf (i, c) =
    if !first && c >= 0. then fprintf ppf "%g*x%d" c i
    else if c >= 0. then fprintf ppf " + %g*x%d" c i
    else fprintf ppf " - %g*x%d" (-.c) i;
    first := false
  in
  if is_constant a then fprintf ppf "%g" a.base
  else begin
    List.iter (term ppf) (coeffs a);
    if Float.abs a.base > 0. then
      if a.base >= 0. then fprintf ppf " + %g" a.base
      else fprintf ppf " - %g" (-.a.base)
  end

let to_string a = Format.asprintf "%a" pp a

(** Sparse linear expressions [c0 + sum_i a_i * x_i] over integer-indexed
    variables.  The building block for LP/MILP models and for the polynomial
    utility/constraint functions extracted from Almanac [util] blocks. *)

type t

val zero : t

val const : float -> t

(** [var ?coeff i] is [coeff * x_i] (default coefficient 1). *)
val var : ?coeff:float -> int -> t

val add : t -> t -> t
val sub : t -> t -> t
val scale : float -> t -> t
val neg : t -> t

(** Constant term. *)
val constant : t -> float

(** Coefficient of variable [i] (0 if absent). *)
val coeff : t -> int -> float

(** Sorted [(var, coeff)] pairs, zero coefficients removed. *)
val coeffs : t -> (int * float) list

(** Variables with non-zero coefficient. *)
val vars : t -> int list

val is_constant : t -> bool

(** Evaluate under an assignment from variable index to value. *)
val eval : (int -> float) -> t -> float

(** Substitute variable [i] by expression. *)
val subst : int -> t -> t -> t

(** Structural equality up to coefficient tolerance [eps] (default 1e-9). *)
val equal : ?eps:float -> t -> t -> bool

val pp : Format.formatter -> t -> unit
val to_string : t -> string

type status = Optimal | Feasible | Infeasible | Unbounded | No_solution

type result = {
  status : status;
  objective : float;
  values : float array;
  nodes : int;
}

let int_eps = 1e-6

(* A node carries the extra variable bounds accumulated by branching,
   as [var -> (lb, ub)]. *)
module Imap = Map.Make (Int)

type node = { bounds : (float * float) Imap.t; bound : float (* LP bound *) }

let bounds_constrs bounds =
  Imap.fold
    (fun v (lb, ub) acc ->
      let acc =
        if lb > 0. then Simplex.constr (Lin_expr.var v) Simplex.Ge lb :: acc
        else acc
      in
      if ub < infinity then Simplex.constr (Lin_expr.var v) Simplex.Le ub :: acc
      else acc)
    bounds []

let most_fractional integer values =
  let best = ref (-1) in
  let best_frac = ref int_eps in
  Array.iteri
    (fun i v ->
      if integer.(i) then begin
        let f = Float.abs (v -. Float.round v) in
        if f > !best_frac then begin
          best_frac := f;
          best := i
        end
      end)
    values;
  !best

let integral integer values =
  most_fractional integer values < 0

let feasible_value ~objective ~constrs ~integer values =
  let env i = values.(i) in
  let ok =
    integral integer values
    && List.for_all
         (fun (c : Simplex.constr) ->
           let lhs = Lin_expr.eval env c.expr in
           match c.cmp with
           | Simplex.Le -> lhs <= c.rhs +. 1e-6
           | Simplex.Ge -> lhs >= c.rhs -. 1e-6
           | Simplex.Eq -> Float.abs (lhs -. c.rhs) <= 1e-6)
         constrs
  in
  if ok then Some (Lin_expr.eval env objective) else None

let solve ?timeout ?(max_nodes = 200_000) ?warm_start ~nvars ~integer
    ~objective constrs =
  if Array.length integer <> nvars then
    invalid_arg "Milp.solve: integer array length mismatch";
  let t0 = Unix.gettimeofday () in
  let deadline = Option.map (fun s -> t0 +. s) timeout in
  let timed_out () =
    match deadline with
    | Some d -> Unix.gettimeofday () > d
    | None -> false
  in
  let incumbent = ref None in
  (match warm_start with
  | Some v when Array.length v = nvars -> (
      match feasible_value ~objective ~constrs ~integer v with
      | Some obj -> incumbent := Some (obj, Array.copy v)
      | None -> ())
  | Some _ | None -> ());
  let round_sol values =
    (* snap near-integers so callers see clean 0/1 values *)
    Array.mapi
      (fun i v ->
        if integer.(i) && Float.abs (v -. Float.round v) <= int_eps then
          Float.round v
        else v)
      values
  in
  let solve_lp bounds =
    Simplex.maximize ?deadline ~nvars ~objective
      (bounds_constrs bounds @ constrs)
  in
  (* Best-first search on LP bound. *)
  let module Pq = struct
    (* simple pairing via sorted insertion would be O(n); use a binary heap *)
    type t = { mutable a : node array; mutable n : int }

    let create () = { a = Array.make 64 { bounds = Imap.empty; bound = 0. }; n = 0 }
    let swap h i j =
      let t = h.a.(i) in
      h.a.(i) <- h.a.(j);
      h.a.(j) <- t

    let push h x =
      if h.n = Array.length h.a then begin
        let a = Array.make (2 * h.n) x in
        Array.blit h.a 0 a 0 h.n;
        h.a <- a
      end;
      h.a.(h.n) <- x;
      h.n <- h.n + 1;
      let i = ref (h.n - 1) in
      while !i > 0 && h.a.((!i - 1) / 2).bound < h.a.(!i).bound do
        swap h ((!i - 1) / 2) !i;
        i := (!i - 1) / 2
      done

    let pop h =
      if h.n = 0 then None
      else begin
        let top = h.a.(0) in
        h.n <- h.n - 1;
        h.a.(0) <- h.a.(h.n);
        let i = ref 0 in
        let continue = ref true in
        while !continue do
          let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
          let m = ref !i in
          if l < h.n && h.a.(l).bound > h.a.(!m).bound then m := l;
          if r < h.n && h.a.(r).bound > h.a.(!m).bound then m := r;
          if !m = !i then continue := false
          else begin
            swap h !i !m;
            i := !m
          end
        done;
        Some top
      end
  end in
  let queue = Pq.create () in
  let nodes = ref 0 in
  let root_outcome = solve_lp Imap.empty in
  match root_outcome with
  | Simplex.Infeasible ->
      { status = Infeasible; objective = neg_infinity; values = [||]; nodes = 1 }
  | Simplex.Unbounded ->
      { status = Unbounded; objective = infinity; values = [||]; nodes = 1 }
  | Simplex.Optimal root ->
      Pq.push queue { bounds = Imap.empty; bound = root.objective };
      let exhausted = ref false in
      let rec loop () =
        if timed_out () || !nodes >= max_nodes then ()
        else
          match Pq.pop queue with
          | None -> exhausted := true
          | Some node -> (
              incr nodes;
              let prune =
                match !incumbent with
                | Some (best, _) -> node.bound <= best +. 1e-7
                | None -> false
              in
              if prune then loop ()
              else
                match solve_lp node.bounds with
                | Simplex.Infeasible -> loop ()
                | Simplex.Unbounded ->
                    (* can happen only at the root, handled above *)
                    loop ()
                | Simplex.Optimal sol ->
                    let dominated =
                      match !incumbent with
                      | Some (best, _) -> sol.objective <= best +. 1e-7
                      | None -> false
                    in
                    if dominated then loop ()
                    else begin
                      let branch_var = most_fractional integer sol.values in
                      if branch_var < 0 then begin
                        (* integral: new incumbent *)
                        let better =
                          match !incumbent with
                          | Some (best, _) -> sol.objective > best
                          | None -> true
                        in
                        if better then
                          incumbent := Some (sol.objective, round_sol sol.values);
                        loop ()
                      end
                      else begin
                        let v = sol.values.(branch_var) in
                        let lb, ub =
                          match Imap.find_opt branch_var node.bounds with
                          | Some b -> b
                          | None -> (0., infinity)
                        in
                        let down =
                          { bounds =
                              Imap.add branch_var (lb, Float.of_int
                                  (int_of_float (floor v))) node.bounds;
                            bound = sol.objective }
                        and up =
                          { bounds =
                              Imap.add branch_var
                                (Float.of_int (int_of_float (ceil v)), ub)
                                node.bounds;
                            bound = sol.objective }
                        in
                        Pq.push queue down;
                        Pq.push queue up;
                        loop ()
                      end
                    end)
      in
      loop ();
      let status_of_incumbent () =
        match !incumbent with
        | Some (obj, values) ->
            let status = if !exhausted then Optimal else Feasible in
            { status; objective = obj; values; nodes = !nodes }
        | None ->
            if !exhausted then
              { status = Infeasible; objective = neg_infinity; values = [||];
                nodes = !nodes }
            else
              { status = No_solution; objective = neg_infinity; values = [||];
                nodes = !nodes }
      in
      status_of_incumbent ()

(** Branch-and-bound mixed-integer linear programming on top of {!Simplex}.

    Plays the role of the commodity MILP solver (Gurobi in the paper) for the
    placement evaluation (Fig. 7): it is an {e anytime} solver — given a
    deadline it returns the best incumbent found so far, exactly like running
    Gurobi with a timeout. *)

type status =
  | Optimal  (** proven optimal *)
  | Feasible  (** deadline or node budget hit; best incumbent returned *)
  | Infeasible
  | Unbounded
  | No_solution  (** budget exhausted before any integer-feasible point *)

type result = {
  status : status;
  objective : float;  (** meaningful for [Optimal] and [Feasible] *)
  values : float array;
  nodes : int;  (** branch-and-bound nodes explored *)
}

(** [solve ~nvars ~integer ~objective constraints] maximizes over
    [x >= 0] with [integer.(i)] marking integrality.  [timeout] is wall-clock
    seconds (default: none).  [warm_start], when integer-feasible, seeds the
    incumbent so a timeout can never return worse than the warm start. *)
val solve :
  ?timeout:float ->
  ?max_nodes:int ->
  ?warm_start:float array ->
  nvars:int ->
  integer:bool array ->
  objective:Lin_expr.t ->
  Simplex.constr list ->
  result

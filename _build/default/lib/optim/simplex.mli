(** Dense two-phase primal simplex for linear programs in the form

    {v maximize c.x  subject to  a_i.x (<= | >= | =) b_i,  x >= 0 v}

    This is the LP engine behind both the placement heuristic's resource
    redistribution step and the branch-and-bound MILP solver that plays the
    role of Gurobi in the paper's evaluation. *)

type cmp = Le | Ge | Eq

type constr = { expr : Lin_expr.t; cmp : cmp; rhs : float }
(** The constraint [expr cmp rhs].  Any constant term inside [expr] is moved
    to the right-hand side. *)

type solution = {
  objective : float;  (** optimal objective, constant term of c included *)
  values : float array;  (** one value per structural variable *)
}

type outcome = Optimal of solution | Infeasible | Unbounded

val constr : Lin_expr.t -> cmp -> float -> constr

(** [maximize ~nvars ~objective constraints] solves the LP over variables
    [x_0 .. x_(nvars-1)].  Variables referenced beyond [nvars-1] raise
    [Invalid_argument].

    [deadline] (absolute [Unix.gettimeofday] value) aborts long solves:
    an LP cut off mid-pivot reports [Infeasible] so callers fall back to
    their incumbent — the behaviour of a real solver hitting its time
    limit before finishing the root relaxation. *)
val maximize :
  ?deadline:float ->
  nvars:int -> objective:Lin_expr.t -> constr list -> outcome

(** Convenience wrapper negating the objective. *)
val minimize :
  ?deadline:float ->
  nvars:int -> objective:Lin_expr.t -> constr list -> outcome

lib/placement/heuristic.ml: Array Farm_almanac Farm_net Farm_optim Float Fun Hashtbl List Model Option Unix

lib/placement/heuristic.mli: Model

lib/placement/milp_formulation.ml: Array Farm_almanac Farm_net Farm_optim Float Hashtbl List Model Option Unix

lib/placement/milp_formulation.mli: Farm_optim Model

lib/placement/model.ml: Array Farm_almanac Farm_net Farm_optim Farm_sim Float Hashtbl Int List Option Printf

lib/placement/model.mli: Farm_almanac Farm_net Farm_sim

module Analysis = Farm_almanac.Analysis
module Filter = Farm_net.Filter
module Lin = Farm_optim.Lin_expr
module Simplex = Farm_optim.Simplex
module Milp = Farm_optim.Milp

type result = {
  placement : Model.placement;
  status : Milp.status;
  runtime_s : float;
  nodes : int;
}

let nres = Analysis.n_resources
let pcie = Analysis.resource_index Analysis.Pcie

(* One placement option: seed s, utility branch b, candidate node n. *)
type option_ = {
  o_seed : Model.seed_spec;
  o_branch : int;
  o_node : int;
  (* variable indices *)
  v_plc : int;
  v_res : int;  (* nres consecutive variables *)
  v_t : int;
}

let solve ?(timeout = 10.) ?(max_cells = 40_000_000) ?warm_start
    (inst : Model.instance) =
  let t0 = Unix.gettimeofday () in
  let finish placement status nodes =
    { placement; status; runtime_s = Unix.gettimeofday () -. t0; nodes }
  in
  (* ---------------- variable layout ---------------- *)
  let next_var = ref 0 in
  let fresh k =
    let v = !next_var in
    next_var := v + k;
    v
  in
  let task_ids = List.map fst (Model.tasks inst) in
  let tplc = Hashtbl.create 16 in
  List.iter (fun t -> Hashtbl.replace tplc t (fresh 1)) task_ids;
  let options =
    List.concat_map
      (fun (s : Model.seed_spec) ->
        List.concat_map
          (fun n ->
            List.mapi
              (fun b _ ->
                { o_seed = s; o_branch = b; o_node = n; v_plc = fresh 1;
                  v_res = fresh nres; v_t = fresh 1 })
              s.branches)
          s.candidates)
      inst.seeds
  in
  (* pollres variables per (node, subject) *)
  let pollres : (int * Filter.subject, int) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun o ->
      List.iter
        (fun (p : Model.poll_req) ->
          let key = (o.o_node, p.subject) in
          if not (Hashtbl.mem pollres key) then
            Hashtbl.replace pollres key (fresh 1))
        o.o_seed.polls)
    options;
  let nvars = !next_var in
  let integer = Array.make nvars false in
  Hashtbl.iter (fun _ v -> integer.(v) <- true) tplc;
  List.iter (fun o -> integer.(o.v_plc) <- true) options;
  (* remap a Lin over resource indices into option [o]'s res block *)
  let remap o l =
    List.fold_left
      (fun acc (r, c) -> Lin.add acc (Lin.var ~coeff:c (o.v_res + r)))
      (Lin.const (Lin.constant l))
      (Lin.coeffs l)
  in
  let constraints = ref [] in
  let addc c = constraints := c :: !constraints in
  (* group options by seed and by node to keep construction linear *)
  let options_by_seed = Hashtbl.create 256 in
  let options_by_node = Hashtbl.create 256 in
  List.iter
    (fun o ->
      let push tbl k =
        Hashtbl.replace tbl k
          (o :: Option.value (Hashtbl.find_opt tbl k) ~default:[])
      in
      push options_by_seed o.o_seed.seed_id;
      push options_by_node o.o_node)
    options;
  let seed_options id =
    Option.value (Hashtbl.find_opt options_by_seed id) ~default:[]
  in
  let node_options n =
    Option.value (Hashtbl.find_opt options_by_node n) ~default:[]
  in
  (* ---------------- C1 ---------------- *)
  List.iter
    (fun (s : Model.seed_spec) ->
      let sum =
        List.fold_left
          (fun acc o -> Lin.add acc (Lin.var o.v_plc))
          Lin.zero (seed_options s.seed_id)
      in
      let tv = Hashtbl.find tplc s.task_id in
      addc (Simplex.constr (Lin.sub sum (Lin.var tv)) Simplex.Eq 0.))
    inst.seeds;
  List.iter
    (fun t -> addc (Simplex.constr (Lin.var (Hashtbl.find tplc t)) Simplex.Le 1.))
    task_ids;
  (* ---------------- per-option constraints ---------------- *)
  List.iter
    (fun o ->
      let cap = Model.caps inst o.o_node in
      let branch = List.nth o.o_seed.branches o.o_branch in
      (* C2 linearized: c(res) - (1 - plc) * c(0) >= 0 *)
      List.iter
        (fun c ->
          let c0 = Lin.constant c in
          addc
            (Simplex.constr
               (Lin.add (remap o c) (Lin.var ~coeff:c0 o.v_plc))
               Simplex.Ge c0))
        branch.constraints;
      (* C3 *)
      for r = 0 to nres - 1 do
        addc
          (Simplex.constr
             (Lin.sub
                (Lin.var (o.v_res + r))
                (Lin.var ~coeff:cap.avail.(r) o.v_plc))
             Simplex.Le 0.)
      done;
      (* utility: t <= piece(res) - (1 - plc) * piece(0); t <= U * plc *)
      let ub = Model.utility_upper_bound inst o.o_seed in
      List.iter
        (fun piece ->
          let p0 = Lin.constant piece in
          addc
            (Simplex.constr
               (Lin.sub (Lin.var o.v_t)
                  (Lin.add (remap o piece) (Lin.var ~coeff:p0 o.v_plc)))
               Simplex.Le (-.p0)))
        branch.utility;
      addc
        (Simplex.constr
           (Lin.sub (Lin.var o.v_t) (Lin.var ~coeff:ub o.v_plc))
           Simplex.Le 0.);
      (* pollres lower bounds *)
      List.iter
        (fun (p : Model.poll_req) ->
          let pv = Hashtbl.find pollres (o.o_node, p.subject) in
          match p.ival with
          | Analysis.Const_ival iv ->
              let d = inst.alpha_poll /. iv in
              addc
                (Simplex.constr
                   (Lin.sub (Lin.var pv) (Lin.var ~coeff:d o.v_plc))
                   Simplex.Ge 0.)
          | Analysis.Inv_linear l ->
              let l0 = Lin.constant l *. inst.alpha_poll in
              addc
                (Simplex.constr
                   (Lin.sub (Lin.var pv)
                      (Lin.add
                         (Lin.scale inst.alpha_poll (remap o l))
                         (Lin.var ~coeff:l0 o.v_plc)))
                   Simplex.Ge (-.l0)))
        o.o_seed.polls)
    options;
  (* ---------------- C4 ---------------- *)
  (* previous placement: seed -> (node, res) for migration doubling *)
  let prev = Hashtbl.create 16 in
  List.iter
    (fun (a : Model.assignment) -> Hashtbl.replace prev a.a_seed (a.a_node, a.a_res))
    inst.previous;
  List.iter
    (fun (c : Model.switch_caps) ->
      for r = 0 to nres - 1 do
        if r <> pcie then begin
          let total =
            List.fold_left
              (fun acc o -> Lin.add acc (Lin.var (o.v_res + r)))
              Lin.zero (node_options c.node)
          in
          (* migration: a seed previously on this switch that is placed
             elsewhere doubles its old footprint during state transfer.
             migr(s, n0) = tplc(task) - plc(s, n0). *)
          let total =
            Hashtbl.fold
              (fun seed_id (n0, res') acc ->
                if n0 = c.node && res'.(r) > 0. then begin
                  match
                    List.find_opt
                      (fun (s : Model.seed_spec) -> s.seed_id = seed_id)
                      inst.seeds
                  with
                  | None -> acc
                  | Some s ->
                      let tv = Hashtbl.find tplc s.task_id in
                      let here =
                        List.fold_left
                          (fun a o ->
                            if o.o_node = c.node then Lin.add a (Lin.var o.v_plc)
                            else a)
                          Lin.zero (seed_options seed_id)
                      in
                      Lin.add acc
                        (Lin.scale res'.(r)
                           (Lin.sub (Lin.var tv) here))
                end
                else acc)
              prev total
          in
          addc (Simplex.constr total Simplex.Le c.avail.(r))
        end
      done;
      let poll_total =
        Hashtbl.fold
          (fun (n, _) pv acc ->
            if n = c.node then Lin.add acc (Lin.var pv) else acc)
          pollres Lin.zero
      in
      if not (Lin.is_constant poll_total) then
        addc (Simplex.constr poll_total Simplex.Le c.avail.(pcie)))
    inst.switches;
  let constraints = !constraints in
  (* ---------------- objective ---------------- *)
  let objective =
    List.fold_left (fun acc o -> Lin.add acc (Lin.var o.v_t)) Lin.zero options
  in
  (* ---------------- warm start ---------------- *)
  let warm_values =
    match warm_start with
    | None -> None
    | Some (p : Model.placement) ->
        let v = Array.make nvars 0. in
        let placed_tasks = Hashtbl.create 16 in
        List.iter
          (fun (a : Model.assignment) ->
            let s = Model.seed inst a.a_seed in
            Hashtbl.replace placed_tasks s.task_id ())
          p.assignments;
        Hashtbl.iter
          (fun t tv -> if Hashtbl.mem placed_tasks t then v.(tv) <- 1.)
          tplc;
        List.iter
          (fun (a : Model.assignment) ->
            match
              List.find_opt
                (fun o ->
                  o.o_seed.seed_id = a.a_seed && o.o_node = a.a_node
                  && o.o_branch = a.a_branch)
                options
            with
            | None -> ()
            | Some o ->
                v.(o.v_plc) <- 1.;
                Array.iteri (fun r x -> v.(o.v_res + r) <- x) a.a_res;
                let b = List.nth o.o_seed.branches o.o_branch in
                v.(o.v_t) <- Float.max 0. (Analysis.eval_utility b a.a_res))
          p.assignments;
        (* pollres: aggregated demand per (node, subject) *)
        Hashtbl.iter
          (fun (n, subj) pv ->
            let d =
              List.fold_left
                (fun acc (a : Model.assignment) ->
                  if a.a_node = n then
                    let s = Model.seed inst a.a_seed in
                    List.fold_left
                      (fun acc (pr : Model.poll_req) ->
                        if Filter.subject_equal pr.subject subj then
                          Float.max acc
                            (inst.alpha_poll
                            *. Analysis.poll_rate pr.ival a.a_res)
                        else acc)
                      acc s.polls
                  else acc)
                0. p.assignments
            in
            v.(pv) <- d)
          pollres;
        Some v
  in
  (* ---------------- size guard ---------------- *)
  let m = List.length constraints in
  let cells = (m + 2) * (nvars + (2 * m)) in
  if cells > max_cells then begin
    (* the root relaxation alone would blow the deadline: return the warm
       start, as a real solver with a tight timeout effectively does *)
    match (warm_start, warm_values) with
    | Some p, Some _ -> finish p Milp.Feasible 0
    | _ -> finish Model.empty_placement Milp.No_solution 0
  end
  else begin
    let r =
      Milp.solve ~timeout ?warm_start:warm_values ~nvars ~integer ~objective
        constraints
    in
    match r.status with
    | Milp.Optimal | Milp.Feasible ->
        let assignments =
          List.filter_map
            (fun o ->
              if r.values.(o.v_plc) > 0.5 then
                Some
                  { Model.a_seed = o.o_seed.seed_id; a_node = o.o_node;
                    a_branch = o.o_branch;
                    a_res =
                      Array.init nres (fun i ->
                          Float.max 0. r.values.(o.v_res + i)) }
              else None)
            options
        in
        let utility = Model.total_utility inst assignments in
        finish { Model.assignments; utility } r.status r.nodes
    | Milp.Infeasible | Milp.Unbounded | Milp.No_solution ->
        finish Model.empty_placement r.status r.nodes
  end

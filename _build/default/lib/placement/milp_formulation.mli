(** The full mixed-integer linear program of §IV, solved with the
    from-scratch branch-and-bound of {!Farm_optim.Milp}.

    This is the commodity-solver baseline of Fig. 7 ("Gurobi"): run with a
    1 s timeout it matches the heuristic's speed at lower utility; with a
    long timeout it approaches the optimum.  The nonlinear
    [plc(s,n) * f(res(s,n,r))] terms are linearized as
    [f(res) - (1 - plc) * f(0)] using (C3), exactly as described in §IV-D. *)

type result = {
  placement : Model.placement;
  status : Farm_optim.Milp.status;
  runtime_s : float;
  nodes : int;  (** branch-and-bound nodes *)
}

(** [solve ?timeout instance] maximizes (MU) subject to (C1)–(C4).
    [warm_start] seeds the incumbent from an existing placement (e.g. the
    heuristic's), mirroring a MIP start.  Instances whose LP tableau would
    exceed [max_cells] (default 4e7) skip the root relaxation and return
    the warm start / greedy incumbent — the honest equivalent of a solver
    hitting its deadline before finishing the root node. *)
val solve :
  ?timeout:float ->
  ?max_cells:int ->
  ?warm_start:Model.placement ->
  Model.instance ->
  result

module Analysis = Farm_almanac.Analysis
module Filter = Farm_net.Filter
module Lin = Farm_optim.Lin_expr

type poll_req = { subject : Filter.subject; ival : Analysis.ival_spec }

type seed_spec = {
  seed_id : int;
  task_id : int;
  candidates : int list;
  branches : Analysis.util_branch list;
  polls : poll_req list;
}

type switch_caps = { node : int; avail : float array }

type instance = {
  seeds : seed_spec list;
  switches : switch_caps list;
  alpha_poll : float;
  previous : assignment list;
}

and assignment = {
  a_seed : int;
  a_node : int;
  a_branch : int;
  a_res : float array;
}

type placement = { assignments : assignment list; utility : float }

let empty_placement = { assignments = []; utility = 0. }

let seed inst id =
  match List.find_opt (fun s -> s.seed_id = id) inst.seeds with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "Model.seed: unknown seed %d" id)

let caps inst node =
  match List.find_opt (fun c -> c.node = node) inst.switches with
  | Some c -> c
  | None -> invalid_arg (Printf.sprintf "Model.caps: unknown switch %d" node)

let tasks inst =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun s ->
      let cur = Option.value (Hashtbl.find_opt tbl s.task_id) ~default:[] in
      Hashtbl.replace tbl s.task_id (s :: cur))
    inst.seeds;
  Hashtbl.fold (fun t ss acc -> (t, List.rev ss) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let assignment_utility inst a =
  let s = seed inst a.a_seed in
  match List.nth_opt s.branches a.a_branch with
  | Some b -> Analysis.eval_utility b a.a_res
  | None -> 0.

let total_utility inst assignments =
  List.fold_left (fun acc a -> acc +. assignment_utility inst a) 0. assignments

(* per-subject aggregated polling demand at [node] *)
let poll_demand inst assignments ~node =
  let subj_demand = ref [] in
  List.iter
    (fun a ->
      if a.a_node = node then
        let s = seed inst a.a_seed in
        List.iter
          (fun p ->
            let d = inst.alpha_poll *. Analysis.poll_rate p.ival a.a_res in
            let rec bump = function
              | [] -> [ (p.subject, d) ]
              | (subj, d0) :: rest when Filter.subject_equal subj p.subject ->
                  (subj, Float.max d0 d) :: rest
              | x :: rest -> x :: bump rest
            in
            subj_demand := bump !subj_demand)
          s.polls)
    assignments;
  List.fold_left (fun acc (_, d) -> acc +. d) 0. !subj_demand

let pcie = Analysis.resource_index Analysis.Pcie

let validate ?(migrating = []) inst assignments =
  let problems = ref [] in
  let report fmt = Printf.ksprintf (fun m -> problems := m :: !problems) fmt in
  (* each seed at most once *)
  let seen = Hashtbl.create 64 in
  List.iter
    (fun a ->
      if Hashtbl.mem seen a.a_seed then
        report "seed %d placed more than once" a.a_seed
      else Hashtbl.replace seen a.a_seed ())
    assignments;
  (* C1: all-or-nothing per task *)
  List.iter
    (fun (t, ss) ->
      let placed =
        List.filter (fun s -> Hashtbl.mem seen s.seed_id) ss
      in
      if placed <> [] && List.length placed <> List.length ss then
        report "task %d is only partially placed (C1)" t)
    (tasks inst);
  (* candidate sets, C2, C3 *)
  List.iter
    (fun a ->
      let s = seed inst a.a_seed in
      if not (List.mem a.a_node s.candidates) then
        report "seed %d placed outside its candidate set" a.a_seed;
      (match List.nth_opt s.branches a.a_branch with
      | None -> report "seed %d uses unknown utility branch %d" a.a_seed a.a_branch
      | Some b ->
          if not (Analysis.branch_feasible b a.a_res) then
            report "seed %d violates its resource constraints (C2)" a.a_seed);
      let c = caps inst a.a_node in
      Array.iteri
        (fun r v ->
          if v > c.avail.(r) +. 1e-6 then
            report "seed %d exceeds switch %d capacity for %s (C3)" a.a_seed
              a.a_node
              (Analysis.resource_name (List.nth Analysis.all_resources r)))
        a.a_res)
    assignments;
  (* C4: per-switch totals; PCIe via aggregated polling demand *)
  List.iter
    (fun c ->
      let on_node = List.filter (fun a -> a.a_node = c.node) assignments in
      (* migration doubling: a migrating seed also consumes its previous
         resources on the source switch *)
      let migration_extra r =
        List.fold_left
          (fun acc prev ->
            if
              List.mem prev.a_seed migrating
              && prev.a_node = c.node
              && not
                   (List.exists
                      (fun a -> a.a_seed = prev.a_seed && a.a_node = c.node)
                      assignments)
            then acc +. prev.a_res.(r)
            else acc)
          0. inst.previous
      in
      Array.iteri
        (fun r avail ->
          if r <> pcie then begin
            let used =
              List.fold_left (fun acc a -> acc +. a.a_res.(r)) 0. on_node
              +. migration_extra r
            in
            if used > avail +. 1e-6 then
              report "switch %d over capacity for %s (C4): %.3f > %.3f"
                c.node
                (Analysis.resource_name (List.nth Analysis.all_resources r))
                used avail
          end)
        c.avail;
      let pd = poll_demand inst assignments ~node:c.node in
      if pd > c.avail.(pcie) +. 1e-6 then
        report "switch %d over polling capacity (C4): %.3f > %.3f" c.node pd
          c.avail.(pcie))
    inst.switches;
  List.rev !problems

let utility_upper_bound inst (s : seed_spec) =
  let max_res =
    Array.init Analysis.n_resources (fun r ->
        List.fold_left (fun acc c -> Float.max acc c.avail.(r)) 0.
          inst.switches)
  in
  List.fold_left
    (fun acc b ->
      Float.max acc (Float.max 0. (Analysis.eval_utility b max_res)))
    0. s.branches

(* ------------------------------------------------------------------ *)
(* Random instances (Fig. 7 workload)                                  *)
(* ------------------------------------------------------------------ *)

let random_instance ~rng ~switches ~tasks ~seeds_per_task () =
  let module Rng = Farm_sim.Rng in
  let vcpu = Analysis.resource_index Analysis.VCpu in
  let ram = Analysis.resource_index Analysis.Ram in
  let tcam = Analysis.resource_index Analysis.TcamR in
  let switch_list =
    List.init switches (fun node ->
        let avail = Array.make Analysis.n_resources 0. in
        avail.(vcpu) <- 4.;
        avail.(ram) <- 8192.;
        avail.(tcam) <- 512.;
        avail.(pcie) <- 1000.;  (* polls/s budget over the PCIe bus *)
        { node; avail })
  in
  let seeds = ref [] in
  let seed_id = ref 0 in
  for task_id = 0 to tasks - 1 do
    (* each task has a characteristic demand profile *)
    let cpu_need = Rng.uniform rng 0.05 0.5 in
    let ram_need = Rng.uniform rng 16. 256. in
    let poll_subject =
      match Rng.int rng 3 with
      | 0 -> Filter.All_ports
      | 1 -> Filter.Port_counter (Rng.int rng 16)
      | _ -> Filter.Proto_counter Farm_net.Flow.Tcp
    in
    let poll_every = Rng.uniform rng 0.02 0.5 in
    for _ = 1 to seeds_per_task do
      (* candidate set: a handful of switches, or pinned *)
      let n_cands = 1 + Rng.int rng 3 in
      let candidates =
        List.sort_uniq Int.compare
          (List.init n_cands (fun _ -> Rng.int rng switches))
      in
      let constraints =
        [ Lin.sub (Lin.var vcpu) (Lin.const cpu_need);
          Lin.sub (Lin.var ram) (Lin.const ram_need) ]
      in
      (* utility rewards extra CPU up to a point: min(10*vCPU, cap) *)
      let cap = Rng.uniform rng 2. 10. in
      let branch =
        { Analysis.constraints;
          utility = [ Lin.var ~coeff:10. vcpu; Lin.const cap ] }
      in
      seeds :=
        { seed_id = !seed_id; task_id; candidates; branches = [ branch ];
          polls =
            [ { subject = poll_subject;
                ival = Analysis.Const_ival poll_every } ] }
        :: !seeds;
      incr seed_id
    done
  done;
  { seeds = List.rev !seeds; switches = switch_list; alpha_poll = 1.;
    previous = [] }

(** The seed-placement optimization model of §IV: elements (Tab. II),
    inputs (Tab. III), the monitoring-utility objective (MU), migration
    overhead, polling-aggregation benefits, and constraints (C1)–(C4).

    Both solvers ({!Heuristic} and {!Milp_formulation}) consume this model;
    {!validate} is the shared oracle checking (C1)–(C4) on any produced
    placement. *)

module Analysis := Farm_almanac.Analysis

(** A polling requirement of a seed: what it polls and how the interval
    depends on allocated resources. *)
type poll_req = {
  subject : Farm_net.Filter.subject;
  ival : Analysis.ival_spec;
}

(** One seed to place (derived from a machine's analysis by the seeder). *)
type seed_spec = {
  seed_id : int;
  task_id : int;
  candidates : int list;  (** N{^s}: switch ids where the seed may run *)
  branches : Analysis.util_branch list;
      (** utility alternatives (≥1); exactly one is active when placed *)
  polls : poll_req list;
}

type switch_caps = {
  node : int;
  avail : float array;  (** ares(n, r), indexed by {!Analysis.resource_index} *)
}

type instance = {
  seeds : seed_spec list;
  switches : switch_caps list;
  alpha_poll : float;  (** α{_poll}: polling cost coefficient *)
  previous : assignment list;  (** current placement, for migration costs *)
}

and assignment = {
  a_seed : int;
  a_node : int;
  a_branch : int;  (** which utility branch is active *)
  a_res : float array;  (** res(s, n, r) *)
}

type placement = { assignments : assignment list; utility : float }

val empty_placement : placement

(** Total utility (MU) of a set of assignments. *)
val total_utility : instance -> assignment list -> float

(** PCIe (r{_poll}) demand on switch [node] under the given assignments,
    with aggregation: per polling subject, the demand is the {e maximum}
    over co-located seeds (polling once at the fastest rate serves all). *)
val poll_demand : instance -> assignment list -> node:int -> float

(** Check (C1)–(C4); returns human-readable violations (empty = valid).
    [migrating] marks seeds whose state is being transferred, doubling
    their footprint on the {e source} switch of the previous placement. *)
val validate :
  ?migrating:int list -> instance -> assignment list -> string list

val seed : instance -> int -> seed_spec
val caps : instance -> int -> switch_caps

(** Seeds grouped by task. *)
val tasks : instance -> (int * seed_spec list) list

(** Upper bound on one seed's utility given the largest switch (used for
    big-M linearization). *)
val utility_upper_bound : instance -> seed_spec -> float

(** {2 Random instances (evaluation workloads, Fig. 7)} *)

(** Generate an instance with [switches] nodes and [tasks] tasks whose
    seeds have randomized resource demands and candidate sets, mirroring
    the paper's placement benchmark ("up to 10 different tasks ... varying
    resource and placement needs"). *)
val random_instance :
  rng:Farm_sim.Rng.t ->
  switches:int ->
  tasks:int ->
  seeds_per_task:int ->
  unit ->
  instance

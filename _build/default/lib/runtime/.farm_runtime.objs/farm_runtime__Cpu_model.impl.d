lib/runtime/cpu_model.ml: Float

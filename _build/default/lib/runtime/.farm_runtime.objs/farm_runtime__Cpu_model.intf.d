lib/runtime/cpu_model.mli:

lib/runtime/harvester.ml: Farm_almanac List

lib/runtime/harvester.mli: Farm_almanac

lib/runtime/ipc.ml:

lib/runtime/ipc.mli:

lib/runtime/seed_exec.ml: Array Farm_almanac Farm_net Farm_sim List Soil String

lib/runtime/seed_exec.mli: Farm_almanac Soil

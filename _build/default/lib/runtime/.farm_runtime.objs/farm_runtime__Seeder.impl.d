lib/runtime/seeder.ml: Array Farm_almanac Farm_net Farm_placement Farm_sim Harvester Hashtbl Int Lazy List Option Printf Result Seed_exec Soil String

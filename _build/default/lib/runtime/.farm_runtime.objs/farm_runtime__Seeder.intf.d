lib/runtime/seeder.mli: Farm_almanac Farm_net Farm_sim Harvester Seed_exec Soil

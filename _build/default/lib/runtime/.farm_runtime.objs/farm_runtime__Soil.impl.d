lib/runtime/soil.ml: Cpu_model Farm_net Farm_sim Float Ipc List

lib/runtime/soil.mli: Cpu_model Farm_net Farm_sim Ipc

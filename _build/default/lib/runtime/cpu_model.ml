type t = {
  cores : float;
  poll_issue_cost : float;
  poll_process_cost : float;
  handler_base_cost : float;
  sample_cost : float;
  aggregation_cost : float;
  context_switch_cost : float;
}

(* Calibration notes: a quad-core 2.4 GHz Atom spends roughly 20 us of
   kernel+driver time issuing a PCIe counter read, a few us on
   post-processing, and 5 us per context switch. *)
let default =
  { cores = 4.;
    poll_issue_cost = 20e-6;
    poll_process_cost = 3e-6;
    handler_base_cost = 6e-6;
    sample_cost = 10e-6;
    aggregation_cost = 1e-6;
    context_switch_cost = 5e-6 }

type usage = { mutable busy : float }

let usage () = { busy = 0. }
let charge u s = u.busy <- u.busy +. s
let busy_seconds u = u.busy

let offered_load u ~window = if window <= 0. then 0. else u.busy /. window

let achieved_load t u ~window = Float.min t.cores (offered_load u ~window)

let accuracy t u ~window =
  let offered = offered_load u ~window in
  if offered <= t.cores then 1. else t.cores /. offered

let reset u = u.busy <- 0.

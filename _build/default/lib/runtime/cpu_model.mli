(** Cost model of a switch's management CPU.

    The paper measures switch CPU load (Figs. 5, 6, 9) on 4–8-core
    management systems; this model accounts busy seconds for each runtime
    operation so experiments can report utilization (possibly > 100 % on
    multiple cores) and the polling-accuracy degradation seen when the CPU
    saturates (Fig. 6c). *)

type t = {
  cores : float;
  poll_issue_cost : float;  (** CPU s to issue one ASIC poll over PCIe *)
  poll_process_cost : float;  (** CPU s to post-process one poll result *)
  handler_base_cost : float;  (** CPU s per seed event-handler activation *)
  sample_cost : float;  (** CPU s per packet sample processed *)
  aggregation_cost : float;  (** soil CPU s per aggregated fan-out *)
  context_switch_cost : float;  (** per wakeup of a process-model seed *)
}

(** Calibrated to an Accton AS5712-class quad-core Atom. *)
val default : t

type usage

val usage : unit -> usage

(** Account [seconds] of CPU work. *)
val charge : usage -> float -> unit

val busy_seconds : usage -> float

(** Offered load over a window: busy/(window).  Can exceed [cores]. *)
val offered_load : usage -> window:float -> float

(** Achieved load: offered capped at the core count. *)
val achieved_load : t -> usage -> window:float -> float

(** Fraction of offered work the CPU kept up with (1.0 = no overload).
    This is the "polling accuracy" bar of Fig. 6. *)
val accuracy : t -> usage -> window:float -> float

val reset : usage -> unit

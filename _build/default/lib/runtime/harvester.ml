module Value = Farm_almanac.Value

type ctx = {
  send_to_seed : switch:int -> Value.t -> unit;
  broadcast : Value.t -> unit;
  now : unit -> float;
  log : string -> unit;
}

type spec = {
  on_start : ctx -> unit;
  on_message : ctx -> from_switch:int -> Value.t -> unit;
}

let collector_spec =
  { on_start = (fun _ -> ()); on_message = (fun _ ~from_switch:_ _ -> ()) }

type t = {
  spec : spec;
  ctx : ctx;
  mutable log : (float * int * Value.t) list;
}

let create spec ctx = { spec; ctx; log = [] }

let start t = t.spec.on_start t.ctx

let handle t ~from_switch v =
  t.log <- (t.ctx.now (), from_switch, v) :: t.log;
  t.spec.on_message t.ctx ~from_switch v

let received t = t.log
let received_count t = List.length t.log

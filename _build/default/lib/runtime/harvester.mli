(** Per-task centralized component (§II-C a): collects data from the
    task's seeds and takes global actions when seed-local decisions are
    insufficient.  Harvester logic is host code (a callback), matching the
    paper's Python harvesters. *)

module Value := Farm_almanac.Value

(** Capabilities handed to harvester logic. *)
type ctx = {
  send_to_seed : switch:int -> Value.t -> unit;
      (** deliver to the task's seed on one switch *)
  broadcast : Value.t -> unit;  (** deliver to every seed of the task *)
  now : unit -> float;
  log : string -> unit;
}

type spec = {
  on_start : ctx -> unit;
  on_message : ctx -> from_switch:int -> Value.t -> unit;
}

(** A harvester that only records messages. *)
val collector_spec : spec

type t

val create : spec -> ctx -> t
val start : t -> unit

(** Called by the runtime when a seed message arrives. *)
val handle : t -> from_switch:int -> Value.t -> unit

(** All messages received so far, most recent first:
    (arrival time, source switch, value). *)
val received : t -> (float * int * Value.t) list

val received_count : t -> int

(** Soil ↔ seed communication models (§V-A, Fig. 10).

    FARM supports two execution models (seeds as {e threads} of the soil
    process or as separate {e processes}) and two transports (gRPC or a
    shared-memory ring buffer).  gRPC's per-message cost grows with the
    number of co-located seeds (connection multiplexing, serialization,
    scheduler pressure), which made it the latency bottleneck and motivated
    the shared-buffer scheme. *)

type scheme = Grpc | Shared_buffer

type exec_model = Threads | Processes

val scheme_to_string : scheme -> string
val exec_model_to_string : exec_model -> string

(** One-way soil→seed message latency in seconds, given the number of
    seeds currently deployed on the switch. *)
val latency : scheme -> exec_model -> seeds:int -> float

(** CPU seconds consumed per message by the transport. *)
val cpu_cost : scheme -> exec_model -> float

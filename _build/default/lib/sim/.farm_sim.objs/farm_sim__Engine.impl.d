lib/sim/engine.ml: Heap Option Printf Rng

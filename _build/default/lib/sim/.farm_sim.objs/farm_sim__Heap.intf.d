lib/sim/heap.mli:

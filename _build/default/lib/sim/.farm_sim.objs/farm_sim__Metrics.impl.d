lib/sim/metrics.ml: Array Float Stdlib

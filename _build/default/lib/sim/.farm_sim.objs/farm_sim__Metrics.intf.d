lib/sim/metrics.mli:

lib/sim/rng.mli:

module Counter = struct
  type t = { mutable v : float }

  let create () = { v = 0. }
  let add t x = t.v <- t.v +. x
  let incr t = add t 1.
  let value t = t.v
  let reset t = t.v <- 0.
end

module Histogram = struct
  type t = { mutable xs : float array; mutable n : int; mutable sorted : bool }

  let create () = { xs = [||]; n = 0; sorted = true }

  let record t x =
    if t.n = Array.length t.xs then begin
      let cap = Stdlib.max 16 (2 * t.n) in
      let a = Array.make cap 0. in
      Array.blit t.xs 0 a 0 t.n;
      t.xs <- a
    end;
    t.xs.(t.n) <- x;
    t.n <- t.n + 1;
    t.sorted <- false

  let count t = t.n

  let fold f init t =
    let acc = ref init in
    for i = 0 to t.n - 1 do
      acc := f !acc t.xs.(i)
    done;
    !acc

  let mean t = if t.n = 0 then 0. else fold ( +. ) 0. t /. float_of_int t.n
  let max t = fold Float.max neg_infinity t
  let min t = fold Float.min infinity t

  let ensure_sorted t =
    if not t.sorted then begin
      let a = Array.sub t.xs 0 t.n in
      Array.sort Float.compare a;
      Array.blit a 0 t.xs 0 t.n;
      t.sorted <- true
    end

  let percentile t p =
    if t.n = 0 then 0.
    else begin
      ensure_sorted t;
      let rank = p /. 100. *. float_of_int (t.n - 1) in
      let lo = int_of_float (floor rank) and hi = int_of_float (ceil rank) in
      let lo = Stdlib.max 0 (Stdlib.min (t.n - 1) lo) in
      let hi = Stdlib.max 0 (Stdlib.min (t.n - 1) hi) in
      let frac = rank -. float_of_int lo in
      (t.xs.(lo) *. (1. -. frac)) +. (t.xs.(hi) *. frac)
    end

  let reset t =
    t.n <- 0;
    t.sorted <- true
end

module Busy = struct
  type t = { mutable busy : float }

  let create () = { busy = 0. }
  let add t d = t.busy <- t.busy +. d
  let busy_time t = t.busy

  let utilization t ~from ~till =
    let span = till -. from in
    if span <= 0. then 0. else t.busy /. span

  let reset t = t.busy <- 0.
end

(** Measurement primitives used by experiments: counters, histograms and
    busy-time (CPU utilization) accumulators. *)

module Counter : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val incr : t -> unit
  val value : t -> float
  val reset : t -> unit
end

module Histogram : sig
  type t

  val create : unit -> t
  val record : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  val max : t -> float
  val min : t -> float

  (** [percentile h p] with [p] in [0, 100]; 0 on empty histograms. *)
  val percentile : t -> float -> float

  val reset : t -> unit
end

(** Accumulates busy time; [utilization] is busy/elapsed over an interval.
    Used for switch-CPU-load experiments (Figs. 5, 6, 9): utilization can
    exceed 1.0 (i.e. 100 %) on multi-core management CPUs. *)
module Busy : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val busy_time : t -> float

  (** [utilization t ~from ~till] = accumulated busy time / (till - from). *)
  val utilization : t -> from:float -> till:float -> float

  val reset : t -> unit
end

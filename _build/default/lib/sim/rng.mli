(** Deterministic, splittable pseudo-random number generator (splitmix64).

    Every stochastic component of the simulator takes an explicit [Rng.t] so
    that experiments are reproducible and independent components can draw
    from independent streams (no global [Random] state). *)

type t

(** Create a generator from a seed. *)
val create : int -> t

(** Derive an independent stream; deterministic in the parent state. *)
val split : t -> t

(** Uniform in [0, bound). [bound] must be positive. *)
val int : t -> int -> int

(** Uniform in [0, 1). *)
val float : t -> float

(** Uniform in [lo, hi). *)
val uniform : t -> float -> float -> float

val bool : t -> bool

(** Bernoulli with probability [p]. *)
val bernoulli : t -> float -> bool

(** Exponential with rate [lambda] (mean [1/lambda]). *)
val exponential : t -> float -> float

(** Zipf-like rank sampler over [n] ranks with exponent [s]: returns a rank
    in [0, n) where low ranks are heavy.  Used for flow-size popularity. *)
val zipf : t -> n:int -> s:float -> int

(** Pick a uniformly random element of a non-empty array. *)
val choose : t -> 'a array -> 'a

(** In-place Fisher-Yates shuffle. *)
val shuffle : t -> 'a array -> unit

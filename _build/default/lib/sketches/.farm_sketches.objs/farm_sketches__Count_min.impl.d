lib/sketches/count_min.ml: Array Float Hashtbl Int64 List

lib/sketches/count_min.mli:

lib/sketches/hyperloglog.ml: Array Float Hashtbl Int64

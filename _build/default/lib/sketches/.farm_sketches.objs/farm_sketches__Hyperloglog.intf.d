lib/sketches/hyperloglog.mli:

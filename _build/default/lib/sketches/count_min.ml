type t = {
  width : int;
  depth : int;
  cells_ : float array array;  (* depth x width *)
  row_seeds : int array;
  mutable total : float;
}

(* 64-bit mix (splitmix64 finalizer) for the per-row hash family *)
let mix64 z =
  let z = Int64.of_int z in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.to_int (Int64.logand (Int64.logxor z (Int64.shift_right_logical z 31)) 0x3FFFFFFFFFFFFFFFL)

let create ?(seed = 0x5eed) ~epsilon ~delta () =
  if epsilon <= 0. || epsilon >= 1. then
    invalid_arg "Count_min.create: epsilon must be in (0, 1)";
  if delta <= 0. || delta >= 1. then
    invalid_arg "Count_min.create: delta must be in (0, 1)";
  let width = int_of_float (ceil (Float.exp 1. /. epsilon)) in
  let depth = max 1 (int_of_float (ceil (Float.log (1. /. delta)))) in
  { width; depth;
    cells_ = Array.make_matrix depth width 0.;
    row_seeds = Array.init depth (fun i -> mix64 (seed + (i * 0x9E37)));
    total = 0. }

let width t = t.width
let depth t = t.depth
let cells t = t.width * t.depth

let bucket t row key =
  let h = Hashtbl.hash (t.row_seeds.(row), key) in
  mix64 (h + t.row_seeds.(row)) mod t.width

let add t ?(count = 1.) key =
  if count < 0. then invalid_arg "Count_min.add: negative count";
  for row = 0 to t.depth - 1 do
    let b = bucket t row key in
    t.cells_.(row).(b) <- t.cells_.(row).(b) +. count
  done;
  t.total <- t.total +. count

let estimate t key =
  let best = ref infinity in
  for row = 0 to t.depth - 1 do
    let v = t.cells_.(row).(bucket t row key) in
    if v < !best then best := v
  done;
  if !best = infinity then 0. else !best

let total t = t.total

let heavy_hitters t ~threshold ~candidates =
  List.filter (fun k -> estimate t k >= threshold) candidates

let reset t =
  Array.iter (fun row -> Array.fill row 0 t.width 0.) t.cells_;
  t.total <- 0.

(** Count-min sketch: a fixed-memory frequency estimator over a key
    stream.  Estimates never undercount; the overcount is bounded by
    [epsilon * total] with probability [1 - delta].

    This is the sketch substrate for the paper's §VIII future-work item
    ("integration of sketches into FARM"): seeds use it through host
    builtins to track per-flow volumes in constant switch memory instead
    of unbounded lists. *)

type t

(** [create ~epsilon ~delta ()] — width = ceil(e/epsilon) columns, depth =
    ceil(ln(1/delta)) rows.  [seed] varies the hash family. *)
val create : ?seed:int -> epsilon:float -> delta:float -> unit -> t

val width : t -> int
val depth : t -> int

(** Memory footprint in counter cells. *)
val cells : t -> int

(** Add [count] (default 1) occurrences of the key. *)
val add : t -> ?count:float -> string -> unit

(** Frequency estimate: >= true count; <= true count + epsilon * total
    with probability 1 - delta. *)
val estimate : t -> string -> float

(** Sum of all added counts. *)
val total : t -> float

(** Keys whose estimate exceeds [threshold], among the [candidates]
    provided (a CMS cannot enumerate keys by itself). *)
val heavy_hitters :
  t -> threshold:float -> candidates:string list -> string list

val reset : t -> unit

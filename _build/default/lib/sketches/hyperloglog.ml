type t = {
  precision : int;
  m : int;
  reg : int array;  (* max leading-zero ranks *)
  seed : int;
}

let mix64 z =
  let z = Int64.of_int z in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create ?(seed = 0x11) ~precision () =
  if precision < 4 || precision > 16 then
    invalid_arg "Hyperloglog.create: precision must be in [4, 16]";
  let m = 1 lsl precision in
  { precision; m; reg = Array.make m 0; seed }

let registers t = t.m

let add t key =
  let h = mix64 (Hashtbl.hash (t.seed, key) + t.seed) in
  (* top [precision] bits select the register *)
  let idx =
    Int64.to_int (Int64.shift_right_logical h (64 - t.precision))
  in
  (* rank = leading zeros of the remaining bits + 1 *)
  let rest = Int64.shift_left h t.precision in
  let rec rank bit acc =
    if acc > 64 - t.precision then acc
    else if Int64.logand (Int64.shift_right_logical rest (63 - bit)) 1L = 1L
    then acc
    else rank (bit + 1) (acc + 1)
  in
  let r = rank 0 1 in
  if r > t.reg.(idx) then t.reg.(idx) <- r

let alpha m =
  match m with
  | 16 -> 0.673
  | 32 -> 0.697
  | 64 -> 0.709
  | m -> 0.7213 /. (1. +. (1.079 /. float_of_int m))

let count t =
  let m = float_of_int t.m in
  let sum =
    Array.fold_left (fun acc r -> acc +. (2. ** float_of_int (-r))) 0. t.reg
  in
  let raw = alpha t.m *. m *. m /. sum in
  (* small-range correction (linear counting) *)
  let zeros = Array.fold_left (fun acc r -> if r = 0 then acc + 1 else acc) 0 t.reg in
  if raw <= 2.5 *. m && zeros > 0 then
    m *. Float.log (m /. float_of_int zeros)
  else raw

let expected_error t = 1.04 /. sqrt (float_of_int t.m)

let merge t other =
  if t.precision <> other.precision then
    invalid_arg "Hyperloglog.merge: precision mismatch";
  Array.iteri
    (fun i r -> if r > t.reg.(i) then t.reg.(i) <- r)
    other.reg

let reset t = Array.fill t.reg 0 t.m 0

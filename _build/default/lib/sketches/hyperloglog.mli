(** HyperLogLog distinct-count estimator: cardinality of a key stream in
    O(2{^precision}) bytes with ~1.04/sqrt(m) relative error.  Backs
    constant-memory superspreader/DDoS source counting in sketch-based
    seeds. *)

type t

(** [create ~precision ()] uses [2^precision] registers; precision in
    [4, 16]. *)
val create : ?seed:int -> precision:int -> unit -> t

val registers : t -> int

val add : t -> string -> unit

(** Estimated number of distinct keys added. *)
val count : t -> float

(** Expected relative standard error (1.04/sqrt(m)). *)
val expected_error : t -> float

(** Merge [other] into [t] (same precision required). *)
val merge : t -> t -> unit

val reset : t -> unit

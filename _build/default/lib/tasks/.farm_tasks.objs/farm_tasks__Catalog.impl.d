lib/tasks/catalog.ml: Ddos Farm_almanac Hh Infra_tasks List Option Printf Result Scan_tasks Sketch_tasks Task_common Tcp_tasks

lib/tasks/catalog.mli: Farm_net Task_common

lib/tasks/ddos.ml: Farm_almanac Farm_runtime Task_common

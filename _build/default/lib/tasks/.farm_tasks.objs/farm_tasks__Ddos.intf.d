lib/tasks/ddos.mli: Task_common

lib/tasks/hh.ml: Farm_almanac Farm_net Farm_runtime Hashtbl List Option Printf Task_common

lib/tasks/hh.mli: Task_common

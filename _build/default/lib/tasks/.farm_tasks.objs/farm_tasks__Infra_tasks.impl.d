lib/tasks/infra_tasks.ml: Farm_almanac Farm_runtime Printf Task_common

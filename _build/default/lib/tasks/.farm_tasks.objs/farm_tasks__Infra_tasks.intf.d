lib/tasks/infra_tasks.mli: Task_common

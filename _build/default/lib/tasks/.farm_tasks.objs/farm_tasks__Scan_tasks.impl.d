lib/tasks/scan_tasks.ml: Farm_almanac Task_common

lib/tasks/scan_tasks.mli: Task_common

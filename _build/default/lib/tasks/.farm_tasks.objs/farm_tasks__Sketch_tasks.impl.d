lib/tasks/sketch_tasks.ml: Farm_almanac Farm_sketches Hashtbl Task_common

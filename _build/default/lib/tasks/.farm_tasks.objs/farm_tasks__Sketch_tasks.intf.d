lib/tasks/sketch_tasks.mli: Task_common

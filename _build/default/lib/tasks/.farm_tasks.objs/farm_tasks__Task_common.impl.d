lib/tasks/task_common.ml: Farm_almanac Farm_runtime List String

lib/tasks/task_common.mli: Farm_almanac Farm_runtime

lib/tasks/tcp_tasks.ml: Task_common

lib/tasks/tcp_tasks.mli: Task_common

module Parser = Farm_almanac.Parser
module Typecheck = Farm_almanac.Typecheck
module Analysis = Farm_almanac.Analysis

let all : Task_common.entry list =
  [ Hh.hh;
    Hh.hhh_inherited;
    Hh.hhh;
    Ddos.ddos;
    Tcp_tasks.new_tcp_conn;
    Tcp_tasks.tcp_syn_flood;
    Tcp_tasks.partial_tcp_flow;
    Tcp_tasks.slowloris;
    Infra_tasks.link_failure;
    Infra_tasks.traffic_change;
    Infra_tasks.flow_size_distribution;
    Scan_tasks.superspreader;
    Scan_tasks.ssh_brute_force;
    Scan_tasks.port_scan;
    Scan_tasks.dns_reflection;
    Infra_tasks.entropy_estimation;
    Ddos.flood_defender ]

(* sketch-based variants: the §VIII future-work extension *)
let extensions : Task_common.entry list =
  [ Sketch_tasks.sketch_heavy_hitter; Sketch_tasks.sketch_superspreader ]

let names = List.map (fun (e : Task_common.entry) -> e.name) all

let find name =
  match
    List.find_opt
      (fun (e : Task_common.entry) -> e.name = name)
      (all @ extensions)
  with
  | Some e -> e
  | None -> invalid_arg (Printf.sprintf "Catalog.find: unknown task %s" name)

let table1_loc (e : Task_common.entry) =
  if e.name = Hh.hhh_inherited.name then
    (* only the delta over the inherited HH machine *)
    Task_common.seed_loc e - Task_common.seed_loc Hh.hh
  else Task_common.seed_loc e

let compile_one topo (e : Task_common.entry) =
  let ( let* ) = Result.bind in
  let* parsed =
    match Parser.program e.source with
    | p -> Ok p
    | exception Parser.Error m -> Error ("parse: " ^ m)
  in
  let* program = Typecheck.check_result ~extra:e.extra_sigs parsed in
  List.fold_left
    (fun acc (m : Farm_almanac.Ast.machine) ->
      let* () = acc in
      let externals =
        Option.value (List.assoc_opt m.mname e.externals) ~default:[]
      in
      let bindings name =
        match List.assoc_opt name externals with
        | Some v -> Some v
        | None ->
            List.find_map
              (fun (v : Farm_almanac.Ast.var_decl) ->
                if v.vname <> name then None
                else
                  match v.vinit with
                  | Some (Farm_almanac.Ast.Int i) ->
                      Some (Farm_almanac.Value.Num (float_of_int i))
                  | Some (Farm_almanac.Ast.Float f) ->
                      Some (Farm_almanac.Value.Num f)
                  | Some (Farm_almanac.Ast.String s) ->
                      Some (Farm_almanac.Value.Str s)
                  | _ -> None)
              m.mvars
      in
      let* _summary = Analysis.summarize ~bindings ~topo m in
      Ok ())
    (Ok ()) program.machines

let compile_all topo =
  List.map
    (fun (e : Task_common.entry) -> (e.name, compile_one topo e))
    all

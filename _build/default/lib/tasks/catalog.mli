(** The Table I catalog: every monitoring/attack use case implemented in
    Almanac, ready to hand to the seeder. *)

type entry := Task_common.entry

(** All Table I entries, in the paper's order. *)
val all : entry list

(** Sketch-based variants (the paper's §VIII future-work extension);
    resolvable through {!find} but not part of Table I. *)
val extensions : entry list

val find : string -> entry
val names : string list

(** Seed lines of code for the table; the inherited HHH entry counts only
    its delta over the HH machine it extends (as the paper does). *)
val table1_loc : entry -> int

(** Sanity-compile every entry (parse + typecheck + analyses) against a
    topology; returns the per-entry error if any.  Used by tests and the
    [table1] bench. *)
val compile_all :
  Farm_net.Topology.t -> (string * (unit, string) result) list

(** DDoS detection and mitigation: probes traffic towards a protected
    prefix near the receiver, counts distinct sources per window, and
    quenches the attack with a local drop rule (the paper's motivating
    example of switch-local reaction). *)

val ddos : Task_common.entry

(** FloodDefender-style SDN-aimed flood protection: a four-state machine
    (observe → defend → monitor → recover) that shields the control plane
    by installing protecting rules locally and coordinates recovery with
    its harvester — the largest Table I program. *)
val flood_defender : Task_common.entry

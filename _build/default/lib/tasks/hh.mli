(** Heavy-hitter detection (paper List. 2) and the two hierarchical
    heavy-hitter variants of Table I (standalone and inherited-from-HH). *)

(** HH: one seed per switch polls all port counters and reports ports whose
    rate crosses a threshold; the local reaction installs a QoS rule; the
    harvester can retune the threshold and the reaction at runtime. *)
val hh : Task_common.entry

(** HH with a custom polling accuracy (seconds), for the Fig. 6
    experiments. *)
val hh_at : accuracy:float -> Task_common.entry

(** HHH via inheritance: extends HH, overriding the detection state to
    also report the covering prefix hierarchy (the paper's 21-line
    delta). *)
val hhh_inherited : Task_common.entry

(** Standalone HHH: polls per-prefix counters at /8, /16, /24 granularity
    and reports the deepest prefix over the threshold. *)
val hhh : Task_common.entry

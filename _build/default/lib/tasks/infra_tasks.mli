(** Infrastructure-monitoring Table I tasks: link failure, traffic change,
    flow-size distribution, entropy estimation, plus the CPU-intensive ML
    task used in the paper's Fig. 6 evaluation. *)

(** A previously active port whose counter stops moving → failure alert;
    the harvester reroutes (management action). *)
val link_failure : Task_common.entry

(** EWMA-based traffic-change detection (the 7-line example). *)
val traffic_change : Task_common.entry

(** Sampled packet/flow size histogram streamed to the harvester. *)
val flow_size_distribution : Task_common.entry

(** Source-address entropy estimation per window. *)
val entropy_estimation : Task_common.entry

(** The ML prediction task of §VI-A c: polls statistics and runs support
    vector regression (matrix-matrix multiply workload) on the switch via
    [exec], with configurable iterations. *)
val ml_task : iterations:int -> accuracy:float -> Task_common.entry

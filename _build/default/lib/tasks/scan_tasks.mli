(** Scanning/spreading Table I tasks: superspreader, SSH brute force, port
    scan, DNS reflection. *)

(** One source contacting many distinct destinations. *)
val superspreader : Task_common.entry

(** Repeated short connections to port 22 from one source → local drop. *)
val ssh_brute_force : Task_common.entry

(** One source probing many destination ports of one host. *)
val port_scan : Task_common.entry

(** Amplification: high-volume UDP from port 53 towards one victim →
    local rate limit of the reflected traffic. *)
val dns_reflection : Task_common.entry

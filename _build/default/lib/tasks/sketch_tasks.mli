(** Sketch-based tasks — the paper's §VIII future-work item "integration
    of sketches into FARM", realized through host builtins backed by
    {!Farm_sketches}: constant-memory alternatives to the list-based
    catalog tasks. *)

(** Heavy hitters via a count-min sketch over destination volume: the
    seed's memory stays O(1/epsilon) regardless of flow count. *)
val sketch_heavy_hitter : Task_common.entry

(** Superspreaders via per-source HyperLogLog distinct-destination
    counting. *)
val sketch_superspreader : Task_common.entry

(** TCP-oriented Table I tasks: connection accounting (NetQRE-style),
    SYN-flood detection, partial-flow tracking and Slowloris detection. *)

(** Counts new TCP connections (first SYN per tuple) per window and streams
    the count to the harvester. *)
val new_tcp_conn : Task_common.entry

(** SYN-flood: SYN/SYN-ACK imbalance per window triggers a local rate
    limit on the victim and an alert. *)
val tcp_syn_flood : Task_common.entry

(** Partial TCP flows: connections that opened (SYN) but never carried
    data/teardown within the timeout window. *)
val partial_tcp_flow : Task_common.entry

(** Slowloris: many concurrent barely-alive connections to one HTTP
    server. *)
val slowloris : Task_common.entry

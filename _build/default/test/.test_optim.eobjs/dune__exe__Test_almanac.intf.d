test/test_almanac.mli:

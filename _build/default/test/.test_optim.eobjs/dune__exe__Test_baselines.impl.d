test/test_baselines.ml: Alcotest Collector Farm_baselines Farm_net Farm_sim Helios List Newton Option Planck Printf Sflow Sonata

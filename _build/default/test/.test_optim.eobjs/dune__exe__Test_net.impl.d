test/test_net.ml: Alcotest Fabric Farm_net Farm_sim Filter Flow Fun Ipaddr List Option QCheck2 QCheck_alcotest Routing Switch_model Tcam Topology Traffic

test/test_optim.ml: Alcotest Array Farm_optim Float Lin_expr List Milp QCheck2 QCheck_alcotest Simplex

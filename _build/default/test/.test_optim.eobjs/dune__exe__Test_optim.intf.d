test/test_optim.mli:

test/test_placement.ml: Alcotest Array Farm_almanac Farm_net Farm_optim Farm_placement Farm_sim Heuristic List Milp_formulation Model Printf QCheck2 QCheck_alcotest String

test/test_placement.mli:

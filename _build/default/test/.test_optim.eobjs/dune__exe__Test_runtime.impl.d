test/test_runtime.ml: Alcotest Array Cpu_model Farm_almanac Farm_net Farm_runtime Farm_sim Harvester Ipc List Printf Seed_exec Seeder Soil String

test/test_sim.ml: Alcotest Array Engine Farm_sim Float Heap List Metrics QCheck2 QCheck_alcotest Rng

test/test_sketches.ml: Alcotest Farm_net Farm_runtime Farm_sim Farm_sketches Farm_tasks Float Hashtbl List Option Printf QCheck2 QCheck_alcotest

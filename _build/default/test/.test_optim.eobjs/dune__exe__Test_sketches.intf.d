test/test_sketches.mli:

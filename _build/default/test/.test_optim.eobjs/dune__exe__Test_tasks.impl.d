test/test_tasks.ml: Alcotest Farm_almanac Farm_net Farm_runtime Farm_sim Farm_tasks List Option Printf

(* Tests for the comparator-system models: the collector, sFlow, Sonata,
   Planck, Helios and Newton all run the same heavy-hitter scenario; the
   pipeline structure of each must produce its characteristic detection
   latency, and Newton's cross-switch merge must catch what Sonata's
   switch-local queries cannot (§VII). *)

module Engine = Farm_sim.Engine
module Rng = Farm_sim.Rng
module Topology = Farm_net.Topology
module Fabric = Farm_net.Fabric
module Flow = Farm_net.Flow
module Ipaddr = Farm_net.Ipaddr
open Farm_baselines

let threshold = 1e6
let onset = 2.

let make_world ?(background = true) () =
  let engine = Engine.create ~seed:8 () in
  let topo = Topology.spine_leaf ~spines:2 ~leaves:3 ~hosts_per_leaf:2 in
  let fabric = Fabric.create topo in
  if background then begin
    let rng = Rng.split (Engine.rng engine) in
    Farm_net.Traffic.background engine fabric rng
      { Farm_net.Traffic.default_profile with concurrent_flows = 30;
        mean_rate = 10_000. }
  end;
  (engine, fabric)

let inject_hh engine fabric ~rate =
  Engine.schedule_at engine ~time:onset (fun engine ->
      let tuple =
        { Flow.src = Ipaddr.of_string "10.1.1.5";
          dst = Ipaddr.of_string "10.3.1.5"; sport = 7; dport = 7;
          proto = Flow.Udp }
      in
      ignore
        (Fabric.start_flow fabric ~time:(Engine.now engine) ~tuple ~rate ()))

(* ------------------------------------------------------------------ *)
(* Collector                                                           *)
(* ------------------------------------------------------------------ *)

let test_collector_rate_detection () =
  let engine, _ = make_world ~background:false () in
  let c =
    Collector.create engine ~latency:1e-3 ~process_cost:1e-6
      ~hh_threshold:1000.
  in
  (* two reports 1 s apart: delta 5000 B -> 5 kB/s >= 1 kB/s threshold *)
  Collector.push_counters c ~switch:1 ~port:2 ~bytes:0. ~read_time:0.;
  Engine.schedule engine ~delay:1. (fun _ ->
      Collector.push_counters c ~switch:1 ~port:2 ~bytes:5000. ~read_time:1.);
  Engine.run engine;
  (match Collector.detections c with
  | [ (t, 1, 2) ] ->
      Alcotest.(check bool) "detection after network latency" true (t > 1.)
  | d -> Alcotest.failf "expected one detection, got %d" (List.length d));
  (* duplicate reports do not re-detect *)
  Collector.push_counters c ~switch:1 ~port:2 ~bytes:99_000. ~read_time:2.;
  Engine.run engine;
  Alcotest.(check int) "deduplicated" 1 (List.length (Collector.detections c));
  Alcotest.(check int) "records counted" 3 (Collector.rx_records c)

(* ------------------------------------------------------------------ *)
(* Pipeline latencies                                                  *)
(* ------------------------------------------------------------------ *)

let detect_latency deploy detect shutdown =
  let engine, fabric = make_world () in
  let t = deploy engine fabric in
  inject_hh engine fabric ~rate:2e7;
  Engine.run ~until:(onset +. 10.) engine;
  let r =
    match detect t onset with
    | Some d -> Some (d -. onset)
    | None -> None
  in
  shutdown t;
  r

let test_sflow_latency_tracks_period () =
  let lat period =
    match
      detect_latency
        (fun e f ->
          Sflow.deploy
            ~config:{ Sflow.default_config with poll_period = period }
            e f ~hh_threshold:threshold)
        (fun t o ->
          Option.map (fun (d, _, _) -> d)
            (Collector.first_detection_after (Sflow.collector t) o))
        Sflow.shutdown
    with
    | Some d -> d
    | None -> Alcotest.fail "sFlow must detect"
  in
  let fast = lat 0.01 and slow = lat 0.1 in
  Alcotest.(check bool)
    (Printf.sprintf "detection within ~period (%.3f, %.3f)" fast slow)
    true
    (fast <= 0.03 && slow <= 0.25 && slow > fast)

let test_sonata_detects_at_batch_boundary () =
  match
    detect_latency
      (fun e f -> Sonata.deploy e f ~hh_threshold:threshold)
      (fun t o ->
        Option.map (fun (d, _, _) -> d) (Sonata.first_detection_after t o))
      Sonata.shutdown
  with
  | Some d ->
      (* bounded below by the batch processing delay, above by window +
         processing *)
      Alcotest.(check bool)
        (Printf.sprintf "batchy latency (%.2fs)" d)
        true
        (d >= Sonata.default_config.batch_process_time && d <= 3.5)
  | None -> Alcotest.fail "Sonata must detect"

let test_planck_fast () =
  match
    detect_latency
      (fun e f -> Planck.deploy e f ~hh_threshold:threshold)
      (fun t o ->
        Option.map (fun (d, _, _) -> d) (Planck.first_detection_after t o))
      Planck.shutdown
  with
  | Some d ->
      Alcotest.(check bool)
        (Printf.sprintf "millisecond scale (%.4fs)" d)
        true (d < 0.02)
  | None -> Alcotest.fail "Planck must detect"

let test_helios_within_loop () =
  match
    detect_latency
      (fun e f -> Helios.deploy e f ~hh_threshold:threshold)
      (fun t o ->
        Option.map (fun (d, _, _) -> d) (Helios.first_detection_after t o))
      Helios.shutdown
  with
  | Some d ->
      Alcotest.(check bool)
        (Printf.sprintf "within ~2 loop periods (%.3fs)" d)
        true
        (d <= 2.5 *. Helios.default_config.loop_period)
  | None -> Alcotest.fail "Helios must detect"

(* ------------------------------------------------------------------ *)
(* Newton                                                              *)
(* ------------------------------------------------------------------ *)

let test_newton_detects () =
  match
    detect_latency
      (fun e f -> Newton.deploy e f ~hh_threshold:threshold)
      (fun t o ->
        Option.map (fun (d, _) -> d) (Newton.first_detection_after t o))
      Newton.shutdown
  with
  | Some d ->
      Alcotest.(check bool)
        (Printf.sprintf "Sonata-like latency (%.2fs)" d)
        true (d <= 3.5)
  | None -> Alcotest.fail "Newton must detect"

let test_newton_dynamic_threshold () =
  (* a 2 MB/s flow is invisible at a 10 MB/s threshold; retuning the query
     at runtime (no redeployment) makes Newton see it *)
  let engine, fabric = make_world ~background:false () in
  let t = Newton.deploy engine fabric ~hh_threshold:1e7 in
  inject_hh engine fabric ~rate:2e6;
  Engine.run ~until:(onset +. 8.) engine;
  Alcotest.(check bool) "silent above threshold" true
    (Newton.first_detection_after t onset = None);
  Newton.update_threshold t 1e6;
  Engine.run ~until:(onset +. 16.) engine;
  Alcotest.(check bool) "detects after live retune" true
    (Newton.first_detection_after t onset <> None);
  Newton.shutdown t

let () =
  Alcotest.run "farm_baselines"
    [ ( "collector",
        [ Alcotest.test_case "rate detection" `Quick
            test_collector_rate_detection ] );
      ( "pipelines",
        [ Alcotest.test_case "sFlow tracks its period" `Quick
            test_sflow_latency_tracks_period;
          Alcotest.test_case "Sonata batch boundary" `Quick
            test_sonata_detects_at_batch_boundary;
          Alcotest.test_case "Planck fast" `Quick test_planck_fast;
          Alcotest.test_case "Helios loop-bounded" `Quick
            test_helios_within_loop ] );
      ( "newton",
        [ Alcotest.test_case "detects" `Quick test_newton_detects;
          Alcotest.test_case "dynamic query retune" `Quick
            test_newton_dynamic_threshold ] ) ]

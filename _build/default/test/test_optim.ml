(* Tests for the LP/MILP substrate: Lin_expr algebra, two-phase simplex,
   branch-and-bound MILP. *)

open Farm_optim

let feq ?(eps = 1e-5) a b = Float.abs (a -. b) <= eps

let check_float name expected actual =
  Alcotest.(check (float 1e-5)) name expected actual

(* ------------------------------------------------------------------ *)
(* Lin_expr                                                            *)
(* ------------------------------------------------------------------ *)

let test_lin_expr_basic () =
  let e = Lin_expr.(add (var ~coeff:2. 0) (add (var ~coeff:3. 1) (const 5.))) in
  check_float "constant" 5. (Lin_expr.constant e);
  check_float "coeff x0" 2. (Lin_expr.coeff e 0);
  check_float "coeff x1" 3. (Lin_expr.coeff e 1);
  check_float "coeff x2" 0. (Lin_expr.coeff e 2);
  let env = function 0 -> 1. | 1 -> 2. | _ -> 0. in
  check_float "eval" 13. (Lin_expr.eval env e)

let test_lin_expr_cancel () =
  let e = Lin_expr.(sub (var 0) (var 0)) in
  Alcotest.(check bool) "x - x is constant" true (Lin_expr.is_constant e);
  Alcotest.(check bool) "x - x = 0" true Lin_expr.(equal e zero)

let test_lin_expr_subst () =
  (* substitute x0 := 2*x1 + 1 in 3*x0 + x1 -> 7*x1 + 3 *)
  let e = Lin_expr.(add (var ~coeff:3. 0) (var 1)) in
  let by = Lin_expr.(add (var ~coeff:2. 1) (const 1.)) in
  let e' = Lin_expr.subst 0 by e in
  check_float "coeff x1 after subst" 7. (Lin_expr.coeff e' 1);
  check_float "const after subst" 3. (Lin_expr.constant e');
  check_float "coeff x0 gone" 0. (Lin_expr.coeff e' 0)

let lin_expr_gen =
  (* random linear expression over up to 4 variables *)
  let open QCheck2.Gen in
  let* base = float_range (-10.) 10. in
  let* n = int_range 0 4 in
  let* coeffs = list_size (return n) (pair (int_range 0 3) (float_range (-5.) 5.)) in
  return
    (List.fold_left
       (fun acc (v, c) -> Lin_expr.(add acc (var ~coeff:c v)))
       (Lin_expr.const base) coeffs)

let prop_add_comm =
  QCheck2.Test.make ~name:"Lin_expr.add commutative" ~count:200
    (QCheck2.Gen.pair lin_expr_gen lin_expr_gen) (fun (a, b) ->
      Lin_expr.(equal (add a b) (add b a)))

let prop_scale_distrib =
  QCheck2.Test.make ~name:"Lin_expr.scale distributes over add" ~count:200
    (QCheck2.Gen.triple QCheck2.Gen.(float_range (-3.) 3.) lin_expr_gen
       lin_expr_gen) (fun (k, a, b) ->
      Lin_expr.(equal ~eps:1e-6 (scale k (add a b)) (add (scale k a) (scale k b))))

let prop_eval_linear =
  QCheck2.Test.make ~name:"Lin_expr.eval is linear" ~count:200
    (QCheck2.Gen.pair lin_expr_gen lin_expr_gen) (fun (a, b) ->
      let env i = float_of_int ((i * 7) + 3) /. 4. in
      feq ~eps:1e-6
        (Lin_expr.eval env (Lin_expr.add a b))
        (Lin_expr.eval env a +. Lin_expr.eval env b))

(* ------------------------------------------------------------------ *)
(* Simplex                                                             *)
(* ------------------------------------------------------------------ *)

let solve_max ~nvars obj cs =
  match Simplex.maximize ~nvars ~objective:obj cs with
  | Simplex.Optimal s -> s
  | Simplex.Infeasible -> Alcotest.fail "unexpected infeasible"
  | Simplex.Unbounded -> Alcotest.fail "unexpected unbounded"

let test_simplex_basic () =
  (* max 3x + 2y st x + y <= 4, x + 3y <= 6 -> x=4, y=0, obj=12 *)
  let x = Lin_expr.var 0 and y = Lin_expr.var 1 in
  let s =
    solve_max ~nvars:2
      Lin_expr.(add (scale 3. x) (scale 2. y))
      [ Simplex.constr (Lin_expr.add x y) Simplex.Le 4.;
        Simplex.constr Lin_expr.(add x (scale 3. y)) Simplex.Le 6. ]
  in
  check_float "objective" 12. s.objective;
  check_float "x" 4. s.values.(0);
  check_float "y" 0. s.values.(1)

let test_simplex_degenerate () =
  (* classic degenerate LP still solves *)
  let x = Lin_expr.var 0 and y = Lin_expr.var 1 in
  let s =
    solve_max ~nvars:2 (Lin_expr.add x y)
      [ Simplex.constr x Simplex.Le 1.;
        Simplex.constr y Simplex.Le 1.;
        Simplex.constr (Lin_expr.add x y) Simplex.Le 2. ]
  in
  check_float "objective" 2. s.objective

let test_simplex_eq_ge () =
  (* max x + y st x + y = 10, x >= 2, y >= 3 -> obj 10 *)
  let x = Lin_expr.var 0 and y = Lin_expr.var 1 in
  let s =
    solve_max ~nvars:2 (Lin_expr.add x y)
      [ Simplex.constr (Lin_expr.add x y) Simplex.Eq 10.;
        Simplex.constr x Simplex.Ge 2.;
        Simplex.constr y Simplex.Ge 3. ]
  in
  check_float "objective" 10. s.objective;
  check_float "sum" 10. (s.values.(0) +. s.values.(1))

let test_simplex_infeasible () =
  let x = Lin_expr.var 0 in
  match
    Simplex.maximize ~nvars:1 ~objective:x
      [ Simplex.constr x Simplex.Le 1.; Simplex.constr x Simplex.Ge 2. ]
  with
  | Simplex.Infeasible -> ()
  | _ -> Alcotest.fail "expected infeasible"

let test_simplex_unbounded () =
  let x = Lin_expr.var 0 and y = Lin_expr.var 1 in
  match
    Simplex.maximize ~nvars:2 ~objective:(Lin_expr.add x y)
      [ Simplex.constr (Lin_expr.sub x y) Simplex.Le 1. ]
  with
  | Simplex.Unbounded -> ()
  | _ -> Alcotest.fail "expected unbounded"

let test_simplex_minimize () =
  (* min x + y st x + 2y >= 4, 3x + y >= 6 -> x=1.6, y=1.2, obj=2.8 *)
  let x = Lin_expr.var 0 and y = Lin_expr.var 1 in
  match
    Simplex.minimize ~nvars:2 ~objective:(Lin_expr.add x y)
      [ Simplex.constr Lin_expr.(add x (scale 2. y)) Simplex.Ge 4.;
        Simplex.constr Lin_expr.(add (scale 3. x) y) Simplex.Ge 6. ]
  with
  | Simplex.Optimal s -> check_float "objective" 2.8 s.objective
  | _ -> Alcotest.fail "expected optimal"

let test_simplex_const_in_expr () =
  (* constants inside expressions are moved to the rhs *)
  let x = Lin_expr.var 0 in
  let s =
    solve_max ~nvars:1 x
      [ Simplex.constr Lin_expr.(add x (const 3.)) Simplex.Le 5. ]
  in
  check_float "x" 2. s.values.(0)

(* Random LP property: returned point is feasible and dominates random
   feasible points. *)
let random_lp_gen =
  let open QCheck2.Gen in
  let* nvars = int_range 1 4 in
  let* nconstr = int_range 1 5 in
  let coeff = float_range 0.1 3. in
  let* obj_coeffs = list_size (return nvars) (float_range 0.1 2.) in
  let* rows =
    list_size (return nconstr)
      (pair (list_size (return nvars) coeff) (float_range 1. 10.))
  in
  let obj =
    List.fold_left
      (fun (i, acc) c -> (i + 1, Lin_expr.(add acc (var ~coeff:c i))))
      (0, Lin_expr.zero) obj_coeffs
    |> snd
  in
  let cs =
    List.map
      (fun (coeffs, rhs) ->
        let e =
          List.fold_left
            (fun (i, acc) c -> (i + 1, Lin_expr.(add acc (var ~coeff:c i))))
            (0, Lin_expr.zero) coeffs
          |> snd
        in
        Simplex.constr e Simplex.Le rhs)
      rows
  in
  return (nvars, obj, cs)

let feasible values cs =
  List.for_all
    (fun (c : Simplex.constr) ->
      let lhs = Lin_expr.eval (fun i -> values.(i)) c.expr in
      match c.cmp with
      | Simplex.Le -> lhs <= c.rhs +. 1e-5
      | Simplex.Ge -> lhs >= c.rhs -. 1e-5
      | Simplex.Eq -> feq lhs c.rhs)
    cs

let prop_simplex_feasible_and_dominant =
  QCheck2.Test.make ~name:"simplex optimum feasible and dominant" ~count:150
    random_lp_gen (fun (nvars, obj, cs) ->
      (* all coeffs positive, rhs positive: always feasible & bounded *)
      match Simplex.maximize ~nvars ~objective:obj cs with
      | Simplex.Optimal s ->
          feasible s.values cs
          && s.values |> Array.for_all (fun v -> v >= -1e-6)
          &&
          (* compare against a grid of scaled feasible points *)
          let opt = s.objective in
          List.for_all
            (fun frac ->
              (* point: x_i = frac * min_j rhs_j / (nvars * a_ij) is feasible *)
              let candidate =
                Array.init nvars (fun i ->
                    List.fold_left
                      (fun acc (c : Simplex.constr) ->
                        let a = Lin_expr.coeff c.expr i in
                        if a > 0. then
                          Float.min acc (c.rhs /. (a *. float_of_int nvars))
                        else acc)
                      1000. cs
                    *. frac)
              in
              let v = Lin_expr.eval (fun i -> candidate.(i)) obj in
              v <= opt +. 1e-4)
            [ 0.0; 0.3; 0.7; 1.0 ]
      | Simplex.Infeasible | Simplex.Unbounded -> false)

(* ------------------------------------------------------------------ *)
(* MILP                                                                *)
(* ------------------------------------------------------------------ *)

let test_milp_knapsack () =
  (* knapsack: values 10,13,7; weights 3,4,2; cap 6; binaries.
     best = items 1+3 (items 0-indexed: 0 and 2): value 17, weight 5 *)
  let x i = Lin_expr.var i in
  let obj =
    Lin_expr.(add (scale 10. (x 0)) (add (scale 13. (x 1)) (scale 7. (x 2))))
  in
  let weight =
    Lin_expr.(add (scale 3. (x 0)) (add (scale 4. (x 1)) (scale 2. (x 2))))
  in
  let cs =
    Simplex.constr weight Simplex.Le 6.
    :: List.init 3 (fun i -> Simplex.constr (x i) Simplex.Le 1.)
  in
  let r =
    Milp.solve ~nvars:3 ~integer:[| true; true; true |] ~objective:obj cs
  in
  Alcotest.(check bool) "optimal" true (r.status = Milp.Optimal);
  check_float "objective" 20. r.objective
  (* items 1+2: weight 6, value 20 — fits exactly *)

let test_milp_integrality_matters () =
  (* max x st 2x <= 3, x integer -> x = 1 (LP relaxation would give 1.5) *)
  let x = Lin_expr.var 0 in
  let r =
    Milp.solve ~nvars:1 ~integer:[| true |] ~objective:x
      [ Simplex.constr (Lin_expr.scale 2. x) Simplex.Le 3. ]
  in
  Alcotest.(check bool) "optimal" true (r.status = Milp.Optimal);
  check_float "x" 1. r.values.(0)

let test_milp_infeasible () =
  let x = Lin_expr.var 0 in
  let r =
    Milp.solve ~nvars:1 ~integer:[| true |] ~objective:x
      [ Simplex.constr x Simplex.Ge 0.4; Simplex.constr x Simplex.Le 0.6 ]
  in
  Alcotest.(check bool) "infeasible" true (r.status = Milp.Infeasible)

let test_milp_warm_start () =
  (* with a zero node budget, the warm start is returned as incumbent *)
  let x = Lin_expr.var 0 in
  let r =
    Milp.solve ~max_nodes:0 ~warm_start:[| 1. |] ~nvars:1 ~integer:[| true |]
      ~objective:x
      [ Simplex.constr x Simplex.Le 5. ]
  in
  Alcotest.(check bool) "feasible from warm start" true
    (r.status = Milp.Feasible);
  check_float "objective" 1. r.objective

let test_milp_mixed () =
  (* mixed problem: y continuous. max 2x + y st x + y <= 2.5, x int *)
  let x = Lin_expr.var 0 and y = Lin_expr.var 1 in
  let r =
    Milp.solve ~nvars:2 ~integer:[| true; false |]
      ~objective:Lin_expr.(add (scale 2. x) y)
      [ Simplex.constr (Lin_expr.add x y) Simplex.Le 2.5 ]
  in
  Alcotest.(check bool) "optimal" true (r.status = Milp.Optimal);
  check_float "objective" 4.5 r.objective;
  check_float "x" 2. r.values.(0);
  check_float "y" 0.5 r.values.(1)

(* brute force 0/1 knapsack comparison *)
let prop_milp_matches_bruteforce =
  let gen =
    let open QCheck2.Gen in
    let* n = int_range 1 6 in
    let* values = list_size (return n) (int_range 1 20) in
    let* weights = list_size (return n) (int_range 1 10) in
    let* cap = int_range 5 25 in
    return (n, values, weights, cap)
  in
  QCheck2.Test.make ~name:"MILP knapsack matches brute force" ~count:60 gen
    (fun (n, values, weights, cap) ->
      let values = Array.of_list values and weights = Array.of_list weights in
      (* brute force *)
      let best = ref 0 in
      for mask = 0 to (1 lsl n) - 1 do
        let v = ref 0 and w = ref 0 in
        for i = 0 to n - 1 do
          if mask land (1 lsl i) <> 0 then begin
            v := !v + values.(i);
            w := !w + weights.(i)
          end
        done;
        if !w <= cap && !v > !best then best := !v
      done;
      (* milp *)
      let obj =
        Array.to_list values
        |> List.mapi (fun i v -> Lin_expr.var ~coeff:(float_of_int v) i)
        |> List.fold_left Lin_expr.add Lin_expr.zero
      in
      let wexpr =
        Array.to_list weights
        |> List.mapi (fun i w -> Lin_expr.var ~coeff:(float_of_int w) i)
        |> List.fold_left Lin_expr.add Lin_expr.zero
      in
      let cs =
        Simplex.constr wexpr Simplex.Le (float_of_int cap)
        :: List.init n (fun i -> Simplex.constr (Lin_expr.var i) Simplex.Le 1.)
      in
      let r = Milp.solve ~nvars:n ~integer:(Array.make n true) ~objective:obj cs in
      r.status = Milp.Optimal && feq r.objective (float_of_int !best))

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "farm_optim"
    [ ( "lin_expr",
        [ Alcotest.test_case "basic" `Quick test_lin_expr_basic;
          Alcotest.test_case "cancellation" `Quick test_lin_expr_cancel;
          Alcotest.test_case "subst" `Quick test_lin_expr_subst ]
        @ qsuite [ prop_add_comm; prop_scale_distrib; prop_eval_linear ] );
      ( "simplex",
        [ Alcotest.test_case "basic" `Quick test_simplex_basic;
          Alcotest.test_case "degenerate" `Quick test_simplex_degenerate;
          Alcotest.test_case "eq and ge rows" `Quick test_simplex_eq_ge;
          Alcotest.test_case "infeasible" `Quick test_simplex_infeasible;
          Alcotest.test_case "unbounded" `Quick test_simplex_unbounded;
          Alcotest.test_case "minimize" `Quick test_simplex_minimize;
          Alcotest.test_case "const in expr" `Quick test_simplex_const_in_expr ]
        @ qsuite [ prop_simplex_feasible_and_dominant ] );
      ( "milp",
        [ Alcotest.test_case "knapsack" `Quick test_milp_knapsack;
          Alcotest.test_case "integrality" `Quick test_milp_integrality_matters;
          Alcotest.test_case "infeasible" `Quick test_milp_infeasible;
          Alcotest.test_case "warm start" `Quick test_milp_warm_start;
          Alcotest.test_case "mixed" `Quick test_milp_mixed ]
        @ qsuite [ prop_milp_matches_bruteforce ] ) ]

(* Tests for the seed-placement model (§IV), the Alg. 1 heuristic and the
   MILP formulation: constraints C1-C4, aggregation benefits, migration
   behaviour, and heuristic-vs-MILP utility on small instances. *)

open Farm_placement
module Analysis = Farm_almanac.Analysis
module Filter = Farm_net.Filter
module Lin = Farm_optim.Lin_expr
module Rng = Farm_sim.Rng

let vcpu = Analysis.resource_index Analysis.VCpu
let ram = Analysis.resource_index Analysis.Ram
let pcie = Analysis.resource_index Analysis.Pcie

let mk_caps node ?(cpu = 4.) ?(mem = 1024.) ?(tcam = 128.) ?(bus = 100.) () =
  let avail = Array.make Analysis.n_resources 0. in
  avail.(vcpu) <- cpu;
  avail.(ram) <- mem;
  avail.(Analysis.resource_index Analysis.TcamR) <- tcam;
  avail.(pcie) <- bus;
  { Model.node; avail }

(* a seed needing [cpu] cores and [mem] MB, utility 10*vCPU capped at [cap] *)
let mk_seed ?(polls = []) ~id ~task ~candidates ?(cpu = 1.) ?(mem = 100.)
    ?(cap = 10.) () =
  { Model.seed_id = id; task_id = task; candidates;
    branches =
      [ { Analysis.constraints =
            [ Lin.sub (Lin.var vcpu) (Lin.const cpu);
              Lin.sub (Lin.var ram) (Lin.const mem) ];
          utility = [ Lin.var ~coeff:10. vcpu; Lin.const cap ] } ];
    polls }

let poll_every ?(subject = Filter.All_ports) iv =
  { Model.subject; ival = Analysis.Const_ival iv }

let mk_instance ?(alpha = 1.) ?(previous = []) seeds switches =
  { Model.seeds; switches; alpha_poll = alpha; previous }

let assert_valid inst placement =
  match Model.validate inst placement.Model.assignments with
  | [] -> ()
  | problems -> Alcotest.failf "invalid placement: %s" (String.concat "; " problems)

(* ------------------------------------------------------------------ *)
(* Model                                                               *)
(* ------------------------------------------------------------------ *)

let test_validate_catches_violations () =
  let inst =
    mk_instance
      [ mk_seed ~id:0 ~task:0 ~candidates:[ 0 ] ();
        mk_seed ~id:1 ~task:0 ~candidates:[ 0 ] () ]
      [ mk_caps 0 ~cpu:1.5 () ]
  in
  let res = Array.make Analysis.n_resources 0. in
  res.(vcpu) <- 1.;
  res.(ram) <- 100.;
  (* partial task placement violates C1 *)
  let a0 = { Model.a_seed = 0; a_node = 0; a_branch = 0; a_res = res } in
  let problems = Model.validate inst [ a0 ] in
  Alcotest.(check bool) "C1 violation reported" true
    (List.exists (fun m -> String.length m > 0 && String.sub m 0 4 = "task")
       problems);
  (* both seeds exceed the 1.5-core switch: C4 *)
  let a1 = { Model.a_seed = 1; a_node = 0; a_branch = 0; a_res = res } in
  let problems = Model.validate inst [ a0; a1 ] in
  Alcotest.(check bool) "C4 violation reported" true
    (List.exists
       (fun m ->
         String.length m >= 6 && String.sub m 0 6 = "switch")
       problems);
  (* under-resourced seed violates C2 *)
  let low = Array.make Analysis.n_resources 0. in
  low.(vcpu) <- 0.1;
  let problems =
    Model.validate inst
      [ { Model.a_seed = 0; a_node = 0; a_branch = 0; a_res = low };
        a1 ]
  in
  Alcotest.(check bool) "C2 violation reported" true
    (List.exists
       (fun m ->
         let n = String.length m in
         n >= 4 && String.sub m (n - 4) 4 = "(C2)")
       problems)

let test_poll_aggregation_max_not_sum () =
  (* two seeds polling the same subject at 10/s and 4/s: demand is 10, not
     14 (aggregation); different subjects: 14 *)
  let same =
    mk_instance
      [ mk_seed ~id:0 ~task:0 ~candidates:[ 0 ] ~polls:[ poll_every 0.1 ] ();
        mk_seed ~id:1 ~task:1 ~candidates:[ 0 ] ~polls:[ poll_every 0.25 ] () ]
      [ mk_caps 0 () ]
  in
  let res = Array.make Analysis.n_resources 0. in
  res.(vcpu) <- 1.;
  res.(ram) <- 100.;
  let assignments =
    [ { Model.a_seed = 0; a_node = 0; a_branch = 0; a_res = res };
      { Model.a_seed = 1; a_node = 0; a_branch = 0; a_res = res } ]
  in
  Alcotest.(check (float 1e-9)) "aggregated demand is the max" 10.
    (Model.poll_demand same assignments ~node:0);
  let diff =
    mk_instance
      [ mk_seed ~id:0 ~task:0 ~candidates:[ 0 ] ~polls:[ poll_every 0.1 ] ();
        mk_seed ~id:1 ~task:1 ~candidates:[ 0 ]
          ~polls:[ poll_every ~subject:(Filter.Port_counter 80) 0.25 ] () ]
      [ mk_caps 0 () ]
  in
  Alcotest.(check (float 1e-9)) "distinct subjects add up" 14.
    (Model.poll_demand diff assignments ~node:0)

(* ------------------------------------------------------------------ *)
(* Heuristic                                                           *)
(* ------------------------------------------------------------------ *)

let test_heuristic_places_simple () =
  let inst =
    mk_instance
      [ mk_seed ~id:0 ~task:0 ~candidates:[ 0; 1 ] ();
        mk_seed ~id:1 ~task:0 ~candidates:[ 0; 1 ] () ]
      [ mk_caps 0 (); mk_caps 1 () ]
  in
  let placement, stats = Heuristic.optimize inst in
  Alcotest.(check int) "both seeds placed" 2 stats.placed_seeds;
  Alcotest.(check int) "no drops" 0 stats.dropped_tasks;
  assert_valid inst placement;
  Alcotest.(check bool) "positive utility" true (placement.utility > 0.)

let test_heuristic_redistribution_improves () =
  (* one seed alone on a big switch: redistribution should push utility to
     the min(10*vCPU, cap) ceiling *)
  let inst =
    mk_instance
      [ mk_seed ~id:0 ~task:0 ~candidates:[ 0 ] ~cap:25. () ]
      [ mk_caps 0 ~cpu:4. () ]
  in
  let greedy, _ = Heuristic.optimize ~phases:Heuristic.greedy_only inst in
  let full, _ = Heuristic.optimize inst in
  assert_valid inst full;
  (* greedy gives the minimal allocation: 10 * 1 vCPU = 10 *)
  Alcotest.(check (float 1e-6)) "greedy at min alloc" 10. greedy.utility;
  (* redistribution grants up to 4 cores -> capped at 25 *)
  Alcotest.(check (float 1e-6)) "LP fills spare capacity" 25. full.utility

let test_heuristic_respects_capacity () =
  (* 3 seeds of 1 core each, switch has 2.5 cores: only 2 fit; the third
     seed's task (task 1 with 1 seed) must be dropped... all seeds same
     task -> whole task dropped; use separate tasks *)
  let inst =
    mk_instance
      [ mk_seed ~id:0 ~task:0 ~candidates:[ 0 ] ();
        mk_seed ~id:1 ~task:1 ~candidates:[ 0 ] ();
        mk_seed ~id:2 ~task:2 ~candidates:[ 0 ] () ]
      [ mk_caps 0 ~cpu:2.5 () ]
  in
  let placement, stats = Heuristic.optimize inst in
  assert_valid inst placement;
  Alcotest.(check int) "two seeds fit" 2 stats.placed_seeds;
  Alcotest.(check int) "one task dropped" 1 stats.dropped_tasks

let test_heuristic_c1_all_or_nothing () =
  (* task with two seeds, but only room for one -> entire task dropped *)
  let inst =
    mk_instance
      [ mk_seed ~id:0 ~task:0 ~candidates:[ 0 ] ();
        mk_seed ~id:1 ~task:0 ~candidates:[ 0 ] () ]
      [ mk_caps 0 ~cpu:1.2 () ]
  in
  let placement, stats = Heuristic.optimize inst in
  Alcotest.(check int) "nothing placed" 0 stats.placed_seeds;
  Alcotest.(check int) "task dropped" 1 stats.dropped_tasks;
  Alcotest.(check (float 0.)) "zero utility" 0. placement.utility

let test_heuristic_aggregation_enables_fit () =
  (* polling budget 12: two seeds each demanding 10 polls/s only fit when
     they share the subject (aggregated max = 10 <= 12). *)
  let shared =
    mk_instance
      [ mk_seed ~id:0 ~task:0 ~candidates:[ 0 ] ~polls:[ poll_every 0.1 ] ();
        mk_seed ~id:1 ~task:1 ~candidates:[ 0 ] ~polls:[ poll_every 0.1 ] () ]
      [ mk_caps 0 ~bus:12. () ]
  in
  let placement, stats = Heuristic.optimize shared in
  assert_valid shared placement;
  Alcotest.(check int) "both fit thanks to aggregation" 2 stats.placed_seeds;
  let unshared =
    mk_instance
      [ mk_seed ~id:0 ~task:0 ~candidates:[ 0 ] ~polls:[ poll_every 0.1 ] ();
        mk_seed ~id:1 ~task:1 ~candidates:[ 0 ]
          ~polls:[ poll_every ~subject:(Filter.Port_counter 9) 0.1 ] () ]
      [ mk_caps 0 ~bus:12. () ]
  in
  let placement2, stats2 = Heuristic.optimize unshared in
  assert_valid unshared placement2;
  Alcotest.(check int) "only one fits without sharing" 1 stats2.placed_seeds

let test_heuristic_prefers_previous_location () =
  (* seed can go to switch 0 or 1; it previously ran on switch 1 *)
  let res = Array.make Analysis.n_resources 0. in
  res.(vcpu) <- 1.;
  res.(ram) <- 100.;
  let previous = [ { Model.a_seed = 0; a_node = 1; a_branch = 0; a_res = res } ] in
  let inst =
    mk_instance ~previous
      [ mk_seed ~id:0 ~task:0 ~candidates:[ 0; 1 ] () ]
      [ mk_caps 0 (); mk_caps 1 () ]
  in
  let placement, _ = Heuristic.optimize inst in
  match placement.assignments with
  | [ a ] -> Alcotest.(check int) "stays on switch 1" 1 a.a_node
  | _ -> Alcotest.fail "expected one assignment"

let test_heuristic_migrates_for_utility () =
  (* Seed 0 sits on tiny switch 0 (cap just enough for min alloc).  A big
     switch 1 is available; migration should move it there for higher
     utility. *)
  let res = Array.make Analysis.n_resources 0. in
  res.(vcpu) <- 1.;
  res.(ram) <- 100.;
  let previous = [ { Model.a_seed = 0; a_node = 0; a_branch = 0; a_res = res } ] in
  let inst =
    mk_instance ~previous
      [ mk_seed ~id:0 ~task:0 ~candidates:[ 0; 1 ] ~cap:30. () ]
      [ mk_caps 0 ~cpu:1. (); mk_caps 1 ~cpu:4. () ]
  in
  let placement, stats = Heuristic.optimize inst in
  assert_valid inst placement;
  (match placement.assignments with
  | [ a ] -> Alcotest.(check int) "migrated to big switch" 1 a.a_node
  | _ -> Alcotest.fail "expected one assignment");
  Alcotest.(check bool) "migration counted" true (stats.migrations >= 1);
  Alcotest.(check (float 1e-6)) "utility after migration" 30. placement.utility

let test_heuristic_task_priority () =
  (* High-min-utility task placed first gets the scarce switch. *)
  let inst =
    mk_instance
      [ mk_seed ~id:0 ~task:0 ~candidates:[ 0 ] ~cap:5. ();
        mk_seed ~id:1 ~task:1 ~candidates:[ 0 ] ~cap:50. ~cpu:2. () ]
      [ mk_caps 0 ~cpu:2.5 () ]
  in
  (* task 1 min utility = 10*2 = 20 > task 0's 10 -> placed first, and
     after that only 0.5 cores remain: task 0 cannot fit *)
  let placement, _ = Heuristic.optimize inst in
  assert_valid inst placement;
  match placement.assignments with
  | [ a ] -> Alcotest.(check int) "high-utility seed placed" 1 a.a_seed
  | _ -> Alcotest.fail "expected exactly one placed seed"

let prop_heuristic_always_valid =
  QCheck2.Test.make ~name:"heuristic placements satisfy C1-C4" ~count:40
    QCheck2.Gen.(pair (int_range 1 20) (int_range 1 6))
    (fun (seed, tasks) ->
      let rng = Rng.create seed in
      let inst =
        Model.random_instance ~rng ~switches:(2 + (seed mod 7)) ~tasks
          ~seeds_per_task:(1 + (seed mod 5)) ()
      in
      let placement, _ = Heuristic.optimize inst in
      Model.validate inst placement.assignments = [])

(* ------------------------------------------------------------------ *)
(* MILP                                                                *)
(* ------------------------------------------------------------------ *)

let test_milp_simple_optimal () =
  let inst =
    mk_instance
      [ mk_seed ~id:0 ~task:0 ~candidates:[ 0; 1 ] ~cap:25. () ]
      [ mk_caps 0 ~cpu:1. (); mk_caps 1 ~cpu:4. () ]
  in
  let r = Milp_formulation.solve ~timeout:10. inst in
  Alcotest.(check bool) "optimal" true (r.status = Farm_optim.Milp.Optimal);
  assert_valid inst r.placement;
  (* best: switch 1 with 2.5 cores -> min(10*2.5, 25) = 25 *)
  Alcotest.(check (float 1e-4)) "utility" 25. r.placement.utility;
  match r.placement.assignments with
  | [ a ] -> Alcotest.(check int) "big switch chosen" 1 a.a_node
  | _ -> Alcotest.fail "expected one assignment"

let test_milp_beats_or_ties_heuristic () =
  (* on small random instances the exact solver's utility must be >= the
     heuristic's (modulo tolerance) *)
  let rng = Rng.create 99 in
  for _ = 1 to 5 do
    let inst = Model.random_instance ~rng ~switches:3 ~tasks:2 ~seeds_per_task:2 () in
    let hp, _ = Heuristic.optimize inst in
    let r = Milp_formulation.solve ~timeout:20. ~warm_start:hp inst in
    assert_valid inst r.placement;
    Alcotest.(check bool)
      (Printf.sprintf "milp %.2f >= heuristic %.2f" r.placement.utility
         hp.utility)
      true
      (r.placement.utility >= hp.utility -. 1e-4)
  done

let test_milp_c1_in_formulation () =
  (* two-seed task that cannot fully fit: MILP must place nothing *)
  let inst =
    mk_instance
      [ mk_seed ~id:0 ~task:0 ~candidates:[ 0 ] ();
        mk_seed ~id:1 ~task:0 ~candidates:[ 0 ] () ]
      [ mk_caps 0 ~cpu:1.2 () ]
  in
  let r = Milp_formulation.solve ~timeout:10. inst in
  Alcotest.(check int) "no partial placement" 0
    (List.length r.placement.assignments)

let test_milp_size_guard () =
  (* a big instance with a warm start: the guard returns the warm start *)
  let rng = Rng.create 7 in
  let inst = Model.random_instance ~rng ~switches:20 ~tasks:8 ~seeds_per_task:40 () in
  let hp, _ = Heuristic.optimize inst in
  let r = Milp_formulation.solve ~timeout:0.5 ~max_cells:1000 ~warm_start:hp inst in
  Alcotest.(check bool) "feasible via warm start" true
    (r.status = Farm_optim.Milp.Feasible);
  Alcotest.(check (float 1e-9)) "warm-start utility" hp.utility
    r.placement.utility

let test_milp_migration_cost () =
  (* Seed 0 previously ran on switch 0 with 100 MB.  Seed 1 (a different
     task) can only run on switch 0 and needs 60 MB; the switch has 120 MB.
     Without history both fit (seed 0 moves to switch 1).  With history,
     moving seed 0 doubles its 100 MB on switch 0 during the state
     transfer (migr term in C4), so 100 + 60 > 120: seed 1's task cannot
     be placed in the same run. *)
  let res = Array.make Analysis.n_resources 0. in
  res.(vcpu) <- 1.;
  res.(ram) <- 100.;
  let seeds =
    [ mk_seed ~id:0 ~task:0 ~candidates:[ 0; 1 ] ~cap:10. ();
      mk_seed ~id:1 ~task:1 ~candidates:[ 0 ] ~mem:60. ~cap:10. () ]
  in
  let switches = [ mk_caps 0 ~cpu:4. ~mem:120. (); mk_caps 1 ~cpu:4. () ] in
  let free = mk_instance seeds switches in
  let r_free = Milp_formulation.solve ~timeout:20. free in
  assert_valid free r_free.placement;
  Alcotest.(check int) "without history both seeds fit" 2
    (List.length r_free.placement.assignments);
  let hist =
    mk_instance
      ~previous:[ { Model.a_seed = 0; a_node = 0; a_branch = 0; a_res = res } ]
      seeds switches
  in
  let r_hist = Milp_formulation.solve ~timeout:20. hist in
  Alcotest.(check int) "migration overhead blocks the second task" 1
    (List.length r_hist.placement.assignments)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "farm_placement"
    [ ( "model",
        [ Alcotest.test_case "validate catches violations" `Quick
            test_validate_catches_violations;
          Alcotest.test_case "poll aggregation is max" `Quick
            test_poll_aggregation_max_not_sum ] );
      ( "heuristic",
        [ Alcotest.test_case "places simple" `Quick test_heuristic_places_simple;
          Alcotest.test_case "redistribution improves" `Quick
            test_heuristic_redistribution_improves;
          Alcotest.test_case "respects capacity" `Quick
            test_heuristic_respects_capacity;
          Alcotest.test_case "C1 all-or-nothing" `Quick
            test_heuristic_c1_all_or_nothing;
          Alcotest.test_case "aggregation enables fit" `Quick
            test_heuristic_aggregation_enables_fit;
          Alcotest.test_case "prefers previous location" `Quick
            test_heuristic_prefers_previous_location;
          Alcotest.test_case "migrates for utility" `Quick
            test_heuristic_migrates_for_utility;
          Alcotest.test_case "task priority" `Quick test_heuristic_task_priority ]
        @ qsuite [ prop_heuristic_always_valid ] );
      ( "milp",
        [ Alcotest.test_case "simple optimal" `Quick test_milp_simple_optimal;
          Alcotest.test_case "beats or ties heuristic" `Slow
            test_milp_beats_or_ties_heuristic;
          Alcotest.test_case "C1 in formulation" `Quick
            test_milp_c1_in_formulation;
          Alcotest.test_case "size guard" `Quick test_milp_size_guard;
          Alcotest.test_case "migration cost" `Quick test_milp_migration_cost ] ) ]

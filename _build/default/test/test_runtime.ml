(* Tests for the FARM runtime: CPU/IPC models, soil (aggregation, PCIe
   bottleneck, TCAM mediation), seed execution and the seeder's end-to-end
   deploy -> poll -> detect -> react -> harvest pipeline, plus migration. *)

open Farm_runtime
module Engine = Farm_sim.Engine
module Rng = Farm_sim.Rng
module Topology = Farm_net.Topology
module Fabric = Farm_net.Fabric
module Filter = Farm_net.Filter
module Flow = Farm_net.Flow
module Tcam = Farm_net.Tcam
module Switch_model = Farm_net.Switch_model
module Value = Farm_almanac.Value
module Typecheck = Farm_almanac.Typecheck

(* ------------------------------------------------------------------ *)
(* Cpu_model / Ipc                                                     *)
(* ------------------------------------------------------------------ *)

let test_cpu_model_accounting () =
  let u = Cpu_model.usage () in
  Cpu_model.charge u 2.;
  Cpu_model.charge u 6.;
  Alcotest.(check (float 1e-9)) "busy" 8. (Cpu_model.busy_seconds u);
  Alcotest.(check (float 1e-9)) "offered load 800%" 8.
    (Cpu_model.offered_load u ~window:1.);
  let m = Cpu_model.default in
  Alcotest.(check (float 1e-9)) "achieved capped at cores" m.cores
    (Cpu_model.achieved_load m u ~window:1.);
  Alcotest.(check (float 1e-9)) "accuracy = cores/offered" (m.cores /. 8.)
    (Cpu_model.accuracy m u ~window:1.);
  Cpu_model.charge u (-7.9);
  ignore (Cpu_model.accuracy m u ~window:1.)

let test_ipc_latency_shape () =
  (* gRPC grows fast with seed count; shared buffer stays nearly flat
     (Fig. 10) *)
  let g10 = Ipc.latency Ipc.Grpc Ipc.Threads ~seeds:10 in
  let g150 = Ipc.latency Ipc.Grpc Ipc.Threads ~seeds:150 in
  let s10 = Ipc.latency Ipc.Shared_buffer Ipc.Threads ~seeds:10 in
  let s150 = Ipc.latency Ipc.Shared_buffer Ipc.Threads ~seeds:150 in
  Alcotest.(check bool) "gRPC grows" true (g150 > g10 *. 2.);
  Alcotest.(check bool) "shared buffer nearly flat" true
    (s150 < s10 *. 3.);
  Alcotest.(check bool) "shared buffer much faster" true (s150 *. 20. < g150);
  (* processes cost more than threads on both schemes *)
  Alcotest.(check bool) "processes slower (gRPC)" true
    (Ipc.latency Ipc.Grpc Ipc.Processes ~seeds:50
    > Ipc.latency Ipc.Grpc Ipc.Threads ~seeds:50);
  Alcotest.(check bool) "processes slower (shm)" true
    (Ipc.latency Ipc.Shared_buffer Ipc.Processes ~seeds:50
    > Ipc.latency Ipc.Shared_buffer Ipc.Threads ~seeds:50)

(* ------------------------------------------------------------------ *)
(* Soil                                                                *)
(* ------------------------------------------------------------------ *)

let make_soil ?config () =
  let engine = Engine.create () in
  let sw = Switch_model.create ~id:0 ~ports:8 () in
  let soil = Soil.create ?config engine sw in
  (engine, sw, soil)

let test_soil_poll_delivery () =
  let engine, sw, soil = make_soil () in
  Switch_model.add_flow sw ~time:0. ~flow_id:1
    ~tuple:{ Flow.src = Farm_net.Ipaddr.of_int 1;
             dst = Farm_net.Ipaddr.of_int 2; sport = 1; dport = 80;
             proto = Flow.Tcp }
    ~rate:1000. ~egress:3 ();
  let deliveries = ref [] in
  let _sub =
    Soil.subscribe_poll soil ~seed_id:0 ~subject:Filter.All_ports ~period:0.1
      (fun data -> deliveries := data :: !deliveries)
  in
  Engine.run ~until:1.05 engine;
  Alcotest.(check bool) "about 10 deliveries" true
    (List.length !deliveries >= 9 && List.length !deliveries <= 11);
  (* latest delivery sees accumulated bytes on port 3 *)
  (match !deliveries with
  | last :: _ ->
      Alcotest.(check bool) "port 3 counted" true (last.(3) > 800.)
  | [] -> Alcotest.fail "no deliveries")

let test_soil_aggregation_saves_asic_polls () =
  (* two seeds polling the same subject: aggregated = one ASIC poll stream
     at the fastest rate *)
  let run aggregate =
    let config = { Soil.default_config with aggregate_polls = aggregate } in
    let engine, _sw, soil = make_soil ~config () in
    let _s1 =
      Soil.subscribe_poll soil ~seed_id:1 ~subject:Filter.All_ports
        ~period:0.01 (fun _ -> ())
    in
    let _s2 =
      Soil.subscribe_poll soil ~seed_id:2 ~subject:Filter.All_ports
        ~period:0.01 (fun _ -> ())
    in
    Engine.run ~until:1. engine;
    (Soil.poll_stats soil).asic_polls
  in
  let agg = run true and non_agg = run false in
  Alcotest.(check bool)
    (Printf.sprintf "aggregation halves ASIC polls (%d vs %d)" agg non_agg)
    true
    (float_of_int agg < 0.6 *. float_of_int non_agg)

let test_soil_aggregated_rate_is_fastest () =
  let engine, _sw, soil = make_soil () in
  let fast = ref 0 and slow = ref 0 in
  let _s1 =
    Soil.subscribe_poll soil ~seed_id:1 ~subject:Filter.All_ports
      ~period:0.01 (fun _ -> incr fast)
  in
  let _s2 =
    Soil.subscribe_poll soil ~seed_id:2 ~subject:Filter.All_ports
      ~period:0.1 (fun _ -> incr slow)
  in
  Engine.run ~until:1. engine;
  (* both are served at the fast seed's rate: the slow seed sees at least
     its requested accuracy *)
  Alcotest.(check bool) "fast seed ~100 polls" true (!fast >= 95);
  Alcotest.(check bool) "slow seed served at aggregate rate" true
    (!slow >= 95)

let test_soil_pcie_saturation () =
  (* Demand far beyond the 8 Mbit/s polling budget: polls are dropped and
     completions cap at the bus capacity (Fig. 8). *)
  let engine, _sw, soil = make_soil () in
  (* a 64 B counter read is 512 bits; the 8 Mbit/s budget sustains
     ~15625 polls/s.  Ask for 20 seeds x 5000 polls/s = 51 Mbit/s. *)
  for i = 1 to 20 do
    ignore
      (Soil.subscribe_poll soil ~seed_id:i
         ~subject:(Filter.Port_counter i) ~period:0.0002 (fun _ -> ()))
  done;
  Engine.run ~until:2. engine;
  let stats = Soil.poll_stats soil in
  Alcotest.(check bool) "drops occurred" true (stats.dropped > 0);
  (* completed transfer volume stays within bus capacity *)
  let achieved_bps = stats.pcie_bytes *. 8. /. 2. in
  Alcotest.(check bool)
    (Printf.sprintf "achieved %.0f <= capacity" achieved_bps)
    true
    (achieved_bps <= 8.1e6)

let test_soil_probe_sampling () =
  let engine, sw, soil = make_soil () in
  Switch_model.add_flow sw ~time:0. ~flow_id:1
    ~tuple:{ Flow.src = Farm_net.Ipaddr.of_int 1;
             dst = Farm_net.Ipaddr.of_int 2; sport = 5; dport = 443;
             proto = Flow.Tcp }
    ~rate:1e6 ~egress:0 ();
  let got = ref 0 in
  let _sub =
    Soil.subscribe_probe soil ~seed_id:0
      ~filter:(Filter.atom (Filter.Dst_port 443)) ~period:0.01 (fun pkt ->
        Alcotest.(check int) "filtered packets only" 443 pkt.tuple.dport;
        incr got)
  in
  Engine.run ~until:1. engine;
  Alcotest.(check bool) "packets sampled" true (!got > 50)

let test_soil_tcam_mediation () =
  let engine, sw, soil = make_soil () in
  ignore engine;
  let pattern = Filter.atom (Filter.Dst_port 80) in
  (match Soil.add_tcam_rule soil { pattern; action = Tcam.Drop; priority = 5 } with
  | Ok () -> ()
  | Error `Full -> Alcotest.fail "rule must fit");
  (* rule landed in the monitoring region only *)
  Alcotest.(check int) "monitoring region used" 1
    (Tcam.region_used (Switch_model.tcam sw) Tcam.Monitoring);
  Alcotest.(check int) "forwarding region untouched" 0
    (Tcam.region_used (Switch_model.tcam sw) Tcam.Forwarding);
  Alcotest.(check bool) "lookup finds it" true
    (Soil.get_tcam_rule soil ~pattern <> None);
  Alcotest.(check int) "removed" 1 (Soil.remove_tcam_rule soil ~pattern)

(* ------------------------------------------------------------------ *)
(* End-to-end deployment                                               *)
(* ------------------------------------------------------------------ *)

(* A watchdog task: polls all port counters; when the total byte count
   exceeds [limit] it reports to the harvester, installs a local drop rule
   for port 80, and moves to a quenched state. *)
let watchdog_source =
  {|
machine Watchdog {
  place all;
  poll counters = Poll { .ival = 0.01, .what = port ANY };
  external long limit = 1000000;
  state observe {
    when (counters as stats) do {
      if (stats_sum(stats) >= limit) then {
        transit alerting;
      }
    }
  }
  state alerting {
    when (enter) do {
      send stats_to_report() to harvester;
      addTCAMRule(mkRule(dstPort 80, drop_action()));
      transit quenched;
    }
  }
  state quenched {
  }
}
|}

let watchdog_sigs =
  [ ("stats_to_report", { Typecheck.args = []; ret = Typecheck.Numeric }) ]

let watchdog_builtins = [ ("stats_to_report", fun _ -> Value.Num 42.) ]

let make_world () =
  let engine = Engine.create ~seed:11 () in
  let topo = Topology.spine_leaf ~spines:2 ~leaves:2 ~hosts_per_leaf:1 in
  let fabric = Fabric.create topo in
  let seeder = Seeder.create engine fabric in
  (engine, topo, fabric, seeder)

let test_seeder_deploy_and_detect () =
  let engine, topo, fabric, seeder = make_world () in
  let spec =
    { (Seeder.simple_spec ~name:"watchdog" ~source:watchdog_source) with
      Seeder.ts_extra_sigs = watchdog_sigs;
      ts_builtins = watchdog_builtins;
      ts_externals = [ ("Watchdog", [ ("limit", Value.Num 50_000.) ]) ] }
  in
  let task =
    match Seeder.deploy seeder spec with
    | Ok t -> t
    | Error m -> Alcotest.failf "deploy failed: %s" m
  in
  Alcotest.(check bool) "placed" true (Seeder.is_placed task);
  (* place all: one seed per switch *)
  Alcotest.(check int) "one seed per switch"
    (List.length (Topology.switches topo))
    (List.length (Seeder.seeds seeder task));
  (* a 100 kB/s flow crosses the 50 kB total within ~0.5 s on its path *)
  let tuple =
    { Flow.src = Farm_net.Ipaddr.of_string "10.1.1.10";
      dst = Farm_net.Ipaddr.of_string "10.2.1.10"; sport = 1234; dport = 80;
      proto = Flow.Tcp }
  in
  let _ = Fabric.start_flow fabric ~time:0. ~tuple ~rate:100_000. () in
  Engine.run ~until:2. engine;
  let h = Seeder.harvester task in
  Alcotest.(check bool) "harvester got alerts" true
    (Harvester.received_count h >= 1);
  (* alert payload comes from the task builtin *)
  (match Harvester.received h with
  | (_, _, Value.Num v) :: _ -> Alcotest.(check (float 0.)) "payload" 42. v
  | _ -> Alcotest.fail "expected a numeric alert");
  (* local reaction: drop rule installed on the path switches *)
  let rule_somewhere =
    List.exists
      (fun soil ->
        Soil.get_tcam_rule soil ~pattern:(Filter.atom (Filter.Dst_port 80))
        <> None)
      (Seeder.soils seeder)
  in
  Alcotest.(check bool) "drop rule installed locally" true rule_somewhere;
  (* seeds on the flow's path are quenched *)
  let quenched =
    List.filter (fun s -> Seed_exec.state s = "quenched")
      (Seeder.seeds seeder task)
  in
  Alcotest.(check bool) "path seeds quenched" true (List.length quenched >= 3)

let test_seeder_harvester_feedback () =
  (* the harvester reconfigures seeds at runtime via recv *)
  let source =
    {|
machine Adj {
  place all;
  external long threshold = 10;
  state s {
    when (recv long t from harvester) do { threshold = t; }
  }
}
|}
  in
  let engine, _, _, seeder = make_world () in
  let sent = ref false in
  let harvester_spec =
    { Harvester.on_start =
        (fun ctx ->
          sent := true;
          ctx.broadcast (Value.Num 77.));
      on_message = (fun _ ~from_switch:_ _ -> ()) }
  in
  let spec =
    { (Seeder.simple_spec ~name:"adj" ~source) with
      Seeder.ts_harvester = harvester_spec }
  in
  let task =
    match Seeder.deploy seeder spec with
    | Ok t -> t
    | Error m -> Alcotest.failf "deploy failed: %s" m
  in
  Engine.run ~until:0.1 engine;
  Alcotest.(check bool) "harvester started" true !sent;
  List.iter
    (fun s ->
      match Seed_exec.var s "threshold" with
      | Some (Value.Num v) ->
          Alcotest.(check (float 0.)) "threshold pushed to all seeds" 77. v
      | _ -> Alcotest.fail "threshold unbound")
    (Seeder.seeds seeder task)

let test_seeder_collector_accounting () =
  let engine, _, fabric, seeder = make_world () in
  let spec =
    { (Seeder.simple_spec ~name:"watchdog" ~source:watchdog_source) with
      Seeder.ts_extra_sigs = watchdog_sigs;
      ts_builtins = watchdog_builtins;
      ts_externals = [ ("Watchdog", [ ("limit", Value.Num 10_000.) ]) ] }
  in
  (match Seeder.deploy seeder spec with
  | Ok _ -> ()
  | Error m -> Alcotest.failf "deploy failed: %s" m);
  Alcotest.(check (float 0.)) "no traffic, no collector load" 0.
    (Seeder.collector_bytes seeder);
  let tuple =
    { Flow.src = Farm_net.Ipaddr.of_string "10.1.1.10";
      dst = Farm_net.Ipaddr.of_string "10.2.1.10"; sport = 1; dport = 80;
      proto = Flow.Tcp }
  in
  let _ = Fabric.start_flow fabric ~time:0. ~tuple ~rate:1e6 () in
  Engine.run ~until:1. engine;
  Alcotest.(check bool) "alerts counted" true
    (Seeder.collector_messages seeder >= 1);
  Alcotest.(check bool) "bytes counted" true
    (Seeder.collector_bytes seeder > 0.)

let test_seeder_undeploy_releases () =
  let engine, _, _, seeder = make_world () in
  ignore engine;
  let spec =
    { (Seeder.simple_spec ~name:"watchdog" ~source:watchdog_source) with
      Seeder.ts_extra_sigs = watchdog_sigs;
      ts_builtins = watchdog_builtins }
  in
  let task =
    match Seeder.deploy seeder spec with
    | Ok t -> t
    | Error m -> Alcotest.failf "deploy failed: %s" m
  in
  let n_seeds = List.length (Seeder.seeds seeder task) in
  Alcotest.(check bool) "seeds deployed" true (n_seeds > 0);
  Seeder.undeploy seeder task;
  Alcotest.(check int) "seeds gone" 0 (List.length (Seeder.seeds seeder task));
  Alcotest.(check bool) "not placed" false (Seeder.is_placed task)

let test_seeder_rejects_bad_programs () =
  let _, _, _, seeder = make_world () in
  (match Seeder.deploy seeder (Seeder.simple_spec ~name:"bad" ~source:"machine {") with
  | Error m ->
      Alcotest.(check bool) "syntax error surfaced" true
        (String.length m > 0)
  | Ok _ -> Alcotest.fail "syntax error must fail");
  match
    Seeder.deploy seeder
      (Seeder.simple_spec ~name:"bad2"
         ~source:
           "machine M { long x; state s { when (enter) do { x = nope; } } }")
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "type error must fail"

let test_seed_migration_preserves_state () =
  (* Manual migration through the Seed_exec API: snapshot on one soil,
     restore on another; machine state and variables survive, polling
     resumes on the target. *)
  let engine = Engine.create () in
  let sw0 = Switch_model.create ~id:0 ~ports:4 () in
  let sw1 = Switch_model.create ~id:1 ~ports:4 () in
  let soil0 = Soil.create engine sw0 in
  let soil1 = Soil.create engine sw1 in
  let source =
    {|
machine Counting {
  place all;
  poll ticks = Poll { .ival = 0.01, .what = port ANY };
  long count = 0;
  state s {
    when (ticks as stats) do { count = count + 1; }
  }
}
|}
  in
  let program = Typecheck.check (Farm_almanac.Parser.program source) in
  let machine = List.hd program.machines in
  let polls =
    match Farm_almanac.Analysis.polls machine with
    | Ok p -> p
    | Error m -> Alcotest.fail m
  in
  let resources = Array.make Farm_almanac.Analysis.n_resources 1. in
  let deploy soil restore =
    Seed_exec.deploy ~soil ~program ~machine:"Counting" ?restore ~resources
      ~polls
      ~send:(fun _ _ _ -> ())
      ~seed_id:7 ()
  in
  let s0 = deploy soil0 None in
  Engine.run ~until:0.5 engine;
  let count_at_migration =
    match Seed_exec.var s0 "count" with
    | Some (Value.Num n) -> n
    | _ -> Alcotest.fail "count unbound"
  in
  Alcotest.(check bool) "polled before migration" true
    (count_at_migration > 10.);
  let snapshot = Seed_exec.snapshot s0 in
  Seed_exec.destroy s0;
  Alcotest.(check bool) "origin stopped" false (Seed_exec.is_alive s0);
  let s1 = deploy soil1 (Some snapshot) in
  Alcotest.(check int) "runs on target switch" 1 (Seed_exec.node s1);
  Engine.run ~until:1. engine;
  (match Seed_exec.var s1 "count" with
  | Some (Value.Num n) ->
      Alcotest.(check bool) "state carried over and polling resumed" true
        (n > count_at_migration +. 10.)
  | _ -> Alcotest.fail "count unbound after migration");
  (* origin soil no longer polls *)
  Soil.reset_stats soil0;
  Engine.run ~until:1.5 engine;
  Alcotest.(check int) "origin soil idle" 0 (Soil.poll_stats soil0).asic_polls

let test_seed_realloc_changes_poll_rate () =
  (* a seed whose ival = 10/PCIe polls faster after more PCIe is granted *)
  let engine = Engine.create () in
  let sw = Switch_model.create ~id:0 ~ports:4 () in
  let soil = Soil.create engine sw in
  let source =
    {|
machine R {
  place all;
  poll ticks = Poll { .ival = 10 / res().PCIe, .what = port ANY };
  long count = 0;
  long reallocs = 0;
  state s {
    when (ticks as stats) do { count = count + 1; }
    when (realloc) do { reallocs = reallocs + 1; }
  }
}
|}
  in
  let program = Typecheck.check (Farm_almanac.Parser.program source) in
  let polls =
    match Farm_almanac.Analysis.polls (List.hd program.machines) with
    | Ok p -> p
    | Error m -> Alcotest.fail m
  in
  let res = Array.make Farm_almanac.Analysis.n_resources 1. in
  res.(Farm_almanac.Analysis.resource_index Farm_almanac.Analysis.Pcie) <- 100.;
  (* ival = 10/100 = 0.1 s *)
  let seed =
    Seed_exec.deploy ~soil ~program ~machine:"R" ~resources:res ~polls
      ~send:(fun _ _ _ -> ())
      ~seed_id:1 ()
  in
  Engine.run ~until:1. engine;
  let c1 =
    match Seed_exec.var seed "count" with
    | Some (Value.Num n) -> n
    | _ -> 0.
  in
  Alcotest.(check bool) "about 10 polls in 1s" true (c1 >= 8. && c1 <= 12.);
  (* grant 10x the polling capacity *)
  let res2 = Array.copy res in
  res2.(Farm_almanac.Analysis.resource_index Farm_almanac.Analysis.Pcie) <-
    1000.;
  Seed_exec.set_resources seed res2;
  Engine.run ~until:2. engine;
  let c2 =
    match Seed_exec.var seed "count" with
    | Some (Value.Num n) -> n
    | _ -> 0.
  in
  Alcotest.(check bool)
    (Printf.sprintf "10x faster after realloc (%.0f then %.0f)" c1 (c2 -. c1))
    true
    (c2 -. c1 >= 80.);
  match Seed_exec.var seed "reallocs" with
  | Some (Value.Num n) -> Alcotest.(check (float 0.)) "realloc event fired" 1. n
  | _ -> Alcotest.fail "reallocs unbound"

let test_inter_seed_messaging () =
  (* two machine types in one task: Sensor seeds broadcast to the Mirror
     machine; a directed send (@ switch) reaches only that switch's seed *)
  let engine = Engine.create ~seed:17 () in
  let topo = Topology.linear ~n:2 in
  let fabric = Fabric.create topo in
  let seeder = Seeder.create engine fabric in
  let source =
    {|
machine Sensor {
  place all;
  time tick = Time { .ival = 0.5 };
  long fired = 0;
  state s {
    when (tick as t) do {
      if (fired == 0) then {
        send 41 to Mirror;                  // broadcast to all Mirror seeds
        send 1 to Mirror @ 0;               // directed: switch 0 only
        fired = 1;
      }
    }
  }
}
machine Mirror {
  place all;
  long total = 0;
  state s {
    when (recv long v from Sensor) do { total = total + v; }
  }
}
|}
  in
  let task =
    match Seeder.deploy seeder (Seeder.simple_spec ~name:"pair" ~source) with
    | Ok t -> t
    | Error m -> Alcotest.failf "deploy failed: %s" m
  in
  Engine.run ~until:2. engine;
  let mirror_total node =
    match Seeder.seed_on seeder task ~machine:"Mirror" ~node with
    | Some s -> (
        match Seed_exec.var s "total" with
        | Some (Value.Num n) -> n
        | _ -> Alcotest.fail "total unbound")
    | None -> Alcotest.failf "no Mirror seed on switch %d" node
  in
  (* both sensors broadcast 41 once (2x41); switch 0 additionally got two
     directed 1s (one from each sensor) *)
  Alcotest.(check (float 0.)) "switch 0: broadcasts + directed" 84.
    (mirror_total 0);
  Alcotest.(check (float 0.)) "switch 1: broadcasts only" 82.
    (mirror_total 1)

let test_switch_failure_recovery () =
  (* a task placeable anywhere survives a switch failure: its seed is lost
     with the switch and restarted elsewhere by re-optimization *)
  let engine = Engine.create ~seed:13 () in
  let topo = Topology.spine_leaf ~spines:2 ~leaves:2 ~hosts_per_leaf:1 in
  let fabric = Fabric.create topo in
  let seeder = Seeder.create engine fabric in
  let source =
    {|
machine Roam {
  place any;
  poll ticks = Poll { .ival = 0.01, .what = port ANY };
  long polls = 0;
  state s { when (ticks as stats) do { polls = polls + 1; } }
}
|}
  in
  let task =
    match Seeder.deploy seeder (Seeder.simple_spec ~name:"roam" ~source) with
    | Ok t -> t
    | Error m -> Alcotest.failf "deploy failed: %s" m
  in
  Engine.run ~until:1. engine;
  let seed = List.hd (Seeder.seeds seeder task) in
  let home = Seed_exec.node seed in
  Seeder.fail_switch seeder home;
  Alcotest.(check (list int)) "marked failed" [ home ]
    (Seeder.failed_switches seeder);
  (* the replacement seed lives on another switch and polls again *)
  (match Seeder.seeds seeder task with
  | [ replacement ] ->
      Alcotest.(check bool) "moved off the failed switch" true
        (Seed_exec.node replacement <> home);
      Engine.run ~until:2. engine;
      (match Seed_exec.var replacement "polls" with
      | Some (Value.Num n) ->
          Alcotest.(check bool) "polling resumed" true (n > 10.)
      | _ -> Alcotest.fail "polls unbound")
  | seeds -> Alcotest.failf "expected 1 seed, got %d" (List.length seeds));
  (* the old instance is dead *)
  Alcotest.(check bool) "old instance destroyed" false (Seed_exec.is_alive seed)

let test_switch_failure_drops_pinned_task () =
  (* a task pinned to one switch cannot survive that switch's failure *)
  let engine = Engine.create ~seed:14 () in
  let topo = Topology.spine_leaf ~spines:2 ~leaves:2 ~hosts_per_leaf:1 in
  let fabric = Fabric.create topo in
  let seeder = Seeder.create engine fabric in
  let source =
    {|
machine Pinned {
  place any "leaf0";
  long x;
  state s { }
}
|}
  in
  let task =
    match Seeder.deploy seeder (Seeder.simple_spec ~name:"pinned" ~source) with
    | Ok t -> t
    | Error m -> Alcotest.failf "deploy failed: %s" m
  in
  let node = Seed_exec.node (List.hd (Seeder.seeds seeder task)) in
  Seeder.fail_switch seeder node;
  Alcotest.(check int) "task dropped with its only switch" 0
    (List.length (Seeder.seeds seeder task))

let test_reoptimize_migrates_on_arrival () =
  (* a later, more valuable task can push an existing movable seed to its
     other candidate switch; the migrated seed keeps its state *)
  let engine = Engine.create ~seed:15 () in
  let topo = Topology.linear ~n:2 in
  let fabric = Fabric.create topo in
  let seeder = Seeder.create engine fabric in
  let source =
    {|
machine Counting {
  place any;
  poll ticks = Poll { .ival = 0.01, .what = port ANY };
  long polls = 0;
  state s { when (ticks as stats) do { polls = polls + 1; } }
}
|}
  in
  let task =
    match Seeder.deploy seeder (Seeder.simple_spec ~name:"count" ~source) with
    | Ok t -> t
    | Error m -> Alcotest.failf "deploy failed: %s" m
  in
  Engine.run ~until:1. engine;
  let seed = List.hd (Seeder.seeds seeder task) in
  let polls_before =
    match Seed_exec.var seed "polls" with
    | Some (Value.Num n) -> n
    | _ -> 0.
  in
  Alcotest.(check bool) "accumulated state" true (polls_before > 50.);
  (* migration through the seeder API *)
  Seeder.reoptimize seeder;
  Engine.run ~until:3. engine;
  match Seeder.seeds seeder task with
  | [ s ] -> (
      match Seed_exec.var s "polls" with
      | Some (Value.Num n) ->
          Alcotest.(check bool) "state preserved across reoptimize" true
            (n >= polls_before)
      | _ -> Alcotest.fail "polls unbound")
  | seeds -> Alcotest.failf "expected 1 seed, got %d" (List.length seeds)

let () =
  Alcotest.run "farm_runtime"
    [ ( "models",
        [ Alcotest.test_case "cpu accounting" `Quick test_cpu_model_accounting;
          Alcotest.test_case "ipc latency shape" `Quick test_ipc_latency_shape ] );
      ( "soil",
        [ Alcotest.test_case "poll delivery" `Quick test_soil_poll_delivery;
          Alcotest.test_case "aggregation saves ASIC polls" `Quick
            test_soil_aggregation_saves_asic_polls;
          Alcotest.test_case "aggregated rate is fastest" `Quick
            test_soil_aggregated_rate_is_fastest;
          Alcotest.test_case "PCIe saturation" `Quick test_soil_pcie_saturation;
          Alcotest.test_case "probe sampling" `Quick test_soil_probe_sampling;
          Alcotest.test_case "tcam mediation" `Quick test_soil_tcam_mediation ] );
      ( "seeder",
        [ Alcotest.test_case "deploy and detect" `Quick
            test_seeder_deploy_and_detect;
          Alcotest.test_case "harvester feedback" `Quick
            test_seeder_harvester_feedback;
          Alcotest.test_case "collector accounting" `Quick
            test_seeder_collector_accounting;
          Alcotest.test_case "undeploy releases" `Quick
            test_seeder_undeploy_releases;
          Alcotest.test_case "rejects bad programs" `Quick
            test_seeder_rejects_bad_programs ] );
      ( "migration",
        [ Alcotest.test_case "migration preserves state" `Quick
            test_seed_migration_preserves_state;
          Alcotest.test_case "realloc changes poll rate" `Quick
            test_seed_realloc_changes_poll_rate;
          Alcotest.test_case "reoptimize keeps state" `Quick
            test_reoptimize_migrates_on_arrival ] );
      ( "messaging",
        [ Alcotest.test_case "inter-seed broadcast and directed" `Quick
            test_inter_seed_messaging ] );
      ( "fault tolerance",
        [ Alcotest.test_case "switch failure recovery" `Quick
            test_switch_failure_recovery;
          Alcotest.test_case "pinned task dropped" `Quick
            test_switch_failure_drops_pinned_task ] ) ]

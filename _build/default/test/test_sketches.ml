(* Tests for the sketch substrate (count-min, HyperLogLog) and the
   sketch-based monitoring tasks built on it (§VIII future work). *)

module Count_min = Farm_sketches.Count_min
module Hyperloglog = Farm_sketches.Hyperloglog
module Rng = Farm_sim.Rng
module Engine = Farm_sim.Engine

(* ------------------------------------------------------------------ *)
(* Count-min                                                           *)
(* ------------------------------------------------------------------ *)

let test_cms_dimensions () =
  let t = Count_min.create ~epsilon:0.01 ~delta:0.01 () in
  Alcotest.(check bool) "width ~ e/eps" true (Count_min.width t >= 271);
  Alcotest.(check bool) "depth ~ ln(1/delta)" true (Count_min.depth t >= 4);
  Alcotest.(check int) "cells" (Count_min.width t * Count_min.depth t)
    (Count_min.cells t)

let test_cms_exact_when_sparse () =
  let t = Count_min.create ~epsilon:0.01 ~delta:0.01 () in
  Count_min.add t ~count:5. "a";
  Count_min.add t ~count:3. "a";
  Count_min.add t ~count:10. "b";
  Alcotest.(check (float 1e-9)) "a" 8. (Count_min.estimate t "a");
  Alcotest.(check (float 1e-9)) "b" 10. (Count_min.estimate t "b");
  Alcotest.(check (float 1e-9)) "absent" 0. (Count_min.estimate t "zzz");
  Alcotest.(check (float 1e-9)) "total" 18. (Count_min.total t)

let test_cms_heavy_hitters () =
  let t = Count_min.create ~epsilon:0.005 ~delta:0.01 () in
  let rng = Rng.create 3 in
  (* 500 mice of ~10, one elephant of 10000 *)
  for i = 1 to 500 do
    Count_min.add t ~count:(float_of_int (1 + Rng.int rng 20))
      (Printf.sprintf "mouse%d" i)
  done;
  Count_min.add t ~count:10_000. "elephant";
  let candidates =
    "elephant" :: List.init 500 (fun i -> Printf.sprintf "mouse%d" (i + 1))
  in
  let hh = Count_min.heavy_hitters t ~threshold:5_000. ~candidates in
  Alcotest.(check (list string)) "only the elephant" [ "elephant" ] hh

let prop_cms_never_undercounts =
  QCheck2.Test.make ~name:"count-min never undercounts" ~count:50
    QCheck2.Gen.(list_size (int_range 1 200) (int_range 0 30))
    (fun keys ->
      let t = Count_min.create ~epsilon:0.02 ~delta:0.05 () in
      let truth = Hashtbl.create 32 in
      List.iter
        (fun k ->
          let key = "k" ^ string_of_int k in
          Hashtbl.replace truth key
            (1. +. Option.value (Hashtbl.find_opt truth key) ~default:0.);
          Count_min.add t key)
        keys;
      Hashtbl.fold
        (fun key true_count ok ->
          ok && Count_min.estimate t key >= true_count -. 1e-9)
        truth true)

let prop_cms_error_bound =
  QCheck2.Test.make ~name:"count-min overcount within eps*total (whp)"
    ~count:20
    QCheck2.Gen.(int_range 1 10_000)
    (fun seed ->
      let eps = 0.01 in
      let t = Count_min.create ~seed ~epsilon:eps ~delta:0.01 () in
      let rng = Rng.create seed in
      for _ = 1 to 2000 do
        Count_min.add t ("key" ^ string_of_int (Rng.int rng 400))
      done;
      (* check a sample of keys; allow the (rare) delta failures across the
         sample by requiring 95% within bound *)
      let within = ref 0 and checked = 200 in
      for i = 0 to checked - 1 do
        let key = "key" ^ string_of_int i in
        if Count_min.estimate t key
           <= (2000. /. 400. *. 4.) +. (eps *. Count_min.total t)
        then incr within
      done;
      !within >= checked * 95 / 100)

(* ------------------------------------------------------------------ *)
(* HyperLogLog                                                         *)
(* ------------------------------------------------------------------ *)

let test_hll_small_exactish () =
  let t = Hyperloglog.create ~precision:12 () in
  for i = 1 to 100 do
    Hyperloglog.add t ("x" ^ string_of_int i);
    (* duplicates must not inflate the count *)
    Hyperloglog.add t ("x" ^ string_of_int i)
  done;
  let c = Hyperloglog.count t in
  Alcotest.(check bool)
    (Printf.sprintf "100 distinct within 10%% (got %.1f)" c)
    true
    (c > 90. && c < 110.)

let test_hll_large_within_error () =
  let t = Hyperloglog.create ~precision:12 () in
  let n = 50_000 in
  for i = 1 to n do
    Hyperloglog.add t ("key" ^ string_of_int i)
  done;
  let c = Hyperloglog.count t in
  let err = Float.abs (c -. float_of_int n) /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "relative error %.3f < 5%%" err)
    true (err < 0.05)

let test_hll_merge () =
  let a = Hyperloglog.create ~precision:10 () in
  let b = Hyperloglog.create ~precision:10 () in
  for i = 1 to 1000 do
    Hyperloglog.add a ("a" ^ string_of_int i);
    Hyperloglog.add b ("b" ^ string_of_int i)
  done;
  Hyperloglog.merge a b;
  let c = Hyperloglog.count a in
  Alcotest.(check bool)
    (Printf.sprintf "merge ~2000 (got %.1f)" c)
    true
    (c > 1800. && c < 2200.);
  (* mismatched precision rejected *)
  let d = Hyperloglog.create ~precision:8 () in
  Alcotest.check_raises "precision mismatch"
    (Invalid_argument "Hyperloglog.merge: precision mismatch") (fun () ->
      Hyperloglog.merge a d)

let prop_hll_monotone =
  QCheck2.Test.make ~name:"HLL count grows with distinct keys" ~count:30
    QCheck2.Gen.(int_range 2 2000)
    (fun n ->
      let t = Hyperloglog.create ~precision:11 () in
      for i = 1 to n / 2 do
        Hyperloglog.add t ("k" ^ string_of_int i)
      done;
      let half = Hyperloglog.count t in
      for i = (n / 2) + 1 to n do
        Hyperloglog.add t ("k" ^ string_of_int i)
      done;
      Hyperloglog.count t >= half)

(* ------------------------------------------------------------------ *)
(* Sketch-based tasks end to end                                       *)
(* ------------------------------------------------------------------ *)

let deploy_sketch_task name =
  let engine = Engine.create ~seed:9 () in
  let topo = Farm_net.Topology.spine_leaf ~spines:2 ~leaves:2 ~hosts_per_leaf:2 in
  let fabric = Farm_net.Fabric.create topo in
  let seeder = Farm_runtime.Seeder.create engine fabric in
  let entry = Farm_tasks.Catalog.find name in
  let task =
    match
      Farm_runtime.Seeder.deploy seeder
        (Farm_tasks.Task_common.to_task_spec entry)
    with
    | Ok t -> t
    | Error m -> Alcotest.failf "deploy %s failed: %s" name m
  in
  (engine, fabric, seeder, task)

let test_sketch_hh_detects () =
  let engine, fabric, _seeder, task = deploy_sketch_task "sketch-heavy-hitter" in
  let rng = Rng.split (Engine.rng engine) in
  Farm_net.Traffic.background engine fabric rng
    { Farm_net.Traffic.default_profile with concurrent_flows = 20;
      mean_rate = 5_000. };
  let _ =
    Farm_net.Traffic.heavy_hitter engine fabric rng ~at:1. ~rate:2e7 ()
  in
  Engine.run ~until:4. engine;
  let h = Farm_runtime.Seeder.harvester task in
  Alcotest.(check bool) "sketch HH reported" true
    (Farm_runtime.Harvester.received_count h >= 1)

let test_sketch_superspreader_detects () =
  let engine, fabric, _seeder, task =
    deploy_sketch_task "sketch-superspreader"
  in
  let rng = Rng.split (Engine.rng engine) in
  Farm_net.Traffic.superspreader engine fabric rng ~at:1. ~duration:4.
    ~fanout:60;
  Engine.run ~until:4. engine;
  let h = Farm_runtime.Seeder.harvester task in
  Alcotest.(check bool) "sketch spreader reported" true
    (Farm_runtime.Harvester.received_count h >= 1)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "farm_sketches"
    [ ( "count-min",
        [ Alcotest.test_case "dimensions" `Quick test_cms_dimensions;
          Alcotest.test_case "exact when sparse" `Quick
            test_cms_exact_when_sparse;
          Alcotest.test_case "heavy hitters" `Quick test_cms_heavy_hitters ]
        @ qsuite [ prop_cms_never_undercounts; prop_cms_error_bound ] );
      ( "hyperloglog",
        [ Alcotest.test_case "small cardinalities" `Quick
            test_hll_small_exactish;
          Alcotest.test_case "large within error" `Quick
            test_hll_large_within_error;
          Alcotest.test_case "merge" `Quick test_hll_merge ]
        @ qsuite [ prop_hll_monotone ] );
      ( "sketch tasks",
        [ Alcotest.test_case "sketch HH detects" `Quick test_sketch_hh_detects;
          Alcotest.test_case "sketch superspreader detects" `Quick
            test_sketch_superspreader_detects ] ) ]

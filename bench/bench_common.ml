(* Shared helpers for the experiment harness: world construction, the
   heavy-hitter scenario, and table/series printing. *)

open Farm
module Engine = Sim.Engine
module Rng = Sim.Rng

(* Run an independent parameter sweep across the domain pool, results in
   parameter order.  Scenario functions must build all mutable state
   (engine, fabric, rng) inside the call — see Sim.Sweep. *)
let psweep xs f = Array.to_list (Sim.Sweep.map (Array.of_list xs) f)

let section title =
  Printf.printf "\n================================================================\n";
  Printf.printf "%s\n" title;
  Printf.printf "================================================================\n%!"

let subsection title = Printf.printf "\n--- %s ---\n%!" title

(* print a table: header row + rows of strings *)
let table headers rows =
  let ncols = List.length headers in
  let widths = Array.make ncols 0 in
  List.iteri (fun i h -> widths.(i) <- String.length h) headers;
  List.iter
    (fun row ->
      List.iteri
        (fun i cell ->
          if i < ncols then widths.(i) <- max widths.(i) (String.length cell))
        row)
    rows;
  let print_row row =
    List.iteri
      (fun i cell ->
        if i < ncols then Printf.printf "| %-*s " widths.(i) cell)
      row;
    Printf.printf "|\n"
  in
  print_row headers;
  List.iteri
    (fun i _ ->
      Printf.printf "|%s" (String.make (widths.(i) + 2) '-'))
    headers;
  Printf.printf "|\n";
  List.iter print_row rows;
  Printf.printf "%!"

let fmt_time s =
  if s < 1e-3 then Printf.sprintf "%.0f us" (s *. 1e6)
  else if s < 1. then Printf.sprintf "%.1f ms" (s *. 1e3)
  else Printf.sprintf "%.2f s" s

let fmt_bytes_rate b =
  if b < 1e3 then Printf.sprintf "%.1f B/s" b
  else if b < 1e6 then Printf.sprintf "%.1f kB/s" (b /. 1e3)
  else Printf.sprintf "%.2f MB/s" (b /. 1e6)

let fmt_bits_rate b =
  if b < 1e3 then Printf.sprintf "%.0f b/s" b
  else if b < 1e6 then Printf.sprintf "%.1f kb/s" (b /. 1e3)
  else if b < 1e9 then Printf.sprintf "%.2f Mb/s" (b /. 1e6)
  else Printf.sprintf "%.2f Gb/s" (b /. 1e9)

let mean = function
  | [] -> nan
  | xs -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

(* The evaluation fabric: 20 switches as in §VI-A b (4 spines, 16 leaves). *)
let paper_topology () =
  Net.Topology.spine_leaf ~spines:4 ~leaves:16 ~hosts_per_leaf:2

(* Generous management-plane capacities for stress experiments where we
   deliberately overcommit the CPU (Fig. 6): placement must accept the
   seeds; the CPU cost model then reports the overload. *)
let stress_caps =
  { Net.Switch_model.accton_as5712 with vcpu = 1024.; ram_mb = 1e7 }

(* ------------------------------------------------------------------ *)
(* Heavy-hitter scenario                                               *)
(* ------------------------------------------------------------------ *)

let hh_threshold = 1e6  (* bytes/s *)
let hh_rate = 2e7

type hh_world = {
  engine : Engine.t;
  fabric : Net.Fabric.t;
  rng : Rng.t;
  onset : float;
}

(* background + one elephant starting at [onset] *)
let hh_scenario ?(seed = 1) ?(onset = 2.) ?(background_flows = 60) topo =
  let engine = Engine.create ~seed () in
  let fabric = Net.Fabric.create topo in
  let rng = Rng.split (Engine.rng engine) in
  Net.Traffic.background engine fabric rng
    { Net.Traffic.default_profile with
      concurrent_flows = background_flows;
      mean_rate = 20_000. };
  let _hh = Net.Traffic.heavy_hitter engine fabric rng ~at:onset ~rate:hh_rate () in
  { engine; fabric; rng; onset }

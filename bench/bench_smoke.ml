(* Smoke benchmark of the Almanac hot path: events/sec of the HH poll
   activation under the tree-walking interpreter vs the compiled
   (slot-indexed closure) engine, plus an MTTR micro-bench of the
   self-healing control plane (crash -> detection -> checkpoint-restore
   re-placement latency percentiles).  Emits BENCH_micro.json — to the
   path given as the first argument, or to the working directory.

   Run via [dune build @bench-smoke] or directly:
     dune exec bench/bench_smoke.exe -- BENCH_micro.json *)

open Farm

let bench_events ?(warmup = 5_000) ?(min_time = 0.5) fire value =
  for _ = 1 to warmup do
    fire value
  done;
  let batch = 1_000 in
  let t0 = Unix.gettimeofday () in
  let n = ref 0 in
  let elapsed = ref 0. in
  while !elapsed < min_time do
    for _ = 1 to batch do
      fire value
    done;
    n := !n + batch;
    elapsed := Unix.gettimeofday () -. t0
  done;
  float_of_int !n /. !elapsed

(* MTTR micro-bench: a healing-enabled world where the switch hosting a
   roaming seed is crashed (silently) every 300 ms and rebooted 150 ms
   later.  Every crash must be noticed by the failure detector and the
   seed re-placed from its last checkpoint, so the detection-latency and
   recovery-time histograms accumulate one sample per episode. *)
let mttr_bench ~crashes =
  let module Seeder = Runtime.Seeder in
  let module Seed_exec = Runtime.Seed_exec in
  let module Engine = Sim.Engine in
  let config = { Seeder.default_config with Seeder.auto_heal = true } in
  let w =
    World.create ~seed:42 ~spines:2 ~leaves:4 ~hosts_per_leaf:1
      ~seeder_config:config ()
  in
  let roamer =
    {|
machine Roam {
  place any;
  poll ticks = Poll { .ival = 0.01, .what = port ANY };
  long count = 0;
  state s { when (ticks as stats) do { count = count + 1; } }
}
|}
  in
  let pinned =
    {|
machine Pinned {
  place all;
  time tick = Time { .ival = 0.02 };
  long beats = 0;
  state s { when (tick as t) do { beats = beats + 1; } }
}
|}
  in
  let deploy name source =
    match World.deploy_source w ~name source with
    | Ok t -> t
    | Error m -> failwith (Printf.sprintf "mttr bench deploy %s: %s" name m)
  in
  let roam_task = deploy "roam" roamer in
  let _pinned_task = deploy "pinned" pinned in
  let seeder = w.World.seeder in
  for k = 0 to crashes - 1 do
    let t0 = 0.5 +. (0.3 *. float_of_int k) in
    Engine.schedule w.World.engine ~delay:t0 (fun _ ->
        match Seeder.seeds seeder roam_task with
        | exec :: _ ->
            let node = Seed_exec.node exec in
            Seeder.crash_switch seeder node;
            Engine.schedule w.World.engine ~delay:0.15 (fun _ ->
                Seeder.revive_switch seeder node)
        | [] -> ())
  done;
  World.run ~until:(0.5 +. (0.3 *. float_of_int crashes) +. 0.5) w;
  seeder

(* Wall-clock on a shared box is noisy; overhead ratios are computed
   from the best of [reps] runs of each configuration (the minimum wall
   time is the least-perturbed sample; the simulated work is identical
   across repeats, as the digest checks assert). *)
let best_of reps f =
  let best = ref (f ()) in
  for _ = 2 to reps do
    let (dt, _) = !best and ((dt', _) as r) = f () in
    if dt' < dt then best := r
  done;
  !best

(* Simulation-core smoke: a couple of independent heavy-hitter worlds
   pushed through the domain-pool sweep runner.  Checks the parallel run
   digests byte-identical to the sequential one and reports simulated
   events/sec of the timer-wheel engine under a full workload, plus the
   per-event allocation profile (measured domain-locally inside each
   scenario; bytes allocated are deterministic, so they double as a
   regression signal that does not depend on machine load). *)
let sim_scenario i =
  let a0 = Gc.allocated_bytes () in
  let seed = Sim.Rng.derive_seed 0x5eed ~stream:i in
  let w = World.create ~seed ~spines:2 ~leaves:4 ~hosts_per_leaf:1 () in
  (match World.deploy_catalog_task w "heavy-hitter" with
  | Ok _ -> ()
  | Error m -> failwith (Printf.sprintf "sim smoke deploy: %s" m));
  World.background_traffic ~flows:(24 + (8 * i)) w;
  World.run ~until:1.0 w;
  let seeder = w.World.seeder in
  ( Sim.Engine.dispatched w.World.engine,
    Printf.sprintf "i=%d dispatched=%d now=%h collector=%h/%d" i
      (Sim.Engine.dispatched w.World.engine)
      (World.now w)
      (Runtime.Seeder.collector_bytes seeder)
      (Runtime.Seeder.collector_messages seeder),
    Gc.allocated_bytes () -. a0 )

let sim_smoke () =
  let n = 2 in
  let t0 = Unix.gettimeofday () in
  let sequential = Sim.Sweep.run ~domains:1 n sim_scenario in
  let dt = Unix.gettimeofday () -. t0 in
  let parallel = Sim.Sweep.run ~domains:2 ~clamp:false n sim_scenario in
  let digest (_, d, _) = d in
  let deterministic =
    Array.map digest sequential = Array.map digest parallel
  in
  let events = Array.fold_left (fun acc (e, _, _) -> acc + e) 0 sequential in
  let alloc = Array.fold_left (fun acc (_, _, a) -> acc +. a) 0. sequential in
  (float_of_int events /. dt, deterministic, alloc /. float_of_int events)

(* Observability smoke: the same heavy-hitter world run with tracing
   disabled (the default — a single [None] branch per emission site) and
   with a sink attached.  The simulation digest must be identical either
   way (tracing is passive), and the wall-clock ratio is recorded so a
   regression that makes the disabled path expensive shows up in the
   report. *)
let trace_smoke () =
  let run ~traced () =
    let w = World.create ~seed:4242 ~spines:2 ~leaves:4 ~hosts_per_leaf:1 () in
    let tr = Sim.Trace.create () in
    if traced then Sim.Engine.set_tracer w.World.engine (Some tr);
    (match World.deploy_catalog_task w "heavy-hitter" with
    | Ok _ -> ()
    | Error m -> failwith (Printf.sprintf "trace smoke deploy: %s" m));
    World.background_traffic ~flows:32 w;
    let a0 = Gc.allocated_bytes () in
    let t0 = Unix.gettimeofday () in
    World.run ~until:1.0 w;
    let dt = Unix.gettimeofday () -. t0 in
    let alloc = Gc.allocated_bytes () -. a0 in
    let seeder = w.World.seeder in
    let digest =
      Printf.sprintf "dispatched=%d now=%h collector=%h/%d"
        (Sim.Engine.dispatched w.World.engine)
        (World.now w)
        (Runtime.Seeder.collector_bytes seeder)
        (Runtime.Seeder.collector_messages seeder)
    in
    let events = Sim.Engine.dispatched w.World.engine in
    ( dt,
      (digest, float_of_int events /. dt, Sim.Trace.count tr,
       alloc /. float_of_int events) )
  in
  let _, (d_off, eps_off, _, alloc_off) = best_of 3 (run ~traced:false) in
  let _, (d_on, eps_on, n_events, alloc_on) = best_of 3 (run ~traced:true) in
  (String.equal d_off d_on, eps_off, eps_on, n_events, alloc_off, alloc_on)

(* Overload-protection smoke: the same heavy-hitter world with the
   protection stack disabled (the default) and fully armed but unstressed.
   Disabled must reproduce the pre-overload digest byte-for-byte (the
   config is the only gate — no hidden events, draws or registrations);
   armed-but-idle must shed nothing and its wall-clock overhead is gated
   so the shed path never creeps into the hot path. *)
let seed_digest = "dispatched=17984 now=0x1p+0 collector=0x0p+0/0"

let overload_smoke () =
  let module Seeder = Runtime.Seeder in
  let module Soil = Runtime.Soil in
  let module Harvester = Runtime.Harvester in
  let run ~overload =
    let seeder_config =
      if overload then Seeder.overload_defaults else Seeder.default_config
    in
    let w =
      World.create ~seed:4242 ~spines:2 ~leaves:4 ~hosts_per_leaf:1
        ~seeder_config ()
    in
    let task =
      match World.deploy_catalog_task w "heavy-hitter" with
      | Ok t -> t
      | Error m -> failwith (Printf.sprintf "overload smoke deploy: %s" m)
    in
    World.background_traffic ~flows:32 w;
    let t0 = Unix.gettimeofday () in
    World.run ~until:1.0 w;
    let dt = Unix.gettimeofday () -. t0 in
    let seeder = w.World.seeder in
    let digest =
      Printf.sprintf "dispatched=%d now=%h collector=%h/%d"
        (Sim.Engine.dispatched w.World.engine)
        (World.now w)
        (Runtime.Seeder.collector_bytes seeder)
        (Runtime.Seeder.collector_messages seeder)
    in
    let run_sheds =
      List.fold_left
        (fun acc soil ->
          match Soil.overload_stats soil with
          | Some st -> acc + st.Soil.o_shed
          | None -> acc)
        (Harvester.shed_count (Seeder.harvester task))
        (Seeder.soils seeder)
    in
    let sheds = run_sheds in
    ( dt,
      (digest, float_of_int (Sim.Engine.dispatched w.World.engine) /. dt,
       sheds) )
  in
  let _, (d_off, eps_off, _) = best_of 3 (fun () -> run ~overload:false) in
  let _, (_, eps_on, sheds_on) = best_of 3 (fun () -> run ~overload:true) in
  (String.equal d_off seed_digest, eps_off, eps_on, sheds_on)

let () =
  let out = if Array.length Sys.argv > 1 then Sys.argv.(1) else "BENCH_micro.json" in
  let source = (Tasks.Catalog.find "heavy-hitter").source in
  let program = Almanac.Typecheck.check (Almanac.Parser.program source) in
  let stats = Almanac.Value.Stats (Array.make 16 100.) in

  let interp =
    Almanac.Interp.create ~program ~machine:"HH" Almanac.Host.null_host
  in
  Almanac.Interp.start interp;
  let interp_fire = Almanac.Interp.prepare_trigger interp "pollStats" in
  let interp_eps = bench_events interp_fire stats in

  let compiled =
    Almanac.Exec.create ~program ~machine:"HH" Almanac.Host.null_host
  in
  Almanac.Exec.start compiled;
  let compiled_fire = Almanac.Exec.prepare_trigger compiled "pollStats" in
  let compiled_eps = bench_events compiled_fire stats in

  let speedup = compiled_eps /. interp_eps in
  Printf.printf "almanac HH poll activation:\n";
  Printf.printf "  interp   %12.0f events/sec\n" interp_eps;
  Printf.printf "  compiled %12.0f events/sec\n" compiled_eps;
  Printf.printf "  speedup  %12.2fx\n%!" speedup;

  let sim_eps, sweep_deterministic, sim_alloc_per_event = sim_smoke () in
  Printf.printf "simulation core (heavy-hitter world, timer-wheel engine):\n";
  Printf.printf "  simulated %11.0f events/sec (%.0f B allocated/event)\n"
    sim_eps sim_alloc_per_event;
  Printf.printf "  sweep     %11s\n%!"
    (if sweep_deterministic then "deterministic" else "NONDETERMINISTIC");

  let trace_inert, eps_off, eps_on, trace_events, alloc_off, alloc_on =
    trace_smoke ()
  in
  let trace_overhead_pct = 100. *. ((eps_off /. eps_on) -. 1.) in
  Printf.printf "observability (heavy-hitter world, 1 s simulated, best of 3):\n";
  Printf.printf "  untraced  %11.0f events/sec (%.0f B allocated/event)\n"
    eps_off alloc_off;
  Printf.printf
    "  traced    %11.0f events/sec (%.0f B/event, %d trace events, %+.1f%%)\n"
    eps_on alloc_on trace_events trace_overhead_pct;
  Printf.printf "  digests   %11s\n%!"
    (if trace_inert then "identical" else "DIVERGED");

  let ov_parity, ov_eps_off, ov_eps_on, ov_sheds = overload_smoke () in
  let ov_overhead_pct = 100. *. ((ov_eps_off /. ov_eps_on) -. 1.) in
  Printf.printf "overload protection (heavy-hitter world, 1 s simulated):\n";
  Printf.printf "  disabled  %11.0f events/sec (digest %s)\n" ov_eps_off
    (if ov_parity then "= seed baseline" else "DIVERGED FROM SEED");
  Printf.printf "  armed     %11.0f events/sec (%d shed, %+.1f%%)\n%!"
    ov_eps_on ov_sheds ov_overhead_pct;

  let crashes = 30 in
  let seeder = mttr_bench ~crashes in
  let module Seeder = Runtime.Seeder in
  let module Histogram = Sim.Metrics.Histogram in
  let dl = Seeder.detection_latency seeder in
  let rt = Seeder.recovery_time seeder in
  let ms h q = 1000. *. Histogram.percentile h q in
  let stats h =
    (ms h 50., ms h 95., ms h 99., 1000. *. Histogram.max h)
  in
  let d50, d95, d99, dmax = stats dl in
  let r50, r95, r99, rmax = stats rt in
  Printf.printf "self-healing MTTR (%d crash/reboot episodes):\n" crashes;
  Printf.printf "  detection  p50 %6.2f ms  p95 %6.2f ms  p99 %6.2f ms  max %6.2f ms (%d samples)\n"
    d50 d95 d99 dmax (Histogram.count dl);
  Printf.printf "  recovery   p50 %6.2f ms  p95 %6.2f ms  p99 %6.2f ms  max %6.2f ms (%d samples)\n"
    r50 r95 r99 rmax (Histogram.count rt);
  Printf.printf "  checkpoints %d shipped, %.0f ctrl bytes\n%!"
    (Seeder.checkpoints_shipped seeder)
    (Seeder.checkpoint_bytes seeder);

  let oc =
    try open_out out
    with Sys_error m ->
      Printf.eprintf "bench_smoke: cannot write %s (%s)\n%!" out m;
      exit 2
  in
  Printf.fprintf oc
    "{\n\
    \  \"benchmark\": \"almanac_hh_poll_activation\",\n\
    \  \"interp_events_per_sec\": %.1f,\n\
    \  \"compiled_events_per_sec\": %.1f,\n\
    \  \"speedup\": %.2f,\n\
    \  \"sim_events_per_sec\": %.1f,\n\
    \  \"sim_alloc_bytes_per_event\": %.1f,\n\
    \  \"sweep_deterministic\": %b,\n\
    \  \"tracing\": {\n\
    \    \"digest_parity\": %b,\n\
    \    \"untraced_events_per_sec\": %.1f,\n\
    \    \"traced_events_per_sec\": %.1f,\n\
    \    \"untraced_alloc_bytes_per_event\": %.1f,\n\
    \    \"traced_alloc_bytes_per_event\": %.1f,\n\
    \    \"trace_events\": %d,\n\
    \    \"overhead_pct\": %.1f\n\
    \  },\n\
    \  \"overload\": {\n\
    \    \"disabled_digest_parity\": %b,\n\
    \    \"disabled_events_per_sec\": %.1f,\n\
    \    \"armed_events_per_sec\": %.1f,\n\
    \    \"armed_idle_sheds\": %d,\n\
    \    \"overhead_pct\": %.1f\n\
    \  },\n\
    \  \"self_healing_mttr\": {\n\
    \    \"crash_episodes\": %d,\n\
    \    \"detection_samples\": %d,\n\
    \    \"detection_ms\": { \"p50\": %.3f, \"p95\": %.3f, \"p99\": %.3f, \"max\": %.3f },\n\
    \    \"recovery_samples\": %d,\n\
    \    \"recovery_ms\": { \"p50\": %.3f, \"p95\": %.3f, \"p99\": %.3f, \"max\": %.3f },\n\
    \    \"checkpoints_shipped\": %d,\n\
    \    \"checkpoint_ctrl_bytes\": %.0f\n\
    \  }\n\
     }\n"
    interp_eps compiled_eps speedup sim_eps sim_alloc_per_event
    sweep_deterministic trace_inert
    eps_off eps_on alloc_off alloc_on trace_events trace_overhead_pct
    ov_parity ov_eps_off
    ov_eps_on ov_sheds ov_overhead_pct crashes
    (Histogram.count dl) d50 d95 d99
    dmax (Histogram.count rt) r50 r95 r99 rmax
    (Seeder.checkpoints_shipped seeder)
    (Seeder.checkpoint_bytes seeder);
  close_out oc;
  Printf.printf "wrote %s\n%!" out;
  if not sweep_deterministic then begin
    Printf.eprintf
      "FAIL: parallel sweep digests differ from the sequential run\n%!";
    exit 1
  end;
  if not trace_inert then begin
    Printf.eprintf
      "FAIL: attaching a trace sink changed the simulation digest\n%!";
    exit 1
  end;
  if not ov_parity then begin
    Printf.eprintf
      "FAIL: disabled overload protection changed the seed digest\n%!";
    exit 1
  end;
  if ov_sheds <> 0 then begin
    Printf.eprintf
      "FAIL: armed overload protection shed %d reports in an unstressed world\n%!"
      ov_sheds;
    exit 1
  end;
  if trace_overhead_pct > 40. then begin
    Printf.eprintf
      "FAIL: tracing costs %.1f%% (gate: 40%%)\n%!" trace_overhead_pct;
    exit 1
  end;
  if ov_overhead_pct > 50. then begin
    Printf.eprintf
      "FAIL: armed overload protection costs %.1f%% (gate: 50%%)\n%!"
      ov_overhead_pct;
    exit 1
  end;
  if speedup < 3.0 then begin
    Printf.eprintf "FAIL: compiled engine speedup %.2fx is below the 3x target\n%!"
      speedup;
    exit 1
  end;
  (* the detector is configured for 35 ms timeouts at a 10 ms heartbeat:
     every episode must be detected, and recovery must stay within the
     timeout plus two heartbeats of slack *)
  let bound_ms =
    1000.
    *. (Seeder.default_config.Seeder.detection_timeout
       +. (2. *. Seeder.default_config.Seeder.heartbeat_interval))
  in
  if Histogram.count dl < crashes then begin
    Printf.eprintf "FAIL: only %d of %d crashes were detected\n%!"
      (Histogram.count dl) crashes;
    exit 1
  end;
  if dmax > bound_ms || rmax > bound_ms then begin
    Printf.eprintf
      "FAIL: detection max %.2f ms / recovery max %.2f ms exceed the %.0f ms bound\n%!"
      dmax rmax bound_ms;
    exit 1
  end

(* Smoke benchmark of the Almanac hot path: events/sec of the HH poll
   activation under the tree-walking interpreter vs the compiled
   (slot-indexed closure) engine.  Emits BENCH_micro.json — to the path
   given as the first argument, or to the working directory.

   Run via [dune build @bench-smoke] or directly:
     dune exec bench/bench_smoke.exe -- BENCH_micro.json *)

open Farm

let bench_events ?(warmup = 5_000) ?(min_time = 0.5) fire value =
  for _ = 1 to warmup do
    fire value
  done;
  let batch = 1_000 in
  let t0 = Unix.gettimeofday () in
  let n = ref 0 in
  let elapsed = ref 0. in
  while !elapsed < min_time do
    for _ = 1 to batch do
      fire value
    done;
    n := !n + batch;
    elapsed := Unix.gettimeofday () -. t0
  done;
  float_of_int !n /. !elapsed

let () =
  let out = if Array.length Sys.argv > 1 then Sys.argv.(1) else "BENCH_micro.json" in
  let source = (Tasks.Catalog.find "heavy-hitter").source in
  let program = Almanac.Typecheck.check (Almanac.Parser.program source) in
  let stats = Almanac.Value.Stats (Array.make 16 100.) in

  let interp =
    Almanac.Interp.create ~program ~machine:"HH" Almanac.Host.null_host
  in
  Almanac.Interp.start interp;
  let interp_fire = Almanac.Interp.prepare_trigger interp "pollStats" in
  let interp_eps = bench_events interp_fire stats in

  let compiled =
    Almanac.Exec.create ~program ~machine:"HH" Almanac.Host.null_host
  in
  Almanac.Exec.start compiled;
  let compiled_fire = Almanac.Exec.prepare_trigger compiled "pollStats" in
  let compiled_eps = bench_events compiled_fire stats in

  let speedup = compiled_eps /. interp_eps in
  Printf.printf "almanac HH poll activation:\n";
  Printf.printf "  interp   %12.0f events/sec\n" interp_eps;
  Printf.printf "  compiled %12.0f events/sec\n" compiled_eps;
  Printf.printf "  speedup  %12.2fx\n%!" speedup;

  let oc =
    try open_out out
    with Sys_error m ->
      Printf.eprintf "bench_smoke: cannot write %s (%s)\n%!" out m;
      exit 2
  in
  Printf.fprintf oc
    "{\n\
    \  \"benchmark\": \"almanac_hh_poll_activation\",\n\
    \  \"interp_events_per_sec\": %.1f,\n\
    \  \"compiled_events_per_sec\": %.1f,\n\
    \  \"speedup\": %.2f\n\
     }\n"
    interp_eps compiled_eps speedup;
  close_out oc;
  Printf.printf "wrote %s\n%!" out;
  if speedup < 3.0 then begin
    Printf.eprintf "FAIL: compiled engine speedup %.2fx is below the 3x target\n%!"
      speedup;
    exit 1
  end

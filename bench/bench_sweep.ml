(* Fabric-scale simulation throughput benchmark.  Three measurements:

   1. scheduler microbench — a pure timer workload (2000 periodic timers,
      mixed sub-ms..100 ms periods) drained by the timer-wheel engine and
      by the seed binary-heap engine (kept verbatim below as the
      reference), reported as events/sec each plus the speedup;
   2. single-core sweep — a batch of independent heavy-hitter worlds run
      sequentially, reported as simulated events/sec plus the per-event
      allocation profile (bytes and minor collections, measured
      domain-locally inside each scenario);
   3. domain scaling — the same batch fanned across the requested ladder
      via Sweep.run.  Each row reports the requested and the *effective*
      domain count (Sweep clamps to the hardware by default — OCaml 5
      stop-the-world minor GCs make oversubscription a slowdown, not a
      wash), wall time, scaling and parallel efficiency.  A forced
      [~clamp:false] multi-domain run cross-checks that per-scenario
      digests stay byte-identical to the sequential run; any mismatch
      exits non-zero.

   Emits BENCH_sweep.json (override with --out FILE).  --domains D1,D2,..
   overrides the scaling ladder; --gate BASELINE.json fails the run when
   either headline events/sec falls below 90% of the baseline's
   wheel_events_per_sec / single_core_events_per_sec, or when
   alloc_bytes_per_event regresses above 115% of the baseline's;
   --gate-scaling additionally fails when the 2- or 4-domain sweep
   delivers less than 90% of single-domain throughput (the anti-scaling
   guard: parallelism must never cost throughput).

   Run via [dune build @bench-sweep] or directly:
     dune exec bench/bench_sweep.exe -- --out BENCH_sweep.json *)

open Farm
module Engine = Sim.Engine
module Rng = Sim.Rng
module Sweep = Sim.Sweep
module Heap = Sim.Heap

(* ------------------------------------------------------------------ *)
(* Reference scheduler: the seed binary-heap engine, verbatim           *)
(* ------------------------------------------------------------------ *)

module Heap_engine = struct
  type t = {
    mutable clock : float;
    queue : (t -> unit) Heap.t;
    mutable dispatched : int;
  }

  type timer = {
    mutable period : float;
    mutable cancelled : bool;
    callback : t -> unit;
  }

  let create () = { clock = 0.; queue = Heap.create (); dispatched = 0 }
  let dispatched t = t.dispatched
  let schedule t ~delay f = Heap.push t.queue ~time:(t.clock +. delay) f

  let rec fire timer engine =
    if not timer.cancelled then begin
      timer.callback engine;
      if not timer.cancelled then
        schedule engine ~delay:timer.period (fire timer)
    end

  let every t ~period f =
    let timer = { period; cancelled = false; callback = f } in
    schedule t ~delay:period (fire timer);
    timer

  let run ~until t =
    let continue = ref true in
    while !continue do
      if Heap.is_empty t.queue then continue := false
      else
        let time = Heap.min_time_exn t.queue in
        if time > until then begin
          t.clock <- until;
          continue := false
        end
        else begin
          let f = Heap.pop_min_exn t.queue in
          t.clock <- time;
          t.dispatched <- t.dispatched + 1;
          f t
        end
    done;
    if t.clock < until then t.clock <- until
end

(* ------------------------------------------------------------------ *)
(* 1. Scheduler microbench                                             *)
(* ------------------------------------------------------------------ *)

let timer_count = 2_000
let timer_horizon = 10.
let timer_period i = 0.001 +. (0.0001 *. float_of_int (i mod 991))

let wheel_timer_bench () =
  let e = Engine.create () in
  for i = 0 to timer_count - 1 do
    ignore (Engine.every e ~period:(timer_period i) (fun _ -> ()))
  done;
  let t0 = Unix.gettimeofday () in
  Engine.run ~until:timer_horizon e;
  let dt = Unix.gettimeofday () -. t0 in
  (Engine.dispatched e, float_of_int (Engine.dispatched e) /. dt)

let heap_timer_bench () =
  let e = Heap_engine.create () in
  for i = 0 to timer_count - 1 do
    ignore (Heap_engine.every e ~period:(timer_period i) (fun _ -> ()))
  done;
  let t0 = Unix.gettimeofday () in
  Heap_engine.run ~until:timer_horizon e;
  let dt = Unix.gettimeofday () -. t0 in
  (Heap_engine.dispatched e, float_of_int (Heap_engine.dispatched e) /. dt)

(* ------------------------------------------------------------------ *)
(* 2/3. Heavy-hitter world sweep                                       *)
(* ------------------------------------------------------------------ *)

let sweep_scenarios = 8
let sweep_horizon = 1.5

type scenario_result = {
  r_events : int;
  r_digest : string;
  (* allocation profile, measured domain-locally inside the scenario
     ([Gc.allocated_bytes] and minor-collection counts are per-domain in
     OCaml 5, and a worker runs one scenario at a time, so the deltas
     are exactly this scenario's) *)
  r_alloc_bytes : float;
  r_minors : int;
}

(* Self-contained scenario per the Sweep contract: every piece of mutable
   state is created inside the call from an index-derived seed.  Returns
   the event count, a digest of everything downstream readers see, and
   the scenario's own allocation profile (kept out of the digest: bytes
   allocated are deterministic, minor-collection counts depend on the
   per-domain heap tuning). *)
let scenario i =
  let a0 = Gc.allocated_bytes () in
  let m0 = (Gc.quick_stat ()).Gc.minor_collections in
  let seed = Rng.derive_seed 0xfab ~stream:i in
  let w = World.create ~seed ~spines:2 ~leaves:8 ~hosts_per_leaf:2 () in
  (match World.deploy_catalog_task w "heavy-hitter" with
  | Ok _ -> ()
  | Error m -> failwith (Printf.sprintf "scenario %d: deploy: %s" i m));
  World.background_traffic ~flows:(32 + (8 * i)) w;
  World.run ~until:sweep_horizon w;
  let seeder = w.World.seeder in
  let events = Engine.dispatched w.World.engine in
  let digest =
    Printf.sprintf "i=%d seed=%d dispatched=%d now=%h collector=%h/%d utility=%h"
      i seed events (World.now w)
      (Runtime.Seeder.collector_bytes seeder)
      (Runtime.Seeder.collector_messages seeder)
      (Runtime.Seeder.current_utility seeder)
  in
  { r_events = events; r_digest = digest;
    r_alloc_bytes = Gc.allocated_bytes () -. a0;
    r_minors = (Gc.quick_stat ()).Gc.minor_collections - m0 }

let run_sweep ?clamp ~domains () =
  let t0 = Unix.gettimeofday () in
  let results = Sweep.run ~domains ?clamp sweep_scenarios scenario in
  let dt = Unix.gettimeofday () -. t0 in
  let events = Array.fold_left (fun acc r -> acc + r.r_events) 0 results in
  (dt, events, results)

(* ------------------------------------------------------------------ *)
(* Baseline gate: minimal numeric-field extraction                     *)
(* ------------------------------------------------------------------ *)

let read_file file =
  let ic = open_in file in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let json_number s field =
  let key = Printf.sprintf "\"%s\"" field in
  let klen = String.length key and n = String.length s in
  let rec find i =
    if i + klen > n then None
    else if String.sub s i klen = key then Some (i + klen)
    else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some i ->
      let i = ref i in
      while !i < n && (s.[!i] = ':' || s.[!i] = ' ') do incr i done;
      let j = ref !i in
      while
        !j < n
        && (match s.[!j] with '0' .. '9' | '.' | '-' | 'e' | '+' -> true | _ -> false)
      do
        incr j
      done;
      float_of_string_opt (String.sub s !i (!j - !i))

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let () =
  let out = ref "BENCH_sweep.json" in
  let ladder = ref [ 1; 2; 4; 8 ] in
  let gate = ref None in
  let gate_scaling = ref false in
  let rec parse = function
    | "--out" :: f :: rest ->
        out := f;
        parse rest
    | "--domains" :: ds :: rest ->
        ladder := List.map int_of_string (String.split_on_char ',' ds);
        parse rest
    | "--gate" :: f :: rest ->
        gate := Some f;
        parse rest
    | "--gate-scaling" :: rest ->
        gate_scaling := true;
        parse rest
    | [] -> ()
    | a :: _ -> failwith (Printf.sprintf "bench_sweep: unknown argument %s" a)
  in
  parse (List.tl (Array.to_list Sys.argv));

  let cores = Domain.recommended_domain_count () in
  Printf.printf "simulation throughput bench (%d core%s available)\n%!" cores
    (if cores = 1 then "" else "s");

  let wheel_events, wheel_eps = wheel_timer_bench () in
  let heap_events, heap_eps = heap_timer_bench () in
  assert (wheel_events = heap_events);
  let sched_speedup = wheel_eps /. heap_eps in
  Printf.printf "scheduler (%d timers, %.0f s horizon, %d events):\n"
    timer_count timer_horizon wheel_events;
  Printf.printf "  heap engine  %12.0f events/sec\n" heap_eps;
  Printf.printf "  timer wheel  %12.0f events/sec\n" wheel_eps;
  Printf.printf "  speedup      %12.2fx\n%!" sched_speedup;

  let base_dt, base_events, base_results = run_sweep ~domains:1 () in
  let base_digests = Array.map (fun r -> r.r_digest) base_results in
  let single_eps = float_of_int base_events /. base_dt in
  let alloc_bytes =
    Array.fold_left (fun acc r -> acc +. r.r_alloc_bytes) 0. base_results
  in
  let minors =
    Array.fold_left (fun acc r -> acc + r.r_minors) 0 base_results
  in
  let alloc_per_event = alloc_bytes /. float_of_int base_events in
  Printf.printf
    "sweep (%d heavy-hitter worlds, %.1f s horizon, %d events):\n"
    sweep_scenarios sweep_horizon base_events;
  Printf.printf "  1 domain   %8.2f s  %12.0f events/sec\n" base_dt single_eps;
  Printf.printf "  allocation %8.1f B/event  (%d minor collections)\n%!"
    alloc_per_event minors;

  let deterministic = ref true in
  let check_digests ~label digests =
    if digests <> base_digests then begin
      deterministic := false;
      Printf.eprintf
        "FAIL: %s sweep digests differ from the sequential run\n%!" label
    end
  in
  let rows =
    List.map
      (fun d ->
        let eff = Sweep.effective_domains ~domains:d sweep_scenarios in
        if d = 1 then (1, eff, base_dt, single_eps, 1.0)
        else begin
          let dt, events, results = run_sweep ~domains:d () in
          check_digests ~label:(Printf.sprintf "%d-domain" d)
            (Array.map (fun r -> r.r_digest) results);
          let eps = float_of_int events /. dt in
          let scaling = base_dt /. dt in
          Printf.printf
            "  %d domains (%d effective)  %8.2f s  %12.0f events/sec  (%.2fx, %.0f%% efficiency)\n%!"
            d eff dt eps scaling
            (100. *. scaling /. float_of_int eff);
          (d, eff, dt, eps, scaling)
        end)
      !ladder
  in

  (* Forced multi-domain determinism cross-check: spawn real extra
     domains even past the hardware clamp — the digests must still be
     byte-identical to the sequential run. *)
  let forced_domains = 4 in
  let _, _, forced_results =
    run_sweep ~domains:forced_domains ~clamp:false ()
  in
  check_digests
    ~label:(Printf.sprintf "forced %d-domain (clamp off)" forced_domains)
    (Array.map (fun r -> r.r_digest) forced_results);
  Printf.printf "  digests    %s (sequential vs ladder vs forced %d-domain)\n%!"
    (if !deterministic then "byte-identical" else "DIVERGED")
    forced_domains;

  let oc =
    try open_out !out
    with Sys_error m ->
      Printf.eprintf "bench_sweep: cannot write %s (%s)\n%!" !out m;
      exit 2
  in
  Printf.fprintf oc
    "{\n\
    \  \"benchmark\": \"sim_sweep_throughput\",\n\
    \  \"cores\": %d,\n\
    \  \"scheduler\": {\n\
    \    \"timers\": %d,\n\
    \    \"events\": %d,\n\
    \    \"heap_events_per_sec\": %.1f,\n\
    \    \"wheel_events_per_sec\": %.1f,\n\
    \    \"speedup\": %.2f\n\
    \  },\n\
    \  \"sweep\": {\n\
    \    \"scenarios\": %d,\n\
    \    \"events\": %d,\n\
    \    \"single_core_events_per_sec\": %.1f,\n\
    \    \"alloc_bytes_per_event\": %.1f,\n\
    \    \"minor_collections\": %d,\n\
    \    \"deterministic\": %b,\n\
    \    \"forced_domains\": %d,\n\
    \    \"domains\": [\n%s\n\
    \    ]\n\
    \  }\n\
     }\n"
    cores timer_count wheel_events heap_eps wheel_eps sched_speedup
    sweep_scenarios base_events single_eps alloc_per_event minors
    !deterministic forced_domains
    (String.concat ",\n"
       (List.map
          (fun (d, eff, dt, eps, scaling) ->
            Printf.sprintf
              "      { \"domains\": %d, \"effective\": %d, \"seconds\": %.3f, \"events_per_sec\": %.1f, \"scaling\": %.2f, \"efficiency\": %.3f }"
              d eff dt eps scaling
              (scaling /. float_of_int eff))
          rows));
  close_out oc;
  Printf.printf "wrote %s\n%!" !out;

  if not !deterministic then exit 1;

  let failed = ref false in
  if !gate_scaling then begin
    (* anti-scaling guard: asking for more domains must never cost
       throughput (>= 90% of single-domain, tolerating wall-clock noise).
       With the hardware clamp this holds even on a single-core host —
       which is exactly the point: before the clamp, 4 "parallel" domains
       delivered 0.30x. *)
    List.iter
      (fun (d, _eff, _dt, eps, _scaling) ->
        if d = 2 || d = 4 then
          if eps < 0.9 *. single_eps then begin
            Printf.eprintf
              "FAIL: %d-domain sweep %.0f events/sec is below 90%% of the \
               1-domain %.0f\n%!"
              d eps single_eps;
            failed := true
          end
          else
            Printf.printf
              "gate ok: %d-domain sweep %.0f events/sec >= 90%% of 1-domain \
               %.0f\n%!"
              d eps single_eps)
      rows
  end;

  (match !gate with
  | None -> ()
  | Some file ->
      let s =
        try read_file file
        with Sys_error m ->
          Printf.eprintf "bench_sweep: cannot read baseline %s (%s)\n%!" file m;
          exit 2
      in
      let check name current =
        match json_number s name with
        | None ->
            Printf.eprintf "bench_sweep: baseline %s lacks %s, skipping\n%!"
              file name
        | Some baseline ->
            let floor = 0.9 *. baseline in
            if current < floor then begin
              Printf.eprintf
                "FAIL: %s %.0f is below 90%% of baseline %.0f\n%!" name
                current baseline;
              failed := true
            end
            else
              Printf.printf "gate ok: %s %.0f >= 90%% of baseline %.0f\n%!"
                name current baseline
      in
      check "wheel_events_per_sec" wheel_eps;
      check "single_core_events_per_sec" single_eps;
      (* allocation is gated in the other direction: a hot-path change
         that starts allocating shows up here before it shows up as
         noise-prone wall-clock *)
      match json_number s "alloc_bytes_per_event" with
      | None ->
          Printf.eprintf
            "bench_sweep: baseline %s lacks alloc_bytes_per_event, skipping\n%!"
            file
      | Some baseline ->
          let ceiling = 1.15 *. baseline in
          if alloc_per_event > ceiling then begin
            Printf.eprintf
              "FAIL: alloc_bytes_per_event %.1f exceeds 115%% of baseline %.1f\n%!"
              alloc_per_event baseline;
            failed := true
          end
          else
            Printf.printf
              "gate ok: alloc_bytes_per_event %.1f <= 115%% of baseline %.1f\n%!"
              alloc_per_event baseline);

  if !failed then exit 1

(* Fig. 4: network load towards the central collector vs number of
   monitored ports.  sFlow exports every counter every period (linear,
   steep at 1 ms); Sonata ships windowed per-flow records reduced by its
   75 % aggregation factor; FARM's seeds report only when the heavy-hitter
   set changes (~1 report per affected seed per churn). *)

open Farm
module Engine = Sim.Engine
module Rng = Sim.Rng

let sim_seconds = 10.

(* total switch ports of a fabric *)
let total_ports topo =
  List.fold_left
    (fun acc (n : Net.Topology.node) -> acc + Net.Topology.port_count topo n.id)
    0 (Net.Topology.switches topo)

let make_world ~leaves ~seed =
  let topo = Net.Topology.spine_leaf ~spines:4 ~leaves ~hosts_per_leaf:8 in
  let engine = Engine.create ~seed () in
  let fabric = Net.Fabric.create topo in
  let rng = Rng.split (Engine.rng engine) in
  Net.Traffic.background engine fabric rng
    { Net.Traffic.default_profile with concurrent_flows = 4 * leaves;
      mean_rate = 20_000. };
  (* HH churn: the heavy-hitter set changes once mid-run (once a minute in
     the paper's workload, scaled to the window) *)
  let _ =
    Net.Traffic.heavy_hitter engine fabric rng ~at:(sim_seconds /. 2.)
      ~rate:Bench_common.hh_rate ()
  in
  (topo, engine, fabric, rng)

let sflow_load ~leaves ~period =
  let _, engine, fabric, _ = make_world ~leaves ~seed:2 in
  let t =
    Baselines.Sflow.deploy
      ~config:{ Baselines.Sflow.default_config with poll_period = period }
      engine fabric ~hh_threshold:Bench_common.hh_threshold
  in
  Engine.run ~until:sim_seconds engine;
  let bytes = Baselines.Collector.rx_bytes (Baselines.Sflow.collector t) in
  Baselines.Sflow.shutdown t;
  bytes /. sim_seconds

let sonata_load ~leaves =
  let _, engine, fabric, _ = make_world ~leaves ~seed:2 in
  let t =
    Baselines.Sonata.deploy engine fabric
      ~hh_threshold:Bench_common.hh_threshold
  in
  Engine.run ~until:sim_seconds engine;
  let bytes = Baselines.Sonata.rx_bytes t in
  Baselines.Sonata.shutdown t;
  bytes /. sim_seconds

let farm_load ~leaves =
  let _, engine, fabric, _ = make_world ~leaves ~seed:2 in
  let seeder = Runtime.Seeder.create engine fabric in
  let entry = Tasks.Catalog.find "heavy-hitter" in
  (* the HH threshold sits above aggregated background port rates so only
     genuine heavy hitters (the churn events) produce reports *)
  let entry =
    { entry with
      Tasks.Task_common.externals =
        [ ("HH",
           [ ("threshold", Almanac.Value.Num 1e7);
             ("interval", Almanac.Value.Num 1e-3) ]) ] }
  in
  (match Runtime.Seeder.deploy seeder (Tasks.Task_common.to_task_spec entry) with
  | Ok _ -> ()
  | Error m -> failwith ("fig4: FARM deploy failed: " ^ m));
  Engine.run ~until:sim_seconds engine;
  Runtime.Seeder.collector_bytes seeder /. sim_seconds

let run () =
  Bench_common.section
    "Fig. 4: network load towards the collector vs number of ports";
  let leaves_sweep = [ 4; 8; 16; 32; 48 ] in
  let rows =
    Bench_common.psweep leaves_sweep (fun leaves ->
        let topo = Net.Topology.spine_leaf ~spines:4 ~leaves ~hosts_per_leaf:8 in
        let ports = total_ports topo in
        let s1 = sflow_load ~leaves ~period:0.001 in
        let s10 = sflow_load ~leaves ~period:0.01 in
        let so = sonata_load ~leaves in
        let fa = farm_load ~leaves in
        [ string_of_int ports;
          Bench_common.fmt_bytes_rate s1;
          Bench_common.fmt_bytes_rate s10;
          Bench_common.fmt_bytes_rate so;
          Bench_common.fmt_bytes_rate fa;
          Printf.sprintf "%.0fx" (s1 /. Float.max fa 1e-9) ])
  in
  Bench_common.table
    [ "Ports"; "sFlow 1ms"; "sFlow 10ms"; "Sonata"; "FARM";
      "sFlow1ms/FARM" ]
    rows;
  Printf.printf
    "\n(paper: sFlow grows linearly with ports; FARM adds ~1 packet/min per \
     100 ports; savings up to 10000x)\n%!"

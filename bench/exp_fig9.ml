(* Fig. 9: the soil CPU cost of aggregating seed requests, with seeds as
   threads vs processes.  Aggregation trades PCIe bandwidth for soil CPU;
   the cost is only noticeable with process-model seeds (context switches
   per fan-out), while thread seeds are nearly free. *)

open Farm
module Engine = Sim.Engine

let sim_seconds = 2.

let soil_cpu ~n ~exec_model ~aggregate =
  let engine = Engine.create ~seed:6 () in
  let sw = Net.Switch_model.create ~id:0 ~ports:8 () in
  let config =
    { Runtime.Soil.default_config with
      exec_model;
      aggregate_polls = aggregate;
      scheme = Runtime.Ipc.Shared_buffer }
  in
  let soil = Runtime.Soil.create ~config engine sw in
  for i = 1 to n do
    Runtime.Soil.attach_seed soil i;
    ignore
      (Runtime.Soil.subscribe_poll soil ~seed_id:i ~subject:Net.Filter.All_ports
         ~period:0.01 (fun _ -> ()))
  done;
  Engine.run ~until:sim_seconds engine;
  Runtime.Soil.cpu_load soil ~window:sim_seconds

let run () =
  Bench_common.section
    "Fig. 9: soil CPU cost of request aggregation, threads vs processes";
  let rows =
    Bench_common.psweep [ 10; 25; 50; 100; 150 ] (fun n ->
        let tt = soil_cpu ~n ~exec_model:Runtime.Ipc.Threads ~aggregate:true in
        let tn = soil_cpu ~n ~exec_model:Runtime.Ipc.Threads ~aggregate:false in
        let pt = soil_cpu ~n ~exec_model:Runtime.Ipc.Processes ~aggregate:true in
        let pn = soil_cpu ~n ~exec_model:Runtime.Ipc.Processes ~aggregate:false in
        [ string_of_int n;
          Printf.sprintf "%.2f%%" (100. *. tt);
          Printf.sprintf "%.2f%%" (100. *. tn);
          Printf.sprintf "%.2f%%" (100. *. pt);
          Printf.sprintf "%.2f%%" (100. *. pn) ])
  in
  Bench_common.table
    [ "Seeds"; "threads+agg"; "threads no-agg"; "procs+agg"; "procs no-agg" ]
    rows;
  Printf.printf
    "\n(paper: aggregation cost is only noticeable when seeds run as \
     processes; thread seeds perform equally well regardless)\n%!"

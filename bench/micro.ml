(* Bechamel micro-benchmarks of the hot code paths: simplex solves,
   placement heuristic, Almanac parsing and interpretation. *)

open Farm
open Bechamel
open Toolkit

let lp_test =
  let x = Optim.Lin_expr.var 0 and y = Optim.Lin_expr.var 1 in
  let objective = Optim.Lin_expr.add (Optim.Lin_expr.scale 3. x) y in
  let constraints =
    [ Optim.Simplex.constr (Optim.Lin_expr.add x y) Optim.Simplex.Le 10.;
      Optim.Simplex.constr
        Optim.Lin_expr.(add (scale 2. x) (scale 0.5 y))
        Optim.Simplex.Le 8. ]
  in
  Test.make ~name:"simplex: 2-var LP" (Staged.stage (fun () ->
      ignore (Optim.Simplex.maximize ~nvars:2 ~objective constraints)))

let heuristic_test =
  let rng = Sim.Rng.create 9 in
  let inst =
    Placement.Model.random_instance ~rng ~switches:20 ~tasks:5
      ~seeds_per_task:20 ()
  in
  Test.make ~name:"heuristic: 100 seeds / 20 switches"
    (Staged.stage (fun () -> ignore (Placement.Heuristic.optimize inst)))

let parse_test =
  let source = (Tasks.Catalog.find "heavy-hitter").source in
  Test.make ~name:"almanac: parse+check HH"
    (Staged.stage (fun () ->
         ignore (Almanac.Typecheck.check (Almanac.Parser.program source))))

let interp_test =
  let source = (Tasks.Catalog.find "heavy-hitter").source in
  let program = Almanac.Typecheck.check (Almanac.Parser.program source) in
  let t =
    Almanac.Interp.create ~program ~machine:"HH" Almanac.Interp.null_host
  in
  Almanac.Interp.start t;
  let stats = Almanac.Value.Stats (Array.make 16 100.) in
  Test.make ~name:"almanac: HH poll activation (interp)"
    (Staged.stage (fun () -> Almanac.Interp.fire_trigger t "pollStats" stats))

let compiled_test =
  let source = (Tasks.Catalog.find "heavy-hitter").source in
  let program = Almanac.Typecheck.check (Almanac.Parser.program source) in
  let t = Almanac.Exec.create ~program ~machine:"HH" Almanac.Host.null_host in
  Almanac.Exec.start t;
  let stats = Almanac.Value.Stats (Array.make 16 100.) in
  let fire = Almanac.Exec.prepare_trigger t "pollStats" in
  Test.make ~name:"almanac: HH poll activation (compiled)"
    (Staged.stage (fun () -> fire stats))

let run () =
  Bench_common.section "Micro-benchmarks (bechamel)";
  let tests =
    [ lp_test; heuristic_test; parse_test; interp_test; compiled_test ]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.5) () in
  List.iter
    (fun test ->
      let results =
        Benchmark.all cfg instances test
        |> fun r -> Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:false
                                   ~predictors:[| Measure.run |]) Instance.monotonic_clock r
      in
      Hashtbl.iter
        (fun name ols ->
          match Analyze.OLS.estimates ols with
          | Some [ est ] ->
              Printf.printf "%-40s %s/run\n%!" name
                (Bench_common.fmt_time (est *. 1e-9))
          | _ -> Printf.printf "%-40s (no estimate)\n%!" name)
        results)
    tests

(* farmc — the Almanac compiler / task driver CLI.

   Subcommands:
     farmc check <file.alm>      parse + type-check
     farmc lint <file.alm>...    full static verification (P/T/L/B codes)
     farmc verify <file.alm>...  symbolic verification: translation
                                 validation (V401/V402), invariant and
                                 range proofs (V403/V404), reach-backed
                                 L101/L102/L107
     farmc format <file.alm>     pretty-print the parsed program
     farmc compile <file.alm>    emit the XML interchange form
     farmc analyze <file.alm>    run the seeder's static analyses
     farmc tasks                 list the built-in Table I catalog
     farmc run <task> [-d SECS]  simulate a catalog task under its workload
     farmc sweep <task> [-n N]   run N seeded replicas across a domain pool
     farmc trace [task]          traced replay: Chrome trace_event JSON +
                                 metrics snapshot (--check: determinism
                                 self-test across replays and domain counts)

   All commands report problems as positioned diagnostics
   (file:line:col: severity[CODE]: message) on stderr. *)

open Farm
open Cmdliner
module Diagnostic = Almanac.Diagnostic

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* parse + type-check, accumulating positioned diagnostics *)
let load_diags ?extra source =
  match Almanac.Parser.program_result source with
  | Error d -> Error [ d ]
  | Ok parsed -> (
      match Almanac.Typecheck.check_diags ?extra parsed with
      | Ok p -> Ok p
      | Error ds -> Error ds)

let check_program path =
  match load_diags (read_file path) with
  | Ok p -> Ok p
  | Error ds -> Error (Diagnostic.with_file path ds)

let or_die = function
  | Ok v -> v
  | Error ds ->
      Diagnostic.print_all stderr ds;
      exit 1

(* ---------------- check ---------------- *)

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.alm")

let check_cmd =
  let run file =
    let p = or_die (check_program file) in
    Printf.printf "%s: ok (%d machine(s), %d auxiliary function(s))\n" file
      (List.length p.machines) (List.length p.funcs)
  in
  Cmd.v (Cmd.info "check" ~doc:"Parse and type-check an Almanac program")
    Term.(const run $ file_arg)

(* ---------------- lint ---------------- *)

let ref_topo () = Net.Topology.spine_leaf ~spines:2 ~leaves:4 ~hosts_per_leaf:2

(* analysis-time bindings: deployment-provided externals, falling back to
   literal machine-variable initializers (mirrors the seeder) *)
let analysis_bindings (m : Almanac.Ast.machine) bound : Almanac.Analysis.bindings
    =
  let static name =
    List.find_map
      (fun (v : Almanac.Ast.var_decl) ->
        if v.vname = name then
          match v.vinit with
          | Some (Almanac.Ast.Int i) -> Some (Almanac.Value.Num (float_of_int i))
          | Some (Almanac.Ast.Float f) -> Some (Almanac.Value.Num f)
          | Some (Almanac.Ast.String s) -> Some (Almanac.Value.Str s)
          | Some (Almanac.Ast.Bool b) -> Some (Almanac.Value.Bool b)
          | _ -> None
        else None)
      m.mvars
  in
  fun name ->
    match List.assoc_opt name bound with
    | Some v -> Some v
    | None -> static name

let machine_bound externals mname =
  Option.value (List.assoc_opt mname externals) ~default:[]

(* lint one program: parse/type diagnostics, the lint pass, and the
   per-machine resource-bound cross-check (B201) *)
let lint_program ~file ?extra ?(externals = []) source =
  match load_diags ?extra source with
  | Error ds -> (Diagnostic.with_file file ds, None)
  | Ok p ->
      let bound_names =
        List.map (fun (m, vs) -> (m, List.map fst vs)) externals
      in
      let lint = Almanac.Lint.check_program ~file ~externals:bound_names p in
      let bounds =
        List.concat_map
          (fun (m : Almanac.Ast.machine) ->
            let bindings =
              analysis_bindings m (machine_bound externals m.mname)
            in
            match Almanac.Analysis.polls ~bindings m with
            | Error _ -> []
            | Ok polls ->
                let state_utils =
                  List.filter_map
                    (fun (st : Almanac.Ast.state_decl) ->
                      Option.bind st.sutil (fun u ->
                          match Almanac.Analysis.utility ~bindings u with
                          | Ok branches -> Some (st.sname, branches)
                          | Error _ -> None))
                    m.states
                in
                Almanac.Bounds.cross_check ~file ~machine:m ~polls
                  ~state_utils ())
          p.machines
      in
      (Diagnostic.sort (lint @ bounds), Some p)

(* cross-task conflicts over a set of linted programs, on the reference
   fabric *)
let conflict_diags linted =
  let topo = ref_topo () in
  let profiles =
    List.filter_map
      (fun (name, externals, p) ->
        match p with
        | None -> None
        | Some (p : Almanac.Ast.program) ->
            let summaries =
              List.filter_map
                (fun (m : Almanac.Ast.machine) ->
                  let bindings =
                    analysis_bindings m (machine_bound externals m.mname)
                  in
                  match Almanac.Analysis.summarize ~bindings ~topo m with
                  | Ok s -> Some (s, bindings)
                  | Error _ -> None)
                p.machines
            in
            Some (Placement.Conflict.profile ~task:name summaries))
      linted
  in
  Placement.Conflict.check profiles

let lint_cmd =
  let files_arg = Arg.(value & pos_all file [] & info [] ~docv:"FILE.alm") in
  let catalog_arg =
    Arg.(
      value & flag
      & info [ "catalog" ] ~doc:"Also lint every built-in catalog task")
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Emit diagnostics as a JSON array on stdout")
  in
  let run files catalog json =
    let file_results =
      List.map
        (fun path ->
          let ds, p = lint_program ~file:path (read_file path) in
          (path, ([] : (string * (string * Almanac.Value.t) list) list), p, ds))
        files
    in
    let catalog_results =
      if not catalog then []
      else
        List.map
          (fun (e : Tasks.Task_common.entry) ->
            let file = "catalog:" ^ e.name in
            let ds, p =
              lint_program ~file ~extra:e.extra_sigs ~externals:e.externals
                e.source
            in
            (file, e.externals, p, ds))
          Tasks.Catalog.all
    in
    let results = file_results @ catalog_results in
    let conflicts =
      conflict_diags (List.map (fun (n, ex, p, _) -> (n, ex, p)) results)
    in
    let all =
      Diagnostic.sort (List.concat_map (fun (_, _, _, ds) -> ds) results)
      @ conflicts
    in
    if json then print_string (Almanac.Diagnostic.to_json all)
    else begin
      Diagnostic.print_all stdout all;
      let errors = List.length (List.filter Diagnostic.is_error all) in
      Printf.printf "%d program(s): %d error(s), %d warning(s)\n"
        (List.length results) errors
        (List.length all - errors)
    end;
    if Diagnostic.has_errors all then exit 1
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Statically verify Almanac programs: positioned parse/type errors, \
          lint checks (unreachable states, dead transitions, unused \
          variables and subscriptions, non-linear util, missing externals, \
          livelocks), resource-bound cross-checks and cross-task conflicts")
    Term.(const run $ files_arg $ catalog_arg $ json_arg)

(* ---------------- verify (symbolic, §V-A e) ---------------- *)

(* Symbolically verify one program: per-handler translation validation
   (V401/V402), invariant + range proofs (V403/V404), and the
   reachability-backed L101/L102/L107 verdicts. *)
let verify_program ~file ?extra ?(host_builtins = []) ?budget source =
  match load_diags ?extra source with
  | Error ds -> Diagnostic.with_file file ds
  | Ok p ->
      let host_builtins = Almanac.Equiv.default_host_builtins @ host_builtins in
      let equiv =
        Almanac.Equiv.verify_program ?budget ~host_builtins ~program:p ()
      in
      let reach =
        Almanac.Reach.analyze_program ?budget ~host_builtins ~program:p ()
      in
      let reach_diags =
        List.concat_map (fun (r : Almanac.Reach.result) -> r.diags) reach
      in
      let lint =
        List.filter
          (fun (d : Diagnostic.t) ->
            match d.code with "L101" | "L102" | "L107" -> true | _ -> false)
          (Almanac.Lint.check_program ~reach p)
      in
      Diagnostic.with_file file (Diagnostic.sort (equiv @ reach_diags @ lint))

let verify_cmd =
  let files_arg = Arg.(value & pos_all file [] & info [] ~docv:"FILE.alm") in
  let catalog_arg =
    Arg.(
      value & flag
      & info [ "catalog" ] ~doc:"Also verify every built-in catalog task")
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Emit diagnostics as a JSON array on stdout")
  in
  let max_paths_arg =
    Arg.(
      value & opt int 0
      & info [ "max-paths" ] ~docv:"N"
          ~doc:
            "Symbolic path budget per handler unit (0 = default).  Raise it \
             when V402 reports an exhausted budget.")
  in
  let run files catalog json max_paths =
    let budget =
      if max_paths <= 0 then None
      else
        Some { Almanac.Symexec.default_budget with max_paths }
    in
    let file_diags =
      List.map
        (fun path -> verify_program ~file:path ?budget (read_file path))
        files
    in
    let catalog_diags =
      if not catalog then []
      else
        List.map
          (fun (e : Tasks.Task_common.entry) ->
            verify_program ~file:("catalog:" ^ e.name) ~extra:e.extra_sigs
              ~host_builtins:(List.map fst e.builtins)
              ?budget e.source)
          Tasks.Catalog.all
    in
    let n_programs = List.length file_diags + List.length catalog_diags in
    let all = Diagnostic.sort (List.concat (file_diags @ catalog_diags)) in
    if json then print_string (Diagnostic.to_json all)
    else begin
      Diagnostic.print_all stdout all;
      let errors = List.length (List.filter Diagnostic.is_error all) in
      Printf.printf "%d program(s) verified: %d error(s), %d warning(s)\n"
        n_programs errors
        (List.length all - errors)
    end;
    if Diagnostic.has_errors all then exit 1
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:
         "Symbolically verify Almanac programs: per-handler translation \
          validation of the compiled slot-indexed plan against the \
          reference semantics (V401 divergence, V402 exhausted path \
          budget), assert(..) invariant proofs with concrete witnesses \
          (V403), value-range safety (V404), and reachability-backed \
          unreachable-state / dead-transit / livelock verdicts \
          (L101/L102/L107)")
    Term.(const run $ files_arg $ catalog_arg $ json_arg $ max_paths_arg)

(* ---------------- format ---------------- *)

let format_cmd =
  let run file =
    let p = or_die (check_program file) in
    print_string (Almanac.Pretty.program_to_string p)
  in
  Cmd.v (Cmd.info "format" ~doc:"Pretty-print an Almanac program")
    Term.(const run $ file_arg)

(* ---------------- compile (XML interchange, §V-A d) ---------------- *)

let compile_cmd =
  let run file =
    let p = or_die (check_program file) in
    print_string (Almanac.Machine_xml.compile p)
  in
  Cmd.v
    (Cmd.info "compile"
       ~doc:
         "Compile an Almanac program to the XML interchange form the           seeder ships to switches")
    Term.(const run $ file_arg)

(* ---------------- analyze ---------------- *)

let analyze_cmd =
  let run file =
    let p = or_die (check_program file) in
    let topo = Net.Topology.spine_leaf ~spines:2 ~leaves:4 ~hosts_per_leaf:2 in
    List.iter
      (fun (m : Almanac.Ast.machine) ->
        Printf.printf "machine %s\n" m.mname;
        match Almanac.Analysis.summarize ~topo m with
        | Error e -> Printf.printf "  analysis error: %s\n" e
        | Ok s ->
            Printf.printf "  seeds (on a 2x4 spine-leaf reference fabric): %d\n"
              (List.length s.seeds);
            List.iter
              (fun (state, branches) ->
                Printf.printf "  state %s: %d utility branch(es)\n" state
                  (List.length branches);
                List.iter
                  (fun (b : Almanac.Analysis.util_branch) ->
                    List.iter
                      (fun c ->
                        Printf.printf "    constraint %s >= 0\n"
                          (Optim.Lin_expr.to_string c))
                      b.constraints;
                    Printf.printf "    utility min(%s)\n"
                      (String.concat ", "
                         (List.map Optim.Lin_expr.to_string b.utility)))
                  branches)
              s.state_utils;
            List.iter
              (fun (pv : Almanac.Analysis.poll_summary) ->
                Printf.printf "  %s %s: subjects [%s]\n"
                  (Almanac.Ast.trigger_type_to_string pv.ptrig)
                  pv.poll_name
                  (String.concat "; "
                     (List.map
                        (fun subj ->
                          Format.asprintf "%a" Net.Filter.pp_subject subj)
                        pv.subjects)))
              s.poll_vars)
      p.machines
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"Run the seeder's static analyses (placement, utility, polling)")
    Term.(const run $ file_arg)

(* ---------------- tasks ---------------- *)

let tasks_cmd =
  let run () =
    List.iter
      (fun (e : Tasks.Task_common.entry) ->
        Printf.printf "%-40s %s\n" e.name e.description)
      Tasks.Catalog.all
  in
  Cmd.v (Cmd.info "tasks" ~doc:"List the built-in Table I task catalog")
    Term.(const run $ const ())

(* ---------------- run ---------------- *)

let run_cmd =
  let task_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"TASK")
  in
  let duration_arg =
    Arg.(value & opt float 5. & info [ "d"; "duration" ] ~docv:"SECONDS")
  in
  let overload_arg =
    Arg.(
      value & flag
      & info [ "overload" ]
          ~doc:
            "Arm the overload-protection stack: bounded PCIe/inbox queues \
             with load shedding, AIMD degraded-mode seeds, and \
             control-channel rate limiting with per-switch circuit \
             breakers.  Off by default (byte-identical to the unprotected \
             runtime).")
  in
  let run name duration overload =
    let entry =
      try Tasks.Catalog.find name
      with Invalid_argument m ->
        prerr_endline m;
        exit 1
    in
    let world =
      if overload then
        World.create ~seeder_config:Runtime.Seeder.overload_defaults ()
      else World.create ()
    in
    let task =
      match
        Runtime.Seeder.deploy world.seeder
          (Tasks.Task_common.to_task_spec entry)
      with
      | Ok t ->
          (* surface non-blocking deploy-time diagnostics (lint warnings,
             cross-task conflicts) *)
          Diagnostic.print_all stderr
            (Runtime.Seeder.last_deploy_diagnostics world.seeder);
          t
      | Error m ->
          prerr_endline m;
          exit 1
    in
    Printf.printf "deployed %s: %d seeds on %d switches\n" name
      (List.length (Runtime.Seeder.seeds world.seeder task))
      (List.length (Net.Topology.switches world.topology));
    World.background_traffic ~flows:50 world;
    (* a generic anomaly so detection tasks have something to find *)
    let victim = Net.Ipaddr.of_string "10.2.1.9" in
    Net.Traffic.syn_flood world.engine world.fabric world.rng
      ~at:(duration /. 3.) ~duration:(duration /. 2.) ~victim
      ~rate_per_source:200_000. ~sources:60;
    let _ =
      Net.Traffic.heavy_hitter world.engine world.fabric world.rng
        ~at:(duration /. 3.) ~rate:2e7 ()
    in
    World.run ~until:duration world;
    let h = Runtime.Seeder.harvester task in
    Printf.printf "simulated %.1fs: %d harvester message(s)\n" duration
      (Runtime.Harvester.received_count h);
    List.iteri
      (fun i (t, sw, v) ->
        if i < 10 then
          Printf.printf "  t=%.3fs  switch %d: %s\n" t sw
            (Almanac.Value.to_string v))
      (List.rev (Runtime.Harvester.received h));
    if overload then begin
      let seeder = world.seeder in
      let shed, peak =
        List.fold_left
          (fun (shed, peak) soil ->
            match Runtime.Soil.overload_stats soil with
            | Some st ->
                (shed + st.Runtime.Soil.o_shed,
                 max peak st.Runtime.Soil.o_queue_peak)
            | None -> (shed, peak))
          (0, 0)
          (Runtime.Seeder.soils seeder)
      in
      Printf.printf
        "overload: pcie shed %d poll(s) (queue peak %d), inbox shed %d of %d \
         offered\n"
        shed peak
        (Runtime.Harvester.shed_count h)
        (Runtime.Harvester.offered_count h);
      Printf.printf
        "overload: ctrl rate-limited %d, breaker dropped %d (%d open(s)), \
         retries capped %d\n"
        (Runtime.Seeder.rate_limited seeder)
        (Runtime.Seeder.breaker_dropped seeder)
        (Runtime.Seeder.breaker_opens seeder)
        (Runtime.Seeder.retry_capped seeder);
      Printf.printf "overload: %d pressure event(s); seeds degraded now: %d\n"
        (Runtime.Seeder.pressure_events seeder)
        (List.length
           (List.filter
              (fun e -> Runtime.Seed_exec.degradation e > 0.)
              (Runtime.Seeder.seeds seeder task)))
    end
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Deploy a catalog task on a simulated DC and run it")
    Term.(const run $ task_arg $ duration_arg $ overload_arg)

(* ---------------- sweep ---------------- *)

let sweep_cmd =
  let task_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"TASK")
  in
  let runs_arg =
    Arg.(value & opt int 8 & info [ "n"; "runs" ] ~docv:"RUNS")
  in
  let duration_arg =
    Arg.(value & opt float 5. & info [ "d"; "duration" ] ~docv:"SECONDS")
  in
  let domains_arg =
    Arg.(
      value & opt int 0
      & info [ "j"; "domains" ] ~docv:"DOMAINS"
          ~doc:"Domain pool size (0 = one per available core).")
  in
  let run name runs duration domains =
    let entry =
      try Tasks.Catalog.find name
      with Invalid_argument m ->
        prerr_endline m;
        exit 1
    in
    let domains =
      if domains <= 0 then Sim.Sweep.default_domains () else domains
    in
    (* each replica builds its whole world from an index-derived seed, as
       the Sweep contract requires *)
    let results =
      Sim.Sweep.run ~domains runs (fun i ->
          let seed = Sim.Rng.derive_seed 42 ~stream:i in
          let world = World.create ~seed () in
          match
            Runtime.Seeder.deploy world.seeder
              (Tasks.Task_common.to_task_spec entry)
          with
          | Error m -> failwith (Printf.sprintf "replica %d: %s" i m)
          | Ok task ->
              World.background_traffic ~flows:50 world;
              World.run ~until:duration world;
              let h = Runtime.Seeder.harvester task in
              ( seed,
                Sim.Engine.dispatched world.engine,
                Runtime.Harvester.received_count h,
                Runtime.Seeder.current_utility world.seeder ))
    in
    Printf.printf "%d replica(s) of %s, %.1f s each, on %d domain(s):\n" runs
      name duration domains;
    Array.iteri
      (fun i (seed, events, msgs, utility) ->
        Printf.printf
          "  replica %2d  seed %-19d %9d events %5d message(s)  utility %.3f\n"
          i seed events msgs utility)
      results
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:"Run independent seeded replicas of a catalog task on a domain pool")
    Term.(const run $ task_arg $ runs_arg $ duration_arg $ domains_arg)

(* ---------------- trace ---------------- *)

let trace_cmd =
  let task_arg =
    Arg.(value & pos 0 string "heavy-hitter" & info [] ~docv:"TASK")
  in
  let duration_arg =
    Arg.(value & opt float 1. & info [ "d"; "duration" ] ~docv:"SECONDS")
  in
  let out_arg =
    Arg.(
      value & opt string "trace.json"
      & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Chrome trace_event output file.")
  in
  let metrics_arg =
    Arg.(
      value & opt string "metrics.json"
      & info [ "metrics" ] ~docv:"FILE" ~doc:"Metrics snapshot output file.")
  in
  let ring_arg =
    Arg.(
      value & opt int 0
      & info [ "ring" ] ~docv:"N"
          ~doc:
            "Keep only the last $(docv) events (flight-recorder mode); 0 \
             keeps everything.")
  in
  let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED") in
  let check_arg =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "Determinism self-test instead of writing files: the traced \
             event stream must be byte-identical across two replays and \
             across 1 vs 4 sweep domains.  Exits non-zero on divergence.")
  in
  (* One traced replica.  The sink is attached before deploy so the seed
     executors wire their handler-dispatch hooks; every event is stamped
     with simulation time, so the emitted JSON is a pure function of
     (task, seed, duration, ring). *)
  let replica entry ~ring ~seed ~duration =
    let world = World.create ~seed () in
    let tr = Sim.Trace.create ~ring () in
    Sim.Engine.set_tracer world.engine (Some tr);
    match
      Runtime.Seeder.deploy world.seeder (Tasks.Task_common.to_task_spec entry)
    with
    | Error m ->
        prerr_endline m;
        exit 1
    | Ok _task ->
        World.background_traffic ~flows:50 world;
        let victim = Net.Ipaddr.of_string "10.2.1.9" in
        Net.Traffic.syn_flood world.engine world.fabric world.rng
          ~at:(duration /. 3.) ~duration:(duration /. 2.) ~victim
          ~rate_per_source:200_000. ~sources:60;
        let _ =
          Net.Traffic.heavy_hitter world.engine world.fabric world.rng
            ~at:(duration /. 3.) ~rate:2e7 ()
        in
        World.run ~until:duration world;
        ( tr,
          Sim.Trace.to_chrome_json tr,
          Sim.Metrics.Registry.to_json (Sim.Engine.metrics world.engine) )
  in
  let run name duration out metrics_out ring seed check =
    let entry =
      try Tasks.Catalog.find name
      with Invalid_argument m ->
        prerr_endline m;
        exit 1
    in
    if check then begin
      (* replay determinism *)
      let _, j1, m1 = replica entry ~ring ~seed ~duration in
      let _, j2, m2 = replica entry ~ring ~seed ~duration in
      let replay_ok = String.equal j1 j2 && String.equal m1 m2 in
      Printf.printf "replay:  %s (%d bytes)\n"
        (if replay_ok then "byte-identical" else "DIVERGED")
        (String.length j1);
      if not replay_ok then begin
        (* keep the diverging streams around for post-mortem diffing *)
        let dump path s =
          let oc = open_out_bin path in
          output_string oc s;
          close_out oc
        in
        dump (out ^ ".replay1") (j1 ^ m1);
        dump (out ^ ".replay2") (j2 ^ m2);
        Printf.eprintf "diverging streams dumped to %s.replay{1,2}\n" out
      end;
      (* domain-count invariance: 4 replicas traced on 1 vs 4 domains *)
      let sweep domains =
        Sim.Sweep.run ~domains ~clamp:false 4 (fun i ->
            let seed = Sim.Rng.derive_seed seed ~stream:i in
            let _, j, m = replica entry ~ring ~seed ~duration in
            j ^ m)
      in
      let seq = sweep 1 and par = sweep 4 in
      let domains_ok = seq = par in
      Printf.printf "domains: %s (1 vs 4, %d replicas)\n"
        (if domains_ok then "byte-identical" else "DIVERGED")
        (Array.length seq);
      if not (replay_ok && domains_ok) then exit 1
    end
    else begin
      let tr, json, metrics = replica entry ~ring ~seed ~duration in
      let write path s =
        let oc = open_out_bin path in
        Fun.protect
          ~finally:(fun () -> close_out oc)
          (fun () -> output_string oc s)
      in
      write out json;
      write metrics_out metrics;
      Printf.printf
        "traced %s for %.2fs: %d event(s)%s -> %s, metrics -> %s\n" name
        duration (Sim.Trace.count tr)
        (if Sim.Trace.dropped tr > 0 then
           Printf.sprintf " (%d overwritten by --ring)" (Sim.Trace.dropped tr)
         else "")
        out metrics_out
    end
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Replay a catalog scenario with simulation-time tracing and write \
          Chrome trace_event JSON (Perfetto-compatible) plus a metrics \
          snapshot")
    Term.(
      const run $ task_arg $ duration_arg $ out_arg $ metrics_arg $ ring_arg
      $ seed_arg $ check_arg)

let () =
  let doc = "the Almanac compiler and FARM task driver" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "farmc" ~version:"1.0.0" ~doc)
          [ check_cmd; lint_cmd; verify_cmd; format_cmd; compile_cmd;
            analyze_cmd; tasks_cmd; run_cmd; sweep_cmd; trace_cmd ]))

#!/usr/bin/env python3
"""Flag raw `Hashtbl.fold` / `Hashtbl.iter` over unsorted tables in lib/.

OCaml's Hashtbl enumerates buckets in an order that depends on the
hash-function seed, so any fold/iter whose result order is observable
makes simulations, placements and diagnostics non-reproducible.  The
repo's rule: every enumeration must either be sorted where it is
produced (a `sort` within a few lines of the site) or be genuinely
order-insensitive and carry an entry in ALLOWLIST below explaining why.

Stdlib-only — CI must not install packages.

Usage: lint_determinism.py [REPO_ROOT]
Exit status: 1 if an unsanctioned site exists, 0 otherwise.
"""
import os
import re
import sys

SITE_RE = re.compile(r"Hashtbl\s*\.\s*(fold|iter)\b")
# a `List.sort`, `Diagnostic.sort`, `sorted ...` etc. near the site
# counts as "sorted where produced"
SORT_RE = re.compile(r"sort", re.IGNORECASE)
SORT_WINDOW = 3  # lines before/after the site searched for a sort

# Sites that are order-insensitive by construction.  Keyed by file and a
# snippet that must appear within a few lines of the flagged site (line
# numbers drift; content does not).  Keep reasons honest — "it's
# probably fine" is not one.
ALLOWLIST = [
    ("lib/runtime/seeder.ml", "Hashtbl.replace tasks r.r_task.task_id",
     "keyed replace; every reg of a task carries the same task record"),
    ("lib/runtime/seeder.ml", "task.placed <-",
     "independent per-key mutation"),
    ("lib/runtime/seeder.ml", "fun node soilv acc",
     "fold result sorted by node id at the end of the pipeline"),
    ("lib/runtime/seeder.ml", "Soil.set_pressure_listener soilv",
     "independent per-key listener installation"),
    ("lib/runtime/seeder.ml", "acc + Overload.Breaker.opens b",
     "commutative int sum"),
    ("lib/net/switch_model.ml", "Tcam.record t.tcam f.tuple",
     "commutative counter accumulation"),
    ("lib/net/switch_model.ml", "let r = effective_rate t f in",
     "independent per-flow mutation"),
    ("lib/net/switch_model.ml", "let hit =",
     "commutative rate accumulation into a fresh subject"),
    ("lib/net/switch_model.ml", "acc +. f.rate",
     "commutative float sum"),
    ("lib/placement/milp_formulation.ml", "integer.(v) <- true",
     "indexed array write, one slot per key"),
    ("lib/placement/milp_formulation.ml", "if n0 = c.node && res'.(r) > 0.",
     "accumulation into a canonical Lin_expr map"),
    ("lib/placement/milp_formulation.ml", "Lin.add acc (Lin.var pv)",
     "accumulation into a canonical Lin_expr map"),
    ("lib/placement/milp_formulation.ml", "if Hashtbl.mem placed_tasks t",
     "indexed array write, one slot per key"),
    ("lib/placement/milp_formulation.ml", "fun (n, subj) pv",
     "indexed array write, one slot per key"),
    ("lib/almanac/compile.ml", "local_names.(i) <- name",
     "indexed array write, one slot per key"),
    ("lib/almanac/compile.ml", "global_names.(i) <- name",
     "indexed array write, one slot per key"),
]


def scan(root):
    violations = []
    matched = set()
    lib = os.path.join(root, "lib")
    for dirpath, _dirs, files in os.walk(lib):
        for fname in sorted(files):
            if not fname.endswith(".ml"):
                continue
            path = os.path.join(dirpath, fname)
            rel = os.path.relpath(path, root)
            with open(path, encoding="utf-8") as f:
                lines = f.read().splitlines()
            for i, line in enumerate(lines):
                if not SITE_RE.search(line):
                    continue
                lo = max(0, i - SORT_WINDOW)
                hi = min(len(lines), i + SORT_WINDOW + 1)
                if any(SORT_RE.search(lines[j]) for j in range(lo, hi)):
                    continue
                near = "\n".join(lines[i:min(len(lines), i + 5)])
                entry = next(
                    (e for e in ALLOWLIST
                     if e[0] == rel.replace(os.sep, "/") and e[1] in near),
                    None)
                if entry is not None:
                    matched.add(entry)
                    continue
                violations.append((rel, i + 1, line.strip()))
    return violations, matched


def main():
    root = sys.argv[1] if len(sys.argv) > 1 else "."
    if not os.path.isdir(os.path.join(root, "lib")):
        print(f"lint_determinism: no lib/ under {root!r}", file=sys.stderr)
        return 2
    violations, matched = scan(root)
    for rel, lineno, text in violations:
        print(f"{rel}:{lineno}: unsorted Hashtbl enumeration: {text}")
    if violations:
        print(f"\n{len(violations)} site(s) enumerate a Hashtbl in an "
              "observable order.  Sort the result where it is produced, "
              "or add an ALLOWLIST entry to doc/lint_determinism.py with "
              "a reason why order cannot matter.")
    stale = [e for e in ALLOWLIST if e not in matched]
    for rel, snippet, _reason in stale:
        print(f"note: stale allowlist entry {rel!r} / {snippet!r} "
              "matched no site (remove it?)")
    return 1 if violations else 0


if __name__ == "__main__":
    sys.exit(main())

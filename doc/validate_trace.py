#!/usr/bin/env python3
"""Validate a `farmc trace` export against doc/trace_event.schema.json.

Stdlib-only validator for the JSON Schema subset the schema uses
(type, required, properties, items, enum, const, minimum, allOf,
if/then) — CI must not install packages.

Usage: validate_trace.py SCHEMA TRACE.json
"""
import json
import sys

TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "integer": int,
    "number": (int, float),
    "boolean": bool,
}


def check(schema, value, path, errors):
    t = schema.get("type")
    if t is not None:
        py = TYPES[t]
        ok = isinstance(value, py)
        if t in ("integer", "number") and isinstance(value, bool):
            ok = False
        if t == "integer" and isinstance(value, float):
            ok = value.is_integer()
        if not ok:
            errors.append(f"{path}: expected {t}, got {type(value).__name__}")
            return
    if "const" in schema and value != schema["const"]:
        errors.append(f"{path}: expected const {schema['const']!r}")
    if "enum" in schema and value not in schema["enum"]:
        errors.append(f"{path}: {value!r} not in {schema['enum']}")
    if "minimum" in schema and isinstance(value, (int, float)):
        if value < schema["minimum"]:
            errors.append(f"{path}: {value} < minimum {schema['minimum']}")
    if isinstance(value, dict):
        for key in schema.get("required", []):
            if key not in value:
                errors.append(f"{path}: missing required key {key!r}")
        for key, sub in schema.get("properties", {}).items():
            if key in value:
                check(sub, value[key], f"{path}.{key}", errors)
    if isinstance(value, list) and "items" in schema:
        for i, item in enumerate(value):
            check(schema["items"], item, f"{path}[{i}]", errors)
    for sub in schema.get("allOf", []):
        check(sub, value, path, errors)
    if "if" in schema:
        probe = []
        check(schema["if"], value, path, probe)
        if not probe and "then" in schema:
            check(schema["then"], value, path, errors)


def main():
    if len(sys.argv) != 3:
        sys.exit(__doc__)
    with open(sys.argv[1]) as f:
        schema = json.load(f)
    with open(sys.argv[2]) as f:
        trace = json.load(f)
    errors = []
    check(schema, trace, "$", errors)
    for e in errors[:50]:
        print(f"::error::{e}")
    n = len(trace.get("traceEvents", [])) if isinstance(trace, dict) else 0
    if errors:
        sys.exit(f"{sys.argv[2]}: {len(errors)} schema violation(s) in {n} event(s)")
    print(f"{sys.argv[2]}: {n} event(s) conform to {sys.argv[1]}")


if __name__ == "__main__":
    main()

module Lin = Farm_optim.Lin_expr
module Filter = Farm_net.Filter
module Topology = Farm_net.Topology
module Routing = Farm_net.Routing

type resource = VCpu | Ram | TcamR | Pcie

let all_resources = [ VCpu; Ram; TcamR; Pcie ]
let n_resources = 4

let resource_index = function VCpu -> 0 | Ram -> 1 | TcamR -> 2 | Pcie -> 3

let resource_name = function
  | VCpu -> "vCPU"
  | Ram -> "RAM"
  | TcamR -> "TCAM"
  | Pcie -> "PCIe"

let resource_of_name = function
  | "vCPU" -> Some VCpu
  | "RAM" -> Some Ram
  | "TCAM" -> Some TcamR
  | "PCIe" -> Some Pcie
  | _ -> None

type bindings = string -> Value.t option

let no_bindings _ = None

let ( let* ) = Result.bind

let err fmt = Printf.ksprintf (fun m -> Error m) fmt

(* ------------------------------------------------------------------ *)
(* Linear-expression extraction over resource variables                *)
(* ------------------------------------------------------------------ *)

(* Convert a numeric expression over [uparam] resource fields (or
   [res().field]) into a linear expression over resource variable
   indices. *)
let rec to_linear ~bindings ~resvars (e : Ast.expr) : (Lin.t, string) result =
  match e with
  | Ast.Int i -> Ok (Lin.const (float_of_int i))
  | Ast.Float f -> Ok (Lin.const f)
  | Ast.Var v -> (
      match bindings v with
      | Some (Value.Num n) -> Ok (Lin.const n)
      | Some _ -> err "variable %s is not numeric" v
      | None -> err "analysis: unbound variable %s (bind externals first)" v)
  | Ast.Field (base, f) -> (
      let is_res_base =
        match base with
        | Ast.Var v -> List.mem v resvars
        | Ast.Call ("res", []) -> true
        | _ -> false
      in
      if not is_res_base then err "analysis: field access must be on resources"
      else
        match resource_of_name f with
        | Some r -> Ok (Lin.var (resource_index r))
        | None -> err "unknown resource %s" f)
  | Ast.Unop (Ast.Neg, a) ->
      let* la = to_linear ~bindings ~resvars a in
      Ok (Lin.neg la)
  | Ast.Binop (Ast.Add, a, b) ->
      let* la = to_linear ~bindings ~resvars a in
      let* lb = to_linear ~bindings ~resvars b in
      Ok (Lin.add la lb)
  | Ast.Binop (Ast.Sub, a, b) ->
      let* la = to_linear ~bindings ~resvars a in
      let* lb = to_linear ~bindings ~resvars b in
      Ok (Lin.sub la lb)
  | Ast.Binop (Ast.Mul, a, b) -> (
      let* la = to_linear ~bindings ~resvars a in
      let* lb = to_linear ~bindings ~resvars b in
      match (Lin.is_constant la, Lin.is_constant lb) with
      | true, _ -> Ok (Lin.scale (Lin.constant la) lb)
      | _, true -> Ok (Lin.scale (Lin.constant lb) la)
      | false, false -> err "non-linear utility: product of resources")
  | Ast.Binop (Ast.Div, a, b) ->
      let* la = to_linear ~bindings ~resvars a in
      let* lb = to_linear ~bindings ~resvars b in
      if Lin.is_constant lb then
        if Lin.constant lb = 0. then err "division by zero in utility"
        else Ok (Lin.scale (1. /. Lin.constant lb) la)
      else err "non-linear utility: division by a resource"
  | _ -> err "expression is not linear over resources"

(* ------------------------------------------------------------------ *)
(* Utility algebra: linear expressions combined with min/max            *)
(* ------------------------------------------------------------------ *)

type uval = ULin of Lin.t | UMin of uval list | UMax of uval list

let rec u_add a b =
  (* addition distributes over min and max *)
  match (a, b) with
  | ULin x, ULin y -> ULin (Lin.add x y)
  | UMin xs, b -> UMin (List.map (fun x -> u_add x b) xs)
  | a, UMin ys -> UMin (List.map (fun y -> u_add a y) ys)
  | UMax xs, b -> UMax (List.map (fun x -> u_add x b) xs)
  | a, UMax ys -> UMax (List.map (fun y -> u_add a y) ys)

let rec u_scale k v =
  if k >= 0. then
    match v with
    | ULin x -> ULin (Lin.scale k x)
    | UMin xs -> UMin (List.map (u_scale k) xs)
    | UMax xs -> UMax (List.map (u_scale k) xs)
  else
    match v with
    | ULin x -> ULin (Lin.scale k x)
    | UMin xs -> UMax (List.map (u_scale k) xs)  (* sign flip swaps min/max *)
    | UMax xs -> UMin (List.map (u_scale k) xs)

let rec to_uval ~bindings ~resvars (e : Ast.expr) : (uval, string) result =
  match e with
  | Ast.Call ("min", args) ->
      let* vs = collect ~bindings ~resvars args in
      Ok (UMin vs)
  | Ast.Call ("max", args) ->
      let* vs = collect ~bindings ~resvars args in
      Ok (UMax vs)
  | Ast.Binop (Ast.Add, a, b) ->
      let* va = to_uval ~bindings ~resvars a in
      let* vb = to_uval ~bindings ~resvars b in
      Ok (u_add va vb)
  | Ast.Binop (Ast.Sub, a, b) ->
      let* va = to_uval ~bindings ~resvars a in
      let* vb = to_uval ~bindings ~resvars b in
      Ok (u_add va (u_scale (-1.) vb))
  | Ast.Binop (Ast.Mul, a, b) -> (
      (* one side must be a constant *)
      let const_of e =
        match to_linear ~bindings ~resvars e with
        | Ok l when Lin.is_constant l -> Some (Lin.constant l)
        | _ -> None
      in
      match (const_of a, const_of b) with
      | Some k, _ ->
          let* vb = to_uval ~bindings ~resvars b in
          Ok (u_scale k vb)
      | _, Some k ->
          let* va = to_uval ~bindings ~resvars a in
          Ok (u_scale k va)
      | None, None -> err "non-linear utility: product of resources")
  | Ast.Binop (Ast.Div, a, b) -> (
      match to_linear ~bindings ~resvars b with
      | Ok l when Lin.is_constant l && Lin.constant l <> 0. ->
          let* va = to_uval ~bindings ~resvars a in
          Ok (u_scale (1. /. Lin.constant l) va)
      | _ -> err "non-linear utility: division by a resource")
  | e ->
      let* l = to_linear ~bindings ~resvars e in
      Ok (ULin l)

and collect ~bindings ~resvars args =
  List.fold_left
    (fun acc e ->
      let* acc = acc in
      let* v = to_uval ~bindings ~resvars e in
      Ok (v :: acc))
    (Ok []) args
  |> Result.map List.rev

(* Normalize a uval to alternatives of min-lists:
   result = max over branches of (min over the branch's list). *)
let rec u_branches (v : uval) : Lin.t list list =
  match v with
  | ULin l -> [ [ l ] ]
  | UMax vs -> List.concat_map u_branches vs
  | UMin vs ->
      (* cross product: min(max(a,b), c) = max(min(a,c), min(b,c)) *)
      let alts = List.map u_branches vs in
      List.fold_left
        (fun acc alt ->
          List.concat_map
            (fun chosen -> List.map (fun more -> chosen @ more) alt)
            acc)
        [ [] ] alts

(* ------------------------------------------------------------------ *)
(* Constraint extraction (κ)                                            *)
(* ------------------------------------------------------------------ *)

(* A boolean condition over resources in DNF: a list of conjunctions, each
   being a list of polynomials required >= 0. *)
let rec cond_dnf ~bindings ~resvars (e : Ast.expr) :
    (Lin.t list list, string) result =
  match e with
  | Ast.Bool true -> Ok [ [] ]
  | Ast.Bool false -> Ok []
  | Ast.Binop (Ast.And, a, b) ->
      let* da = cond_dnf ~bindings ~resvars a in
      let* db = cond_dnf ~bindings ~resvars b in
      Ok (List.concat_map (fun ca -> List.map (fun cb -> ca @ cb) db) da)
  | Ast.Binop (Ast.Or, a, b) ->
      let* da = cond_dnf ~bindings ~resvars a in
      let* db = cond_dnf ~bindings ~resvars b in
      Ok (da @ db)
  | Ast.Binop ((Ast.Ge | Ast.Gt), a, b) ->
      let* la = to_linear ~bindings ~resvars a in
      let* lb = to_linear ~bindings ~resvars b in
      Ok [ [ Lin.sub la lb ] ]
  | Ast.Binop ((Ast.Le | Ast.Lt), a, b) ->
      let* la = to_linear ~bindings ~resvars a in
      let* lb = to_linear ~bindings ~resvars b in
      Ok [ [ Lin.sub lb la ] ]
  | Ast.Binop (Ast.Eq, a, b) ->
      let* la = to_linear ~bindings ~resvars a in
      let* lb = to_linear ~bindings ~resvars b in
      Ok [ [ Lin.sub la lb; Lin.sub lb la ] ]
  | _ -> err "unsupported condition in util (§III-A f)"

(* ------------------------------------------------------------------ *)
(* Utility summary                                                      *)
(* ------------------------------------------------------------------ *)

type util_branch = { constraints : Lin.t list; utility : Lin.t list }

type util_summary = util_branch list

let default_utility = [ { constraints = []; utility = [ Lin.const 0. ] } ]

let utility ?(bindings = no_bindings) (u : Ast.util_decl) =
  let resvars = [ u.uparam ] in
  (* walk the if/return tree accumulating path conditions *)
  let rec walk conds stmts acc =
    match stmts with
    | [] -> Ok acc
    | { Ast.sk = Ast.If (c, t, f); _ } :: rest ->
        let* dnf = cond_dnf ~bindings ~resvars c in
        let* acc =
          List.fold_left
            (fun acc conj ->
              let* acc = acc in
              walk (conj :: conds) t acc)
            (Ok acc) dnf
        in
        (* the negated branch of a linear condition is not representable as
           >= constraints in general; the paper's semantics is "utility is
           u_i once C_i >= 0", so else-branches and subsequent statements
           are additional alternatives without the negation. *)
        let* acc = walk conds f acc in
        walk conds rest acc
    | { Ast.sk = Ast.Return (Some e); _ } :: _ ->
        let* v = to_uval ~bindings ~resvars e in
        let branches = u_branches v in
        let conj = List.concat conds in
        Ok
          (acc
          @ List.map
              (fun utility -> { constraints = conj; utility })
              branches)
    | { Ast.sk = Ast.Return None; _ } :: _ -> err "util must return a value"
    | { Ast.sk =
          ( Ast.Decl _ | Ast.Assign _ | Ast.Transit _ | Ast.While _
          | Ast.Send _ | Ast.ExprStmt _ );
        _ }
      :: _ ->
        err "util may contain only if-then-else and return"
  in
  let* branches = walk [] u.ubody [] in
  if branches = [] then err "util has no reachable return"
  else Ok branches

let eval_utility branch res =
  let env i = if i < Array.length res then res.(i) else 0. in
  List.fold_left
    (fun acc l -> Float.min acc (Lin.eval env l))
    infinity branch.utility

let branch_feasible branch res =
  let env i = if i < Array.length res then res.(i) else 0. in
  List.for_all (fun c -> Lin.eval env c >= -1e-9) branch.constraints

(* ------------------------------------------------------------------ *)
(* Filter evaluation (φ^s)                                              *)
(* ------------------------------------------------------------------ *)

let proto_of_string = function
  | "tcp" -> Some Farm_net.Flow.Tcp
  | "udp" -> Some Farm_net.Flow.Udp
  | "icmp" -> Some Farm_net.Flow.Icmp
  | _ -> None

let rec eval_filter ?(bindings = no_bindings) (e : Ast.expr) :
    (Filter.t, string) result =
  match e with
  | Ast.Bool true -> Ok Filter.True
  | Ast.Bool false -> Ok Filter.False
  | Ast.AnyLit -> Ok (Filter.atom Filter.Any)
  | Ast.Var v -> (
      match bindings v with
      | Some (Value.FilterV f) -> Ok f
      | Some _ -> err "variable %s is not a filter" v
      | None -> err "analysis: unbound filter variable %s" v)
  | Ast.Binop (Ast.And, a, b) ->
      let* fa = eval_filter ~bindings a in
      let* fb = eval_filter ~bindings b in
      Ok (Filter.And (fa, fb))
  | Ast.Binop (Ast.Or, a, b) ->
      let* fa = eval_filter ~bindings a in
      let* fb = eval_filter ~bindings b in
      Ok (Filter.Or (fa, fb))
  | Ast.Unop (Ast.Not, a) ->
      let* fa = eval_filter ~bindings a in
      Ok (Filter.Not fa)
  | Ast.FilterAtom (head, arg) -> (
      let const_str = function
        | Ast.String s -> Ok s
        | Ast.Var v -> (
            match bindings v with
            | Some (Value.Str s) -> Ok s
            | _ -> err "filter argument %s is not a constant string" v)
        | _ -> err "expected a string filter argument"
      in
      let const_int = function
        | Ast.Int i -> Ok i
        | Ast.Var v -> (
            match bindings v with
            | Some (Value.Num n) -> Ok (int_of_float n)
            | _ -> err "filter argument %s is not a constant number" v)
        | _ -> err "expected a numeric filter argument"
      in
      match (head, arg) with
      | _, Ast.AnyLit -> Ok (Filter.atom Filter.Any)
      | Ast.SrcIP, a ->
          let* s = const_str a in
          (match Farm_net.Ipaddr.Prefix.of_string_opt s with
          | Some p -> Ok (Filter.atom (Filter.Src_ip p))
          | None -> err "bad IP prefix %S" s)
      | Ast.DstIP, a ->
          let* s = const_str a in
          (match Farm_net.Ipaddr.Prefix.of_string_opt s with
          | Some p -> Ok (Filter.atom (Filter.Dst_ip p))
          | None -> err "bad IP prefix %S" s)
      | Ast.SrcPort, a ->
          let* i = const_int a in
          Ok (Filter.atom (Filter.Src_port i))
      | Ast.DstPort, a ->
          let* i = const_int a in
          Ok (Filter.atom (Filter.Dst_port i))
      | Ast.PortF, a ->
          let* i = const_int a in
          Ok (Filter.atom (Filter.Port i))
      | Ast.ProtoF, a -> (
          let* s = const_str a in
          match proto_of_string s with
          | Some p -> Ok (Filter.atom (Filter.Proto p))
          | None -> err "unknown protocol %S" s))
  | _ -> err "expression is not a filter"

(* ------------------------------------------------------------------ *)
(* Polling analysis                                                     *)
(* ------------------------------------------------------------------ *)

type ival_spec = Const_ival of float | Inv_linear of Lin.t

let poll_rate spec res =
  match spec with
  | Const_ival iv -> if iv > 0. then 1. /. iv else 0.
  | Inv_linear l ->
      let env i = if i < Array.length res then res.(i) else 0. in
      Float.max 0. (Lin.eval env l)

(* Evaluate an ival expression as either linear or constant/linear
   (reciprocal form).  The paper requires the inverse of ival to be
   linear. *)
type rexpr = RLin of Lin.t | RQuot of float * Lin.t  (* c / lin *)

let rec eval_rexpr ~bindings (e : Ast.expr) : (rexpr, string) result =
  let lin e =
    match to_linear ~bindings ~resvars:[] e with
    | Ok l -> Ok (RLin l)
    | Error e -> Error e
  in
  match e with
  | Ast.Binop (Ast.Div, a, b) -> (
      let* ra = eval_rexpr ~bindings a in
      let* rb = eval_rexpr ~bindings b in
      match (ra, rb) with
      | RLin la, RLin lb when Lin.is_constant lb ->
          if Lin.constant lb = 0. then err "ival divides by zero"
          else Ok (RLin (Lin.scale (1. /. Lin.constant lb) la))
      | RLin la, RLin lb when Lin.is_constant la ->
          Ok (RQuot (Lin.constant la, lb))
      | RQuot (c, l), RLin k when Lin.is_constant k && Lin.constant k <> 0. ->
          Ok (RQuot (c /. Lin.constant k, l))
      | _ -> err "ival must be constant or constant/linear(resources)")
  | Ast.Binop (Ast.Mul, a, b) -> (
      let* ra = eval_rexpr ~bindings a in
      let* rb = eval_rexpr ~bindings b in
      match (ra, rb) with
      | RLin la, RLin lb when Lin.is_constant la ->
          Ok (RLin (Lin.scale (Lin.constant la) lb))
      | RLin la, RLin lb when Lin.is_constant lb ->
          Ok (RLin (Lin.scale (Lin.constant lb) la))
      | RQuot (c, l), RLin k when Lin.is_constant k ->
          Ok (RQuot (c *. Lin.constant k, l))
      | RLin k, RQuot (c, l) when Lin.is_constant k ->
          Ok (RQuot (c *. Lin.constant k, l))
      | _ -> err "ival is not linear-invertible")
  | Ast.Binop (Ast.Add, a, b) | Ast.Binop (Ast.Sub, a, b) -> (
      let op = match e with Ast.Binop (Ast.Sub, _, _) -> Lin.sub | _ -> Lin.add in
      let* ra = eval_rexpr ~bindings a in
      let* rb = eval_rexpr ~bindings b in
      match (ra, rb) with
      | RLin la, RLin lb -> Ok (RLin (op la lb))
      | _ -> err "ival is not linear-invertible")
  | e -> (
      match lin e with
      | Ok r -> Ok r
      | Error _ -> (
          (* resource field? to_linear with res() base handles it *)
          match to_linear ~bindings ~resvars:[] e with
          | Ok l -> Ok (RLin l)
          | Error m -> Error m))

let ival_spec_of_expr ~bindings e : (ival_spec, string) result =
  let* r = eval_rexpr ~bindings e in
  match r with
  | RLin l when Lin.is_constant l ->
      let c = Lin.constant l in
      if c <= 0. then err "ival must be positive" else Ok (Const_ival c)
  | RLin _ ->
      err "ival must be constant or constant/linear so that 1/ival is linear"
  | RQuot (c, l) ->
      if c = 0. then err "ival must be positive"
      else Ok (Inv_linear (Lin.scale (1. /. c) l))

type poll_summary = {
  poll_name : string;
  ptrig : Ast.trigger_type;
  what : Filter.t;
  subjects : Filter.subject list;
  ival : ival_spec;
}

let polls ?(bindings = no_bindings) (m : Ast.machine) =
  List.fold_left
    (fun acc (t : Ast.trig_decl) ->
      let* acc = acc in
      match t.tinit with
      | None -> err "machine %s: trigger %s has no initializer" m.mname t.tname
      | Some (Ast.StructLit (_, fields)) ->
          let* ival =
            match List.assoc_opt "ival" fields with
            | Some e -> ival_spec_of_expr ~bindings e
            | None -> err "machine %s: trigger %s lacks .ival" m.mname t.tname
          in
          let* what =
            match (t.ttyp, List.assoc_opt "what" fields) with
            | Ast.Time, _ -> Ok Filter.True
            | _, Some e -> eval_filter ~bindings e
            | _, None ->
                err "machine %s: trigger %s lacks .what" m.mname t.tname
          in
          Ok
            ({ poll_name = t.tname; ptrig = t.ttyp; what;
               subjects = Filter.subjects what; ival }
            :: acc)
      | Some _ ->
          err "machine %s: trigger %s must be initialized with a struct"
            m.mname t.tname)
    (Ok []) m.mtrigs
  |> Result.map List.rev

(* ------------------------------------------------------------------ *)
(* Placement (π)                                                        *)
(* ------------------------------------------------------------------ *)

type seed_site = { candidates : int list; directive : int }

let eval_node_expr ~bindings ~topo (e : Ast.expr) : (int, string) result =
  match e with
  | Ast.Int i -> Ok i
  | Ast.String name | Ast.Var name -> (
      let by_binding () =
        match bindings name with
        | Some (Value.Num n) -> Some (int_of_float n)
        | Some (Value.Str s) -> (
            match
              List.find_opt
                (fun (n : Topology.node) -> n.name = s)
                (Topology.switches topo)
            with
            | Some n -> Some n.id
            | None -> None)
        | _ -> None
      in
      match
        List.find_opt
          (fun (n : Topology.node) -> n.name = name)
          (Topology.switches topo)
      with
      | Some n -> Ok n.id
      | None -> (
          match by_binding () with
          | Some id -> Ok id
          | None -> err "unknown switch %S in place directive" name))
  | _ -> err "place directive nodes must be ids or names"

let eval_int_expr ~bindings (e : Ast.expr) : (int, string) result =
  match e with
  | Ast.Int i -> Ok i
  | Ast.Var v -> (
      match bindings v with
      | Some (Value.Num n) -> Ok (int_of_float n)
      | _ -> err "range bound %s is not a constant" v)
  | _ -> err "range bound must be a constant integer"

let cmp_of_binop = function
  | Ast.Eq -> Ok ( = )
  | Ast.Le -> Ok ( <= )
  | Ast.Ge -> Ok ( >= )
  | Ast.Lt -> Ok ( < )
  | Ast.Gt -> Ok ( > )
  | op -> err "unsupported range comparison %s" (Ast.binop_to_string op)

(* Distance of switch index [i] on a switch-path of length [len] from the
   role's anchor. *)
let role_distance role i len =
  match role with
  | Ast.Sender -> i
  | Ast.Receiver -> len - 1 - i
  | Ast.Midpoint ->
      let mid2 = len - 1 in
      (* distance in full hops from the middle; for even-length paths both
         central switches are at distance 0 *)
      Stdlib.abs ((2 * i) - mid2) / 2

let placement ?(bindings = no_bindings) ~topo (m : Ast.machine) =
  let switch_ids = Topology.switch_ids topo in
  let resolve idx (p : Ast.place_decl) : (seed_site list, string) result =
    match p.pconstraint with
    | Ast.Anywhere -> (
        match p.pquant with
        | Ast.QAll ->
            Ok
              (List.map
                 (fun n -> { candidates = [ n ]; directive = idx })
                 switch_ids)
        | Ast.QAny -> Ok [ { candidates = switch_ids; directive = idx } ])
    | Ast.At_nodes es -> (
        let* ids =
          List.fold_left
            (fun acc e ->
              let* acc = acc in
              let* id = eval_node_expr ~bindings ~topo e in
              if not (List.mem id switch_ids) then
                err "node %d in place directive is not a switch" id
              else Ok (id :: acc))
            (Ok []) es
          |> Result.map List.rev
        in
        match p.pquant with
        | Ast.QAll ->
            Ok (List.map (fun n -> { candidates = [ n ]; directive = idx }) ids)
        | Ast.QAny -> Ok [ { candidates = ids; directive = idx } ])
    | Ast.On_range { role; pfilter; rop; rbound } ->
        let* f =
          match pfilter with
          | None -> Ok Filter.True
          | Some e -> eval_filter ~bindings e
        in
        let* bound = eval_int_expr ~bindings rbound in
        let* cmp = cmp_of_binop rop in
        let paths = Routing.paths_matching topo f in
        let match_set path =
          let sw = Routing.path_switches topo path in
          let len = List.length sw in
          List.filteri (fun i _ -> cmp (role_distance role i len) bound) sw
        in
        let per_path = List.map match_set paths in
        let per_path = List.filter (fun l -> l <> []) per_path in
        (match (p.pquant, rop) with
        | Ast.QAll, _ ->
            (* one pinned seed per matching node of every path *)
            Ok
              (List.concat_map
                 (fun nodes ->
                   List.map
                     (fun n -> { candidates = [ n ]; directive = idx })
                     nodes)
                 per_path)
        | Ast.QAny, Ast.Eq ->
            (* single seed: any of the matching nodes across paths *)
            let union =
              List.sort_uniq Int.compare (List.concat per_path)
            in
            if union = [] then Ok []
            else Ok [ { candidates = union; directive = idx } ]
        | Ast.QAny, _ ->
            (* one seed per path, choosable within the path's match set
               (the paper's π[[any receiver ex range <= 1]] example) *)
            Ok
              (List.map
                 (fun nodes -> { candidates = nodes; directive = idx })
                 per_path))
  in
  let places =
    if m.places = [] then
      [ { Ast.pquant = Ast.QAny; pconstraint = Ast.Anywhere;
          ploc = Ast.no_pos } ]
    else m.places
  in
  List.fold_left
    (fun acc (idx, p) ->
      let* acc = acc in
      let* sites = resolve idx p in
      Ok (acc @ sites))
    (Ok [])
    (List.mapi (fun i p -> (i, p)) places)

(* ------------------------------------------------------------------ *)
(* Whole-machine summary                                                *)
(* ------------------------------------------------------------------ *)

type summary = {
  machine : Ast.machine;
  seeds : seed_site list;
  state_utils : (string * util_summary) list;
  poll_vars : poll_summary list;
}

let summarize ?(bindings = no_bindings) ~topo (m : Ast.machine) =
  let* seeds = placement ~bindings ~topo m in
  let* poll_vars = polls ~bindings m in
  let* state_utils =
    List.fold_left
      (fun acc (s : Ast.state_decl) ->
        let* acc = acc in
        let* u =
          match s.sutil with
          | None -> Ok default_utility
          | Some u -> utility ~bindings u
        in
        Ok ((s.sname, u) :: acc))
      (Ok []) m.states
    |> Result.map List.rev
  in
  Ok { machine = m; seeds; state_utils; poll_vars }

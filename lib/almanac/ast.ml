(** Abstract syntax of Almanac — the automata language for network
    management and monitoring code (paper §III, Fig. 3).

    The AST is public by design: the parser produces it, the type checker
    validates it, the static analyses (placement, utility, polling) consume
    it, and the interpreter executes it. *)

(** Source position (1-based line/column) carried from the lexer through
    the parser, so every later pass — type checking, lint, bounds — can
    report positioned diagnostics. *)
type pos = { line : int; col : int }

(** Placeholder for synthesized nodes (XML-decompiled machines, default
    [place] directives, tests). *)
let no_pos = { line = 0; col = 0 }

let pos_to_string { line; col } = Printf.sprintf "%d:%d" line col

(** Value types ([typ] in the grammar). *)
type typ =
  | Tbool
  | Tint
  | Tlong
  | Tfloat
  | Tstring
  | Tlist
  | Tpacket
  | Taction  (** a TCAM action value *)
  | Tfilter
  | Tstats  (** polled statistics (array of counters) *)
  | Trule  (** a TCAM rule *)
  | Tresources  (** the [res()] structure *)
  | Tunit

(** Trigger-variable types ([tty]): all denote periodic events; [Poll] and
    [Probe] additionally carry a filter used for placement optimization. *)
type trigger_type = Time | Poll | Probe

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | And
  | Or
  | Eq
  | Neq
  | Le
  | Ge
  | Lt
  | Gt

type unop = Not | Neg

(** Heads of filter atoms ([fil]). *)
type filter_head = SrcIP | DstIP | SrcPort | DstPort | PortF | ProtoF

type expr =
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | AnyLit  (** the [ANY] wildcard *)
  | Var of string
  | Field of expr * string  (** [res().vCPU], [pkt.size] *)
  | Call of string * expr list
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | FilterAtom of filter_head * expr  (** [srcIP "10.1.1.4"], [port ANY] *)
  | StructLit of string * (string * expr) list
      (** [Poll { .ival = e, .what = e }] *)
  | ListLit of expr list

(** Message destination of [send] / source of [recv]. *)
type dest =
  | Harvester
  | Machine of string * expr option  (** machine name, optional [@dst] *)

(** Statements carry the position of their first token ([sloc]); the
    position of a synthesized statement is {!no_pos}. *)
type stmt = { sk : stmt_kind; sloc : pos }

and stmt_kind =
  | Decl of typ * string * expr option  (** local variable declaration *)
  | Assign of string * expr
  | Transit of expr
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | Return of expr option
  | Send of expr * dest
  | ExprStmt of expr

(** Wrap a statement kind, defaulting to an unknown position. *)
let stmt ?(loc = no_pos) sk = { sk; sloc = loc }

type trigger =
  | On_enter
  | On_exit
  | On_realloc
  | On_trigger_var of string * string option  (** [when (pollStats as stats)] *)
  | On_recv of typ * string * dest  (** [recv long newTh from harvester] *)

type event = { trigger : trigger; body : stmt list; evloc : pos }

type var_decl = {
  is_external : bool;
  vtyp : typ;
  vname : string;
  vinit : expr option;
  vloc : pos;
}

type trig_decl = {
  ttyp : trigger_type;
  tname : string;
  tinit : expr option;  (** a [Poll]/[Probe]/[Time] struct literal *)
  tloc : pos;
}

(** [util (x) { body }]: utility callback with syntactic restrictions
    (§III-A f) enforced by the type checker. *)
type util_decl = { uparam : string; ubody : stmt list; uloc : pos }

type state_decl = {
  sname : string;
  slocals : var_decl list;
  sutil : util_decl option;
  sevents : event list;
  stloc : pos;
}

type quant = QAll | QAny

type range_role = Sender | Receiver | Midpoint

(** Placement directives ([pl]). *)
type place_constraint =
  | Anywhere  (** [place all] / [place any]: every switch *)
  | At_nodes of expr list  (** explicit switch ids or names *)
  | On_range of {
      role : range_role;
      pfilter : expr option;  (** traffic filter selecting the paths *)
      rop : binop;  (** comparison against the distance *)
      rbound : expr;
    }

type place_decl = { pquant : quant; pconstraint : place_constraint; ploc : pos }

type machine = {
  mname : string;
  extends : string option;
  places : place_decl list;
  mvars : var_decl list;
  mtrigs : trig_decl list;
  states : state_decl list;
  mevents : event list;  (** machine-level events: apply in every state *)
  mloc : pos;
}

type func_decl = {
  fname : string;
  fret : typ;
  fparams : (typ * string) list;
  fbody : stmt list;
  floc : pos;
}

type program = { funcs : func_decl list; machines : machine list }

(* Erase every source position — for structural comparison of programs
   from different frontends (parser, XML interchange, pretty round-trip). *)
let rec strip_stmt (s : stmt) =
  let sk =
    match s.sk with
    | (Decl _ | Assign _ | Transit _ | Return _ | Send _ | ExprStmt _) as k ->
        k
    | If (c, t, f) -> If (c, List.map strip_stmt t, List.map strip_stmt f)
    | While (c, b) -> While (c, List.map strip_stmt b)
  in
  { sk; sloc = no_pos }

let strip_event (ev : event) =
  { ev with body = List.map strip_stmt ev.body; evloc = no_pos }

let strip_var (v : var_decl) = { v with vloc = no_pos }

let strip_state (st : state_decl) =
  { st with
    slocals = List.map strip_var st.slocals;
    sutil =
      Option.map
        (fun u -> { u with ubody = List.map strip_stmt u.ubody; uloc = no_pos })
        st.sutil;
    sevents = List.map strip_event st.sevents;
    stloc = no_pos }

let strip_pos_machine (m : machine) =
  { m with
    places = List.map (fun p -> { p with ploc = no_pos }) m.places;
    mvars = List.map strip_var m.mvars;
    mtrigs = List.map (fun t -> { t with tloc = no_pos }) m.mtrigs;
    states = List.map strip_state m.states;
    mevents = List.map strip_event m.mevents;
    mloc = no_pos }

let strip_pos (p : program) =
  { funcs =
      List.map
        (fun f -> { f with fbody = List.map strip_stmt f.fbody; floc = no_pos })
        p.funcs;
    machines = List.map strip_pos_machine p.machines }

let typ_to_string = function
  | Tbool -> "bool"
  | Tint -> "int"
  | Tlong -> "long"
  | Tfloat -> "float"
  | Tstring -> "string"
  | Tlist -> "list"
  | Tpacket -> "packet"
  | Taction -> "action"
  | Tfilter -> "filter"
  | Tstats -> "stats"
  | Trule -> "rule"
  | Tresources -> "resources"
  | Tunit -> "unit"

let trigger_type_to_string = function
  | Time -> "time"
  | Poll -> "poll"
  | Probe -> "probe"

let binop_to_string = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | And -> "and"
  | Or -> "or"
  | Eq -> "=="
  | Neq -> "<>"
  | Le -> "<="
  | Ge -> ">="
  | Lt -> "<"
  | Gt -> ">"

let filter_head_to_string = function
  | SrcIP -> "srcIP"
  | DstIP -> "dstIP"
  | SrcPort -> "srcPort"
  | DstPort -> "dstPort"
  | PortF -> "port"
  | ProtoF -> "proto"

(* Resource-bound inference (see bounds.mli).

   The constants below mirror the soil's charging sites exactly:
   - Soil polling: [poll_issue_cost] per ASIC poll (one per aggregation
     group and period), then per subscriber delivery
     [poll_process_cost * records/128 + poll_process_cost
      + aggregation_cost + ipc_cpu_cost], plus [handler_base_cost] charged
     by the seed's fire wrapper.
   - Time triggers: [handler_base_cost] by the soil timer and again by the
     fire wrapper.
   - Probes: free until a sampled packet matches, then [sample_cost]
     + PCIe transfer + IPC + dispatch — all traffic-dependent, so they
     only enter the worst case.
   - [addTCAMRule]/[removeTCAMRule]: [handler_base_cost] each (charged by
     the soil); [exec "svr N"]: N * [svr_iter_cost], other commands
     [exec_default_cost]; [transit]: [handler_base_cost]. *)

type cost_model = {
  cores : float;
  poll_issue_cost : float;
  poll_process_cost : float;
  handler_base_cost : float;
  sample_cost : float;
  aggregation_cost : float;
  ipc_cpu_cost : float;
  exec_default_cost : float;
  svr_iter_cost : float;
  counter_record_bytes : float;
  probe_packet_bytes : float;
  port_count : int;
  loop_bound : int;
  scalar_bytes : float;
  list_bytes : float;
}

let default_model =
  { cores = 4.;
    poll_issue_cost = 20e-6;
    poll_process_cost = 3e-6;
    handler_base_cost = 6e-6;
    sample_cost = 10e-6;
    aggregation_cost = 1e-6;
    ipc_cpu_cost = 1e-6;
    exec_default_cost = 1e-3;
    svr_iter_cost = 60e-6;
    counter_record_bytes = 16.;
    probe_packet_bytes = 1500.;
    port_count = 32;
    loop_bound = 64;
    scalar_bytes = 64.;
    list_bytes = 1024. }

type demand = {
  vcpu_floor : float;
  vcpu_worst : float;
  ram_bytes : float;
  tcam_rules : int;
  pcie_reads : float;
  pcie_reads_worst : float;
  deterministic : bool;
}

(* Cost of one execution of a handler body.  [floor] counts only code that
   runs unconditionally; [worst] assumes every branch takes its most
   expensive path and every loop runs [loop_bound] times.  [tcam] is the
   number of addTCAMRule call sites reachable in one execution (worst
   case); [transits] records whether the body can change state. *)
type body_cost = { floor : float; worst : float; tcam : int; transits : bool }

let zero_cost = { floor = 0.; worst = 0.; tcam = 0; transits = false }

let add_cost a b =
  { floor = a.floor +. b.floor;
    worst = a.worst +. b.worst;
    tcam = a.tcam + b.tcam;
    transits = a.transits || b.transits }

(* Collect the cost of every call embedded in an expression. *)
let rec expr_cost m (e : Ast.expr) =
  match e with
  | Ast.Bool _ | Ast.Int _ | Ast.Float _ | Ast.String _ | Ast.AnyLit
  | Ast.Var _ ->
      zero_cost
  | Ast.Field (e, _) | Ast.Unop (_, e) | Ast.FilterAtom (_, e) ->
      expr_cost m e
  | Ast.Binop (_, a, b) -> add_cost (expr_cost m a) (expr_cost m b)
  | Ast.ListLit es -> List.fold_left (fun c e -> add_cost c (expr_cost m e)) zero_cost es
  | Ast.StructLit (_, fs) ->
      List.fold_left (fun c (_, e) -> add_cost c (expr_cost m e)) zero_cost fs
  | Ast.Call (fn, args) ->
      let args_cost =
        List.fold_left (fun c e -> add_cost c (expr_cost m e)) zero_cost args
      in
      let own =
        match fn with
        | "addTCAMRule" ->
            { zero_cost with floor = m.handler_base_cost;
              worst = m.handler_base_cost; tcam = 1 }
        | "removeTCAMRule" ->
            { zero_cost with floor = m.handler_base_cost;
              worst = m.handler_base_cost }
        | "exec" ->
            let c =
              match args with
              | [ Ast.String s ] -> (
                  match String.split_on_char ' ' s with
                  | [ "svr"; n ] -> (
                      match int_of_string_opt n with
                      | Some n -> float_of_int n *. m.svr_iter_cost
                      | None -> m.exec_default_cost)
                  | _ -> m.exec_default_cost)
              | _ -> m.exec_default_cost
            in
            { zero_cost with floor = c; worst = c }
        | _ -> zero_cost
      in
      add_cost args_cost own

let rec stmt_cost m (s : Ast.stmt) =
  match s.Ast.sk with
  | Ast.Decl (_, _, None) -> zero_cost
  | Ast.Decl (_, _, Some e) | Ast.Assign (_, e) | Ast.Return (Some e)
  | Ast.Send (e, _) | Ast.ExprStmt e ->
      expr_cost m e
  | Ast.Return None -> zero_cost
  | Ast.Transit e ->
      let c = expr_cost m e in
      { c with floor = c.floor +. m.handler_base_cost;
        worst = c.worst +. m.handler_base_cost; transits = true }
  | Ast.If (c, t, f) ->
      let cc = expr_cost m c in
      let tc = body_cost m t and fc = body_cost m f in
      (* only the condition runs unconditionally; TCAM sites in both arms
         count towards the installed-rules bound (the handler fires many
         times; different fires may take different arms) *)
      { floor = cc.floor;
        worst = cc.worst +. Float.max tc.worst fc.worst;
        tcam = cc.tcam + tc.tcam + fc.tcam;
        transits = cc.transits || tc.transits || fc.transits }
  | Ast.While (c, b) ->
      let cc = expr_cost m c in
      let bc = body_cost m b in
      let n = float_of_int m.loop_bound in
      { floor = cc.floor;
        worst = (n +. 1.) *. cc.worst +. (n *. bc.worst);
        tcam = cc.tcam + (m.loop_bound * bc.tcam);
        transits = cc.transits || bc.transits }

and body_cost m body =
  List.fold_left (fun c s -> add_cost c (stmt_cost m s)) zero_cost body

(* Sum the cost of every handler for [trig] active in state [st]:
   machine-level events apply in every state, in addition to the state's
   own. *)
let handlers_cost m (mach : Ast.machine) (st : Ast.state_decl) ~matches =
  let ev_cost acc (ev : Ast.event) =
    if matches ev.Ast.trigger then add_cost acc (body_cost m ev.Ast.body)
    else acc
  in
  let c = List.fold_left ev_cost zero_cost st.Ast.sevents in
  List.fold_left ev_cost c mach.Ast.mevents

let matches_var name = function
  | Ast.On_trigger_var (n, _) -> n = name
  | _ -> false

let records_of_subject m = function
  | Farm_net.Filter.All_ports -> m.port_count
  | Farm_net.Filter.Port_counter _ | Farm_net.Filter.Prefix_counter _
  | Farm_net.Filter.Proto_counter _ ->
      1

let ram_of_vars m (vars : Ast.var_decl list) =
  List.fold_left
    (fun acc (v : Ast.var_decl) ->
      acc
      +.
      match v.Ast.vtyp with
      | Ast.Tlist | Ast.Tstats -> m.list_bytes
      | _ -> m.scalar_bytes)
    0. vars

let infer ?(model = default_model) ~(machine : Ast.machine)
    ~(polls : Analysis.poll_summary list) ~(res : float array) () =
  let m = model in
  let states = machine.Ast.states in
  (* Per-state, per-trigger-variable cost of one firing; min/max over
     states gives floor/worst.  The floor uses the cheapest state: a seed
     is guaranteed to pay at least that much per firing wherever its
     transits take it. *)
  let min_max_over_states ~matches =
    match states with
    | [] -> (zero_cost, zero_cost)
    | _ ->
        let costs =
          List.map (fun st -> handlers_cost m machine st ~matches) states
        in
        let lo =
          List.fold_left
            (fun acc c -> if c.floor < acc.floor then c else acc)
            (List.hd costs) (List.tl costs)
        and hi =
          List.fold_left
            (fun acc c -> if c.worst > acc.worst then c else acc)
            (List.hd costs) (List.tl costs)
        in
        (lo, hi)
  in
  let acc_vcpu_floor = ref 0. in
  let acc_vcpu_worst = ref 0. in
  let acc_pcie = ref 0. in
  let acc_pcie_worst = ref 0. in
  let traffic_dependent = ref false in
  let body_conditional = ref false in
  let transits_in_handlers = ref false in
  List.iter
    (fun (p : Analysis.poll_summary) ->
      let rate = Analysis.poll_rate p.Analysis.ival res in
      let lo, hi = min_max_over_states ~matches:(matches_var p.Analysis.poll_name) in
      if lo.floor < hi.worst -. 1e-12 then body_conditional := true;
      if lo.transits || hi.transits then transits_in_handlers := true;
      match p.Analysis.ptrig with
      | Ast.Poll ->
          (* one delivery (and one handler fire) per subject per period *)
          let n_subj = List.length p.Analysis.subjects in
          let records =
            List.fold_left
              (fun acc s -> acc + records_of_subject m s)
              0 p.Analysis.subjects
          in
          let per_delivery =
            (m.poll_process_cost *. float_of_int records
             /. float_of_int (128 * max 1 n_subj))
            +. m.poll_process_cost +. m.aggregation_cost +. m.ipc_cpu_cost
            +. m.handler_base_cost
          in
          let issue = float_of_int n_subj *. m.poll_issue_cost in
          let fixed = rate *. (issue +. (float_of_int n_subj *. per_delivery)) in
          acc_vcpu_floor :=
            !acc_vcpu_floor
            +. fixed +. (rate *. float_of_int n_subj *. lo.floor);
          acc_vcpu_worst :=
            !acc_vcpu_worst
            +. fixed +. (rate *. float_of_int n_subj *. hi.worst);
          let reads = rate *. float_of_int records in
          acc_pcie := !acc_pcie +. reads;
          acc_pcie_worst := !acc_pcie_worst +. reads
      | Ast.Time ->
          (* soil timer charges dispatch once, the fire wrapper again *)
          let fixed = rate *. 2. *. m.handler_base_cost in
          acc_vcpu_floor := !acc_vcpu_floor +. fixed +. (rate *. lo.floor);
          acc_vcpu_worst := !acc_vcpu_worst +. fixed +. (rate *. hi.worst)
      | Ast.Probe ->
          (* nothing guaranteed: charges only when sampled traffic
             matches.  Worst case: every sampling tick delivers. *)
          traffic_dependent := true;
          let per_hit =
            m.sample_cost +. m.ipc_cpu_cost +. m.handler_base_cost
            +. hi.worst
          in
          acc_vcpu_worst := !acc_vcpu_worst +. (rate *. per_hit);
          acc_pcie_worst :=
            !acc_pcie_worst
            +. (rate *. m.probe_packet_bytes /. m.counter_record_bytes))
    polls;
  (* recv / enter / exit / realloc handlers run on events that are not
     rate-bound by a subscription; they contribute to the worst case via
     transits (each transit fires exit+enter once) but have no standalone
     rate.  Count their TCAM sites though — they can install rules. *)
  let all_bodies =
    List.concat_map (fun (st : Ast.state_decl) ->
        List.map (fun (ev : Ast.event) -> ev.Ast.body) st.Ast.sevents)
      states
    @ List.map (fun (ev : Ast.event) -> ev.Ast.body) machine.Ast.mevents
  in
  let tcam_rules =
    List.fold_left (fun acc b -> acc + (body_cost m b).tcam) 0 all_bodies
  in
  let ram =
    ram_of_vars m machine.Ast.mvars
    +. List.fold_left
         (fun acc (st : Ast.state_decl) ->
           Float.max acc (ram_of_vars m st.Ast.slocals))
         0. states
  in
  let deterministic =
    (not !traffic_dependent) && (not !body_conditional)
    && not !transits_in_handlers
  in
  { vcpu_floor = !acc_vcpu_floor;
    vcpu_worst = !acc_vcpu_worst;
    ram_bytes = ram;
    tcam_rules;
    pcie_reads = !acc_pcie;
    pcie_reads_worst = !acc_pcie_worst;
    deterministic }

(* ------------------------------------------------------------------ *)
(* B201: util-declared envelope vs. inferred floor                     *)

module Lin = Farm_optim.Lin_expr

let vcpu_idx = Analysis.resource_index Analysis.VCpu

(* Lower bound a single-variable constraint [a*x + k >= 0] implies for
   resource [i]; [None] when the constraint involves other variables or
   only bounds [x] from above. *)
let implied_lower i (c : Lin.t) =
  match Lin.vars c with
  | [ j ] when j = i ->
      let a = Lin.coeff c i and k = Lin.constant c in
      if a > 0. then Some (-.k /. a) else None
  | _ -> None

let branch_lower i (b : Analysis.util_branch) =
  List.fold_left
    (fun acc c ->
      match implied_lower i c with
      | Some lb -> Float.max acc lb
      | None -> acc)
    0. b.Analysis.constraints

let branch_mentions i (b : Analysis.util_branch) =
  List.exists (fun c -> List.mem i (Lin.vars c)) b.Analysis.constraints

let cross_check ?(model = default_model) ?file ~(machine : Ast.machine)
    ~(polls : Analysis.poll_summary list)
    ~(state_utils : (string * Analysis.util_summary) list) () =
  List.filter_map
    (fun (sname, (branches : Analysis.util_summary)) ->
      let cpu_branches = List.filter (branch_mentions vcpu_idx) branches in
      if cpu_branches = [] then None
      else
        (* the placement may pick any feasible branch: the seed is only
           guaranteed the cheapest declared envelope *)
        let declared =
          List.fold_left
            (fun acc b -> Float.min acc (branch_lower vcpu_idx b))
            infinity cpu_branches
        in
        (* evaluate rate-dependent polls at the declared allocation *)
        let res = Array.make Analysis.n_resources 0. in
        res.(vcpu_idx) <- declared;
        List.iter
          (fun (b : Analysis.util_branch) ->
            List.iter
              (fun c ->
                List.iter
                  (fun i ->
                    match implied_lower i c with
                    | Some lb when lb > res.(i) -> res.(i) <- lb
                    | _ -> ())
                  (Lin.vars c))
              b.Analysis.constraints)
          cpu_branches;
        let d = infer ~model ~machine ~polls ~res () in
        if d.vcpu_floor > declared +. 1e-9 then
          let st =
            List.find_opt
              (fun (s : Ast.state_decl) -> s.Ast.sname = sname)
              machine.Ast.states
          in
          let pos =
            match st with
            | Some { Ast.sutil = Some u; _ } -> u.Ast.uloc
            | Some s -> s.Ast.stloc
            | None -> Ast.no_pos
          in
          Some
            (Diagnostic.warningf ?file ~pos ~code:"B201"
               "machine %s, state %s: util constraints admit %.3f vCPU \
                cores but subscriptions alone consume %.3f cores"
               machine.Ast.mname sname declared d.vcpu_floor)
        else None)
    state_utils

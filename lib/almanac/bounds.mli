(** Resource-bound inference: abstract interpretation of a machine's
    handlers against the soil cost model, yielding per-seed worst-case
    VCpu / Ram / TcamR / Pcie demands.

    The pass mirrors exactly what the soil charges at runtime (poll issue
    and delivery, IPC, handler dispatch, [exec], TCAM updates, transits)
    and splits the result into a deterministic {e floor} — the cost the
    seed's subscriptions incur every second regardless of traffic — and a
    {e worst case} that adds conditional handler-body costs at full
    trigger rate.  The floor is exact for machines whose handlers have no
    traffic-dependent branches ([deterministic = true]).

    [Farm_runtime] mirrors these constants in [Cpu_model]; the record
    lives here so the almanac layer stays independent of the runtime. *)

type cost_model = {
  cores : float;
  poll_issue_cost : float;  (** per ASIC poll *)
  poll_process_cost : float;  (** per delivery (plus a per-record share) *)
  handler_base_cost : float;  (** per handler dispatch / TCAM op / transit *)
  sample_cost : float;  (** per sampled probe packet *)
  aggregation_cost : float;  (** per delivery when polls aggregate *)
  ipc_cpu_cost : float;  (** soil→seed delivery (shared buffer, threads) *)
  exec_default_cost : float;  (** [exec] with an unknown command *)
  svr_iter_cost : float;  (** per iteration of [exec "svr N"] *)
  counter_record_bytes : float;  (** bytes per counter read over PCIe *)
  probe_packet_bytes : float;  (** assumed packet size for probe PCIe *)
  port_count : int;  (** ports an [All_ports] poll reads *)
  loop_bound : int;  (** assumed worst-case [while] iterations *)
  scalar_bytes : float;  (** RAM per scalar variable *)
  list_bytes : float;  (** RAM per list/stats variable *)
}

(** Matches [Farm_runtime.Cpu_model.default] and the default soil
    configuration (aggregated polls, shared-buffer IPC, threads). *)
val default_model : cost_model

type demand = {
  vcpu_floor : float;
      (** cores consumed by subscriptions alone (deterministic) *)
  vcpu_worst : float;  (** cores with every handler body at full cost *)
  ram_bytes : float;
  tcam_rules : int;  (** worst-case concurrently installed rules *)
  pcie_reads : float;  (** deterministic counter reads per second *)
  pcie_reads_worst : float;  (** plus worst-case probe samples *)
  deterministic : bool;
      (** no probe triggers, no conditional costs, no transits in
          periodic handlers: [vcpu_floor] = [vcpu_worst] = actual *)
}

(** [infer ~machine ~polls ~res ()] computes the demand of one seed of
    [machine] given the poll analysis ({!Analysis.summarize}) and the
    resource allocation [res] (indexed by {!Analysis.resource_index};
    polling rates may depend on it). *)
val infer :
  ?model:cost_model ->
  machine:Ast.machine ->
  polls:Analysis.poll_summary list ->
  res:float array ->
  unit ->
  demand

(** Cross-check against the [util] constraint polynomials: for every
    state whose util declares a vCPU envelope, warn ([B201]) when the
    cheapest allocation the constraints admit understates the inferred
    deterministic floor — the seeder would grant the seed less CPU than
    its own subscriptions consume. *)
val cross_check :
  ?model:cost_model ->
  ?file:string ->
  machine:Ast.machine ->
  polls:Analysis.poll_summary list ->
  state_utils:(string * Analysis.util_summary) list ->
  unit ->
  Diagnostic.t list

(** Pure built-in functions of the Almanac runtime library (List. 1 plus
    list/stats helpers), shared by the reference interpreter and the
    compiled engine.  [table host] binds every built-in to a host once, so
    engines resolve a name to a closure a single time instead of string
    matching on every call. *)

let fail = Host.fail

let num f = Value.Num f
let arg1 = function [ a ] -> a | _ -> fail "expected 1 argument"
let arg2 = function [ a; b ] -> (a, b) | _ -> fail "expected 2 arguments"

let proto_of_string = function
  | "tcp" -> Farm_net.Flow.Tcp
  | "udp" -> Farm_net.Flow.Udp
  | "icmp" -> Farm_net.Flow.Icmp
  | s -> fail "unknown protocol %S" s

(* Evaluate a filter atom head applied to an already-evaluated argument. *)
let filter_atom_value head (arg : Value.t) : Farm_net.Filter.t =
  let open Farm_net in
  match (head, arg) with
  | _, Value.FilterV f -> f  (* ANY evaluates to a filter already *)
  | (Ast.SrcIP | Ast.DstIP), Value.Str s -> (
      match Ipaddr.Prefix.of_string_opt s with
      | Some p ->
          Filter.atom
            (if head = Ast.SrcIP then Filter.Src_ip p else Filter.Dst_ip p)
      | None -> fail "bad IP prefix %S in filter" s)
  | Ast.SrcPort, v -> Filter.atom (Filter.Src_port (int_of_float (Value.as_num v)))
  | Ast.DstPort, v -> Filter.atom (Filter.Dst_port (int_of_float (Value.as_num v)))
  | Ast.PortF, v -> Filter.atom (Filter.Port (int_of_float (Value.as_num v)))
  | Ast.ProtoF, Value.Str s -> Filter.atom (Filter.Proto (proto_of_string s))
  | _ -> fail "bad filter atom argument"

let min_fn args =
  let a, b = arg2 args in
  num (Float.min (Value.as_num a) (Value.as_num b))

let max_fn args =
  let a, b = arg2 args in
  num (Float.max (Value.as_num a) (Value.as_num b))

let size_fn args = num (float_of_int (List.length (Value.as_list (arg1 args))))

let is_list_empty_fn args = Value.Bool (Value.as_list (arg1 args) = [])

let append_fn args =
  let l, x = arg2 args in
  Value.List (Value.as_list l @ [ x ])

let nth_fn args =
  let l, i = arg2 args in
  let l = Value.as_list l and i = int_of_float (Value.as_num i) in
  match List.nth_opt l i with
  | Some v -> v
  | None -> fail "nth: index %d out of bounds (size %d)" i (List.length l)

let contains_elem_fn args =
  let l, x = arg2 args in
  Value.Bool (List.exists (Value.equal x) (Value.as_list l))

let remove_elem_fn args =
  let l, x = arg2 args in
  Value.List (List.filter (fun v -> not (Value.equal x v)) (Value.as_list l))

let index_of_fn args =
  let l, x = arg2 args in
  let rec go i = function
    | [] -> -1.
    | v :: rest -> if Value.equal x v then float_of_int i else go (i + 1) rest
  in
  num (go 0 (Value.as_list l))

let set_nth_fn args =
  match args with
  | [ l; i; x ] ->
      let l = Value.as_list l and i = int_of_float (Value.as_num i) in
      if i < 0 || i >= List.length l then
        fail "set_nth: index %d out of bounds (size %d)" i (List.length l)
      else Value.List (List.mapi (fun j v -> if j = i then x else v) l)
  | _ -> fail "set_nth expects 3 arguments"

let stat_fn args =
  let s, i = arg2 args in
  let s = Value.as_stats s and i = int_of_float (Value.as_num i) in
  if i >= 0 && i < Array.length s then num s.(i)
  else fail "stat: index %d out of bounds (size %d)" i (Array.length s)

let stats_size_fn args =
  num (float_of_int (Array.length (Value.as_stats (arg1 args))))

let stats_sum_fn args =
  num (Array.fold_left ( +. ) 0. (Value.as_stats (arg1 args)))

let drop_action_fn _ = Value.Action Farm_net.Tcam.Drop
let count_action_fn _ = Value.Action Farm_net.Tcam.Count

let rate_limit_action_fn args =
  Value.Action (Farm_net.Tcam.Rate_limit (Value.as_num (arg1 args)))

let qos_action_fn args =
  Value.Action (Farm_net.Tcam.Set_qos (int_of_float (Value.as_num (arg1 args))))

let mk_rule_fn args =
  let p, a = arg2 args in
  Value.Struct
    ("Rule", [ ("pattern", Value.FilterV (Value.as_filter p));
               ("act", Value.Action (Value.as_action a)) ])

let str_fn args = Value.Str (Value.to_string (arg1 args))

(* user invariant: fails the handler when the condition is false; the
   static counterpart is Reach's V403 proof obligation *)
let assert_fn args =
  if Value.truthy (arg1 args) then Value.Unit
  else fail "assertion failed"

let str_contains_fn args =
  let s, sub = arg2 args in
  let s = Value.as_str s and sub = Value.as_str sub in
  let n = String.length sub in
  let found = ref false in
  for i = 0 to String.length s - n do
    if String.sub s i n = sub then found := true
  done;
  Value.Bool !found

let floor_fn args = num (Float.floor (Value.as_num (arg1 args)))
let abs_fn args = num (Float.abs (Value.as_num (arg1 args)))

let log2_fn args =
  let x = Value.as_num (arg1 args) in
  num (if x <= 0. then 0. else Float.log x /. Float.log 2.)

let hash_fn args =
  num (float_of_int (Hashtbl.hash (Value.to_string (arg1 args)) land 0xFFFFFF))

(* Host-bound built-ins. *)

let log_fn (host : Host.host) args =
  host.h_log (Value.to_string (arg1 args));
  Value.Unit

let res_fn (host : Host.host) _args =
  let r = host.h_resources () in
  let field res =
    ( Analysis.resource_name res,
      num
        (let i = Analysis.resource_index res in
         if i < Array.length r then r.(i) else 0.) )
  in
  Value.Struct ("Resources", List.map field Analysis.all_resources)

let table (host : Host.host) : (string, Value.t list -> Value.t) Hashtbl.t =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (name, f) -> Hashtbl.replace tbl name f)
    [ ("min", min_fn); ("max", max_fn); ("size", size_fn);
      ("is_list_empty", is_list_empty_fn); ("append", append_fn);
      ("nth", nth_fn); ("contains_elem", contains_elem_fn);
      ("remove_elem", remove_elem_fn); ("index_of", index_of_fn);
      ("set_nth", set_nth_fn); ("stat", stat_fn);
      ("stats_size", stats_size_fn); ("stats_sum", stats_sum_fn);
      ("drop_action", drop_action_fn); ("count_action", count_action_fn);
      ("rate_limit_action", rate_limit_action_fn);
      ("qos_action", qos_action_fn); ("mkRule", mk_rule_fn);
      ("now", (fun _ -> num (host.h_now ())));
      ("log", log_fn host); ("str", str_fn);
      ("str_contains", str_contains_fn); ("floor", floor_fn);
      ("abs", abs_fn); ("log2", log2_fn); ("hash", hash_fn);
      ("res", res_fn host); ("assert", assert_fn) ];
  tbl

(** Pure built-in functions of the Almanac runtime library, shared by the
    reference interpreter and the compiled engine. *)

(** Parse a protocol name ("tcp" / "udp" / "icmp"). *)
val proto_of_string : string -> Farm_net.Flow.proto

(** Evaluate a filter atom head applied to an already-evaluated argument
    (an [ANY] argument is a filter already and passes through). *)
val filter_atom_value : Ast.filter_head -> Value.t -> Farm_net.Filter.t

(** [table host] binds every built-in to [host] once.  Engines build this
    table per instance so call sites resolve a built-in name to a closure a
    single time instead of string-matching on every call. *)
val table : Host.host -> (string, Value.t list -> Value.t) Hashtbl.t

(** Compilation of type-checked Almanac machines to slot-indexed closures.

    The reference interpreter ({!Interp}) resolves every variable through a
    string-keyed scope chain (event frame -> state locals -> machine
    globals) and every call through a string match, on every trigger
    firing.  This pass performs that resolution once:

    - every variable name is mapped to an integer slot in a flat
      [Value.t array] (one array for machine globals, one per-state array
      for state locals, one per-event/function array for the frame);
    - every expression and statement is compiled into an OCaml closure
      [env -> Value.t] / [env -> unit];
    - every call site gets an index into a per-instance array of
      pre-resolved closures (host builtin / Almanac function / pure
      builtin, resolved in the interpreter's precedence order by
      {!Exec.create});
    - event dispatch tables are precomputed per (state, trigger) pair,
      including the state-overrides-machine rule, so firing a trigger is
      an array index plus closure calls.

    The produced code is observationally equivalent to {!Interp} on
    type-checked programs; the dynamic corner cases of the interpreter
    (conditionally-executed declarations, progressive initializer
    visibility, transit initializers reading the *old* state's locals) are
    reproduced with an [absent] sentinel and per-slot presence checks —
    see DESIGN.md "Almanac execution pipeline".  Compile once per machine;
    instantiate many times with {!Exec.create}. *)

let fail = Host.fail

(* Unique sentinel marking a slot whose variable has not been bound yet
   (interpreter equivalent: the key is not in the hashtable).  Compared
   with physical equality; programs cannot forge it. *)
let absent : Value.t = Value.Str "\000almanac-absent"

(* ------------------------------------------------------------------ *)
(* Runtime environment                                                 *)
(* ------------------------------------------------------------------ *)

(* The mutable execution environment threaded through compiled closures.
   [locals_names] always describes the layout of [locals]: during a
   transition the state id already points at the new state while the
   locals still belong to the old one (initializers read the old scope,
   as in the interpreter). *)
type env = {
  host : Host.host;
  globals : Value.t array;
  mutable state : int;
  mutable locals : Value.t array;
  mutable locals_names : string array;
  mutable frame : Value.t array;
  mutable pending : string option;  (* transit target (a state name) *)
  mutable calls : (Value.t list -> Value.t) array;
      (* per call site, resolved by Exec.create *)
}

type ecode = env -> Value.t
type scode = env -> unit

(* ------------------------------------------------------------------ *)
(* Compiled program pieces                                             *)
(* ------------------------------------------------------------------ *)

type event_c = {
  ev_frame_size : int;
  ev_binding : int option;  (* frame slot of the trigger/recv binding *)
  ev_body : scode;
}

type recv_c = { rc_typ : Ast.typ; rc_dest : Ast.dest; rc_ev : event_c }

type state_c = {
  st_name : string;
  st_local_names : string array;
  st_local_inits : (int * ecode) array;
      (* (slot, initializer) in declaration order *)
  st_enter : event_c array;
  st_exit : event_c array;
  st_realloc : event_c array;
  st_triggers : event_c array array;  (* indexed by trigger id *)
  st_recv : recv_c array;  (* state events first, then machine events *)
}

type func_c = {
  fn_name : string;
  fn_nparams : int;
  fn_param_slots : int array;
  fn_frame_size : int;
  fn_body : scode;
}

(* ------------------------------------------------------------------ *)
(* Verification plan                                                   *)
(* ------------------------------------------------------------------ *)

(* An inspectable mirror of every resolution decision this pass makes
   (slot layouts, bound sets, dispatch tables, initializer order).  The
   closures above are opaque; the plan is data, so {!Equiv} can execute
   it symbolically against the interpreter semantics and tests can
   corrupt it to prove divergences are caught.  It is built *during*
   compilation from the same layout tables the closures capture — not
   re-derived — so a layout or dispatch bug shows up in the plan too. *)

type vframe = {
  vf_slots : (string * int) list;  (* name -> frame slot, sorted by slot *)
  vf_bound : string list;  (* names read without a presence check *)
  vf_size : int;
}

type vevent = {
  ve_frame : vframe;
  ve_binding : (string * int) option;
  ve_locals : (string * int) list option;
      (* static state-local table the body is specialized to; [None]
         resolves dynamically against the runtime locals_names *)
  ve_body : Ast.stmt list;
}

type vinit = Vexpr of Ast.expr | Vdefault of Ast.typ | Vunit

type vstate = {
  vs_name : string;
  vs_local_names : string array;
  vs_local_inits : (int * string * vinit) list;  (* declaration order *)
  vs_enter : vevent list;
  vs_exit : vevent list;
  vs_realloc : vevent list;
  vs_triggers : (string * vevent list) list;  (* per trigger name *)
  vs_recv : (Ast.typ * Ast.dest * vevent) list;  (* deliver order *)
}

type vfunc = {
  vfn_params : (string * int) list;  (* parameter order *)
  vfn_frame : vframe;
  vfn_body : Ast.stmt list;
}

type plan = {
  v_machine : string;
  v_initial : string;
  v_global_slots : (string * int) list;  (* sorted by slot *)
  v_global_inits : (int * string * bool * vinit) list;
      (* (slot, name, is_external, initializer) in declaration order *)
  v_trig_hooks : (string * Ast.trigger_type) list;
  v_trig_names : string list;
  v_states : vstate list;  (* declaration order; head = initial *)
  v_funcs : (string * vfunc) list;
}

type t = {
  c_machine : Ast.machine;
  c_n_globals : int;
  c_global_names : string array;
  c_global_slots : (string, int) Hashtbl.t;
  c_global_inits : (int * string * bool * ecode) array;
      (* (slot, name, is_external, initializer) in declaration order *)
  c_states : state_c array;
  c_state_ids : (string, int) Hashtbl.t;
  c_trig_ids : (string, int) Hashtbl.t;
  c_n_trigs : int;
  c_funcs : (string, func_c) Hashtbl.t;
  c_call_specs : (string * int) array;  (* (function name, arg count) *)
  c_plan : plan;
}

(* ------------------------------------------------------------------ *)
(* Compilation context and scopes                                      *)
(* ------------------------------------------------------------------ *)

type ctx = {
  cx_global_slots : (string, int) Hashtbl.t;
  cx_trig_hook : (string, Ast.trigger_type) Hashtbl.t;
      (* trigger-variable names: assignment notifies the host *)
  mutable cx_calls : (string * int) list;  (* reversed call-site specs *)
  mutable cx_n_calls : int;
}

(* Frame layout of one event or function body.  [l_bound] marks names that
   are guaranteed present on entry (parameters, trigger bindings) and can
   be read without a presence check. *)
type layout = {
  l_slots : (string, int) Hashtbl.t;
  l_bound : (string, unit) Hashtbl.t;
  mutable l_size : int;
}

let new_layout () =
  { l_slots = Hashtbl.create 8; l_bound = Hashtbl.create 4; l_size = 0 }

let layout_add lay name =
  match Hashtbl.find_opt lay.l_slots name with
  | Some i -> i
  | None ->
      let i = lay.l_size in
      lay.l_size <- i + 1;
      Hashtbl.replace lay.l_slots name i;
      i

let layout_add_bound lay name =
  let i = layout_add lay name in
  Hashtbl.replace lay.l_bound name ();
  i

(* Pre-pass: collect every declared name of a body (including branches
   that may not execute) so reads textually before a declaration resolve
   like the interpreter's dynamic frame lookup. *)
let rec collect_decls lay stmts =
  List.iter
    (fun (s : Ast.stmt) ->
      match s.Ast.sk with
      | Ast.Decl (_, n, _) -> ignore (layout_add lay n)
      | Ast.If (_, a, b) ->
          collect_decls lay a;
          collect_decls lay b
      | Ast.While (_, b) -> collect_decls lay b
      | Ast.Assign _ | Ast.Transit _ | Ast.Return _ | Ast.Send _
      | Ast.ExprStmt _ ->
          ())
    stmts

type scope = {
  sc_frame : layout option;  (* None: initializer context (no frame) *)
  sc_locals : (string, int) Hashtbl.t option;
      (* static layout of the state the code is specialized to; [None]
         resolves state locals dynamically against [env.locals_names]
         (initializers, function bodies) *)
}

(* ------------------------------------------------------------------ *)
(* Variable access                                                     *)
(* ------------------------------------------------------------------ *)

let global_read ctx name : ecode =
  match Hashtbl.find_opt ctx.cx_global_slots name with
  | Some g ->
      fun env ->
        let v = env.globals.(g) in
        if v != absent then v else fail "unbound variable %s" name
  | None -> fun _ -> fail "unbound variable %s" name

(* state locals, then globals *)
let outer_read ctx scope name : ecode =
  let g = global_read ctx name in
  match scope.sc_locals with
  | Some tbl -> (
      match Hashtbl.find_opt tbl name with
      | Some i ->
          fun env ->
            let v = env.locals.(i) in
            if v != absent then v else g env
      | None -> g)
  | None ->
      fun env ->
        let names = env.locals_names in
        let n = Array.length names in
        let rec go i =
          if i >= n then g env
          else if String.equal names.(i) name then
            let v = env.locals.(i) in
            if v != absent then v else g env
          else go (i + 1)
        in
        go 0

let compile_var ctx scope name : ecode =
  match scope.sc_frame with
  | Some lay -> (
      match Hashtbl.find_opt lay.l_slots name with
      | Some i ->
          if Hashtbl.mem lay.l_bound name then fun env -> env.frame.(i)
          else
            let outer = outer_read ctx scope name in
            fun env ->
              let v = env.frame.(i) in
              if v != absent then v else outer env
      | None -> outer_read ctx scope name)
  | None -> outer_read ctx scope name

type writer = env -> Value.t -> unit

let global_write ctx name : writer =
  match Hashtbl.find_opt ctx.cx_global_slots name with
  | Some g -> (
      let base env v =
        if env.globals.(g) == absent then
          fail "assignment to unbound variable %s" name;
        env.globals.(g) <- v
      in
      match Hashtbl.find_opt ctx.cx_trig_hook name with
      | Some tt ->
          fun env v ->
            base env v;
            env.host.h_set_trigger name tt v
      | None -> base)
  | None -> fun _ _ -> fail "assignment to unbound variable %s" name

let outer_write ctx scope name : writer =
  let g = global_write ctx name in
  match scope.sc_locals with
  | Some tbl -> (
      match Hashtbl.find_opt tbl name with
      | Some i ->
          fun env v ->
            if env.locals.(i) != absent then env.locals.(i) <- v else g env v
      | None -> g)
  | None ->
      fun env v ->
        let names = env.locals_names in
        let n = Array.length names in
        let rec go i =
          if i >= n then g env v
          else if String.equal names.(i) name then
            if env.locals.(i) != absent then env.locals.(i) <- v else g env v
          else go (i + 1)
        in
        go 0

let compile_assign_target ctx scope name : writer =
  match scope.sc_frame with
  | Some lay -> (
      match Hashtbl.find_opt lay.l_slots name with
      | Some i ->
          if Hashtbl.mem lay.l_bound name then fun env v -> env.frame.(i) <- v
          else
            let outer = outer_write ctx scope name in
            fun env v ->
              if env.frame.(i) != absent then env.frame.(i) <- v
              else outer env v
      | None -> outer_write ctx scope name)
  | None -> outer_write ctx scope name

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

let num f = Value.Num f

(* Evaluate compiled argument codes left to right (the interpreter uses
   [List.map], which the stdlib evaluates left to right). *)
let eval_args (codes : ecode array) env : Value.t list =
  let n = Array.length codes in
  let rec go i = if i >= n then [] else
    let v = codes.(i) env in
    v :: go (i + 1)
  in
  go 0

let rec compile_expr ctx scope (e : Ast.expr) : ecode =
  match e with
  | Ast.Bool b ->
      let v = Value.Bool b in
      fun _ -> v
  | Ast.Int i ->
      let v = num (float_of_int i) in
      fun _ -> v
  | Ast.Float f ->
      let v = num f in
      fun _ -> v
  | Ast.String s ->
      let v = Value.Str s in
      fun _ -> v
  | Ast.AnyLit ->
      let v = Value.FilterV (Farm_net.Filter.atom Farm_net.Filter.Any) in
      fun _ -> v
  | Ast.Var name -> compile_var ctx scope name
  | Ast.Field (b, f) ->
      let cb = compile_expr ctx scope b in
      fun env -> Value.field (cb env) f
  | Ast.Call (fname, args) ->
      let idx = ctx.cx_n_calls in
      ctx.cx_n_calls <- idx + 1;
      ctx.cx_calls <- (fname, List.length args) :: ctx.cx_calls;
      let codes = Array.of_list (List.map (compile_expr ctx scope) args) in
      (match codes with
      | [||] -> fun env -> env.calls.(idx) []
      | [| a |] -> fun env -> env.calls.(idx) [ a env ]
      | [| a; b |] ->
          fun env ->
            let va = a env in
            let vb = b env in
            env.calls.(idx) [ va; vb ]
      | codes -> fun env -> env.calls.(idx) (eval_args codes env))
  | Ast.Unop (Ast.Not, a) -> (
      let ca = compile_expr ctx scope a in
      fun env ->
        match ca env with
        | Value.Bool b -> Value.Bool (not b)
        | Value.FilterV f -> Value.FilterV (Farm_net.Filter.Not f)
        | v -> fail "'not' applied to %s" (Value.to_string v))
  | Ast.Unop (Ast.Neg, a) ->
      let ca = compile_expr ctx scope a in
      fun env -> num (-.Value.as_num (ca env))
  | Ast.Binop (op, a, b) -> compile_binop ctx scope op a b
  | Ast.FilterAtom (head, arg) ->
      let ca = compile_expr ctx scope arg in
      fun env -> Value.FilterV (Builtins.filter_atom_value head (ca env))
  | Ast.StructLit (name, fields) ->
      let codes =
        Array.of_list
          (List.map (fun (f, e) -> (f, compile_expr ctx scope e)) fields)
      in
      fun env ->
        let n = Array.length codes in
        let rec go i =
          if i >= n then []
          else
            let f, c = codes.(i) in
            let v = c env in
            (f, v) :: go (i + 1)
        in
        Value.Struct (name, go 0)
  | Ast.ListLit es ->
      let codes = Array.of_list (List.map (compile_expr ctx scope) es) in
      fun env -> Value.List (eval_args codes env)

and compile_binop ctx scope op a b : ecode =
  let ca = compile_expr ctx scope a in
  let cb = compile_expr ctx scope b in
  match op with
  | Ast.And -> (
      fun env ->
        match ca env with
        | Value.Bool false -> Value.Bool false
        | Value.Bool true -> (
            match cb env with
            | Value.Bool _ as r -> r
            | v -> fail "'and' on %s" (Value.to_string v))
        | Value.FilterV fa ->
            Value.FilterV (Farm_net.Filter.And (fa, Value.as_filter (cb env)))
        | v -> fail "'and' on %s" (Value.to_string v))
  | Ast.Or -> (
      fun env ->
        match ca env with
        | Value.Bool true -> Value.Bool true
        | Value.Bool false -> (
            match cb env with
            | Value.Bool _ as r -> r
            | v -> fail "'or' on %s" (Value.to_string v))
        | Value.FilterV fa ->
            Value.FilterV (Farm_net.Filter.Or (fa, Value.as_filter (cb env)))
        | v -> fail "'or' on %s" (Value.to_string v))
  | Ast.Eq ->
      fun env ->
        let va = ca env in
        let vb = cb env in
        Value.Bool (Value.equal va vb)
  | Ast.Neq ->
      fun env ->
        let va = ca env in
        let vb = cb env in
        Value.Bool (not (Value.equal va vb))
  | Ast.Le ->
      fun env ->
        let x = Value.as_num (ca env) in
        let y = Value.as_num (cb env) in
        Value.Bool (x <= y)
  | Ast.Ge ->
      fun env ->
        let x = Value.as_num (ca env) in
        let y = Value.as_num (cb env) in
        Value.Bool (x >= y)
  | Ast.Lt ->
      fun env ->
        let x = Value.as_num (ca env) in
        let y = Value.as_num (cb env) in
        Value.Bool (x < y)
  | Ast.Gt ->
      fun env ->
        let x = Value.as_num (ca env) in
        let y = Value.as_num (cb env) in
        Value.Bool (x > y)
  | Ast.Add -> (
      fun env ->
        match (ca env, cb env) with
        | Value.Str x, Value.Str y -> Value.Str (x ^ y)
        | va, vb -> num (Value.as_num va +. Value.as_num vb))
  | Ast.Sub ->
      fun env ->
        let va = ca env in
        let vb = cb env in
        num (Value.as_num va -. Value.as_num vb)
  | Ast.Mul ->
      fun env ->
        let va = ca env in
        let vb = cb env in
        num (Value.as_num va *. Value.as_num vb)
  | Ast.Div ->
      fun env ->
        let va = ca env in
        let vb = cb env in
        let x = Value.as_num va and y = Value.as_num vb in
        if y = 0. then fail "division by zero" else num (x /. y)

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

let nop_stmt : scode = fun _ -> ()

let seq (codes : scode list) : scode =
  match codes with
  | [] -> nop_stmt
  | [ c ] -> c
  | codes ->
      let arr = Array.of_list codes in
      fun env ->
        for i = 0 to Array.length arr - 1 do
          arr.(i) env
        done

let rec compile_stmt ctx scope (s : Ast.stmt) : scode =
  match s.Ast.sk with
  | Ast.Decl (typ, n, init) -> (
      let lay =
        match scope.sc_frame with
        | Some l -> l
        | None -> fail "internal: declaration outside a frame"
      in
      let slot = Hashtbl.find lay.l_slots n in
      match init with
      | Some e ->
          let c = compile_expr ctx scope e in
          fun env -> env.frame.(slot) <- c env
      | None -> fun env -> env.frame.(slot) <- Value.default_of_typ typ)
  | Ast.Assign (n, e) ->
      let c = compile_expr ctx scope e in
      let w = compile_assign_target ctx scope n in
      fun env -> w env (c env)
  | Ast.Transit e -> (
      match e with
      | Ast.Var s | Ast.String s ->
          let target = Some s in
          fun env -> env.pending <- target
      | e ->
          let c = compile_expr ctx scope e in
          fun env -> env.pending <- Some (Value.as_str (c env)))
  | Ast.If (c, th, el) ->
      let cc = compile_expr ctx scope c in
      let cth = compile_stmts ctx scope th in
      let cel = compile_stmts ctx scope el in
      fun env -> if Value.truthy (cc env) then cth env else cel env
  | Ast.While (c, body) ->
      let cc = compile_expr ctx scope c in
      let cbody = compile_stmts ctx scope body in
      fun env ->
        let fuel = ref 1_000_000 in
        while Value.truthy (cc env) do
          decr fuel;
          if !fuel <= 0 then fail "while loop exceeded iteration budget";
          cbody env
        done
  | Ast.Return None -> fun _ -> raise (Host.Return_exc Value.Unit)
  | Ast.Return (Some e) ->
      let c = compile_expr ctx scope e in
      fun env -> raise (Host.Return_exc (c env))
  | Ast.Send (e, dest) -> (
      let ce = compile_expr ctx scope e in
      match dest with
      | Ast.Harvester -> fun env -> env.host.h_send Host.To_harvester (ce env)
      | Ast.Machine (m, None) ->
          let tgt = Host.To_machine (m, None) in
          fun env -> env.host.h_send tgt (ce env)
      | Ast.Machine (m, Some d) ->
          let cd = compile_expr ctx scope d in
          fun env ->
            let tgt =
              Host.To_machine (m, Some (int_of_float (Value.as_num (cd env))))
            in
            env.host.h_send tgt (ce env))
  | Ast.ExprStmt e ->
      let c = compile_expr ctx scope e in
      fun env -> ignore (c env)

and compile_stmts ctx scope stmts =
  seq (List.map (compile_stmt ctx scope) stmts)

(* ------------------------------------------------------------------ *)
(* Events, states, functions                                           *)
(* ------------------------------------------------------------------ *)

(* Same trigger keys as the interpreter; used to apply the
   state-overrides-machine rule at compile time. *)
let trigger_key = function
  | Ast.On_enter -> "enter"
  | Ast.On_exit -> "exit"
  | Ast.On_realloc -> "realloc"
  | Ast.On_trigger_var (y, _) -> "var:" ^ y
  | Ast.On_recv (ty, _, d) ->
      let d =
        match d with
        | Ast.Harvester -> "harvester"
        | Ast.Machine (m, _) -> m
      in
      Printf.sprintf "recv:%s:%s" (Ast.typ_to_string ty) d

(* Deterministic plan snapshots of the mutable layout tables. *)
let tbl_to_slots tbl =
  Hashtbl.fold (fun name i acc -> (name, i) :: acc) tbl []
  |> List.sort (fun (_, a) (_, b) -> compare a b)

let vframe_of_layout lay =
  { vf_slots = tbl_to_slots lay.l_slots;
    vf_bound =
      Hashtbl.fold (fun n () acc -> n :: acc) lay.l_bound []
      |> List.sort compare;
    vf_size = lay.l_size }

let compile_event ctx state_tbl (ev : Ast.event) : event_c * vevent =
  let binding_name =
    match ev.trigger with
    | Ast.On_trigger_var (_, Some x) -> Some x
    | Ast.On_recv (_, n, _) -> Some n
    | _ -> None
  in
  let lay = new_layout () in
  (match binding_name with
  | Some n -> ignore (layout_add_bound lay n)
  | None -> ());
  collect_decls lay ev.body;
  let scope = { sc_frame = Some lay; sc_locals = Some state_tbl } in
  let body = compile_stmts ctx scope ev.body in
  let binding =
    match binding_name with
    | Some n -> Some (n, Hashtbl.find lay.l_slots n)
    | None -> None
  in
  ( { ev_frame_size = lay.l_size;
      ev_binding = Option.map snd binding;
      ev_body = body },
    { ve_frame = vframe_of_layout lay;
      ve_binding = binding;
      ve_locals = Some (tbl_to_slots state_tbl);
      ve_body = ev.body } )

(* Events applicable in a state for a key: state events override machine
   events when at least one state event matches. *)
let events_for (m : Ast.machine) (st : Ast.state_decl) key =
  let matches (e : Ast.event) = trigger_key e.trigger = key in
  let se = List.filter matches st.sevents in
  if se <> [] then se else List.filter matches m.mevents

let compile_state ctx (m : Ast.machine) trig_names (st : Ast.state_decl) :
    state_c * vstate =
  (* state-local slot layout (duplicate declarations share a slot, last
     initializer wins — hashtable-replace semantics) *)
  let local_tbl = Hashtbl.create 8 in
  let n_locals = ref 0 in
  let local_inits =
    List.map
      (fun (v : Ast.var_decl) ->
        let slot =
          match Hashtbl.find_opt local_tbl v.vname with
          | Some i -> i
          | None ->
              let i = !n_locals in
              incr n_locals;
              Hashtbl.replace local_tbl v.vname i;
              i
        in
        let init_scope = { sc_frame = None; sc_locals = None } in
        let code =
          match v.vinit with
          | Some e -> compile_expr ctx init_scope e
          | None ->
              let typ = v.vtyp in
              fun _ -> Value.default_of_typ typ
        in
        let vinit =
          match v.vinit with Some e -> Vexpr e | None -> Vdefault v.vtyp
        in
        ((slot, code), (slot, v.vname, vinit)))
      st.slocals
  in
  let local_names = Array.make !n_locals "" in
  Hashtbl.iter (fun name i -> local_names.(i) <- name) local_tbl;
  let compile_for key =
    List.map (compile_event ctx local_tbl) (events_for m st key)
  in
  let recv =
    List.filter_map
      (fun (ev : Ast.event) ->
        match ev.trigger with
        | Ast.On_recv (ty, _, dest) ->
            let ec, vc = compile_event ctx local_tbl ev in
            Some ({ rc_typ = ty; rc_dest = dest; rc_ev = ec }, (ty, dest, vc))
        | _ -> None)
      (st.sevents @ m.mevents)
  in
  let enter = compile_for "enter" in
  let exit_ = compile_for "exit" in
  let realloc = compile_for "realloc" in
  let triggers =
    Array.map (fun name -> (name, compile_for ("var:" ^ name))) trig_names
  in
  ( { st_name = st.sname;
      st_local_names = local_names;
      st_local_inits = Array.of_list (List.map fst local_inits);
      st_enter = Array.of_list (List.map fst enter);
      st_exit = Array.of_list (List.map fst exit_);
      st_realloc = Array.of_list (List.map fst realloc);
      st_triggers = Array.map (fun (_, evs) -> Array.of_list (List.map fst evs)) triggers;
      st_recv = Array.of_list (List.map fst recv) },
    { vs_name = st.sname;
      vs_local_names = Array.copy local_names;
      vs_local_inits = List.map snd local_inits;
      vs_enter = List.map snd enter;
      vs_exit = List.map snd exit_;
      vs_realloc = List.map snd realloc;
      vs_triggers =
        Array.to_list
          (Array.map (fun (name, evs) -> (name, List.map snd evs)) triggers);
      vs_recv = List.map snd recv } )

let compile_func ctx (fd : Ast.func_decl) : func_c * vfunc =
  let lay = new_layout () in
  let param_slots =
    Array.of_list
      (List.map (fun (_, n) -> layout_add_bound lay n) fd.fparams)
  in
  collect_decls lay fd.fbody;
  (* function bodies resolve non-frame names dynamically: the state the
     machine occupies at call time is unknown *)
  let scope = { sc_frame = Some lay; sc_locals = None } in
  let body = compile_stmts ctx scope fd.fbody in
  ( { fn_name = fd.fname;
      fn_nparams = List.length fd.fparams;
      fn_param_slots = param_slots;
      fn_frame_size = lay.l_size;
      fn_body = body },
    { vfn_params =
        List.map2
          (fun (_, n) slot -> (n, slot))
          fd.fparams
          (Array.to_list param_slots);
      vfn_frame = vframe_of_layout lay;
      vfn_body = fd.fbody } )

(* ------------------------------------------------------------------ *)
(* Machine compilation                                                 *)
(* ------------------------------------------------------------------ *)

(* Trigger names a machine can react to: declared trigger variables plus
   any name referenced by a [when] event (firing any other name is a
   no-op, as in the interpreter). *)
let trigger_names (m : Ast.machine) =
  let seen = Hashtbl.create 8 in
  let order = ref [] in
  let add name =
    if not (Hashtbl.mem seen name) then begin
      Hashtbl.replace seen name ();
      order := name :: !order
    end
  in
  List.iter (fun (td : Ast.trig_decl) -> add td.tname) m.mtrigs;
  let scan_event (e : Ast.event) =
    match e.trigger with
    | Ast.On_trigger_var (y, _) -> add y
    | _ -> ()
  in
  List.iter scan_event m.mevents;
  List.iter
    (fun (st : Ast.state_decl) -> List.iter scan_event st.sevents)
    m.states;
  Array.of_list (List.rev !order)

let compile ~(program : Ast.program) ~(machine : string) : t =
  let m =
    match
      List.find_opt
        (fun (m : Ast.machine) -> m.mname = machine)
        program.machines
    with
    | Some m ->
        if m.extends <> None then
          fail "machine %s still has unresolved inheritance; run Typecheck.check"
            machine
        else m
    | None -> fail "program has no machine %s" machine
  in
  if m.states = [] then fail "machine %s has no states" machine;
  (* global slot layout: machine variables, then trigger variables
     (duplicates share a slot, later initializer wins) *)
  let global_slots = Hashtbl.create 16 in
  let n_globals = ref 0 in
  let slot_of name =
    match Hashtbl.find_opt global_slots name with
    | Some i -> i
    | None ->
        let i = !n_globals in
        incr n_globals;
        Hashtbl.replace global_slots name i;
        i
  in
  let trig_hook = Hashtbl.create 4 in
  List.iter
    (fun (td : Ast.trig_decl) -> Hashtbl.replace trig_hook td.tname td.ttyp)
    m.mtrigs;
  let ctx =
    { cx_global_slots = global_slots;
      cx_trig_hook = trig_hook;
      cx_calls = [];
      cx_n_calls = 0 }
  in
  let init_scope = { sc_frame = None; sc_locals = None } in
  let var_inits =
    List.map
      (fun (v : Ast.var_decl) ->
        let slot = slot_of v.vname in
        let code =
          match v.vinit with
          | Some e -> compile_expr ctx init_scope e
          | None ->
              let typ = v.vtyp in
              fun _ -> Value.default_of_typ typ
        in
        let vinit =
          match v.vinit with Some e -> Vexpr e | None -> Vdefault v.vtyp
        in
        ((slot, v.vname, v.is_external, code), (slot, v.vname, v.is_external, vinit)))
      m.mvars
  in
  let trig_inits =
    List.map
      (fun (td : Ast.trig_decl) ->
        let slot = slot_of td.tname in
        let code =
          match td.tinit with
          | Some e -> compile_expr ctx init_scope e
          | None -> fun _ -> Value.Unit
        in
        let vinit = match td.tinit with Some e -> Vexpr e | None -> Vunit in
        ((slot, td.tname, false, code), (slot, td.tname, false, vinit)))
      m.mtrigs
  in
  let global_names = Array.make !n_globals "" in
  Hashtbl.iter (fun name i -> global_names.(i) <- name) global_slots;
  let trig_names = trigger_names m in
  let trig_ids = Hashtbl.create 8 in
  Array.iteri (fun i name -> Hashtbl.replace trig_ids name i) trig_names;
  let funcs = Hashtbl.create 8 in
  let vfuncs =
    List.map
      (fun (fd : Ast.func_decl) ->
        let fc, vf = compile_func ctx fd in
        Hashtbl.replace funcs fd.fname fc;
        (fd.fname, vf))
      program.funcs
  in
  let compiled_states = List.map (compile_state ctx m trig_names) m.states in
  let states = Array.of_list (List.map fst compiled_states) in
  let state_ids = Hashtbl.create 8 in
  Array.iteri (fun i st -> Hashtbl.replace state_ids st.st_name i) states;
  let plan =
    { v_machine = m.mname;
      v_initial = (List.hd m.states).sname;
      v_global_slots = tbl_to_slots global_slots;
      v_global_inits = List.map snd var_inits @ List.map snd trig_inits;
      v_trig_hooks =
        Hashtbl.fold (fun n tt acc -> (n, tt) :: acc) trig_hook []
        |> List.sort compare;
      v_trig_names = Array.to_list trig_names;
      v_states = List.map snd compiled_states;
      v_funcs = vfuncs }
  in
  { c_machine = m;
    c_n_globals = !n_globals;
    c_global_names = global_names;
    c_global_slots = global_slots;
    c_global_inits = Array.of_list (List.map fst var_inits @ List.map fst trig_inits);
    c_states = states;
    c_state_ids = state_ids;
    c_trig_ids = trig_ids;
    c_n_trigs = Array.length trig_names;
    c_funcs = funcs;
    c_call_specs = Array.of_list (List.rev ctx.cx_calls);
    c_plan = plan }

(** Compilation of type-checked Almanac machines to slot-indexed closures.

    Lowers an [Ast.machine] into closure code executed by {!Exec}: every
    variable becomes an integer slot in a flat [Value.t array] (globals /
    per-state locals / per-event frame), every expression and statement
    compiles once into an OCaml closure, every call site gets an index
    into a per-instance array of pre-resolved closures, and event dispatch
    tables are precomputed per (state, trigger) pair.  Observationally
    equivalent to {!Interp} on type-checked programs (see DESIGN.md,
    "Almanac execution pipeline").  Compile once per machine; instantiate
    many times with {!Exec.create_compiled}. *)

(** Sentinel marking a slot whose variable is not bound yet (the
    interpreter equivalent of a missing hashtable key).  Compared with
    physical equality; programs cannot forge it. *)
val absent : Value.t

(** Mutable execution environment threaded through compiled closures.
    [locals_names] always describes the layout of [locals]; during a
    transition it still names the old state's locals while initializers
    of the new state run. *)
type env = {
  host : Host.host;
  globals : Value.t array;
  mutable state : int;
  mutable locals : Value.t array;
  mutable locals_names : string array;
  mutable frame : Value.t array;
  mutable pending : string option;
  mutable calls : (Value.t list -> Value.t) array;
}

type ecode = env -> Value.t
type scode = env -> unit

type event_c = {
  ev_frame_size : int;
  ev_binding : int option;  (** frame slot of the trigger/recv binding *)
  ev_body : scode;
}

type recv_c = { rc_typ : Ast.typ; rc_dest : Ast.dest; rc_ev : event_c }

type state_c = {
  st_name : string;
  st_local_names : string array;
  st_local_inits : (int * ecode) array;
  st_enter : event_c array;
  st_exit : event_c array;
  st_realloc : event_c array;
  st_triggers : event_c array array;  (** indexed by trigger id *)
  st_recv : recv_c array;
}

type func_c = {
  fn_name : string;
  fn_nparams : int;
  fn_param_slots : int array;
  fn_frame_size : int;
  fn_body : scode;
}

(** {2 Verification plan}

    An inspectable mirror of every resolution decision this pass makes:
    frame slot layouts and bound sets, state-local and global slot
    tables, per-(state, trigger) dispatch tables with their source
    bodies, initializer order, and trigger-write hooks.  Built during
    compilation from the same layout tables the closures capture, so
    {!Equiv} validates the actual compile artifact and tests can corrupt
    a plan to prove divergences are caught. *)

type vframe = {
  vf_slots : (string * int) list;  (** name -> frame slot, sorted by slot *)
  vf_bound : string list;  (** names read without a presence check *)
  vf_size : int;
}

type vevent = {
  ve_frame : vframe;
  ve_binding : (string * int) option;
  ve_locals : (string * int) list option;
      (** static state-local table, [None] = dynamic resolution *)
  ve_body : Ast.stmt list;
}

type vinit = Vexpr of Ast.expr | Vdefault of Ast.typ | Vunit

type vstate = {
  vs_name : string;
  vs_local_names : string array;
  vs_local_inits : (int * string * vinit) list;
  vs_enter : vevent list;
  vs_exit : vevent list;
  vs_realloc : vevent list;
  vs_triggers : (string * vevent list) list;
  vs_recv : (Ast.typ * Ast.dest * vevent) list;
}

type vfunc = {
  vfn_params : (string * int) list;
  vfn_frame : vframe;
  vfn_body : Ast.stmt list;
}

type plan = {
  v_machine : string;
  v_initial : string;
  v_global_slots : (string * int) list;
  v_global_inits : (int * string * bool * vinit) list;
  v_trig_hooks : (string * Ast.trigger_type) list;
  v_trig_names : string list;
  v_states : vstate list;
  v_funcs : (string * vfunc) list;
}

type t = {
  c_machine : Ast.machine;
  c_n_globals : int;
  c_global_names : string array;
  c_global_slots : (string, int) Hashtbl.t;
  c_global_inits : (int * string * bool * ecode) array;
  c_states : state_c array;
  c_state_ids : (string, int) Hashtbl.t;
  c_trig_ids : (string, int) Hashtbl.t;
  c_n_trigs : int;
  c_funcs : (string, func_c) Hashtbl.t;
  c_call_specs : (string * int) array;
  c_plan : plan;
}

(** Compile machine [machine] of a type-checked, inheritance-resolved
    program.  Raises {!Host.Runtime_error} on the same conditions as
    [Interp.create] (unknown machine, unresolved inheritance, no
    states). *)
val compile : program:Ast.program -> machine:string -> t

type severity = Error | Warning | Info

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

type t = {
  code : string;
  severity : severity;
  pos : Ast.pos;
  file : string option;
  message : string;
}

let make ?file ?(pos = Ast.no_pos) severity ~code message =
  { code; severity; pos; file; message }

let error ?file ?pos ~code message = make ?file ?pos Error ~code message
let warning ?file ?pos ~code message = make ?file ?pos Warning ~code message
let info ?file ?pos ~code message = make ?file ?pos Info ~code message

let errorf ?file ?pos ~code fmt =
  Printf.ksprintf (error ?file ?pos ~code) fmt

let warningf ?file ?pos ~code fmt =
  Printf.ksprintf (warning ?file ?pos ~code) fmt

let with_file file ds =
  List.map
    (fun d -> match d.file with Some _ -> d | None -> { d with file = Some file })
    ds

let compare_diag a b =
  let c = compare (a.pos.Ast.line, a.pos.Ast.col) (b.pos.Ast.line, b.pos.Ast.col) in
  if c <> 0 then c
  else
    let c = compare a.code b.code in
    if c <> 0 then c else compare a.message b.message

let sort ds = List.stable_sort compare_diag ds

let is_error d = d.severity = Error
let has_errors ds = List.exists is_error ds

let to_string d =
  let b = Buffer.create 64 in
  (match d.file with
  | Some f ->
      Buffer.add_string b f;
      Buffer.add_char b ':'
  | None -> ());
  if d.pos <> Ast.no_pos then begin
    Buffer.add_string b (Ast.pos_to_string d.pos);
    Buffer.add_string b ": "
  end
  else if d.file <> None then Buffer.add_char b ' ';
  Buffer.add_string b (severity_to_string d.severity);
  Buffer.add_char b '[';
  Buffer.add_string b d.code;
  Buffer.add_string b "]: ";
  Buffer.add_string b d.message;
  Buffer.contents b

let pp fmt d = Format.pp_print_string fmt (to_string d)

let print_all oc ds =
  List.iter (fun d -> Printf.fprintf oc "%s\n" (to_string d)) (sort ds)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json ds =
  let one d =
    Printf.sprintf
      "{\"file\":%s,\"line\":%d,\"col\":%d,\"code\":\"%s\",\"severity\":\"%s\",\"message\":\"%s\"}"
      (match d.file with
      | Some f -> Printf.sprintf "\"%s\"" (json_escape f)
      | None -> "null")
      d.pos.Ast.line d.pos.Ast.col (json_escape d.code)
      (severity_to_string d.severity)
      (json_escape d.message)
  in
  "[" ^ String.concat "," (List.map one (sort ds)) ^ "]"

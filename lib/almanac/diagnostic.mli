(** Shared diagnostics for the Almanac static pipeline.

    Every pass — lexer, parser, type checker, lint, bounds inference,
    cross-task conflict detection — reports problems as positioned,
    code-carrying diagnostics rather than bare strings, so tooling
    ([farmc lint], the seeder's deploy-time verification, CI) can filter
    by severity and assert on stable codes.

    Code ranges (see DESIGN.md for the full table):
    - [P0xx] lexing / parsing
    - [T0xx] type checking and inheritance resolution
    - [L1xx] lint (machine-level semantic checks)
    - [B2xx] resource-bound inference
    - [C3xx] cross-task conflict detection *)

type severity = Error | Warning | Info

val severity_to_string : severity -> string

type t = {
  code : string;  (** stable machine-readable code, e.g. ["L101"] *)
  severity : severity;
  pos : Ast.pos;  (** {!Ast.no_pos} when no source location applies *)
  file : string option;  (** source file, when known *)
  message : string;
}

val make :
  ?file:string -> ?pos:Ast.pos -> severity -> code:string -> string -> t

val error : ?file:string -> ?pos:Ast.pos -> code:string -> string -> t
val warning : ?file:string -> ?pos:Ast.pos -> code:string -> string -> t
val info : ?file:string -> ?pos:Ast.pos -> code:string -> string -> t

(** Formatted-message variant of {!error}. *)
val errorf :
  ?file:string ->
  ?pos:Ast.pos ->
  code:string ->
  ('a, unit, string, t) format4 ->
  'a

val warningf :
  ?file:string ->
  ?pos:Ast.pos ->
  code:string ->
  ('a, unit, string, t) format4 ->
  'a

(** Attach [file] to every diagnostic that lacks one. *)
val with_file : string -> t list -> t list

(** Sort by position (then code) — the order [farmc lint] prints in. *)
val sort : t list -> t list

val is_error : t -> bool
val has_errors : t list -> bool

(** ["file:line:col: severity[CODE]: message"]; the position is omitted
    when it is {!Ast.no_pos}, the file when unknown. *)
val to_string : t -> string

val pp : Format.formatter -> t -> unit

(** One diagnostic per line, sorted. *)
val print_all : out_channel -> t list -> unit

(** JSON array of [{file, line, col, code, severity, message}] objects. *)
val to_json : t list -> string

(** The common interface of the two Almanac execution engines: the
    reference tree-walking interpreter ({!Interp}) and the slot-compiled
    engine ({!Exec}).  The runtime picks one per seed
    ([?engine] / [Seeder.config.engine], default [`Compiled]); the
    interpreter remains selectable as the executable reference semantics
    (see DESIGN.md, "Almanac execution pipeline"). *)

type engine = [ `Interp | `Compiled ]

module type S = sig
  type t

  val kind : engine

  val create :
    ?externals:(string * Value.t) list ->
    program:Ast.program ->
    machine:string ->
    Host.host ->
    t

  val machine : t -> Ast.machine
  val current_state : t -> string
  val var : t -> string -> Value.t option
  val start : t -> unit
  val fire_trigger : t -> string -> Value.t -> unit

  (** Resolve a trigger name once; the returned closure is the hot-path
      firing entry point. *)
  val prepare_trigger : t -> string -> Value.t -> unit

  val deliver : t -> from:Host.source -> Value.t -> bool
  val realloc : t -> unit
  val snapshot : t -> (string * Value.t) list * string
  val restore : t -> vars:(string * Value.t) list -> state:string -> unit
  val call_function : t -> string -> Value.t list -> Value.t
end

module Interp_engine : S with type t = Interp.t = struct
  include Interp

  let kind = `Interp
end

module Compiled_engine : S with type t = Exec.t = struct
  include Exec

  let kind = `Compiled
end

(** An engine instance packed with its module — what the runtime stores
    per seed. *)
type instance = Inst : (module S with type t = 'a) * 'a -> instance

let create ?(engine = `Compiled) ?externals ~program ~machine host =
  match engine with
  | `Interp ->
      Inst
        ( (module Interp_engine),
          Interp_engine.create ?externals ~program ~machine host )
  | `Compiled ->
      Inst
        ( (module Compiled_engine),
          Compiled_engine.create ?externals ~program ~machine host )

let kind (Inst ((module E), _)) = E.kind
let machine (Inst ((module E), t)) = E.machine t
let current_state (Inst ((module E), t)) = E.current_state t
let var (Inst ((module E), t)) name = E.var t name
let start (Inst ((module E), t)) = E.start t
let fire_trigger (Inst ((module E), t)) name value = E.fire_trigger t name value
let prepare_trigger (Inst ((module E), t)) name = E.prepare_trigger t name
let deliver (Inst ((module E), t)) ~from value = E.deliver t ~from value
let realloc (Inst ((module E), t)) = E.realloc t
let snapshot (Inst ((module E), t)) = E.snapshot t

let restore (Inst ((module E), t)) ~vars ~state = E.restore t ~vars ~state

let call_function (Inst ((module E), t)) name argv = E.call_function t name argv

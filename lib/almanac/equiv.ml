(* Translation validation: per-handler equivalence of the AST (Interp)
   semantics and the compiled plan (Compile/Exec) semantics.

   Every handler unit of a machine — global initialization, state-local
   initialization (both start and transit modes), each (state, trigger)
   dispatch sequence and each recv arm — is symbolically executed twice
   through {!Symexec}: once over the interpreter's scope-chain store and
   once over the slot-indexed store driven by the {!Compile.plan}
   recorded during compilation.  The resulting path sets are matched by
   path condition and compared observation-by-observation: final store,
   emitted effects (sends, host calls, trigger-write notifications),
   pending transit and outcome.

   Any disagreement is a [V401] error carrying the witness path
   condition; paths the executor could not explore within budget are
   reported as [V402] warnings naming the bounding knob, and the unit's
   equivalence claim is weakened rather than wrongly asserted. *)

open Symexec

(* Handler units draw their symbolic inputs from the machine's variable
   declarations.  List- and stats-typed inputs are instantiated at a
   small set of concrete lengths (a "configuration") so that catalog
   loops of the form [while i < size(xs)] discharge concretely instead
   of hitting the unroll budget. *)

let inst_lengths = [ 0; 2 ]
let max_varying = 4 (* 2^4 = 16 configurations per unit, at most *)

let is_sizable = function Some (Ast.Tlist | Ast.Tstats) -> true | _ -> false

(* [(name, typ option)] inputs -> list of configurations, each mapping
   sizable names to lengths. *)
let configurations inputs =
  let sizable =
    List.filter_map (fun (n, t) -> if is_sizable t then Some (n, t) else None)
      inputs
  in
  let vary = List.filteri (fun i _ -> i < max_varying) sizable in
  let fixed = List.filteri (fun i _ -> i >= max_varying) sizable in
  let base = List.map (fun (n, t) -> (n, t, 2)) fixed in
  List.fold_left
    (fun acc (n, t) ->
      List.concat_map
        (fun cfg -> List.map (fun len -> (n, t, len) :: cfg) inst_lengths)
        acc)
    [ base ] vary

let sym_of_input cfg (name, typ) =
  match List.find_opt (fun (n, _, _) -> String.equal n name) cfg with
  | Some (_, Some Ast.Tstats, len) ->
      sstats
        (Array.init len (fun i ->
             Svar (Printf.sprintf "%s.%d" name i, Some Ast.Tfloat)))
  | Some (_, _, len) ->
      slist
        (List.init len (fun i -> Svar (Printf.sprintf "%s.%d" name i, None)))
  | None -> Svar (name, typ)

(* ------------------------------------------------------------------ *)
(* Path comparison                                                     *)
(* ------------------------------------------------------------------ *)

let effect_equal (a : effect_) (b : effect_) = compare a b = 0

let outcome_to_string = function
  | Running -> "normal completion"
  | Err m -> Printf.sprintf "runtime error %S" m
  | Aviol pos -> Printf.sprintf "assert violation at %s" (Ast.pos_to_string pos)
  | Unknown r -> Printf.sprintf "unknown (%s)" r

let pend_target = function
  | Some (Pconc (s, _)) -> Some (Con (Value.Str s))
  | Some (Psym (s, _)) -> Some s
  | None -> None

let opt_sym_to_string = function
  | None -> "(none)"
  | Some s -> sym_to_string s

(* First observable difference between two matched paths, or [None]. *)
let path_diff ~gnames ~lnames (pi : path) (pp : path) : string option =
  let differ what a b =
    Some (Printf.sprintf "%s: AST yields %s, compiled yields %s" what a b)
  in
  if pi.outcome <> pp.outcome then
    differ "outcome" (outcome_to_string pi.outcome)
      (outcome_to_string pp.outcome)
  else if not (Option.equal sym_equal (pend_target pi.pending)
                 (pend_target pp.pending))
  then
    differ "pending transit"
      (opt_sym_to_string (pend_target pi.pending))
      (opt_sym_to_string (pend_target pp.pending))
  else
    let store_diff kind peek names =
      List.find_map
        (fun n ->
          let vi = peek pi.store n and vp = peek pp.store n in
          if Option.equal sym_equal vi vp then None
          else
            differ
              (Printf.sprintf "%s %s" kind n)
              (opt_sym_to_string vi) (opt_sym_to_string vp))
        names
    in
    match store_diff "global" peek_global gnames with
    | Some d -> Some d
    | None -> (
        match store_diff "state local" peek_local lnames with
        | Some d -> Some d
        | None ->
            let ei = List.rev pi.effects and ep = List.rev pp.effects in
            if List.length ei <> List.length ep then
              differ "effect count"
                (string_of_int (List.length ei))
                (string_of_int (List.length ep))
            else
              List.find_map
                (fun (a, b) ->
                  if effect_equal a b then None
                  else
                    differ "effect" (effect_to_string a) (effect_to_string b))
                (List.combine ei ep))

(* Paths are matched by normalized path condition: both sides execute
   the same source bodies, so equivalent executions fork identically. *)
let pc_key (p : path) =
  List.sort_uniq compare
    (List.map (fun (t, b) -> (if b then "+" else "-") ^ sym_to_string t) p.pc)

let unknown_reasons paths =
  List.filter_map
    (fun p -> match p.outcome with Unknown r -> Some r | _ -> None)
    paths

(* Compare the two sides of one handler unit under one configuration.
   Returns at most one diagnostic: the first divergence found, or a
   V402 warning if either side exhausted a budget. *)
let compare_unit ~what ~pos ~gnames ~lnames (pi : path list) (pp : path list)
    : Diagnostic.t option =
  match unknown_reasons pi @ unknown_reasons pp with
  | r :: _ ->
      Some
        (Diagnostic.warningf ~pos ~code:"V402"
           "%s: bounded verification incomplete: %s" what r)
  | [] ->
      let module M = Map.Make (struct
        type t = string list

        let compare = compare
      end) in
      let group paths =
        List.fold_left
          (fun m p ->
            M.update (pc_key p)
              (function Some ps -> Some (p :: ps) | None -> Some [ p ])
              m)
          M.empty paths
      in
      let gi = group pi and gp = group pp in
      let v401 pc detail =
        Some
          (Diagnostic.errorf ~pos ~code:"V401"
             "%s: semantic divergence on path [%s]: %s" what (pc_to_string pc)
             detail)
      in
      let keys =
        List.sort_uniq compare
          (List.map fst (M.bindings gi) @ List.map fst (M.bindings gp))
      in
      List.fold_left
        (fun acc key ->
          match acc with
          | Some _ -> acc
          | None -> (
              match (M.find_opt key gi, M.find_opt key gp) with
              | Some (p :: _), None ->
                  v401 p.pc "path exists only under AST semantics"
              | None, Some (p :: _) ->
                  v401 p.pc "path exists only under compiled semantics"
              | Some pis, Some pps when List.length pis <> List.length pps ->
                  v401 (List.hd pis).pc
                    (Printf.sprintf
                       "path multiplicity differs (AST %d, compiled %d)"
                       (List.length pis) (List.length pps))
              | Some pis, Some pps ->
                  List.find_map
                    (fun (a, b) ->
                      match path_diff ~gnames ~lnames a b with
                      | Some d -> v401 a.pc d
                      | None -> None)
                    (List.combine (List.rev pis) (List.rev pps))
              | None, None | Some [], _ | _, Some [] -> None))
        None keys

(* ------------------------------------------------------------------ *)
(* Handler units                                                       *)
(* ------------------------------------------------------------------ *)

type side = {
  sd_funcs : funcs;
  sd_hooks : (string * Ast.trigger_type) list;
}

type vctx = {
  vx_budget : budget;
  vx_host : string list;
  vx_m : Ast.machine;  (* resolved machine, as compiled *)
  vx_plan : Compile.plan;
  vx_i : side;
  vx_p : side;
}

let fresh_ctx vx side =
  make_ctx ~budget:vx.vx_budget ~host_builtins:vx.vx_host ~funcs:side.sd_funcs
    ~hooks:side.sd_hooks ()

let dedup_names names =
  let seen = Hashtbl.create 8 in
  List.filter
    (fun n ->
      if Hashtbl.mem seen n then false
      else begin
        Hashtbl.replace seen n ();
        true
      end)
    names

(* Declared inputs of a machine / state, in declaration order. *)
let global_inputs (m : Ast.machine) =
  dedup_names
    (List.map (fun (v : Ast.var_decl) -> v.vname) m.mvars
    @ List.map (fun (t : Ast.trig_decl) -> t.tname) m.mtrigs)
  |> List.map (fun n ->
         match
           List.find_opt (fun (v : Ast.var_decl) -> v.vname = n) m.mvars
         with
         | Some v -> (n, Some v.vtyp)
         | None -> (n, None))

let local_inputs (st : Ast.state_decl) =
  dedup_names (List.map (fun (v : Ast.var_decl) -> v.vname) st.slocals)
  |> List.map (fun n ->
         let v =
           List.find (fun (v : Ast.var_decl) -> v.vname = n) st.slocals
         in
         (n, Some v.vtyp))

let vstate_of vx (name : string) =
  List.find
    (fun (vs : Compile.vstate) -> String.equal vs.Compile.vs_name name)
    vx.vx_plan.Compile.v_states

(* Build the two stores for a unit executing in state [st] with the
   given symbolic inputs. *)
let mk_stores vx ~(st : Ast.state_decl) ~globals ~locals =
  ( mk_istore ~globals ~locals,
    mk_pstore ~plan:vx.vx_plan ~globals ~state:(vstate_of vx st.sname) ~locals
  )

(* Run one dispatch unit on both sides under every configuration and
   report the first divergence. *)
let check_dispatch vx ~what ~pos ~(st : Ast.state_decl)
    ~(ievents : Ast.event list) ~(pevents : Compile.vevent list)
    ~(binding_typ : Ast.typ option) : Diagnostic.t list =
  if List.length ievents <> List.length pevents then
    [ Diagnostic.errorf ~pos ~code:"V401"
        "%s: dispatch differs: AST runs %d event(s), compiled runs %d" what
        (List.length ievents) (List.length pevents) ]
  else if ievents = [] then []
  else
    let gnames = global_inputs vx.vx_m and lnames = local_inputs st in
    let binding_input = ("(input)", binding_typ) in
    let cfgs = configurations (gnames @ lnames @ [ binding_input ]) in
    let gn = List.map fst gnames and ln = List.map fst lnames in
    List.fold_left
      (fun acc cfg ->
        if acc <> [] then acc
        else
          let globals = List.map (fun g -> (fst g, sym_of_input cfg g)) gnames in
          let locals = List.map (fun l -> (fst l, sym_of_input cfg l)) lnames in
          let binding = sym_of_input cfg binding_input in
          let si, sp = mk_stores vx ~st ~globals ~locals in
          let iev =
            List.map
              (fun (ev : Ast.event) ->
                let bindings =
                  match ev.trigger with
                  | Ast.On_trigger_var (_, Some x) -> [ (x, binding) ]
                  | Ast.On_recv (_, x, _) -> [ (x, binding) ]
                  | _ -> []
                in
                { eu_body = ev.body; eu_frame = Fnames bindings })
              ievents
          in
          let pev =
            List.map
              (fun (ve : Compile.vevent) ->
                { eu_body = ve.Compile.ve_body; eu_frame = Fplan ve })
              pevents
          in
          let pi = run_events (fresh_ctx vx vx.vx_i) si iev ~binding in
          let pp = run_events (fresh_ctx vx vx.vx_p) sp pev ~binding in
          match compare_unit ~what ~pos ~gnames:gn ~lnames:ln pi pp with
          | Some d -> [ d ]
          | None -> acc)
      [] cfgs

(* Initializer units. *)

let interp_global_inits (m : Ast.machine) : init_u list =
  List.map
    (fun (v : Ast.var_decl) ->
      { iu_name = v.vname;
        iu_slot = None;
        iu_kind =
          (if v.is_external then `External (Svar ("ext:" ^ v.vname, Some v.vtyp))
           else
             match v.vinit with
             | Some e -> `Expr e
             | None -> `Default v.vtyp) })
    m.mvars
  @ List.map
      (fun (t : Ast.trig_decl) ->
        { iu_name = t.tname;
          iu_slot = None;
          iu_kind =
            (match t.tinit with Some e -> `Expr e | None -> `Unit) })
      m.mtrigs

let plan_global_inits (plan : Compile.plan) : init_u list =
  List.map
    (fun (slot, name, is_ext, vinit) ->
      { iu_name = name;
        iu_slot = Some slot;
        iu_kind =
          (if is_ext then `External (Svar ("ext:" ^ name, None))
           else
             match (vinit : Compile.vinit) with
             | Compile.Vexpr e -> `Expr e
             | Compile.Vdefault t -> `Default t
             | Compile.Vunit -> `Unit) })
    plan.Compile.v_global_inits

(* External inputs must denote the same symbol on both sides; the plan
   side has no typ, so normalize both to untyped. *)
let untype_ext iu =
  match iu.iu_kind with
  | `External (Svar (n, _)) -> { iu with iu_kind = `External (Svar (n, None)) }
  | _ -> iu

let check_global_inits vx : Diagnostic.t list =
  let m = vx.vx_m in
  let what = Printf.sprintf "machine %s: variable initialization" m.mname in
  let pos = m.mloc in
  let ii = List.map untype_ext (interp_global_inits m) in
  let pi = List.map untype_ext (plan_global_inits vx.vx_plan) in
  if List.map (fun u -> u.iu_name) ii <> List.map (fun u -> u.iu_name) pi then
    [ Diagnostic.errorf ~pos ~code:"V401"
        "%s: initializer order differs: AST [%s], compiled [%s]" what
        (String.concat "; " (List.map (fun u -> u.iu_name) ii))
        (String.concat "; " (List.map (fun u -> u.iu_name) pi)) ]
  else
    let st0 = List.hd m.states in
    let si, sp = mk_stores vx ~st:st0 ~globals:[] ~locals:[] in
    let ri = run_inits_progressive (fresh_ctx vx vx.vx_i) si `Globals ii in
    let rp = run_inits_progressive (fresh_ctx vx vx.vx_p) sp `Globals pi in
    let gn = List.map fst (global_inputs m) in
    Option.to_list
      (compare_unit ~what ~pos ~gnames:gn ~lnames:[] ri rp)

let interp_local_inits (st : Ast.state_decl) : init_u list =
  List.map
    (fun (v : Ast.var_decl) ->
      { iu_name = v.vname;
        iu_slot = None;
        iu_kind =
          (match v.vinit with Some e -> `Expr e | None -> `Default v.vtyp) })
    st.slocals

let plan_local_inits (vs : Compile.vstate) : init_u list =
  List.map
    (fun (slot, name, vinit) ->
      { iu_name = name;
        iu_slot = Some slot;
        iu_kind =
          (match (vinit : Compile.vinit) with
          | Compile.Vexpr e -> `Expr e
          | Compile.Vdefault t -> `Default t
          | Compile.Vunit -> `Unit) })
    vs.Compile.vs_local_inits

(* Start-mode locals: progressive, from an empty locals table, globals
   already bound (run for the initial state only, as the engines do). *)
let check_start_locals vx (st : Ast.state_decl) : Diagnostic.t list =
  let what =
    Printf.sprintf "machine %s, state %s: state-local initialization (start)"
      vx.vx_m.mname st.sname
  in
  let pos = st.stloc in
  let ii = interp_local_inits st in
  let pl = plan_local_inits (vstate_of vx st.sname) in
  if List.map (fun u -> u.iu_name) ii <> List.map (fun u -> u.iu_name) pl then
    [ Diagnostic.errorf ~pos ~code:"V401"
        "%s: initializer order differs" what ]
  else
    let gnames = global_inputs vx.vx_m in
    let cfgs = configurations gnames in
    let gn = List.map fst gnames and ln = List.map fst (local_inputs st) in
    List.fold_left
      (fun acc cfg ->
        if acc <> [] then acc
        else
          let globals = List.map (fun g -> (fst g, sym_of_input cfg g)) gnames in
          let si, sp = mk_stores vx ~st ~globals ~locals:[] in
          let ri = run_inits_progressive (fresh_ctx vx vx.vx_i) si `Locals ii in
          let rp = run_inits_progressive (fresh_ctx vx vx.vx_p) sp `Locals pl in
          Option.to_list (compare_unit ~what ~pos ~gnames:gn ~lnames:ln ri rp))
      [] cfgs

(* Transit-mode locals of [tgt], entered from [src]: initializers read
   the old state's locals; the new locals replace them at the end. *)
let check_transit_locals vx ~(src : Ast.state_decl) ~(tgt : Ast.state_decl) :
    Diagnostic.t list =
  let what =
    Printf.sprintf
      "machine %s, transit %s -> %s: state-local initialization" vx.vx_m.mname
      src.sname tgt.sname
  in
  let pos = tgt.stloc in
  let ii = interp_local_inits tgt in
  let vt = vstate_of vx tgt.sname in
  let pl = plan_local_inits vt in
  if List.map (fun u -> u.iu_name) ii <> List.map (fun u -> u.iu_name) pl then
    [ Diagnostic.errorf ~pos ~code:"V401"
        "%s: initializer order differs" what ]
  else
    let gnames = global_inputs vx.vx_m and lnames = local_inputs src in
    let cfgs = configurations (gnames @ lnames) in
    let gn = List.map fst gnames in
    let tn = List.map fst (local_inputs tgt) in
    List.fold_left
      (fun acc cfg ->
        if acc <> [] then acc
        else
          let globals = List.map (fun g -> (fst g, sym_of_input cfg g)) gnames in
          let locals = List.map (fun l -> (fst l, sym_of_input cfg l)) lnames in
          let si, sp = mk_stores vx ~st:src ~globals ~locals in
          let new_names = vt.Compile.vs_local_names in
          let ri =
            run_local_inits_transit (fresh_ctx vx vx.vx_i) si ~new_names ii
          in
          let rp =
            run_local_inits_transit (fresh_ctx vx vx.vx_p) sp ~new_names pl
          in
          Option.to_list (compare_unit ~what ~pos ~gnames:gn ~lnames:tn ri rp))
      [] cfgs

(* Events applicable in [st] for a key, interpreter rule: state events
   override machine events when at least one state event matches
   (mirrors [Interp.applicable_events]). *)
let interp_events (m : Ast.machine) (st : Ast.state_decl) key =
  let matches (e : Ast.event) = Interp.trigger_key e.trigger = key in
  let se = List.filter matches st.sevents in
  if se <> [] then se else List.filter matches m.mevents

let dispatch_pos (st : Ast.state_decl) = function
  | (e : Ast.event) :: _ -> e.evloc
  | [] -> st.stloc

let dest_name = function
  | Ast.Harvester -> "harvester"
  | Ast.Machine (m, _) -> m

let check_state vx (st : Ast.state_decl) : Diagnostic.t list =
  let m = vx.vx_m in
  let vs = vstate_of vx st.sname in
  let diags = ref [] in
  let add ds = diags := !diags @ ds in
  (* fixed dispatch keys *)
  List.iter
    (fun (key, pevents) ->
      let ievents = interp_events m st key in
      add
        (check_dispatch vx
           ~what:(Printf.sprintf "machine %s, state %s: on %s" m.mname st.sname key)
           ~pos:(dispatch_pos st ievents)
           ~st ~ievents ~pevents ~binding_typ:None))
    [ ("enter", vs.Compile.vs_enter);
      ("exit", vs.Compile.vs_exit);
      ("realloc", vs.Compile.vs_realloc) ];
  (* trigger variables *)
  List.iter
    (fun (name, pevents) ->
      let ievents = interp_events m st ("var:" ^ name) in
      let binding_typ =
        match List.assoc_opt name vx.vx_plan.Compile.v_trig_hooks with
        | Some (Ast.Poll | Ast.Probe) -> Some Ast.Tstats
        | Some Ast.Time | None -> None
      in
      add
        (check_dispatch vx
           ~what:
             (Printf.sprintf "machine %s, state %s: when %s" m.mname st.sname
                name)
           ~pos:(dispatch_pos st ievents)
           ~st ~ievents ~pevents ~binding_typ))
    vs.Compile.vs_triggers;
  (* recv arms: both engines scan the same ordered arm list and take the
     first (type, source) match, so it suffices that the arm signatures
     agree in order and each arm body is equivalent *)
  let iarms =
    List.filter_map
      (fun (ev : Ast.event) ->
        match ev.trigger with
        | Ast.On_recv (ty, _, dest) -> Some (ty, dest, ev)
        | _ -> None)
      (st.sevents @ m.mevents)
  in
  let isig = List.map (fun (ty, d, _) -> (ty, dest_name d)) iarms in
  let psig =
    List.map (fun (ty, d, _) -> (ty, dest_name d)) vs.Compile.vs_recv
  in
  if isig <> psig then
    add
      [ Diagnostic.errorf ~pos:st.stloc ~code:"V401"
          "machine %s, state %s: recv arms differ between AST and compiled \
           dispatch"
          m.mname st.sname ]
  else
    List.iter2
      (fun (ty, d, (ev : Ast.event)) (_, _, ve) ->
        add
          (check_dispatch vx
             ~what:
               (Printf.sprintf "machine %s, state %s: recv %s from %s" m.mname
                  st.sname (Ast.typ_to_string ty) (dest_name d))
             ~pos:ev.evloc ~st ~ievents:[ ev ] ~pevents:[ ve ]
             ~binding_typ:(Some ty)))
      iarms vs.Compile.vs_recv;
  !diags

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

let default_host_builtins =
  [ "addTCAMRule"; "removeTCAMRule"; "getTCAMRule"; "exec" ]

let verify_plan ?(budget = default_budget)
    ?(host_builtins = default_host_builtins) ~(funcs : Ast.func_decl list)
    ~(machine : Ast.machine) ~(plan : Compile.plan) () : Diagnostic.t list =
  let m = machine in
  let hooks_i =
    List.sort compare
      (List.map (fun (t : Ast.trig_decl) -> (t.tname, t.ttyp)) m.mtrigs)
  in
  let vx =
    { vx_budget = budget;
      vx_host = host_builtins;
      vx_m = m;
      vx_plan = plan;
      vx_i =
        { sd_funcs = Ifuncs (List.map (fun (f : Ast.func_decl) -> (f.fname, f)) funcs);
          sd_hooks = hooks_i };
      vx_p =
        { sd_funcs = Pfuncs plan.Compile.v_funcs;
          sd_hooks = plan.Compile.v_trig_hooks } }
  in
  let structural =
    let initial =
      match m.states with s :: _ -> s.sname | [] -> "(none)"
    in
    (if String.equal plan.Compile.v_initial initial then []
     else
       [ Diagnostic.errorf ~pos:m.mloc ~code:"V401"
           "machine %s: initial state differs: AST starts in %s, compiled in \
            %s"
           m.mname initial plan.Compile.v_initial ])
    @
    let inames = List.map (fun (s : Ast.state_decl) -> s.sname) m.states in
    let pnames =
      List.map (fun (vs : Compile.vstate) -> vs.Compile.vs_name)
        plan.Compile.v_states
    in
    if inames <> pnames then
      [ Diagnostic.errorf ~pos:m.mloc ~code:"V401"
          "machine %s: state list differs: AST [%s], compiled [%s]" m.mname
          (String.concat "; " inames)
          (String.concat "; " pnames) ]
    else []
  in
  if structural <> [] then structural
  else
    let diags = ref (check_global_inits vx) in
    (match m.states with
    | st0 :: _ -> diags := !diags @ check_start_locals vx st0
    | [] -> ());
    List.iter
      (fun (src : Ast.state_decl) ->
        List.iter
          (fun (tgt : Ast.state_decl) ->
            if not (String.equal src.sname tgt.sname) then
              diags := !diags @ check_transit_locals vx ~src ~tgt)
          m.states)
      m.states;
    List.iter (fun st -> diags := !diags @ check_state vx st) m.states;
    Diagnostic.sort !diags

let verify ?budget ?host_builtins ~(program : Ast.program)
    ~(machine : string) () : Diagnostic.t list =
  let c = Compile.compile ~program ~machine in
  verify_plan ?budget ?host_builtins ~funcs:program.funcs
    ~machine:c.Compile.c_machine ~plan:c.Compile.c_plan ()

let verify_program ?budget ?host_builtins ~(program : Ast.program) () :
    Diagnostic.t list =
  List.concat_map
    (fun (m : Ast.machine) ->
      if m.states = [] then []
      else verify ?budget ?host_builtins ~program ~machine:m.mname ())
    program.machines
  |> Diagnostic.sort

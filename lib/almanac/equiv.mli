(** Translation validation of compiled Almanac machines.

    Symbolically executes every handler unit of a machine twice — once
    under the interpreter's scope-chain semantics and once under the
    slot-indexed semantics recorded in the {!Compile.plan} — and checks
    path-by-path that final stores, emitted effects, pending transits
    and outcomes agree.

    Diagnostics:
    - [V401] (error): semantic divergence, with the witness path
      condition and the first differing observation;
    - [V402] (warning): a unit could not be fully explored within the
      path/unroll budget; the message names the bounding knob
      ([--max-paths]). *)

(** Host-builtin names assumed served by the deployment host
    ([addTCAMRule], [removeTCAMRule], [getTCAMRule], [exec]); extend
    via [?host_builtins] for tasks registering extra builtins. *)
val default_host_builtins : string list

(** Validate a compile plan against the (resolved) machine AST it was
    compiled from.  [funcs] are the program-level auxiliary functions.
    Exposed separately so tests can corrupt a plan and prove the
    divergence is caught. *)
val verify_plan :
  ?budget:Symexec.budget ->
  ?host_builtins:string list ->
  funcs:Ast.func_decl list ->
  machine:Ast.machine ->
  plan:Compile.plan ->
  unit ->
  Diagnostic.t list

(** Compile machine [machine] of a type-checked program and validate the
    resulting plan. *)
val verify :
  ?budget:Symexec.budget ->
  ?host_builtins:string list ->
  program:Ast.program ->
  machine:string ->
  unit ->
  Diagnostic.t list

(** Validate every concrete machine of a program. *)
val verify_program :
  ?budget:Symexec.budget ->
  ?host_builtins:string list ->
  program:Ast.program ->
  unit ->
  Diagnostic.t list

(** Execution engine for compiled Almanac machines ({!Compile}).

    Mirrors the {!Interp} API so the two engines are interchangeable
    behind {!Engine.S}; semantics are the interpreter's (the differential
    suite in [test/test_almanac.ml] checks observational equivalence over
    the whole task catalog).  Per event firing this engine does an array
    index into the (state, trigger) dispatch table and runs pre-compiled
    closures — no string hashing, no scope-chain walk. *)

let fail = Host.fail

let absent = Compile.absent

type t = {
  c : Compile.t;
  env : Compile.env;
  host : Host.host;
  mutable started : bool;
}

let machine t = t.c.Compile.c_machine
let current_state t = t.c.c_states.(t.env.Compile.state).st_name

(* ------------------------------------------------------------------ *)
(* Function invocation and call-site resolution                        *)
(* ------------------------------------------------------------------ *)

let invoke_func (env : Compile.env) (fc : Compile.func_c) argv =
  if List.length argv <> fc.fn_nparams then
    fail "%s expects %d arguments, got %d" fc.fn_name fc.fn_nparams
      (List.length argv);
  let fr = Array.make fc.fn_frame_size absent in
  List.iteri (fun i v -> fr.(fc.fn_param_slots.(i)) <- v) argv;
  let saved = env.Compile.frame in
  env.frame <- fr;
  match fc.fn_body env with
  | () ->
      env.frame <- saved;
      Value.Unit
  | exception Host.Return_exc v ->
      env.frame <- saved;
      v
  | exception e ->
      env.frame <- saved;
      raise e

(* Resolve every call site once, in the interpreter's precedence order:
   host builtin, then Almanac function, then pure builtin.  Unknown names
   and arity mismatches become closures that fail when (and only when)
   the call site actually executes. *)
let resolve_calls (c : Compile.t) (env : Compile.env) (host : Host.host) =
  let builtins = Builtins.table host in
  Array.map
    (fun (fname, nargs) ->
      match host.h_builtin fname with
      | Some f -> f
      | None -> (
          match Hashtbl.find_opt c.c_funcs fname with
          | Some fc ->
              if fc.fn_nparams <> nargs then fun _ ->
                fail "%s expects %d arguments, got %d" fname fc.fn_nparams
                  nargs
              else fun argv -> invoke_func env fc argv
          | None -> (
              match Hashtbl.find_opt builtins fname with
              | Some f -> f
              | None -> fun _ -> fail "unknown function %s" fname)))
    c.c_call_specs

(* ------------------------------------------------------------------ *)
(* Event dispatch                                                      *)
(* ------------------------------------------------------------------ *)

let empty_frame : Value.t array = [||]

let run_event (env : Compile.env) (ec : Compile.event_c) binding =
  let fr =
    if ec.ev_frame_size = 0 then empty_frame
    else Array.make ec.ev_frame_size absent
  in
  (match ec.ev_binding with
  | Some slot -> fr.(slot) <- binding
  | None -> ());
  env.frame <- fr;
  try ec.ev_body env with Host.Return_exc _ -> ()

let run_events env evs binding =
  for i = 0 to Array.length evs - 1 do
    run_event env evs.(i) binding
  done

let rec apply_pending t =
  match t.env.Compile.pending with
  | None -> ()
  | Some target ->
      t.env.pending <- None;
      let cur = t.c.c_states.(t.env.state) in
      if target <> cur.st_name then begin
        (* exit events of the old state (run before the target is even
           validated, as in the interpreter) *)
        run_events t.env cur.st_exit Value.Unit;
        let tid =
          match Hashtbl.find_opt t.c.c_state_ids target with
          | Some i -> i
          | None ->
              fail "machine %s has no state %s" t.c.c_machine.mname target
        in
        t.env.state <- tid;
        let ns = t.c.c_states.(tid) in
        (* fresh locals, with initializers evaluated against the *old*
           state's locals (env.locals / locals_names are swapped only
           after all initializers ran) *)
        let fresh = Array.make (Array.length ns.st_local_names) absent in
        Array.iter
          (fun (slot, init) -> fresh.(slot) <- init t.env)
          ns.st_local_inits;
        t.env.locals <- fresh;
        t.env.locals_names <- ns.st_local_names;
        t.host.h_on_transit cur.st_name target;
        run_events t.env ns.st_enter Value.Unit;
        (* an enter handler can itself transit *)
        apply_pending t
      end

(* ------------------------------------------------------------------ *)
(* Public API                                                          *)
(* ------------------------------------------------------------------ *)

let create_compiled ?(externals = []) (c : Compile.t) (host : Host.host) =
  let st0 = c.c_states.(0) in
  let env =
    { Compile.host;
      globals = Array.make c.c_n_globals absent;
      state = 0;
      locals = Array.make (Array.length st0.st_local_names) absent;
      locals_names = st0.st_local_names;
      frame = empty_frame;
      pending = None;
      calls = [||] }
  in
  env.calls <- resolve_calls c env host;
  (* machine and trigger variables, progressively (earlier initializers
     are visible to later ones) *)
  Array.iter
    (fun (slot, name, is_external, init) ->
      let value =
        match List.assoc_opt name externals with
        | Some ext when is_external -> ext
        | Some _ | None -> init env
      in
      env.globals.(slot) <- value)
    c.c_global_inits;
  { c; env; host; started = false }

let create ?externals ~program ~machine host =
  create_compiled ?externals (Compile.compile ~program ~machine) host

let var t name =
  let lookup arr names =
    let rec go i =
      if i >= Array.length names then None
      else if String.equal names.(i) name && arr.(i) != absent then
        Some arr.(i)
      else go (i + 1)
    in
    go 0
  in
  match lookup t.env.Compile.locals t.env.locals_names with
  | Some v -> Some v
  | None -> (
      match Hashtbl.find_opt t.c.c_global_slots name with
      | Some g ->
          let v = t.env.globals.(g) in
          if v != absent then Some v else None
      | None -> None)

let start t =
  if not t.started then begin
    t.started <- true;
    (* initialize the first state's locals progressively (earlier locals
       are visible to later initializers) *)
    let st = t.c.c_states.(t.env.Compile.state) in
    Array.iter
      (fun (slot, init) -> t.env.locals.(slot) <- init t.env)
      st.st_local_inits;
    run_events t.env st.st_enter Value.Unit;
    apply_pending t
  end

let fire_id t id value =
  let st = t.c.c_states.(t.env.Compile.state) in
  run_events t.env st.st_triggers.(id) value;
  apply_pending t

let trace_fire t name =
  match t.host.Host.h_trace with
  | None -> ()
  | Some f -> f name t.c.c_states.(t.env.Compile.state).st_name

let fire_trigger t name value =
  match Hashtbl.find_opt t.c.c_trig_ids name with
  | Some id ->
      trace_fire t name;
      fire_id t id value
  | None -> apply_pending t

let prepare_trigger t name =
  match Hashtbl.find_opt t.c.c_trig_ids name with
  | Some id ->
      fun value ->
        trace_fire t name;
        fire_id t id value
  | None -> fun _ -> apply_pending t

let value_matches_typ (v : Value.t) (ty : Ast.typ) =
  match (v, ty) with
  | Value.Num _, (Ast.Tint | Ast.Tlong | Ast.Tfloat) -> true
  | Value.Bool _, Ast.Tbool -> true
  | Value.Str _, Ast.Tstring -> true
  | Value.List _, Ast.Tlist -> true
  | Value.Packet _, Ast.Tpacket -> true
  | Value.Action _, Ast.Taction -> true
  | Value.FilterV _, Ast.Tfilter -> true
  | Value.Stats _, Ast.Tstats -> true
  | Value.Struct ("Rule", _), Ast.Trule -> true
  | Value.Unit, Ast.Tunit -> true
  | _ -> false

let deliver t ~from value =
  let st = t.c.c_states.(t.env.Compile.state) in
  let recv = st.st_recv in
  let n = Array.length recv in
  let rec go i =
    if i >= n then false
    else
      let rc = recv.(i) in
      let src_ok =
        match (rc.Compile.rc_dest, (from : Host.source)) with
        | Ast.Harvester, Host.From_harvester -> true
        | Ast.Machine (m, _), Host.From_machine m' -> m = m'
        | Ast.Harvester, Host.From_machine _
        | Ast.Machine _, Host.From_harvester ->
            false
      in
      if src_ok && value_matches_typ value rc.rc_typ then begin
        run_event t.env rc.rc_ev value;
        apply_pending t;
        true
      end
      else go (i + 1)
  in
  go 0

let realloc t =
  let st = t.c.c_states.(t.env.Compile.state) in
  run_events t.env st.st_realloc Value.Unit;
  apply_pending t

let snapshot t =
  let vars = ref [] in
  Array.iteri
    (fun i name ->
      let v = t.env.Compile.globals.(i) in
      if v != absent then vars := (name, v) :: !vars)
    t.c.c_global_names;
  Array.iteri
    (fun i name ->
      let v = t.env.locals.(i) in
      if v != absent then vars := ("state." ^ name, v) :: !vars)
    t.env.locals_names;
  (!vars, current_state t)

let restore t ~vars ~state =
  let sid =
    match Hashtbl.find_opt t.c.c_state_ids state with
    | Some i -> i
    | None -> fail "machine %s has no state %s" t.c.c_machine.mname state
  in
  t.env.Compile.state <- sid;
  let st = t.c.c_states.(sid) in
  let names = st.st_local_names in
  t.env.locals <- Array.make (Array.length names) absent;
  t.env.locals_names <- names;
  let local_slot name =
    let rec go i =
      if i >= Array.length names then None
      else if String.equal names.(i) name then Some i
      else go (i + 1)
    in
    go 0
  in
  List.iter
    (fun (k, v) ->
      match String.index_opt k '.' with
      | Some i when String.sub k 0 i = "state" -> (
          let name = String.sub k (i + 1) (String.length k - i - 1) in
          match local_slot name with
          | Some slot -> t.env.locals.(slot) <- v
          | None -> ())
      | _ -> (
          match Hashtbl.find_opt t.c.c_global_slots k with
          | Some g -> t.env.globals.(g) <- v
          | None -> ()))
    vars;
  t.started <- true

let call_function t name argv =
  match Hashtbl.find_opt t.c.c_funcs name with
  | Some fc -> invoke_func t.env fc argv
  | None -> fail "program has no function %s" name

(** Execution engine for compiled Almanac machines — the fast path of a
    seed.  API mirrors {!Interp}; semantics are the interpreter's (checked
    by the differential suite in [test/test_almanac.ml]). *)

type t

(** Compile and instantiate in one step (same signature as
    [Interp.create]). *)
val create :
  ?externals:(string * Value.t) list ->
  program:Ast.program ->
  machine:string ->
  Host.host ->
  t

(** Instantiate an already-compiled machine; use this to share one
    compilation across a fleet of seeds. *)
val create_compiled :
  ?externals:(string * Value.t) list -> Compile.t -> Host.host -> t

val machine : t -> Ast.machine
val current_state : t -> string

(** Value of a machine or current-state variable. *)
val var : t -> string -> Value.t option

(** Enter the initial state (fires its [enter] events). *)
val start : t -> unit

(** A trigger variable fired, carrying polled stats / a probed packet /
    the current time. *)
val fire_trigger : t -> string -> Value.t -> unit

(** [prepare_trigger t name] resolves trigger [name] to its dispatch-table
    index once and returns the firing closure — the hot-path entry point
    (an array index plus closure calls per event). *)
val prepare_trigger : t -> string -> Value.t -> unit

(** Deliver a message; [true] when some [recv] event consumed it. *)
val deliver : t -> from:Host.source -> Value.t -> bool

(** Resource reallocation notification (placement re-optimized). *)
val realloc : t -> unit

(** Serialize the mutable state (state name + variables) for seed
    migration, and restore it on another instance of the same machine. *)
val snapshot : t -> (string * Value.t) list * string

val restore : t -> vars:(string * Value.t) list -> state:string -> unit

(** Call an Almanac-defined auxiliary function directly (used by tests). *)
val call_function : t -> string -> Value.t list -> Value.t

(** The host interface shared by both Almanac execution engines (the
    reference tree-walking {!Interp} and the slot-compiled {!Exec}).  Every
    effect a machine can perform — time, resources, messaging, TCAM access,
    polling-rate changes — goes through a [host] record, so engines are
    interchangeable behind {!Engine.S}. *)

exception Runtime_error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Runtime_error m)) fmt

(* Control-flow exception shared by both engines for [return]. *)
exception Return_exc of Value.t

type source = From_harvester | From_machine of string

type target = To_harvester | To_machine of string * int option

type host = {
  h_now : unit -> float;
  h_resources : unit -> float array;
  h_send : target -> Value.t -> unit;
  h_set_trigger : string -> Ast.trigger_type -> Value.t -> unit;
  h_builtin : string -> (Value.t list -> Value.t) option;
  h_on_transit : string -> string -> unit;
  h_log : string -> unit;
  h_trace : (string -> string -> unit) option;
}

let null_host =
  { h_now = (fun () -> 0.);
    h_resources = (fun () -> Array.make Analysis.n_resources 1.);
    h_send = (fun _ _ -> ());
    h_set_trigger = (fun _ _ _ -> ());
    h_builtin = (fun _ -> None);
    h_on_transit = (fun _ _ -> ());
    h_log = (fun _ -> ());
    h_trace = None }

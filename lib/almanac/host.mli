(** The host interface shared by both Almanac execution engines.

    Engines ({!Interp}, {!Exec}) are host-agnostic: every effect (time,
    resources, messaging, TCAM access, polling-rate changes) goes through a
    {!host} record.  The FARM runtime wires the host to a soil on a
    simulated switch; tests can wire it to stubs. *)

exception Runtime_error of string

(** Raise {!Runtime_error} with a formatted message. *)
val fail : ('a, unit, string, 'b) format4 -> 'a

(** Control-flow exception used by both engines to implement [return]. *)
exception Return_exc of Value.t

(** Where a received message came from (pattern-matched by [recv]). *)
type source = From_harvester | From_machine of string

(** A resolved [send] destination: the engine evaluates any [@dst]
    expression before handing the message to the host. *)
type target = To_harvester | To_machine of string * int option

type host = {
  h_now : unit -> float;
  h_resources : unit -> float array;
      (** allocated resources, indexed per {!Analysis.resource_index} *)
  h_send : target -> Value.t -> unit;
  h_set_trigger : string -> Ast.trigger_type -> Value.t -> unit;
      (** trigger variable reassigned at runtime (new struct or bare
          period); the host reschedules polling *)
  h_builtin : string -> (Value.t list -> Value.t) option;
      (** host-provided auxiliary functions; consulted before the pure
          built-ins *)
  h_on_transit : string -> string -> unit;  (** old state, new state *)
  h_log : string -> unit;
  h_trace : (string -> string -> unit) option;
      (** observability hook, called by both engines on trigger dispatch
          with (trigger name, current state).  [None] (the default)
          costs a single branch on the hot path; the FARM runtime wires
          [Some] to the engine's simulation-time trace sink. *)
}

(** A do-nothing host for pure tests. *)
val null_host : host

(* The host interface and the pure built-ins live in {!Host} and
   {!Builtins}, shared with the compiled engine; re-export them here so
   existing users of [Interp.host] / [Interp.Runtime_error] keep working. *)

exception Runtime_error = Host.Runtime_error

let fail = Host.fail

type source = Host.source = From_harvester | From_machine of string

type target = Host.target = To_harvester | To_machine of string * int option

type host = Host.host = {
  h_now : unit -> float;
  h_resources : unit -> float array;
  h_send : target -> Value.t -> unit;
  h_set_trigger : string -> Ast.trigger_type -> Value.t -> unit;
  h_builtin : string -> (Value.t list -> Value.t) option;
  h_on_transit : string -> string -> unit;
  h_log : string -> unit;
  h_trace : (string -> string -> unit) option;
}

let null_host = Host.null_host

type t = {
  m : Ast.machine;
  funcs : (string, Ast.func_decl) Hashtbl.t;
  host : host;
  builtins : (string, Value.t list -> Value.t) Hashtbl.t;
  globals : (string, Value.t) Hashtbl.t;
  trigger_types : (string, Ast.trigger_type) Hashtbl.t;
  mutable state : string;
  mutable locals : (string, Value.t) Hashtbl.t;
  mutable pending_transit : string option;
  mutable started : bool;
}

(* ------------------------------------------------------------------ *)
(* Environments                                                        *)
(* ------------------------------------------------------------------ *)

(* A scope chain: event-local frame -> state locals -> globals. *)
type frame = (string, Value.t) Hashtbl.t

let lookup t (frames : frame list) name =
  let rec go = function
    | [] -> None
    | f :: rest -> (
        match Hashtbl.find_opt f name with
        | Some v -> Some v
        | None -> go rest)
  in
  go (frames @ [ t.locals; t.globals ])

let assign t (frames : frame list) name v =
  let rec go = function
    | [] ->
        if Hashtbl.mem t.locals name then Hashtbl.replace t.locals name v
        else if Hashtbl.mem t.globals name then begin
          Hashtbl.replace t.globals name v;
          (* reassigning a trigger variable adjusts its schedule *)
          match Hashtbl.find_opt t.trigger_types name with
          | Some tt -> t.host.h_set_trigger name tt v
          | None -> ()
        end
        else fail "assignment to unbound variable %s" name
    | f :: rest ->
        if Hashtbl.mem f name then Hashtbl.replace f name v else go rest
  in
  go frames

(* ------------------------------------------------------------------ *)
(* Expression evaluation                                               *)
(* ------------------------------------------------------------------ *)

let num f = Value.Num f

exception Return_exc = Host.Return_exc

let rec eval t frames (e : Ast.expr) : Value.t =
  match e with
  | Ast.Bool b -> Value.Bool b
  | Ast.Int i -> num (float_of_int i)
  | Ast.Float f -> num f
  | Ast.String s -> Value.Str s
  | Ast.AnyLit -> Value.FilterV (Farm_net.Filter.atom Farm_net.Filter.Any)
  | Ast.Var v -> (
      match lookup t frames v with
      | Some x -> x
      | None -> fail "unbound variable %s" v)
  | Ast.Field (b, f) -> Value.field (eval t frames b) f
  | Ast.Call (f, args) -> call t frames f args
  | Ast.Unop (Ast.Not, a) -> (
      match eval t frames a with
      | Value.Bool b -> Value.Bool (not b)
      | Value.FilterV f -> Value.FilterV (Farm_net.Filter.Not f)
      | v -> fail "'not' applied to %s" (Value.to_string v))
  | Ast.Unop (Ast.Neg, a) -> num (-.Value.as_num (eval t frames a))
  | Ast.Binop (op, a, b) -> binop t frames op a b
  | Ast.FilterAtom (head, arg) ->
      Value.FilterV (Builtins.filter_atom_value head (eval t frames arg))
  | Ast.StructLit (name, fields) ->
      Value.Struct
        (name, List.map (fun (f, e) -> (f, eval t frames e)) fields)
  | Ast.ListLit es -> Value.List (List.map (eval t frames) es)

and binop t frames op a b =
  match op with
  | Ast.And -> (
      match eval t frames a with
      | Value.Bool false -> Value.Bool false
      | Value.Bool true -> (
          match eval t frames b with
          | Value.Bool _ as r -> r
          | v -> fail "'and' on %s" (Value.to_string v))
      | Value.FilterV fa ->
          Value.FilterV
            (Farm_net.Filter.And (fa, Value.as_filter (eval t frames b)))
      | v -> fail "'and' on %s" (Value.to_string v))
  | Ast.Or -> (
      match eval t frames a with
      | Value.Bool true -> Value.Bool true
      | Value.Bool false -> (
          match eval t frames b with
          | Value.Bool _ as r -> r
          | v -> fail "'or' on %s" (Value.to_string v))
      | Value.FilterV fa ->
          Value.FilterV
            (Farm_net.Filter.Or (fa, Value.as_filter (eval t frames b)))
      | v -> fail "'or' on %s" (Value.to_string v))
  | Ast.Eq -> Value.Bool (Value.equal (eval t frames a) (eval t frames b))
  | Ast.Neq ->
      Value.Bool (not (Value.equal (eval t frames a) (eval t frames b)))
  | Ast.Le | Ast.Ge | Ast.Lt | Ast.Gt ->
      let x = Value.as_num (eval t frames a)
      and y = Value.as_num (eval t frames b) in
      Value.Bool
        (match op with
        | Ast.Le -> x <= y
        | Ast.Ge -> x >= y
        | Ast.Lt -> x < y
        | Ast.Gt -> x > y
        | _ -> assert false)
  | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div -> (
      match (op, eval t frames a, eval t frames b) with
      | Ast.Add, Value.Str x, Value.Str y -> Value.Str (x ^ y)
      | op, va, vb ->
      let x = Value.as_num va and y = Value.as_num vb in
      num
        (match op with
        | Ast.Add -> x +. y
        | Ast.Sub -> x -. y
        | Ast.Mul -> x *. y
        | Ast.Div ->
            if y = 0. then fail "division by zero" else x /. y
        | _ -> assert false))

and call t frames fname args =
  let argv = List.map (eval t frames) args in
  match t.host.h_builtin fname with
  | Some f -> f argv
  | None -> (
      match Hashtbl.find_opt t.funcs fname with
      | Some fd -> call_almanac t fd argv
      | None -> (
          match Hashtbl.find_opt t.builtins fname with
          | Some f -> f argv
          | None -> fail "unknown function %s" fname))

and call_almanac t (fd : Ast.func_decl) argv =
  if List.length fd.fparams <> List.length argv then
    fail "%s expects %d arguments, got %d" fd.fname (List.length fd.fparams)
      (List.length argv);
  let frame = Hashtbl.create 8 in
  List.iter2 (fun (_, n) v -> Hashtbl.replace frame n v) fd.fparams argv;
  try
    exec_stmts t [ frame ] fd.fbody;
    Value.Unit
  with Return_exc v -> v

(* ------------------------------------------------------------------ *)
(* Statement execution                                                 *)
(* ------------------------------------------------------------------ *)

and exec_stmts t frames stmts = List.iter (exec_stmt t frames) stmts

and exec_stmt t frames (s : Ast.stmt) =
  match s.Ast.sk with
  | Ast.Decl (typ, n, init) ->
      let v =
        match init with
        | Some e -> eval t frames e
        | None -> Value.default_of_typ typ
      in
      (match frames with
      | f :: _ -> Hashtbl.replace f n v
      | [] -> Hashtbl.replace t.locals n v)
  | Ast.Assign (n, e) -> assign t frames n (eval t frames e)
  | Ast.Transit e ->
      let target =
        match e with
        | Ast.Var s | Ast.String s -> s
        | e -> Value.as_str (eval t frames e)
      in
      t.pending_transit <- Some target
  | Ast.If (c, th, el) ->
      if Value.truthy (eval t frames c) then exec_stmts t frames th
      else exec_stmts t frames el
  | Ast.While (c, body) ->
      let fuel = ref 1_000_000 in
      while Value.truthy (eval t frames c) do
        decr fuel;
        if !fuel <= 0 then fail "while loop exceeded iteration budget";
        exec_stmts t frames body
      done
  | Ast.Return None -> raise (Return_exc Value.Unit)
  | Ast.Return (Some e) -> raise (Return_exc (eval t frames e))
  | Ast.Send (e, dest) ->
      let target =
        match dest with
        | Ast.Harvester -> To_harvester
        | Ast.Machine (m, None) -> To_machine (m, None)
        | Ast.Machine (m, Some d) ->
            To_machine
              (m, Some (int_of_float (Value.as_num (eval t frames d))))
      in
      t.host.h_send target (eval t frames e)
  | Ast.ExprStmt e -> ignore (eval t frames e)

(* ------------------------------------------------------------------ *)
(* Event dispatch                                                      *)
(* ------------------------------------------------------------------ *)

let find_state t name =
  match
    List.find_opt (fun (s : Ast.state_decl) -> s.sname = name) t.m.states
  with
  | Some s -> s
  | None -> fail "machine %s has no state %s" t.m.mname name

(* Trigger keys used to let state-level events override machine-level
   ones. *)
let trigger_key = function
  | Ast.On_enter -> "enter"
  | Ast.On_exit -> "exit"
  | Ast.On_realloc -> "realloc"
  | Ast.On_trigger_var (y, _) -> "var:" ^ y
  | Ast.On_recv (ty, _, d) ->
      let d =
        match d with
        | Ast.Harvester -> "harvester"
        | Ast.Machine (m, _) -> m
      in
      Printf.sprintf "recv:%s:%s" (Ast.typ_to_string ty) d

(* Events applicable in the current state for a key: state events plus
   non-overridden machine events. *)
let applicable_events t key =
  let st = find_state t t.state in
  let state_evs =
    List.filter (fun (e : Ast.event) -> trigger_key e.trigger = key) st.sevents
  in
  let machine_evs =
    List.filter (fun (e : Ast.event) -> trigger_key e.trigger = key) t.m.mevents
  in
  if state_evs <> [] then state_evs else machine_evs

let run_event t (ev : Ast.event) bindings =
  let frame = Hashtbl.create 4 in
  List.iter (fun (n, v) -> Hashtbl.replace frame n v) bindings;
  (try exec_stmts t [ frame ] ev.body with Return_exc _ -> ());
  ()

let rec apply_pending_transit t =
  match t.pending_transit with
  | None -> ()
  | Some target ->
      t.pending_transit <- None;
      if target <> t.state then begin
        let old_state = t.state in
        (* exit events of the old state *)
        List.iter
          (fun ev -> run_event t ev [])
          (applicable_events t "exit");
        t.state <- target;
        (* fresh locals for the new state *)
        let st = find_state t target in
        let locals = Hashtbl.create 8 in
        List.iter
          (fun (v : Ast.var_decl) ->
            let value =
              match v.vinit with
              | Some e ->
                  (* initializers may read machine variables *)
                  eval t [] e
              | None -> Value.default_of_typ v.vtyp
            in
            Hashtbl.replace locals v.vname value)
          st.slocals;
        t.locals <- locals;
        t.host.h_on_transit old_state target;
        List.iter
          (fun ev -> run_event t ev [])
          (applicable_events t "enter");
        (* an enter handler can itself transit *)
        apply_pending_transit t
      end

let dispatch t key bindings =
  let evs = applicable_events t key in
  List.iter (fun ev -> run_event t ev bindings) evs;
  apply_pending_transit t;
  evs <> []

(* ------------------------------------------------------------------ *)
(* Public API                                                          *)
(* ------------------------------------------------------------------ *)

let create ?(externals = []) ~program ~machine host =
  let machines = (program : Ast.program).machines in
  let m =
    match
      List.find_opt (fun (m : Ast.machine) -> m.mname = machine) machines
    with
    | Some m ->
        if m.extends <> None then
          fail "machine %s still has unresolved inheritance; run Typecheck.check"
            machine
        else m
    | None -> fail "program has no machine %s" machine
  in
  let funcs = Hashtbl.create 8 in
  List.iter
    (fun (f : Ast.func_decl) -> Hashtbl.replace funcs f.fname f)
    program.funcs;
  let t =
    { m; funcs; host; builtins = Builtins.table host;
      globals = Hashtbl.create 16;
      trigger_types = Hashtbl.create 4;
      state =
        (match m.states with
        | s :: _ -> s.sname
        | [] -> fail "machine %s has no states" machine);
      locals = Hashtbl.create 8; pending_transit = None; started = false }
  in
  (* machine variables *)
  List.iter
    (fun (v : Ast.var_decl) ->
      let value =
        match List.assoc_opt v.vname externals with
        | Some ext when v.is_external -> ext
        | Some _ | None -> (
            match v.vinit with
            | Some e -> eval t [] e
            | None -> Value.default_of_typ v.vtyp)
      in
      Hashtbl.replace t.globals v.vname value)
    m.mvars;
  (* trigger variables: remember their type; the runtime reads the machine
     AST directly for scheduling, the interpreter only forwards runtime
     re-assignments *)
  List.iter
    (fun (td : Ast.trig_decl) ->
      Hashtbl.replace t.trigger_types td.tname td.ttyp;
      let value =
        match td.tinit with
        | Some e -> eval t [] e
        | None -> Value.Unit
      in
      Hashtbl.replace t.globals td.tname value)
    m.mtrigs;
  t

let machine t = t.m
let current_state t = t.state

let var t name =
  match Hashtbl.find_opt t.locals name with
  | Some v -> Some v
  | None -> Hashtbl.find_opt t.globals name

let start t =
  if not t.started then begin
    t.started <- true;
    (* initialize the first state's locals *)
    let st = find_state t t.state in
    List.iter
      (fun (v : Ast.var_decl) ->
        let value =
          match v.vinit with
          | Some e -> eval t [] e
          | None -> Value.default_of_typ v.vtyp
        in
        Hashtbl.replace t.locals v.vname value)
      st.slocals;
    ignore (dispatch t "enter" [])
  end

let fire_trigger t name value =
  (match t.host.h_trace with None -> () | Some f -> f name t.state);
  let key = "var:" ^ name in
  let evs = applicable_events t key in
  List.iter
    (fun (ev : Ast.event) ->
      let bindings =
        match ev.trigger with
        | Ast.On_trigger_var (_, Some x) -> [ (x, value) ]
        | _ -> []
      in
      run_event t ev bindings)
    evs;
  apply_pending_transit t

(* The reference engine has no per-trigger precomputation; a prepared
   trigger is just a partial application. *)
let prepare_trigger t name = fun value -> fire_trigger t name value

let value_matches_typ (v : Value.t) (ty : Ast.typ) =
  match (v, ty) with
  | Value.Num _, (Ast.Tint | Ast.Tlong | Ast.Tfloat) -> true
  | Value.Bool _, Ast.Tbool -> true
  | Value.Str _, Ast.Tstring -> true
  | Value.List _, Ast.Tlist -> true
  | Value.Packet _, Ast.Tpacket -> true
  | Value.Action _, Ast.Taction -> true
  | Value.FilterV _, Ast.Tfilter -> true
  | Value.Stats _, Ast.Tstats -> true
  | Value.Struct ("Rule", _), Ast.Trule -> true
  | Value.Unit, Ast.Tunit -> true
  | _ -> false

let deliver t ~from value =
  (* find recv events whose source pattern and value type match *)
  let st = find_state t t.state in
  let candidates = st.sevents @ t.m.mevents in
  let matching =
    List.filter
      (fun (ev : Ast.event) ->
        match ev.trigger with
        | Ast.On_recv (ty, _, dest) ->
            let src_ok =
              match (dest, from) with
              | Ast.Harvester, From_harvester -> true
              | Ast.Machine (m, _), From_machine m' -> m = m'
              | Ast.Harvester, From_machine _
              | Ast.Machine _, From_harvester ->
                  false
            in
            src_ok && value_matches_typ value ty
        | _ -> false)
      candidates
  in
  match matching with
  | [] -> false
  | ev :: _ ->
      let bindings =
        match ev.trigger with
        | Ast.On_recv (_, n, _) -> [ (n, value) ]
        | _ -> []
      in
      run_event t ev bindings;
      apply_pending_transit t;
      true

let realloc t = ignore (dispatch t "realloc" [])

let snapshot t =
  let sorted = List.sort (fun (a, _) (b, _) -> String.compare a b) in
  let vars =
    sorted (Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.globals [])
    @ sorted
        (Hashtbl.fold (fun k v acc -> ("state." ^ k, v) :: acc) t.locals [])
  in
  (vars, t.state)

let restore t ~vars ~state =
  t.state <- state;
  t.locals <- Hashtbl.create 8;
  List.iter
    (fun (k, v) ->
      match String.index_opt k '.' with
      | Some i when String.sub k 0 i = "state" ->
          Hashtbl.replace t.locals
            (String.sub k (i + 1) (String.length k - i - 1))
            v
      | _ -> Hashtbl.replace t.globals k v)
    vars;
  t.started <- true

let call_function t name argv =
  match Hashtbl.find_opt t.funcs name with
  | Some fd -> call_almanac t fd argv
  | None -> fail "program has no function %s" name

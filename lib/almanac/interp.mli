(** Interpreter for Almanac machines — the execution core of a seed.

    The interpreter is host-agnostic: every effect (time, resources,
    messaging, TCAM access, polling-rate changes) goes through a {!host}
    record.  The FARM runtime wires the host to a soil on a simulated
    switch; tests can wire it to stubs. *)

(** The host interface is shared with the compiled engine ({!Exec}); the
    definitions live in {!Host} and are re-exported here by equation so
    [Interp.host] and [Host.host] are the same type, and
    [Interp.Runtime_error] is {!Host.Runtime_error}. *)

exception Runtime_error of string

(** Where a received message came from (pattern-matched by [recv]). *)
type source = Host.source = From_harvester | From_machine of string

(** A resolved [send] destination: the interpreter evaluates any [@dst]
    expression before handing the message to the host. *)
type target = Host.target = To_harvester | To_machine of string * int option

type host = Host.host = {
  h_now : unit -> float;
  h_resources : unit -> float array;
      (** allocated resources, indexed per {!Analysis.resource_index} *)
  h_send : target -> Value.t -> unit;
  h_set_trigger : string -> Ast.trigger_type -> Value.t -> unit;
      (** trigger variable reassigned at runtime (new struct or bare
          period); the host reschedules polling *)
  h_builtin : string -> (Value.t list -> Value.t) option;
      (** host-provided auxiliary functions; consulted before the pure
          built-ins *)
  h_on_transit : string -> string -> unit;  (** old state, new state *)
  h_log : string -> unit;
  h_trace : (string -> string -> unit) option;
      (** trigger-dispatch observability hook; see {!Host.host} *)
}

(** A do-nothing host for pure tests. *)
val null_host : host

type t

(** [create ~program ~machine host] instantiates machine [machine] of the
    (type-checked, inheritance-resolved) program.  [externals] assigns the
    machine's [external] variables — missing externals keep their declared
    initializer or type default. *)
val create :
  ?externals:(string * Value.t) list ->
  program:Ast.program ->
  machine:string ->
  host ->
  t

val machine : t -> Ast.machine
val current_state : t -> string

(** Dispatch key of an event trigger ("enter", "exit", "realloc",
    "var:y", "recv:typ:src") — the compiler and the symbolic verifier
    apply the same state-overrides-machine dispatch rule. *)
val trigger_key : Ast.trigger -> string

(** Value of a machine or current-state variable. *)
val var : t -> string -> Value.t option

(** Enter the initial state (fires its [enter] events). *)
val start : t -> unit

(** A trigger variable fired, carrying polled stats / a probed packet /
    the current time. *)
val fire_trigger : t -> string -> Value.t -> unit

(** [prepare_trigger t name] resolves trigger [name] once and returns a
    closure equivalent to [fire_trigger t name] (hot-path entry point of
    the {!Engine.S} interface). *)
val prepare_trigger : t -> string -> Value.t -> unit

(** Deliver a message; [true] when some [recv] event consumed it. *)
val deliver : t -> from:source -> Value.t -> bool

(** Resource reallocation notification (placement re-optimized). *)
val realloc : t -> unit

(** Serialize the mutable state (state name + variables) for seed
    migration, and restore it on another instance of the same machine. *)
val snapshot : t -> (string * Value.t) list * string

val restore : t -> vars:(string * Value.t) list -> state:string -> unit

(** Call an Almanac-defined auxiliary function directly (used by tests). *)
val call_function : t -> string -> Value.t list -> Value.t

(* Machine-level semantic lint; see the .mli for the code table. *)

module StringSet = Set.Make (String)

(* ------------------------------------------------------------------ *)
(* Identifier-use collection                                           *)
(* ------------------------------------------------------------------ *)

(* Every identifier an expression mentions (variables and field bases;
   function names are not variables). *)
let rec expr_uses acc (e : Ast.expr) =
  match e with
  | Ast.Bool _ | Ast.Int _ | Ast.Float _ | Ast.String _ | Ast.AnyLit -> acc
  | Ast.Var v -> StringSet.add v acc
  | Ast.Field (b, _) -> expr_uses acc b
  | Ast.Call (_, args) -> List.fold_left expr_uses acc args
  | Ast.Unop (_, a) -> expr_uses acc a
  | Ast.Binop (_, a, b) -> expr_uses (expr_uses acc a) b
  | Ast.FilterAtom (_, a) -> expr_uses acc a
  | Ast.StructLit (_, fields) ->
      List.fold_left (fun acc (_, e) -> expr_uses acc e) acc fields
  | Ast.ListLit es -> List.fold_left expr_uses acc es

let dest_uses acc = function
  | Ast.Harvester | Ast.Machine (_, None) -> acc
  | Ast.Machine (_, Some e) -> expr_uses acc e

(* [transit x] names a state, not a variable — skip its target. *)
let rec stmt_uses acc (s : Ast.stmt) =
  match s.Ast.sk with
  | Ast.Decl (_, n, init) ->
      let acc = StringSet.add n acc in
      (match init with Some e -> expr_uses acc e | None -> acc)
  | Ast.Assign (n, e) -> expr_uses (StringSet.add n acc) e
  | Ast.Transit _ -> acc
  | Ast.If (c, t, f) -> stmts_uses (stmts_uses (expr_uses acc c) t) f
  | Ast.While (c, b) -> stmts_uses (expr_uses acc c) b
  | Ast.Return None -> acc
  | Ast.Return (Some e) -> expr_uses acc e
  | Ast.Send (e, d) -> dest_uses (expr_uses acc e) d
  | Ast.ExprStmt e -> expr_uses acc e

and stmts_uses acc ss = List.fold_left stmt_uses acc ss

let event_uses acc (ev : Ast.event) =
  let acc =
    match ev.trigger with
    | Ast.On_trigger_var (y, _) -> StringSet.add y acc
    | Ast.On_enter | Ast.On_exit | Ast.On_realloc | Ast.On_recv _ -> acc
  in
  stmts_uses acc ev.body

let state_uses acc (s : Ast.state_decl) =
  let acc =
    List.fold_left
      (fun acc (v : Ast.var_decl) ->
        match v.vinit with Some e -> expr_uses acc e | None -> acc)
      acc s.slocals
  in
  let acc =
    match s.sutil with Some u -> stmts_uses acc u.ubody | None -> acc
  in
  List.fold_left event_uses acc s.sevents

let machine_uses (m : Ast.machine) =
  let acc = StringSet.empty in
  let acc =
    List.fold_left
      (fun acc (v : Ast.var_decl) ->
        match v.vinit with Some e -> expr_uses acc e | None -> acc)
      acc m.mvars
  in
  let acc =
    List.fold_left
      (fun acc (t : Ast.trig_decl) ->
        match t.tinit with Some e -> expr_uses acc e | None -> acc)
      acc m.mtrigs
  in
  let acc =
    List.fold_left
      (fun acc (p : Ast.place_decl) ->
        match p.pconstraint with
        | Ast.Anywhere -> acc
        | Ast.At_nodes es -> List.fold_left expr_uses acc es
        | Ast.On_range { pfilter; rbound; _ } ->
            let acc =
              match pfilter with Some f -> expr_uses acc f | None -> acc
            in
            expr_uses acc rbound)
      acc m.places
  in
  let acc = List.fold_left state_uses acc m.states in
  List.fold_left event_uses acc m.mevents

(* ------------------------------------------------------------------ *)
(* Transit structure                                                   *)
(* ------------------------------------------------------------------ *)

let transit_target (e : Ast.expr) =
  match e with Ast.Var s | Ast.String s -> Some s | _ -> None

(* All transit targets anywhere in a statement list. *)
let rec transits acc (ss : Ast.stmt list) =
  List.fold_left
    (fun acc s ->
      match s.Ast.sk with
      | Ast.Transit e -> (
          match transit_target e with Some t -> t :: acc | None -> acc)
      | Ast.If (_, t, f) -> transits (transits acc t) f
      | Ast.While (_, b) -> transits acc b
      | Ast.Decl _ | Ast.Assign _ | Ast.Return _ | Ast.Send _
      | Ast.ExprStmt _ ->
          acc)
    acc ss

let has_transit ss = transits [] ss <> []

(* Source positions of every transit site (for reach-backed L102). *)
let rec transit_sites acc (ss : Ast.stmt list) =
  List.fold_left
    (fun acc s ->
      match s.Ast.sk with
      | Ast.Transit _ -> s.Ast.sloc :: acc
      | Ast.If (_, t, f) -> transit_sites (transit_sites acc t) f
      | Ast.While (_, b) -> transit_sites acc b
      | Ast.Decl _ | Ast.Assign _ | Ast.Return _ | Ast.Send _
      | Ast.ExprStmt _ ->
          acc)
    acc ss

(* ------------------------------------------------------------------ *)
(* L101 unreachable states                                             *)
(* ------------------------------------------------------------------ *)

let check_reachability ~diag (m : Ast.machine) =
  match m.states with
  | [] -> ()
  | initial :: _ ->
      (* machine-level handlers run in every state, so their transits are
         edges out of every reachable state *)
      let global_targets =
        List.fold_left (fun acc ev -> transits acc ev.Ast.body) [] m.mevents
      in
      let targets_of (s : Ast.state_decl) =
        List.fold_left (fun acc ev -> transits acc ev.Ast.body)
          global_targets s.sevents
      in
      let reachable = Hashtbl.create 8 in
      let rec visit name =
        if not (Hashtbl.mem reachable name) then begin
          Hashtbl.replace reachable name ();
          match
            List.find_opt (fun (s : Ast.state_decl) -> s.sname = name) m.states
          with
          | Some s -> List.iter visit (targets_of s)
          | None -> ()
        end
      in
      visit initial.sname;
      List.iter
        (fun (s : Ast.state_decl) ->
          if not (Hashtbl.mem reachable s.sname) then
            diag
              (Diagnostic.warningf ~pos:s.stloc ~code:"L101"
                 "machine %s: state %s is unreachable from the initial \
                  state %s"
                 m.mname s.sname initial.sname))
        m.states

(* ------------------------------------------------------------------ *)
(* L102 dead / shadowed transitions                                    *)
(* ------------------------------------------------------------------ *)

(* A [transit] only records a pending target; the handler body keeps
   running and a later [transit] overwrites it.  Within one top-level
   statement list, an earlier transit is dead when a later statement
   transits unconditionally, or under a syntactically identical guard. *)
let check_dead_transits ~diag mname (ss : Ast.stmt list) =
  let top_transit (s : Ast.stmt) =
    match s.Ast.sk with Ast.Transit _ -> Some s.Ast.sloc | _ -> None
  in
  let guarded_transit (s : Ast.stmt) =
    (* an if whose branches transit, keyed by its guard *)
    match s.Ast.sk with
    | Ast.If (c, t, f) when has_transit t || has_transit f -> Some c
    | _ -> None
  in
  let arr = Array.of_list ss in
  let n = Array.length arr in
  for i = 0 to n - 1 do
    let shadowed_by j =
      top_transit arr.(j) <> None
      ||
      match (guarded_transit arr.(i), guarded_transit arr.(j)) with
      | Some ci, Some cj -> ci = cj
      | _ -> false
    in
    let rec exists_later j = j < n && (shadowed_by j || exists_later (j + 1)) in
    match top_transit arr.(i) with
    | Some pos when exists_later (i + 1) ->
        diag
          (Diagnostic.warningf ~pos ~code:"L102"
             "machine %s: transition never takes effect: a later transit \
              in the same handler always overwrites it"
             mname)
    | _ -> (
        match guarded_transit arr.(i) with
        | Some _ when exists_later (i + 1) ->
            diag
              (Diagnostic.warningf ~pos:arr.(i).Ast.sloc ~code:"L102"
                 "machine %s: transition is shadowed: a later transit \
                  under the same guard (or unconditional) overwrites it"
                 mname)
        | _ -> ())
  done

(* ------------------------------------------------------------------ *)
(* L105 util linearity                                                 *)
(* ------------------------------------------------------------------ *)

(* Syntactic degree in the resource parameter [p]: mirrors what
   Analysis.to_linear accepts, so non-linear utils are flagged here with
   the span of the offending statement instead of failing at deploy. *)
let check_util_linear ~diag mname (u : Ast.util_decl) =
  let p = u.uparam in
  let rec deg (e : Ast.expr) =
    match e with
    | Ast.Var v when v = p -> 1
    | Ast.Field (Ast.Var v, _) when v = p -> 1
    | Ast.Bool _ | Ast.Int _ | Ast.Float _ | Ast.String _ | Ast.AnyLit
    | Ast.Var _ | Ast.Field _ ->
        0
    | Ast.Call (("min" | "max"), args) ->
        List.fold_left (fun acc a -> max acc (deg a)) 0 args
    | Ast.Call (_, args) ->
        List.fold_left (fun acc a -> max acc (deg a)) 0 args
    | Ast.Unop (_, a) -> deg a
    | Ast.Binop ((Ast.Add | Ast.Sub), a, b) -> max (deg a) (deg b)
    | Ast.Binop (Ast.Mul, a, b) -> deg a + deg b
    | Ast.Binop (Ast.Div, a, b) -> deg a + if deg b > 0 then 2 else 0
    | Ast.Binop (_, a, b) -> max (deg a) (deg b)
    | Ast.FilterAtom (_, a) -> deg a
    | Ast.StructLit (_, fields) ->
        List.fold_left (fun acc (_, e) -> max acc (deg e)) 0 fields
    | Ast.ListLit es -> List.fold_left (fun acc e -> max acc (deg e)) 0 es
  in
  let check_expr pos what e =
    if deg e > 1 then
      diag
        (Diagnostic.errorf ~pos ~code:"L105"
           "machine %s: util %s is not linear in %s — the placement \
            analysis will reject it (§III-A f)"
           mname what p)
  in
  let rec walk (ss : Ast.stmt list) =
    List.iter
      (fun (s : Ast.stmt) ->
        match s.Ast.sk with
        | Ast.If (c, t, f) ->
            check_expr s.Ast.sloc "condition" c;
            walk t;
            walk f
        | Ast.Return (Some e) -> check_expr s.Ast.sloc "return value" e
        | _ -> ())
      ss
  in
  walk u.ubody

(* ------------------------------------------------------------------ *)
(* L107 enter-transit livelock                                         *)
(* ------------------------------------------------------------------ *)

(* Effective unconditional enter-transition of a state: the last
   top-level unconditional [transit] across its enter handlers (state
   handlers override machine-level ones for the same trigger). *)
let enter_transit (m : Ast.machine) (s : Ast.state_decl) =
  let enters evs =
    List.filter (fun (ev : Ast.event) -> ev.trigger = Ast.On_enter) evs
  in
  let events =
    match enters s.sevents with [] -> enters m.mevents | evs -> evs
  in
  let last_unconditional acc (ev : Ast.event) =
    List.fold_left
      (fun acc (st : Ast.stmt) ->
        match st.Ast.sk with
        | Ast.Transit e -> (
            match transit_target e with
            | Some t -> Some (t, st.Ast.sloc)
            | None -> acc)
        | _ -> acc)
      acc ev.body
  in
  List.fold_left last_unconditional None events

let check_livelock ~diag (m : Ast.machine) =
  let edge s = Option.map fst (enter_transit m s) in
  let state name =
    List.find_opt (fun (s : Ast.state_decl) -> s.sname = name) m.states
  in
  (* a state livelocks if following unconditional enter-transits from it
     revisits a state — the switch CPU never yields back to the soil *)
  List.iter
    (fun (s : Ast.state_decl) ->
      let rec follow seen name =
        if List.mem name seen then Some name
        else
          match Option.bind (state name) edge with
          | Some next -> follow (name :: seen) next
          | None -> None
      in
      match edge s with
      | Some next when follow [ s.sname ] next <> None ->
          let pos =
            match enter_transit m s with
            | Some (_, pos) -> pos
            | None -> s.stloc
          in
          diag
            (Diagnostic.errorf ~pos ~code:"L107"
               "machine %s: state %s enters a transit cycle with no \
                timer/poll trigger — the seed would livelock on the \
                switch CPU"
               m.mname s.sname)
      | _ -> ())
    m.states

(* ------------------------------------------------------------------ *)
(* Reachability-backed verdicts (L101/L102/L107 via Reach)             *)
(* ------------------------------------------------------------------ *)

(* A Reach result is only trusted for machine [m] when it analyzed [m]
   and ran to completion; otherwise the syntactic heuristics apply. *)
let reach_for (m : Ast.machine) = function
  | Some (r : Reach.result) when r.Reach.machine = m.mname && r.Reach.complete
    ->
      Some r
  | _ -> None

let reach_unreachable ~diag (r : Reach.result) (m : Ast.machine) =
  match m.states with
  | [] -> ()
  | initial :: _ ->
      List.iter
        (fun (s : Ast.state_decl) ->
          if not (List.mem s.sname r.Reach.reachable) then
            diag
              (Diagnostic.warningf ~pos:s.stloc ~code:"L101"
                 "machine %s: state %s is unreachable from the initial \
                  state %s (no feasible transit path reaches it)"
                 m.mname s.sname initial.sname))
        m.states

(* A transit site is dead when no feasible execution lets it decide the
   next state — unreachable code, an infeasible guard, or a later
   transit that always overwrites its pending target.  Sites inside
   unreachable states are skipped: their L101 already covers them. *)
let reach_dead_transits ~diag (r : Reach.result) (m : Ast.machine) =
  let effective = List.map fst r.Reach.effective_transits in
  let check ss =
    List.iter
      (fun pos ->
        if not (List.mem pos effective) then
          diag
            (Diagnostic.warningf ~pos ~code:"L102"
               "machine %s: transition never takes effect on any feasible \
                execution (its pending target is unreachable, infeasible \
                or always overwritten)"
               m.mname))
      (transit_sites [] ss)
  in
  List.iter (fun (ev : Ast.event) -> check ev.Ast.body) m.mevents;
  List.iter
    (fun (s : Ast.state_decl) ->
      if List.mem s.sname r.Reach.reachable then
        List.iter (fun (ev : Ast.event) -> check ev.Ast.body) s.sevents)
    m.states

let reach_livelock ~diag (r : Reach.result) (m : Ast.machine) =
  match r.Reach.livelock with
  | None -> ()
  | Some cycle ->
      let head = match cycle with n :: _ -> n | [] -> "" in
      let pos =
        match
          List.find_opt (fun (s : Ast.state_decl) -> s.sname = head) m.states
        with
        | Some s -> (
            match enter_transit m s with
            | Some (_, pos) -> pos
            | None -> s.stloc)
        | None -> Ast.no_pos
      in
      diag
        (Diagnostic.errorf ~pos ~code:"L107"
           "machine %s: guaranteed enter-transit cycle %s — the seed \
            would livelock on the switch CPU"
           m.mname
           (String.concat " -> " cycle))

(* ------------------------------------------------------------------ *)
(* Per-machine driver                                                  *)
(* ------------------------------------------------------------------ *)

let check_machine ?file ?(bound_externals = []) ?reach (m : Ast.machine) =
  let out = ref [] in
  let diag d = out := d :: !out in
  let reach = reach_for m reach in
  (match reach with
  | Some r -> reach_unreachable ~diag r m
  | None -> check_reachability ~diag m);
  (* L102 over every handler body (top level only) *)
  let every_body f =
    List.iter (fun (ev : Ast.event) -> f ev.Ast.body) m.mevents;
    List.iter
      (fun (s : Ast.state_decl) ->
        List.iter (fun (ev : Ast.event) -> f ev.Ast.body) s.sevents)
      m.states
  in
  (match reach with
  | Some r -> reach_dead_transits ~diag r m
  | None -> every_body (check_dead_transits ~diag m.mname));
  (* L103 / L104: unused variables and trigger subscriptions *)
  let used = machine_uses m in
  List.iter
    (fun (v : Ast.var_decl) ->
      if not (StringSet.mem v.vname used) then
        diag
          (Diagnostic.warningf ~pos:v.vloc ~code:"L103"
             "machine %s: variable %s is never used" m.mname v.vname))
    m.mvars;
  List.iter
    (fun (s : Ast.state_decl) ->
      let used = state_uses StringSet.empty s in
      List.iter
        (fun (v : Ast.var_decl) ->
          if not (StringSet.mem v.vname used) then
            diag
              (Diagnostic.warningf ~pos:v.vloc ~code:"L103"
                 "machine %s: state %s: variable %s is never used" m.mname
                 s.sname v.vname))
        s.slocals)
    m.states;
  List.iter
    (fun (t : Ast.trig_decl) ->
      if not (StringSet.mem t.tname used) then
        diag
          (Diagnostic.warningf ~pos:t.tloc ~code:"L104"
             "machine %s: %s variable %s has no handler — its \
              subscription still polls and burns switch CPU"
             m.mname
             (Ast.trigger_type_to_string t.ttyp)
             t.tname))
    m.mtrigs;
  (* L105 *)
  List.iter
    (fun (s : Ast.state_decl) ->
      match s.sutil with
      | Some u -> check_util_linear ~diag m.mname u
      | None -> ())
    m.states;
  (* L106 *)
  List.iter
    (fun (v : Ast.var_decl) ->
      if v.is_external && v.vinit = None
         && not (List.mem v.vname bound_externals)
      then
        diag
          (Diagnostic.errorf ~pos:v.vloc ~code:"L106"
             "machine %s: external variable %s has neither an initializer \
              nor a deployment binding"
             m.mname v.vname))
    m.mvars;
  (match reach with
  | Some r -> reach_livelock ~diag r m
  | None -> check_livelock ~diag m);
  let ds = Diagnostic.sort (List.rev !out) in
  match file with Some f -> Diagnostic.with_file f ds | None -> ds

let check_program ?file ?(externals = []) ?(reach = []) (p : Ast.program) =
  Diagnostic.sort
    (List.concat_map
       (fun (m : Ast.machine) ->
         let bound_externals =
           match List.assoc_opt m.mname externals with
           | Some l -> l
           | None -> []
         in
         let reach =
           List.find_opt (fun (r : Reach.result) -> r.Reach.machine = m.mname)
             reach
         in
         check_machine ?file ~bound_externals ?reach m)
       p.machines)

(** Lint: machine-level semantic checks over type-checked Almanac programs.

    The pass runs after {!Typecheck.check} (it expects inheritance to be
    resolved) and reports {!Diagnostic.t}s with stable [L1xx] codes:

    - [L101] (warning) unreachable state: no chain of [transit]s from the
      initial state reaches it.
    - [L102] (warning) dead or shadowed transition: a [transit] whose
      pending target is always overwritten by a later [transit] in the
      same handler — an unconditional one, or one under a syntactically
      identical guard.
    - [L103] (warning) unused variable: a machine or state variable that
      no expression, assignment or handler references.
    - [L104] (warning) unused trigger subscription: a [poll]/[probe]/[time]
      variable no [when] clause or expression references; its subscription
      still polls the ASIC and burns switch CPU.
    - [L105] (error) non-linear [util]: a utility or constraint expression
      that is not linear in the resource parameter — {!Analysis.utility}
      would reject it at deploy time; caught here with a precise span.
    - [L106] (error) missing [external] binding: an [external] variable
      with neither an initializer nor a deployment-provided binding.
    - [L107] (error) livelock: states whose [enter] handlers
      unconditionally [transit] in a cycle (including self-loops) — the
      machine would spin on the switch CPU without yielding to a
      timer/poll trigger. *)

(** [check_program ?file ?externals p] lints every machine of a
    type-checked program.  [externals] lists, per machine name, the
    [external] variables the deployment binds (see [L106]).  [file] is
    stamped on every diagnostic. *)
val check_program :
  ?file:string ->
  ?externals:(string * string list) list ->
  Ast.program ->
  Diagnostic.t list

(** Lint a single resolved machine. *)
val check_machine :
  ?file:string -> ?bound_externals:string list -> Ast.machine -> Diagnostic.t list

(** Lint: machine-level semantic checks over type-checked Almanac programs.

    The pass runs after {!Typecheck.check} (it expects inheritance to be
    resolved) and reports {!Diagnostic.t}s with stable [L1xx] codes:

    - [L101] (warning) unreachable state: no chain of [transit]s from the
      initial state reaches it.
    - [L102] (warning) dead or shadowed transition: a [transit] whose
      pending target is always overwritten by a later [transit] in the
      same handler — an unconditional one, or one under a syntactically
      identical guard.
    - [L103] (warning) unused variable: a machine or state variable that
      no expression, assignment or handler references.
    - [L104] (warning) unused trigger subscription: a [poll]/[probe]/[time]
      variable no [when] clause or expression references; its subscription
      still polls the ASIC and burns switch CPU.
    - [L105] (error) non-linear [util]: a utility or constraint expression
      that is not linear in the resource parameter — {!Analysis.utility}
      would reject it at deploy time; caught here with a precise span.
    - [L106] (error) missing [external] binding: an [external] variable
      with neither an initializer nor a deployment-provided binding.
    - [L107] (error) livelock: states whose [enter] handlers
      unconditionally [transit] in a cycle (including self-loops) — the
      machine would spin on the switch CPU without yielding to a
      timer/poll trigger.

    L101/L102/L107 are syntactic heuristics by default.  When a
    {!Reach.result} for the machine is supplied (and its analysis ran to
    completion), they upgrade to reachability-backed verdicts: L101
    flags states no feasible transit path reaches, L102 flags transit
    sites that never decide the next state on any feasible execution,
    and L107 reports guaranteed enter-transit cycles with the cycle
    spelled out. *)

(** [check_program ?file ?externals ?reach p] lints every machine of a
    type-checked program.  [externals] lists, per machine name, the
    [external] variables the deployment binds (see [L106]).  [reach]
    supplies {!Reach} results (matched to machines by name) that upgrade
    L101/L102/L107 to semantic verdicts.  [file] is stamped on every
    diagnostic. *)
val check_program :
  ?file:string ->
  ?externals:(string * string list) list ->
  ?reach:Reach.result list ->
  Ast.program ->
  Diagnostic.t list

(** Lint a single resolved machine; [reach] (if supplied, complete, and
    for this machine) upgrades L101/L102/L107. *)
val check_machine :
  ?file:string ->
  ?bound_externals:string list ->
  ?reach:Reach.result ->
  Ast.machine ->
  Diagnostic.t list

exception Decode_error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Decode_error m)) fmt

let el = Xml.element

(* ------------------------------------------------------------------ *)
(* Encoding                                                            *)
(* ------------------------------------------------------------------ *)

let typ_attr t = Ast.typ_to_string t

let typ_of_string s =
  match s with
  | "bool" -> Ast.Tbool
  | "int" -> Ast.Tint
  | "long" -> Ast.Tlong
  | "float" -> Ast.Tfloat
  | "string" -> Ast.Tstring
  | "list" -> Ast.Tlist
  | "packet" -> Ast.Tpacket
  | "action" -> Ast.Taction
  | "filter" -> Ast.Tfilter
  | "stats" -> Ast.Tstats
  | "rule" -> Ast.Trule
  | "resources" -> Ast.Tresources
  | "unit" -> Ast.Tunit
  | s -> fail "unknown type %S" s

let binop_of_string s =
  match s with
  | "+" -> Ast.Add
  | "-" -> Ast.Sub
  | "*" -> Ast.Mul
  | "/" -> Ast.Div
  | "and" -> Ast.And
  | "or" -> Ast.Or
  | "==" -> Ast.Eq
  | "<>" -> Ast.Neq
  | "<=" -> Ast.Le
  | ">=" -> Ast.Ge
  | "<" -> Ast.Lt
  | ">" -> Ast.Gt
  | s -> fail "unknown operator %S" s

let filter_head_of_string s =
  match s with
  | "srcIP" -> Ast.SrcIP
  | "dstIP" -> Ast.DstIP
  | "srcPort" -> Ast.SrcPort
  | "dstPort" -> Ast.DstPort
  | "port" -> Ast.PortF
  | "proto" -> Ast.ProtoF
  | s -> fail "unknown filter head %S" s

let rec expr_to_xml (e : Ast.expr) =
  match e with
  | Ast.Bool b -> el "bool" ~attrs:[ ("v", string_of_bool b) ] []
  | Ast.Int i -> el "int" ~attrs:[ ("v", string_of_int i) ] []
  | Ast.Float f -> el "float" ~attrs:[ ("v", Printf.sprintf "%h" f) ] []
  | Ast.String s -> el "string" ~attrs:[ ("v", s) ] []
  | Ast.AnyLit -> el "any" []
  | Ast.Var v -> el "var" ~attrs:[ ("name", v) ] []
  | Ast.Field (b, f) -> el "field" ~attrs:[ ("name", f) ] [ expr_to_xml b ]
  | Ast.Call (f, args) ->
      el "call" ~attrs:[ ("name", f) ] (List.map expr_to_xml args)
  | Ast.Unop (op, a) ->
      el "unop"
        ~attrs:[ ("op", match op with Ast.Not -> "not" | Ast.Neg -> "neg") ]
        [ expr_to_xml a ]
  | Ast.Binop (op, a, b) ->
      el "binop"
        ~attrs:[ ("op", Ast.binop_to_string op) ]
        [ expr_to_xml a; expr_to_xml b ]
  | Ast.FilterAtom (h, a) ->
      el "filter-atom"
        ~attrs:[ ("head", Ast.filter_head_to_string h) ]
        [ expr_to_xml a ]
  | Ast.StructLit (name, fields) ->
      el "struct" ~attrs:[ ("name", name) ]
        (List.map
           (fun (f, e) ->
             el "init" ~attrs:[ ("field", f) ] [ expr_to_xml e ])
           fields)
  | Ast.ListLit es -> el "list" (List.map expr_to_xml es)

let dest_to_xml (d : Ast.dest) =
  match d with
  | Ast.Harvester -> el "harvester" []
  | Ast.Machine (m, None) -> el "machine-dest" ~attrs:[ ("name", m) ] []
  | Ast.Machine (m, Some e) ->
      el "machine-dest" ~attrs:[ ("name", m) ] [ expr_to_xml e ]

let rec stmt_to_xml (s : Ast.stmt) =
  match s.Ast.sk with
  | Ast.Decl (t, n, init) ->
      el "decl"
        ~attrs:[ ("type", typ_attr t); ("name", n) ]
        (match init with Some e -> [ expr_to_xml e ] | None -> [])
  | Ast.Assign (n, e) ->
      el "assign" ~attrs:[ ("name", n) ] [ expr_to_xml e ]
  | Ast.Transit e -> el "transit" [ expr_to_xml e ]
  | Ast.If (c, t, f) ->
      el "if"
        [ el "cond" [ expr_to_xml c ];
          el "then" (List.map stmt_to_xml t);
          el "else" (List.map stmt_to_xml f) ]
  | Ast.While (c, b) ->
      el "while"
        [ el "cond" [ expr_to_xml c ]; el "body" (List.map stmt_to_xml b) ]
  | Ast.Return None -> el "return" []
  | Ast.Return (Some e) -> el "return" [ expr_to_xml e ]
  | Ast.Send (e, d) ->
      el "send" [ el "value" [ expr_to_xml e ]; dest_to_xml d ]
  | Ast.ExprStmt e -> el "exprstmt" [ expr_to_xml e ]

let body_to_xml stmts = List.map stmt_to_xml stmts

let trigger_to_xml (t : Ast.trigger) =
  match t with
  | Ast.On_enter -> el "enter" []
  | Ast.On_exit -> el "exit" []
  | Ast.On_realloc -> el "realloc" []
  | Ast.On_trigger_var (y, bind) ->
      el "on-var"
        ~attrs:
          (("name", y) :: (match bind with Some x -> [ ("as", x) ] | None -> []))
        []
  | Ast.On_recv (ty, n, d) ->
      el "recv"
        ~attrs:[ ("type", typ_attr ty); ("name", n) ]
        [ dest_to_xml d ]

let event_to_xml (e : Ast.event) =
  el "event" [ trigger_to_xml e.trigger; el "body" (body_to_xml e.body) ]

let var_to_xml (v : Ast.var_decl) =
  el "var"
    ~attrs:
      (("type", typ_attr v.vtyp) :: ("name", v.vname)
      :: (if v.is_external then [ ("external", "true") ] else []))
    (match v.vinit with Some e -> [ expr_to_xml e ] | None -> [])

let trig_to_xml (t : Ast.trig_decl) =
  el "trigger"
    ~attrs:
      [ ("type", Ast.trigger_type_to_string t.ttyp); ("name", t.tname) ]
    (match t.tinit with Some e -> [ expr_to_xml e ] | None -> [])

let place_to_xml (p : Ast.place_decl) =
  let quant = match p.pquant with Ast.QAll -> "all" | Ast.QAny -> "any" in
  match p.pconstraint with
  | Ast.Anywhere ->
      el "place" ~attrs:[ ("quant", quant); ("kind", "anywhere") ] []
  | Ast.At_nodes es ->
      el "place"
        ~attrs:[ ("quant", quant); ("kind", "nodes") ]
        (List.map expr_to_xml es)
  | Ast.On_range { role; pfilter; rop; rbound } ->
      let role =
        match role with
        | Ast.Sender -> "sender"
        | Ast.Receiver -> "receiver"
        | Ast.Midpoint -> "midpoint"
      in
      el "place"
        ~attrs:
          [ ("quant", quant); ("kind", "range"); ("role", role);
            ("op", Ast.binop_to_string rop) ]
        ((match pfilter with
         | Some f -> [ el "traffic" [ expr_to_xml f ] ]
         | None -> [])
        @ [ el "bound" [ expr_to_xml rbound ] ])

let state_to_xml (s : Ast.state_decl) =
  el "state"
    ~attrs:[ ("name", s.sname) ]
    (List.map var_to_xml s.slocals
    @ (match s.sutil with
      | Some u ->
          [ el "util" ~attrs:[ ("param", u.uparam) ] (body_to_xml u.ubody) ]
      | None -> [])
    @ List.map event_to_xml s.sevents)

let machine_to_xml (m : Ast.machine) =
  el "machine"
    ~attrs:
      (("name", m.mname)
      :: (match m.extends with Some p -> [ ("extends", p) ] | None -> []))
    (List.map place_to_xml m.places
    @ List.map var_to_xml m.mvars
    @ List.map trig_to_xml m.mtrigs
    @ List.map state_to_xml m.states
    @ List.map event_to_xml m.mevents)

let func_to_xml (f : Ast.func_decl) =
  el "function"
    ~attrs:[ ("name", f.fname); ("ret", typ_attr f.fret) ]
    (List.map
       (fun (t, n) ->
         el "param" ~attrs:[ ("type", typ_attr t); ("name", n) ] [])
       f.fparams
    @ [ el "body" (body_to_xml f.fbody) ])

let program_to_xml (p : Ast.program) =
  el "almanac"
    ~attrs:[ ("version", "1") ]
    (List.map func_to_xml p.funcs @ List.map machine_to_xml p.machines)

(* ------------------------------------------------------------------ *)
(* Decoding                                                            *)
(* ------------------------------------------------------------------ *)

let elements x =
  List.filter (function Xml.Element _ -> true | Xml.Text _ -> false)
    (Xml.children x)

let rec expr_of_xml x =
  match Xml.name x with
  | "bool" -> Ast.Bool (bool_of_string (Xml.attr_exn x "v"))
  | "int" -> Ast.Int (int_of_string (Xml.attr_exn x "v"))
  | "float" -> Ast.Float (float_of_string (Xml.attr_exn x "v"))
  | "string" -> Ast.String (Xml.attr_exn x "v")
  | "any" -> Ast.AnyLit
  | "var" -> Ast.Var (Xml.attr_exn x "name")
  | "field" -> (
      match elements x with
      | [ b ] -> Ast.Field (expr_of_xml b, Xml.attr_exn x "name")
      | _ -> fail "field expects one child")
  | "call" ->
      Ast.Call (Xml.attr_exn x "name", List.map expr_of_xml (elements x))
  | "unop" -> (
      let op =
        match Xml.attr_exn x "op" with
        | "not" -> Ast.Not
        | "neg" -> Ast.Neg
        | s -> fail "unknown unop %S" s
      in
      match elements x with
      | [ a ] -> Ast.Unop (op, expr_of_xml a)
      | _ -> fail "unop expects one child")
  | "binop" -> (
      match elements x with
      | [ a; b ] ->
          Ast.Binop
            (binop_of_string (Xml.attr_exn x "op"), expr_of_xml a,
             expr_of_xml b)
      | _ -> fail "binop expects two children")
  | "filter-atom" -> (
      match elements x with
      | [ a ] ->
          Ast.FilterAtom
            (filter_head_of_string (Xml.attr_exn x "head"), expr_of_xml a)
      | _ -> fail "filter-atom expects one child")
  | "struct" ->
      Ast.StructLit
        ( Xml.attr_exn x "name",
          List.map
            (fun i -> (Xml.attr_exn i "field",
                       match elements i with
                       | [ e ] -> expr_of_xml e
                       | _ -> fail "struct init expects one child"))
            (Xml.select x "init") )
  | "list" -> Ast.ListLit (List.map expr_of_xml (elements x))
  | n -> fail "unknown expression element <%s>" n

let dest_of_xml x =
  match Xml.name x with
  | "harvester" -> Ast.Harvester
  | "machine-dest" -> (
      let name = Xml.attr_exn x "name" in
      match elements x with
      | [] -> Ast.Machine (name, None)
      | [ e ] -> Ast.Machine (name, Some (expr_of_xml e))
      | _ -> fail "machine-dest expects at most one child")
  | n -> fail "unknown destination <%s>" n

let rec stmt_of_xml x = Ast.stmt (stmt_kind_of_xml x)

and stmt_kind_of_xml x =
  match Xml.name x with
  | "decl" ->
      Ast.Decl
        ( typ_of_string (Xml.attr_exn x "type"),
          Xml.attr_exn x "name",
          match elements x with
          | [] -> None
          | [ e ] -> Some (expr_of_xml e)
          | _ -> fail "decl expects at most one child" )
  | "assign" -> (
      match elements x with
      | [ e ] -> Ast.Assign (Xml.attr_exn x "name", expr_of_xml e)
      | _ -> fail "assign expects one child")
  | "transit" -> (
      match elements x with
      | [ e ] -> Ast.Transit (expr_of_xml e)
      | _ -> fail "transit expects one child")
  | "if" ->
      let part n =
        match Xml.first x n with
        | Some p -> p
        | None -> fail "if misses <%s>" n
      in
      let cond =
        match elements (part "cond") with
        | [ e ] -> expr_of_xml e
        | _ -> fail "cond expects one child"
      in
      Ast.If
        ( cond,
          List.map stmt_of_xml (elements (part "then")),
          List.map stmt_of_xml (elements (part "else")) )
  | "while" ->
      let part n =
        match Xml.first x n with
        | Some p -> p
        | None -> fail "while misses <%s>" n
      in
      let cond =
        match elements (part "cond") with
        | [ e ] -> expr_of_xml e
        | _ -> fail "cond expects one child"
      in
      Ast.While (cond, List.map stmt_of_xml (elements (part "body")))
  | "return" -> (
      match elements x with
      | [] -> Ast.Return None
      | [ e ] -> Ast.Return (Some (expr_of_xml e))
      | _ -> fail "return expects at most one child")
  | "send" -> (
      let value =
        match Xml.first x "value" with
        | Some v -> (
            match elements v with
            | [ e ] -> expr_of_xml e
            | _ -> fail "value expects one child")
        | None -> fail "send misses <value>"
      in
      match
        List.filter (fun e -> Xml.name e <> "value") (elements x)
      with
      | [ d ] -> Ast.Send (value, dest_of_xml d)
      | _ -> fail "send expects one destination")
  | "exprstmt" -> (
      match elements x with
      | [ e ] -> Ast.ExprStmt (expr_of_xml e)
      | _ -> fail "exprstmt expects one child")
  | n -> fail "unknown statement element <%s>" n

let body_of_xml x = List.map stmt_of_xml (elements x)

let trigger_of_xml x =
  match Xml.name x with
  | "enter" -> Ast.On_enter
  | "exit" -> Ast.On_exit
  | "realloc" -> Ast.On_realloc
  | "on-var" -> Ast.On_trigger_var (Xml.attr_exn x "name", Xml.attr x "as")
  | "recv" -> (
      match elements x with
      | [ d ] ->
          Ast.On_recv
            ( typ_of_string (Xml.attr_exn x "type"),
              Xml.attr_exn x "name",
              dest_of_xml d )
      | _ -> fail "recv expects one destination")
  | n -> fail "unknown trigger element <%s>" n

let event_of_xml x =
  match elements x with
  | [ trg; body ] when Xml.name body = "body" ->
      { Ast.trigger = trigger_of_xml trg; body = body_of_xml body;
        evloc = Ast.no_pos }
  | _ -> fail "event expects a trigger and a body"

let var_of_xml x =
  { Ast.is_external = Xml.attr x "external" = Some "true";
    vtyp = typ_of_string (Xml.attr_exn x "type");
    vname = Xml.attr_exn x "name";
    vinit =
      (match elements x with
      | [] -> None
      | [ e ] -> Some (expr_of_xml e)
      | _ -> fail "var expects at most one initializer");
    vloc = Ast.no_pos }

let trig_of_xml x =
  let ttyp =
    match Xml.attr_exn x "type" with
    | "time" -> Ast.Time
    | "poll" -> Ast.Poll
    | "probe" -> Ast.Probe
    | s -> fail "unknown trigger type %S" s
  in
  { Ast.ttyp; tname = Xml.attr_exn x "name";
    tinit =
      (match elements x with
      | [] -> None
      | [ e ] -> Some (expr_of_xml e)
      | _ -> fail "trigger expects at most one initializer");
    tloc = Ast.no_pos }

let place_of_xml x =
  let pquant =
    match Xml.attr_exn x "quant" with
    | "all" -> Ast.QAll
    | "any" -> Ast.QAny
    | s -> fail "unknown quantifier %S" s
  in
  let pconstraint =
    match Xml.attr_exn x "kind" with
    | "anywhere" -> Ast.Anywhere
    | "nodes" -> Ast.At_nodes (List.map expr_of_xml (elements x))
    | "range" ->
        let role =
          match Xml.attr_exn x "role" with
          | "sender" -> Ast.Sender
          | "receiver" -> Ast.Receiver
          | "midpoint" -> Ast.Midpoint
          | s -> fail "unknown role %S" s
        in
        let pfilter =
          Option.map
            (fun t ->
              match elements t with
              | [ e ] -> expr_of_xml e
              | _ -> fail "traffic expects one child")
            (Xml.first x "traffic")
        in
        let rbound =
          match Xml.first x "bound" with
          | Some b -> (
              match elements b with
              | [ e ] -> expr_of_xml e
              | _ -> fail "bound expects one child")
          | None -> fail "range place misses <bound>"
        in
        Ast.On_range
          { role; pfilter; rop = binop_of_string (Xml.attr_exn x "op");
            rbound }
    | s -> fail "unknown place kind %S" s
  in
  { Ast.pquant; pconstraint; ploc = Ast.no_pos }

let state_of_xml x =
  let slocals = List.map var_of_xml (Xml.select x "var") in
  let sutil =
    Option.map
      (fun u ->
        { Ast.uparam = Xml.attr_exn u "param"; ubody = body_of_xml u;
          uloc = Ast.no_pos })
      (Xml.first x "util")
  in
  let sevents = List.map event_of_xml (Xml.select x "event") in
  { Ast.sname = Xml.attr_exn x "name"; slocals; sutil; sevents;
    stloc = Ast.no_pos }

let machine_of_xml x =
  { Ast.mname = Xml.attr_exn x "name";
    extends = Xml.attr x "extends";
    places = List.map place_of_xml (Xml.select x "place");
    mvars = List.map var_of_xml (Xml.select x "var");
    mtrigs = List.map trig_of_xml (Xml.select x "trigger");
    states = List.map state_of_xml (Xml.select x "state");
    mevents = List.map event_of_xml (Xml.select x "event");
    mloc = Ast.no_pos }

let func_of_xml x =
  { Ast.fname = Xml.attr_exn x "name";
    fret = typ_of_string (Xml.attr_exn x "ret");
    fparams =
      List.map
        (fun p -> (typ_of_string (Xml.attr_exn p "type"), Xml.attr_exn p "name"))
        (Xml.select x "param");
    fbody =
      (match Xml.first x "body" with
      | Some b -> body_of_xml b
      | None -> fail "function misses <body>");
    floc = Ast.no_pos }

let program_of_xml x =
  if Xml.name x <> "almanac" then fail "expected an <almanac> document";
  { Ast.funcs = List.map func_of_xml (Xml.select x "function");
    machines = List.map machine_of_xml (Xml.select x "machine") }

let compile p = Xml.to_string (program_to_xml p)
let load s = program_of_xml (Xml.parse s)

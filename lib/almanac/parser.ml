exception Error of string

(* Structured variant carrying a positioned diagnostic; the legacy
   [program]/[expression] entry points convert it to [Error]. *)
exception Error_diag of Diagnostic.t

type state = { toks : Lexer.located array; mutable pos : int }

let pos_of st =
  let { Lexer.line; col; _ } = st.toks.(st.pos) in
  { Ast.line; col }

let error st fmt =
  let { Lexer.token; line; col } = st.toks.(st.pos) in
  Printf.ksprintf
    (fun m ->
      raise
        (Error_diag
           (Diagnostic.error ~pos:{ Ast.line; col } ~code:"P002"
              (Printf.sprintf "%s (found %s)" m (Token.to_string token)))))
    fmt

let cur st = st.toks.(st.pos).Lexer.token

let peek st k =
  let i = st.pos + k in
  if i < Array.length st.toks then st.toks.(i).Lexer.token else Token.EOF

let advance st = if st.pos < Array.length st.toks - 1 then st.pos <- st.pos + 1

let eat st tok =
  if cur st = tok then advance st
  else error st "expected %s" (Token.to_string tok)

let accept st tok =
  if cur st = tok then begin
    advance st;
    true
  end
  else false

let ident st =
  match cur st with
  | Token.IDENT s ->
      advance st;
      s
  | _ -> error st "expected an identifier"

(* ------------------------------------------------------------------ *)
(* Types                                                               *)
(* ------------------------------------------------------------------ *)

let typ_of_token = function
  | Token.KW_BOOL -> Some Ast.Tbool
  | Token.KW_INT -> Some Ast.Tint
  | Token.KW_LONG -> Some Ast.Tlong
  | Token.KW_FLOAT -> Some Ast.Tfloat
  | Token.KW_STRING -> Some Ast.Tstring
  | Token.KW_LIST -> Some Ast.Tlist
  | Token.KW_PACKET -> Some Ast.Tpacket
  | Token.KW_ACTION -> Some Ast.Taction
  | Token.KW_FILTER -> Some Ast.Tfilter
  | Token.KW_STATS -> Some Ast.Tstats
  | Token.KW_RULE -> Some Ast.Trule
  | Token.KW_VOID -> Some Ast.Tunit
  | _ -> None

let parse_typ st =
  match cur st with
  | Token.IDENT "stats" ->
      advance st;
      Ast.Tstats
  | t -> (
      match typ_of_token t with
      | Some t ->
          advance st;
          t
      | None -> error st "expected a type")

(* Does a declaration start here?  [stats] is a soft keyword: it starts a
   declaration only when followed by an identifier. *)
let decl_starts st =
  match cur st with
  | Token.IDENT "stats" -> (
      match peek st 1 with Token.IDENT _ -> true | _ -> false)
  | t -> typ_of_token t <> None

let trigger_type_of_token = function
  | Token.KW_TIME -> Some Ast.Time
  | Token.KW_POLL -> Some Ast.Poll
  | Token.KW_PROBE -> Some Ast.Probe
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

let filter_head_of_ident = function
  | "srcIP" -> Some Ast.SrcIP
  | "dstIP" -> Some Ast.DstIP
  | "srcPort" -> Some Ast.SrcPort
  | "dstPort" -> Some Ast.DstPort
  | "port" -> Some Ast.PortF
  | "proto" -> Some Ast.ProtoF
  | _ -> None

let starts_filter_arg = function
  | Token.STRING _ | Token.INT _ | Token.KW_ANYCAP | Token.IDENT _ -> true
  | _ -> false

let rec parse_expr st = parse_or st

and parse_or st =
  let lhs = parse_and st in
  if accept st Token.KW_OR then Ast.Binop (Ast.Or, lhs, parse_or st) else lhs

and parse_and st =
  let lhs = parse_cmp st in
  if accept st Token.KW_AND then Ast.Binop (Ast.And, lhs, parse_and st)
  else lhs

and parse_cmp st =
  let lhs = parse_add st in
  let op =
    match cur st with
    | Token.EQ -> Some Ast.Eq
    | Token.NEQ -> Some Ast.Neq
    | Token.LE -> Some Ast.Le
    | Token.GE -> Some Ast.Ge
    | Token.LT -> Some Ast.Lt
    | Token.GT -> Some Ast.Gt
    | _ -> None
  in
  match op with
  | Some op ->
      advance st;
      Ast.Binop (op, lhs, parse_add st)
  | None -> lhs

and parse_add st =
  let rec go lhs =
    match cur st with
    | Token.PLUS ->
        advance st;
        go (Ast.Binop (Ast.Add, lhs, parse_mul st))
    | Token.MINUS ->
        advance st;
        go (Ast.Binop (Ast.Sub, lhs, parse_mul st))
    | _ -> lhs
  in
  go (parse_mul st)

and parse_mul st =
  let rec go lhs =
    match cur st with
    | Token.STAR ->
        advance st;
        go (Ast.Binop (Ast.Mul, lhs, parse_unary st))
    | Token.SLASH ->
        advance st;
        go (Ast.Binop (Ast.Div, lhs, parse_unary st))
    | _ -> lhs
  in
  go (parse_unary st)

and parse_unary st =
  match cur st with
  | Token.KW_NOT ->
      advance st;
      Ast.Unop (Ast.Not, parse_unary st)
  | Token.MINUS ->
      advance st;
      Ast.Unop (Ast.Neg, parse_unary st)
  | _ -> parse_postfix st

and parse_postfix st =
  let rec fields e =
    if accept st Token.DOT then fields (Ast.Field (e, ident st)) else e
  in
  fields (parse_primary st)

and parse_args st =
  eat st Token.LPAREN;
  if accept st Token.RPAREN then []
  else begin
    let rec go acc =
      let e = parse_expr st in
      if accept st Token.COMMA then go (e :: acc)
      else begin
        eat st Token.RPAREN;
        List.rev (e :: acc)
      end
    in
    go []
  end

and parse_struct_lit st name =
  eat st Token.LBRACE;
  let rec go acc =
    if accept st Token.RBRACE then List.rev acc
    else begin
      eat st Token.DOT;
      let field = ident st in
      eat st Token.ASSIGN;
      let e = parse_expr st in
      let acc = (field, e) :: acc in
      if accept st Token.COMMA then go acc
      else begin
        eat st Token.RBRACE;
        List.rev acc
      end
    end
  in
  Ast.StructLit (name, go [])

and parse_primary st =
  match cur st with
  | Token.INT i ->
      advance st;
      Ast.Int i
  | Token.FLOAT f ->
      advance st;
      Ast.Float f
  | Token.STRING s ->
      advance st;
      Ast.String s
  | Token.KW_TRUE ->
      advance st;
      Ast.Bool true
  | Token.KW_FALSE ->
      advance st;
      Ast.Bool false
  | Token.KW_ANYCAP ->
      advance st;
      Ast.AnyLit
  | Token.LPAREN ->
      advance st;
      let e = parse_expr st in
      eat st Token.RPAREN;
      e
  | Token.LBRACKET ->
      advance st;
      if accept st Token.RBRACKET then Ast.ListLit []
      else begin
        let rec go acc =
          let e = parse_expr st in
          if accept st Token.COMMA then go (e :: acc)
          else begin
            eat st Token.RBRACKET;
            List.rev (e :: acc)
          end
        in
        Ast.ListLit (go [])
      end
  | Token.IDENT name -> (
      match filter_head_of_ident name with
      | Some head when starts_filter_arg (peek st 1) ->
          advance st;
          let arg =
            match cur st with
            | Token.KW_ANYCAP ->
                advance st;
                Ast.AnyLit
            | Token.STRING s ->
                advance st;
                Ast.String s
            | Token.INT i ->
                advance st;
                Ast.Int i
            | Token.IDENT _ ->
                (* variables, calls and field accesses are all valid
                   filter arguments: [dstIP protected], [srcIP p.srcIP],
                   [srcIP nth(attackers, i)] *)
                parse_postfix st
            | _ -> error st "expected a filter argument"
          in
          Ast.FilterAtom (head, arg)
      | _ ->
          advance st;
          if cur st = Token.LPAREN then Ast.Call (name, parse_args st)
          else if cur st = Token.LBRACE && peek st 1 = Token.DOT then
            parse_struct_lit st name
          else Ast.Var name)
  | _ -> error st "expected an expression"

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

let parse_dest st =
  match cur st with
  | Token.KW_HARVESTER ->
      advance st;
      Ast.Harvester
  | Token.IDENT m ->
      advance st;
      if accept st Token.AT then Ast.Machine (m, Some (parse_expr st))
      else Ast.Machine (m, None)
  | _ -> error st "expected a message destination"

let rec parse_stmt st =
  let sloc = pos_of st in
  { Ast.sk = parse_stmt_kind st; sloc }

and parse_stmt_kind st =
  match cur st with
  | Token.KW_IF ->
      advance st;
      eat st Token.LPAREN;
      let cond = parse_expr st in
      eat st Token.RPAREN;
      eat st Token.KW_THEN;
      let then_ = parse_block st in
      let else_ =
        if accept st Token.KW_ELSE then
          (* allow both [else { ... }] and [else if ...] *)
          if cur st = Token.KW_IF then [ parse_stmt st ] else parse_block st
        else []
      in
      Ast.If (cond, then_, else_)
  | Token.KW_WHILE ->
      advance st;
      eat st Token.LPAREN;
      let cond = parse_expr st in
      eat st Token.RPAREN;
      let body = parse_block st in
      Ast.While (cond, body)
  | Token.KW_RETURN ->
      advance st;
      if accept st Token.SEMI then Ast.Return None
      else begin
        let e = parse_expr st in
        eat st Token.SEMI;
        Ast.Return (Some e)
      end
  | Token.KW_TRANSIT ->
      advance st;
      let e = parse_expr st in
      eat st Token.SEMI;
      Ast.Transit e
  | Token.KW_SEND ->
      advance st;
      let e = parse_expr st in
      eat st Token.KW_TO;
      let d = parse_dest st in
      eat st Token.SEMI;
      Ast.Send (e, d)
  | _ when decl_starts st ->
      let typ = parse_typ st in
      let name = ident st in
      let init = if accept st Token.ASSIGN then Some (parse_expr st) else None in
      eat st Token.SEMI;
      Ast.Decl (typ, name, init)
  | Token.IDENT name when peek st 1 = Token.ASSIGN ->
      advance st;
      advance st;
      let e = parse_expr st in
      eat st Token.SEMI;
      Ast.Assign (name, e)
  | _ ->
      let e = parse_expr st in
      eat st Token.SEMI;
      Ast.ExprStmt e

and parse_block st =
  eat st Token.LBRACE;
  let rec go acc =
    if accept st Token.RBRACE then List.rev acc
    else go (parse_stmt st :: acc)
  in
  go []

(* ------------------------------------------------------------------ *)
(* Events                                                              *)
(* ------------------------------------------------------------------ *)

let parse_trigger st =
  match cur st with
  | Token.KW_ENTER ->
      advance st;
      Ast.On_enter
  | Token.KW_EXIT ->
      advance st;
      Ast.On_exit
  | Token.KW_REALLOC ->
      advance st;
      Ast.On_realloc
  | Token.KW_RECV ->
      advance st;
      let typ = parse_typ st in
      let name = ident st in
      eat st Token.KW_FROM;
      let d = parse_dest st in
      Ast.On_recv (typ, name, d)
  | Token.IDENT y ->
      advance st;
      if accept st Token.KW_AS then Ast.On_trigger_var (y, Some (ident st))
      else Ast.On_trigger_var (y, None)
  | _ -> error st "expected an event trigger"

let parse_event st ~loc =
  (* the [when] keyword has been consumed; [loc] is its position *)
  eat st Token.LPAREN;
  let trigger = parse_trigger st in
  eat st Token.RPAREN;
  eat st Token.KW_DO;
  let body = parse_block st in
  { Ast.trigger; body; evloc = loc }

(* ------------------------------------------------------------------ *)
(* Declarations                                                        *)
(* ------------------------------------------------------------------ *)

let parse_var_decl st ~is_external =
  let vloc = pos_of st in
  let vtyp = parse_typ st in
  let vname = ident st in
  let vinit = if accept st Token.ASSIGN then Some (parse_expr st) else None in
  eat st Token.SEMI;
  { Ast.is_external; vtyp; vname; vinit; vloc }

let parse_trig_decl st =
  let tloc = pos_of st in
  let ttyp =
    match trigger_type_of_token (cur st) with
    | Some t ->
        advance st;
        t
    | None -> error st "expected a trigger type"
  in
  let tname = ident st in
  let tinit = if accept st Token.ASSIGN then Some (parse_expr st) else None in
  eat st Token.SEMI;
  { Ast.ttyp; tname; tinit; tloc }

let parse_util st ~loc =
  (* the [util] keyword has been consumed; [loc] is its position *)
  eat st Token.LPAREN;
  let uparam = ident st in
  eat st Token.RPAREN;
  let ubody = parse_block st in
  { Ast.uparam; ubody; uloc = loc }

let parse_state st ~loc =
  (* the [state] keyword has been consumed; [loc] is its position *)
  let sname = ident st in
  eat st Token.LBRACE;
  let locals = ref [] and util = ref None and events = ref [] in
  let rec go () =
    if accept st Token.RBRACE then ()
    else begin
      (match cur st with
      | Token.KW_UTIL ->
          let uloc = pos_of st in
          advance st;
          if !util <> None then error st "duplicate util block";
          util := Some (parse_util st ~loc:uloc)
      | Token.KW_WHEN ->
          let evloc = pos_of st in
          advance st;
          events := parse_event st ~loc:evloc :: !events
      | Token.KW_EXTERNAL ->
          error st "external variables are not allowed inside states"
      | _ when decl_starts st ->
          locals := parse_var_decl st ~is_external:false :: !locals
      | _ -> error st "expected a state item (variable, util or when)");
      go ()
    end
  in
  go ();
  { Ast.sname; slocals = List.rev !locals; sutil = !util;
    sevents = List.rev !events; stloc = loc }

let parse_place st ~loc =
  (* the [place] keyword has been consumed; [loc] is its position *)
  let pquant =
    match cur st with
    | Token.KW_ALL ->
        advance st;
        Ast.QAll
    | Token.KW_ANY ->
        advance st;
        Ast.QAny
    | _ -> error st "expected 'all' or 'any'"
  in
  if accept st Token.SEMI then
    { Ast.pquant; pconstraint = Ast.Anywhere; ploc = loc }
  else begin
    let role =
      match cur st with
      | Token.KW_SENDER ->
          advance st;
          Some Ast.Sender
      | Token.KW_RECEIVER ->
          advance st;
          Some Ast.Receiver
      | Token.KW_MIDPOINT ->
          advance st;
          Some Ast.Midpoint
      | _ -> None
    in
    match role with
    | Some role ->
        let pfilter =
          if cur st = Token.KW_RANGE then None else Some (parse_expr st)
        in
        eat st Token.KW_RANGE;
        let rop =
          match cur st with
          | Token.EQ -> Ast.Eq
          | Token.LE -> Ast.Le
          | Token.GE -> Ast.Ge
          | Token.LT -> Ast.Lt
          | Token.GT -> Ast.Gt
          | _ -> error st "expected a range comparison"
        in
        advance st;
        let rbound = parse_expr st in
        eat st Token.SEMI;
        { Ast.pquant;
          pconstraint = Ast.On_range { role; pfilter; rop; rbound };
          ploc = loc }
    | None ->
        (* explicit node list *)
        let rec go acc =
          let e = parse_expr st in
          if accept st Token.COMMA then go (e :: acc)
          else begin
            eat st Token.SEMI;
            List.rev (e :: acc)
          end
        in
        { Ast.pquant; pconstraint = Ast.At_nodes (go []); ploc = loc }
  end

let parse_machine st ~loc =
  (* the [machine] keyword has been consumed; [loc] is its position *)
  let mname = ident st in
  let extends = if accept st Token.KW_EXTENDS then Some (ident st) else None in
  eat st Token.LBRACE;
  let places = ref [] and vars = ref [] and trigs = ref [] in
  let states = ref [] and events = ref [] in
  let rec go () =
    if accept st Token.RBRACE then ()
    else begin
      (match cur st with
      | Token.KW_PLACE ->
          let ploc = pos_of st in
          advance st;
          places := parse_place st ~loc:ploc :: !places
      | Token.KW_STATE ->
          let stloc = pos_of st in
          advance st;
          states := parse_state st ~loc:stloc :: !states
      | Token.KW_WHEN ->
          let evloc = pos_of st in
          advance st;
          events := parse_event st ~loc:evloc :: !events
      | Token.KW_EXTERNAL ->
          advance st;
          vars := parse_var_decl st ~is_external:true :: !vars
      | t when trigger_type_of_token t <> None ->
          trigs := parse_trig_decl st :: !trigs
      | _ when decl_starts st ->
          vars := parse_var_decl st ~is_external:false :: !vars
      | _ -> error st "expected a machine item");
      go ()
    end
  in
  go ();
  { Ast.mname; extends; places = List.rev !places; mvars = List.rev !vars;
    mtrigs = List.rev !trigs; states = List.rev !states;
    mevents = List.rev !events; mloc = loc }

let parse_fundec st =
  let floc = pos_of st in
  let fret = parse_typ st in
  let fname = ident st in
  eat st Token.LPAREN;
  let fparams =
    if accept st Token.RPAREN then []
    else begin
      let rec go acc =
        let t = parse_typ st in
        let n = ident st in
        if accept st Token.COMMA then go ((t, n) :: acc)
        else begin
          eat st Token.RPAREN;
          List.rev ((t, n) :: acc)
        end
      in
      go []
    end
  in
  let fbody = parse_block st in
  { Ast.fname; fret; fparams; fbody; floc }

let parse_program st =
  let funcs = ref [] and machines = ref [] in
  let rec go () =
    match cur st with
    | Token.EOF -> ()
    | Token.KW_MACHINE ->
        let mloc = pos_of st in
        advance st;
        machines := parse_machine st ~loc:mloc :: !machines;
        go ()
    | t when typ_of_token t <> None ->
        funcs := parse_fundec st :: !funcs;
        go ()
    | _ -> error st "expected a machine or function declaration"
  in
  go ();
  { Ast.funcs = List.rev !funcs; machines = List.rev !machines }

(* The lexer reports errors as "line:col: message" strings; recover the
   position for the structured diagnostic. *)
let diag_of_lexer_error m =
  let pos, message =
    match String.index_opt m ':' with
    | Some i -> (
        match String.index_from_opt m (i + 1) ':' with
        | Some j -> (
            let line = int_of_string_opt (String.sub m 0 i) in
            let col = int_of_string_opt (String.sub m (i + 1) (j - i - 1)) in
            match (line, col) with
            | Some line, Some col ->
                ( { Ast.line; col },
                  String.trim
                    (String.sub m (j + 1) (String.length m - j - 1)) )
            | _ -> (Ast.no_pos, m))
        | None -> (Ast.no_pos, m))
    | None -> (Ast.no_pos, m)
  in
  Diagnostic.error ~pos ~code:"P001" message

let make_state src =
  let toks =
    try Lexer.tokenize src
    with Lexer.Error m -> raise (Error_diag (diag_of_lexer_error m))
  in
  { toks = Array.of_list toks; pos = 0 }

(* Legacy string payload: "line:col: message", as before diagnostics. *)
let string_of_diag (d : Diagnostic.t) =
  if d.pos = Ast.no_pos then d.message
  else Printf.sprintf "%s: %s" (Ast.pos_to_string d.pos) d.message

let program_result src =
  try Ok (parse_program (make_state src))
  with Error_diag d -> Stdlib.Error d

let program src =
  try parse_program (make_state src)
  with Error_diag d -> raise (Error (string_of_diag d))

let expression src =
  try
    let st = make_state src in
    let e = parse_expr st in
    if cur st <> Token.EOF then error st "trailing input after expression";
    e
  with Error_diag d -> raise (Error (string_of_diag d))

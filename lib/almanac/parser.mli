(** Recursive-descent parser for Almanac (concrete syntax of Fig. 3 /
    List. 2). *)

exception Error of string
(** Syntax error with a "line:col: message" payload. *)

exception Error_diag of Diagnostic.t
(** Structured variant of {!Error}; raised by the internals, converted by
    the legacy entry points. *)

(** Parse a full program (auxiliary functions + machines). *)
val program : string -> Ast.program

(** Like {!program} but returning the positioned diagnostic ([P001] for
    lexical errors, [P002] for syntax errors) instead of raising. *)
val program_result : string -> (Ast.program, Diagnostic.t) result

(** Parse a single expression (used by tests and the REPL-ish tooling). *)
val expression : string -> Ast.expr

open Format

let rec pp_expr ppf (e : Ast.expr) =
  match e with
  | Ast.Bool b -> pp_print_bool ppf b
  | Ast.Int i -> pp_print_int ppf i
  | Ast.Float f ->
      (* decimal, exponent-free form: the lexer has no e-notation, so
         "%g"-style output like 1e-05 would not re-parse *)
      if Float.is_integer f && Float.abs f < 1e15 then fprintf ppf "%.1f" f
      else begin
        let s = Printf.sprintf "%.17f" f in
        (* strip trailing zeros but keep one decimal *)
        let n = ref (String.length s) in
        while !n > 1 && s.[!n - 1] = '0' && s.[!n - 2] <> '.' do
          decr n
        done;
        pp_print_string ppf (String.sub s 0 !n)
      end
  | Ast.String s -> fprintf ppf "%S" s
  | Ast.AnyLit -> pp_print_string ppf "ANY"
  | Ast.Var v -> pp_print_string ppf v
  | Ast.Field (e, f) -> fprintf ppf "%a.%s" pp_expr e f
  | Ast.Call (f, args) ->
      fprintf ppf "%s(%a)" f
        (pp_print_list ~pp_sep:(fun ppf () -> fprintf ppf ", ") pp_expr)
        args
  | Ast.Unop (Ast.Not, e) -> fprintf ppf "(not %a)" pp_expr e
  | Ast.Unop (Ast.Neg, e) -> fprintf ppf "(-%a)" pp_expr e
  | Ast.Binop (op, a, b) ->
      fprintf ppf "(%a %s %a)" pp_expr a (Ast.binop_to_string op) pp_expr b
  | Ast.FilterAtom (h, arg) ->
      fprintf ppf "%s %a" (Ast.filter_head_to_string h) pp_expr arg
  | Ast.StructLit (name, fields) ->
      fprintf ppf "%s { %a }" name
        (pp_print_list
           ~pp_sep:(fun ppf () -> fprintf ppf ", ")
           (fun ppf (f, e) -> fprintf ppf ".%s = %a" f pp_expr e))
        fields
  | Ast.ListLit es ->
      fprintf ppf "[%a]"
        (pp_print_list ~pp_sep:(fun ppf () -> fprintf ppf ", ") pp_expr)
        es

let pp_dest ppf = function
  | Ast.Harvester -> pp_print_string ppf "harvester"
  | Ast.Machine (m, None) -> pp_print_string ppf m
  | Ast.Machine (m, Some d) -> fprintf ppf "%s @ %a" m pp_expr d

let rec pp_stmt ppf (s : Ast.stmt) =
  match s.Ast.sk with
  | Ast.Decl (t, n, None) -> fprintf ppf "%s %s;" (Ast.typ_to_string t) n
  | Ast.Decl (t, n, Some e) ->
      fprintf ppf "%s %s = %a;" (Ast.typ_to_string t) n pp_expr e
  | Ast.Assign (n, e) -> fprintf ppf "%s = %a;" n pp_expr e
  | Ast.Transit e -> fprintf ppf "transit %a;" pp_expr e
  | Ast.If (c, t, []) ->
      fprintf ppf "@[<v 2>if (%a) then {@,%a@]@,}" pp_expr c pp_stmts t
  | Ast.If (c, t, e) ->
      fprintf ppf "@[<v 2>if (%a) then {@,%a@]@,@[<v 2>} else {@,%a@]@,}"
        pp_expr c pp_stmts t pp_stmts e
  | Ast.While (c, b) ->
      fprintf ppf "@[<v 2>while (%a) {@,%a@]@,}" pp_expr c pp_stmts b
  | Ast.Return None -> pp_print_string ppf "return;"
  | Ast.Return (Some e) -> fprintf ppf "return %a;" pp_expr e
  | Ast.Send (e, d) -> fprintf ppf "send %a to %a;" pp_expr e pp_dest d
  | Ast.ExprStmt e -> fprintf ppf "%a;" pp_expr e

and pp_stmts ppf ss =
  pp_print_list ~pp_sep:pp_print_cut pp_stmt ppf ss

let pp_trigger ppf = function
  | Ast.On_enter -> pp_print_string ppf "enter"
  | Ast.On_exit -> pp_print_string ppf "exit"
  | Ast.On_realloc -> pp_print_string ppf "realloc"
  | Ast.On_trigger_var (y, None) -> pp_print_string ppf y
  | Ast.On_trigger_var (y, Some x) -> fprintf ppf "%s as %s" y x
  | Ast.On_recv (t, n, d) ->
      fprintf ppf "recv %s %s from %a" (Ast.typ_to_string t) n pp_dest d

let pp_event ppf (ev : Ast.event) =
  fprintf ppf "@[<v 2>when (%a) do {@,%a@]@,}" pp_trigger ev.trigger pp_stmts
    ev.body

let pp_var_decl ppf (v : Ast.var_decl) =
  let ext = if v.is_external then "external " else "" in
  match v.vinit with
  | None -> fprintf ppf "%s%s %s;" ext (Ast.typ_to_string v.vtyp) v.vname
  | Some e ->
      fprintf ppf "%s%s %s = %a;" ext (Ast.typ_to_string v.vtyp) v.vname
        pp_expr e

let pp_trig_decl ppf (t : Ast.trig_decl) =
  match t.tinit with
  | None ->
      fprintf ppf "%s %s;" (Ast.trigger_type_to_string t.ttyp) t.tname
  | Some e ->
      fprintf ppf "%s %s = %a;" (Ast.trigger_type_to_string t.ttyp) t.tname
        pp_expr e

let pp_util ppf (u : Ast.util_decl) =
  fprintf ppf "@[<v 2>util (%s) {@,%a@]@,}" u.uparam pp_stmts u.ubody

let pp_place ppf (p : Ast.place_decl) =
  let quant = match p.pquant with Ast.QAll -> "all" | Ast.QAny -> "any" in
  match p.pconstraint with
  | Ast.Anywhere -> fprintf ppf "place %s;" quant
  | Ast.At_nodes es ->
      fprintf ppf "place %s %a;" quant
        (pp_print_list ~pp_sep:(fun ppf () -> fprintf ppf ", ") pp_expr)
        es
  | Ast.On_range { role; pfilter; rop; rbound } ->
      let role =
        match role with
        | Ast.Sender -> "sender"
        | Ast.Receiver -> "receiver"
        | Ast.Midpoint -> "midpoint"
      in
      fprintf ppf "place %s %s%a range %s %a;" quant role
        (fun ppf -> function
          | None -> ()
          | Some f -> fprintf ppf " %a" pp_expr f)
        pfilter (Ast.binop_to_string rop) pp_expr rbound

let pp_state ppf (s : Ast.state_decl) =
  fprintf ppf "@[<v 2>state %s {" s.sname;
  List.iter (fun v -> fprintf ppf "@,%a" pp_var_decl v) s.slocals;
  Option.iter (fun u -> fprintf ppf "@,%a" pp_util u) s.sutil;
  List.iter (fun e -> fprintf ppf "@,%a" pp_event e) s.sevents;
  fprintf ppf "@]@,}"

let pp_machine ppf (m : Ast.machine) =
  (match m.extends with
  | None -> fprintf ppf "@[<v 2>machine %s {" m.mname
  | Some p -> fprintf ppf "@[<v 2>machine %s extends %s {" m.mname p);
  List.iter (fun p -> fprintf ppf "@,%a" pp_place p) m.places;
  List.iter (fun v -> fprintf ppf "@,%a" pp_var_decl v) m.mvars;
  List.iter (fun t -> fprintf ppf "@,%a" pp_trig_decl t) m.mtrigs;
  List.iter (fun s -> fprintf ppf "@,%a" pp_state s) m.states;
  List.iter (fun e -> fprintf ppf "@,%a" pp_event e) m.mevents;
  fprintf ppf "@]@,}"

let pp_func ppf (f : Ast.func_decl) =
  fprintf ppf "@[<v 2>%s %s(%a) {@,%a@]@,}" (Ast.typ_to_string f.fret) f.fname
    (pp_print_list
       ~pp_sep:(fun ppf () -> fprintf ppf ", ")
       (fun ppf (t, n) -> fprintf ppf "%s %s" (Ast.typ_to_string t) n))
    f.fparams pp_stmts f.fbody

let pp_program ppf (p : Ast.program) =
  pp_open_vbox ppf 0;
  List.iter (fun f -> fprintf ppf "%a@,@," pp_func f) p.funcs;
  pp_print_list ~pp_sep:(fun ppf () -> fprintf ppf "@,@,") pp_machine ppf
    p.machines;
  pp_close_box ppf ()

let expr_to_string e = asprintf "%a" pp_expr e
let program_to_string p = asprintf "%a@." pp_program p

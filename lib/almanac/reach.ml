(* Inter-handler state-machine reachability.

   A fixpoint over (state, abstract store) items: machine and state-local
   variables are tracked in a small abstract domain (boolean / numeric
   interval / top), every handler of a visited state is symbolically
   executed through {!Symexec} (interpreter semantics), infeasible paths
   are pruned against the abstract store refined by each path condition,
   and transits flow the abstract post-store through exit events, the
   target's transit-mode local initializers and its enter events.
   Interval widening after a few joins per state guarantees termination
   on counter loops.

   Products:
   - the set of semantically reachable states and the set of *effective*
     transit sites (a transit that decides the next state on at least
     one feasible path) — consumed by {!Lint} to upgrade the heuristic
     L101/L102/L107 verdicts to reachability-backed ones;
   - [V403] errors: a user [assert(..)] admits a feasible violating
     path, reported with a concrete witness;
   - [V404] warnings: a TCAM/stat/list index that may fall out of range.

   When any handler exhausts its exploration budget the result is marked
   incomplete and every precise claim is withheld (the handler's
   syntactic transits are assumed effective, its post-store is top). *)

open Symexec

(* ------------------------------------------------------------------ *)
(* Abstract values                                                     *)
(* ------------------------------------------------------------------ *)

type aval =
  | Abool of bool option  (* None = either *)
  | Anum of float * float  (* closed interval, infinities allowed *)
  | Atop

let anum l h = Anum (l, h)

let ajoin a b =
  match (a, b) with
  | Atop, _ | _, Atop -> Atop
  | Abool x, Abool y -> if x = y then a else Abool None
  | Anum (l1, h1), Anum (l2, h2) -> Anum (min l1 l2, max h1 h2)
  | Abool _, Anum _ | Anum _, Abool _ -> Atop

let awiden old nw =
  match (old, nw) with
  | Anum (l1, h1), Anum (l2, h2) ->
      Anum
        ( (if l2 < l1 then neg_infinity else l1),
          if h2 > h1 then infinity else h1 )
  | _ -> ajoin old nw

let aval_equal a b = compare a b = 0

let aval_to_string = function
  | Abool (Some b) -> string_of_bool b
  | Abool None -> "bool"
  | Anum (l, h) when l = h -> Printf.sprintf "%g" l
  | Anum (l, h) -> Printf.sprintf "[%g, %g]" l h
  | Atop -> "?"

(* truthiness of an abstract value, three-valued *)
let atruthy = function
  | Abool b -> b
  | Anum (l, h) ->
      if l > 0. || h < 0. then Some true
      else if l = 0. && h = 0. then Some false
      else None
  | Atop -> None

(* ------------------------------------------------------------------ *)
(* Abstract evaluation of symbolic terms                               *)
(* ------------------------------------------------------------------ *)

let aval_of_value : Value.t -> aval = function
  | Value.Num n -> Anum (n, n)
  | Value.Bool b -> Abool (Some b)
  | _ -> Atop

let interval f (l1, h1) (l2, h2) =
  let c = [ f l1 l2; f l1 h2; f h1 l2; f h1 h2 ] in
  Anum (List.fold_left min infinity c, List.fold_left max neg_infinity c)

let acmp op (l1, h1) (l2, h2) =
  let decide t f = if t then Some true else if f then Some false else None in
  Abool
    (match (op : Ast.binop) with
    | Ast.Lt -> decide (h1 < l2) (l1 >= h2)
    | Ast.Le -> decide (h1 <= l2) (l1 > h2)
    | Ast.Gt -> decide (l1 > h2) (h1 <= l2)
    | Ast.Ge -> decide (l1 >= h2) (h1 < l2)
    | Ast.Eq -> decide (l1 = h1 && l2 = h2 && l1 = l2) (h1 < l2 || l1 > h2)
    | Ast.Neq -> decide (h1 < l2 || l1 > h2) (l1 = h1 && l2 = h2 && l1 = l2)
    | _ -> None)

let rec aeval (env : string -> aval) (s : sym) : aval =
  match s with
  | Con v -> aval_of_value v
  | Svar (n, _) -> env n
  | Sapp (("size" | "stats_size" | "hash" | "abs"), _) -> anum 0. infinity
  | Sapp ("index_of", _) -> anum (-1.) infinity
  | Sunop (Ast.Neg, a) -> (
      match aeval env a with
      | Anum (l, h) -> Anum (-.h, -.l)
      | _ -> Atop)
  | Sunop (Ast.Not, a) -> (
      match atruthy (aeval env a) with
      | Some b -> Abool (Some (not b))
      | None -> Abool None)
  | Sbinop (op, a, b) -> (
      let va = aeval env a and vb = aeval env b in
      match (op, va, vb) with
      | Ast.Add, Anum (l1, h1), Anum (l2, h2) -> Anum (l1 +. l2, h1 +. h2)
      | Ast.Sub, Anum (l1, h1), Anum (l2, h2) -> Anum (l1 -. h2, h1 -. l2)
      | Ast.Mul, Anum (l1, h1), Anum (l2, h2) ->
          interval ( *. ) (l1, h1) (l2, h2)
      | Ast.Div, Anum (l1, h1), Anum (l2, h2) when l2 > 0. || h2 < 0. ->
          interval ( /. ) (l1, h1) (l2, h2)
      | ( (Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.Eq | Ast.Neq),
          Anum (l1, h1),
          Anum (l2, h2) ) ->
          acmp op (l1, h1) (l2, h2)
      | Ast.And, _, _ -> (
          match (atruthy va, atruthy vb) with
          | Some false, _ | _, Some false -> Abool (Some false)
          | Some true, Some true -> Abool (Some true)
          | _ -> Abool None)
      | Ast.Or, _, _ -> (
          match (atruthy va, atruthy vb) with
          | Some true, _ | _, Some true -> Abool (Some true)
          | Some false, Some false -> Abool (Some false)
          | _ -> Abool None)
      | _ -> Atop)
  | Sfield _ | Sapp _ | Sopaque _ | Slist _ | Sstats _ | Sstruct _ -> Atop

(* ------------------------------------------------------------------ *)
(* Path-condition refinement                                           *)
(* ------------------------------------------------------------------ *)

module SMap = Map.Make (String)

type env_map = aval SMap.t

let env_of map n = match SMap.find_opt n map with Some v -> v | None -> Atop

(* Meet a variable's interval with a comparison bound (closed-interval
   approximation of strict bounds — sound). *)
let refine_var map n op c =
  let cur = match env_of map n with Anum (l, h) -> (l, h) | _ -> (neg_infinity, infinity) in
  let l, h = cur in
  let l', h' =
    match (op : Ast.binop) with
    | Ast.Lt | Ast.Le -> (l, min h c)
    | Ast.Gt | Ast.Ge -> (max l c, h)
    | Ast.Eq -> (max l c, min h c)
    | _ -> (l, h)
  in
  SMap.add n (Anum (l', h')) map

let flip_cmp = function
  | Ast.Lt -> Ast.Gt
  | Ast.Gt -> Ast.Lt
  | Ast.Le -> Ast.Ge
  | Ast.Ge -> Ast.Le
  | op -> op

let negate_cmp = function
  | Ast.Lt -> Ast.Ge
  | Ast.Ge -> Ast.Lt
  | Ast.Gt -> Ast.Le
  | Ast.Le -> Ast.Gt
  | Ast.Eq -> Ast.Neq
  | Ast.Neq -> Ast.Eq
  | op -> op

(* Refine an environment by one path-condition atom. *)
let refine_atom map (t, b) =
  match t with
  | Sbinop (((Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.Eq) as op), Svar (n, _), Con (Value.Num c))
    ->
      let op = if b then op else negate_cmp op in
      if op = Ast.Neq then map else refine_var map n op c
  | Sbinop (((Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.Eq) as op), Con (Value.Num c), Svar (n, _))
    ->
      let op = flip_cmp op in
      let op = if b then op else negate_cmp op in
      if op = Ast.Neq then map else refine_var map n op c
  | Svar (n, _) when not b -> (
      (* [not x] over a numeric variable pins it to zero *)
      match env_of map n with
      | Anum _ -> refine_var map n Ast.Eq 0.
      | Abool _ | Atop -> SMap.add n (Abool (Some false)) map)
  | Svar (n, _) when b -> (
      match env_of map n with
      | Abool _ -> SMap.add n (Abool (Some true)) map
      | _ -> map)
  | _ -> map

let refine_env map pc = List.fold_left refine_atom map pc

(* Bounds a path condition imposes directly on the term [t] — keyed on
   the term itself (structural equality), so guards over non-variable
   terms like an [index_of(..)] result refine it too. *)
let pc_bounds pc t =
  let meet (l, h) op c =
    match (op : Ast.binop) with
    | Ast.Lt | Ast.Le -> (l, min h c)
    | Ast.Gt | Ast.Ge -> (max l c, h)
    | Ast.Eq -> (max l c, min h c)
    | _ -> (l, h)
  in
  List.fold_left
    (fun acc (atom, b) ->
      match atom with
      | Sbinop
          ( ((Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.Eq) as op),
            x,
            Con (Value.Num c) )
        when sym_equal x t ->
          let op = if b then op else negate_cmp op in
          if op = Ast.Neq then acc else meet acc op c
      | Sbinop
          ( ((Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.Eq) as op),
            Con (Value.Num c),
            x )
        when sym_equal x t ->
          let op = if b then flip_cmp op else negate_cmp (flip_cmp op) in
          if op = Ast.Neq then acc else meet acc op c
      | _ -> acc)
    (neg_infinity, infinity) pc

let env_empty (map : env_map) =
  SMap.exists (fun _ v -> match v with Anum (l, h) -> l > h | _ -> false) map

(* Is a path feasible under an abstract environment?  Refine first, then
   re-check every atom under the refined environment. *)
let path_feasible (map : env_map) (p : path) : env_map option =
  let refined = refine_env map p.pc in
  if env_empty refined then None
  else if
    List.exists
      (fun (t, b) ->
        match atruthy (aeval (env_of refined) t) with
        | Some v -> v <> b
        | None -> false)
      p.pc
  then None
  else Some refined

(* ------------------------------------------------------------------ *)
(* Abstract stores                                                     *)
(* ------------------------------------------------------------------ *)

(* Global and state-local variables are tracked under prefixed keys so a
   local may shadow a global of the same name. *)
let gkey n = "g:" ^ n
let lkey n = "l:" ^ n

let unkey k =
  match String.index_opt k ':' with
  | Some i -> String.sub k (i + 1) (String.length k - i - 1)
  | None -> k

type astore = env_map  (* gkey/lkey -> aval *)

let astore_join (a : astore) (b : astore) : astore =
  SMap.merge
    (fun _ x y ->
      match (x, y) with
      | Some x, Some y -> Some (ajoin x y)
      | _ -> Some Atop)
    a b

let astore_widen (old : astore) (nw : astore) : astore =
  SMap.merge
    (fun _ x y ->
      match (x, y) with
      | Some x, Some y -> Some (awiden x y)
      | _ -> Some Atop)
    old nw

let astore_equal a b = SMap.equal aval_equal a b
let astore_top (a : astore) : astore = SMap.map (fun _ -> Atop) a

(* ------------------------------------------------------------------ *)
(* Analysis result                                                     *)
(* ------------------------------------------------------------------ *)

type result = {
  machine : string;
  reachable : string list;  (** states semantically reachable *)
  effective_transits : (Ast.pos * string) list;
      (** transit sites that decide the next state on a feasible path *)
  livelock : string list option;
      (** a guaranteed enter-transit cycle, if one exists *)
  diags : Diagnostic.t list;  (** V403 invariant violations, V404 ranges *)
  complete : bool;
      (** false when a budget was exhausted; precise claims are withheld *)
}

(* ------------------------------------------------------------------ *)
(* Syntactic helpers                                                   *)
(* ------------------------------------------------------------------ *)

let transit_target = function
  | Ast.Var s | Ast.String s -> Some s
  | _ -> None

let rec stmt_transits (s : Ast.stmt) =
  match s.Ast.sk with
  | Ast.Transit e -> [ (s.Ast.sloc, transit_target e) ]
  | Ast.If (_, a, b) -> List.concat_map stmt_transits (a @ b)
  | Ast.While (_, b) -> List.concat_map stmt_transits b
  | _ -> []

let body_transits body = List.concat_map stmt_transits body

let events_for (m : Ast.machine) (st : Ast.state_decl) key =
  let matches (e : Ast.event) = Interp.trigger_key e.trigger = key in
  let se = List.filter matches st.sevents in
  if se <> [] then se else List.filter matches m.mevents

(* Every dispatch key a state can fire on, besides enter/exit. *)
let steady_keys (m : Ast.machine) (st : Ast.state_decl) =
  let keys = Hashtbl.create 8 in
  let order = ref [] in
  let add k =
    if not (Hashtbl.mem keys k) then begin
      Hashtbl.replace keys k ();
      order := k :: !order
    end
  in
  List.iter
    (fun (e : Ast.event) ->
      match e.trigger with
      | Ast.On_enter | Ast.On_exit -> ()
      | t -> add (Interp.trigger_key t))
    (st.sevents @ m.mevents);
  List.rev !order

(* ------------------------------------------------------------------ *)
(* The fixpoint                                                        *)
(* ------------------------------------------------------------------ *)

let widen_after = 3
let max_items = 2000

type acc = {
  ac_m : Ast.machine;
  ac_ctx : unit -> ctx;
  ac_states : (string * Ast.state_decl) list;
  (* per-state joined abstract stores *)
  enter_in : (string, astore * int) Hashtbl.t;  (* store, join count *)
  steady_in : (string, astore * int) Hashtbl.t;
  mutable worklist : [ `Enter of string | `Steady of string ] list;
  reached : (string, unit) Hashtbl.t;
  effective : (Ast.pos * string, unit) Hashtbl.t;
  (* enter-forwarding observations: state -> (all paths transit so far,
     observed targets) *)
  forwarding : (string, bool * (string, unit) Hashtbl.t) Hashtbl.t;
  v403 : (Ast.pos, Diagnostic.t) Hashtbl.t;
  v404 : (Ast.pos * string, Diagnostic.t) Hashtbl.t;
  mutable complete : bool;
  mutable steps : int;
}

let state_of acc name = List.assoc_opt name acc.ac_states

(* Symbolic input stores for a state: every global and local becomes a
   free variable carrying its prefixed name. *)
let sym_inputs (m : Ast.machine) (st : Ast.state_decl) =
  let globals =
    List.map (fun (v : Ast.var_decl) -> (v.vname, Svar (gkey v.vname, Some v.vtyp)))
      m.mvars
    @ List.map (fun (t : Ast.trig_decl) -> (t.tname, Svar (gkey t.tname, None)))
        m.mtrigs
  in
  let locals =
    List.map (fun (v : Ast.var_decl) -> (v.vname, Svar (lkey v.vname, Some v.vtyp)))
      st.slocals
  in
  (globals, locals)

(* Abstract post-store of one feasible path: every tracked variable is
   re-evaluated under the refined environment. *)
let path_post acc (st : Ast.state_decl) (refined : env_map) (p : path) :
    astore =
  let m = acc.ac_m in
  let entry key peek n =
    let v =
      match peek p.store n with
      | Some s -> aeval (env_of refined) s
      | None -> Atop
    in
    (key n, v)
  in
  SMap.of_seq
    (List.to_seq
       (List.map (fun (v : Ast.var_decl) -> entry gkey peek_global v.vname) m.mvars
       @ List.map (fun (t : Ast.trig_decl) -> entry gkey peek_global t.tname)
           m.mtrigs
       @ List.map (fun (v : Ast.var_decl) -> entry lkey peek_local v.vname)
           st.slocals))

(* Restrict a store to globals only (locals die on transit). *)
let globals_only (a : astore) : astore =
  SMap.filter (fun k _ -> String.length k >= 2 && k.[0] = 'g') a

(* A human-readable witness from a refined environment: one sample value
   per constrained variable. *)
let witness (refined : env_map) (pc : (sym * bool) list) : string =
  let vars =
    List.sort_uniq compare
      (List.concat_map
         (fun (t, _) ->
           let rec vars_of = function
             | Svar (n, _) -> [ n ]
             | Sbinop (_, a, b) -> vars_of a @ vars_of b
             | Sunop (_, a) -> vars_of a
             | Sapp (_, args) -> List.concat_map vars_of args
             | Sfield (b, _) -> vars_of b
             | _ -> []
           in
           vars_of t)
         pc)
  in
  let sample n =
    match env_of refined n with
    | Anum (l, h) ->
        let v = if Float.is_finite l then l else if Float.is_finite h then h else 0. in
        Some (Printf.sprintf "%s = %g" (unkey n) v)
    | Abool (Some b) -> Some (Printf.sprintf "%s = %b" (unkey n) b)
    | _ -> None
  in
  match List.filter_map sample vars with
  | [] -> "any input"
  | xs -> String.concat ", " xs

let record_v403 acc ~(st : Ast.state_decl) ~what refined (p : path) pos =
  if not (Hashtbl.mem acc.v403 pos) then
    Hashtbl.replace acc.v403 pos
      (Diagnostic.errorf ~pos ~code:"V403"
         "invariant can fail in state %s (%s): witness path [%s] with %s"
         st.sname what (pc_to_string p.pc) (witness refined p.pc))

let record_v404 acc ~(st : Ast.state_decl) refined ~pc
    ((fn : string), _container, index, pos) =
  let idx = aeval (env_of refined) index in
  let bl, bh = pc_bounds pc index in
  let idx =
    match idx with
    | Anum (l, h) -> Anum (max l bl, min h bh)
    | Atop when Float.is_finite bl || Float.is_finite bh -> Anum (bl, bh)
    | v -> v
  in
  let may_negative =
    match idx with Anum (l, _) -> l < 0. | Abool _ -> false | Atop -> true
  in
  if may_negative && not (Hashtbl.mem acc.v404 (pos, fn)) then
    Hashtbl.replace acc.v404 (pos, fn)
      (Diagnostic.warningf ~pos ~code:"V404"
         "%s index may be out of range in state %s (index evaluates to %s)" fn
         st.sname (aval_to_string idx))

(* Join a store into a per-state table; returns true when it changed. *)
let join_into tbl name (store : astore) : bool =
  match Hashtbl.find_opt tbl name with
  | None ->
      Hashtbl.replace tbl name (store, 1);
      true
  | Some (old, n) ->
      let joined =
        if n >= widen_after then astore_widen old (astore_join old store)
        else astore_join old store
      in
      if astore_equal old joined then false
      else begin
        Hashtbl.replace tbl name (joined, n + 1);
        true
      end

let push acc item = acc.worklist <- item :: acc.worklist

let enqueue_enter acc name store =
  Hashtbl.replace acc.reached name ();
  if join_into acc.enter_in name store then push acc (`Enter name)

let enqueue_steady acc name store =
  if join_into acc.steady_in name store then push acc (`Steady name)

(* Run one dispatch unit symbolically from symbolic inputs. *)
let run_dispatch acc (st : Ast.state_decl) (events : Ast.event list) :
    path list =
  let m = acc.ac_m in
  let globals, locals = sym_inputs m st in
  let store = mk_istore ~globals ~locals in
  let eus =
    List.map
      (fun (ev : Ast.event) ->
        let bindings =
          match ev.trigger with
          | Ast.On_trigger_var (_, Some x) -> [ (x, Svar ("in:" ^ x, None)) ]
          | Ast.On_recv (_, x, _) -> [ (x, Svar ("in:" ^ x, None)) ]
          | _ -> []
        in
        { eu_body = ev.body; eu_frame = Fnames bindings })
      events
  in
  run_events (acc.ac_ctx ()) store eus ~binding:(Svar ("in:_", None))

(* Mark a handler as unexplorable: post is top, all its syntactic
   transits are assumed effective and taken. *)
let handle_unknown acc (st : Ast.state_decl) (events : Ast.event list)
    (ambient : astore) =
  acc.complete <- false;
  let top = astore_top ambient in
  enqueue_steady acc st.sname top;
  List.iter
    (fun (ev : Ast.event) ->
      List.iter
        (fun (pos, tgt) ->
          match tgt with
          | Some t ->
              Hashtbl.replace acc.effective (pos, t) ();
              if state_of acc t <> None then
                enqueue_enter acc t (globals_only top)
          | None ->
              (* dynamic target: every state may be entered *)
              List.iter
                (fun (n, _) -> enqueue_enter acc n (globals_only top))
                acc.ac_states)
        (body_transits ev.body))
    events

(* Flow one feasible, transiting path into its target state: exit
   events, transit-mode local inits, then the target's enter events
   (via the worklist). *)
let rec flow_transit acc (src : Ast.state_decl) (post : astore) (tgt : string)
    =
  match state_of acc tgt with
  | None -> ()  (* invalid target: the transit fails at runtime *)
  | Some tgt_st ->
      if String.equal tgt src.sname then ()
      else begin
        (* exit events of [src] under the post store *)
        let exit_events = events_for acc.ac_m src "exit" in
        let after_exit =
          if exit_events = [] then [ post ]
          else
            let paths = run_dispatch acc src exit_events in
            if
              List.exists
                (fun p ->
                  match p.outcome with Unknown _ -> true | _ -> false)
                paths
            then begin
              acc.complete <- false;
              [ astore_top post ]
            end
            else begin
              (* a transit pending during exit still flows into the
                 in-flight target first; the re-transit it causes
                 afterwards is over-approximated by entering its target
                 with a top store *)
              let extra = ref [] in
              let posts =
                process_paths acc src ~what:"on exit" ~ambient:post paths
                  ~on_transit:(fun p _ tgt2 ->
                    extra := p :: !extra;
                    enqueue_enter acc tgt2 (globals_only (astore_top p)))
              in
              posts @ !extra
            end
        in
        let joined =
          match after_exit with
          | [] -> None  (* every exit path is infeasible or fails *)
          | s :: rest -> Some (List.fold_left astore_join s rest)
        in
        match joined with
        | None -> ()
        | Some store ->
            (* transit-mode local inits of the target, evaluated against
               the old state's store *)
            let m = acc.ac_m in
            let g_syms, l_syms = sym_inputs m src in
            let istore = mk_istore ~globals:g_syms ~locals:l_syms in
            let inits =
              List.map
                (fun (v : Ast.var_decl) ->
                  { iu_name = v.vname;
                    iu_slot = None;
                    iu_kind =
                      (match v.vinit with
                      | Some e -> `Expr e
                      | None -> `Default v.vtyp) })
                tgt_st.slocals
            in
            let new_names =
              Array.of_list
                (List.map (fun (v : Ast.var_decl) -> v.vname) tgt_st.slocals)
            in
            let init_paths =
              run_local_inits_transit (acc.ac_ctx ()) istore ~new_names inits
            in
            let flow_one (p : path) =
              match p.outcome with
              | Unknown _ ->
                  acc.complete <- false;
                  enqueue_enter acc tgt (astore_top store)
              | Err _ -> ()
              | Aviol _ | Running -> (
                  match path_feasible store p with
                  | None -> ()
                  | Some refined ->
                      (match p.outcome with
                      | Aviol pos ->
                          record_v403 acc ~st:src
                            ~what:
                              (Printf.sprintf "transit to %s" tgt_st.sname)
                            refined p pos
                      | _ -> ());
                      List.iter (record_v404 acc ~st:src refined ~pc:p.pc)
                        p.obligations;
                      if p.outcome = Running then begin
                        let entry =
                          SMap.of_seq
                            (List.to_seq
                               (List.map
                                  (fun (v : Ast.var_decl) ->
                                    ( lkey v.vname,
                                      match peek_local p.store v.vname with
                                      | Some s -> aeval (env_of refined) s
                                      | None -> Atop ))
                                  tgt_st.slocals))
                        in
                        enqueue_enter acc tgt
                          (SMap.union (fun _ _ l -> Some l)
                             (globals_only (path_post acc src refined p))
                             entry)
                      end)
            in
            List.iter flow_one init_paths
      end

(* Process the paths of one handler run under an ambient store: record
   V403/V404, prune infeasible paths, and return the feasible
   non-transiting post-stores.  Transiting paths are handed to
   [on_transit]. *)
and process_paths acc (st : Ast.state_decl) ~what ~(ambient : astore)
    (paths : path list)
    ~(on_transit : astore -> Ast.pos -> string -> unit) : astore list =
  List.filter_map
    (fun (p : path) ->
      match p.outcome with
      | Unknown _ -> None  (* caller checks for unknowns separately *)
      | _ -> (
          match path_feasible ambient p with
          | None -> None
          | Some refined -> (
              (match p.outcome with
              | Aviol pos -> record_v403 acc ~st ~what refined p pos
              | _ -> ());
              List.iter (record_v404 acc ~st refined ~pc:p.pc) p.obligations;
              match p.outcome with
              | Err _ | Aviol _ ->
                  (* the handler dies here; partial writes persist *)
                  Some (path_post acc st refined p)
              | Running | Unknown _ -> (
                  let post = path_post acc st refined p in
                  match p.pending with
                  | None -> Some post
                  | Some (Pconc (tgt, pos)) ->
                      Hashtbl.replace acc.effective (pos, tgt) ();
                      if String.equal tgt st.sname then Some post
                        (* self-transit: a no-op in both engines *)
                      else begin
                        on_transit post pos tgt;
                        None
                      end
                  | Some (Psym (_, pos)) ->
                      (* dynamic target: any state is possible *)
                      acc.complete <- false;
                      List.iter
                        (fun (n, _) ->
                          Hashtbl.replace acc.effective (pos, n) ();
                          if not (String.equal n st.sname) then
                            on_transit (astore_top post) pos n)
                        acc.ac_states;
                      Some (astore_top post)))))
    paths

(* Run one handler (dispatch unit) of state [st] and flow its results. *)
let run_handler acc (st : Ast.state_decl) ~what (events : Ast.event list)
    (ambient : astore) : astore list =
  if events = [] then []
  else
    let paths = run_dispatch acc st events in
    if List.exists (fun p -> match p.outcome with Unknown _ -> true | _ -> false) paths
    then begin
      handle_unknown acc st events ambient;
      [ astore_top ambient ]
    end
    else
      process_paths acc st ~what ~ambient paths
        ~on_transit:(fun post _pos tgt -> flow_transit acc st post tgt)

let process_enter acc name =
  match (state_of acc name, Hashtbl.find_opt acc.enter_in name) with
  | Some st, Some (ambient, _) ->
      let enter_events = events_for acc.ac_m st "enter" in
      if enter_events = [] then enqueue_steady acc name ambient
      else begin
        let transited = ref [] in
        let posts =
          let paths = run_dispatch acc st enter_events in
          if
            List.exists
              (fun p -> match p.outcome with Unknown _ -> true | _ -> false)
              paths
          then begin
            handle_unknown acc st enter_events ambient;
            transited := [ "?" ];
            [ astore_top ambient ]
          end
          else
            process_paths acc st ~what:"on enter" ~ambient paths
              ~on_transit:(fun post pos tgt ->
                transited := tgt :: !transited;
                ignore pos;
                flow_transit acc st post tgt)
        in
        (* forwarding bookkeeping for the livelock check: did every
           feasible enter path transit away? *)
        let always_forwards = posts = [] && !transited <> [] in
        let fwd =
          match Hashtbl.find_opt acc.forwarding name with
          | Some f -> f
          | None ->
              let f = (true, Hashtbl.create 4) in
              Hashtbl.replace acc.forwarding name f;
              f
        in
        let all, tgts = fwd in
        List.iter (fun t -> Hashtbl.replace tgts t ()) !transited;
        Hashtbl.replace acc.forwarding name (all && always_forwards, tgts);
        List.iter (fun post -> enqueue_steady acc name post) posts
      end
  | _ -> ()

let process_steady acc name =
  match (state_of acc name, Hashtbl.find_opt acc.steady_in name) with
  | Some st, Some (ambient, _) ->
      List.iter
        (fun key ->
          let events = events_for acc.ac_m st key in
          let posts =
            run_handler acc st ~what:("on " ^ key) events ambient
          in
          List.iter (fun post -> enqueue_steady acc name post) posts)
        (steady_keys acc.ac_m st)
  | _ -> ()

(* Guaranteed enter-transit cycle detection over the forwarding graph. *)
let find_livelock acc : string list option =
  let edges name =
    match Hashtbl.find_opt acc.forwarding name with
    | Some (true, tgts) when Hashtbl.length tgts > 0 ->
        Hashtbl.fold (fun t () l -> t :: l) tgts [] |> List.sort compare
    | _ -> []
  in
  let rec dfs path visiting name =
    if List.mem name path then
      Some (List.rev (name :: path))
    else if Hashtbl.mem visiting name then None
    else begin
      Hashtbl.replace visiting name ();
      List.find_map (fun t -> dfs (name :: path) visiting t) (edges name)
    end
  in
  let visiting = Hashtbl.create 8 in
  List.find_map
    (fun (name, _) ->
      if Hashtbl.mem acc.reached name then dfs [] visiting name else None)
    acc.ac_states

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)
(* ------------------------------------------------------------------ *)

let default_host_builtins =
  [ "addTCAMRule"; "removeTCAMRule"; "getTCAMRule"; "exec" ]

let analyze ?(budget = default_budget)
    ?(host_builtins = default_host_builtins) ~(funcs : Ast.func_decl list)
    ~(machine : Ast.machine) () : result =
  let m = machine in
  let hooks =
    List.map (fun (t : Ast.trig_decl) -> (t.tname, t.ttyp)) m.mtrigs
  in
  let mk_ctx () =
    make_ctx ~budget ~host_builtins
      ~funcs:(Ifuncs (List.map (fun (f : Ast.func_decl) -> (f.fname, f)) funcs))
      ~hooks ()
  in
  let acc =
    { ac_m = m;
      ac_ctx = mk_ctx;
      ac_states = List.map (fun (s : Ast.state_decl) -> (s.sname, s)) m.states;
      enter_in = Hashtbl.create 8;
      steady_in = Hashtbl.create 8;
      worklist = [];
      reached = Hashtbl.create 8;
      effective = Hashtbl.create 16;
      forwarding = Hashtbl.create 8;
      v403 = Hashtbl.create 4;
      v404 = Hashtbl.create 4;
      complete = true;
      steps = 0 }
  in
  (match m.states with
  | [] -> ()
  | st0 :: _ ->
      (* machine-variable initialization, then the initial state's
         start-mode locals, then its enter events *)
      let ginits =
        List.map
          (fun (v : Ast.var_decl) ->
            { iu_name = v.vname;
              iu_slot = None;
              iu_kind =
                (if v.is_external then
                   `External (Svar (gkey ("ext:" ^ v.vname), Some v.vtyp))
                 else
                   match v.vinit with
                   | Some e -> `Expr e
                   | None -> `Default v.vtyp) })
          m.mvars
        @ List.map
            (fun (t : Ast.trig_decl) ->
              { iu_name = t.tname;
                iu_slot = None;
                iu_kind =
                  (match t.tinit with Some e -> `Expr e | None -> `Unit) })
            m.mtrigs
      in
      let linits =
        List.map
          (fun (v : Ast.var_decl) ->
            { iu_name = v.vname;
              iu_slot = None;
              iu_kind =
                (match v.vinit with
                | Some e -> `Expr e
                | None -> `Default v.vtyp) })
          st0.slocals
      in
      let store0 = mk_istore ~globals:[] ~locals:[] in
      let gpaths = run_inits_progressive (mk_ctx ()) store0 `Globals ginits in
      List.iter
        (fun (gp : path) ->
          match gp.outcome with
          | Unknown _ ->
              acc.complete <- false;
              enqueue_enter acc st0.sname SMap.empty
          | Err _ -> ()
          | Running | Aviol _ -> (
              match path_feasible SMap.empty gp with
              | None -> ()
              | Some refined ->
                  let lpaths =
                    run_inits_progressive (mk_ctx ()) gp.store `Locals linits
                  in
                  List.iter
                    (fun (lp : path) ->
                      match lp.outcome with
                      | Unknown _ ->
                          acc.complete <- false;
                          enqueue_enter acc st0.sname SMap.empty
                      | Err _ -> ()
                      | Running | Aviol _ -> (
                          match path_feasible refined lp with
                          | None -> ()
                          | Some refined ->
                              enqueue_enter acc st0.sname
                                (path_post acc st0 refined lp)))
                    lpaths))
        gpaths);
  (* the fixpoint loop *)
  let rec loop () =
    match acc.worklist with
    | [] -> ()
    | item :: rest ->
        acc.worklist <- rest;
        acc.steps <- acc.steps + 1;
        if acc.steps > max_items then acc.complete <- false
        else begin
          (match item with
          | `Enter name -> process_enter acc name
          | `Steady name -> process_steady acc name);
          loop ()
        end
  in
  loop ();
  let reachable =
    List.filter_map
      (fun (name, _) ->
        if Hashtbl.mem acc.reached name then Some name else None)
      acc.ac_states
  in
  let effective_transits =
    Hashtbl.fold (fun k () l -> k :: l) acc.effective []
    |> List.sort compare
  in
  let diags =
    Diagnostic.sort
      (Hashtbl.fold (fun _ d l -> d :: l) acc.v403 []
      @ Hashtbl.fold (fun _ d l -> d :: l) acc.v404 [])
  in
  { machine = m.mname;
    reachable;
    effective_transits;
    livelock = find_livelock acc;
    diags = Diagnostic.sort diags;
    complete = acc.complete }

let analyze_program ?budget ?host_builtins ~(program : Ast.program) () :
    result list =
  List.filter_map
    (fun (m : Ast.machine) ->
      if m.states = [] then None
      else
        Some (analyze ?budget ?host_builtins ~funcs:program.funcs ~machine:m ()))
    program.machines

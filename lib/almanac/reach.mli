(** Inter-handler state-machine reachability for Almanac machines.

    A fixpoint over (state, abstract store) with interval widening on
    counters: handlers are symbolically executed ({!Symexec}), paths are
    pruned against the abstract store, and transits flow the abstract
    post-store through exit events, the target's transit-mode local
    initializers and its enter events.

    Products: the semantically reachable states, the effective transit
    sites and the guaranteed enter-transit cycles (consumed by {!Lint}
    to upgrade L101/L102/L107 to reachability-backed verdicts), [V403]
    errors for user [assert(..)] invariants that admit a feasible
    violating path (with a concrete witness) and [V404] warnings for
    possibly out-of-range TCAM/stat/list indices. *)

type result = {
  machine : string;
  reachable : string list;  (** states semantically reachable *)
  effective_transits : (Ast.pos * string) list;
      (** transit sites that decide the next state on a feasible path *)
  livelock : string list option;
      (** a guaranteed enter-transit cycle, if one exists *)
  diags : Diagnostic.t list;  (** V403 invariant violations, V404 ranges *)
  complete : bool;
      (** false when an exploration budget was exhausted; precise
          claims (unreachable / dead / livelock) must then be withheld *)
}

val default_host_builtins : string list

(** Analyze one (resolved) machine; [funcs] are the program-level
    auxiliary functions. *)
val analyze :
  ?budget:Symexec.budget ->
  ?host_builtins:string list ->
  funcs:Ast.func_decl list ->
  machine:Ast.machine ->
  unit ->
  result

(** Analyze every concrete machine of a program. *)
val analyze_program :
  ?budget:Symexec.budget ->
  ?host_builtins:string list ->
  program:Ast.program ->
  unit ->
  result list

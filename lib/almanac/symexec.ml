(* Bounded symbolic execution of Almanac handler bodies.

   A handler (event body, initializer sequence, function body) is run
   over symbolic inputs: machine variables, state locals and trigger
   bindings become symbolic terms instead of concrete [Value.t]s, and
   every branch on a symbolic condition forks the path, accumulating the
   branch decision in a path condition.  The result is a finite set of
   paths, each carrying the final (symbolic) store, the ordered effect
   trace (sends, host calls, trigger-write notifications) and the
   pending transit — everything observable about one handler firing.

   Two scoping semantics are provided behind one executor, mirroring the
   two engines:

   - {!Istore}: the interpreter's string-keyed scope chain
     (event frame -> state locals -> machine globals), hashtable
     semantics ({!Interp});
   - {!Pstore}: the compiled engine's slot-indexed arrays with the
     [absent] sentinel and per-slot presence checks, driven by the
     {!Compile.plan} the compiler records — layouts, bound sets and
     dispatch decisions are taken from the plan, not re-derived, so a
     compilation bug is reproduced faithfully ({!Exec}).

   {!Equiv} runs both sides and compares path-by-path; {!Reach} runs the
   interpreter side against abstract stores.  There is no constraint
   solver: feasibility is decided by polarity contradiction and interval
   reasoning over atoms comparing a term with a constant, which is a
   sound over-approximation (infeasible paths may survive, feasible ones
   are never dropped), exactly what translation validation needs. *)

let fail = Host.fail

module SMap = Map.Make (String)
module IMap = Map.Make (Int)

(* ------------------------------------------------------------------ *)
(* Symbolic values                                                     *)
(* ------------------------------------------------------------------ *)

type sym =
  | Con of Value.t  (* concrete *)
  | Svar of string * Ast.typ option  (* free symbolic input *)
  | Sfield of sym * string
  | Sapp of string * sym list  (* pure call, uninterpreted *)
  | Sopaque of string * int  (* result of the n-th effectful call *)
  | Sunop of Ast.unop * sym
  | Sbinop of Ast.binop * sym * sym
  | Slist of sym list  (* known spine, symbolic elements *)
  | Sstats of sym array
  | Sstruct of string * (string * sym) list

(* Smart constructors: collapse to [Con] when fully concrete, so the
   "all arguments concrete" fast paths below fire. *)
let slist elems =
  let concrete =
    List.for_all (function Con _ -> true | _ -> false) elems
  in
  if concrete then
    Con (Value.List (List.map (function Con v -> v | _ -> assert false) elems))
  else Slist elems

let sstats elems =
  let concrete =
    Array.for_all (function Con (Value.Num _) -> true | _ -> false) elems
  in
  if concrete then
    Con
      (Value.Stats
         (Array.map
            (function Con (Value.Num f) -> f | _ -> assert false)
            elems))
  else Sstats elems

let sstruct name fields =
  let concrete = List.for_all (function _, Con _ -> true | _ -> false) fields in
  if concrete then
    Con
      (Value.Struct
         ( name,
           List.map (function f, Con v -> (f, v) | _ -> assert false) fields ))
  else Sstruct (name, fields)

(* elements of a list value as syms, when the spine is known *)
let spine = function
  | Con (Value.List l) -> Some (List.map (fun v -> Con v) l)
  | Slist l -> Some l
  | _ -> None

let rec sym_to_string = function
  | Con v -> Value.to_string v
  | Svar (n, _) -> n
  | Sfield (b, f) -> Printf.sprintf "%s.%s" (sym_to_string b) f
  | Sapp (f, args) ->
      Printf.sprintf "%s(%s)" f
        (String.concat ", " (List.map sym_to_string args))
  | Sopaque (f, i) -> Printf.sprintf "%s#%d" f i
  | Sunop (Ast.Not, a) -> Printf.sprintf "not %s" (sym_to_string a)
  | Sunop (Ast.Neg, a) -> Printf.sprintf "-%s" (sym_to_string a)
  | Sbinop (op, a, b) ->
      Printf.sprintf "(%s %s %s)" (sym_to_string a) (Ast.binop_to_string op)
        (sym_to_string b)
  | Slist l ->
      Printf.sprintf "[%s]" (String.concat ", " (List.map sym_to_string l))
  | Sstats a ->
      Printf.sprintf "stats[%s]"
        (String.concat ", " (Array.to_list (Array.map sym_to_string a)))
  | Sstruct (n, fields) ->
      Printf.sprintf "%s{%s}" n
        (String.concat ", "
           (List.map (fun (f, s) -> f ^ "=" ^ sym_to_string s) fields))

(* ------------------------------------------------------------------ *)
(* Path conditions and feasibility                                     *)
(* ------------------------------------------------------------------ *)

(* An atom [(t, b)] asserts that [t] is truthy iff [b].  [Not] is
   normalized away so syntactic variants land on the same atom. *)
let rec norm_atom (t, b) =
  match t with Sunop (Ast.Not, x) -> norm_atom (x, not b) | _ -> (t, b)

let atom_to_string (t, b) =
  if b then sym_to_string t else Printf.sprintf "not %s" (sym_to_string t)

let pc_to_string pc =
  match List.rev pc with
  | [] -> "(all inputs)"
  | atoms -> String.concat " && " (List.map atom_to_string atoms)

(* Interval with strictness flags; [None] bound = unbounded. *)
type iv = { lo : float; lo_s : bool; hi : float; hi_s : bool }

let iv_full = { lo = neg_infinity; lo_s = false; hi = infinity; hi_s = false }

let iv_empty iv =
  iv.lo > iv.hi || (iv.lo = iv.hi && (iv.lo_s || iv.hi_s))

let iv_meet a b =
  let lo, lo_s =
    if a.lo > b.lo then (a.lo, a.lo_s)
    else if b.lo > a.lo then (b.lo, b.lo_s)
    else (a.lo, a.lo_s || b.lo_s)
  in
  let hi, hi_s =
    if a.hi < b.hi then (a.hi, a.hi_s)
    else if b.hi < a.hi then (b.hi, b.hi_s)
    else (a.hi, a.hi_s || b.hi_s)
  in
  { lo; lo_s; hi; hi_s }

(* A-priori range facts about uninterpreted terms. *)
let term_fact = function
  | Sapp (("size" | "stats_size" | "hash" | "abs"), _) ->
      { iv_full with lo = 0. }
  | Sapp ("index_of", _) -> { iv_full with lo = -1. }
  | _ -> iv_full

(* Decompose a comparison atom into (term, op, constant); the comparison
   is normalized so the constant is on the right. *)
let comparison (t, b) =
  let flip = function
    | Ast.Lt -> Ast.Gt
    | Ast.Gt -> Ast.Lt
    | Ast.Le -> Ast.Ge
    | Ast.Ge -> Ast.Le
    | op -> op
  in
  let negate = function
    | Ast.Lt -> Ast.Ge
    | Ast.Gt -> Ast.Le
    | Ast.Le -> Ast.Gt
    | Ast.Ge -> Ast.Lt
    | op -> op  (* Eq/Neq handled by caller *)
  in
  match t with
  | Sbinop (((Ast.Lt | Ast.Gt | Ast.Le | Ast.Ge | Ast.Eq | Ast.Neq) as op), x, y)
    -> (
      let op, x, c =
        match (x, y) with
        | x, Con (Value.Num c) -> (op, x, Some c)
        | Con (Value.Num c), y -> (flip op, y, Some c)
        | _ -> (op, x, None)
      in
      match c with
      | None -> None
      | Some c ->
          let op =
            if b then op
            else
              match op with
              | Ast.Eq -> Ast.Neq
              | Ast.Neq -> Ast.Eq
              | op -> negate op
          in
          Some (x, op, c))
  | _ -> None

(* Syntactic equality of terms. *)
let sym_equal (a : sym) (b : sym) = compare a b = 0

let feasible (pc : (sym * bool) list) : bool =
  (* 1. the same term asserted with both polarities *)
  let contradiction =
    List.exists
      (fun (t, b) -> List.exists (fun (t', b') -> b <> b' && sym_equal t t') pc)
      pc
  in
  if contradiction then false
  else begin
    (* 2. trivially decidable comparisons between equal terms *)
    let trivially_false =
      List.exists
        (fun (t, b) ->
          match t with
          | Sbinop ((Ast.Eq | Ast.Le | Ast.Ge), x, y) when sym_equal x y ->
              not b
          | Sbinop ((Ast.Neq | Ast.Lt | Ast.Gt), x, y) when sym_equal x y -> b
          | _ -> false)
        pc
    in
    if trivially_false then false
    else begin
      (* 3. interval reasoning over comparisons with constants *)
      let ivs : (sym * iv) list ref = ref [] in
      let excl : (sym * float) list ref = ref [] in
      let get t =
        match List.find_opt (fun (t', _) -> sym_equal t t') !ivs with
        | Some (_, iv) -> iv
        | None -> term_fact t
      in
      let set t iv =
        ivs := (t, iv) :: List.filter (fun (t', _) -> not (sym_equal t t')) !ivs
      in
      List.iter
        (fun atom ->
          match comparison atom with
          | None -> ()
          | Some (x, op, c) -> (
              match op with
              | Ast.Lt -> set x (iv_meet (get x) { iv_full with hi = c; hi_s = true })
              | Ast.Le -> set x (iv_meet (get x) { iv_full with hi = c })
              | Ast.Gt -> set x (iv_meet (get x) { iv_full with lo = c; lo_s = true })
              | Ast.Ge -> set x (iv_meet (get x) { iv_full with lo = c })
              | Ast.Eq ->
                  set x (iv_meet (get x) { lo = c; lo_s = false; hi = c; hi_s = false })
              | Ast.Neq -> excl := (x, c) :: !excl
              | _ -> ()))
        pc;
      (not (List.exists (fun (_, iv) -> iv_empty iv) !ivs))
      && not
           (List.exists
              (fun (x, c) ->
                let iv = get x in
                iv.lo = c && iv.hi = c && not iv.lo_s && not iv.hi_s)
              !excl)
    end
  end

(* ------------------------------------------------------------------ *)
(* Stores                                                              *)
(* ------------------------------------------------------------------ *)

(* Interpreter-semantics store: string-keyed maps standing in for the
   hashtables; a missing key is an unbound name. *)
type istore = {
  i_frames : sym SMap.t list;
  i_locals : sym SMap.t;
  i_globals : sym SMap.t;
}

(* Plan-semantics store: slot-indexed cells; a missing key holds the
   [Compile.absent] sentinel. *)
type pcells = sym IMap.t

type pstore = {
  p_frame : (Compile.vframe * pcells) option;
  p_sc_locals : (string * int) list option;
      (* static state-local table; [None] = dynamic resolution *)
  p_locals : pcells;
  p_locals_names : string array;
  p_globals : pcells;
  p_global_tbl : (string * int) list;
}

type store = Istore of istore | Pstore of pstore

let mk_istore ~globals ~locals =
  Istore
    { i_frames = [];
      i_locals = SMap.of_seq (List.to_seq locals);
      i_globals = SMap.of_seq (List.to_seq globals) }

let mk_pstore ~(plan : Compile.plan) ~globals ~(state : Compile.vstate) ~locals
    =
  let gcells =
    List.fold_left
      (fun acc (name, slot) ->
        match List.assoc_opt name globals with
        | Some v -> IMap.add slot v acc
        | None -> acc)
      IMap.empty plan.v_global_slots
  in
  let lcells = ref IMap.empty in
  Array.iteri
    (fun i n ->
      match List.assoc_opt n locals with
      | Some v -> lcells := IMap.add i v !lcells
      | None -> ())
    state.vs_local_names;
  Pstore
    { p_frame = None;
      p_sc_locals = None;
      p_locals = !lcells;
      p_locals_names = state.vs_local_names;
      p_globals = gcells;
      p_global_tbl = plan.v_global_slots }

(* -- reads ---------------------------------------------------------- *)

let unbound name = Error (Printf.sprintf "unbound variable %s" name)

let iread st name =
  let rec go = function
    | [] -> (
        match SMap.find_opt name st.i_locals with
        | Some v -> Ok v
        | None -> (
            match SMap.find_opt name st.i_globals with
            | Some v -> Ok v
            | None -> unbound name))
    | f :: rest -> (
        match SMap.find_opt name f with Some v -> Ok v | None -> go rest)
  in
  go st.i_frames

let pglobal_read st name =
  match List.assoc_opt name st.p_global_tbl with
  | Some g -> (
      match IMap.find_opt g st.p_globals with
      | Some v -> Ok v
      | None -> unbound name)
  | None -> unbound name

let pouter_read st name =
  match st.p_sc_locals with
  | Some tbl -> (
      match List.assoc_opt name tbl with
      | Some i -> (
          match IMap.find_opt i st.p_locals with
          | Some v -> Ok v
          | None -> pglobal_read st name)
      | None -> pglobal_read st name)
  | None ->
      let n = Array.length st.p_locals_names in
      let rec go i =
        if i >= n then pglobal_read st name
        else if String.equal st.p_locals_names.(i) name then
          match IMap.find_opt i st.p_locals with
          | Some v -> Ok v
          | None -> pglobal_read st name
        else go (i + 1)
      in
      go 0

let pread st name =
  match st.p_frame with
  | Some (lay, cells) -> (
      match List.assoc_opt name lay.Compile.vf_slots with
      | Some i ->
          if List.mem name lay.Compile.vf_bound then
            match IMap.find_opt i cells with
            | Some v -> Ok v
            | None ->
                (* a mutated/buggy layout marked the name bound without
                   binding it: the real engine reads the sentinel *)
                Ok (Con Compile.absent)
          else (
            match IMap.find_opt i cells with
            | Some v -> Ok v
            | None -> pouter_read st name)
      | None -> pouter_read st name)
  | None -> pouter_read st name

let store_read store name =
  match store with Istore st -> iread st name | Pstore st -> pread st name

(* -- writes --------------------------------------------------------- *)

let unbound_w name =
  Error (Printf.sprintf "assignment to unbound variable %s" name)

(* [hooks]: trigger-variable types; a write to a hooked global notifies
   the host (returned so the caller can record the effect). *)
let iwrite hooks st name v =
  let rec go acc = function
    | [] ->
        if SMap.mem name st.i_locals then
          Ok
            ( { st with i_locals = SMap.add name v st.i_locals;
                i_frames = List.rev acc },
              None )
        else if SMap.mem name st.i_globals then
          Ok
            ( { st with i_globals = SMap.add name v st.i_globals;
                i_frames = List.rev acc },
              List.assoc_opt name hooks )
        else unbound_w name
    | f :: rest ->
        if SMap.mem name f then
          Ok
            ( { st with i_frames = List.rev_append acc (SMap.add name v f :: rest) },
              None )
        else go (f :: acc) rest
  in
  go [] st.i_frames

let pglobal_write hooks st name v =
  match List.assoc_opt name st.p_global_tbl with
  | Some g ->
      if IMap.mem g st.p_globals then
        Ok
          ( { st with p_globals = IMap.add g v st.p_globals },
            List.assoc_opt name hooks )
      else unbound_w name
  | None -> unbound_w name

let pouter_write hooks st name v =
  match st.p_sc_locals with
  | Some tbl -> (
      match List.assoc_opt name tbl with
      | Some i ->
          if IMap.mem i st.p_locals then
            Ok ({ st with p_locals = IMap.add i v st.p_locals }, None)
          else pglobal_write hooks st name v
      | None -> pglobal_write hooks st name v)
  | None ->
      let n = Array.length st.p_locals_names in
      let rec go i =
        if i >= n then pglobal_write hooks st name v
        else if String.equal st.p_locals_names.(i) name then
          if IMap.mem i st.p_locals then
            Ok ({ st with p_locals = IMap.add i v st.p_locals }, None)
          else pglobal_write hooks st name v
        else go (i + 1)
      in
      go 0

let pwrite hooks st name v =
  match st.p_frame with
  | Some (lay, cells) -> (
      let frame_write () =
        Ok
          ( { st with p_frame = Some (lay, IMap.add (List.assoc name lay.Compile.vf_slots) v cells) },
            None )
      in
      match List.assoc_opt name lay.Compile.vf_slots with
      | Some i ->
          if List.mem name lay.Compile.vf_bound then frame_write ()
          else if IMap.mem i cells then frame_write ()
          else pouter_write hooks st name v
      | None -> pouter_write hooks st name v)
  | None -> pouter_write hooks st name v

let store_write hooks store name v =
  match store with
  | Istore st ->
      Result.map (fun (st, h) -> (Istore st, h)) (iwrite hooks st name v)
  | Pstore st ->
      Result.map (fun (st, h) -> (Pstore st, h)) (pwrite hooks st name v)

(* -- declarations --------------------------------------------------- *)

let store_decl store name v =
  match store with
  | Istore st -> (
      match st.i_frames with
      | f :: rest ->
          Ok (Istore { st with i_frames = SMap.add name v f :: rest })
      | [] -> Ok (Istore { st with i_locals = SMap.add name v st.i_locals }))
  | Pstore st -> (
      match st.p_frame with
      | Some (lay, cells) -> (
          match List.assoc_opt name lay.Compile.vf_slots with
          | Some i ->
              Ok (Pstore { st with p_frame = Some (lay, IMap.add i v cells) })
          | None ->
              Error
                (Printf.sprintf "internal: no frame slot for %s in plan" name))
      | None ->
          Ok (Pstore { st with p_locals = IMap.add 0 v st.p_locals }))

(* -- inspection ----------------------------------------------------- *)

let peek_global store name =
  match store with
  | Istore st -> SMap.find_opt name st.i_globals
  | Pstore st -> (
      match List.assoc_opt name st.p_global_tbl with
      | Some g -> IMap.find_opt g st.p_globals
      | None -> None)

let peek_local store name =
  match store with
  | Istore st -> SMap.find_opt name st.i_locals
  | Pstore st ->
      let n = Array.length st.p_locals_names in
      let rec go i =
        if i >= n then None
        else if String.equal st.p_locals_names.(i) name then
          IMap.find_opt i st.p_locals
        else go (i + 1)
      in
      go 0

(* ------------------------------------------------------------------ *)
(* Paths                                                               *)
(* ------------------------------------------------------------------ *)

type starget = To_harvester | To_machine of string * sym option

type effect_ =
  | Esend of starget * sym
  | Ecall of string * sym list  (* effectful host/builtin call, in order *)
  | Etrig of string * Ast.trigger_type * sym  (* trigger-variable write *)

let starget_to_string = function
  | To_harvester -> "harvester"
  | To_machine (m, None) -> m
  | To_machine (m, Some d) -> Printf.sprintf "%s@%s" m (sym_to_string d)

let effect_to_string = function
  | Esend (t, v) ->
      Printf.sprintf "send %s to %s" (sym_to_string v) (starget_to_string t)
  | Ecall (f, args) ->
      Printf.sprintf "%s(%s)" f
        (String.concat ", " (List.map sym_to_string args))
  | Etrig (n, _, v) -> Printf.sprintf "retune %s = %s" n (sym_to_string v)

type pend = Pconc of string * Ast.pos | Psym of sym * Ast.pos

type outcome =
  | Running  (* still executing / completed normally *)
  | Err of string  (* runtime failure *)
  | Aviol of Ast.pos  (* assert(..) can fail here *)
  | Unknown of string  (* a budget was exhausted; reason names the knob *)

type path = {
  pc : (sym * bool) list;  (* newest first *)
  store : store;
  effects : effect_ list;  (* newest first *)
  pending : pend option;
  outcome : outcome;
  ret : sym option;  (* a Return is unwinding *)
  n_opaque : int;
  depth : int;  (* function-inline depth *)
  obligations : (string * sym * sym * Ast.pos) list;
      (* (builtin, container, symbolic index, site) for V404 *)
  cur_pos : Ast.pos;
}

let init_path store =
  { pc = [];
    store;
    effects = [];
    pending = None;
    outcome = Running;
    ret = None;
    n_opaque = 0;
    depth = 0;
    obligations = [];
    cur_pos = Ast.no_pos }

let halted p = p.outcome <> Running || p.ret <> None

let perr p msg = { p with outcome = Err msg }
let punknown p reason = { p with outcome = Unknown reason }

(* ------------------------------------------------------------------ *)
(* Execution context                                                   *)
(* ------------------------------------------------------------------ *)

type budget = { max_paths : int; max_unroll : int; max_inline : int }

let default_budget = { max_paths = 768; max_unroll = 8; max_inline = 16 }

(* concrete-condition loops get a generous fixed budget; symbolic ones
   are bounded by [max_unroll] forks *)
let max_concrete_iters = 1024

type funcs =
  | Ifuncs of (string * Ast.func_decl) list  (* interpreter side *)
  | Pfuncs of (string * Compile.vfunc) list  (* plan side *)

type ctx = {
  cx_funcs : funcs;
  cx_host : string -> bool;  (* names the deployment host serves *)
  cx_hooks : (string * Ast.trigger_type) list;  (* trigger variables *)
  cx_budget : budget;
  mutable cx_paths : int;  (* forks taken so far in this run *)
}

let make_ctx ?(budget = default_budget) ?(host_builtins = []) ~funcs ~hooks ()
    =
  { cx_funcs = funcs;
    cx_host = (fun n -> List.mem n host_builtins);
    cx_hooks = hooks;
    cx_budget = budget;
    cx_paths = 0 }

(* ------------------------------------------------------------------ *)
(* Forking                                                             *)
(* ------------------------------------------------------------------ *)

let add_atom p atom =
  let t, b = norm_atom atom in
  if List.exists (fun (t', b') -> b = b' && sym_equal t t') p.pc then Some p
  else
    let pc = (t, b) :: p.pc in
    if feasible pc then Some { p with pc } else None

(* Fork on the truthiness of a symbolic term: returns the feasible
   branches tagged with the assumed truth value.  When the path budget
   is exhausted the path degrades to a single [Unknown]. *)
let fork_bool ctx p t : (path * bool) list =
  let bt = add_atom p (t, true) in
  let bf = add_atom p (t, false) in
  match (bt, bf) with
  | Some pt, None -> [ (pt, true) ]
  | None, Some pf -> [ (pf, false) ]
  | None, None -> []
  | Some pt, Some pf ->
      if ctx.cx_paths >= ctx.cx_budget.max_paths then
        [ (punknown p "path budget exhausted (--max-paths)", true) ]
      else begin
        ctx.cx_paths <- ctx.cx_paths + 1;
        [ (pt, true); (pf, false) ]
      end

(* ------------------------------------------------------------------ *)
(* Concrete folding helpers                                            *)
(* ------------------------------------------------------------------ *)

(* Pure builtins we may fold concretely (no host access). *)
let foldable =
  [ "min"; "max"; "size"; "is_list_empty"; "append"; "nth"; "contains_elem";
    "remove_elem"; "index_of"; "set_nth"; "stat"; "stats_size"; "stats_sum";
    "drop_action"; "count_action"; "rate_limit_action"; "qos_action";
    "mkRule"; "str"; "str_contains"; "floor"; "abs"; "log2"; "hash" ]

let pure_table = lazy (Builtins.table Host.null_host)

let is_pure_builtin name = List.mem name foldable

(* Pure builtins resolvable through the engines' builtin table but not
   foldable (their value depends on the deployment host); they are
   assumed stable within one handler firing. *)
let opaque_pure = [ "now"; "res"; "self_switch" ]

(* Builtin-table names with observable side effects. *)
let effectful_builtin = [ "log" ]

let num f = Value.Num f

(* Concrete binop mirroring {!Interp.binop} (no short-circuit cases:
   And/Or over booleans fork before this is reached). *)
let concrete_binop op (va : Value.t) (vb : Value.t) : Value.t =
  match (op : Ast.binop) with
  | Ast.And -> (
      match va with
      | Value.Bool false -> Value.Bool false
      | Value.Bool true -> (
          match vb with
          | Value.Bool _ -> vb
          | v -> fail "'and' on %s" (Value.to_string v))
      | Value.FilterV fa ->
          Value.FilterV (Farm_net.Filter.And (fa, Value.as_filter vb))
      | v -> fail "'and' on %s" (Value.to_string v))
  | Ast.Or -> (
      match va with
      | Value.Bool true -> Value.Bool true
      | Value.Bool false -> (
          match vb with
          | Value.Bool _ -> vb
          | v -> fail "'or' on %s" (Value.to_string v))
      | Value.FilterV fa ->
          Value.FilterV (Farm_net.Filter.Or (fa, Value.as_filter vb))
      | v -> fail "'or' on %s" (Value.to_string v))
  | Ast.Eq -> Value.Bool (Value.equal va vb)
  | Ast.Neq -> Value.Bool (not (Value.equal va vb))
  | Ast.Le -> Value.Bool (Value.as_num va <= Value.as_num vb)
  | Ast.Ge -> Value.Bool (Value.as_num va >= Value.as_num vb)
  | Ast.Lt -> Value.Bool (Value.as_num va < Value.as_num vb)
  | Ast.Gt -> Value.Bool (Value.as_num va > Value.as_num vb)
  | Ast.Add -> (
      match (va, vb) with
      | Value.Str x, Value.Str y -> Value.Str (x ^ y)
      | _ -> num (Value.as_num va +. Value.as_num vb))
  | Ast.Sub -> num (Value.as_num va -. Value.as_num vb)
  | Ast.Mul -> num (Value.as_num va *. Value.as_num vb)
  | Ast.Div ->
      let x = Value.as_num va and y = Value.as_num vb in
      if y = 0. then fail "division by zero" else num (x /. y)

let concrete_unop op (v : Value.t) : Value.t =
  match (op : Ast.unop) with
  | Ast.Not -> (
      match v with
      | Value.Bool b -> Value.Bool (not b)
      | Value.FilterV f -> Value.FilterV (Farm_net.Filter.Not f)
      | v -> fail "'not' applied to %s" (Value.to_string v))
  | Ast.Neg -> num (-.Value.as_num v)

(* ------------------------------------------------------------------ *)
(* Expression evaluation                                               *)
(* ------------------------------------------------------------------ *)

(* Evaluation of an expression over a path forks into a list of
   (path, value) results; paths that error carry [Unit] and are not
   evaluated further. *)

let unit_s = Con Value.Unit

let ( let* ) (results : (path * sym) list) f : (path * sym) list =
  List.concat_map
    (fun (p, s) -> if halted p then [ (p, unit_s) ] else f (p, s))
    results

(* Run [f] on every live path of a statement-level result. *)
let bind_paths (paths : path list) (f : path -> path list) : path list =
  List.concat_map (fun p -> if halted p then [ p ] else f p) paths

let catch_conc p (f : unit -> sym) : path * sym =
  match f () with
  | s -> (p, s)
  | exception Host.Runtime_error m -> (perr p m, unit_s)
  | exception Value.Type_error m -> (perr p m, unit_s)

let rec eval ctx p (e : Ast.expr) : (path * sym) list =
  if halted p then [ (p, unit_s) ]
  else
    match e with
    | Ast.Bool b -> [ (p, Con (Value.Bool b)) ]
    | Ast.Int i -> [ (p, Con (num (float_of_int i))) ]
    | Ast.Float f -> [ (p, Con (num f)) ]
    | Ast.String s -> [ (p, Con (Value.Str s)) ]
    | Ast.AnyLit ->
        [ (p, Con (Value.FilterV (Farm_net.Filter.atom Farm_net.Filter.Any)))
        ]
    | Ast.Var v -> (
        match store_read p.store v with
        | Ok s -> [ (p, s) ]
        | Error m -> [ (perr p m, unit_s) ])
    | Ast.Field (b, f) ->
        let* p, s = eval ctx p b in
        [ eval_field p s f ]
    | Ast.Call (fname, args) -> eval_call ctx p fname args
    | Ast.Unop (op, a) ->
        let* p, s = eval ctx p a in
        [ (match s with
          | Con v -> catch_conc p (fun () -> Con (concrete_unop op v))
          | s -> (p, Sunop (op, s))) ]
    | Ast.Binop (op, a, b) -> eval_binop ctx p op a b
    | Ast.FilterAtom (head, arg) ->
        let* p, s = eval ctx p arg in
        [ (match s with
          | Con v ->
              catch_conc p (fun () ->
                  Con (Value.FilterV (Builtins.filter_atom_value head v)))
          | s -> (p, Sapp ("%filter_atom", [ s ]))) ]
    | Ast.StructLit (name, fields) ->
        let rec go p acc = function
          | [] -> [ (p, sstruct name (List.rev acc)) ]
          | (f, e) :: rest ->
              let* p, s = eval ctx p e in
              go p ((f, s) :: acc) rest
        in
        go p [] fields
    | Ast.ListLit es ->
        let rec go p acc = function
          | [] -> [ (p, slist (List.rev acc)) ]
          | e :: rest ->
              let* p, s = eval ctx p e in
              go p (s :: acc) rest
        in
        go p [] es

and eval_field p s f : path * sym =
  match s with
  | Con v -> catch_conc p (fun () -> Con (Value.field v f))
  | Sstruct (_, fields) -> (
      match List.assoc_opt f fields with
      | Some v -> (p, v)
      | None -> (perr p (Printf.sprintf "unknown field %s" f), unit_s))
  | s -> (p, Sfield (s, f))

and eval_binop ctx p op a b : (path * sym) list =
  match op with
  | Ast.And -> (
      let* p, sa = eval ctx p a in
      match sa with
      | Con (Value.Bool false) -> [ (p, Con (Value.Bool false)) ]
      | Con (Value.Bool true) ->
          let* p, sb = eval ctx p b in
          [ (match sb with
            | Con v ->
                catch_conc p (fun () ->
                    match v with
                    | Value.Bool _ -> Con v
                    | v -> fail "'and' on %s" (Value.to_string v))
            | sb -> (p, sb)) ]
      | Con (Value.FilterV _) ->
          let* p, sb = eval ctx p b in
          [ (match (sa, sb) with
            | Con va, Con vb ->
                catch_conc p (fun () -> Con (concrete_binop Ast.And va vb))
            | _ -> (p, Sbinop (Ast.And, sa, sb))) ]
      | Con v -> [ (perr p (Printf.sprintf "'and' on %s" (Value.to_string v)), unit_s) ]
      | sa ->
          (* symbolic boolean: fork, preserving short-circuit effects *)
          List.concat_map
            (fun (p, assumed) ->
              if not assumed then [ (p, Con (Value.Bool false)) ]
              else
                let* p, sb = eval ctx p b in
                [ (p, sb) ])
            (fork_bool ctx p sa))
  | Ast.Or -> (
      let* p, sa = eval ctx p a in
      match sa with
      | Con (Value.Bool true) -> [ (p, Con (Value.Bool true)) ]
      | Con (Value.Bool false) ->
          let* p, sb = eval ctx p b in
          [ (match sb with
            | Con v ->
                catch_conc p (fun () ->
                    match v with
                    | Value.Bool _ -> Con v
                    | v -> fail "'or' on %s" (Value.to_string v))
            | sb -> (p, sb)) ]
      | Con (Value.FilterV _) ->
          let* p, sb = eval ctx p b in
          [ (match (sa, sb) with
            | Con va, Con vb ->
                catch_conc p (fun () -> Con (concrete_binop Ast.Or va vb))
            | _ -> (p, Sbinop (Ast.Or, sa, sb))) ]
      | Con v -> [ (perr p (Printf.sprintf "'or' on %s" (Value.to_string v)), unit_s) ]
      | sa ->
          List.concat_map
            (fun (p, assumed) ->
              if assumed then [ (p, Con (Value.Bool true)) ]
              else
                let* p, sb = eval ctx p b in
                [ (p, sb) ])
            (fork_bool ctx p sa))
  | op ->
      let* p, sa = eval ctx p a in
      let* p, sb = eval ctx p b in
      [ (match (sa, sb) with
        | Con va, Con vb ->
            catch_conc p (fun () -> Con (concrete_binop op va vb))
        | _ -> (
            match op with
            | Ast.Eq when sym_equal sa sb -> (p, Con (Value.Bool true))
            | Ast.Neq when sym_equal sa sb -> (p, Con (Value.Bool false))
            | _ -> (p, Sbinop (op, sa, sb)))) ]

and eval_args ctx p args : (path * sym list) list =
  let rec go p acc = function
    | [] -> [ (p, List.rev acc) ]
    | e :: rest ->
        List.concat_map
          (fun (p, s) ->
            if halted p then [ (p, []) ] else go p (s :: acc) rest)
          (eval ctx p e)
  in
  go p [] args

and eval_call ctx p fname args : (path * sym) list =
  List.concat_map
    (fun (p, argv) ->
      if halted p then [ (p, unit_s) ]
      else if ctx.cx_host fname then
        (* deployment host builtin: an effect with an opaque result *)
        [ ( { p with
              effects = Ecall (fname, argv) :: p.effects;
              n_opaque = p.n_opaque + 1 },
            Sopaque (fname, p.n_opaque) ) ]
      else
        match user_func ctx fname with
        | Some f -> inline_func ctx p fname f argv
        | None ->
            if String.equal fname "assert" then eval_assert ctx p argv
            else if List.mem fname opaque_pure then [ (p, Sapp (fname, argv)) ]
            else if List.mem fname effectful_builtin then
              [ ( { p with effects = Ecall (fname, argv) :: p.effects },
                  unit_s ) ]
            else if is_pure_builtin fname then eval_pure ctx p fname argv
            else
              [ (perr p (Printf.sprintf "unknown function %s" fname), unit_s) ])
    (eval_args ctx p args)

and user_func ctx fname =
  match ctx.cx_funcs with
  | Ifuncs fs -> Option.map (fun f -> `I f) (List.assoc_opt fname fs)
  | Pfuncs fs -> Option.map (fun f -> `P f) (List.assoc_opt fname fs)

and eval_assert ctx p argv : (path * sym) list =
  match argv with
  | [ Con v ] ->
      [ (match Value.truthy v with
        | true -> (p, unit_s)
        | false -> ({ p with outcome = Aviol p.cur_pos }, unit_s)
        | exception Value.Type_error m -> (perr p m, unit_s)) ]
  | [ s ] ->
      List.map
        (fun (p, assumed) ->
          if assumed then (p, unit_s)
          else ({ p with outcome = Aviol p.cur_pos }, unit_s))
        (fork_bool ctx p s)
  | _ -> [ (perr p "expected 1 argument", unit_s) ]

and eval_pure ctx p fname argv : (path * sym) list =
  ignore ctx;
  let all_concrete =
    List.for_all (function Con _ -> true | _ -> false) argv
  in
  if all_concrete then
    let vals = List.map (function Con v -> v | _ -> assert false) argv in
    let f = Hashtbl.find (Lazy.force pure_table) fname in
    [ catch_conc p (fun () -> Con (f vals)) ]
  else
    (* structural folds over known spines keep loops over lists/stats
       concrete; everything else stays uninterpreted *)
    let dflt () = (p, Sapp (fname, argv)) in
    let obligation container index p =
      { p with
        obligations = (fname, container, index, p.cur_pos) :: p.obligations }
    in
    [ (match (fname, argv) with
      | "size", [ l ] -> (
          match spine l with
          | Some els -> (p, Con (num (float_of_int (List.length els))))
          | None -> dflt ())
      | "is_list_empty", [ l ] -> (
          match spine l with
          | Some els -> (p, Con (Value.Bool (els = [])))
          | None -> dflt ())
      | "append", [ l; x ] -> (
          match spine l with
          | Some els -> (p, slist (els @ [ x ]))
          | None -> dflt ())
      | "nth", [ l; Con i ] -> (
          match spine l with
          | Some els -> (
              let i = int_of_float (Value.as_num i) in
              match List.nth_opt els i with
              | Some v -> (p, v)
              | None ->
                  ( perr p
                      (Printf.sprintf "nth: index %d out of bounds (size %d)"
                         i (List.length els)),
                    unit_s ))
          | None -> dflt ())
      | "nth", [ l; i ] -> (obligation l i p, Sapp (fname, argv))
      | "set_nth", [ l; Con i; x ] -> (
          match spine l with
          | Some els ->
              let i = int_of_float (Value.as_num i) in
              if i < 0 || i >= List.length els then
                ( perr p
                    (Printf.sprintf
                       "set_nth: index %d out of bounds (size %d)" i
                       (List.length els)),
                  unit_s )
              else (p, slist (List.mapi (fun j v -> if j = i then x else v) els))
          | None -> dflt ())
      | "set_nth", [ l; i; _ ] -> (obligation l i p, Sapp (fname, argv))
      | "stat", [ Sstats a; Con i ] ->
          let i = int_of_float (Value.as_num i) in
          if i >= 0 && i < Array.length a then (p, a.(i))
          else
            ( perr p
                (Printf.sprintf "stat: index %d out of bounds (size %d)" i
                   (Array.length a)),
              unit_s )
      | "stat", [ s; i ] when i <> Con (Value.Num (-1.)) -> (
          match i with
          | Con _ -> dflt ()
          | i -> (obligation s i p, Sapp (fname, argv)))
      | "stats_size", [ Sstats a ] ->
          (p, Con (num (float_of_int (Array.length a))))
      | "stats_sum", [ Sstats a ] ->
          ( p,
            Array.fold_left
              (fun acc x ->
                match (acc, x) with
                | Con va, Con vb -> Con (concrete_binop Ast.Add va vb)
                | _ -> Sbinop (Ast.Add, acc, x))
              (Con (num 0.)) a )
      | _ -> dflt ()) ]

and inline_func ctx p fname f argv : (path * sym) list =
  if p.depth >= ctx.cx_budget.max_inline then
    [ (punknown p "function inline depth exhausted (--max-paths)", unit_s) ]
  else
    match f with
    | `I (fd : Ast.func_decl) ->
        if List.length fd.fparams <> List.length argv then
          [ ( perr p
                (Printf.sprintf "%s expects %d arguments, got %d" fname
                   (List.length fd.fparams) (List.length argv)),
              unit_s ) ]
        else
          let st = match p.store with Istore st -> st | _ -> assert false in
          let frame =
            List.fold_left2
              (fun acc (_, n) v -> SMap.add n v acc)
              SMap.empty fd.fparams argv
          in
          let saved = st.i_frames in
          let p' =
            { p with
              store = Istore { st with i_frames = [ frame ] };
              depth = p.depth + 1 }
          in
          List.map
            (fun (p, s) ->
              let st = match p.store with Istore st -> st | _ -> assert false in
              ( { p with store = Istore { st with i_frames = saved };
                  depth = p.depth - 1 },
                s ))
            (finish_call (exec_stmts ctx p' fd.fbody))
    | `P (vf : Compile.vfunc) ->
        if List.length vf.vfn_params <> List.length argv then
          [ ( perr p
                (Printf.sprintf "%s expects %d arguments, got %d" fname
                   (List.length vf.vfn_params) (List.length argv)),
              unit_s ) ]
        else
          let st = match p.store with Pstore st -> st | _ -> assert false in
          let cells =
            List.fold_left2
              (fun acc (_, slot) v -> IMap.add slot v acc)
              IMap.empty vf.vfn_params argv
          in
          let saved_frame = st.p_frame and saved_sc = st.p_sc_locals in
          let p' =
            { p with
              store =
                Pstore
                  { st with
                    p_frame = Some (vf.vfn_frame, cells);
                    p_sc_locals = None };
              depth = p.depth + 1 }
          in
          List.map
            (fun (p, s) ->
              let st = match p.store with Pstore st -> st | _ -> assert false in
              ( { p with
                  store =
                    Pstore
                      { st with p_frame = saved_frame; p_sc_locals = saved_sc };
                  depth = p.depth - 1 },
                s ))
            (finish_call (exec_stmts ctx p' vf.vfn_body))

(* consume the Return of a function body: the returned value (Unit when
   the body falls off the end) becomes the call's result *)
and finish_call (paths : path list) : (path * sym) list =
  List.map
    (fun p ->
      match p.ret with
      | Some v -> ({ p with ret = None }, v)
      | None -> (p, unit_s))
    paths

(* ------------------------------------------------------------------ *)
(* Statement execution                                                 *)
(* ------------------------------------------------------------------ *)

and exec_stmts ctx p (stmts : Ast.stmt list) : path list =
  match stmts with
  | [] -> [ p ]
  | s :: rest ->
      bind_paths (exec_stmt ctx p s) (fun p -> exec_stmts ctx p rest)

and exec_stmt ctx p (s : Ast.stmt) : path list =
  if halted p then [ p ]
  else
    let p = { p with cur_pos = s.Ast.sloc } in
    match s.Ast.sk with
    | Ast.Decl (typ, n, init) ->
        let vals =
          match init with
          | Some e -> eval ctx p e
          | None -> [ (p, Con (Value.default_of_typ typ)) ]
        in
        List.map
          (fun (p, v) ->
            if halted p then p
            else
              match store_decl p.store n v with
              | Ok store -> { p with store }
              | Error m -> perr p m)
          vals
    | Ast.Assign (n, e) ->
        List.map
          (fun (p, v) ->
            if halted p then p
            else
              match store_write ctx.cx_hooks p.store n v with
              | Ok (store, hook) ->
                  let p = { p with store } in
                  (match hook with
                  | Some tt -> { p with effects = Etrig (n, tt, v) :: p.effects }
                  | None -> p)
              | Error m -> perr p m)
          (eval ctx p e)
    | Ast.Transit e -> (
        match e with
        | Ast.Var tgt | Ast.String tgt ->
            [ { p with pending = Some (Pconc (tgt, s.Ast.sloc)) } ]
        | e ->
            List.map
              (fun (p, v) ->
                if halted p then p
                else
                  match v with
                  | Con c -> (
                      match Value.as_str c with
                      | tgt -> { p with pending = Some (Pconc (tgt, s.Ast.sloc)) }
                      | exception Value.Type_error m -> perr p m)
                  | v -> { p with pending = Some (Psym (v, s.Ast.sloc)) })
              (eval ctx p e))
    | Ast.If (c, th, el) ->
        List.concat_map
          (fun (p, cond) ->
            if halted p then [ p ]
            else
              match cond with
              | Con v -> (
                  match Value.truthy v with
                  | true -> exec_stmts ctx p th
                  | false -> exec_stmts ctx p el
                  | exception Value.Type_error m -> [ perr p m ])
              | cond ->
                  List.concat_map
                    (fun (p, b) ->
                      if halted p then [ p ]
                      else exec_stmts ctx p (if b then th else el))
                    (fork_bool ctx p cond))
          (eval ctx p c)
    | Ast.While (c, body) -> exec_while ctx p c body 0
    | Ast.Return None -> [ { p with ret = Some unit_s } ]
    | Ast.Return (Some e) ->
        List.map
          (fun (p, v) -> if halted p then p else { p with ret = Some v })
          (eval ctx p e)
    | Ast.Send (e, dest) ->
        (* the interpreter computes the target (evaluating a dynamic
           destination) before the payload *)
        let targets =
          match dest with
          | Ast.Harvester -> [ (p, To_harvester) ]
          | Ast.Machine (m, None) -> [ (p, To_machine (m, None)) ]
          | Ast.Machine (m, Some d) ->
              List.map
                (fun (p, s) -> (p, To_machine (m, Some s)))
                (eval ctx p d)
        in
        List.concat_map
          (fun (p, tgt) ->
            if halted p then [ p ]
            else
              List.map
                (fun (p, v) ->
                  if halted p then p
                  else { p with effects = Esend (tgt, v) :: p.effects })
                (eval ctx p e))
          targets
    | Ast.ExprStmt e ->
        List.map (fun (p, _) -> p) (eval ctx p e)

and exec_while ctx p cond body iter : path list =
  if halted p then [ p ]
  else
    List.concat_map
      (fun (p, c) ->
        if halted p then [ p ]
        else
          match c with
          | Con v -> (
              match Value.truthy v with
              | false -> [ p ]
              | true ->
                  if iter >= max_concrete_iters then
                    [ punknown p "loop iteration budget exhausted (--max-paths)" ]
                  else
                    bind_paths (exec_stmts ctx p body) (fun p ->
                        exec_while ctx p cond body (iter + 1))
              | exception Value.Type_error m -> [ perr p m ])
          | c ->
              if iter >= ctx.cx_budget.max_unroll then
                [ punknown p "loop unroll budget exhausted (--max-paths)" ]
              else
                List.concat_map
                  (fun (p, b) ->
                    if halted p then [ p ]
                    else if not b then [ p ]
                    else
                      bind_paths (exec_stmts ctx p body) (fun p ->
                          exec_while ctx p cond body (iter + 1)))
                  (fork_bool ctx p c))
      (eval ctx p cond)

(* ------------------------------------------------------------------ *)
(* Handler-level drivers                                               *)
(* ------------------------------------------------------------------ *)

(* One event of a dispatch sequence, with its side-specific frame. *)
type event_u = { eu_body : Ast.stmt list; eu_frame : frame_u }

and frame_u =
  | Fnames of (string * sym) list
      (* interpreter: fresh hashtable frame holding the bindings *)
  | Fplan of Compile.vevent
      (* plan: the event's recorded layout; the binding slot (if any)
         is installed by [run_events] *)

(* Run the events of one dispatch in sequence (as [Interp.dispatch] /
   [Exec.run_events] do), [binding] being the trigger/recv payload. *)
let run_events ctx store (events : event_u list) ~(binding : sym) : path list
    =
  let set_frame p (fr : frame_u) =
    match (p.store, fr) with
    | Istore st, Fnames bindings ->
        { p with
          store =
            Istore
              { st with
                i_frames =
                  [ SMap.of_seq (List.to_seq bindings) ] } }
    | Pstore st, Fplan ve ->
        let cells =
          match ve.Compile.ve_binding with
          | Some (_, slot) -> IMap.singleton slot binding
          | None -> IMap.empty
        in
        { p with
          store =
            Pstore
              { st with
                p_frame = Some (ve.Compile.ve_frame, cells);
                p_sc_locals = ve.Compile.ve_locals } }
    | _ -> invalid_arg "run_events: store/frame side mismatch"
  in
  let clear_frame p =
    match p.store with
    | Istore st -> { p with store = Istore { st with i_frames = [] } }
    | Pstore st ->
        { p with
          store = Pstore { st with p_frame = None; p_sc_locals = None } }
  in
  let run_one p (ev : event_u) =
    if halted p then [ p ]
    else
      let p = set_frame p ev.eu_frame in
      List.map
        (fun p -> clear_frame { p with ret = None })  (* Return_exc caught *)
        (exec_stmts ctx p ev.eu_body)
  in
  List.fold_left
    (fun paths ev -> List.concat_map (fun p -> run_one p ev) paths)
    [ init_path store ] events

(* -- initializer sequences ------------------------------------------ *)

type init_u = {
  iu_name : string;
  iu_slot : int option;  (* plan side *)
  iu_kind :
    [ `Expr of Ast.expr | `Default of Ast.typ | `Unit | `External of sym ];
}

let raw_write target store name slot v =
  match (store, target) with
  | Istore st, `Globals -> Istore { st with i_globals = SMap.add name v st.i_globals }
  | Istore st, `Locals -> Istore { st with i_locals = SMap.add name v st.i_locals }
  | Pstore st, `Globals -> (
      match slot with
      | Some i -> Pstore { st with p_globals = IMap.add i v st.p_globals }
      | None -> fail "internal: plan initializer without a slot")
  | Pstore st, `Locals -> (
      match slot with
      | Some i -> Pstore { st with p_locals = IMap.add i v st.p_locals }
      | None -> fail "internal: plan initializer without a slot")

let eval_init ctx p (iu : init_u) : (path * sym) list =
  match iu.iu_kind with
  | `Expr e -> eval ctx p e
  | `Default t -> [ (p, Con (Value.default_of_typ t)) ]
  | `Unit -> [ (p, unit_s) ]
  | `External s -> [ (p, s) ]

(* Progressive initialization: each initializer sees the previous ones'
   writes (machine-variable creation, initial-state locals at [start]). *)
let run_inits_progressive ctx store target (inits : init_u list) : path list =
  List.fold_left
    (fun paths iu ->
      bind_paths paths (fun p ->
          List.map
            (fun (p, v) ->
              if halted p then p
              else
                { p with
                  store = raw_write target p.store iu.iu_name iu.iu_slot v })
            (eval_init ctx p iu)))
    [ init_path store ] inits

(* Transit-mode local initialization: all initializers read the *old*
   state's locals; the new locals replace them only at the end.
   [new_names] is the target state's runtime locals layout. *)
let run_local_inits_transit ctx store ~(new_names : string array)
    (inits : init_u list) : path list =
  let paths =
    List.fold_left
      (fun acc iu ->
        List.concat_map
          (fun (p, writes) ->
            if halted p then [ (p, writes) ]
            else
              List.map
                (fun (p, v) -> (p, (iu.iu_name, iu.iu_slot, v) :: writes))
                (eval_init ctx p iu))
          acc)
      [ (init_path store, []) ]
      inits
  in
  List.map
    (fun (p, writes) ->
      if halted p then p
      else
        let store =
          match p.store with
          | Istore st ->
              let locals =
                List.fold_left
                  (fun acc (n, _, v) -> SMap.add n v acc)
                  SMap.empty (List.rev writes)
              in
              Istore { st with i_locals = locals }
          | Pstore st ->
              let cells =
                List.fold_left
                  (fun acc (_, slot, v) ->
                    match slot with
                    | Some i -> IMap.add i v acc
                    | None -> acc)
                  IMap.empty (List.rev writes)
              in
              Pstore
                { st with p_locals = cells; p_locals_names = new_names }
        in
        { p with store })
    paths

(* ------------------------------------------------------------------ *)
(* Concrete replay (symbolic-vs-concrete soundness)                    *)
(* ------------------------------------------------------------------ *)

(* Evaluate a symbolic term under a concrete assignment of the free
   [Svar]s.  Raises {!Host.Runtime_error} on terms that have no concrete
   meaning without a host ([Sopaque], [now], ...). *)
let rec eval_sym (lookup : string -> Value.t) (s : sym) : Value.t =
  match s with
  | Con v -> v
  | Svar (n, _) -> lookup n
  | Sfield (b, f) -> Value.field (eval_sym lookup b) f
  | Sapp (f, args) -> (
      let argv = List.map (eval_sym lookup) args in
      if not (is_pure_builtin f) then fail "eval_sym: opaque builtin %s" f
      else
        match Hashtbl.find_opt (Lazy.force pure_table) f with
        | Some fn -> fn argv
        | None -> fail "eval_sym: unknown builtin %s" f)
  | Sopaque (f, i) -> fail "eval_sym: opaque call %s#%d" f i
  | Sunop (op, a) -> concrete_unop op (eval_sym lookup a)
  | Sbinop (op, a, b) ->
      concrete_binop op (eval_sym lookup a) (eval_sym lookup b)
  | Slist l -> Value.List (List.map (eval_sym lookup) l)
  | Sstats a ->
      Value.Stats (Array.map (fun s -> Value.as_num (eval_sym lookup s)) a)
  | Sstruct (n, fields) ->
      Value.Struct (n, List.map (fun (f, s) -> (f, eval_sym lookup s)) fields)

(* Does a concrete assignment satisfy a path condition? *)
let pc_sat lookup (pc : (sym * bool) list) : bool =
  List.for_all
    (fun (t, b) ->
      match Value.truthy (eval_sym lookup t) with
      | v -> v = b
      | exception _ -> false)
    pc

(** Bounded symbolic execution of Almanac handler bodies.

    Runs a handler over symbolic inputs under either engine's scoping
    semantics — the interpreter's scope chain ({!Istore}) or the
    compiled plan's slot-indexed cells ({!Pstore}, driven by
    {!Compile.plan}) — forking on symbolic branches and accumulating
    path conditions.  Feasibility is decided without a solver (polarity
    contradiction + interval reasoning over constant comparisons), a
    sound over-approximation: a feasible path is never dropped.

    Clients: {!Equiv} (translation validation, V401/V402), {!Reach}
    (inter-handler reachability, V403/V404) and the qcheck
    symbolic-vs-concrete soundness property ({!eval_sym}/{!pc_sat}). *)

(** {2 Symbolic values} *)

type sym =
  | Con of Value.t  (** concrete *)
  | Svar of string * Ast.typ option  (** free symbolic input *)
  | Sfield of sym * string
  | Sapp of string * sym list  (** pure call, uninterpreted *)
  | Sopaque of string * int  (** result of the n-th effectful call *)
  | Sunop of Ast.unop * sym
  | Sbinop of Ast.binop * sym * sym
  | Slist of sym list  (** known spine, symbolic elements *)
  | Sstats of sym array
  | Sstruct of string * (string * sym) list

val slist : sym list -> sym
val sstats : sym array -> sym
val sym_to_string : sym -> string
val sym_equal : sym -> sym -> bool

(** {2 Path conditions} *)

(** An atom [(t, b)] asserts term [t] is truthy iff [b]. *)
val norm_atom : sym * bool -> sym * bool

val feasible : (sym * bool) list -> bool
val pc_to_string : (sym * bool) list -> string

(** {2 Stores} *)

type store

(** Interpreter-semantics store seeded with machine globals and current
    state locals (name -> initial symbolic value). *)
val mk_istore :
  globals:(string * sym) list -> locals:(string * sym) list -> store

(** Plan-semantics store over the compiled slot layout; names absent
    from the lists start unbound (the [absent] sentinel). *)
val mk_pstore :
  plan:Compile.plan ->
  globals:(string * sym) list ->
  state:Compile.vstate ->
  locals:(string * sym) list ->
  store

val peek_global : store -> string -> sym option
val peek_local : store -> string -> sym option

(** {2 Paths} *)

type starget = To_harvester | To_machine of string * sym option

type effect_ =
  | Esend of starget * sym
  | Ecall of string * sym list  (** effectful host/builtin call *)
  | Etrig of string * Ast.trigger_type * sym  (** trigger-variable write *)

val effect_to_string : effect_ -> string

type pend = Pconc of string * Ast.pos | Psym of sym * Ast.pos

type outcome =
  | Running  (** completed normally *)
  | Err of string  (** runtime failure on this path *)
  | Aviol of Ast.pos  (** an [assert] can fail here *)
  | Unknown of string  (** budget exhausted; reason names the knob *)

type path = {
  pc : (sym * bool) list;  (** newest first *)
  store : store;
  effects : effect_ list;  (** newest first *)
  pending : pend option;
  outcome : outcome;
  ret : sym option;
  n_opaque : int;
  depth : int;
  obligations : (string * sym * sym * Ast.pos) list;
      (** (builtin, container, symbolic index, site) — V404 candidates *)
  cur_pos : Ast.pos;
}

val init_path : store -> path

(** {2 Execution context} *)

type budget = { max_paths : int; max_unroll : int; max_inline : int }

val default_budget : budget

type funcs =
  | Ifuncs of (string * Ast.func_decl) list
  | Pfuncs of (string * Compile.vfunc) list

type ctx

val make_ctx :
  ?budget:budget ->
  ?host_builtins:string list ->
  funcs:funcs ->
  hooks:(string * Ast.trigger_type) list ->
  unit ->
  ctx

(** {2 Drivers} *)

val exec_stmts : ctx -> path -> Ast.stmt list -> path list

(** One event of a dispatch sequence with its side-specific frame. *)
type event_u = { eu_body : Ast.stmt list; eu_frame : frame_u }

and frame_u =
  | Fnames of (string * sym) list  (** interpreter: fresh frame *)
  | Fplan of Compile.vevent  (** plan: recorded layout + binding slot *)

(** Run the events of one dispatch in sequence; [binding] is the
    trigger/recv payload installed in each event's frame. *)
val run_events : ctx -> store -> event_u list -> binding:sym -> path list

type init_u = {
  iu_name : string;
  iu_slot : int option;  (** plan side *)
  iu_kind :
    [ `Expr of Ast.expr | `Default of Ast.typ | `Unit | `External of sym ];
}

(** Progressive initialization (globals at create, initial-state locals
    at start): each initializer sees the previous writes. *)
val run_inits_progressive :
  ctx -> store -> [ `Globals | `Locals ] -> init_u list -> path list

(** Transit-mode local initialization: initializers read the old
    state's locals; the new locals replace them wholesale at the end. *)
val run_local_inits_transit :
  ctx -> store -> new_names:string array -> init_u list -> path list

(** {2 Concrete replay} *)

(** Evaluate a term under a concrete assignment of the free [Svar]s.
    Raises {!Host.Runtime_error} on host-dependent terms. *)
val eval_sym : (string -> Value.t) -> sym -> Value.t

(** Does a concrete assignment satisfy a path condition? *)
val pc_sat : (string -> Value.t) -> (sym * bool) list -> bool

exception Error of string

exception Error_diag of Diagnostic.t

(* The position of the declaration/statement currently being checked:
   [fail] attaches it to the diagnostic it raises.  The ref is updated on
   entry to every positioned construct, so expression-level errors
   inherit their statement's span.  It is domain-local so that parallel
   sweeps (Sim.Sweep) can typecheck/deploy concurrently without racing
   on diagnostic positions. *)
let cur_pos_key = Domain.DLS.new_key (fun () -> ref Ast.no_pos)

let cur_pos () = Domain.DLS.get cur_pos_key

let at (pos : Ast.pos) = if pos <> Ast.no_pos then cur_pos () := pos

let failc code fmt =
  Printf.ksprintf
    (fun m -> raise (Error_diag (Diagnostic.error ~pos:!(cur_pos ()) ~code m)))
    fmt

(* Generic type error; the more specific T-codes use [failc]. *)
let fail fmt = failc "T001" fmt

type sigty = Any | Numeric | Ty of Ast.typ

type func_sig = { args : sigty list; ret : sigty }

let builtin_signatures =
  [ (* runtime library, List. 1 *)
    ("res", { args = []; ret = Ty Ast.Tresources });
    ("addTCAMRule", { args = [ Ty Ast.Trule ]; ret = Ty Ast.Tunit });
    ("removeTCAMRule", { args = [ Ty Ast.Tfilter ]; ret = Ty Ast.Tunit });
    ("getTCAMRule", { args = [ Ty Ast.Tfilter ]; ret = Ty Ast.Trule });
    ("exec", { args = [ Ty Ast.Tstring ]; ret = Numeric });
    ("min", { args = [ Numeric; Numeric ]; ret = Numeric });
    ("max", { args = [ Numeric; Numeric ]; ret = Numeric });
    (* list helpers *)
    ("size", { args = [ Ty Ast.Tlist ]; ret = Numeric });
    ("is_list_empty", { args = [ Ty Ast.Tlist ]; ret = Ty Ast.Tbool });
    ("append", { args = [ Ty Ast.Tlist; Any ]; ret = Ty Ast.Tlist });
    ("nth", { args = [ Ty Ast.Tlist; Numeric ]; ret = Any });
    ("contains_elem", { args = [ Ty Ast.Tlist; Any ]; ret = Ty Ast.Tbool });
    ("remove_elem", { args = [ Ty Ast.Tlist; Any ]; ret = Ty Ast.Tlist });
    ("index_of", { args = [ Ty Ast.Tlist; Any ]; ret = Numeric });
    ("set_nth", { args = [ Ty Ast.Tlist; Numeric; Any ]; ret = Ty Ast.Tlist });
    (* stats helpers *)
    ("stat", { args = [ Ty Ast.Tstats; Numeric ]; ret = Numeric });
    ("stats_size", { args = [ Ty Ast.Tstats ]; ret = Numeric });
    ("stats_sum", { args = [ Ty Ast.Tstats ]; ret = Numeric });
    (* actions *)
    ("drop_action", { args = []; ret = Ty Ast.Taction });
    ("rate_limit_action", { args = [ Numeric ]; ret = Ty Ast.Taction });
    ("qos_action", { args = [ Numeric ]; ret = Ty Ast.Taction });
    ("count_action", { args = []; ret = Ty Ast.Taction });
    ("mkRule", { args = [ Ty Ast.Tfilter; Any ]; ret = Ty Ast.Trule });
    (* misc *)
    ("now", { args = []; ret = Numeric });
    ("log", { args = [ Any ]; ret = Ty Ast.Tunit });
    ("str", { args = [ Any ]; ret = Ty Ast.Tstring });
    ("str_contains", { args = [ Ty Ast.Tstring; Ty Ast.Tstring ];
                       ret = Ty Ast.Tbool });
    ("floor", { args = [ Numeric ]; ret = Numeric });
    ("abs", { args = [ Numeric ]; ret = Numeric });
    ("log2", { args = [ Numeric ]; ret = Numeric });
    ("hash", { args = [ Any ]; ret = Numeric });
    ("self_switch", { args = []; ret = Numeric });
    (* user invariants, checked at runtime and proved by [Reach] *)
    ("assert", { args = [ Ty Ast.Tbool ]; ret = Ty Ast.Tunit }) ]

(* ------------------------------------------------------------------ *)
(* Inheritance resolution                                              *)
(* ------------------------------------------------------------------ *)

let resolve_inheritance machines =
  let by_name = Hashtbl.create 8 in
  List.iter
    (fun (m : Ast.machine) ->
      if Hashtbl.mem by_name m.mname then
        failc "T007" "duplicate machine %s" m.mname;
      Hashtbl.replace by_name m.mname m)
    machines;
  let resolved : (string, Ast.machine) Hashtbl.t = Hashtbl.create 8 in
  let rec resolve seen (m : Ast.machine) =
    match Hashtbl.find_opt resolved m.mname with
    | Some r -> r
    | None -> (
        match m.extends with
        | None ->
            Hashtbl.replace resolved m.mname m;
            m
        | Some parent_name ->
            if List.mem parent_name seen then
              failc "T008" "inheritance cycle involving machine %s" m.mname;
            let parent =
              match Hashtbl.find_opt by_name parent_name with
              | Some p -> p
              | None ->
                  failc "T008" "machine %s extends unknown machine %s" m.mname
                    parent_name
            in
            let parent = resolve (m.mname :: seen) parent in
            (* variables: no overriding or shadowing *)
            List.iter
              (fun (v : Ast.var_decl) ->
                if
                  List.exists
                    (fun (pv : Ast.var_decl) -> pv.vname = v.vname)
                    parent.mvars
                then
                  failc "T008" "machine %s shadows inherited variable %s" m.mname
                    v.vname)
              m.mvars;
            List.iter
              (fun (v : Ast.trig_decl) ->
                if
                  List.exists
                    (fun (pv : Ast.trig_decl) -> pv.tname = v.tname)
                    parent.mtrigs
                then
                  failc "T008" "machine %s shadows inherited trigger %s" m.mname
                    v.tname)
              m.mtrigs;
            (* states: child overrides same-named parent states *)
            let merged =
              { m with
                extends = None;
                places = (if m.places = [] then parent.places else m.places);
                mvars = parent.mvars @ m.mvars;
                mtrigs = parent.mtrigs @ m.mtrigs;
                (* keep parent state order (initial state is the parent's
                   first unless overridden) *)
                states =
                  List.map
                    (fun (ps : Ast.state_decl) ->
                      match
                        List.find_opt
                          (fun (cs : Ast.state_decl) -> cs.sname = ps.sname)
                          m.states
                      with
                      | Some cs -> cs
                      | None -> ps)
                    parent.states
                  @ List.filter
                      (fun (cs : Ast.state_decl) ->
                        not
                          (List.exists
                             (fun (ps : Ast.state_decl) ->
                               ps.sname = cs.sname)
                             parent.states))
                      m.states;
                mevents = parent.mevents @ m.mevents }
            in
            Hashtbl.replace resolved m.mname merged;
            merged)
  in
  List.map (resolve []) machines

(* ------------------------------------------------------------------ *)
(* Types                                                               *)
(* ------------------------------------------------------------------ *)

type ty = TAny | TAst of Ast.typ | TTrig of Ast.trigger_type

let is_numeric = function
  | TAst (Ast.Tint | Ast.Tlong | Ast.Tfloat) | TAny -> true
  | TAst _ | TTrig _ -> false

let compat a b =
  match (a, b) with
  | TAny, _ | _, TAny -> true
  | TAst x, TAst y -> x = y || (is_numeric a && is_numeric b)
  | TTrig x, TTrig y -> x = y
  | (TAst _ | TTrig _), _ -> false

let ty_name = function
  | TAny -> "any"
  | TAst t -> Ast.typ_to_string t
  | TTrig t -> Ast.trigger_type_to_string t

let sig_compat (s : sigty) (t : ty) =
  match s with
  | Any -> true
  | Numeric -> is_numeric t
  | Ty want -> compat (TAst want) t

type env = {
  vars : (string * ty) list;
  funcs : (string * func_sig) list;
  states : string list;  (** valid transit targets *)
  machine : string;
  in_util : bool;
}

let lookup_var env name = List.assoc_opt name env.vars

let resource_fields = [ "vCPU"; "RAM"; "TCAM"; "PCIe" ]

let packet_fields =
  [ ("size", TAst Ast.Tfloat); ("srcIP", TAst Ast.Tstring);
    ("dstIP", TAst Ast.Tstring); ("srcPort", TAst Ast.Tfloat);
    ("dstPort", TAst Ast.Tfloat); ("proto", TAst Ast.Tstring);
    ("syn", TAst Ast.Tbool); ("ack", TAst Ast.Tbool);
    ("fin", TAst Ast.Tbool); ("rst", TAst Ast.Tbool);
    ("payload", TAst Ast.Tstring) ]

let util_ops = [ Ast.And; Ast.Or; Ast.Eq; Ast.Le; Ast.Ge; Ast.Add; Ast.Sub;
                 Ast.Mul; Ast.Div ]

let rec check_expr env (e : Ast.expr) : ty =
  match e with
  | Ast.Bool _ -> TAst Ast.Tbool
  | Ast.Int _ -> TAst Ast.Tint
  | Ast.Float _ -> TAst Ast.Tfloat
  | Ast.String _ -> TAst Ast.Tstring
  | Ast.AnyLit -> TAst Ast.Tfilter
  | Ast.Var v -> (
      match lookup_var env v with
      | Some t -> t
      | None -> failc "T002" "machine %s: unbound variable %s" env.machine v)
  | Ast.Field (b, f) -> (
      let bt = check_expr env b in
      match bt with
      | TAst Ast.Tresources ->
          if List.mem f resource_fields then TAst Ast.Tfloat
          else
            failc "T009" "machine %s: unknown resource field %s (expected %s)"
              env.machine f
              (String.concat "/" resource_fields)
      | TAst Ast.Tpacket -> (
          match List.assoc_opt f packet_fields with
          | Some t -> t
          | None -> failc "T009" "machine %s: unknown packet field %s" env.machine f)
      | TAst Ast.Trule -> (
          match f with
          | "pattern" -> TAst Ast.Tfilter
          | "act" -> TAst Ast.Taction
          | _ -> failc "T009" "machine %s: unknown rule field %s" env.machine f)
      | TAny -> TAny
      | t ->
          failc "T009" "machine %s: %s values have no field %s" env.machine
            (ty_name t) f)
  | Ast.Call (f, args) -> (
      if env.in_util && f <> "min" && f <> "max" then
        failc "T005"
          "machine %s: util may only call min and max, not %s (§III-A f)"
          env.machine f;
      match List.assoc_opt f env.funcs with
      | None -> failc "T003" "machine %s: unknown function %s" env.machine f
      | Some fsig ->
          if List.length fsig.args <> List.length args then
            failc "T004" "machine %s: %s expects %d argument(s), got %d" env.machine
              f (List.length fsig.args) (List.length args);
          List.iter2
            (fun want arg ->
              let got = check_expr env arg in
              if not (sig_compat want got) then
                failc "T004" "machine %s: bad argument to %s: got %s" env.machine f
                  (ty_name got))
            fsig.args args;
          (match fsig.ret with
          | Any -> TAny
          | Numeric -> TAst Ast.Tfloat
          | Ty t -> TAst t))
  | Ast.Unop (Ast.Not, a) -> (
      match check_expr env a with
      | TAst Ast.Tbool -> TAst Ast.Tbool
      | TAst Ast.Tfilter -> TAst Ast.Tfilter
      | t -> fail "machine %s: 'not' applied to %s" env.machine (ty_name t))
  | Ast.Unop (Ast.Neg, a) ->
      let t = check_expr env a in
      if is_numeric t then TAst Ast.Tfloat
      else fail "machine %s: negation of %s" env.machine (ty_name t)
  | Ast.Binop (op, a, b) -> (
      if env.in_util && not (List.mem op util_ops) then
        failc "T005" "machine %s: operator %s is not allowed in util (§III-A f)"
          env.machine (Ast.binop_to_string op);
      let ta = check_expr env a and tb = check_expr env b in
      match op with
      | Ast.And | Ast.Or -> (
          match (ta, tb) with
          | TAst Ast.Tbool, TAst Ast.Tbool -> TAst Ast.Tbool
          | TAst Ast.Tfilter, TAst Ast.Tfilter -> TAst Ast.Tfilter
          | _ ->
              fail "machine %s: %s/%s operands of '%s'" env.machine
                (ty_name ta) (ty_name tb) (Ast.binop_to_string op))
      | Ast.Eq | Ast.Neq ->
          if compat ta tb then TAst Ast.Tbool
          else
            fail "machine %s: comparing %s with %s" env.machine (ty_name ta)
              (ty_name tb)
      | Ast.Le | Ast.Ge | Ast.Lt | Ast.Gt ->
          if is_numeric ta && is_numeric tb then TAst Ast.Tbool
          else
            fail "machine %s: ordering %s with %s" env.machine (ty_name ta)
              (ty_name tb)
      | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div ->
          if is_numeric ta && is_numeric tb then TAst Ast.Tfloat
          else if
            (* [+] doubles as string concatenation *)
            op = Ast.Add
            && compat ta (TAst Ast.Tstring)
            && compat tb (TAst Ast.Tstring)
          then TAst Ast.Tstring
          else
            fail "machine %s: arithmetic on %s and %s" env.machine
              (ty_name ta) (ty_name tb))
  | Ast.FilterAtom (head, arg) ->
      (match (head, arg) with
      | _, Ast.AnyLit -> ()
      | (Ast.SrcIP | Ast.DstIP), arg ->
          let t = check_expr env arg in
          if not (compat t (TAst Ast.Tstring)) then
            fail "machine %s: IP filter argument must be a string"
              env.machine
      | (Ast.SrcPort | Ast.DstPort | Ast.PortF), arg ->
          let t = check_expr env arg in
          if not (is_numeric t) then
            fail "machine %s: port filter argument must be numeric"
              env.machine
      | Ast.ProtoF, arg ->
          let t = check_expr env arg in
          if not (compat t (TAst Ast.Tstring)) then
            fail "machine %s: proto filter argument must be a string"
              env.machine);
      TAst Ast.Tfilter
  | Ast.StructLit (name, fields) -> (
      let get f = List.assoc_opt f fields in
      let check_field f want =
        match get f with
        | None -> fail "machine %s: %s literal misses field %s" env.machine name f
        | Some e ->
            let t = check_expr env e in
            if not (sig_compat want t) then
              fail "machine %s: field %s of %s has type %s" env.machine f
                name (ty_name t)
      in
      let only allowed =
        List.iter
          (fun (f, _) ->
            if not (List.mem f allowed) then
              failc "T009" "machine %s: %s literal has unknown field %s" env.machine
                name f)
          fields
      in
      match name with
      | "Poll" ->
          only [ "ival"; "what" ];
          check_field "ival" Numeric;
          check_field "what" (Ty Ast.Tfilter);
          TTrig Ast.Poll
      | "Probe" ->
          only [ "ival"; "what" ];
          check_field "ival" Numeric;
          check_field "what" (Ty Ast.Tfilter);
          TTrig Ast.Probe
      | "Time" ->
          only [ "ival" ];
          check_field "ival" Numeric;
          TTrig Ast.Time
      | "Rule" ->
          only [ "pattern"; "act" ];
          check_field "pattern" (Ty Ast.Tfilter);
          check_field "act" (Ty Ast.Taction);
          TAst Ast.Trule
      | _ -> failc "T009" "machine %s: unknown struct %s" env.machine name)
  | Ast.ListLit es ->
      List.iter (fun e -> ignore (check_expr env e)) es;
      TAst Ast.Tlist

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

let rec check_stmt env ~ret (s : Ast.stmt) : env =
  at s.Ast.sloc;
  match s.Ast.sk with
  | Ast.Decl (t, n, init) ->
      (match init with
      | None -> ()
      | Some e ->
          let et = check_expr env e in
          if not (compat (TAst t) et) then
            fail "machine %s: initializing %s %s with %s" env.machine
              (Ast.typ_to_string t) n (ty_name et));
      { env with vars = (n, TAst t) :: env.vars }
  | Ast.Assign (n, e) -> (
      match lookup_var env n with
      | None -> failc "T002" "machine %s: assignment to unbound variable %s" env.machine n
      | Some (TTrig tt) -> (
          let et = check_expr env e in
          match et with
          | TTrig tt' when tt = tt' -> env
          | t when is_numeric t -> env  (* shorthand: adjust the period *)
          | t ->
              fail "machine %s: assigning %s to trigger variable %s"
                env.machine (ty_name t) n)
      | Some t ->
          let et = check_expr env e in
          if not (compat t et) then
            fail "machine %s: assigning %s to %s variable %s" env.machine
              (ty_name et) (ty_name t) n;
          env)
  | Ast.Transit e ->
      (match e with
      | Ast.Var s | Ast.String s ->
          if not (List.mem s env.states) then
            failc "T006" "machine %s: transit to unknown state %s" env.machine s
      | _ -> failc "T006" "machine %s: transit target must be a state name" env.machine);
      env
  | Ast.If (c, t, f) ->
      let ct = check_expr env c in
      if not (compat ct (TAst Ast.Tbool)) then
        fail "machine %s: if condition must be boolean" env.machine;
      ignore (check_stmts env ~ret t);
      ignore (check_stmts env ~ret f);
      env
  | Ast.While (c, b) ->
      if env.in_util then
        failc "T005" "machine %s: while is not allowed in util (§III-A f)" env.machine;
      let ct = check_expr env c in
      if not (compat ct (TAst Ast.Tbool)) then
        fail "machine %s: while condition must be boolean" env.machine;
      ignore (check_stmts env ~ret b);
      env
  | Ast.Return None ->
      (match ret with
      | Some t when not (compat t (TAst Ast.Tunit)) ->
          fail "machine %s: return without a value" env.machine
      | Some _ | None -> ());
      env
  | Ast.Return (Some e) ->
      let et = check_expr env e in
      (match ret with
      | Some want when not (compat want et) ->
          fail "machine %s: return type %s, expected %s" env.machine
            (ty_name et) (ty_name want)
      | Some _ | None -> ());
      env
  | Ast.Send (e, dest) ->
      if env.in_util then
        failc "T005" "machine %s: send is not allowed in util" env.machine;
      ignore (check_expr env e);
      (match dest with
      | Ast.Harvester | Ast.Machine (_, None) -> ()
      | Ast.Machine (_, Some d) -> ignore (check_expr env d));
      env
  | Ast.ExprStmt e ->
      ignore (check_expr env e);
      env

and check_stmts env ~ret stmts =
  List.fold_left (fun env s -> check_stmt env ~ret s) env stmts

(* util restriction: only if/return statements *)
let rec check_util_stmts env stmts =
  List.iter
    (fun (s : Ast.stmt) ->
      at s.Ast.sloc;
      match s.Ast.sk with
      | Ast.If (c, t, f) ->
          let ct = check_expr env c in
          if not (compat ct (TAst Ast.Tbool)) then
            fail "machine %s: util condition must be boolean" env.machine;
          check_util_stmts env t;
          check_util_stmts env f
      | Ast.Return (Some e) ->
          let t = check_expr env e in
          if not (is_numeric t) then
            failc "T005" "machine %s: util must return a number" env.machine
      | Ast.Return None -> failc "T005" "machine %s: util must return a value" env.machine
      | Ast.Decl _ | Ast.Assign _ | Ast.Transit _ | Ast.While _ | Ast.Send _
      | Ast.ExprStmt _ ->
          failc "T005"
            "machine %s: util may contain only if-then-else and return \
             (§III-A f)"
            env.machine)
    stmts

(* ------------------------------------------------------------------ *)
(* Machines and programs                                               *)
(* ------------------------------------------------------------------ *)

let trigger_binding env (m : Ast.machine) (trigger : Ast.trigger) =
  match trigger with
  | Ast.On_enter | Ast.On_exit | Ast.On_realloc -> env
  | Ast.On_trigger_var (y, bind) -> (
      match List.find_opt (fun (t : Ast.trig_decl) -> t.tname = y) m.mtrigs with
      | None -> fail "machine %s: event on unknown trigger variable %s" m.mname y
      | Some t -> (
          match bind with
          | None -> env
          | Some x ->
              let ty =
                match t.ttyp with
                | Ast.Poll -> TAst Ast.Tstats
                | Ast.Probe -> TAst Ast.Tpacket
                | Ast.Time -> TAst Ast.Tfloat
              in
              { env with vars = (x, ty) :: env.vars }))
  | Ast.On_recv (t, n, _) -> { env with vars = (n, TAst t) :: env.vars }

let check_event env m (ev : Ast.event) =
  at ev.evloc;
  let env = trigger_binding env m ev.trigger in
  ignore (check_stmts env ~ret:None ev.body)

let check_machine funcs (m : Ast.machine) =
  cur_pos () := m.mloc;
  if m.states = [] then failc "T010" "machine %s has no states" m.mname;
  let state_names = List.map (fun (s : Ast.state_decl) -> s.sname) m.states in
  let dup l =
    let rec go = function
      | [] -> None
      | x :: rest -> if List.mem x rest then Some x else go rest
    in
    go l
  in
  (match dup state_names with
  | Some s -> failc "T007" "machine %s: duplicate state %s" m.mname s
  | None -> ());
  let var_names =
    List.map (fun (v : Ast.var_decl) -> v.vname) m.mvars
    @ List.map (fun (t : Ast.trig_decl) -> t.tname) m.mtrigs
  in
  (match dup var_names with
  | Some v -> failc "T007" "machine %s: duplicate variable %s" m.mname v
  | None -> ());
  let base_vars =
    List.map (fun (v : Ast.var_decl) -> (v.vname, TAst v.vtyp)) m.mvars
    @ List.map (fun (t : Ast.trig_decl) -> (t.tname, TTrig t.ttyp)) m.mtrigs
  in
  let env =
    { vars = base_vars; funcs; states = state_names; machine = m.mname;
      in_util = false }
  in
  (* variable initializers *)
  List.iter
    (fun (v : Ast.var_decl) ->
      at v.vloc;
      match v.vinit with
      | None -> ()
      | Some e ->
          let t = check_expr env e in
          if not (compat (TAst v.vtyp) t) then
            fail "machine %s: initializer of %s has type %s" m.mname v.vname
              (ty_name t))
    m.mvars;
  List.iter
    (fun (t : Ast.trig_decl) ->
      at t.tloc;
      match t.tinit with
      | None -> ()
      | Some e -> (
          match check_expr env e with
          | TTrig tt when tt = t.ttyp -> ()
          | ty ->
              fail "machine %s: trigger %s initialized with %s" m.mname
                t.tname (ty_name ty)))
    m.mtrigs;
  (* placement directives *)
  List.iter
    (fun (p : Ast.place_decl) ->
      at p.ploc;
      match p.pconstraint with
      | Ast.Anywhere -> ()
      | Ast.At_nodes es -> List.iter (fun e -> ignore (check_expr env e)) es
      | Ast.On_range { pfilter; rbound; _ } ->
          (match pfilter with
          | None -> ()
          | Some f ->
              let t = check_expr env f in
              if not (compat t (TAst Ast.Tfilter)) then
                fail "machine %s: placement filter must have type filter"
                  m.mname);
          let t = check_expr env rbound in
          if not (is_numeric t) then
            fail "machine %s: range bound must be numeric" m.mname)
    m.places;
  (* states *)
  List.iter
    (fun (s : Ast.state_decl) ->
      at s.stloc;
      let senv =
        { env with
          vars =
            List.map
              (fun (v : Ast.var_decl) ->
                if v.is_external then
                  fail "machine %s: external variable in state %s" m.mname
                    s.sname;
                (v.vname, TAst v.vtyp))
              s.slocals
            @ env.vars }
      in
      List.iter
        (fun (v : Ast.var_decl) ->
          at v.vloc;
          match v.vinit with
          | None -> ()
          | Some e ->
              let t = check_expr senv e in
              if not (compat (TAst v.vtyp) t) then
                fail "machine %s: state %s: initializer of %s has type %s"
                  m.mname s.sname v.vname (ty_name t))
        s.slocals;
      (match s.sutil with
      | None -> ()
      | Some u ->
          at u.uloc;
          let uenv =
            { senv with
              vars = (u.uparam, TAst Ast.Tresources) :: senv.vars;
              in_util = true }
          in
          check_util_stmts uenv u.ubody);
      List.iter (check_event senv m) s.sevents)
    m.states;
  (* machine-level events *)
  List.iter (check_event env m) m.mevents

let check_func funcs (f : Ast.func_decl) =
  cur_pos () := f.floc;
  let env =
    { vars = List.map (fun (t, n) -> (n, TAst t)) f.fparams;
      funcs; states = []; machine = Printf.sprintf "<function %s>" f.fname;
      in_util = false }
  in
  ignore (check_stmts env ~ret:(Some (TAst f.fret)) f.fbody)

let signatures ?(extra = []) (p : Ast.program) =
  let user_sigs =
    List.map
      (fun (f : Ast.func_decl) ->
        ( f.fname,
          { args = List.map (fun (t, _) -> Ty t) f.fparams; ret = Ty f.fret }
        ))
      p.funcs
  in
  user_sigs @ extra @ builtin_signatures

let check ?extra (p : Ast.program) =
  cur_pos () := Ast.no_pos;
  try
    let machines = resolve_inheritance p.machines in
    let funcs = signatures ?extra p in
    List.iter (check_func funcs) p.funcs;
    List.iter (check_machine funcs) machines;
    { p with machines }
  with Error_diag d -> raise (Error d.Diagnostic.message)

let check_result ?extra p =
  match check ?extra p with
  | p -> Ok p
  | exception Error m -> Result.Error m

(* Multi-error variant: one diagnostic per failing function/machine (the
   checker still stops at the first error within each). *)
let check_diags ?extra (p : Ast.program) =
  cur_pos () := Ast.no_pos;
  match resolve_inheritance p.machines with
  | exception Error_diag d -> Stdlib.Error [ d ]
  | machines ->
      let funcs = signatures ?extra p in
      let errs = ref [] in
      let guard f x =
        try f x with Error_diag d -> errs := d :: !errs
      in
      List.iter (guard (check_func funcs)) p.funcs;
      List.iter (guard (check_machine funcs)) machines;
      if !errs = [] then Ok { p with machines }
      else Stdlib.Error (Diagnostic.sort (List.rev !errs))

(** Static checking of Almanac programs.

    Responsibilities:
    - resolve single inheritance ([extends]): child states override parent
      states; variables can be neither overridden nor shadowed (§III-A a);
    - scope and type checking of all expressions and statements;
    - enforcement of the [util] syntactic restrictions (§III-A f): only
      if-then-else and return; only the operators and, or, ==, <=, >=, +,
      -, *, /; no calls except [min] and [max];
    - validation of [transit] targets and trigger references.

    A successful check returns the program with inheritance flattened —
    the form consumed by the analyses and the interpreter. *)

exception Error of string

exception Error_diag of Diagnostic.t
(** Structured variant of {!Error} with a stable [T0xx] code and the
    position of the failing declaration or statement; raised by the
    internals, converted by {!check}/{!check_result}. *)

(** Argument/return types for builtin and auxiliary function signatures. *)
type sigty =
  | Any
  | Numeric  (** int / long / float *)
  | Ty of Ast.typ

type func_sig = { args : sigty list; ret : sigty }

(** The soil runtime library (List. 1) plus list/stats helpers. *)
val builtin_signatures : (string * func_sig) list

(** [check ?extra program] type-checks and returns the program with
    machine inheritance resolved.  [extra] adds signatures for
    host-provided (OCaml) auxiliary functions. *)
val check :
  ?extra:(string * func_sig) list -> Ast.program -> Ast.program

(** Like {!check} but returning the error message. *)
val check_result :
  ?extra:(string * func_sig) list ->
  Ast.program ->
  (Ast.program, string) result

(** Like {!check} but accumulating positioned diagnostics — one per
    failing function/machine — instead of stopping at the first. *)
val check_diags :
  ?extra:(string * func_sig) list ->
  Ast.program ->
  (Ast.program, Diagnostic.t list) result

(** Flatten inheritance only (no type checking) — exposed for tests. *)
val resolve_inheritance : Ast.machine list -> Ast.machine list

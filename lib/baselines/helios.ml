module Engine = Farm_sim.Engine
module Fabric = Farm_net.Fabric
module Switch_model = Farm_net.Switch_model

type config = { loop_period : float; collector_latency : float }

let default_config = { loop_period = 77e-3; collector_latency = 250e-6 }

type t = {
  mutable timer : Engine.timer option;
  reported : (int * int, unit) Hashtbl.t;
  mutable detections : (float * int * int) list;
  mutable rx_bytes : float;
}

let deploy ?(config = default_config) engine fabric ~hh_threshold =
  let t =
    { timer = None; reported = Hashtbl.create 64;
      detections = []; rx_bytes = 0. }
  in
  let switches = Fabric.switch_models fabric in
  (* previous full-loop counter snapshot per (switch, port) *)
  let last : (int * int, float * float) Hashtbl.t = Hashtbl.create 256 in
  let timer =
    Engine.every engine ~period:config.loop_period (fun engine ->
        let now = Engine.now engine in
        List.iter
          (fun sw ->
            let node = Switch_model.id sw in
            for port = 0 to Switch_model.port_count sw - 1 do
              let bytes = Switch_model.port_bytes sw ~time:now ~port in
              t.rx_bytes <- t.rx_bytes +. 28.;
              (match Hashtbl.find_opt last (node, port) with
              | Some (t0, b0) when now > t0 ->
                  let rate = (bytes -. b0) /. (now -. t0) in
                  if
                    rate >= hh_threshold
                    && not (Hashtbl.mem t.reported (node, port))
                  then begin
                    Hashtbl.replace t.reported (node, port) ();
                    t.detections <-
                      (now +. config.collector_latency, node, port)
                      :: t.detections
                  end
              | Some _ | None -> ());
              Hashtbl.replace last (node, port) (now, bytes)
            done)
          switches)
  in
  t.timer <- Some timer;
  t

let detections t = List.rev t.detections

let first_detection_after t time =
  List.find_opt (fun (d, _, _) -> d >= time) (detections t)

let rx_bytes t = t.rx_bytes

let shutdown t = match t.timer with Some tm -> Engine.cancel tm | None -> ()

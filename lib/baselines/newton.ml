module Engine = Farm_sim.Engine
module Fabric = Farm_net.Fabric
module Switch_model = Farm_net.Switch_model

type config = {
  window : float;
  batch_process_time : float;
  record_bytes : float;
  aggregation_factor : float;
  collector_latency : float;
}

let default_config =
  { window = 3.; batch_process_time = 0.4; record_bytes = 64.;
    aggregation_factor = 0.75; collector_latency = 250e-6 }

type t = {
  mutable threshold : float;
  mutable timer : Engine.timer option;
  reported : (int, unit) Hashtbl.t;  (* host-facing port identity *)
  mutable detections : (float * int) list;
  mutable rx_bytes : float;
}

(* Unlike Sonata, the reducer keys streams by a network-wide identity (we
   use the egress-port index as the stand-in for a flow group key) and the
   central job sums the per-switch contributions before thresholding. *)
let deploy ?(config = default_config) engine fabric ~hh_threshold =
  let t =
    { threshold = hh_threshold; timer = None;
      reported = Hashtbl.create 32; detections = []; rx_bytes = 0. }
  in
  let switches = Fabric.switch_models fabric in
  let prev : (int * int, float) Hashtbl.t = Hashtbl.create 256 in
  let timer =
    Engine.every engine ~period:config.window (fun engine ->
        let now = Engine.now engine in
        (* merged per-key byte deltas across every switch *)
        let merged : (int, float) Hashtbl.t = Hashtbl.create 32 in
        List.iter
          (fun sw ->
            let node = Switch_model.id sw in
            for port = 0 to Switch_model.port_count sw - 1 do
              let total = Switch_model.port_bytes sw ~time:now ~port in
              let before =
                Option.value (Hashtbl.find_opt prev (node, port)) ~default:0.
              in
              Hashtbl.replace prev (node, port) total;
              let delta = total -. before in
              if delta > 0. then begin
                (* streaming records towards the central job, reduced by
                   the in-network aggregation factor *)
                t.rx_bytes <-
                  t.rx_bytes
                  +. (config.record_bytes
                     *. (1. -. config.aggregation_factor));
                Hashtbl.replace merged port
                  (delta
                  +. Option.value (Hashtbl.find_opt merged port) ~default:0.)
              end
            done)
          switches;
        (* central evaluation after the batch delay *)
        let snapshot =
          Hashtbl.fold (fun k v acc -> (k, v) :: acc) merged []
          |> List.sort (fun (a, _) (b, _) -> compare a b)
        in
        Engine.schedule engine
          ~delay:(config.collector_latency +. config.batch_process_time)
          (fun engine ->
            List.iter
              (fun (key, bytes) ->
                let rate = bytes /. config.window in
                if rate >= t.threshold && not (Hashtbl.mem t.reported key)
                then begin
                  Hashtbl.replace t.reported key ();
                  t.detections <- (Engine.now engine, key) :: t.detections
                end)
              snapshot))
  in
  t.timer <- Some timer;
  t

let update_threshold t v = t.threshold <- v

let detections t = List.rev t.detections

let first_detection_after t time =
  List.find_opt (fun (d, _) -> d >= time) (detections t)

let rx_bytes t = t.rx_bytes

let shutdown t = match t.timer with Some tm -> Engine.cancel tm | None -> ()

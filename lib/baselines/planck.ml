module Engine = Farm_sim.Engine
module Fabric = Farm_net.Fabric
module Switch_model = Farm_net.Switch_model

type config = {
  sample_period : float;
  min_samples : int;
  process_latency : float;
  mirror_latency : float;
}

let default_config =
  { sample_period = 1e-3;  (* mirror port drains a sample per ms *)
    min_samples = 3;
    process_latency = 0.5e-3;
    mirror_latency = 100e-6 }

type t = {
  mutable timers : Engine.timer list;
  reported : (int * int, unit) Hashtbl.t;
  mutable detections : (float * int * int) list;
  mutable rx_bytes : float;
}

let deploy ?(config = default_config) engine fabric ~hh_threshold =
  let t =
    { timers = []; reported = Hashtbl.create 64;
      detections = []; rx_bytes = 0. }
  in
  let rng = Farm_sim.Rng.split (Engine.rng engine) in
  let timers =
    List.map
      (fun sw ->
        let node = Switch_model.id sw in
        (* sliding sample counts per egress port *)
        let counts = Hashtbl.create 16 in
        Engine.every engine ~period:config.sample_period (fun engine ->
            match Switch_model.sample_packet sw rng with
            | None -> ()
            | Some pkt ->
                t.rx_bytes <- t.rx_bytes +. float_of_int pkt.size;
                (* estimate: a port whose flow yields [min_samples]
                   consecutive-ish samples is carrying >= its fair share
                   scaled by the total rate; combined with the rate check
                   this is Planck's windowed estimation *)
                let total = Switch_model.total_rate sw in
                if total >= hh_threshold then begin
                  let key = Hashtbl.hash pkt.tuple land 0xFF in
                  let c =
                    1 + Option.value (Hashtbl.find_opt counts key) ~default:0
                  in
                  Hashtbl.replace counts key c;
                  if c >= config.min_samples
                     && not (Hashtbl.mem t.reported (node, key))
                  then begin
                    (* the flow's estimated rate: its sample share *)
                    let est =
                      total *. float_of_int c
                      /. float_of_int (max 1 (Hashtbl.length counts * c))
                    in
                    if est >= hh_threshold then begin
                      Hashtbl.replace t.reported (node, key) ();
                      Engine.schedule engine
                        ~delay:
                          (config.mirror_latency +. config.process_latency)
                        (fun engine ->
                          t.detections <-
                            (Engine.now engine, node, key) :: t.detections)
                    end
                  end
                end))
      (Fabric.switch_models fabric)
  in
  t.timers <- timers;
  t

let detections t = List.rev t.detections

let first_detection_after t time =
  List.find_opt (fun (d, _, _) -> d >= time) (detections t)

let rx_bytes t = t.rx_bytes

let shutdown t = List.iter Engine.cancel t.timers

module Engine = Farm_sim.Engine
module Fabric = Farm_net.Fabric
module Switch_model = Farm_net.Switch_model

type config = {
  window : float;
  batch_process_time : float;
  aggregation_factor : float;
  record_bytes : float;
  collector_latency : float;
  collector_process_cost : float;
}

let default_config =
  { window = 3.;  (* streaming batch interval *)
    batch_process_time = 0.4;
    aggregation_factor = 0.75;  (* best achievable per §VI-B b *)
    record_bytes = 64.;
    collector_latency = 250e-6;
    collector_process_cost = 2e-6 }

type t = {
  collector : Collector.t;
  mutable timers : Engine.timer list;
  reported : (int * int, unit) Hashtbl.t;
  mutable detections : (float * int * int) list;
  hh_threshold : float;
}

let deploy ?(config = default_config) engine fabric ~hh_threshold =
  let collector =
    Collector.create engine ~latency:config.collector_latency
      ~process_cost:config.collector_process_cost ~hh_threshold
  in
  let t =
    { collector; timers = []; reported = Hashtbl.create 64;
      detections = []; hh_threshold }
  in
  let timers =
    List.map
      (fun sw ->
        let node = Switch_model.id sw in
        let window_start =
          Array.make (Switch_model.port_count sw) 0.
        in
        let last_total = ref 0. in
        Engine.every engine ~period:config.window (fun engine ->
            let now = Engine.now engine in
            (* The data plane reduces the packet stream by the aggregation
               factor; the remaining per-packet records stream to Spark.
               Packets ~ bytes/1kB. *)
            let total =
              let acc = ref 0. in
              for port = 0 to Switch_model.port_count sw - 1 do
                acc := !acc +. Switch_model.port_bytes sw ~time:now ~port
              done;
              !acc
            in
            let window_bytes = total -. !last_total in
            last_total := total;
            let packets = window_bytes /. 1000. in
            let records =
              int_of_float
                (ceil (packets *. (1. -. config.aggregation_factor)))
            in
            Collector.push_opaque collector
              ~bytes:(float_of_int records *. config.record_bytes)
              ~records;
            (* the batch is evaluated after the processing delay *)
            let snapshot =
              Array.init (Switch_model.port_count sw) (fun port ->
                  Switch_model.port_bytes sw ~time:now ~port)
            in
            let start = Array.copy window_start in
            Array.blit snapshot 0 window_start 0 (Array.length snapshot);
            Engine.schedule engine
              ~delay:(config.collector_latency +. config.batch_process_time)
              (fun engine ->
                Array.iteri
                  (fun port bytes ->
                    let rate = (bytes -. start.(port)) /. config.window in
                    if
                      rate >= t.hh_threshold
                      && not (Hashtbl.mem t.reported (node, port))
                    then begin
                      Hashtbl.replace t.reported (node, port) ();
                      t.detections <-
                        (Engine.now engine, node, port) :: t.detections
                    end)
                  snapshot)))
      (Fabric.switch_models fabric)
  in
  t.timers <- timers;
  t

let detections t = List.rev t.detections

let first_detection_after t time =
  List.find_opt (fun (d, _, _) -> d >= time) (detections t)

let rx_bytes t = Collector.rx_bytes t.collector

let shutdown t = List.iter Engine.cancel t.timers

(** FARM — comprehensive data center network monitoring and management.

    This umbrella module re-exports the whole system and provides a
    high-level API ({!World}) that sets up a simulated data center and
    deploys M&M tasks in a few calls.  See the [examples/] directory for
    runnable walkthroughs.

    Layers (bottom-up):
    - {!Optim}: LP/MILP substrate (simplex, branch & bound);
    - {!Sim}: deterministic discrete-event simulation;
    - {!Net}: topology, switches (ASIC/TCAM/counters), routing, traffic;
    - {!Almanac}: the DSL — parser, type checker, static analyses,
      interpreter;
    - {!Placement}: the §IV optimization model, MILP and Alg. 1 heuristic;
    - {!Runtime}: soils, seeds, harvesters, the seeder;
    - {!Baselines}: sFlow / Sonata / Planck / Helios comparators;
    - {!Tasks}: the Table I use-case catalog. *)

module Optim = struct
  module Lin_expr = Farm_optim.Lin_expr
  module Simplex = Farm_optim.Simplex
  module Milp = Farm_optim.Milp
end

module Sim = struct
  module Rng = Farm_sim.Rng
  module Heap = Farm_sim.Heap
  module Engine = Farm_sim.Engine
  module Metrics = Farm_sim.Metrics
  module Trace = Farm_sim.Trace
  module Sweep = Farm_sim.Sweep
end

module Net = struct
  module Ipaddr = Farm_net.Ipaddr
  module Flow = Farm_net.Flow
  module Filter = Farm_net.Filter
  module Tcam = Farm_net.Tcam
  module Topology = Farm_net.Topology
  module Routing = Farm_net.Routing
  module Switch_model = Farm_net.Switch_model
  module Fabric = Farm_net.Fabric
  module Traffic = Farm_net.Traffic
end

module Almanac = struct
  module Ast = Farm_almanac.Ast
  module Lexer = Farm_almanac.Lexer
  module Parser = Farm_almanac.Parser
  module Pretty = Farm_almanac.Pretty
  module Typecheck = Farm_almanac.Typecheck
  module Diagnostic = Farm_almanac.Diagnostic
  module Lint = Farm_almanac.Lint
  module Bounds = Farm_almanac.Bounds
  module Value = Farm_almanac.Value
  module Analysis = Farm_almanac.Analysis
  module Host = Farm_almanac.Host
  module Builtins = Farm_almanac.Builtins
  module Interp = Farm_almanac.Interp
  module Compile = Farm_almanac.Compile
  module Exec = Farm_almanac.Exec
  module Symexec = Farm_almanac.Symexec
  module Equiv = Farm_almanac.Equiv
  module Reach = Farm_almanac.Reach
  module Engine = Farm_almanac.Engine
  module Xml = Farm_almanac.Xml
  module Machine_xml = Farm_almanac.Machine_xml
end

module Placement = struct
  module Model = Farm_placement.Model
  module Heuristic = Farm_placement.Heuristic
  module Milp_formulation = Farm_placement.Milp_formulation
  module Conflict = Farm_placement.Conflict
end

module Runtime = struct
  module Cpu_model = Farm_runtime.Cpu_model
  module Ipc = Farm_runtime.Ipc
  module Soil = Farm_runtime.Soil
  module Seed_exec = Farm_runtime.Seed_exec
  module Harvester = Farm_runtime.Harvester
  module Seeder = Farm_runtime.Seeder
end

module Baselines = struct
  module Collector = Farm_baselines.Collector
  module Sflow = Farm_baselines.Sflow
  module Sonata = Farm_baselines.Sonata
  module Planck = Farm_baselines.Planck
  module Helios = Farm_baselines.Helios
  module Newton = Farm_baselines.Newton
end

module Sketches = struct
  module Count_min = Farm_sketches.Count_min
  module Hyperloglog = Farm_sketches.Hyperloglog
end

module Tasks = struct
  module Catalog = Farm_tasks.Catalog
  module Task_common = Farm_tasks.Task_common
  module Hh = Farm_tasks.Hh
  module Ddos = Farm_tasks.Ddos
  module Tcp_tasks = Farm_tasks.Tcp_tasks
  module Scan_tasks = Farm_tasks.Scan_tasks
  module Infra_tasks = Farm_tasks.Infra_tasks
  module Sketch_tasks = Farm_tasks.Sketch_tasks
end

(** A ready-to-use simulated data center: engine + fabric + seeder. *)
module World = struct
  type t = {
    engine : Farm_sim.Engine.t;
    topology : Farm_net.Topology.t;
    fabric : Farm_net.Fabric.t;
    seeder : Farm_runtime.Seeder.t;
    rng : Farm_sim.Rng.t;
  }

  (** [create ()] builds a spine-leaf fabric (defaults: 2 spines, 4 leaves,
      2 hosts per leaf) with a soil on every switch. *)
  let create ?(seed = 42) ?(spines = 2) ?(leaves = 4) ?(hosts_per_leaf = 2)
      ?seeder_config () =
    let engine = Farm_sim.Engine.create ~seed () in
    let topology = Farm_net.Topology.spine_leaf ~spines ~leaves ~hosts_per_leaf in
    let fabric = Farm_net.Fabric.create topology in
    let seeder =
      Farm_runtime.Seeder.create ?config:seeder_config engine fabric
    in
    let rng = Farm_sim.Rng.split (Farm_sim.Engine.rng engine) in
    { engine; topology; fabric; seeder; rng }

  (** Deploy a catalog task by name (see {!Tasks.Catalog.names}). *)
  let deploy_catalog_task t name =
    Farm_runtime.Seeder.deploy t.seeder
      (Farm_tasks.Task_common.to_task_spec (Farm_tasks.Catalog.find name))

  (** Deploy Almanac source with default settings. *)
  let deploy_source t ~name source =
    Farm_runtime.Seeder.deploy t.seeder
      (Farm_runtime.Seeder.simple_spec ~name ~source)

  (** Generate steady background traffic. *)
  let background_traffic ?(flows = 100) t =
    Farm_net.Traffic.background t.engine t.fabric t.rng
      { Farm_net.Traffic.default_profile with concurrent_flows = flows }

  (** Advance the simulation. *)
  let run ?until t = Farm_sim.Engine.run ?until t.engine

  let now t = Farm_sim.Engine.now t.engine
end

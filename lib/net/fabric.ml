type flow_record = {
  tuple : Flow.five_tuple;
  rate : float;
  flags : Flow.tcp_flags;
  payload : string;
  pinned : bool;  (* explicit path: never rerouted, dropped if severed *)
  mutable path : Routing.path;
  mutable switches : int list;
}

type t = {
  topo : Topology.t;
  switches : (int, Switch_model.t) Hashtbl.t;
  mutable next_flow_id : int;
  active : (int, flow_record) Hashtbl.t;
  host_prefixes : Ipaddr.Prefix.t array;
  mutable rerouted : int;
  mutable dropped : int;
}

let create ?caps topo =
  let switches = Hashtbl.create 64 in
  List.iter
    (fun (n : Topology.node) ->
      let ports = Topology.port_count topo n.id in
      Hashtbl.replace switches n.id
        (Switch_model.create ?caps ~id:n.id ~ports ()))
    (Topology.switches topo);
  let host_prefixes =
    Topology.hosts topo
    |> List.filter_map (fun (n : Topology.node) -> n.prefix)
    |> Array.of_list
  in
  { topo; switches; next_flow_id = 0; active = Hashtbl.create 256;
    host_prefixes; rerouted = 0; dropped = 0 }

let topology t = t.topo

let switch t id =
  match Hashtbl.find_opt t.switches id with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "Fabric.switch: %d is not a switch" id)

let switch_models t =
  Hashtbl.fold (fun _ s acc -> s :: acc) t.switches []
  |> List.sort (fun a b -> Int.compare (Switch_model.id a) (Switch_model.id b))

(* Egress port of [sw] towards the next node of the path. *)
let rec egress_of topo sw = function
  | a :: (b :: _ as rest) ->
      if a = sw then Topology.port_to topo sw b else egress_of topo sw rest
  | [ _ ] | [] -> 0

let install t ~time ~flow_id (r : flow_record) =
  List.iter
    (fun sw ->
      let egress = egress_of t.topo sw r.path in
      Switch_model.add_flow (switch t sw) ~time ~flow_id ~tuple:r.tuple
        ~rate:r.rate ~flags:r.flags ~payload:r.payload ~egress ())
    r.switches

let uninstall t ~time ~flow_id (r : flow_record) =
  List.iter
    (fun sw -> Switch_model.remove_flow (switch t sw) ~time ~flow_id)
    r.switches

let start_flow t ~time ~tuple ~rate ?(flags = Flow.no_flags) ?(payload = "")
    ?path () =
  let pinned = Option.is_some path in
  let path =
    match path with Some p -> Some p | None -> Routing.route_flow t.topo tuple
  in
  match path with
  | None -> None
  | Some path ->
      let switches = Routing.path_switches t.topo path in
      let flow_id = t.next_flow_id in
      t.next_flow_id <- t.next_flow_id + 1;
      let r = { tuple; rate; flags; payload; pinned; path; switches } in
      install t ~time ~flow_id r;
      Hashtbl.replace t.active flow_id r;
      Some flow_id

let stop_flow t ~time flow_id =
  match Hashtbl.find_opt t.active flow_id with
  | None -> ()
  | Some r ->
      uninstall t ~time ~flow_id r;
      Hashtbl.remove t.active flow_id

let flow_path t flow_id =
  Option.map (fun r -> r.path) (Hashtbl.find_opt t.active flow_id)

let active_flow_count t = Hashtbl.length t.active

let path_uses_link path a b =
  let rec go = function
    | x :: (y :: _ as rest) ->
        (x = a && y = b) || (x = b && y = a) || go rest
    | _ -> false
  in
  go path

let sorted_active t =
  Hashtbl.fold (fun id r acc -> (id, r) :: acc) t.active []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let reroute_flow t ~time flow_id r =
  match Routing.route_flow t.topo r.tuple with
  | Some path when path = r.path -> ()
  | Some path ->
      uninstall t ~time ~flow_id r;
      r.path <- path;
      r.switches <- Routing.path_switches t.topo path;
      install t ~time ~flow_id r;
      t.rerouted <- t.rerouted + 1
  | None ->
      uninstall t ~time ~flow_id r;
      Hashtbl.remove t.active flow_id;
      t.dropped <- t.dropped + 1

let set_link_state t ~time a b ~up =
  if Topology.link_is_up t.topo a b <> up then begin
    Topology.set_link_state t.topo a b ~up;
    if not up then
      (* move flows off the dead link; pinned flows are simply severed *)
      List.iter
        (fun (flow_id, r) ->
          if path_uses_link r.path a b then
            if r.pinned then begin
              uninstall t ~time ~flow_id r;
              Hashtbl.remove t.active flow_id;
              t.dropped <- t.dropped + 1
            end
            else reroute_flow t ~time flow_id r)
        (sorted_active t)
    else
      (* re-run ECMP so flows spread back over the restored link *)
      List.iter
        (fun (flow_id, r) -> if not r.pinned then reroute_flow t ~time flow_id r)
        (sorted_active t)
  end

let link_is_up t a b = Topology.link_is_up t.topo a b
let rerouted_flows t = t.rerouted
let dropped_flows t = t.dropped

let reset t ~time =
  let ids =
    Hashtbl.fold (fun id _ acc -> id :: acc) t.active []
    |> List.sort Int.compare
  in
  List.iter (stop_flow t ~time) ids

let random_host_addr t rng =
  if Array.length t.host_prefixes = 0 then
    invalid_arg "Fabric.random_host_addr: topology has no hosts";
  let p = Farm_sim.Rng.choose rng t.host_prefixes in
  let base = Ipaddr.to_int (Ipaddr.Prefix.address p) in
  let host_bits = 32 - Ipaddr.Prefix.length p in
  let off =
    if host_bits = 0 then 0
    else 1 + Farm_sim.Rng.int rng (Stdlib.max 1 ((1 lsl host_bits) - 2))
  in
  Ipaddr.of_int (base lor off)

(** The fabric ties a {!Topology} to per-switch {!Switch_model}s and manages
    flow lifecycles end to end: starting a flow routes it, then accounts its
    rate on the egress port of every switch along the path. *)

type t

val create : ?caps:Switch_model.caps -> Topology.t -> t
val topology : t -> Topology.t

(** The model of switch [id]; raises [Invalid_argument] for non-switches. *)
val switch : t -> int -> Switch_model.t

val switch_models : t -> Switch_model.t list

(** Start a flow for [tuple] at [rate] bytes/s.  The path defaults to ECMP
    routing between the hosts owning the tuple's addresses; returns [None]
    when no route exists.  Returns the flow id. *)
val start_flow :
  t ->
  time:float ->
  tuple:Flow.five_tuple ->
  rate:float ->
  ?flags:Flow.tcp_flags ->
  ?payload:string ->
  ?path:Routing.path ->
  unit ->
  int option

val stop_flow : t -> time:float -> int -> unit

(** Path of an active flow. *)
val flow_path : t -> int -> Routing.path option

val active_flow_count : t -> int

(** {2 Link faults}

    Taking a link down reroutes every active flow whose path crosses it
    (ECMP over the surviving links); flows started with an explicit [?path]
    are pinned and get dropped instead, as do flows left with no route.
    Bringing a link back re-runs ECMP for all non-pinned flows so load
    spreads back over it.  Flow processing order is by flow id, so the
    outcome is deterministic. *)

val set_link_state : t -> time:float -> int -> int -> up:bool -> unit
val link_is_up : t -> int -> int -> bool

(** Cumulative counts of flows rerouted / dropped by link faults. *)
val rerouted_flows : t -> int

val dropped_flows : t -> int

(** Stop all flows (between benchmark repetitions). *)
val reset : t -> time:float -> unit

(** Pick a uniformly random address inside some host's prefix. *)
val random_host_addr : t -> Farm_sim.Rng.t -> Ipaddr.t

type caps = {
  vcpu : float;
  ram_mb : float;
  tcam_entries : int;
  pcie_bps : float;
  asic_bps : float;
}

(* PCIe polling budget is 8 Mbit/s on the paper's Accton switches (§VI-E)
   against 100 Gb/s+ ASIC capacity — the 1:12500 ratio behind Fig. 8. *)
let accton_as5712 =
  { vcpu = 4.; ram_mb = 8192.; tcam_entries = 2048; pcie_bps = 8e6;
    asic_bps = 100e9 }

let accton_as7712 = { accton_as5712 with ram_mb = 16384. }

let aps_bf2556 =
  { vcpu = 8.; ram_mb = 32768.; tcam_entries = 4096; pcie_bps = 8e6;
    asic_bps = 2e12 }

let arista_7280 =
  { vcpu = 4.; ram_mb = 8192.; tcam_entries = 2048; pcie_bps = 8e6;
    asic_bps = 100e9 }

type active_flow = {
  flow_id : int;
  tuple : Flow.five_tuple;
  base_rate : float;
  mutable rate : float;
  flags : Flow.tcp_flags;
  payload : string;
  egress : int;
}

type port_state = { mutable p_rate : float; mutable p_bytes : float }

type subject_state = { mutable s_rate : float; mutable s_bytes : float }

module Subject_map = Map.Make (struct
  type t = Filter.subject

  let compare = Filter.subject_compare
end)

type t = {
  sw_id : int;
  caps : caps;
  tcam : Tcam.t;
  ports : port_state array;
  mutable subjects : subject_state Subject_map.t;
  flows : (int, active_flow) Hashtbl.t;
  mutable last_sync : float;
  (* traffic-surge fault: offered load multiplier applied on top of every
     flow's base rate; 1.0 is bit-exact with the unfaulted model *)
  mutable surge : float;
  (* Hot-query caches, refreshed on demand with the exact fold the
     uncached code used — same iteration order, same float accumulation,
     so cached results are bit-identical to recomputing.  [fl_cache]
     (id-sorted flow list) goes stale only on membership changes;
     [rate_cache] (sum of active rates) also on any re-rating. *)
  mutable fl_cache : active_flow list;
  mutable fl_dirty : bool;
  mutable rate_cache : float;
  mutable rate_dirty : bool;
}

let create ?(caps = accton_as5712) ~id ~ports () =
  { sw_id = id; caps;
    tcam = Tcam.create ~capacity:caps.tcam_entries ();
    ports = Array.init (Stdlib.max 1 ports) (fun _ -> { p_rate = 0.; p_bytes = 0. });
    subjects = Subject_map.empty;
    flows = Hashtbl.create 32;
    last_sync = 0.;
    surge = 1.;
    fl_cache = []; fl_dirty = false; rate_cache = 0.; rate_dirty = false }

let id t = t.sw_id
let caps t = t.caps
let tcam t = t.tcam
let port_count t = Array.length t.ports

(* Integrate all rates up to [time]; counters stay exact at poll instants. *)
let sync t ~time =
  let dt = time -. t.last_sync in
  if dt > 0. then begin
    Array.iter (fun p -> p.p_bytes <- p.p_bytes +. (p.p_rate *. dt)) t.ports;
    Subject_map.iter
      (fun _ s -> s.s_bytes <- s.s_bytes +. (s.s_rate *. dt))
      t.subjects;
    (* TCAM counters: average packet size of 1000 B converts bytes to
       packets for rule-hit counters *)
    Hashtbl.iter
      (fun _ f ->
        if f.rate > 0. then
          Tcam.record t.tcam f.tuple ~bytes:(f.rate *. dt))
      t.flows;
    t.last_sync <- time
  end
  else if dt < 0. then
    invalid_arg "Switch_model: time went backwards"

let rate_delta t f delta =
  if f.egress >= 0 && f.egress < Array.length t.ports then begin
    let p = t.ports.(f.egress) in
    p.p_rate <- p.p_rate +. delta
  end;
  Subject_map.iter
    (fun subj s ->
      let hit =
        match subj with
        | Filter.All_ports -> true
        | Filter.Port_counter p -> f.tuple.sport = p || f.tuple.dport = p
        | Filter.Prefix_counter p ->
            Ipaddr.Prefix.mem f.tuple.src p || Ipaddr.Prefix.mem f.tuple.dst p
        | Filter.Proto_counter p -> f.tuple.proto = p
      in
      if hit then s.s_rate <- s.s_rate +. delta)
    t.subjects

let effective_rate t f =
  let base =
    if t.surge = 1. then f.base_rate else f.base_rate *. t.surge
  in
  match Tcam.lookup t.tcam f.tuple with
  | Some e -> (
      match e.rule.action with
      | Tcam.Drop -> 0.
      | Tcam.Rate_limit cap -> Float.min base cap
      | Tcam.Forward _ | Tcam.Set_qos _ | Tcam.Mirror | Tcam.Count -> base)
  | None -> base

let add_flow t ~time ~flow_id ~tuple ~rate ?(flags = Flow.no_flags)
    ?(payload = "") ~egress () =
  sync t ~time;
  let f =
    { flow_id; tuple; base_rate = rate; rate; flags; payload; egress }
  in
  f.rate <- effective_rate t f;
  Hashtbl.replace t.flows flow_id f;
  t.fl_dirty <- true;
  t.rate_dirty <- true;
  rate_delta t f f.rate

let remove_flow t ~time ~flow_id =
  sync t ~time;
  match Hashtbl.find_opt t.flows flow_id with
  | None -> ()
  | Some f ->
      rate_delta t f (-.f.rate);
      Hashtbl.remove t.flows flow_id;
      t.fl_dirty <- true;
      t.rate_dirty <- true

let active_flows t =
  if t.fl_dirty then begin
    t.fl_cache <-
      Hashtbl.fold (fun _ f acc -> f :: acc) t.flows []
      |> List.sort (fun a b -> Int.compare a.flow_id b.flow_id);
    t.fl_dirty <- false
  end;
  t.fl_cache

let apply_tcam_actions t ~time =
  sync t ~time;
  Hashtbl.iter
    (fun _ f ->
      let r = effective_rate t f in
      if r <> f.rate then begin
        rate_delta t f (r -. f.rate);
        f.rate <- r;
        t.rate_dirty <- true
      end)
    t.flows

(* Traffic-surge fault: settle counters at [time], then re-rate every
   active flow under the new multiplier (flow-id order, so the float
   accumulation into port/subject rates is deterministic). *)
let set_surge t ~time factor =
  if factor <= 0. then invalid_arg "Switch_model.set_surge: factor <= 0";
  if factor <> t.surge then begin
    sync t ~time;
    t.surge <- factor;
    List.iter
      (fun f ->
        let r = effective_rate t f in
        if r <> f.rate then begin
          rate_delta t f (r -. f.rate);
          f.rate <- r;
          t.rate_dirty <- true
        end)
      (active_flows t)
  end

let surge_factor t = t.surge

let check_port t port =
  if port < 0 || port >= Array.length t.ports then
    invalid_arg (Printf.sprintf "Switch_model: port %d out of range" port)

let port_bytes t ~time ~port =
  check_port t port;
  sync t ~time;
  t.ports.(port).p_bytes

let port_rate t ~port =
  check_port t port;
  t.ports.(port).p_rate

let watch_subject t ~time subj =
  sync t ~time;
  if not (Subject_map.mem subj t.subjects) then begin
    let s = { s_rate = 0.; s_bytes = 0. } in
    (* initialize the subject's rate from currently active flows *)
    t.subjects <- Subject_map.add subj s t.subjects;
    Hashtbl.iter
      (fun _ f ->
        let hit =
          match subj with
          | Filter.All_ports -> true
          | Filter.Port_counter p -> f.tuple.sport = p || f.tuple.dport = p
          | Filter.Prefix_counter p ->
              Ipaddr.Prefix.mem f.tuple.src p
              || Ipaddr.Prefix.mem f.tuple.dst p
          | Filter.Proto_counter p -> f.tuple.proto = p
        in
        if hit then s.s_rate <- s.s_rate +. f.rate)
      t.flows
  end

let subject_bytes t ~time subj =
  sync t ~time;
  match Subject_map.find_opt subj t.subjects with
  | Some s -> s.s_bytes
  | None -> 0.

let poll_subject t ~time subj =
  sync t ~time;
  match subj with
  | Filter.All_ports -> Array.map (fun p -> p.p_bytes) t.ports
  | _ -> [| subject_bytes t ~time subj |]

let total_rate t =
  if t.rate_dirty then begin
    t.rate_cache <- Hashtbl.fold (fun _ f acc -> acc +. f.rate) t.flows 0.;
    t.rate_dirty <- false
  end;
  t.rate_cache

let sample_packet t rng =
  let total = total_rate t in
  if total <= 0. then None
  else begin
    let target = Farm_sim.Rng.uniform rng 0. total in
    let acc = ref 0. in
    let chosen = ref None in
    (* walk flows in id order so a seeded Rng reproduces the same packet
       across runs (Hashtbl order varies with the hash seed) *)
    (try
       List.iter
         (fun f ->
           acc := !acc +. f.rate;
           if !acc >= target && f.rate > 0. then begin
             chosen := Some f;
             raise Exit
           end)
         (active_flows t)
     with Exit -> ());
    Option.map
      (fun (f : active_flow) ->
        Flow.packet ~flags:f.flags ~payload:f.payload f.tuple 1000)
      !chosen
  end

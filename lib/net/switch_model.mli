(** Model of one data-center switch: the packet-processing ASIC (port
    counters, TCAM, sampling) plus the capacities of its management system
    (CPU cores, RAM, PCIe polling bandwidth).

    Traffic is represented as {e active flows} with a byte rate; counters
    are exact integrals of those rates over time (synchronized lazily), so
    polls observe precisely what a hardware counter would show, without
    simulating individual packets.  Packet {e samples} for probing are drawn
    from active flows weighted by rate. *)

type caps = {
  vcpu : float;  (** management CPU cores *)
  ram_mb : float;
  tcam_entries : int;
  pcie_bps : float;  (** CPU<->ASIC polling channel, bits per second *)
  asic_bps : float;  (** ASIC switching capacity, bits per second *)
}

(** Platform profiles of §VI-A. *)

val aps_bf2556 : caps  (** Tofino, 8-core Xeon, 32 GB — 2.0 Tb/s *)

val accton_as5712 : caps  (** Atom C2538 quad core, 8 GB *)

val accton_as7712 : caps  (** like AS5712 with twice the RAM *)

val arista_7280 : caps  (** AMD GX-424CC quad core, 8 GB *)

type active_flow = {
  flow_id : int;
  tuple : Flow.five_tuple;
  base_rate : float;  (** offered bytes/s *)
  mutable rate : float;  (** effective bytes/s after TCAM actions *)
  flags : Flow.tcp_flags;
  payload : string;
  egress : int;  (** egress port on this switch *)
}

type t

val create : ?caps:caps -> id:int -> ports:int -> unit -> t
val id : t -> int
val caps : t -> caps
val tcam : t -> Tcam.t
val port_count : t -> int

(** {2 Flows} *)

val add_flow :
  t ->
  time:float ->
  flow_id:int ->
  tuple:Flow.five_tuple ->
  rate:float ->
  ?flags:Flow.tcp_flags ->
  ?payload:string ->
  egress:int ->
  unit ->
  unit

val remove_flow : t -> time:float -> flow_id:int -> unit

val active_flows : t -> active_flow list
(** Active flows sorted by [flow_id].  Cached between membership changes
    — repeated calls (packet sampling, surge re-rating) return the same
    list without re-folding the flow table. *)

(** Re-apply TCAM actions (Drop, Rate_limit) to active flows — called after
    a seed reaction installs/removes monitoring rules. *)
val apply_tcam_actions : t -> time:float -> unit

(** Traffic-surge fault ([Fault.Traffic_surge]): multiply every flow's
    offered rate by [factor] from [time] on (counters up to [time] settle
    at the old rates first).  TCAM actions still apply on top — a
    rate-limit caps the surged rate.  Factor 1 restores the base rates and
    is bit-exact with the unfaulted model. *)
val set_surge : t -> time:float -> float -> unit

val surge_factor : t -> float

(** {2 Counters (polling targets)} *)

(** Cumulative bytes transmitted on a port. *)
val port_bytes : t -> time:float -> port:int -> float

(** Current egress rate of a port, bytes/s. *)
val port_rate : t -> port:int -> float

(** Register interest in a subject so its counter accumulates; idempotent. *)
val watch_subject : t -> time:float -> Filter.subject -> unit

(** Cumulative bytes for a watched subject (0 if never watched). *)
val subject_bytes : t -> time:float -> Filter.subject -> float

(** Bytes of a subject as a hardware poll would return them: an array of
    per-port values for [All_ports], a single value otherwise. *)
val poll_subject : t -> time:float -> Filter.subject -> float array

(** {2 Sampling} *)

(** Draw a packet from active flows, probability proportional to rate;
    [None] when the switch is idle. *)
val sample_packet : t -> Farm_sim.Rng.t -> Flow.packet option

(** Total offered egress rate over all flows, bytes/s.  Cached between
    re-ratings; the refresh uses the same fold as always, so the value
    is bit-identical to recomputing on every call. *)
val total_rate : t -> float

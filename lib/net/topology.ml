type kind = Switch | Host

type node = {
  id : int;
  kind : kind;
  name : string;
  prefix : Ipaddr.Prefix.t option;
}

type t = {
  mutable node_list : node list;  (* reversed *)
  mutable count : int;
  byid : (int, node) Hashtbl.t;
  (* adjacency: per node, list of (neighbor, latency), insertion order
     defines port numbering *)
  adj : (int, (int * float) list ref) Hashtbl.t;
  (* administratively/physically down links, keyed (min, max); ports keep
     their numbering, only reachability changes *)
  down : (int * int, unit) Hashtbl.t;
}

let empty () =
  { node_list = []; count = 0; byid = Hashtbl.create 64;
    adj = Hashtbl.create 64; down = Hashtbl.create 16 }

let link_key a b = if a <= b then (a, b) else (b, a)

let add_node t kind name prefix =
  let id = t.count in
  let n = { id; kind; name; prefix } in
  t.node_list <- n :: t.node_list;
  t.count <- t.count + 1;
  Hashtbl.replace t.byid id n;
  Hashtbl.replace t.adj id (ref []);
  id

let add_switch t name = add_node t Switch name None
let add_host t name prefix = add_node t Host name (Some prefix)

let adj t id =
  match Hashtbl.find_opt t.adj id with
  | Some l -> l
  | None -> invalid_arg (Printf.sprintf "Topology: unknown node %d" id)

let default_latency = 5e-6

let add_link ?(latency = default_latency) t a b =
  let la = adj t a and lb = adj t b in
  la := !la @ [ (b, latency) ];
  lb := !lb @ [ (a, latency) ]

let node t id =
  match Hashtbl.find_opt t.byid id with
  | Some n -> n
  | None -> invalid_arg (Printf.sprintf "Topology.node: unknown node %d" id)

let node_count t = t.count
let nodes t = List.rev t.node_list
let switches t = List.filter (fun n -> n.kind = Switch) (nodes t)
let hosts t = List.filter (fun n -> n.kind = Host) (nodes t)
let switch_ids t = List.map (fun n -> n.id) (switches t)

let is_switch t id = (node t id).kind = Switch

let has_link t a b =
  Hashtbl.mem t.adj a && List.mem_assoc b !(adj t a)

let set_link_state t a b ~up =
  if not (has_link t a b) then
    invalid_arg (Printf.sprintf "Topology.set_link_state: no link %d-%d" a b);
  if up then Hashtbl.remove t.down (link_key a b)
  else Hashtbl.replace t.down (link_key a b) ()

let link_is_up t a b = has_link t a b && not (Hashtbl.mem t.down (link_key a b))

let neighbors t id =
  List.filter_map
    (fun (n, _) ->
      if Hashtbl.mem t.down (link_key id n) then None else Some n)
    !(adj t id)

let port_count t id = List.length !(adj t id)

let links t =
  List.concat_map
    (fun n ->
      List.filter_map
        (fun (b, _) -> if n.id < b then Some (n.id, b) else None)
        !(adj t n.id))
    (nodes t)
  |> List.sort compare

let switch_links t =
  List.filter (fun (a, b) -> is_switch t a && is_switch t b) (links t)

let port_to t a b =
  let rec go i = function
    | [] -> raise Not_found
    | (n, _) :: _ when n = b -> i
    | _ :: rest -> go (i + 1) rest
  in
  go 0 !(adj t a)

let link_latency t a b =
  match List.assoc_opt b !(adj t a) with
  | Some l -> l
  | None -> raise Not_found

let host_of_addr t addr =
  List.find_opt
    (fun n ->
      match n.prefix with
      | Some p -> Ipaddr.Prefix.mem addr p
      | None -> false)
    (hosts t)
  |> Option.map (fun n -> n.id)

let spine_leaf ~spines ~leaves ~hosts_per_leaf =
  if spines <= 0 || leaves <= 0 || hosts_per_leaf < 0 then
    invalid_arg "Topology.spine_leaf: all sizes must be positive";
  let t = empty () in
  let spine_ids =
    List.init spines (fun i -> add_switch t (Printf.sprintf "spine%d" i))
  in
  for l = 0 to leaves - 1 do
    let leaf = add_switch t (Printf.sprintf "leaf%d" l) in
    List.iter (fun s -> add_link t leaf s) spine_ids;
    for h = 0 to hosts_per_leaf - 1 do
      let prefix =
        Ipaddr.Prefix.make (Ipaddr.make 10 (l + 1) (h + 1) 0) 24
      in
      let host = add_host t (Printf.sprintf "host%d_%d" l h) prefix in
      add_link t leaf host
    done
  done;
  t

let fat_tree ~k =
  if k <= 0 || k mod 2 <> 0 then
    invalid_arg "Topology.fat_tree: k must be positive and even";
  let t = empty () in
  let half = k / 2 in
  let cores =
    List.init (half * half) (fun i -> add_switch t (Printf.sprintf "core%d" i))
  in
  let core = Array.of_list cores in
  for pod = 0 to k - 1 do
    let aggs =
      Array.init half (fun i -> add_switch t (Printf.sprintf "agg%d_%d" pod i))
    in
    let edges =
      Array.init half (fun i -> add_switch t (Printf.sprintf "edge%d_%d" pod i))
    in
    (* aggregation i connects to cores [i*half .. i*half+half-1] *)
    Array.iteri
      (fun i agg ->
        for j = 0 to half - 1 do
          add_link t agg core.((i * half) + j)
        done)
      aggs;
    Array.iter
      (fun edge -> Array.iter (fun agg -> add_link t edge agg) aggs)
      edges;
    Array.iteri
      (fun e edge ->
        for h = 0 to half - 1 do
          let prefix =
            Ipaddr.Prefix.make
              (Ipaddr.make 10 (pod + 1) ((e * half) + h + 1) 0)
              24
          in
          let host =
            add_host t (Printf.sprintf "host%d_%d_%d" pod e h) prefix
          in
          add_link t edge host
        done)
      edges
  done;
  t

let linear ~n =
  if n <= 0 then invalid_arg "Topology.linear: n must be positive";
  let t = empty () in
  let sw = Array.init n (fun i -> add_switch t (Printf.sprintf "s%d" i)) in
  for i = 0 to n - 2 do
    add_link t sw.(i) sw.(i + 1)
  done;
  let h0 =
    add_host t "hostA" (Ipaddr.Prefix.make (Ipaddr.make 10 1 1 0) 24)
  in
  let h1 =
    add_host t "hostB" (Ipaddr.Prefix.make (Ipaddr.make 10 2 1 0) 24)
  in
  add_link t h0 sw.(0);
  add_link t h1 sw.(n - 1);
  t

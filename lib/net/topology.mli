(** Network topologies: nodes (switches and hosts) connected by links with
    latency.  Generators for the spine-leaf fabric of the paper's production
    deployment, plus fat-tree and linear topologies for tests. *)

type kind = Switch | Host

type node = {
  id : int;
  kind : kind;
  name : string;
  prefix : Ipaddr.Prefix.t option;  (** hosts announce a /24 *)
}

type t

(** {2 Construction} *)

val empty : unit -> t

(** Returns the new node's id. *)
val add_switch : t -> string -> int

val add_host : t -> string -> Ipaddr.Prefix.t -> int

(** Bidirectional link; [latency] in seconds (default 5 microseconds,
    a DC-internal hop). *)
val add_link : ?latency:float -> t -> int -> int -> unit

(** {2 Generators} *)

(** Leaf-spine fabric: every leaf connects to every spine; [hosts_per_leaf]
    hosts hang off each leaf.  Host [h] of leaf [l] announces
    [10.(l+1).(h+1).0/24]. *)
val spine_leaf : spines:int -> leaves:int -> hosts_per_leaf:int -> t

(** Three-layer fat-tree of parameter [k] (k pods, (k/2)^2 cores); [k] must
    be even.  One host per edge switch port. *)
val fat_tree : k:int -> t

(** A chain of [n] switches with one host at each end. *)
val linear : n:int -> t

(** {2 Queries} *)

val node : t -> int -> node
val node_count : t -> int
val nodes : t -> node list
val switches : t -> node list
val hosts : t -> node list
val switch_ids : t -> int list
val is_switch : t -> int -> bool

(** Neighbors reachable over links that are currently up. *)
val neighbors : t -> int -> int list

(** {2 Link state}

    Links are physical: taking one down never renumbers ports
    ([port_to]/[port_count] keep counting it), it only removes the link from
    [neighbors] and hence from routing. *)

val has_link : t -> int -> int -> bool

(** Raises [Invalid_argument] when the link does not exist. *)
val set_link_state : t -> int -> int -> up:bool -> unit

val link_is_up : t -> int -> int -> bool

(** All physical links, each reported once as [(a, b)] with [a < b],
    sorted. *)
val links : t -> (int * int) list

(** [links] restricted to switch-switch links. *)
val switch_links : t -> (int * int) list

(** Degree of the node = number of ports. *)
val port_count : t -> int -> int

(** Port index on [a] that faces neighbor [b]; raises [Not_found] when the
    link does not exist. *)
val port_to : t -> int -> int -> int

val link_latency : t -> int -> int -> float

(** Host whose prefix contains the address. *)
val host_of_addr : t -> Ipaddr.t -> int option

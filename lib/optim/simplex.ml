type cmp = Le | Ge | Eq
type constr = { expr : Lin_expr.t; cmp : cmp; rhs : float }
type solution = { objective : float; values : float array }
type outcome = Optimal of solution | Infeasible | Unbounded

let eps = 1e-7

let constr expr cmp rhs = { expr; cmp; rhs }

(* Tableau layout: [m] constraint rows of width [cols + 1] (last column is
   the rhs).  [basis.(i)] is the column currently basic in row [i]. *)
type tableau = {
  t : float array array;
  basis : int array;
  m : int;
  cols : int;
}

let pivot tb ~row ~col =
  let t = tb.t in
  let p = t.(row).(col) in
  let w = tb.cols + 1 in
  let tr = t.(row) in
  for j = 0 to w - 1 do
    tr.(j) <- tr.(j) /. p
  done;
  for i = 0 to tb.m - 1 do
    if i <> row then begin
      let f = t.(i).(col) in
      if Float.abs f > 0. then begin
        let ti = t.(i) in
        for j = 0 to w - 1 do
          ti.(j) <- ti.(j) -. (f *. tr.(j))
        done
      end
    end
  done;
  tb.basis.(row) <- col

(* Reduced-cost row for cost vector [c] under the current basis:
   zeta.(j) = sum_i c(basis i) * T i j - c j, and the current objective in
   the last slot. *)
let make_zrow tb c =
  let w = tb.cols + 1 in
  let z = Array.make w 0. in
  for j = 0 to tb.cols - 1 do
    z.(j) <- -.c.(j)
  done;
  for i = 0 to tb.m - 1 do
    let cb = c.(tb.basis.(i)) in
    if Float.abs cb > 0. then
      let ti = tb.t.(i) in
      for j = 0 to w - 1 do
        z.(j) <- z.(j) +. (cb *. ti.(j))
      done
  done;
  z

let update_zrow z tb ~row ~col =
  let f = z.(col) in
  if Float.abs f > 0. then begin
    let tr = tb.t.(row) in
    for j = 0 to tb.cols do
      z.(j) <- z.(j) -. (f *. tr.(j))
    done
  end

(* Run simplex iterations for reduced-cost row [z]; [allowed j] restricts
   entering columns (used to forbid artificials in phase 2).  Returns
   [`Optimal] or [`Unbounded]. *)
let iterate ?deadline tb z ~allowed =
  let dantzig_limit = 20 * (tb.m + tb.cols) in
  let iter_limit = (200 * (tb.m + tb.cols)) + 10_000 in
  let expired () =
    match deadline with
    | Some d -> Unix.gettimeofday () > d
    | None -> false
  in
  let rec go it =
    if it > iter_limit then `Optimal (* stalled: accept current vertex *)
    else if it land 255 = 0 && expired () then `Timeout
    else begin
      (* entering column *)
      let enter = ref (-1) in
      if it <= dantzig_limit then begin
        let best = ref (-.eps) in
        for j = 0 to tb.cols - 1 do
          if allowed j && z.(j) < !best then begin
            best := z.(j);
            enter := j
          end
        done
      end
      else
        (* Bland's rule: first improving column, guarantees termination *)
        (try
           for j = 0 to tb.cols - 1 do
             if allowed j && z.(j) < -.eps then begin
               enter := j;
               raise Exit
             end
           done
         with Exit -> ());
      if !enter < 0 then `Optimal
      else begin
        let col = !enter in
        (* ratio test, Bland tie-break on basis index *)
        let row = ref (-1) in
        let best = ref infinity in
        for i = 0 to tb.m - 1 do
          let a = tb.t.(i).(col) in
          if a > eps then begin
            let r = tb.t.(i).(tb.cols) /. a in
            if
              r < !best -. eps
              || (r < !best +. eps && !row >= 0
                  && tb.basis.(i) < tb.basis.(!row))
            then begin
              best := r;
              row := i
            end
          end
        done;
        if !row < 0 then `Unbounded
        else begin
          pivot tb ~row:!row ~col;
          update_zrow z tb ~row:!row ~col;
          go (it + 1)
        end
      end
    end
  in
  go 0

let maximize ?deadline ~nvars ~objective constrs =
  let constrs = Array.of_list constrs in
  let m = Array.length constrs in
  let check_vars e =
    List.iter
      (fun v ->
        if v < 0 || v >= nvars then
          invalid_arg
            (Printf.sprintf "Simplex: variable x%d out of range (nvars=%d)" v
               nvars))
      (Lin_expr.vars e)
  in
  check_vars objective;
  Array.iter (fun c -> check_vars c.expr) constrs;
  (* Normalize: move expr constants to rhs, make rhs >= 0. *)
  let rows =
    Array.map
      (fun c ->
        let rhs = c.rhs -. Lin_expr.constant c.expr in
        let coeffs = Lin_expr.coeffs c.expr in
        if rhs < 0. then
          let coeffs = List.map (fun (v, a) -> (v, -.a)) coeffs in
          let cmp = match c.cmp with Le -> Ge | Ge -> Le | Eq -> Eq in
          (coeffs, cmp, -.rhs)
        else (coeffs, c.cmp, rhs))
      constrs
  in
  let nslack =
    Array.fold_left
      (fun acc (_, cmp, _) -> match cmp with Le | Ge -> acc + 1 | Eq -> acc)
      0 rows
  in
  let nart =
    Array.fold_left
      (fun acc (_, cmp, _) -> match cmp with Ge | Eq -> acc + 1 | Le -> acc)
      0 rows
  in
  let cols = nvars + nslack + nart in
  let t = Array.make_matrix m (cols + 1) 0. in
  let basis = Array.make m (-1) in
  let next_slack = ref nvars in
  let next_art = ref (nvars + nslack) in
  Array.iteri
    (fun i (coeffs, cmp, rhs) ->
      List.iter (fun (v, a) -> t.(i).(v) <- t.(i).(v) +. a) coeffs;
      t.(i).(cols) <- rhs;
      (match cmp with
      | Le ->
          t.(i).(!next_slack) <- 1.;
          basis.(i) <- !next_slack;
          incr next_slack
      | Ge ->
          t.(i).(!next_slack) <- -1.;
          incr next_slack
      | Eq -> ());
      match cmp with
      | Ge | Eq ->
          t.(i).(!next_art) <- 1.;
          basis.(i) <- !next_art;
          incr next_art
      | Le -> ())
    rows;
  let tb = { t; basis; m; cols } in
  let art_start = nvars + nslack in
  let infeasible = ref false in
  if nart > 0 then begin
    (* Phase 1: maximize -(sum of artificials). *)
    let c1 = Array.make cols 0. in
    for j = art_start to cols - 1 do
      c1.(j) <- -1.
    done;
    let z1 = make_zrow tb c1 in
    (match iterate ?deadline tb z1 ~allowed:(fun _ -> true) with
    | `Unbounded -> assert false (* phase-1 objective is bounded by 0 *)
    | `Optimal | `Timeout -> ());
    if z1.(cols) < -.eps then infeasible := true
    else
      (* Drive surviving artificial basics out of the basis. *)
      for i = 0 to m - 1 do
        if basis.(i) >= art_start then begin
          let found = ref false in
          let j = ref 0 in
          while (not !found) && !j < art_start do
            if Float.abs t.(i).(!j) > eps then begin
              pivot tb ~row:i ~col:!j;
              found := true
            end;
            incr j
          done
          (* If no pivot exists the row is redundant (all-zero over real
             columns); leaving the artificial basic at value 0 is harmless. *)
        end
      done
  end;
  if !infeasible then Infeasible
  else begin
    let c2 = Array.make cols 0. in
    List.iter (fun (v, a) -> c2.(v) <- a) (Lin_expr.coeffs objective);
    let z2 = make_zrow tb c2 in
    let allowed j = j < art_start in
    match iterate ?deadline tb z2 ~allowed with
    | `Unbounded -> Unbounded
    | `Timeout -> Infeasible  (* deadline hit: report no usable vertex *)
    | `Optimal ->
        let values = Array.make nvars 0. in
        for i = 0 to m - 1 do
          if basis.(i) < nvars then values.(basis.(i)) <- t.(i).(cols)
        done;
        Optimal
          { objective = z2.(cols) +. Lin_expr.constant objective; values }
  end

let minimize ?deadline ~nvars ~objective constrs =
  match
    maximize ?deadline ~nvars ~objective:(Lin_expr.neg objective) constrs
  with
  | Optimal s -> Optimal { s with objective = -.s.objective }
  | (Infeasible | Unbounded) as o -> o

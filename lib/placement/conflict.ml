(* Cross-task conflict detection (see conflict.mli). *)

module Ast = Farm_almanac.Ast
module Analysis = Farm_almanac.Analysis
module Diagnostic = Farm_almanac.Diagnostic
module Filter = Farm_net.Filter
module Ipaddr = Farm_net.Ipaddr

type rule_site = {
  r_pattern : Filter.t option;
  r_affecting : bool;
  r_machine : string;
  r_pos : Ast.pos;
}

type profile = {
  p_task : string;
  p_switches : int list;
  p_rules : rule_site list;
  p_monitors : (string * Filter.t) list;
}

(* ------------------------------------------------------------------ *)
(* Filter overlap                                                      *)

type lit = Pos of Filter.atom | Neg of Filter.atom

(* DNF expansion with a size cap; [None] = blew up, caller must assume
   overlap. *)
let max_conjunctions = 64

let cap l = if List.length l > max_conjunctions then None else Some l

let product a b =
  cap (List.concat_map (fun ca -> List.map (fun cb -> ca @ cb) b) a)

let rec dnf (f : Filter.t) : lit list list option =
  match f with
  | Filter.True -> Some [ [] ]
  | Filter.False -> Some []
  | Filter.Atom a -> Some [ [ Pos a ] ]
  | Filter.Not g -> dnf_neg g
  | Filter.And (a, b) -> (
      match (dnf a, dnf b) with
      | Some da, Some db -> product da db
      | _ -> None)
  | Filter.Or (a, b) -> (
      match (dnf a, dnf b) with
      | Some da, Some db -> cap (da @ db)
      | _ -> None)

and dnf_neg (f : Filter.t) : lit list list option =
  match f with
  | Filter.True -> Some []
  | Filter.False -> Some [ [] ]
  | Filter.Atom a -> Some [ [ Neg a ] ]
  | Filter.Not g -> dnf g
  | Filter.And (a, b) -> (
      (* ¬(a∧b) = ¬a ∨ ¬b *)
      match (dnf_neg a, dnf_neg b) with
      | Some da, Some db -> cap (da @ db)
      | _ -> None)
  | Filter.Or (a, b) -> (
      (* ¬(a∨b) = ¬a ∧ ¬b *)
      match (dnf_neg a, dnf_neg b) with
      | Some da, Some db -> product da db
      | _ -> None)

(* Provably no packet matches both atoms.  [Port n] (source or dest)
   never contradicts another port atom with a different value: a packet
   can carry both ports. *)
let atom_disjoint (a : Filter.atom) (b : Filter.atom) =
  match (a, b) with
  | Filter.Src_ip p, Filter.Src_ip q | Filter.Dst_ip p, Filter.Dst_ip q ->
      (not (Ipaddr.Prefix.subset p q)) && not (Ipaddr.Prefix.subset q p)
  | Filter.Src_port m, Filter.Src_port n
  | Filter.Dst_port m, Filter.Dst_port n ->
      m <> n
  | Filter.Proto p, Filter.Proto q -> p <> q
  | _ -> false

(* [a] implies [b]: every packet matching [a] matches [b]. *)
let atom_implies (a : Filter.atom) (b : Filter.atom) =
  match (a, b) with
  | _, Filter.Any -> true
  | Filter.Src_ip p, Filter.Src_ip q | Filter.Dst_ip p, Filter.Dst_ip q ->
      Ipaddr.Prefix.subset p q
  | Filter.Src_port m, Filter.Src_port n
  | Filter.Dst_port m, Filter.Dst_port n
  | Filter.Port m, Filter.Port n ->
      m = n
  | Filter.Src_port m, Filter.Port n | Filter.Dst_port m, Filter.Port n ->
      m = n
  | Filter.Proto p, Filter.Proto q -> p = q
  | _ -> false

(* Is a combined conjunction possibly satisfiable? *)
let conj_satisfiable (c : lit list) =
  let pos = List.filter_map (function Pos a -> Some a | Neg _ -> None) c in
  let neg = List.filter_map (function Neg a -> Some a | Pos _ -> None) c in
  (not (List.mem Filter.Any neg))
  && (not
        (List.exists
           (fun a -> List.exists (fun b -> atom_disjoint a b) pos)
           pos))
  && not (List.exists (fun a -> List.exists (fun b -> atom_implies a b) neg) pos)

let overlap f g =
  match (dnf f, dnf g) with
  | Some df, Some dg ->
      List.exists
        (fun ca -> List.exists (fun cb -> conj_satisfiable (ca @ cb)) dg)
        df
  | _ -> true

(* ------------------------------------------------------------------ *)
(* Harvesting                                                          *)

(* Does an action expression affect matching traffic?  Unknown actions
   (external variables, auxiliary calls) are conservatively affecting. *)
let action_affecting (e : Ast.expr) =
  match e with
  | Ast.Call (("qos_action" | "mirror_action" | "count_action"), _) -> false
  | _ -> true

let rec expr_rule_sites ~bindings ~machine ~pos acc (e : Ast.expr) =
  let recurse acc e = expr_rule_sites ~bindings ~machine ~pos acc e in
  match e with
  | Ast.Call ("addTCAMRule", args) ->
      let acc = List.fold_left recurse acc args in
      let site =
        match args with
        | [ Ast.Call ("mkRule", [ f; act ]) ] ->
            let pattern =
              match Analysis.eval_filter ~bindings f with
              | Ok fl -> Some fl
              | Error _ -> None
            in
            { r_pattern = pattern; r_affecting = action_affecting act;
              r_machine = machine; r_pos = pos }
        | _ ->
            { r_pattern = None; r_affecting = true; r_machine = machine;
              r_pos = pos }
      in
      site :: acc
  | Ast.Call (_, args) -> List.fold_left recurse acc args
  | Ast.Field (e, _) | Ast.Unop (_, e) | Ast.FilterAtom (_, e) -> recurse acc e
  | Ast.Binop (_, a, b) -> recurse (recurse acc a) b
  | Ast.ListLit es -> List.fold_left recurse acc es
  | Ast.StructLit (_, fs) ->
      List.fold_left (fun acc (_, e) -> recurse acc e) acc fs
  | Ast.Bool _ | Ast.Int _ | Ast.Float _ | Ast.String _ | Ast.AnyLit
  | Ast.Var _ ->
      acc

let rec stmt_rule_sites ~bindings ~machine acc (s : Ast.stmt) =
  let on_expr acc e =
    expr_rule_sites ~bindings ~machine ~pos:s.Ast.sloc acc e
  in
  let on_body acc b =
    List.fold_left (stmt_rule_sites ~bindings ~machine) acc b
  in
  match s.Ast.sk with
  | Ast.Decl (_, _, None) | Ast.Return None -> acc
  | Ast.Decl (_, _, Some e)
  | Ast.Assign (_, e)
  | Ast.Transit e
  | Ast.Return (Some e)
  | Ast.Send (e, _)
  | Ast.ExprStmt e ->
      on_expr acc e
  | Ast.If (c, t, f) -> on_body (on_body (on_expr acc c) t) f
  | Ast.While (c, b) -> on_body (on_expr acc c) b

let rule_sites ?(bindings = Analysis.no_bindings) (m : Ast.machine) =
  let on_event acc (ev : Ast.event) =
    List.fold_left
      (stmt_rule_sites ~bindings ~machine:m.Ast.mname)
      acc ev.Ast.body
  in
  let acc =
    List.fold_left
      (fun acc (st : Ast.state_decl) ->
        List.fold_left on_event acc st.Ast.sevents)
      [] m.Ast.states
  in
  List.rev (List.fold_left on_event acc m.Ast.mevents)

let profile ~task (summaries : (Analysis.summary * Analysis.bindings) list) =
  let switches =
    List.concat_map
      (fun ((s : Analysis.summary), _) ->
        List.concat_map
          (fun (site : Analysis.seed_site) -> site.Analysis.candidates)
          s.Analysis.seeds)
      summaries
    |> List.sort_uniq Int.compare
  in
  let rules =
    List.concat_map
      (fun ((s : Analysis.summary), bindings) ->
        rule_sites ~bindings s.Analysis.machine)
      summaries
  in
  let monitors =
    (* time triggers observe no traffic — only polls and probes can be
       blinded by another task's rules *)
    List.concat_map
      (fun ((s : Analysis.summary), _) ->
        List.filter_map
          (fun (p : Analysis.poll_summary) ->
            if p.Analysis.ptrig = Ast.Time then None
            else
              Some
                ( s.Analysis.machine.Ast.mname ^ "." ^ p.Analysis.poll_name,
                  p.Analysis.what ))
          s.Analysis.poll_vars)
      summaries
  in
  { p_task = task; p_switches = switches; p_rules = rules;
    p_monitors = monitors }

(* ------------------------------------------------------------------ *)
(* Pairwise checks                                                     *)

let rec intersects a b =
  (* both sorted *)
  match (a, b) with
  | [], _ | _, [] -> false
  | x :: a', y :: b' ->
      if x = y then true
      else if x < y then intersects a' b
      else intersects a b'

let patterns_overlap (pa : Filter.t option) (pb : Filter.t option) =
  match (pa, pb) with
  | Some a, Some b -> overlap a b
  | _ -> true (* runtime-computed pattern: assume the worst *)

let pattern_str = function
  | Some f -> Filter.to_string f
  | None -> "<runtime pattern>"

let c301 a b =
  let aff p = List.filter (fun r -> r.r_affecting) p.p_rules in
  let pair =
    List.find_map
      (fun ra ->
        List.find_map
          (fun rb ->
            if patterns_overlap ra.r_pattern rb.r_pattern then
              Some (ra, rb)
            else None)
          (aff b))
      (aff a)
  in
  match pair with
  | None -> []
  | Some (ra, rb) ->
      [ Diagnostic.warningf ~pos:ra.r_pos ~code:"C301"
          "tasks %s and %s share candidate switches and may install \
           conflicting TCAM rules: %s (machine %s) overlaps %s (machine %s)"
          a.p_task b.p_task (pattern_str ra.r_pattern) ra.r_machine
          (pattern_str rb.r_pattern) rb.r_machine ]

(* monitors of [a] vs affecting rules of [b] *)
let c302 a b =
  let hit =
    List.find_map
      (fun (mon, f) ->
        List.find_map
          (fun r ->
            if r.r_affecting && patterns_overlap (Some f) r.r_pattern then
              Some (mon, f, r)
            else None)
          b.p_rules)
      a.p_monitors
  in
  match hit with
  | None -> []
  | Some (mon, f, r) ->
      [ Diagnostic.warningf ~pos:r.r_pos ~code:"C302"
          "task %s polls %s (%s) but task %s may drop or rate-limit \
           matching traffic with rule %s (machine %s) on a shared switch"
          a.p_task mon (Filter.to_string f) b.p_task
          (pattern_str r.r_pattern) r.r_machine ]

let check_pair a b =
  if not (intersects a.p_switches b.p_switches) then []
  else c301 a b @ c302 a b @ c302 b a

let check_against p deployed =
  List.concat_map
    (fun q -> if q.p_task = p.p_task then [] else check_pair p q)
    deployed

let check profiles =
  let rec go = function
    | [] -> []
    | p :: rest -> List.concat_map (check_pair p) rest @ go rest
  in
  go profiles

(** Cross-task conflict detection ([C3xx] diagnostics).

    Tasks are verified in isolation, but they share switches: a TCAM rule
    installed by one task matches traffic another task enforces or
    measures.  This pass harvests every statically-known TCAM rule
    pattern and polling/probing filter from each task's machines, and for
    every pair of tasks whose candidate switch sets intersect reports:

    - [C301] (warning) both tasks may install traffic-affecting TCAM
      rules (drop / rate-limit / unknown external action) with
      overlapping patterns — whichever is installed first wins, and the
      loser's enforcement silently degrades;
    - [C302] (warning) one task polls or probes traffic that the other
      may drop or rate-limit — the measurement is blinded by the rule.

    Pattern overlap is decided by a sound approximation: filters are
    expanded to DNF and two filters are declared disjoint only when every
    pair of conjunctions contains provably contradictory atoms (different
    protocol constants, disjoint prefixes on the same side, different
    port constants on the same side).  Rules whose pattern is computed at
    runtime ([mkRule(srcIP attacker, ...)]) conservatively overlap
    everything. *)

module Ast := Farm_almanac.Ast
module Analysis := Farm_almanac.Analysis
module Diagnostic := Farm_almanac.Diagnostic

(** One [addTCAMRule] call site. *)
type rule_site = {
  r_pattern : Farm_net.Filter.t option;
      (** [None] when the pattern is computed at runtime *)
  r_affecting : bool;
      (** drop / rate-limit / unknown action — affects matching traffic *)
  r_machine : string;
  r_pos : Ast.pos;
}

(** What one task exposes to the shared switches. *)
type profile = {
  p_task : string;
  p_switches : int list;  (** union of candidate switches, sorted *)
  p_rules : rule_site list;
  p_monitors : (string * Farm_net.Filter.t) list;
      (** ["machine.pollvar"], polling/probing filter *)
}

(** Sound filter-overlap approximation: [false] only when provably
    disjoint. *)
val overlap : Farm_net.Filter.t -> Farm_net.Filter.t -> bool

(** Harvest the [addTCAMRule] call sites of one resolved machine.
    [bindings] resolves [external] variables used in patterns. *)
val rule_sites : ?bindings:Analysis.bindings -> Ast.machine -> rule_site list

(** Build a task's profile from its machine analyses, each paired with
    the bindings used to resolve its [external] variables. *)
val profile :
  task:string -> (Analysis.summary * Analysis.bindings) list -> profile

(** All pairwise conflicts; at most one [C301] and one [C302] diagnostic
    per unordered task pair and direction. *)
val check : profile list -> Diagnostic.t list

(** Conflicts a new task introduces against already-deployed ones. *)
val check_against : profile -> profile list -> Diagnostic.t list

module Analysis = Farm_almanac.Analysis
module Filter = Farm_net.Filter
module Lin = Farm_optim.Lin_expr
module Simplex = Farm_optim.Simplex

type phases = { redistribute : bool; migrate : bool }

let all_phases = { redistribute = true; migrate = true }
let greedy_only = { redistribute = false; migrate = false }

type stats = {
  placed_seeds : int;
  dropped_tasks : int;
  migrations : int;
  runtime_s : float;
}

let nres = Analysis.n_resources
let pcie = Analysis.resource_index Analysis.Pcie

(* ------------------------------------------------------------------ *)
(* Per-seed minimal allocation                                         *)
(* ------------------------------------------------------------------ *)

(* Minimal feasible resource point of a utility branch: minimize sum of
   resources subject to the branch constraints. *)
let min_alloc (branch : Analysis.util_branch) =
  let objective =
    List.fold_left (fun acc r -> Lin.add acc (Lin.var r)) Lin.zero
      (List.init nres Fun.id)
  in
  let constraints =
    List.map (fun c -> Simplex.constr c Simplex.Ge 0.) branch.constraints
  in
  match Simplex.minimize ~nvars:nres ~objective constraints with
  | Simplex.Optimal s -> Some (Array.map (fun v -> Float.max 0. v) s.values)
  | Simplex.Infeasible -> None
  | Simplex.Unbounded -> Some (Array.make nres 0.)

(* Choose the branch with the best utility at its minimal allocation. *)
type seed_min = {
  sm_seed : Model.seed_spec;
  sm_branch : int;
  sm_res : float array;
  sm_util : float;
}

let seed_min_of (s : Model.seed_spec) =
  let best = ref None in
  List.iteri
    (fun i branch ->
      match min_alloc branch with
      | None -> ()
      | Some res ->
          let u = Analysis.eval_utility branch res in
          let better =
            match !best with Some (_, _, u0) -> u > u0 | None -> true
          in
          if better then best := Some (i, res, u))
    s.branches;
  Option.map
    (fun (i, res, u) -> { sm_seed = s; sm_branch = i; sm_res = res; sm_util = u })
    !best

(* ------------------------------------------------------------------ *)
(* Capacity tracking during the greedy phase                           *)
(* ------------------------------------------------------------------ *)

type switch_state = {
  sw_caps : Model.switch_caps;
  remaining : float array;  (* non-PCIe remaining capacity *)
  (* per polling subject: current aggregated (max) demand *)
  mutable subj_demand : (Filter.subject * float) list;
  mutable pcie_used : float;
  mutable resident : seed_min list;
}

let poll_demands inst (s : Model.seed_spec) res =
  List.map
    (fun (p : Model.poll_req) ->
      (p.subject, inst.Model.alpha_poll *. Analysis.poll_rate p.ival res))
    s.polls

(* PCIe increment if [demands] lands on the switch (aggregation-aware). *)
let pcie_increment st demands =
  List.fold_left
    (fun acc (subj, d) ->
      let cur =
        match
          List.find_opt (fun (s0, _) -> Filter.subject_equal s0 subj)
            st.subj_demand
        with
        | Some (_, d0) -> d0
        | None -> 0.
      in
      acc +. Float.max 0. (d -. cur))
    0. demands

let commit_polls st demands =
  List.iter
    (fun (subj, d) ->
      let rec bump = function
        | [] -> [ (subj, d) ]
        | (s0, d0) :: rest when Filter.subject_equal s0 subj ->
            (s0, Float.max d0 d) :: rest
        | x :: rest -> x :: bump rest
      in
      st.subj_demand <- bump st.subj_demand)
    demands;
  st.pcie_used <-
    List.fold_left (fun acc (_, d) -> acc +. d) 0. st.subj_demand

let fits st inst (sm : seed_min) =
  let ok_res = ref true in
  Array.iteri
    (fun r v -> if r <> pcie && v > st.remaining.(r) +. 1e-9 then ok_res := false)
    sm.sm_res;
  !ok_res
  && pcie_increment st (poll_demands inst sm.sm_seed sm.sm_res)
     <= st.sw_caps.avail.(pcie) -. st.pcie_used +. 1e-9

let commit st inst (sm : seed_min) =
  Array.iteri
    (fun r v -> if r <> pcie then st.remaining.(r) <- st.remaining.(r) -. v)
    sm.sm_res;
  commit_polls st (poll_demands inst sm.sm_seed sm.sm_res);
  st.resident <- sm :: st.resident

let uncommit st inst (sm : seed_min) =
  Array.iteri
    (fun r v -> if r <> pcie then st.remaining.(r) <- st.remaining.(r) +. v)
    sm.sm_res;
  st.resident <-
    List.filter
      (fun r -> r.sm_seed.seed_id <> sm.sm_seed.seed_id)
      st.resident;
  (* rebuild aggregated subject demands from the remaining residents *)
  st.subj_demand <- [];
  st.pcie_used <- 0.;
  List.iter
    (fun r -> commit_polls st (poll_demands inst r.sm_seed r.sm_res))
    st.resident

(* ------------------------------------------------------------------ *)
(* LP resource redistribution (one LP per switch)                      *)
(* ------------------------------------------------------------------ *)

(* Variables: per seed s on the switch, res(s, r) (nres vars) and t_s; per
   distinct polling subject p, pollres_p.  Maximize sum of t_s. *)
let redistribute_switch inst (sms : seed_min list) (cap : Model.switch_caps) :
    (int * float array * float) list =
  let n = List.length sms in
  if n = 0 then []
  else begin
    let res_base i = i * nres in
    let t_var i = (n * nres) + i in
    (* distinct subjects on this switch *)
    let subjects =
      List.fold_left
        (fun acc sm ->
          List.fold_left
            (fun acc (p : Model.poll_req) ->
              if List.exists (Filter.subject_equal p.subject) acc then acc
              else p.subject :: acc)
            acc sm.sm_seed.polls)
        [] sms
    in
    let subj_index s =
      let rec go i = function
        | [] -> assert false
        | x :: rest ->
            if Filter.subject_equal x s then i else go (i + 1) rest
      in
      go 0 subjects
    in
    let pollres_var p = (n * nres) + n + subj_index p in
    let nvars = (n * nres) + n + List.length subjects in
    (* remap a Lin over resource indices to this seed's variable block *)
    let remap i l =
      List.fold_left
        (fun acc (r, c) -> Lin.add acc (Lin.var ~coeff:c (res_base i + r)))
        (Lin.const (Lin.constant l))
        (Lin.coeffs l)
    in
    let constraints = ref [] in
    let addc c = constraints := c :: !constraints in
    List.iteri
      (fun i sm ->
        let branch = List.nth sm.sm_seed.branches sm.sm_branch in
        (* C2: branch constraints *)
        List.iter
          (fun c -> addc (Simplex.constr (remap i c) Simplex.Ge 0.))
          branch.constraints;
        (* t_i <= each utility piece *)
        List.iter
          (fun piece ->
            addc
              (Simplex.constr
                 (Lin.sub (Lin.var (t_var i)) (remap i piece))
                 Simplex.Le 0.))
          branch.utility;
        (* C3: per-seed cap *)
        for r = 0 to nres - 1 do
          addc
            (Simplex.constr (Lin.var (res_base i + r)) Simplex.Le
               cap.avail.(r))
        done;
        (* polling demand ties pollres_p >= alpha * ival_inv(res_i) *)
        List.iter
          (fun (p : Model.poll_req) ->
            let demand =
              match p.ival with
              | Analysis.Const_ival iv ->
                  Lin.const (inst.Model.alpha_poll /. iv)
              | Analysis.Inv_linear l ->
                  Lin.scale inst.Model.alpha_poll (remap i l)
            in
            addc
              (Simplex.constr
                 (Lin.sub demand (Lin.var (pollres_var p.subject)))
                 Simplex.Le 0.))
          sm.sm_seed.polls)
      sms;
    (* C4: per-resource switch capacity *)
    for r = 0 to nres - 1 do
      if r <> pcie then begin
        let total =
          List.fold_left
            (fun (i, acc) _ -> (i + 1, Lin.add acc (Lin.var (res_base i + r))))
            (0, Lin.zero) sms
          |> snd
        in
        addc (Simplex.constr total Simplex.Le cap.avail.(r))
      end
    done;
    let poll_total =
      List.fold_left
        (fun acc p -> Lin.add acc (Lin.var (pollres_var p)))
        Lin.zero subjects
    in
    addc (Simplex.constr poll_total Simplex.Le cap.avail.(pcie));
    let objective =
      List.fold_left
        (fun (i, acc) _ -> (i + 1, Lin.add acc (Lin.var (t_var i))))
        (0, Lin.zero) sms
      |> snd
    in
    match Simplex.maximize ~nvars ~objective !constraints with
    | Simplex.Optimal sol ->
        List.mapi
          (fun i sm ->
            let res =
              Array.init nres (fun r ->
                  Float.max 0. sol.values.(res_base i + r))
            in
            let branch = List.nth sm.sm_seed.branches sm.sm_branch in
            (sm.sm_seed.seed_id, res, Analysis.eval_utility branch res))
          sms
    | Simplex.Infeasible | Simplex.Unbounded ->
        (* fall back to the minimal allocations *)
        List.map
          (fun sm -> (sm.sm_seed.seed_id, sm.sm_res, sm.sm_util))
          sms
  end

(* ------------------------------------------------------------------ *)
(* Main                                                                 *)
(* ------------------------------------------------------------------ *)

let optimize ?(phases = all_phases) (inst : Model.instance) =
  let t0 = Unix.gettimeofday () in
  let prev_of =
    let tbl = Hashtbl.create 64 in
    List.iter
      (fun (a : Model.assignment) -> Hashtbl.replace tbl a.a_seed a.a_node)
      inst.previous;
    fun id -> Hashtbl.find_opt tbl id
  in
  (* switch states *)
  let states = Hashtbl.create 64 in
  List.iter
    (fun (c : Model.switch_caps) ->
      Hashtbl.replace states c.node
        { sw_caps = c; remaining = Array.copy c.avail; subj_demand = [];
          pcie_used = 0.; resident = [] })
    inst.switches;
  let state_of node = Hashtbl.find states node in
  (* 1. per-seed minimal allocations, tasks sorted by decreasing minimum
     utility *)
  let task_list =
    Model.tasks inst
    |> List.filter_map (fun (t, seeds) ->
           let sms = List.map seed_min_of seeds in
           if List.exists Option.is_none sms then None  (* infeasible task *)
           else
             let sms = List.filter_map Fun.id sms in
             let min_u = List.fold_left (fun a sm -> a +. sm.sm_util) 0. sms in
             Some (t, min_u, sms))
    |> List.sort (fun (_, a, _) (_, b, _) -> Float.compare b a)
  in
  let dropped = ref ((List.length (Model.tasks inst)) - List.length task_list) in
  (* 2. greedy placement *)
  let placements : (int, seed_min * int) Hashtbl.t = Hashtbl.create 256 in
  let place_task (_t, _u, sms) =
    (* order seeds within the task by decreasing utility: highest
       contribution first ("choose s that adds the most") *)
    let sms =
      List.sort (fun a b -> Float.compare b.sm_util a.sm_util) sms
    in
    let committed = ref [] in
    let ok =
      List.for_all
        (fun sm ->
          (* candidate order: previous location first (avoid unnecessary
             migration), then best aggregation saving, then most spare CPU *)
          let scored =
            List.filter_map
              (fun node ->
                match Hashtbl.find_opt states node with
                | None -> None
                | Some st ->
                    if fits st inst sm then begin
                      let prev_bonus =
                        if prev_of sm.sm_seed.seed_id = Some node then 1e9
                        else 0.
                      in
                      let agg_saving =
                        (* demand avoided thanks to subjects already polled *)
                        let raw =
                          List.fold_left
                            (fun acc (_, d) -> acc +. d)
                            0.
                            (poll_demands inst sm.sm_seed sm.sm_res)
                        in
                        raw
                        -. pcie_increment st
                             (poll_demands inst sm.sm_seed sm.sm_res)
                      in
                      let spare = st.remaining.(0) in
                      Some (node, prev_bonus +. (agg_saving *. 1e3) +. spare)
                    end
                    else None)
              sm.sm_seed.candidates
          in
          match
            List.sort (fun (_, a) (_, b) -> Float.compare b a) scored
          with
          | [] -> false
          | (node, _) :: _ ->
              let st = state_of node in
              commit st inst sm;
              committed := (sm, node) :: !committed;
              true)
        sms
    in
    if ok then
      List.iter
        (fun (sm, node) -> Hashtbl.replace placements sm.sm_seed.seed_id (sm, node))
        !committed
    else begin
      (* C1: roll the whole task back *)
      List.iter (fun (sm, node) -> uncommit (state_of node) inst sm) !committed;
      incr dropped
    end
  in
  List.iter place_task task_list;
  (* assignments at minimal allocation *)
  let assignment_of sm node res =
    { Model.a_seed = sm.sm_seed.seed_id; a_node = node;
      a_branch = sm.sm_branch; a_res = res }
  in
  let current () =
    Hashtbl.fold (fun _ (sm, node) acc -> (sm, node) :: acc) placements []
    |> List.sort (fun ((a : seed_min), _) ((b : seed_min), _) ->
           Int.compare a.sm_seed.seed_id b.sm_seed.seed_id)
  in
  (* 3. redistribute resources switch by switch *)
  let redistribute () =
    let by_node = Hashtbl.create 64 in
    List.iter
      (fun (sm, node) ->
        let cur = Option.value (Hashtbl.find_opt by_node node) ~default:[] in
        Hashtbl.replace by_node node (sm :: cur))
      (current ());
    let nodes =
      Hashtbl.fold (fun node _ acc -> node :: acc) by_node []
      |> List.sort Int.compare
    in
    List.fold_left
      (fun acc node ->
        let sms = Hashtbl.find by_node node in
        let cap = (state_of node).sw_caps in
        let results = redistribute_switch inst sms cap in
        List.fold_left
          (fun acc (seed_id, res, _) ->
            let sm, _ = Hashtbl.find placements seed_id in
            assignment_of sm node res :: acc)
          acc results)
      [] nodes
  in
  let assignments =
    if phases.redistribute then redistribute ()
    else List.map (fun (sm, node) -> assignment_of sm node sm.sm_res) (current ())
  in
  (* 4.-5. migration by decreasing benefit (estimate via spare capacity) *)
  let migrations = ref 0 in
  let assignments =
    if not phases.migrate then assignments
    else begin
      (* benefit estimate: utility the seed could reach on another
         candidate given that switch's spare capacity, minus its current
         utility *)
      let util_of = Hashtbl.create 256 in
      List.iter
        (fun (a : Model.assignment) ->
          let sm, _ = Hashtbl.find placements a.a_seed in
          let b = List.nth sm.sm_seed.branches a.a_branch in
          Hashtbl.replace util_of a.a_seed (Analysis.eval_utility b a.a_res))
        assignments;
      let candidates_gain =
        List.filter_map
          (fun (a : Model.assignment) ->
            let sm, cur_node = Hashtbl.find placements a.a_seed in
            let cur_u =
              Option.value (Hashtbl.find_opt util_of a.a_seed) ~default:0.
            in
            let best =
              List.filter_map
                (fun node ->
                  if node = cur_node then None
                  else
                    match Hashtbl.find_opt states node with
                    | None -> None
                    | Some st ->
                        if not (fits st inst sm) then None
                        else begin
                          (* reachable utility: min alloc plus all spare *)
                          let reach =
                            Array.init nres (fun r ->
                                if r = pcie then
                                  Float.max sm.sm_res.(r)
                                    (st.sw_caps.avail.(r) -. st.pcie_used)
                                else sm.sm_res.(r) +. st.remaining.(r))
                          in
                          let b = List.nth sm.sm_seed.branches sm.sm_branch in
                          let u = Analysis.eval_utility b reach in
                          if u > cur_u +. 1e-9 then Some (node, u -. cur_u)
                          else None
                        end)
                sm.sm_seed.candidates
            in
            match
              List.sort (fun (_, a) (_, b) -> Float.compare b a) best
            with
            | [] -> None
            | (node, gain) :: _ -> Some (a.a_seed, node, gain))
          assignments
        |> List.sort (fun (_, _, a) (_, _, b) -> Float.compare b a)
      in
      List.iter
        (fun (seed_id, node, _gain) ->
          let sm, cur_node = Hashtbl.find placements seed_id in
          let st = state_of node in
          if fits st inst sm then begin
            uncommit (state_of cur_node) inst sm;
            commit st inst sm;
            Hashtbl.replace placements seed_id (sm, node);
            incr migrations
          end)
        candidates_gain;
      if !migrations > 0 && phases.redistribute then redistribute ()
      else if !migrations > 0 then
        List.map
          (fun (sm, node) -> assignment_of sm node sm.sm_res)
          (current ())
      else assignments
    end
  in
  let utility = Model.total_utility inst assignments in
  ( { Model.assignments; utility },
    { placed_seeds = List.length assignments; dropped_tasks = !dropped;
      migrations = !migrations; runtime_s = Unix.gettimeofday () -. t0 } )

(* ------------------------------------------------------------------ *)
(* Incremental re-optimization                                         *)
(* ------------------------------------------------------------------ *)

let optimize_incremental ?(phases = all_phases) (inst : Model.instance)
    ~affected =
  let is_affected id = List.mem id affected in
  let prev_of =
    let tbl = Hashtbl.create 64 in
    List.iter
      (fun (a : Model.assignment) -> Hashtbl.replace tbl a.a_seed a.a_node)
      inst.previous;
    fun id -> Hashtbl.find_opt tbl id
  in
  let live node =
    List.exists (fun (c : Model.switch_caps) -> c.node = node) inst.switches
  in
  (* Pin every unaffected seed with a live previous location to that
     location; affected seeds (orphans of a failed switch, new arrivals)
     keep their full candidate sets.  Seeds whose previous site vanished
     are affected by definition. *)
  let pinned =
    { inst with
      seeds =
        List.map
          (fun (s : Model.seed_spec) ->
            match prev_of s.seed_id with
            | Some node
              when (not (is_affected s.seed_id))
                   && live node
                   && List.mem node s.candidates ->
                { s with candidates = [ node ] }
            | _ -> s)
          inst.seeds }
  in
  let placement, stats = optimize ~phases pinned in
  (* Pinning shrinks the solution space: if a task that the previous
     placement carried would now be dropped only because unaffected seeds
     cannot move, fall back to a full re-optimization (correctness beats
     incrementality). *)
  let placed_task tid (p : Model.placement) =
    List.exists
      (fun (a : Model.assignment) ->
        match
          List.find_opt
            (fun (s : Model.seed_spec) -> s.seed_id = a.a_seed)
            inst.seeds
        with
        | Some s -> s.task_id = tid
        | None -> false)
      p.assignments
  in
  let previously_placed tid =
    List.exists
      (fun (a : Model.assignment) ->
        match
          List.find_opt
            (fun (s : Model.seed_spec) -> s.seed_id = a.a_seed)
            inst.seeds
        with
        | Some s -> s.task_id = tid
        | None -> false)
      inst.previous
  in
  let regression =
    List.exists
      (fun (tid, _) -> previously_placed tid && not (placed_task tid placement))
      (Model.tasks inst)
  in
  if regression then optimize ~phases inst else (placement, stats)

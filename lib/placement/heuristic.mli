(** FARM's seed-placement heuristic (paper Alg. 1).

    1. Sort tasks by decreasing minimum utility.
    2. Greedily place each task's seeds at their minimal feasible
       allocation, preferring the current location of already-placed seeds
       (no unnecessary migration) and switches where polling aggregation
       makes the seed cheaper; a task that cannot be fully placed is
       removed (C1).
    3. Redistribute spare resources with one small LP per switch.
    4. Compute per-seed migration benefits and
    5. apply migrations in decreasing benefit order, then redistribute
       again.

    Phases 3–5 can be disabled individually for ablation studies. *)

type phases = { redistribute : bool; migrate : bool }

val all_phases : phases
val greedy_only : phases

type stats = {
  placed_seeds : int;
  dropped_tasks : int;  (** tasks removed because a seed did not fit *)
  migrations : int;
  runtime_s : float;
}

val optimize : ?phases:phases -> Model.instance -> Model.placement * stats

(** Incremental re-optimization after a localized change (a switch
    failure, one task arriving): only the [affected] seed ids are
    re-decided; every other seed with a live previous location is pinned
    there, so the pass costs one greedy placement over a mostly-fixed
    instance and never migrates unaffected seeds.  Falls back to a full
    {!optimize} if pinning would drop a task the previous placement
    carried. *)
val optimize_incremental :
  ?phases:phases ->
  Model.instance ->
  affected:int list ->
  Model.placement * stats

module Engine = Farm_sim.Engine
module Fault = Farm_sim.Fault
module Fabric = Farm_net.Fabric
module Topology = Farm_net.Topology
module Switch_model = Farm_net.Switch_model

let soil_opt seeder node =
  if List.exists (fun s -> Soil.node_id s = node) (Seeder.soils seeder) then
    Some (Seeder.soil seeder node)
  else None

let handlers seeder =
  let fabric = Seeder.fabric seeder in
  let topo = Fabric.topology fabric in
  let engine = Seeder.engine seeder in
  let with_soil node f = match soil_opt seeder node with
    | Some s -> f s
    | None -> ()
  in
  let is_switch node =
    List.mem node (Topology.switch_ids topo)
  in
  (* active traffic surges by (canonical) link; a switch's multiplier is
     the product over the surged links it terminates, so overlapping
     surges compose and each calm unwinds exactly its own contribution *)
  let link_surges : (int * int, float) Hashtbl.t = Hashtbl.create 8 in
  let canon (a, b) = if a <= b then (a, b) else (b, a) in
  let switch_factor node =
    let hits =
      Hashtbl.fold
        (fun (a, b) f l -> if a = node || b = node then (a, b, f) :: l else l)
        link_surges []
      |> List.sort compare
    in
    List.fold_left (fun acc (_, _, f) -> acc *. f) 1. hits
  in
  let refresh_surge links =
    List.concat_map (fun (a, b) -> [ a; b ]) links
    |> List.sort_uniq Int.compare
    |> List.iter (fun node ->
           if is_switch node then
             with_soil node (fun s ->
                 Switch_model.set_surge (Soil.switch s)
                   ~time:(Engine.now engine) (switch_factor node)))
  in
  {
    (* with the self-healing layer on, switch events are ground-truth
       crashes the control plane must *discover* (heartbeats, detector);
       without it they take the legacy omniscient fail/recover path *)
    Fault.on_switch_down =
      (fun node ->
        if is_switch node then
          if Seeder.healing_enabled seeder then Seeder.crash_switch seeder node
          else Seeder.fail_switch seeder node);
    on_switch_up =
      (fun node ->
        if is_switch node then
          if Seeder.healing_enabled seeder then Seeder.revive_switch seeder node
          else Seeder.recover_switch seeder node);
    on_link_down =
      (fun a b ->
        if Topology.has_link topo a b then
          Fabric.set_link_state fabric ~time:(Engine.now engine) a b ~up:false);
    on_link_up =
      (fun a b ->
        if Topology.has_link topo a b then
          Fabric.set_link_state fabric ~time:(Engine.now engine) a b ~up:true);
    on_ctrl_degrade =
      (fun ~loss ~delay ~dup ->
        Seeder.set_ctrl_faults seeder { Seeder.loss; delay; dup });
    on_ctrl_restore =
      (fun () -> Seeder.set_ctrl_faults seeder Seeder.perfect_ctrl);
    on_counter_freeze = (fun node -> with_soil node (fun s -> Soil.set_frozen s true));
    on_counter_thaw = (fun node -> with_soil node (fun s -> Soil.set_frozen s false));
    on_counter_glitch = (fun node -> with_soil node (fun s -> Soil.glitch s));
    (* overload faults *)
    on_traffic_surge =
      (fun ~links ~factor ->
        let links =
          List.filter (fun (a, b) -> Topology.has_link topo a b) links
        in
        List.iter (fun l -> Hashtbl.replace link_surges (canon l) factor) links;
        refresh_surge links);
    on_traffic_calm =
      (fun ~links ->
        let links =
          List.filter (fun (a, b) -> Topology.has_link topo a b) links
        in
        List.iter (fun l -> Hashtbl.remove link_surges (canon l)) links;
        refresh_surge links);
    on_report_storm =
      (fun ~node ~reports ->
        if is_switch node then
          Seeder.inject_report_storm seeder ~node ~reports);
    on_pcie_degrade =
      (fun ~node ~factor ->
        with_soil node (fun s -> Soil.set_pcie_factor s factor));
    on_pcie_restore =
      (fun node -> with_soil node (fun s -> Soil.set_pcie_factor s 1.));
  }

let inject ?on_applied seeder plan =
  Fault.inject ?on_applied (Seeder.engine seeder) (handlers seeder) plan

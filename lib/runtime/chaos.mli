(** Standard wiring of [Farm_sim.Fault] plans onto a running FARM stack:
    switch crashes/recoveries hit the {!Seeder}, link flaps hit the
    {!Farm_net.Fabric} (rerouting flows), control-plane degradation hits the
    seeder's message path, and counter faults hit the per-switch {!Soil}.
    Events naming unknown switches or links are ignored, so randomly
    generated plans can be applied to any topology.

    Switch events depend on the seeder's healing mode: with [auto_heal]
    they become {e silent} ground-truth crashes/reboots
    ([Seeder.crash_switch]/[revive_switch]) that the control plane must
    discover through missing heartbeats; without it they take the legacy
    omniscient [fail_switch]/[recover_switch] path, which keeps pre-healing
    runs byte-identical. *)

val handlers : Seeder.t -> Farm_sim.Fault.handlers

(** [inject seeder plan] schedules the plan on the seeder's engine with
    {!handlers}.  [on_applied] runs right after each event takes effect —
    the chaos suite checks its invariants there. *)
val inject :
  ?on_applied:(float -> Farm_sim.Fault.event -> unit) ->
  Seeder.t ->
  Farm_sim.Fault.plan ->
  unit

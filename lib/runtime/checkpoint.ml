module Value = Farm_almanac.Value
module Xml = Farm_almanac.Xml
module Filter = Farm_net.Filter
module Tcam = Farm_net.Tcam
module Flow = Farm_net.Flow
module Ipaddr = Farm_net.Ipaddr

exception Decode_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Decode_error s)) fmt

(* Floats travel as hex literals ("%h") so decode (encode v) is exact —
   counters restored from a checkpoint must be bit-identical for replay
   determinism. *)
let float_attr f = Printf.sprintf "%h" f

let float_of_attr s =
  match float_of_string_opt s with
  | Some f -> f
  | None -> fail "bad float %S" s

let int_of_attr s =
  match int_of_string_opt s with
  | Some i -> i
  | None -> fail "bad int %S" s

let bool_attr b = if b then "1" else "0"

let bool_of_attr = function
  | "1" -> true
  | "0" -> false
  | s -> fail "bad bool %S" s

(* ------------------------------------------------------------------ *)
(* Filters                                                             *)
(* ------------------------------------------------------------------ *)

let proto_attr = function
  | Flow.Tcp -> "tcp"
  | Flow.Udp -> "udp"
  | Flow.Icmp -> "icmp"

let proto_of_attr = function
  | "tcp" -> Flow.Tcp
  | "udp" -> Flow.Udp
  | "icmp" -> Flow.Icmp
  | s -> fail "bad proto %S" s

let atom_to_xml (a : Filter.atom) =
  let leaf ?v name =
    Xml.element ~attrs:(match v with Some v -> [ ("v", v) ] | None -> []) name
      []
  in
  match a with
  | Filter.Src_ip p -> leaf ~v:(Ipaddr.Prefix.to_string p) "srcip"
  | Filter.Dst_ip p -> leaf ~v:(Ipaddr.Prefix.to_string p) "dstip"
  | Filter.Src_port p -> leaf ~v:(string_of_int p) "srcport"
  | Filter.Dst_port p -> leaf ~v:(string_of_int p) "dstport"
  | Filter.Port p -> leaf ~v:(string_of_int p) "port"
  | Filter.Proto p -> leaf ~v:(proto_attr p) "proto"
  | Filter.Any -> leaf "anyatom"

let atom_of_xml x =
  let v () = Xml.attr_exn x "v" in
  let prefix () =
    match Ipaddr.Prefix.of_string_opt (v ()) with
    | Some p -> p
    | None -> fail "bad prefix %S" (v ())
  in
  match Xml.name x with
  | "srcip" -> Filter.Src_ip (prefix ())
  | "dstip" -> Filter.Dst_ip (prefix ())
  | "srcport" -> Filter.Src_port (int_of_attr (v ()))
  | "dstport" -> Filter.Dst_port (int_of_attr (v ()))
  | "port" -> Filter.Port (int_of_attr (v ()))
  | "proto" -> Filter.Proto (proto_of_attr (v ()))
  | "anyatom" -> Filter.Any
  | n -> fail "unknown filter atom <%s>" n

let rec filter_to_xml (f : Filter.t) =
  match f with
  | Filter.True -> Xml.element "t" []
  | Filter.False -> Xml.element "f" []
  | Filter.Atom a -> atom_to_xml a
  | Filter.And (a, b) -> Xml.element "and" [ filter_to_xml a; filter_to_xml b ]
  | Filter.Or (a, b) -> Xml.element "or" [ filter_to_xml a; filter_to_xml b ]
  | Filter.Not a -> Xml.element "not" [ filter_to_xml a ]

let rec filter_of_xml x =
  let two () =
    match Xml.children x with
    | [ a; b ] -> (filter_of_xml a, filter_of_xml b)
    | l -> fail "<%s> wants 2 children, got %d" (Xml.name x) (List.length l)
  in
  match Xml.name x with
  | "t" -> Filter.True
  | "f" -> Filter.False
  | "and" ->
      let a, b = two () in
      Filter.And (a, b)
  | "or" ->
      let a, b = two () in
      Filter.Or (a, b)
  | "not" -> (
      match Xml.children x with
      | [ a ] -> Filter.Not (filter_of_xml a)
      | _ -> fail "<not> wants 1 child")
  | _ -> Filter.Atom (atom_of_xml x)

(* ------------------------------------------------------------------ *)
(* Values                                                              *)
(* ------------------------------------------------------------------ *)

let action_to_xml (a : Tcam.action) =
  let mk kind arg =
    Xml.element
      ~attrs:
        (("kind", kind) :: (match arg with Some v -> [ ("arg", v) ] | None -> []))
      "action" []
  in
  match a with
  | Tcam.Forward p -> mk "forward" (Some (string_of_int p))
  | Tcam.Drop -> mk "drop" None
  | Tcam.Rate_limit r -> mk "ratelimit" (Some (float_attr r))
  | Tcam.Set_qos q -> mk "setqos" (Some (string_of_int q))
  | Tcam.Mirror -> mk "mirror" None
  | Tcam.Count -> mk "count" None

let action_of_xml x =
  let arg () = Xml.attr_exn x "arg" in
  match Xml.attr_exn x "kind" with
  | "forward" -> Tcam.Forward (int_of_attr (arg ()))
  | "drop" -> Tcam.Drop
  | "ratelimit" -> Tcam.Rate_limit (float_of_attr (arg ()))
  | "setqos" -> Tcam.Set_qos (int_of_attr (arg ()))
  | "mirror" -> Tcam.Mirror
  | "count" -> Tcam.Count
  | k -> fail "unknown action kind %S" k

let packet_to_xml (p : Flow.packet) =
  Xml.element
    ~attrs:
      [ ("src", Ipaddr.to_string p.tuple.src);
        ("dst", Ipaddr.to_string p.tuple.dst);
        ("sport", string_of_int p.tuple.sport);
        ("dport", string_of_int p.tuple.dport);
        ("proto", proto_attr p.tuple.proto);
        ("size", string_of_int p.size);
        ("syn", bool_attr p.flags.syn);
        ("ack", bool_attr p.flags.ack);
        ("fin", bool_attr p.flags.fin);
        ("rst", bool_attr p.flags.rst);
        ("payload", p.payload) ]
    "packet" []

let packet_of_xml x : Flow.packet =
  let a k = Xml.attr_exn x k in
  let addr k =
    match Ipaddr.of_string_opt (a k) with
    | Some ip -> ip
    | None -> fail "bad address %S" (a k)
  in
  { tuple =
      { src = addr "src"; dst = addr "dst"; sport = int_of_attr (a "sport");
        dport = int_of_attr (a "dport"); proto = proto_of_attr (a "proto") };
    size = int_of_attr (a "size");
    flags =
      { syn = bool_of_attr (a "syn"); ack = bool_of_attr (a "ack");
        fin = bool_of_attr (a "fin"); rst = bool_of_attr (a "rst") };
    payload = a "payload" }

let rec value_to_xml (v : Value.t) =
  match v with
  | Value.Unit -> Xml.element "unit" []
  | Value.Bool b -> Xml.element ~attrs:[ ("v", bool_attr b) ] "bool" []
  | Value.Num n -> Xml.element ~attrs:[ ("v", float_attr n) ] "num" []
  | Value.Str s -> Xml.element ~attrs:[ ("v", s) ] "str" []
  | Value.List l -> Xml.element "list" (List.map value_to_xml l)
  | Value.Packet p -> packet_to_xml p
  | Value.Action a -> action_to_xml a
  | Value.FilterV f -> Xml.element "filter" [ filter_to_xml f ]
  | Value.Stats arr ->
      Xml.element
        ~attrs:
          [ ("v",
             String.concat " " (Array.to_list (Array.map float_attr arr))) ]
        "stats" []
  | Value.Struct (name, fields) ->
      Xml.element
        ~attrs:[ ("name", name) ]
        "struct"
        (List.map
           (fun (k, v) ->
             Xml.element ~attrs:[ ("name", k) ] "field" [ value_to_xml v ])
           fields)

let rec value_of_xml x : Value.t =
  match Xml.name x with
  | "unit" -> Value.Unit
  | "bool" -> Value.Bool (bool_of_attr (Xml.attr_exn x "v"))
  | "num" -> Value.Num (float_of_attr (Xml.attr_exn x "v"))
  | "str" -> Value.Str (Xml.attr_exn x "v")
  | "list" -> Value.List (List.map value_of_xml (Xml.children x))
  | "packet" -> Value.Packet (packet_of_xml x)
  | "action" -> Value.Action (action_of_xml x)
  | "filter" -> (
      match Xml.children x with
      | [ f ] -> Value.FilterV (filter_of_xml f)
      | _ -> fail "<filter> wants 1 child")
  | "stats" ->
      let s = Xml.attr_exn x "v" in
      let parts =
        if s = "" then []
        else String.split_on_char ' ' s |> List.filter (fun p -> p <> "")
      in
      Value.Stats (Array.of_list (List.map float_of_attr parts))
  | "struct" ->
      Value.Struct
        ( Xml.attr_exn x "name",
          List.map
            (fun f ->
              match Xml.children f with
              | [ v ] -> (Xml.attr_exn f "name", value_of_xml v)
              | _ -> fail "<field> wants 1 child")
            (Xml.select x "field") )
  | n -> fail "unknown value element <%s>" n

(* ------------------------------------------------------------------ *)
(* Checkpoints                                                         *)
(* ------------------------------------------------------------------ *)

type t = {
  ck_seed : int;
  ck_epoch : int;
  ck_seq : int;
  ck_full : bool;
  ck_vars : (string * Value.t) list;
  ck_removed : string list;
  ck_state : string;
}

let to_xml ck =
  Xml.element
    ~attrs:
      [ ("seed", string_of_int ck.ck_seed);
        ("epoch", string_of_int ck.ck_epoch);
        ("seq", string_of_int ck.ck_seq);
        ("full", bool_attr ck.ck_full);
        ("state", ck.ck_state) ]
    "checkpoint"
    [ Xml.element "vars"
        (List.map
           (fun (k, v) ->
             Xml.element ~attrs:[ ("name", k) ] "var" [ value_to_xml v ])
           ck.ck_vars);
      Xml.element "removed"
        (List.map
           (fun n -> Xml.element ~attrs:[ ("n", n) ] "r" [])
           ck.ck_removed) ]

let of_xml x =
  if Xml.name x <> "checkpoint" then fail "expected <checkpoint>";
  let vars =
    match Xml.first x "vars" with
    | None -> fail "<checkpoint> missing <vars>"
    | Some vs ->
        List.map
          (fun v ->
            match Xml.children v with
            | [ value ] -> (Xml.attr_exn v "name", value_of_xml value)
            | _ -> fail "<var> wants 1 child")
          (Xml.select vs "var")
  in
  let removed =
    match Xml.first x "removed" with
    | None -> []
    | Some rs -> List.map (fun r -> Xml.attr_exn r "n") (Xml.select rs "r")
  in
  { ck_seed = int_of_attr (Xml.attr_exn x "seed");
    ck_epoch = int_of_attr (Xml.attr_exn x "epoch");
    ck_seq = int_of_attr (Xml.attr_exn x "seq");
    ck_full = bool_of_attr (Xml.attr_exn x "full");
    ck_vars = vars; ck_removed = removed;
    ck_state = Xml.attr_exn x "state" }

let encode ck = Xml.to_string ~indent:false (to_xml ck)
let decode s = of_xml (Xml.parse s)
let wire_bytes ck = float_of_int (String.length (encode ck))

let delta ~base vars =
  let changed =
    List.filter
      (fun (k, v) ->
        match List.assoc_opt k base with
        | Some v0 -> not (Value.equal v0 v)
        | None -> true)
      vars
  in
  let removed =
    List.filter_map
      (fun (k, _) -> if List.mem_assoc k vars then None else Some k)
      base
  in
  (changed, removed)

let apply ~base ck =
  if ck.ck_full then ck.ck_vars
  else
    let kept =
      List.filter_map
        (fun (k, v) ->
          if List.mem k ck.ck_removed then None
          else
            match List.assoc_opt k ck.ck_vars with
            | Some v' -> Some (k, v')
            | None -> Some (k, v))
        base
    in
    let fresh =
      List.filter (fun (k, _) -> not (List.mem_assoc k base)) ck.ck_vars
    in
    kept @ fresh

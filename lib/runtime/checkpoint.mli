(** Seed-state checkpoints: the wire format of the self-healing layer.

    A running seed's machine state — the [(vars, state)] pair produced by
    [Seed_exec.snapshot] — is serialized to XML (the same interchange
    family as the §V-A d seed format) and shipped to the seeder over the
    control channel.  Checkpoints are {e deltas}: only variables that
    changed since the previously shipped checkpoint are included (plus the
    names of variables that disappeared), so steady-state seeds cost a few
    bytes per interval.  Every [full_every]-th checkpoint is a full
    snapshot, which lets the seeder resynchronize after a lost delta
    (deltas merge only when contiguous).

    The codec is a complete structural serialization of {!Value.t}:
    [decode (encode c) = c] for every checkpoint, including packets,
    filters, TCAM actions and nested structs. *)

module Value := Farm_almanac.Value

(** {2 Value codec} *)

val value_to_xml : Value.t -> Farm_almanac.Xml.t

(** Raises {!Decode_error} on malformed input. *)
val value_of_xml : Farm_almanac.Xml.t -> Value.t

exception Decode_error of string

(** {2 Checkpoints} *)

type t = {
  ck_seed : int;  (** seed id *)
  ck_epoch : int;  (** instance epoch the state belongs to *)
  ck_seq : int;  (** per-epoch checkpoint sequence number, from 0 *)
  ck_full : bool;  (** full snapshot (vs delta against [ck_seq - 1]) *)
  ck_vars : (string * Value.t) list;  (** changed/new bindings *)
  ck_removed : string list;  (** bindings gone since the previous one *)
  ck_state : string;  (** current machine state *)
}

val encode : t -> string

(** Raises {!Decode_error} (or [Xml.Parse_error]) on malformed input. *)
val decode : string -> t

(** Bytes the encoded checkpoint occupies on the control channel. *)
val wire_bytes : t -> float

(** [delta ~base vars] = (changed-or-new bindings, removed names) of
    [vars] relative to [base].  Binding order follows [vars]/[base]. *)
val delta :
  base:(string * Value.t) list ->
  (string * Value.t) list ->
  (string * Value.t) list * string list

(** [apply ~base ck] merges a delta (or replaces, for a full checkpoint)
    into the accumulated variable map. *)
val apply :
  base:(string * Value.t) list -> t -> (string * Value.t) list

module Value = Farm_almanac.Value

type ctx = {
  send_to_seed : switch:int -> Value.t -> unit;
  broadcast : Value.t -> unit;
  now : unit -> float;
  log : string -> unit;
}

type spec = {
  on_start : ctx -> unit;
  on_message : ctx -> from_switch:int -> Value.t -> unit;
}

let collector_spec =
  { on_start = (fun _ -> ()); on_message = (fun _ ~from_switch:_ _ -> ()) }

type provenance = { p_seed : int; p_epoch : int; p_seq : int }

(* Bounded inbox (overload protection, off by default): at most
   [max_reports] admitted per rolling [window], split fairly across the
   reporting seeds; a seed over its share is shed first. *)
type overload_config = { window : float; max_reports : int }

let default_overload = { window = 0.1; max_reports = 64 }

type t = {
  spec : spec;
  ctx : ctx;
  mutable log : (float * int * Value.t) list;
  (* epoch fencing: per seed, the minimum epoch whose reports are valid.
     The seeder raises the fence whenever it (re)instantiates a seed, so a
     zombie instance left behind by a false failure detection — or a
     message still in flight from before a migration — cannot corrupt task
     state. *)
  fences : (int, int) Hashtbl.t;
  seen : (int, Ipc.Dedup.t) Hashtbl.t;  (* per-seed seqs of the fence epoch *)
  mutable prov_log : (float * provenance) list;  (* accepted, newest first *)
  mutable n_received : int;  (* = List.length log, kept O(1) *)
  mutable stale_dropped : int;
  mutable dup_dropped : int;
  mutable tracer : Farm_sim.Trace.t option;  (* wired by the seeder *)
  (* overload protection; [n_offered] is always counted (a plain int, so
     disabled runs stay byte-identical) *)
  mutable ov : overload_config option;
  mutable ov_window_start : float;
  ov_counts : (int, int) Hashtbl.t;  (* per-seed admits this window *)
  mutable n_offered : int;
  mutable n_shed : int;
}

let create spec ctx =
  { spec; ctx; log = []; fences = Hashtbl.create 16; seen = Hashtbl.create 16;
    prov_log = []; n_received = 0; stale_dropped = 0; dup_dropped = 0;
    tracer = None; ov = None; ov_window_start = 0.;
    ov_counts = Hashtbl.create 16; n_offered = 0; n_shed = 0 }

let set_tracer t tr = t.tracer <- tr

let set_overload t cfg =
  t.ov <- cfg;
  t.ov_window_start <- t.ctx.now ();
  Hashtbl.reset t.ov_counts

let overload t = t.ov

let metrics_register t reg ~prefix =
  let g name f =
    Farm_sim.Metrics.Registry.gauge_fn reg (prefix ^ name)
      (fun () -> float_of_int (f ()))
  in
  g "received" (fun () -> t.n_received);
  g "stale_dropped" (fun () -> t.stale_dropped);
  g "dup_dropped" (fun () -> t.dup_dropped);
  (* only an overload-enabled deployment registers its shed metrics, so
     default runs publish exactly the pre-overload registry *)
  match t.ov with
  | None -> ()
  | Some _ ->
      g "offered" (fun () -> t.n_offered);
      g "shed" (fun () -> t.n_shed)

let start t = t.spec.on_start t.ctx

let fence t ~seed_id ~epoch =
  let cur = Option.value (Hashtbl.find_opt t.fences seed_id) ~default:(-1) in
  if epoch > cur then begin
    Hashtbl.replace t.fences seed_id epoch;
    Hashtbl.replace t.seen seed_id (Ipc.Dedup.create ())
  end

let fence_epoch t ~seed_id = Hashtbl.find_opt t.fences seed_id

(* Admission control: drop stale-epoch reports, dedup (seed, epoch, seq).
   Reports from an epoch *newer* than the fence are accepted and raise the
   fence — the instantiate-side fence call and the first report race over
   the control channel, and both orders must converge. *)
let admit t p =
  let cur = Option.value (Hashtbl.find_opt t.fences p.p_seed) ~default:(-1) in
  if p.p_epoch < cur then begin
    t.stale_dropped <- t.stale_dropped + 1;
    false
  end
  else begin
    if p.p_epoch > cur then fence t ~seed_id:p.p_seed ~epoch:p.p_epoch;
    let dedup =
      match Hashtbl.find_opt t.seen p.p_seed with
      | Some d -> d
      | None ->
          let d = Ipc.Dedup.create () in
          Hashtbl.replace t.seen p.p_seed d;
          d
    in
    if Ipc.Dedup.register dedup p.p_seq then true
    else begin
      t.dup_dropped <- t.dup_dropped + 1;
      false
    end
  end

(* Fair-share inbox shedding: a fresh (non-stale, non-dup) report is shed
   when its seed has used up its slice of this window's budget.  Purely a
   function of (sim time, admitted history) — deterministic. *)
let shed_check t p =
  match t.ov with
  | None -> false
  | Some ov ->
      let now = t.ctx.now () in
      if now -. t.ov_window_start >= ov.window then begin
        t.ov_window_start <- now;
        Hashtbl.reset t.ov_counts
      end;
      let seeds = max 1 (Hashtbl.length t.fences) in
      let share = max 1 (ov.max_reports / seeds) in
      let used =
        Option.value (Hashtbl.find_opt t.ov_counts p.p_seed) ~default:0
      in
      if used >= share then begin
        t.n_shed <- t.n_shed + 1;
        true
      end
      else begin
        Hashtbl.replace t.ov_counts p.p_seed (used + 1);
        false
      end

let handle ?provenance t ~from_switch v =
  t.n_offered <- t.n_offered + 1;
  let accept = match provenance with None -> true | Some p -> admit t p in
  let shed =
    accept
    && match provenance with Some p -> shed_check t p | None -> false
  in
  let accept = accept && not shed in
  (match t.tracer with
  | None -> ()
  | Some tr ->
      let module Trace = Farm_sim.Trace in
      Trace.instant0 tr ~ts:(t.ctx.now ())
        ~cat:(Trace.intern tr "harvester")
        ~name:
          (Trace.intern tr
             (if shed then "report_shed"
              else if accept then "report"
              else "report_dropped"))
        ~tid:from_switch)
  ;
  if accept then begin
    (match provenance with
    | Some p -> t.prov_log <- (t.ctx.now (), p) :: t.prov_log
    | None -> ());
    t.log <- (t.ctx.now (), from_switch, v) :: t.log;
    t.n_received <- t.n_received + 1;
    t.spec.on_message t.ctx ~from_switch v
  end

let received t = t.log
let received_count t = t.n_received
let accepted_provenance t = t.prov_log
let stale_dropped t = t.stale_dropped
let dup_dropped t = t.dup_dropped
let offered_count t = t.n_offered
let shed_count t = t.n_shed

(** Per-task centralized component (§II-C a): collects data from the
    task's seeds and takes global actions when seed-local decisions are
    insufficient.  Harvester logic is host code (a callback), matching the
    paper's Python harvesters. *)

module Value := Farm_almanac.Value

(** Capabilities handed to harvester logic. *)
type ctx = {
  send_to_seed : switch:int -> Value.t -> unit;
      (** deliver to the task's seed on one switch *)
  broadcast : Value.t -> unit;  (** deliver to every seed of the task *)
  now : unit -> float;
  log : string -> unit;
}

type spec = {
  on_start : ctx -> unit;
  on_message : ctx -> from_switch:int -> Value.t -> unit;
}

(** A harvester that only records messages. *)
val collector_spec : spec

type t

val create : spec -> ctx -> t
val start : t -> unit

(** Attach (or detach) a trace sink: every inbound report then emits an
    instant event (category ["harvester"], accepted or dropped).  Wired
    by the seeder from [Engine.tracer] at deploy time. *)
val set_tracer : t -> Farm_sim.Trace.t option -> unit

(** Publish this harvester's accounting (received / stale_dropped /
    dup_dropped, plus offered / shed when overload protection is on) as
    callback gauges under [prefix] in [reg]. *)
val metrics_register :
  t -> Farm_sim.Metrics.Registry.t -> prefix:string -> unit

(** {2 Bounded inbox (overload protection)} *)

(** At most [max_reports] reports admitted per rolling [window] (seconds),
    split fairly across the task's reporting seeds: a seed past its
    [max_reports / seeds] share is shed first.  Shedding happens after
    fencing/dedup, so stale and duplicate drops are never double-counted
    as sheds. *)
type overload_config = { window : float; max_reports : int }

val default_overload : overload_config

(** Enable ([Some]) or disable ([None]) inbox shedding.  Wired by the
    seeder at deploy time when its overload protection is configured. *)
val set_overload : t -> overload_config option -> unit

val overload : t -> overload_config option

(** Reports offered to [handle] in total (counted even with shedding off,
    so the balance [offered = received + stale + dup + shed] always
    holds). *)
val offered_count : t -> int

(** Fresh reports shed by the bounded inbox. *)
val shed_count : t -> int

(** Report provenance: which seed {e instance} produced it.  [p_epoch] is
    the seed's instance epoch (bumped by the seeder on every
    (re)instantiation — deploy, migration, failure recovery); [p_seq] is a
    per-instance monotonic sequence number. *)
type provenance = { p_seed : int; p_epoch : int; p_seq : int }

(** Raise the fence for a seed: reports with a lower epoch are dropped
    from now on.  Called by the seeder whenever it (re)instantiates the
    seed, so a zombie instance surviving a false failure detection cannot
    corrupt task state.  Fences only move forward. *)
val fence : t -> seed_id:int -> epoch:int -> unit

(** Current fence epoch of a seed, if any reports/fences were seen. *)
val fence_epoch : t -> seed_id:int -> int option

(** Called by the runtime when a seed message arrives.  With [provenance],
    stale-epoch reports are dropped and (epoch, seq) duplicates — control
    retransmissions, ctrl-dup faults — are suppressed, making delivery
    exactly-once; without it the message is accepted unconditionally. *)
val handle : ?provenance:provenance -> t -> from_switch:int -> Value.t -> unit

(** All messages received so far, most recent first:
    (arrival time, source switch, value). *)
val received : t -> (float * int * Value.t) list

val received_count : t -> int

(** Provenance of accepted reports, most recent first — per seed, epochs
    are non-decreasing going forward in time (the chaos suite asserts
    this). *)
val accepted_provenance : t -> (float * provenance) list

(** Reports dropped because their epoch was behind the fence. *)
val stale_dropped : t -> int

(** Reports dropped as (seed, epoch, seq) duplicates. *)
val dup_dropped : t -> int

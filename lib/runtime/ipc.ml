type scheme = Grpc | Shared_buffer

type exec_model = Threads | Processes

let scheme_to_string = function
  | Grpc -> "gRPC"
  | Shared_buffer -> "shared-buffer"

let exec_model_to_string = function
  | Threads -> "threads"
  | Processes -> "processes"

(* Calibration: a local gRPC round trip costs ~80 us base (HTTP/2 framing,
   protobuf, socket wakeups) and degrades linearly as more seed channels
   multiplex onto the management CPU; the shared ring buffer costs ~2 us
   for threads, plus a futex wakeup across processes. *)
let latency scheme exec ~seeds =
  let n = float_of_int (max 0 seeds) in
  match (scheme, exec) with
  | Grpc, Threads -> 80e-6 +. (4e-6 *. n)
  | Grpc, Processes -> 120e-6 +. (6e-6 *. n)
  | Shared_buffer, Threads -> 2e-6 +. (0.02e-6 *. n)
  | Shared_buffer, Processes -> 8e-6 +. (0.05e-6 *. n)

let cpu_cost scheme exec =
  match (scheme, exec) with
  | Grpc, Threads -> 30e-6
  | Grpc, Processes -> 45e-6
  | Shared_buffer, Threads -> 1e-6
  | Shared_buffer, Processes -> 4e-6

module Dedup = struct
  type t = {
    seen : (int, unit) Hashtbl.t;
    mutable accepted : int;
    mutable duplicates : int;
  }

  let create () = { seen = Hashtbl.create 64; accepted = 0; duplicates = 0 }

  let register t id =
    if Hashtbl.mem t.seen id then begin
      t.duplicates <- t.duplicates + 1;
      false
    end
    else begin
      Hashtbl.replace t.seen id ();
      t.accepted <- t.accepted + 1;
      true
    end

  let accepted t = t.accepted
  let duplicates t = t.duplicates
end

(** Soil ↔ seed communication models (§V-A, Fig. 10).

    FARM supports two execution models (seeds as {e threads} of the soil
    process or as separate {e processes}) and two transports (gRPC or a
    shared-memory ring buffer).  gRPC's per-message cost grows with the
    number of co-located seeds (connection multiplexing, serialization,
    scheduler pressure), which made it the latency bottleneck and motivated
    the shared-buffer scheme. *)

type scheme = Grpc | Shared_buffer

type exec_model = Threads | Processes

val scheme_to_string : scheme -> string
val exec_model_to_string : exec_model -> string

(** One-way soil→seed message latency in seconds, given the number of
    seeds currently deployed on the switch. *)
val latency : scheme -> exec_model -> seeds:int -> float

(** CPU seconds consumed per message by the transport. *)
val cpu_cost : scheme -> exec_model -> float

(** Receiver-side message deduplication.

    The control plane delivers {e at least once}: lost messages are
    retransmitted by the seeder and [Fault]'s ctrl-dup fault duplicates
    in-flight copies.  Receivers (seed executors, harvesters) therefore
    dedup by message id, turning at-least-once transport into exactly-once
    handling — control messages such as deploy/poll/retune are idempotent
    at the receiver. *)
module Dedup : sig
  type t

  val create : unit -> t

  (** [register t id] records the id; [true] iff it was not seen before
      (i.e. the message should be processed). *)
  val register : t -> int -> bool

  (** Distinct ids accepted so far. *)
  val accepted : t -> int

  (** Duplicate deliveries suppressed so far. *)
  val duplicates : t -> int
end

(* Pure, deterministic overload-protection primitives.  No randomness and
   no engine access: callers feed in simulation time and interpret the
   returned delays/decisions, so every client stays replayable. *)

(* ------------------------------------------------------------------ *)
(* Token bucket                                                        *)
(* ------------------------------------------------------------------ *)

module Token_bucket = struct
  type t = {
    rate : float;  (* tokens/s *)
    burst : float;  (* bucket capacity *)
    mutable level : float;  (* may go negative: committed future tokens *)
    mutable last : float;  (* last refill instant *)
  }

  let create ~rate ~burst =
    if rate <= 0. then invalid_arg "Token_bucket: rate must be > 0";
    { rate; burst; level = burst; last = 0. }

  let refill t ~now =
    if now > t.last then begin
      t.level <- Float.min t.burst (t.level +. ((now -. t.last) *. t.rate));
      t.last <- now
    end

  let level t ~now =
    refill t ~now;
    t.level

  (* Debit [cost] tokens and return how long the caller must wait before
     acting.  Overdrawing is allowed — the debt is repaid by future refills,
     which is what turns a burst into a smooth paced stream. *)
  let reserve ?(cost = 1.) t ~now =
    refill t ~now;
    let delay =
      if t.level >= cost then 0. else (cost -. t.level) /. t.rate
    in
    t.level <- t.level -. cost;
    delay
end

(* ------------------------------------------------------------------ *)
(* Circuit breaker                                                     *)
(* ------------------------------------------------------------------ *)

module Breaker = struct
  type state =
    | Closed of int  (* consecutive failures so far *)
    | Open of float  (* rejects until this time, then half-opens *)
    | Half_open  (* single probe in flight *)

  type t = {
    threshold : int;  (* consecutive failures that open the breaker *)
    cooldown : float;  (* seconds open before the half-open probe *)
    mutable state : state;
    mutable opens : int;  (* times the breaker tripped (for metrics) *)
  }

  let create ~threshold ~cooldown =
    if threshold <= 0 then invalid_arg "Breaker: threshold must be > 0";
    { threshold; cooldown; state = Closed 0; opens = 0 }

  (* May this send proceed?  An expired open window transitions to
     half-open and admits exactly one probe; further calls are rejected
     until that probe reports success or failure. *)
  let allow t ~now =
    match t.state with
    | Closed _ -> true
    | Half_open -> false
    | Open until ->
        if now >= until then begin
          t.state <- Half_open;
          true
        end
        else false

  let success t = t.state <- Closed 0

  let failure t ~now =
    match t.state with
    | Closed n ->
        if n + 1 >= t.threshold then begin
          t.state <- Open (now +. t.cooldown);
          t.opens <- t.opens + 1
        end
        else t.state <- Closed (n + 1)
    | Half_open ->
        t.state <- Open (now +. t.cooldown);
        t.opens <- t.opens + 1
    | Open _ -> ()

  let is_open t =
    match t.state with Open _ | Half_open -> true | Closed _ -> false

  let state t = t.state
  let opens t = t.opens

  let state_name t =
    match t.state with
    | Closed _ -> "closed"
    | Open _ -> "open"
    | Half_open -> "half_open"
end

(* ------------------------------------------------------------------ *)
(* AIMD degradation                                                    *)
(* ------------------------------------------------------------------ *)

(* The degraded-mode knob is a rate scale in (0, 1]: 1.0 = full fidelity.
   All three constants are dyadic, so repeated back-off/recover sequences
   stay exact in binary floating point and a recovered seed lands on
   exactly 1.0 (byte-identical periods to an undegraded one). *)

let aimd_md = 0.5  (* multiplicative back-off factor per pressure tick *)
let aimd_ai = 0.125  (* additive recovery step per clear tick *)
let aimd_floor = 0.0625  (* deepest degradation: 1/16 of full rate *)

let back_off scale = Float.max aimd_floor (scale *. aimd_md)
let recover scale = Float.min 1. (scale +. aimd_ai)

(** Deterministic overload-protection primitives.

    Pure building blocks for the overload-resilience layer: a token bucket
    (control-channel rate limiting), a circuit breaker (per-switch send
    gating), and the AIMD constants used by degraded-mode seeds.  Nothing
    here touches the engine or draws randomness — callers pass in
    simulation time and act on the returned decisions, so every use is
    replayable. *)

module Token_bucket : sig
  type t

  (** [create ~rate ~burst] starts full.  [rate] is tokens/second and must
      be positive; [burst] bounds the accumulated credit. *)
  val create : rate:float -> burst:float -> t

  (** Tokens available at [now] (after refill). *)
  val level : t -> now:float -> float

  (** Debit [cost] (default 1) tokens and return the delay the caller must
      wait before acting — 0 when credit is available.  The bucket may be
      overdrawn; the debt delays subsequent reservations, which paces a
      burst into a smooth stream. *)
  val reserve : ?cost:float -> t -> now:float -> float
end

module Breaker : sig
  type state =
    | Closed of int  (** consecutive failures so far *)
    | Open of float  (** rejecting until this time *)
    | Half_open  (** single probe in flight *)

  type t

  (** Opens after [threshold] consecutive failures; stays open for
      [cooldown] seconds, then admits one half-open probe. *)
  val create : threshold:int -> cooldown:float -> t

  (** May a send proceed at [now]?  An expired open window half-opens and
      admits exactly one probe. *)
  val allow : t -> now:float -> bool

  (** The probe (or any send) succeeded: close. *)
  val success : t -> unit

  (** A send timed out or failed at [now]. *)
  val failure : t -> now:float -> unit

  val is_open : t -> bool
  val state : t -> state
  val state_name : t -> string

  (** Times the breaker has tripped open. *)
  val opens : t -> int
end

(** {2 AIMD degraded mode}

    Seeds under pressure scale their polling rate by a factor in
    [(0, 1\]]: multiplicative back-off on every pressure tick, additive
    recovery on every clear tick.  All constants are dyadic so the scale
    returns to exactly [1.0] (full fidelity) after at most
    [(1 - floor) / ai] clear ticks. *)

val aimd_md : float
val aimd_ai : float
val aimd_floor : float

val back_off : float -> float
val recover : float -> float

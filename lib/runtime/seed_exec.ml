module Value = Farm_almanac.Value
module Ast = Farm_almanac.Ast
module Interp = Farm_almanac.Interp
module Aengine = Farm_almanac.Engine
module Analysis = Farm_almanac.Analysis
module Filter = Farm_net.Filter
module Tcam = Farm_net.Tcam
module Sengine = Farm_sim.Engine
module Trace = Farm_sim.Trace

type t = {
  sid : int;
  soil : Soil.t;
  epoch : int;  (* instance epoch, carried by every report (fencing) *)
  mutable inst : Aengine.instance option;  (* None before wiring completes *)
  mutable res : float array;
  polls : Analysis.poll_summary list;
  mutable subs : (string * Soil.subscription list) list;  (* per trigger *)
  mutable transitions : int;
  mutable alive : bool;
  mutable next_seq : int;  (* per-instance report sequence numbers *)
  dedup : Ipc.Dedup.t;  (* inbound control-message ids seen *)
  (* overload resilience: AIMD degraded mode over the adaptive triggers *)
  adaptive : string list;  (* poll vars whose period may be stretched *)
  mutable rate_scale : float;  (* 1.0 = full fidelity *)
  mutable poll_drops : int;  (* polls the soil dropped/shed on us *)
  mutable last_drop_backoff : float;  (* throttles drop-triggered MD *)
  mutable degraded_report : (float -> unit) option;  (* -> harvester *)
}

let seed_id t = t.sid
let epoch t = t.epoch

let alloc_seq t =
  let s = t.next_seq in
  t.next_seq <- s + 1;
  s

let duplicates_dropped t = Ipc.Dedup.duplicates t.dedup
let node t = Soil.node_id t.soil
let soil t = t.soil
let resources t = t.res

let inst t =
  match t.inst with
  | Some i -> i
  | None -> failwith "Seed_exec: machine engine not initialized"

let engine_kind t = Aengine.kind (inst t)
let machine_name t = (Aengine.machine (inst t)).Ast.mname
let state t = Aengine.current_state (inst t)
let var t name = Aengine.var (inst t) name
let transitions t = t.transitions
let is_alive t = t.alive

let period_of_spec spec res =
  let rate = Analysis.poll_rate spec res in
  if rate <= 0. then
    (* no polling capacity allocated: back off to a slow default *)
    10.
  else 1. /. rate

(* Effective period of an adaptive trigger under the current degradation:
   base / scale.  At full fidelity the division is skipped so default runs
   see the exact original float. *)
let scaled_period t (p : Analysis.poll_summary) =
  let base = period_of_spec p.ival t.res in
  if t.rate_scale = 1. || not (List.mem p.poll_name t.adaptive) then base
  else base /. t.rate_scale

let rate_scale t = t.rate_scale
let degradation t = 1. -. t.rate_scale
let poll_drops t = t.poll_drops

(* Subscribe one poll variable's triggers; returns the subscriptions. *)
let subscribe t (p : Analysis.poll_summary) =
  (* resolved once per subscription, not per event: the handler CPU cost
     and the trigger's dispatch entry *)
  let base_cost = (Soil.config t.soil).cpu.handler_base_cost in
  let fire_trigger = Aengine.prepare_trigger (inst t) p.poll_name in
  let fire value =
    if t.alive then begin
      Soil.charge_cpu t.soil base_cost;
      fire_trigger value
    end
  in
  let period = scaled_period t p in
  match p.ptrig with
  | Ast.Poll ->
      List.map
        (fun subject ->
          Soil.subscribe_poll t.soil ~seed_id:t.sid ~subject ~period
            (fun data -> fire (Value.Stats data)))
        p.subjects
  | Ast.Probe ->
      [ Soil.subscribe_probe t.soil ~seed_id:t.sid ~filter:p.what ~period
          (fun pkt -> fire (Value.Packet pkt)) ]
  | Ast.Time ->
      [ Soil.subscribe_time t.soil ~seed_id:t.sid ~period (fun now ->
            fire (Value.Num now)) ]

let resubscribe_all t =
  List.iter (fun (_, subs) -> List.iter (Soil.cancel t.soil) subs) t.subs;
  t.subs <- List.map (fun p -> (p.Analysis.poll_name, subscribe t p)) t.polls

(* ------------------------------------------------------------------ *)
(* Degraded mode (AIMD): stretch the adaptive triggers' periods under    *)
(* soil pressure, recover additively once it clears                     *)
(* ------------------------------------------------------------------ *)

let apply_rate_scale t =
  List.iter
    (fun (p : Analysis.poll_summary) ->
      if List.mem p.Analysis.poll_name t.adaptive then
        match List.assoc_opt p.Analysis.poll_name t.subs with
        | Some subs ->
            let period = scaled_period t p in
            List.iter (fun s -> Soil.set_period t.soil s period) subs
        | None -> ())
    t.polls

let set_rate_scale t scale =
  if t.alive && scale <> t.rate_scale then begin
    t.rate_scale <- scale;
    apply_rate_scale t;
    (match Sengine.tracer (Soil.engine t.soil) with
    | None -> ()
    | Some tr ->
        Trace.instant tr ~ts:(Soil.now t.soil) ~cat:"seed.overload"
          ~name:"degradation" ~tid:(Soil.node_id t.soil)
          ~args:
            [ ("seed", Trace.I t.sid); ("depth", Trace.F (1. -. scale)) ]
          ());
    (* tell the harvester, so global logic can compensate for the
       reduced fidelity *)
    match t.degraded_report with Some f -> f (1. -. scale) | None -> ()
  end

(* Backpressure tick from the soil's pressure monitor. *)
let on_pressure t ~high =
  if t.adaptive <> [] then
    set_rate_scale t
      (if high then Overload.back_off t.rate_scale
       else Overload.recover t.rate_scale)

(* The soil dropped/shed [n] of our polls.  Always counted; with overload
   protection on, a drop burst also backs the seed off (at most once per
   pressure interval, so a shed batch is one MD step, not many). *)
let on_poll_drop t n =
  t.poll_drops <- t.poll_drops + n;
  if t.adaptive <> [] && Soil.overload_enabled t.soil then begin
    let gap =
      match (Soil.config t.soil).overload with
      | Some ov -> ov.pressure_interval
      | None -> 0.05
    in
    let now = Soil.now t.soil in
    if now -. t.last_drop_backoff >= gap then begin
      t.last_drop_backoff <- now;
      set_rate_scale t (Overload.back_off t.rate_scale)
    end
  end

(* runtime reassignment of a trigger variable: y = Poll { ... } or a bare
   number interpreted as the new period *)
let on_set_trigger t name _tt (v : Value.t) =
  let new_period =
    match v with
    | Value.Num p when p > 0. -> Some p
    | Value.Struct (_, fields) -> (
        match List.assoc_opt "ival" fields with
        | Some (Value.Num p) when p > 0. -> Some p
        | _ -> None)
    | _ -> None
  in
  match new_period with
  | None -> ()
  | Some p -> (
      match List.assoc_opt name t.subs with
      | Some subs -> List.iter (fun s -> Soil.set_period t.soil s p) subs
      | None -> ())

let rule_of_value v =
  match v with
  | Value.Struct ("Rule", fields) ->
      let pattern =
        match List.assoc_opt "pattern" fields with
        | Some (Value.FilterV f) -> f
        | _ -> Filter.True
      in
      let action =
        match List.assoc_opt "act" fields with
        | Some (Value.Action a) -> a
        | _ -> Tcam.Count
      in
      { Tcam.pattern; action; priority = 10 }
  | _ -> raise (Value.Type_error "expected a Rule")

let value_of_installed (e : Tcam.installed) =
  Value.Struct
    ( "Rule",
      [ ("pattern", Value.FilterV e.rule.pattern);
        ("act", Value.Action e.rule.action);
        ("bytes", Value.Num e.bytes);
        ("packets", Value.Num e.packets) ] )

let deploy ~soil ~program ~machine ?(engine = `Compiled) ?(externals = [])
    ?(builtins = []) ?restore ?(epoch = 0) ?(adaptive = []) ~resources ~polls
    ~send ~seed_id () =
  let t =
    { sid = seed_id; soil; epoch; inst = None; res = Array.copy resources;
      polls; subs = []; transitions = 0; alive = true; next_seq = 0;
      dedup = Ipc.Dedup.create (); adaptive; rate_scale = 1.;
      poll_drops = 0; last_drop_backoff = Float.neg_infinity;
      degraded_report = None }
  in
  let host =
    { Interp.h_now = (fun () -> Soil.now soil);
      h_resources = (fun () -> t.res);
      h_send = (fun target v -> if t.alive then send t target v);
      h_set_trigger = (fun name tt v -> on_set_trigger t name tt v);
      h_builtin =
        (fun name ->
          match List.assoc_opt name builtins with
          | Some f -> Some f
          | None -> (
              match name with
              | "addTCAMRule" ->
                  Some
                    (fun args ->
                      match args with
                      | [ rule ] -> (
                          match Soil.add_tcam_rule soil (rule_of_value rule) with
                          | Ok () -> Value.Unit
                          | Error `Full -> Value.Unit)
                      | _ -> raise (Value.Type_error "addTCAMRule: 1 argument"))
              | "removeTCAMRule" ->
                  Some
                    (fun args ->
                      match args with
                      | [ Value.FilterV pattern ] ->
                          ignore (Soil.remove_tcam_rule soil ~pattern);
                          Value.Unit
                      | _ ->
                          raise (Value.Type_error "removeTCAMRule: filter"))
              | "getTCAMRule" ->
                  Some
                    (fun args ->
                      match args with
                      | [ Value.FilterV pattern ] -> (
                          match Soil.get_tcam_rule soil ~pattern with
                          | Some e -> value_of_installed e
                          | None ->
                              Value.Struct
                                ("Rule",
                                 [ ("pattern", Value.FilterV Filter.False);
                                   ("act", Value.Action Tcam.Count) ]))
                      | _ -> raise (Value.Type_error "getTCAMRule: filter"))
              | "exec" ->
                  (* Running external code burns switch CPU.  The command
                     "svr N" models the paper's support-vector-regression
                     seed: N matrix-multiplication iterations at ~60 us of
                     management-CPU each (calibrated so 50 parallel 1 ms
                     seeds offer ~3.5 cores, Fig. 6c).  Other commands cost
                     a flat 1 ms; tasks can override via [builtins]. *)
                  Some
                    (fun args ->
                      let cmd =
                        match args with
                        | [ Value.Str s ] -> s
                        | _ -> ""
                      in
                      let cost =
                        match String.split_on_char ' ' cmd with
                        | [ "svr"; n ] -> (
                            match int_of_string_opt n with
                            | Some n -> float_of_int n *. 60e-6
                            | None -> 1e-3)
                        | _ -> 1e-3
                      in
                      Soil.charge_cpu soil cost;
                      Value.Num 1.)
              | "self_switch" ->
                  Some (fun _ -> Value.Num (float_of_int (Soil.node_id soil)))
              | _ -> None));
      h_on_transit =
        (fun old_st new_st ->
          t.transitions <- t.transitions + 1;
          Soil.charge_cpu soil (Soil.config soil).cpu.handler_base_cost;
          match Sengine.tracer (Soil.engine soil) with
          | None -> ()
          | Some tr ->
              Trace.instant_i tr ~ts:(Soil.now soil)
                ~cat:(Trace.intern tr "seed.transit")
                ~name:(Trace.intern tr (old_st ^ "->" ^ new_st))
                ~tid:(Soil.node_id soil)
                ~k:(Trace.intern tr "seed") seed_id);
      h_log = (fun _ -> ());
      (* Wired only when a trace sink is attached at deploy time, so
         untraced runs keep the engines' [None] fast path (one branch
         per trigger fire). *)
      h_trace =
        (match Sengine.tracer (Soil.engine soil) with
        | None -> None
        | Some tr0 ->
            (* fixed ids are interned once per sink (re-fetched if the
               sink is swapped); [trig]/[st] vary per fire but turn into
               allocation-free hash hits after their first occurrence *)
            let tid = Soil.node_id soil in
            let sink = ref tr0 in
            let cat = ref (Trace.intern tr0 "seed.handler") in
            let k_seed = ref (Trace.intern tr0 "seed") in
            let k_state = ref (Trace.intern tr0 "state") in
            Some
              (fun trig st ->
                match Sengine.tracer (Soil.engine soil) with
                | None -> ()
                | Some tr ->
                    if tr != !sink then begin
                      sink := tr;
                      cat := Trace.intern tr "seed.handler";
                      k_seed := Trace.intern tr "seed";
                      k_state := Trace.intern tr "state"
                    end;
                    Trace.instant_is tr ~ts:(Soil.now soil) ~cat:!cat
                      ~name:(Trace.intern tr trig) ~tid
                      ~k0:!k_seed seed_id
                      ~k1:!k_state (Trace.intern tr st))) }
  in
  let i = Aengine.create ~engine ~externals ~program ~machine host in
  t.inst <- Some i;
  Soil.attach_seed soil seed_id;
  (* drop notifications are always wired (per-seed attribution of the
     previously silent queue drops); the degraded-mode machinery only
     when the soil runs overload protection *)
  Soil.on_poll_drop soil ~seed_id (fun n -> on_poll_drop t n);
  if Soil.overload_enabled soil then begin
    Soil.on_pressure soil ~seed_id (fun ~high -> on_pressure t ~high);
    t.degraded_report <-
      Some
        (fun depth ->
          send t Interp.To_harvester
            (Value.Struct
               ( "Degraded",
                 [ ("seed", Value.Num (float_of_int seed_id));
                   ("depth", Value.Num depth) ] )));
    Farm_sim.Metrics.Registry.gauge_fn
      (Sengine.metrics (Soil.engine soil))
      (Printf.sprintf "seed.%d.degradation" seed_id)
      (fun () -> 1. -. t.rate_scale)
  end;
  t.subs <- List.map (fun p -> (p.Analysis.poll_name, subscribe t p)) polls;
  (match restore with
  | Some (vars, state) -> Aengine.restore i ~vars ~state
  | None -> Aengine.start i);
  t

let set_resources t res =
  t.res <- Array.copy res;
  resubscribe_all t;
  Aengine.realloc (inst t)

(* Deliver an inbound control message.  [msg_id] identifies the logical
   message across retransmissions and ctrl-dup copies: repeats are dropped
   so handling is idempotent (exactly-once on an at-least-once channel). *)
let deliver ?msg_id t ~from v =
  let fresh =
    match msg_id with Some id -> Ipc.Dedup.register t.dedup id | None -> true
  in
  if fresh && t.alive then ignore (Aengine.deliver (inst t) ~from v)

let snapshot t = Aengine.snapshot (inst t)

let destroy t =
  t.alive <- false;
  List.iter (fun (_, subs) -> List.iter (Soil.cancel t.soil) subs) t.subs;
  t.subs <- [];
  (* detach_seed also removes this seed's drop/pressure hooks *)
  Soil.detach_seed t.soil t.sid

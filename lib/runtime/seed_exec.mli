(** A deployed seed: an Almanac machine instance executing on a switch via
    its soil.  Wires the interpreter's host interface to the soil (polling,
    probing, TCAM, resources, IPC) and supports live migration
    (snapshot → transfer → restore, §V-B). *)

module Value := Farm_almanac.Value
module Ast := Farm_almanac.Ast
module Analysis := Farm_almanac.Analysis

type t

(** [deploy ~soil ~program ~machine ...] instantiates the machine on the
    soil's switch, subscribes its poll/probe/time triggers (periods derived
    from the allocated [resources] via the ival analysis) and enters the
    initial state.  [send] routes outgoing messages (wired by the seeder).
    [restore] resumes from a migrated snapshot instead of a fresh start.
    [engine] selects the execution engine: the slot-compiled [`Compiled]
    (default) or the reference interpreter [`Interp].  [adaptive] names
    the poll variables whose period the seed may stretch in degraded mode
    (AIMD back-off under soil pressure; only effective when the soil runs
    overload protection). *)
val deploy :
  soil:Soil.t ->
  program:Ast.program ->
  machine:string ->
  ?engine:Farm_almanac.Engine.engine ->
  ?externals:(string * Value.t) list ->
  ?builtins:(string * (Value.t list -> Value.t)) list ->
  ?restore:(string * Value.t) list * string ->
  ?epoch:int ->
  ?adaptive:string list ->
  resources:float array ->
  polls:Analysis.poll_summary list ->
  send:(t -> Farm_almanac.Interp.target -> Value.t -> unit) ->
  seed_id:int ->
  unit ->
  t

val seed_id : t -> int

(** Instance epoch (default 0): bumped by the seeder on every
    (re)instantiation of the logical seed and stamped on every report so
    harvesters can fence off zombie instances. *)
val epoch : t -> int

(** Allocate the next report sequence number (monotonic per instance). *)
val alloc_seq : t -> int

(** Inbound control messages suppressed as duplicates (same [msg_id]). *)
val duplicates_dropped : t -> int

(** Which execution engine this seed runs on. *)
val engine_kind : t -> Farm_almanac.Engine.engine

val machine_name : t -> string
val node : t -> int
val soil : t -> Soil.t
val state : t -> string
val var : t -> string -> Value.t option
val resources : t -> float array

(** Reallocate resources (placement re-optimization): poll periods that
    depend on resources are rescheduled and the machine's [realloc] events
    fire. *)
val set_resources : t -> float array -> unit

(** Deliver a message from the harvester or another seed.  [msg_id]
    identifies the logical message across retransmissions / ctrl-dup
    copies; repeated ids are dropped (idempotent receipt). *)
val deliver :
  ?msg_id:int -> t -> from:Farm_almanac.Interp.source -> Value.t -> unit

(** Snapshot (variables, state) for migration. *)
val snapshot : t -> (string * Value.t) list * string

(** Stop execution and release soil subscriptions. *)
val destroy : t -> unit

(** Number of state transitions performed (experiment instrumentation). *)
val transitions : t -> int

val is_alive : t -> bool

(** {2 Degraded mode (overload resilience)} *)

(** Current AIMD rate scale in (0, 1]; 1.0 = full fidelity. *)
val rate_scale : t -> float

(** [1 - rate_scale], the value exported as the [seed.<id>.degradation]
    gauge. *)
val degradation : t -> float

(** Polls the soil dropped or shed on this seed (drop notifications). *)
val poll_drops : t -> int

(** Backpressure tick: [high:true] multiplicatively stretches the adaptive
    triggers' periods, [high:false] additively recovers them.  No-op for
    seeds without adaptive triggers.  Wired to the soil's pressure monitor
    at deploy time; exposed for tests. *)
val on_pressure : t -> high:bool -> unit

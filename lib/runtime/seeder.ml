module Engine = Farm_sim.Engine
module Value = Farm_almanac.Value
module Ast = Farm_almanac.Ast
module Parser = Farm_almanac.Parser
module Typecheck = Farm_almanac.Typecheck
module Analysis = Farm_almanac.Analysis
module Interp = Farm_almanac.Interp
module Lint = Farm_almanac.Lint
module Diagnostic = Farm_almanac.Diagnostic
module Model = Farm_placement.Model
module Heuristic = Farm_placement.Heuristic
module Conflict = Farm_placement.Conflict
module Fabric = Farm_net.Fabric
module Switch_model = Farm_net.Switch_model

type config = {
  soil_config : Soil.config;
  control_latency : float;
  message_overhead_bytes : float;
  migration_time : float;
  engine : Farm_almanac.Engine.engine;
  retry_backoff : float;
  max_retries : int;
  refuse_conflicts : bool;
}

let default_config =
  { soil_config = Soil.default_config;
    control_latency = 250e-6;  (* DC-internal RTT/2 to the controller *)
    message_overhead_bytes = 64.;
    migration_time = 5e-3;
    engine = `Compiled;
    retry_backoff = 1e-3;
    max_retries = 5;
    refuse_conflicts = false }

type ctrl_faults = { loss : float; delay : float; dup : float }

let perfect_ctrl = { loss = 0.; delay = 0.; dup = 0. }

type task_spec = {
  ts_name : string;
  ts_source : string;
  ts_externals : (string * (string * Value.t) list) list;
  ts_builtins : (string * (Value.t list -> Value.t)) list;
  ts_extra_sigs : (string * Typecheck.func_sig) list;
  ts_harvester : Harvester.spec;
}

let simple_spec ~name ~source =
  { ts_name = name; ts_source = source; ts_externals = []; ts_builtins = [];
    ts_extra_sigs = []; ts_harvester = Harvester.collector_spec }

type task = {
  task_id : int;
  spec : task_spec;
  xml : string Lazy.t;
      (* the interchange form shipped to switches (§V-A d) *)
  mutable harvester : Harvester.t option;
  mutable placed : bool;
}

(* registry entry for one seed of one task *)
type reg = {
  r_spec : Model.seed_spec;
  r_task : task;
  r_machine : string;
  r_polls : Analysis.poll_summary list;
  r_externals : (string * Value.t) list;
  mutable r_exec : Seed_exec.t option;
  mutable r_migrating : bool;
}

type t = {
  engine : Engine.t;
  fabric : Fabric.t;
  cfg : config;
  soils : (int, Soil.t) Hashtbl.t;
  failed : (int, unit) Hashtbl.t;  (* switches marked down *)
  registry : (int, reg) Hashtbl.t;  (* seed_id -> reg *)
  mutable next_seed : int;
  mutable next_task : int;
  mutable assignments : Model.assignment list;
  mutable migration_count : int;
  collector_bytes : Farm_sim.Metrics.Counter.t;
  mutable collector_messages : int;
  (* control-plane fault injection; the rng is split lazily so fault-free
     runs draw exactly the same random streams as before this existed *)
  mutable ctrl : ctrl_faults;
  ctrl_rng : Farm_sim.Rng.t Lazy.t;
  mutable retransmissions : int;
  mutable lost_messages : int;
  (* utility the optimizer reported for the current placement; checked
     against a from-scratch recomputation by the chaos suite *)
  mutable reported_utility : float;
  (* conflict-detection profiles of deployed tasks, by task id *)
  mutable profiles : (int * Conflict.profile) list;
  (* every diagnostic (lint, conflicts) of the most recent deploy *)
  mutable last_diags : Diagnostic.t list;
}

let create ?(config = default_config) engine fabric =
  let soils = Hashtbl.create 32 in
  List.iter
    (fun sw ->
      Hashtbl.replace soils (Switch_model.id sw)
        (Soil.create ~config:config.soil_config engine sw))
    (Fabric.switch_models fabric);
  { engine; fabric; cfg = config; soils; failed = Hashtbl.create 4;
    registry = Hashtbl.create 64;
    next_seed = 0; next_task = 0; assignments = [];
    migration_count = 0;
    collector_bytes = Farm_sim.Metrics.Counter.create ();
    collector_messages = 0;
    ctrl = perfect_ctrl;
    ctrl_rng = lazy (Farm_sim.Rng.split (Engine.rng engine));
    retransmissions = 0; lost_messages = 0; reported_utility = 0.;
    profiles = []; last_diags = [] }

let engine t = t.engine
let fabric t = t.fabric

let soil t node =
  match Hashtbl.find_opt t.soils node with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "Seeder.soil: no soil on node %d" node)

let soils t =
  Hashtbl.fold (fun _ s acc -> s :: acc) t.soils []
  |> List.sort (fun a b -> Int.compare (Soil.node_id a) (Soil.node_id b))

let set_ctrl_faults t f = t.ctrl <- f
let ctrl_faults t = t.ctrl
let retransmissions t = t.retransmissions
let lost_messages t = t.lost_messages

let task_name task = task.spec.ts_name

let harvester task =
  match task.harvester with
  | Some h -> h
  | None -> invalid_arg "Seeder.harvester: task has no harvester yet"

let is_placed task = task.placed

(* the live optimization instance: all registered seeds over all healthy
   soils; seeds lose failed switches from their candidate sets *)
let instance_stub t =
  let pcie = Analysis.resource_index Analysis.Pcie in
  let switches =
    Hashtbl.fold
      (fun node soilv acc ->
        if Hashtbl.mem t.failed node then acc else
        let caps = Switch_model.caps (Soil.switch soilv) in
        let avail = Array.make Analysis.n_resources 0. in
        avail.(Analysis.resource_index Analysis.VCpu) <- caps.vcpu;
        avail.(Analysis.resource_index Analysis.Ram) <- caps.ram_mb;
        avail.(Analysis.resource_index Analysis.TcamR) <-
          float_of_int
            (Farm_net.Tcam.region_capacity
               (Switch_model.tcam (Soil.switch soilv))
               Farm_net.Tcam.Monitoring);
        (* polling budget in reads/s: PCIe bits/s over one counter read *)
        avail.(pcie) <- caps.pcie_bps /. (8. *. Soil.counter_record_bytes);
        { Model.node; avail } :: acc)
      t.soils []
    |> List.sort (fun (a : Model.switch_caps) b -> Int.compare a.node b.node)
  in
  let alive (s : Model.seed_spec) =
    { s with
      candidates =
        List.filter (fun n -> not (Hashtbl.mem t.failed n)) s.candidates }
  in
  { Model.seeds =
      Hashtbl.fold (fun _ r acc -> alive r.r_spec :: acc) t.registry []
      |> List.filter (fun (s : Model.seed_spec) -> s.candidates <> [])
      |> List.sort (fun (a : Model.seed_spec) b ->
             Int.compare a.seed_id b.seed_id);
    switches; alpha_poll = 1.; previous = t.assignments }

let current_utility t = Model.total_utility (instance_stub t) t.assignments

let placement_instance = instance_stub
let current_assignments t = t.assignments
let reported_utility t = t.reported_utility

let collector_bytes t = Farm_sim.Metrics.Counter.value t.collector_bytes
let collector_messages t = t.collector_messages
let migrations t = t.migration_count

(* rough wire size of a value *)
let rec value_bytes (v : Value.t) =
  match v with
  | Value.Unit | Value.Bool _ -> 1.
  | Value.Num _ -> 8.
  | Value.Str s -> float_of_int (String.length s)
  | Value.List l -> List.fold_left (fun a v -> a +. value_bytes v) 8. l
  | Value.Packet _ -> 64.
  | Value.Action _ -> 8.
  | Value.FilterV _ -> 32.
  | Value.Stats a -> 8. *. float_of_int (Array.length a)
  | Value.Struct (_, fs) ->
      List.fold_left (fun a (_, v) -> a +. value_bytes v) 16. fs

let sorted_regs t =
  Hashtbl.fold (fun _ r acc -> r :: acc) t.registry []
  |> List.sort (fun a b -> Int.compare a.r_spec.seed_id b.r_spec.seed_id)

let regs_of_task t task =
  List.filter (fun r -> r.r_task.task_id = task.task_id) (sorted_regs t)

let seed_specs t task = List.map (fun r -> r.r_spec) (regs_of_task t task)

let seeds t task =
  List.filter_map (fun r -> r.r_exec) (regs_of_task t task)

let seed_on t task ~machine ~node =
  List.find_opt
    (fun r ->
      r.r_machine = machine
      && match r.r_exec with
         | Some e -> Seed_exec.node e = node
         | None -> false)
    (regs_of_task t task)
  |> fun r -> Option.bind r (fun r -> r.r_exec)

(* ------------------------------------------------------------------ *)
(* Message routing                                                     *)
(* ------------------------------------------------------------------ *)

(* Unicast over the (possibly degraded) control plane.  [deliver] runs at
   the receiver and reports whether the recipient took the message
   ([`Delivered]), is temporarily away — migrating or being re-placed — and
   worth a retry ([`Absent]), or is gone for good ([`Gone]).  Loss and
   absence are retried with exponential backoff up to [max_retries]; all
   draws are skipped on a perfect control plane so fault-free runs are
   byte-identical to the pre-fault-injection behavior. *)
let rec control_send t ?(tries = 0) deliver =
  let c = t.ctrl in
  let resend () =
    if tries < t.cfg.max_retries then begin
      t.retransmissions <- t.retransmissions + 1;
      let backoff = t.cfg.retry_backoff *. (2. ** float_of_int tries) in
      Engine.schedule t.engine
        ~delay:(t.cfg.control_latency +. c.delay +. backoff)
        (fun _ -> control_send t ~tries:(tries + 1) deliver)
    end
    else t.lost_messages <- t.lost_messages + 1
  in
  let lost =
    c.loss > 0. && Farm_sim.Rng.bernoulli (Lazy.force t.ctrl_rng) c.loss
  in
  if lost then resend ()
  else begin
    let dup =
      c.dup > 0. && Farm_sim.Rng.bernoulli (Lazy.force t.ctrl_rng) c.dup
    in
    Engine.schedule t.engine ~delay:(t.cfg.control_latency +. c.delay)
      (fun _ ->
        match deliver () with
        | `Delivered -> ()
        | `Absent -> resend ()
        | `Gone -> t.lost_messages <- t.lost_messages + 1);
    if dup then
      (* duplicated in flight: second copy, delivery outcome ignored *)
      Engine.schedule t.engine
        ~delay:(t.cfg.control_latency +. c.delay +. t.cfg.retry_backoff)
        (fun _ -> ignore (deliver () : [ `Delivered | `Absent | `Gone ]))
  end

let deliver_to_harvester t task ~from_switch v =
  Farm_sim.Metrics.Counter.add t.collector_bytes
    (value_bytes v +. t.cfg.message_overhead_bytes);
  t.collector_messages <- t.collector_messages + 1;
  control_send t (fun () ->
      match task.harvester with
      | Some h ->
          Harvester.handle h ~from_switch v;
          `Delivered
      | None -> `Gone)

(* Deliver to one registered seed; retried while the seed is away
   (migrating, or waiting to be re-placed after a switch failure). *)
let send_to_reg t (r : reg) ~from v =
  control_send t (fun () ->
      match r.r_exec with
      | Some e ->
          Seed_exec.deliver e ~from v;
          `Delivered
      | None ->
          if Hashtbl.mem t.registry r.r_spec.seed_id then `Absent else `Gone)

let deliver_to_seeds t task ~machine ~node v ~from =
  let targets =
    List.filter
      (fun r ->
        r.r_machine = machine
        &&
        match (node, r.r_exec) with
        | None, Some _ -> true
        | Some n, Some e -> Seed_exec.node e = n
        | _, None -> false)
      (regs_of_task t task)
  in
  List.iter (fun r -> send_to_reg t r ~from v) targets

let seed_send t task exec (target : Interp.target) v =
  match target with
  | Interp.To_harvester ->
      deliver_to_harvester t task ~from_switch:(Seed_exec.node exec) v
  | Interp.To_machine (m, node) ->
      deliver_to_seeds t task ~machine:m ~node v
        ~from:(Interp.From_machine (Seed_exec.machine_name exec))

(* ------------------------------------------------------------------ *)
(* Placement application                                               *)
(* ------------------------------------------------------------------ *)

let instantiate t (r : reg) (a : Model.assignment) ~restore =
  let soilv = soil t a.a_node in
  (* the switch receives the task as XML and decompiles it into a seed,
     exactly as the soil does in the paper's implementation *)
  let program = Farm_almanac.Machine_xml.load (Lazy.force r.r_task.xml) in
  let exec =
    Seed_exec.deploy ~soil:soilv ~program ~engine:t.cfg.engine
      ~machine:r.r_machine ~externals:r.r_externals
      ~builtins:r.r_task.spec.ts_builtins ?restore ~resources:a.a_res
      ~polls:r.r_polls
      ~send:(fun exec target v -> seed_send t r.r_task exec target v)
      ~seed_id:r.r_spec.seed_id ()
  in
  r.r_exec <- Some exec

let apply_placement t (placement : Model.placement) =
  let new_assignments = placement.assignments in
  let by_seed = Hashtbl.create 64 in
  List.iter
    (fun (a : Model.assignment) -> Hashtbl.replace by_seed a.a_seed a)
    new_assignments;
  (* destroy / migrate / retune existing seeds, in seed-id order so
     same-time engine events are enqueued deterministically *)
  List.iter
    (fun (r : reg) ->
      let seed_id = r.r_spec.seed_id in
      match (r.r_exec, Hashtbl.find_opt by_seed seed_id) with
      | Some exec, None ->
          (* dropped from the placement *)
          Seed_exec.destroy exec;
          r.r_exec <- None
      | Some exec, Some a when Seed_exec.node exec <> a.a_node ->
          (* migrate: snapshot, transfer state, resume at the target *)
          let snapshot = Seed_exec.snapshot exec in
          Seed_exec.destroy exec;
          r.r_exec <- None;
          r.r_migrating <- true;
          t.migration_count <- t.migration_count + 1;
          Engine.schedule t.engine ~delay:t.cfg.migration_time (fun _ ->
              r.r_migrating <- false;
              instantiate t r a ~restore:(Some snapshot))
      | Some exec, Some a ->
          if Seed_exec.resources exec <> a.a_res then
            Seed_exec.set_resources exec a.a_res
      | None, Some a when not r.r_migrating ->
          instantiate t r a ~restore:None
      | None, _ -> ())
    (sorted_regs t);
  t.assignments <- new_assignments;
  t.reported_utility <- placement.utility;
  (* task placement flags *)
  let tasks = Hashtbl.create 8 in
  Hashtbl.iter
    (fun _ (r : reg) -> Hashtbl.replace tasks r.r_task.task_id r.r_task)
    t.registry;
  Hashtbl.iter
    (fun _ task ->
      task.placed <-
        List.exists
          (fun r -> Hashtbl.mem by_seed r.r_spec.seed_id)
          (regs_of_task t task))
    tasks

let reoptimize t =
  let inst = instance_stub t in
  let placement, _stats = Heuristic.optimize inst in
  apply_placement t placement

(* ------------------------------------------------------------------ *)
(* Deploy                                                              *)
(* ------------------------------------------------------------------ *)

let ( let* ) = Result.bind

let analysis_bindings (m : Ast.machine) externals : Analysis.bindings =
  let static name =
    List.find_map
      (fun (v : Ast.var_decl) ->
        if v.vname = name then
          match v.vinit with
          | Some (Ast.Int i) -> Some (Value.Num (float_of_int i))
          | Some (Ast.Float f) -> Some (Value.Num f)
          | Some (Ast.String s) -> Some (Value.Str s)
          | Some (Ast.Bool b) -> Some (Value.Bool b)
          | _ -> None
        else None)
      m.mvars
  in
  fun name ->
    match List.assoc_opt name externals with
    | Some v -> Some v
    | None -> static name

let last_deploy_diagnostics t = Diagnostic.sort t.last_diags

let deploy t spec =
  t.last_diags <- [];
  let record ds = t.last_diags <- t.last_diags @ ds in
  let parse () =
    match Parser.program_result spec.ts_source with
    | Ok p -> Ok p
    | Error d ->
        record [ d ];
        Error ("syntax error: " ^ Diagnostic.to_string d)
  in
  let* parsed = parse () in
  let* program =
    match Typecheck.check_diags ~extra:spec.ts_extra_sigs parsed with
    | Ok p -> Ok p
    | Error ds ->
        record ds;
        Error
          (match ds with
          | d :: _ -> d.Diagnostic.message
          | [] -> "type error")
  in
  (* deploy-time verification: lint the resolved program, refusing on
     error-severity diagnostics; warnings are recorded and deployment
     proceeds *)
  let bound_externals =
    List.map (fun (m, vs) -> (m, List.map fst vs)) spec.ts_externals
  in
  let lint_diags = Lint.check_program ~externals:bound_externals program in
  record lint_diags;
  let* () =
    if Diagnostic.has_errors lint_diags then
      Error
        ("lint: "
        ^ Diagnostic.to_string (List.find Diagnostic.is_error lint_diags))
    else Ok ()
  in
  let task =
    { task_id = t.next_task; spec;
      xml = lazy (Farm_almanac.Machine_xml.compile program);
      harvester = None; placed = false }
  in
  t.next_task <- t.next_task + 1;
  (* analyze every machine and register its seeds *)
  let topo = Fabric.topology t.fabric in
  let* registered, analyzed =
    List.fold_left
      (fun acc (m : Ast.machine) ->
        let* acc, analyzed = acc in
        let externals =
          Option.value
            (List.assoc_opt m.mname spec.ts_externals)
            ~default:[]
        in
        let bindings = analysis_bindings m externals in
        let* summary = Analysis.summarize ~bindings ~topo m in
        let polls = summary.poll_vars in
        let initial_state_util =
          match summary.state_utils with
          | (_, u) :: _ -> u
          | [] -> Analysis.default_utility
        in
        let poll_reqs =
          List.concat_map
            (fun (p : Analysis.poll_summary) ->
              match p.ptrig with
              | Ast.Poll ->
                  List.map
                    (fun subject -> { Model.subject; ival = p.ival })
                    p.subjects
              | Ast.Probe | Ast.Time -> [])
            polls
        in
        let regs =
          List.map
            (fun (site : Analysis.seed_site) ->
              let seed_id = t.next_seed in
              t.next_seed <- seed_id + 1;
              { r_spec =
                  { Model.seed_id; task_id = task.task_id;
                    candidates = site.candidates;
                    branches = initial_state_util; polls = poll_reqs };
                r_task = task; r_machine = m.mname; r_polls = polls;
                r_externals = externals; r_exec = None;
                r_migrating = false })
            summary.seeds
        in
        Ok (regs @ acc, (summary, bindings) :: analyzed))
      (Ok ([], [])) program.machines
  in
  (* cross-task conflicts against already-deployed tasks *)
  let profile = Conflict.profile ~task:spec.ts_name (List.rev analyzed) in
  let conflicts =
    Conflict.check_against profile (List.map snd t.profiles)
  in
  record conflicts;
  let* () =
    if conflicts <> [] && t.cfg.refuse_conflicts then
      Error ("conflict: " ^ Diagnostic.to_string (List.hd conflicts))
    else Ok ()
  in
  if registered = [] then Error "task has no seeds to place"
  else begin
    List.iter
      (fun r -> Hashtbl.replace t.registry r.r_spec.seed_id r)
      registered;
    (* harvester wiring *)
    let ctx =
      { Harvester.send_to_seed =
          (fun ~switch v ->
            List.iter
              (fun r ->
                match r.r_exec with
                | Some e when Seed_exec.node e = switch ->
                    send_to_reg t r ~from:Interp.From_harvester v
                | Some _ | None -> ())
              (regs_of_task t task));
        broadcast =
          (fun v ->
            List.iter
              (fun r ->
                match r.r_exec with
                | Some _ -> send_to_reg t r ~from:Interp.From_harvester v
                | None -> ())
              (regs_of_task t task));
        now = (fun () -> Engine.now t.engine);
        log = (fun _ -> ()) }
    in
    let h = Harvester.create spec.ts_harvester ctx in
    task.harvester <- Some h;
    reoptimize t;
    if not task.placed then begin
      (* release the registry entries *)
      List.iter
        (fun r -> Hashtbl.remove t.registry r.r_spec.seed_id)
        registered;
      Error
        (Printf.sprintf "task %s cannot be placed with available resources"
           spec.ts_name)
    end
    else begin
      Harvester.start h;
      t.profiles <- (task.task_id, profile) :: t.profiles;
      Ok task
    end
  end

(* Fault tolerance (the paper's stated future work): mark a switch as
   failed.  Its seeds are lost (crash semantics: no state snapshot); the
   global placement re-optimizes and restarts them on surviving candidate
   switches where possible.  Tasks whose seeds were pinned solely to the
   failed switch are dropped (C1). *)
let fail_switch t node =
  if Hashtbl.mem t.soils node && not (Hashtbl.mem t.failed node) then begin
    Hashtbl.replace t.failed node ();
    List.iter
      (fun (r : reg) ->
        match r.r_exec with
        | Some exec when Seed_exec.node exec = node ->
            Seed_exec.destroy exec;
            r.r_exec <- None
        | Some _ | None -> ())
      (sorted_regs t);
    (* the failed switch's assignments are gone *)
    t.assignments <-
      List.filter (fun (a : Model.assignment) -> a.a_node <> node)
        t.assignments;
    reoptimize t
  end

(* Recovery: the switch rejoins the pool of candidate sites.  Crash
   semantics mean its previous seed state is gone, so recovery is purely a
   re-optimization over the enlarged instance — seeds that were displaced
   (or dropped, if pinned) move back or restart there.  [reoptimize:false]
   exists so the chaos suite can demonstrate that skipping the
   re-optimization step is an invariant violation the suite catches. *)
let recover_switch ?reoptimize:(reopt = true) t node =
  if Hashtbl.mem t.failed node then begin
    Hashtbl.remove t.failed node;
    if reopt then reoptimize t
  end

let failed_switches t =
  Hashtbl.fold (fun n () acc -> n :: acc) t.failed [] |> List.sort Int.compare

let undeploy t task =
  List.iter
    (fun r ->
      (match r.r_exec with
      | Some exec -> Seed_exec.destroy exec
      | None -> ());
      Hashtbl.remove t.registry r.r_spec.seed_id)
    (regs_of_task t task);
  t.assignments <-
    List.filter
      (fun (a : Model.assignment) -> Hashtbl.mem t.registry a.a_seed)
      t.assignments;
  t.reported_utility <- Model.total_utility (instance_stub t) t.assignments;
  t.profiles <- List.filter (fun (id, _) -> id <> task.task_id) t.profiles;
  task.placed <- false

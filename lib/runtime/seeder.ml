module Engine = Farm_sim.Engine
module Metrics = Farm_sim.Metrics
module Trace = Farm_sim.Trace
module Value = Farm_almanac.Value
module Ast = Farm_almanac.Ast
module Parser = Farm_almanac.Parser
module Typecheck = Farm_almanac.Typecheck
module Analysis = Farm_almanac.Analysis
module Interp = Farm_almanac.Interp
module Lint = Farm_almanac.Lint
module Equiv = Farm_almanac.Equiv
module Reach = Farm_almanac.Reach
module Diagnostic = Farm_almanac.Diagnostic
module Model = Farm_placement.Model
module Heuristic = Farm_placement.Heuristic
module Conflict = Farm_placement.Conflict
module Fabric = Farm_net.Fabric
module Switch_model = Farm_net.Switch_model

(* Control-channel protection knobs (overload resilience).  Heartbeats are
   deliberately outside its jurisdiction: gating them behind an open
   breaker would turn one congested channel into a false failure
   detection, and the resulting migration into more control traffic — the
   exact storm this layer exists to prevent. *)
type ctrl_protection = {
  rate_limit : float;  (* control sends per second (token refill rate) *)
  burst : float;  (* bucket depth: sends admitted back-to-back *)
  breaker_threshold : int;  (* consecutive failures before opening *)
  breaker_cooldown : float;  (* open duration before the half-open probe *)
  max_inflight_retries : int;  (* per-switch bound on pending retries *)
  retry_jitter : float;  (* max extra backoff, drawn from a keyed stream *)
}

let default_protection =
  { rate_limit = 2000.; burst = 64.; breaker_threshold = 5;
    breaker_cooldown = 50e-3; max_inflight_retries = 8; retry_jitter = 1e-3 }

type config = {
  soil_config : Soil.config;
  control_latency : float;
  message_overhead_bytes : float;
  migration_time : float;
  engine : Farm_almanac.Engine.engine;
  retry_backoff : float;
  max_retries : int;
  refuse_conflicts : bool;
  verify_on_deploy : bool;
  (* self-healing control plane *)
  auto_heal : bool;
  heartbeat_interval : float;
  detection_timeout : float;
  checkpoint_interval : float;
  checkpoint_full_every : int;
  ctrl_bandwidth_bps : float;
  (* overload resilience; both [None] by default so the pre-overload
     behavior stays byte-identical *)
  ctrl_protection : ctrl_protection option;
  harvester_overload : Harvester.overload_config option;
}

let default_config =
  { soil_config = Soil.default_config;
    control_latency = 250e-6;  (* DC-internal RTT/2 to the controller *)
    message_overhead_bytes = 64.;
    migration_time = 5e-3;
    engine = `Compiled;
    retry_backoff = 1e-3;
    max_retries = 5;
    refuse_conflicts = false;
    verify_on_deploy = false;
    auto_heal = false;
    heartbeat_interval = 10e-3;
    detection_timeout = 35e-3;  (* > 3 missed beats at the default rate *)
    checkpoint_interval = 50e-3;
    checkpoint_full_every = 4;
    ctrl_bandwidth_bps = 1e9;
    ctrl_protection = None;
    harvester_overload = None }

(* every overload-protection layer switched on at its default settings *)
let overload_defaults =
  { default_config with
    soil_config =
      { Soil.default_config with overload = Some Soil.default_overload };
    ctrl_protection = Some default_protection;
    harvester_overload = Some Harvester.default_overload }

type ctrl_faults = { loss : float; delay : float; dup : float }

let perfect_ctrl = { loss = 0.; delay = 0.; dup = 0. }

type task_spec = {
  ts_name : string;
  ts_source : string;
  ts_externals : (string * (string * Value.t) list) list;
  ts_builtins : (string * (Value.t list -> Value.t)) list;
  ts_extra_sigs : (string * Typecheck.func_sig) list;
  ts_harvester : Harvester.spec;
  ts_adaptive : string list;
      (* poll variables the seeds may stretch in degraded mode *)
}

let simple_spec ~name ~source =
  { ts_name = name; ts_source = source; ts_externals = []; ts_builtins = [];
    ts_extra_sigs = []; ts_harvester = Harvester.collector_spec;
    ts_adaptive = [] }

type task = {
  task_id : int;
  spec : task_spec;
  xml : string Lazy.t;
      (* the interchange form shipped to switches (§V-A d) *)
  mutable harvester : Harvester.t option;
  mutable placed : bool;
}

(* last checkpoint of a seed accumulated at the seeder (deltas merged) *)
type store = {
  st_epoch : int;  (* stores are replaced wholesale on an epoch change *)
  mutable st_seq : int;
  mutable st_vars : (string * Value.t) list;
  mutable st_state : string;
  mutable st_time : float;
}

(* registry entry for one seed of one task *)
type reg = {
  r_spec : Model.seed_spec;
  r_task : task;
  r_machine : string;
  r_polls : Analysis.poll_summary list;
  r_externals : (string * Value.t) list;
  mutable r_exec : Seed_exec.t option;
  mutable r_migrating : bool;
  mutable r_epoch : int;  (* epoch of the current/last instance *)
  mutable r_ck_timer : Engine.timer option;
  mutable r_next_ck : int;  (* next checkpoint seq (sender side) *)
  mutable r_last_shipped : (string * Value.t) list option;  (* delta base *)
  mutable r_store : store option;  (* seeder-side accumulated checkpoint *)
}

(* live state of the control-channel protection; allocated only when
   [config.ctrl_protection] is set, so protection-off runs carry no extra
   engine events, rng draws or registry entries *)
type ov = {
  ovp : ctrl_protection;
  bucket : Overload.Token_bucket.t;  (* global control-channel pacing *)
  breakers : (int, Overload.Breaker.t) Hashtbl.t;  (* per destination *)
  inflight : (int, int) Hashtbl.t;  (* per-switch retries awaiting a slot *)
  (* base for the per-message keyed jitter streams: replays draw the same
     jitter for the same (msg key, try) regardless of interleaving *)
  jitter_rng : Farm_sim.Rng.t;
  mutable rate_limited : int;  (* sends delayed by the token bucket *)
  mutable breaker_dropped : int;  (* sends refused by an open breaker *)
  mutable retry_capped : int;  (* retries refused by the in-flight bound *)
}

type t = {
  engine : Engine.t;
  fabric : Fabric.t;
  cfg : config;
  soils : (int, Soil.t) Hashtbl.t;
  failed : (int, unit) Hashtbl.t;  (* control-plane view: marked down *)
  (* ground truth: switches whose management plane actually crashed, with
     the crash time.  The seeder only learns about these through missing
     heartbeats — [failed] and [down] can disagree in both directions. *)
  down : (int, float) Hashtbl.t;
  last_crash : (int, float) Hashtbl.t;  (* survives revival, for metrics *)
  last_seen : (int, float) Hashtbl.t;  (* last heartbeat arrival per switch *)
  detected : (int, unit) Hashtbl.t;  (* failed entries owed to the detector *)
  registry : (int, reg) Hashtbl.t;  (* seed_id -> reg *)
  mutable next_seed : int;
  mutable next_task : int;
  mutable next_msg : int;  (* control-message ids (idempotent receipt) *)
  mutable assignments : Model.assignment list;
  mutable migration_count : int;
  collector_bytes : Metrics.Counter.t;
  mutable collector_messages : int;
  (* control-plane fault injection; the rng is split lazily so fault-free
     runs draw exactly the same random streams as before this existed *)
  mutable ctrl : ctrl_faults;
  ctrl_rng : Farm_sim.Rng.t Lazy.t;
  mutable retransmissions : int;
  mutable lost_messages : int;
  (* utility the optimizer reported for the current placement; checked
     against a from-scratch recomputation by the chaos suite *)
  mutable reported_utility : float;
  (* conflict-detection profiles of deployed tasks, by task id *)
  mutable profiles : (int * Conflict.profile) list;
  (* every diagnostic (lint, conflicts) of the most recent deploy *)
  mutable last_diags : Diagnostic.t list;
  (* demoted instances on suspected switches: (node, seed_id, exec).
     Only false positives produce zombies — a genuinely crashed switch has
     no live instance left to demote. *)
  mutable zombies : (int * int * Seed_exec.t) list;
  (* self-healing instrumentation *)
  detection_latency : Metrics.Histogram.t;
  recovery_time : Metrics.Histogram.t;
  checkpoint_bytes : Metrics.Counter.t;
  mutable heartbeats_sent : int;
  mutable heartbeats_delivered : int;
  mutable checkpoints_shipped : int;
  mutable checkpoint_gaps : int;
  mutable detections : int;
  mutable false_detections : int;
  mutable auto_recoveries : int;
  mutable zombies_fenced : int;
  mutable fenced_sends : int;
  (* overload resilience *)
  ov : ov option;
  pressured : (int, unit) Hashtbl.t;  (* soils currently under pressure *)
  mutable pressure_events : int;  (* pressure flag flips seen *)
  mutable storm_reports : int;  (* reports injected by Report_storm faults *)
}

let engine t = t.engine
let fabric t = t.fabric

let soil t node =
  match Hashtbl.find_opt t.soils node with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "Seeder.soil: no soil on node %d" node)

let soils t =
  Hashtbl.fold (fun _ s acc -> s :: acc) t.soils []
  |> List.sort (fun a b -> Int.compare (Soil.node_id a) (Soil.node_id b))

let set_ctrl_faults t f = t.ctrl <- f
let ctrl_faults t = t.ctrl
let retransmissions t = t.retransmissions
let lost_messages t = t.lost_messages

let task_name task = task.spec.ts_name

let harvester task =
  match task.harvester with
  | Some h -> h
  | None -> invalid_arg "Seeder.harvester: task has no harvester yet"

let is_placed task = task.placed

(* the live optimization instance: all registered seeds over all healthy
   soils; seeds lose failed switches from their candidate sets *)
let instance_stub t =
  let pcie = Analysis.resource_index Analysis.Pcie in
  let switches =
    Hashtbl.fold
      (fun node soilv acc ->
        if Hashtbl.mem t.failed node then acc else
        let caps = Switch_model.caps (Soil.switch soilv) in
        let avail = Array.make Analysis.n_resources 0. in
        avail.(Analysis.resource_index Analysis.VCpu) <- caps.vcpu;
        avail.(Analysis.resource_index Analysis.Ram) <- caps.ram_mb;
        avail.(Analysis.resource_index Analysis.TcamR) <-
          float_of_int
            (Farm_net.Tcam.region_capacity
               (Switch_model.tcam (Soil.switch soilv))
               Farm_net.Tcam.Monitoring);
        (* polling budget in reads/s: PCIe bits/s over one counter read *)
        avail.(pcie) <- caps.pcie_bps /. (8. *. Soil.counter_record_bytes);
        { Model.node; avail } :: acc)
      t.soils []
    |> List.sort (fun (a : Model.switch_caps) b -> Int.compare a.node b.node)
  in
  let alive (s : Model.seed_spec) =
    { s with
      candidates =
        List.filter (fun n -> not (Hashtbl.mem t.failed n)) s.candidates }
  in
  { Model.seeds =
      Hashtbl.fold (fun _ r acc -> alive r.r_spec :: acc) t.registry []
      |> List.filter (fun (s : Model.seed_spec) -> s.candidates <> [])
      |> List.sort (fun (a : Model.seed_spec) b ->
             Int.compare a.seed_id b.seed_id);
    switches; alpha_poll = 1.; previous = t.assignments }

let current_utility t = Model.total_utility (instance_stub t) t.assignments

let placement_instance = instance_stub
let current_assignments t = t.assignments
let reported_utility t = t.reported_utility

let collector_bytes t = Metrics.Counter.value t.collector_bytes
let collector_messages t = t.collector_messages
let migrations t = t.migration_count

(* rough wire size of a value *)
let rec value_bytes (v : Value.t) =
  match v with
  | Value.Unit | Value.Bool _ -> 1.
  | Value.Num _ -> 8.
  | Value.Str s -> float_of_int (String.length s)
  | Value.List l -> List.fold_left (fun a v -> a +. value_bytes v) 8. l
  | Value.Packet _ -> 64.
  | Value.Action _ -> 8.
  | Value.FilterV _ -> 32.
  | Value.Stats a -> 8. *. float_of_int (Array.length a)
  | Value.Struct (_, fs) ->
      List.fold_left (fun a (_, v) -> a +. value_bytes v) 16. fs

let sorted_regs t =
  Hashtbl.fold (fun _ r acc -> r :: acc) t.registry []
  |> List.sort (fun a b -> Int.compare a.r_spec.seed_id b.r_spec.seed_id)

let regs_of_task t task =
  List.filter (fun r -> r.r_task.task_id = task.task_id) (sorted_regs t)

let seed_specs t task = List.map (fun r -> r.r_spec) (regs_of_task t task)

let seeds t task =
  List.filter_map (fun r -> r.r_exec) (regs_of_task t task)

let seed_on t task ~machine ~node =
  List.find_opt
    (fun r ->
      r.r_machine = machine
      && match r.r_exec with
         | Some e -> Seed_exec.node e = node
         | None -> false)
    (regs_of_task t task)
  |> fun r -> Option.bind r (fun r -> r.r_exec)

(* ------------------------------------------------------------------ *)
(* Message routing                                                     *)
(* ------------------------------------------------------------------ *)

(* Control-plane trace instant, elided to one branch when no sink is
   attached.  [tid] 0 = the seeder's own track. *)
let trace_instant t ~name args =
  match Engine.tracer t.engine with
  | None -> ()
  | Some tr ->
      Trace.instant tr ~ts:(Engine.now t.engine) ~cat:"seeder" ~name ~args ()

let trace_span t ~name ~dur args =
  match Engine.tracer t.engine with
  | None -> ()
  | Some tr ->
      Trace.span tr ~ts:(Engine.now t.engine) ~dur ~cat:"seeder" ~name ~args ()

(* The circuit breaker guarding one switch's control channel (created on
   first use; only reachable with protection enabled). *)
let breaker_of ov node =
  match Hashtbl.find_opt ov.breakers node with
  | Some b -> b
  | None ->
      let b =
        Overload.Breaker.create ~threshold:ov.ovp.breaker_threshold
          ~cooldown:ov.ovp.breaker_cooldown
      in
      Hashtbl.replace ov.breakers node b;
      b

(* Unicast over the (possibly degraded) control plane.  [deliver] runs at
   the receiver and reports whether the recipient took the message
   ([`Delivered]), is temporarily away — migrating or being re-placed — and
   worth a retry ([`Absent]), or is gone for good ([`Gone]).  Loss and
   absence are retried with exponential backoff up to [max_retries]; all
   draws are skipped on a perfect control plane so fault-free runs are
   byte-identical to the pre-fault-injection behavior.

   With [ctrl_protection] enabled, [dest] names the switch whose breaker
   gates the send (loss / absence feed it failures, any answer from the
   other end closes it), the global token bucket paces all unicasts, the
   number of retries awaiting a slot per switch is bounded, and [key]
   selects a deterministic jitter stream that decorrelates the retry
   backoffs of concurrent messages.  Heartbeats use {!oneshot_send} and
   are never gated. *)
let rec control_send t ?(tries = 0) ?dest ?key deliver =
  let c = t.ctrl in
  let jitter () =
    match (t.ov, key) with
    | Some ov, Some k when ov.ovp.retry_jitter > 0. ->
        Farm_sim.Rng.uniform
          (Farm_sim.Rng.stream ov.jitter_rng ((k * 8) + tries))
          0. ov.ovp.retry_jitter
    | _ -> 0.
  in
  let retry_slot () =
    match (t.ov, dest) with
    | Some ov, Some node ->
        let n = Option.value (Hashtbl.find_opt ov.inflight node) ~default:0 in
        if n >= ov.ovp.max_inflight_retries then false
        else begin
          Hashtbl.replace ov.inflight node (n + 1);
          true
        end
    | _ -> true
  in
  let retry_slot_done () =
    match (t.ov, dest) with
    | Some ov, Some node ->
        let n = Option.value (Hashtbl.find_opt ov.inflight node) ~default:1 in
        Hashtbl.replace ov.inflight node (max 0 (n - 1))
    | _ -> ()
  in
  let breaker_failure () =
    match (t.ov, dest) with
    | Some ov, Some node ->
        Overload.Breaker.failure (breaker_of ov node)
          ~now:(Engine.now t.engine)
    | _ -> ()
  in
  let breaker_success () =
    match (t.ov, dest) with
    | Some ov, Some node -> Overload.Breaker.success (breaker_of ov node)
    | _ -> ()
  in
  let resend () =
    if tries >= t.cfg.max_retries then begin
      t.lost_messages <- t.lost_messages + 1;
      trace_instant t ~name:"ctrl_lost" []
    end
    else if not (retry_slot ()) then begin
      (match t.ov with
      | Some ov -> ov.retry_capped <- ov.retry_capped + 1
      | None -> ());
      t.lost_messages <- t.lost_messages + 1;
      trace_instant t ~name:"ctrl_retry_capped"
        [ ("node", Trace.I (Option.value dest ~default:(-1))) ]
    end
    else begin
      t.retransmissions <- t.retransmissions + 1;
      trace_instant t ~name:"ctrl_retry" [ ("try", Trace.I (tries + 1)) ];
      let backoff =
        (t.cfg.retry_backoff *. (2. ** float_of_int tries)) +. jitter ()
      in
      Engine.schedule t.engine
        ~delay:(t.cfg.control_latency +. c.delay +. backoff)
        (fun _ ->
          retry_slot_done ();
          control_send t ~tries:(tries + 1) ?dest ?key deliver)
    end
  in
  let transmit () =
    let lost =
      c.loss > 0. && Farm_sim.Rng.bernoulli (Lazy.force t.ctrl_rng) c.loss
    in
    if lost then begin
      breaker_failure ();
      resend ()
    end
    else begin
      let dup =
        c.dup > 0. && Farm_sim.Rng.bernoulli (Lazy.force t.ctrl_rng) c.dup
      in
      trace_span t ~name:"ctrl_send" ~dur:(t.cfg.control_latency +. c.delay)
        [];
      Engine.schedule t.engine ~delay:(t.cfg.control_latency +. c.delay)
        (fun _ ->
          match deliver () with
          | `Delivered -> breaker_success ()
          | `Absent ->
              breaker_failure ();
              resend ()
          | `Gone ->
              (* the channel answered; only the recipient is gone *)
              breaker_success ();
              t.lost_messages <- t.lost_messages + 1);
      if dup then
        (* duplicated in flight: second copy, delivery outcome ignored *)
        Engine.schedule t.engine
          ~delay:(t.cfg.control_latency +. c.delay +. t.cfg.retry_backoff)
          (fun _ -> ignore (deliver () : [ `Delivered | `Absent | `Gone ]))
    end
  in
  match t.ov with
  | None -> transmit ()
  | Some ov ->
      let now = Engine.now t.engine in
      let refused =
        match dest with
        | Some node -> not (Overload.Breaker.allow (breaker_of ov node) ~now)
        | None -> false
      in
      if refused then begin
        ov.breaker_dropped <- ov.breaker_dropped + 1;
        t.lost_messages <- t.lost_messages + 1;
        trace_instant t ~name:"ctrl_breaker_drop"
          [ ("node", Trace.I (Option.value dest ~default:(-1))) ]
      end
      else begin
        let delay = Overload.Token_bucket.reserve ov.bucket ~now in
        if delay > 0. then begin
          ov.rate_limited <- ov.rate_limited + 1;
          trace_instant t ~name:"ctrl_rate_limited" [];
          Engine.schedule t.engine ~delay (fun _ -> transmit ())
        end
        else transmit ()
      end

(* Fire-and-forget transmission: heartbeats and checkpoints.  No retry —
   a retried heartbeat would defeat timeout-based detection, and a stale
   checkpoint is superseded by the next interval anyway.  [extra] models
   serialization time on the control link (checkpoint bytes over
   [ctrl_bandwidth_bps]). *)
let oneshot_send t ?(extra = 0.) deliver =
  let c = t.ctrl in
  let lost =
    c.loss > 0. && Farm_sim.Rng.bernoulli (Lazy.force t.ctrl_rng) c.loss
  in
  if not lost then begin
    let dup =
      c.dup > 0. && Farm_sim.Rng.bernoulli (Lazy.force t.ctrl_rng) c.dup
    in
    let delay = t.cfg.control_latency +. c.delay +. extra in
    Engine.schedule t.engine ~delay (fun _ -> deliver ());
    if dup then
      Engine.schedule t.engine ~delay:(delay +. t.cfg.retry_backoff)
        (fun _ -> deliver ())
  end

let deliver_to_harvester t task ~from_switch ~prov v =
  Farm_sim.Metrics.Counter.add t.collector_bytes
    (value_bytes v +. t.cfg.message_overhead_bytes);
  t.collector_messages <- t.collector_messages + 1;
  (* the breaker guards the per-switch channel in both directions; the
     message counter doubles as the jitter-stream key *)
  control_send t ~dest:from_switch ~key:t.collector_messages (fun () ->
      match task.harvester with
      | Some h ->
          Harvester.handle ~provenance:prov h ~from_switch v;
          `Delivered
      | None -> `Gone)

(* Deliver to one registered seed; retried while the seed is away
   (migrating, or waiting to be re-placed after a switch failure).  Every
   logical message gets a fresh id so the receiving instance can drop the
   retransmitted / ctrl-duplicated copies (idempotent receipt). *)
let send_to_reg t (r : reg) ~from v =
  let msg_id = t.next_msg in
  t.next_msg <- t.next_msg + 1;
  let dest = Option.map Seed_exec.node r.r_exec in
  control_send t ?dest ~key:msg_id (fun () ->
      match r.r_exec with
      | Some e ->
          Seed_exec.deliver ~msg_id e ~from v;
          `Delivered
      | None ->
          if Hashtbl.mem t.registry r.r_spec.seed_id then `Absent else `Gone)

let deliver_to_seeds t task ~machine ~node v ~from =
  let targets =
    List.filter
      (fun r ->
        r.r_machine = machine
        &&
        match (node, r.r_exec) with
        | None, Some _ -> true
        | Some n, Some e -> Seed_exec.node e = n
        | _, None -> false)
      (regs_of_task t task)
  in
  List.iter (fun r -> send_to_reg t r ~from v) targets

let seed_send t task exec (target : Interp.target) v =
  match target with
  | Interp.To_harvester ->
      (* stamp provenance: the harvester fences stale epochs and dedups
         (epoch, seq) so zombies and duplicated deliveries are harmless *)
      let prov =
        { Harvester.p_seed = Seed_exec.seed_id exec;
          p_epoch = Seed_exec.epoch exec;
          p_seq = Seed_exec.alloc_seq exec }
      in
      deliver_to_harvester t task ~from_switch:(Seed_exec.node exec) ~prov v
  | Interp.To_machine (m, node) ->
      (* seed→seed messages route through the seeder, which drops traffic
         from instances it has already superseded (fencing at the router) *)
      let live =
        match Hashtbl.find_opt t.registry (Seed_exec.seed_id exec) with
        | Some r -> Seed_exec.epoch exec = r.r_epoch
        | None -> false
      in
      if live then
        deliver_to_seeds t task ~machine:m ~node v
          ~from:(Interp.From_machine (Seed_exec.machine_name exec))
      else t.fenced_sends <- t.fenced_sends + 1

(* ------------------------------------------------------------------ *)
(* Placement application                                               *)
(* ------------------------------------------------------------------ *)

let stop_ck_timer r =
  match r.r_ck_timer with
  | Some tm ->
      Engine.cancel tm;
      r.r_ck_timer <- None
  | None -> ()

let retire_exec r =
  (match r.r_exec with
  | Some exec ->
      Seed_exec.destroy exec;
      r.r_exec <- None
  | None -> ());
  stop_ck_timer r

let stored_checkpoint r =
  Option.map (fun st -> (st.st_vars, st.st_state)) r.r_store

(* Accept one checkpoint at the seeder.  Deltas merge only when they are
   contiguous with the accumulated state and belong to the current
   instance; anything else waits for the next full snapshot. *)
let receive_checkpoint t (r : reg) (ck : Checkpoint.t) =
  if ck.ck_epoch = r.r_epoch then
    match r.r_store with
    | Some st when st.st_epoch = ck.ck_epoch ->
        if ck.ck_seq <= st.st_seq then ()  (* duplicate / reordered *)
        else if ck.ck_full || ck.ck_seq = st.st_seq + 1 then begin
          st.st_vars <- Checkpoint.apply ~base:st.st_vars ck;
          st.st_state <- ck.ck_state;
          st.st_seq <- ck.ck_seq;
          st.st_time <- Engine.now t.engine
        end
        else t.checkpoint_gaps <- t.checkpoint_gaps + 1
    | _ ->
        if ck.ck_full then
          r.r_store <-
            Some
              { st_epoch = ck.ck_epoch; st_seq = ck.ck_seq;
                st_vars = ck.ck_vars; st_state = ck.ck_state;
                st_time = Engine.now t.engine }
        else t.checkpoint_gaps <- t.checkpoint_gaps + 1

let ship_checkpoint t (r : reg) =
  match r.r_exec with
  | None -> ()
  | Some exec ->
      let vars, state = Seed_exec.snapshot exec in
      let seq = r.r_next_ck in
      r.r_next_ck <- seq + 1;
      let full_every = max 1 t.cfg.checkpoint_full_every in
      let ck_full, ck_vars, ck_removed =
        match r.r_last_shipped with
        | None -> (true, vars, [])
        | Some _ when seq mod full_every = 0 -> (true, vars, [])
        | Some base ->
            let changed, removed = Checkpoint.delta ~base vars in
            (false, changed, removed)
      in
      r.r_last_shipped <- Some vars;
      let ck =
        { Checkpoint.ck_seed = r.r_spec.seed_id;
          ck_epoch = Seed_exec.epoch exec; ck_seq = seq; ck_full; ck_vars;
          ck_removed; ck_state = state }
      in
      let bytes = Checkpoint.wire_bytes ck in
      t.checkpoints_shipped <- t.checkpoints_shipped + 1;
      Metrics.Counter.add t.checkpoint_bytes bytes;
      (* serializing state burns management CPU on the switch *)
      Soil.charge_cpu (Seed_exec.soil exec) (2e-6 +. (bytes *. 5e-9));
      (* shipping it competes for control-channel bandwidth *)
      let extra = bytes *. 8. /. t.cfg.ctrl_bandwidth_bps in
      trace_span t ~name:"checkpoint"
        ~dur:(t.cfg.control_latency +. extra)
        [ ("seed", Trace.I r.r_spec.seed_id); ("bytes", Trace.F bytes) ];
      oneshot_send t ~extra (fun () -> receive_checkpoint t r ck)

let start_ck_timer t r =
  stop_ck_timer r;
  if t.cfg.auto_heal && t.cfg.checkpoint_interval > 0. then
    r.r_ck_timer <-
      Some
        (Engine.every t.engine ~period:t.cfg.checkpoint_interval (fun _ ->
             ship_checkpoint t r))

let instantiate t (r : reg) (a : Model.assignment) ~restore =
  (* ground truth beats belief: a push to a switch whose management plane
     is down is a lost control message — the seeder still thinks the seed
     is placed, the failure detector eventually tells it otherwise.  (The
     race is real: a pre-crash in-flight heartbeat can trigger a re-push
     to a switch that just died.) *)
  if Hashtbl.mem t.down a.a_node then ()
  else begin
  let soilv = soil t a.a_node in
  (* the switch receives the task as XML and decompiles it into a seed,
     exactly as the soil does in the paper's implementation *)
  let program = Farm_almanac.Machine_xml.load (Lazy.force r.r_task.xml) in
  (* every (re)instantiation is a new epoch: harvesters fence on it, so a
     zombie of the previous instance can never outvote this one *)
  r.r_epoch <- r.r_epoch + 1;
  let restore =
    match restore with
    | Some _ -> restore  (* live migration snapshot *)
    | None -> stored_checkpoint r  (* crash recovery: last checkpoint *)
  in
  let exec =
    Seed_exec.deploy ~soil:soilv ~program ~engine:t.cfg.engine
      ~machine:r.r_machine ~externals:r.r_externals
      ~builtins:r.r_task.spec.ts_builtins ?restore ~epoch:r.r_epoch
      ~adaptive:r.r_task.spec.ts_adaptive ~resources:a.a_res ~polls:r.r_polls
      ~send:(fun exec target v -> seed_send t r.r_task exec target v)
      ~seed_id:r.r_spec.seed_id ()
  in
  r.r_exec <- Some exec;
  r.r_next_ck <- 0;
  r.r_last_shipped <- None;
  trace_instant t ~name:"instantiate"
    [ ("seed", Trace.I r.r_spec.seed_id); ("node", Trace.I a.a_node);
      ("epoch", Trace.I r.r_epoch) ];
  (match r.r_task.harvester with
  | Some h -> Harvester.fence h ~seed_id:r.r_spec.seed_id ~epoch:r.r_epoch
  | None -> ());
  start_ck_timer t r
  end

let apply_placement t (placement : Model.placement) =
  let new_assignments = placement.assignments in
  let by_seed = Hashtbl.create 64 in
  List.iter
    (fun (a : Model.assignment) -> Hashtbl.replace by_seed a.a_seed a)
    new_assignments;
  (* destroy / migrate / retune existing seeds, in seed-id order so
     same-time engine events are enqueued deterministically *)
  List.iter
    (fun (r : reg) ->
      let seed_id = r.r_spec.seed_id in
      match (r.r_exec, Hashtbl.find_opt by_seed seed_id) with
      | Some _, None ->
          (* dropped from the placement *)
          retire_exec r
      | Some exec, Some a when Seed_exec.node exec <> a.a_node ->
          (* migrate: snapshot, transfer state, resume at the target *)
          let snapshot = Seed_exec.snapshot exec in
          trace_span t ~name:"migrate" ~dur:t.cfg.migration_time
            [ ("seed", Trace.I seed_id);
              ("from", Trace.I (Seed_exec.node exec));
              ("to", Trace.I a.a_node) ];
          retire_exec r;
          r.r_migrating <- true;
          t.migration_count <- t.migration_count + 1;
          Engine.schedule t.engine ~delay:t.cfg.migration_time (fun _ ->
              r.r_migrating <- false;
              (* the fabric may have changed while the state was in
                 flight: land on the seed's *current* assignment, and only
                 if that switch is still up — otherwise the shipped
                 checkpoint is the surviving copy and the healing layer
                 re-places the seed *)
              let a' =
                List.find_opt
                  (fun (a' : Model.assignment) -> a'.a_seed = seed_id)
                  t.assignments
              in
              match (r.r_exec, a') with
              | None, Some a'
                when (not (Hashtbl.mem t.failed a'.a_node))
                     && not (Hashtbl.mem t.down a'.a_node) ->
                  instantiate t r a' ~restore:(Some snapshot)
              | _ -> ())
      | Some exec, Some a ->
          if Seed_exec.resources exec <> a.a_res then
            Seed_exec.set_resources exec a.a_res
      | None, Some a when not r.r_migrating ->
          instantiate t r a ~restore:None
      | None, _ -> ())
    (sorted_regs t);
  t.assignments <- new_assignments;
  t.reported_utility <- placement.utility;
  (* task placement flags *)
  let tasks = Hashtbl.create 8 in
  Hashtbl.iter
    (fun _ (r : reg) -> Hashtbl.replace tasks r.r_task.task_id r.r_task)
    t.registry;
  Hashtbl.iter
    (fun _ task ->
      task.placed <-
        List.exists
          (fun r -> Hashtbl.mem by_seed r.r_spec.seed_id)
          (regs_of_task t task))
    tasks

let reoptimize t =
  let inst = instance_stub t in
  let placement, _stats = Heuristic.optimize inst in
  apply_placement t placement

(* ------------------------------------------------------------------ *)
(* Self-healing: heartbeats, failure detection, automatic migration    *)
(* ------------------------------------------------------------------ *)

let kill_zombies_on t node =
  let mine, rest = List.partition (fun (n, _, _) -> n = node) t.zombies in
  t.zombies <- rest;
  List.iter
    (fun (_, _, exec) ->
      if Seed_exec.is_alive exec then Seed_exec.destroy exec;
      t.zombies_fenced <- t.zombies_fenced + 1)
    mine

(* Tell the (possibly only suspected-dead) switch to terminate a demoted
   instance.  If the zombie was already cleaned up by the time the message
   lands, it is simply gone. *)
let send_kill t exec =
  control_send t ~dest:(Seed_exec.node exec) (fun () ->
      if List.exists (fun (_, _, e) -> e == exec) t.zombies then begin
        t.zombies <- List.filter (fun (_, _, e) -> not (e == exec)) t.zombies;
        Seed_exec.destroy exec;
        t.zombies_fenced <- t.zombies_fenced + 1;
        `Delivered
      end
      else `Gone)

(* Re-place only the orphaned seeds; everything else stays pinned.  Falls
   back to a full optimize inside [optimize_incremental] if pinning would
   drop a task. *)
let heal_replace t ~affected =
  let inst = instance_stub t in
  let placement, _stats = Heuristic.optimize_incremental inst ~affected in
  apply_placement t placement

(* The detector declared [node] dead: fence it off and migrate its seeds.
   If the declaration is a false positive (the switch is merely
   partitioned), its instances cannot be reached to be stopped — they are
   demoted to zombies, sent a kill order, and fenced by epoch at the
   harvesters until the switch rejoins. *)
let declare_failed t node =
  let now = Engine.now t.engine in
  t.detections <- t.detections + 1;
  trace_instant t ~name:"declare_failed" [ ("node", Trace.I node) ];
  (match Hashtbl.find_opt t.down node with
  | Some t0 -> Metrics.Histogram.record t.detection_latency (now -. t0)
  | None -> t.false_detections <- t.false_detections + 1);
  Hashtbl.replace t.failed node ();
  Hashtbl.replace t.detected node ();
  List.iter
    (fun (r : reg) ->
      match r.r_exec with
      | Some exec when Seed_exec.node exec = node ->
          r.r_exec <- None;
          stop_ck_timer r;
          t.zombies <- t.zombies @ [ (node, r.r_spec.seed_id, exec) ];
          send_kill t exec
      | Some _ | None -> ())
    (sorted_regs t);
  let orphans =
    List.filter_map
      (fun (a : Model.assignment) ->
        if a.a_node = node then Some a.a_seed else None)
      t.assignments
    |> List.sort Int.compare
  in
  t.assignments <-
    List.filter (fun (a : Model.assignment) -> a.a_node <> node) t.assignments;
  heal_replace t ~affected:orphans;
  (* instrumentation: seeds whose new instance is already up recovered in
     one detection + re-placement pass *)
  List.iter
    (fun seed_id ->
      match Hashtbl.find_opt t.registry seed_id with
      | Some r when r.r_exec <> None ->
          t.auto_recoveries <- t.auto_recoveries + 1;
          (match Hashtbl.find_opt t.down node with
          | Some t0 -> Metrics.Histogram.record t.recovery_time (now -. t0)
          | None -> ())
      | _ -> ())
    orphans

(* A switch the control plane had written off is provably alive and
   reachable again: lift the fence and re-optimize over the enlarged
   fabric.  Any zombies still on it are terminated as part of the rejoin
   handshake. *)
let control_recover t node =
  Hashtbl.remove t.failed node;
  Hashtbl.remove t.detected node;
  kill_zombies_on t node;
  Hashtbl.replace t.last_seen node (Engine.now t.engine);
  reoptimize t

(* A heartbeat proves the switch's management plane is up.  If it was
   detector-failed this is either a false positive or a post-crash reboot
   — rejoin it.  Otherwise re-push any seed assigned here whose instance
   died with a crash the detector never saw (down and back up within the
   detection timeout). *)
let rejoin_orphans t node =
  let now = Engine.now t.engine in
  List.iter
    (fun (a : Model.assignment) ->
      if a.a_node = node then
        match Hashtbl.find_opt t.registry a.a_seed with
        | Some r when r.r_exec = None && not r.r_migrating ->
            instantiate t r a ~restore:None;
            (* the re-push is itself lost if the switch died again in the
               meantime — only count recoveries that took effect *)
            if r.r_exec <> None then begin
              t.auto_recoveries <- t.auto_recoveries + 1;
              match Hashtbl.find_opt t.last_crash node with
              | Some t0 when t0 <= now ->
                  Metrics.Histogram.record t.recovery_time (now -. t0)
              | _ -> ()
            end
        | _ -> ())
    t.assignments

let on_heartbeat t node =
  t.heartbeats_delivered <- t.heartbeats_delivered + 1;
  Hashtbl.replace t.last_seen node (Engine.now t.engine);
  if Hashtbl.mem t.detected node then control_recover t node
  else if not (Hashtbl.mem t.failed node) then rejoin_orphans t node

let beat t node =
  if not (Hashtbl.mem t.down node) then begin
    t.heartbeats_sent <- t.heartbeats_sent + 1;
    trace_instant t ~name:"heartbeat" [ ("node", Trace.I node) ];
    oneshot_send t (fun () -> on_heartbeat t node)
  end

let detect t =
  let now = Engine.now t.engine in
  List.iter
    (fun soilv ->
      let node = Soil.node_id soilv in
      if not (Hashtbl.mem t.failed node) then
        let seen =
          match Hashtbl.find_opt t.last_seen node with
          | Some at -> at
          | None -> now
        in
        if now -. seen > t.cfg.detection_timeout then declare_failed t node)
    (soils t)

let install_healing t =
  if t.cfg.heartbeat_interval <= 0. then
    invalid_arg "Seeder: auto_heal requires heartbeat_interval > 0";
  let now = Engine.now t.engine in
  List.iter
    (fun soilv ->
      let node = Soil.node_id soilv in
      Hashtbl.replace t.last_seen node now;
      ignore
        (Engine.every t.engine ~period:t.cfg.heartbeat_interval (fun _ ->
             beat t node)
          : Engine.timer))
    (soils t);
  ignore
    (Engine.every t.engine ~period:t.cfg.heartbeat_interval (fun _ ->
         detect t)
      : Engine.timer)

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

let create ?(config = default_config) engine fabric =
  let soils = Hashtbl.create 32 in
  List.iter
    (fun sw ->
      Hashtbl.replace soils (Switch_model.id sw)
        (Soil.create ~config:config.soil_config engine sw))
    (Fabric.switch_models fabric);
  let reg = Engine.metrics engine in
  (* built before [ctrl_rng] is ever forced, so the enabled-mode stream
     layout is fixed: one split for jitter, then the lazy ctrl split *)
  let ov =
    Option.map
      (fun ovp ->
        { ovp;
          bucket =
            Overload.Token_bucket.create ~rate:ovp.rate_limit
              ~burst:ovp.burst;
          breakers = Hashtbl.create 8; inflight = Hashtbl.create 8;
          jitter_rng = Farm_sim.Rng.split (Engine.rng engine);
          rate_limited = 0; breaker_dropped = 0; retry_capped = 0 })
      config.ctrl_protection
  in
  let t =
    { engine; fabric; cfg = config; soils; failed = Hashtbl.create 4;
      down = Hashtbl.create 4; last_crash = Hashtbl.create 4;
      last_seen = Hashtbl.create 16; detected = Hashtbl.create 4;
      registry = Hashtbl.create 64;
      next_seed = 0; next_task = 0; next_msg = 0; assignments = [];
      migration_count = 0;
      collector_bytes = Metrics.Registry.counter reg "seeder.collector.bytes";
      collector_messages = 0;
      ctrl = perfect_ctrl;
      ctrl_rng = lazy (Farm_sim.Rng.split (Engine.rng engine));
      retransmissions = 0; lost_messages = 0; reported_utility = 0.;
      profiles = []; last_diags = []; zombies = [];
      detection_latency =
        Metrics.Registry.histogram reg "seeder.detection_latency";
      recovery_time = Metrics.Registry.histogram reg "seeder.recovery_time";
      checkpoint_bytes =
        Metrics.Registry.counter reg "seeder.checkpoint.bytes";
      heartbeats_sent = 0; heartbeats_delivered = 0;
      checkpoints_shipped = 0; checkpoint_gaps = 0; detections = 0;
      false_detections = 0; auto_recoveries = 0; zombies_fenced = 0;
      fenced_sends = 0;
      ov; pressured = Hashtbl.create 8; pressure_events = 0;
      storm_reports = 0 }
  in
  (* soils running the overload monitor report their pressure flips up *)
  Hashtbl.iter
    (fun node soilv ->
      if Soil.overload_enabled soilv then
        Soil.set_pressure_listener soilv (fun ~node:_ ~high ->
            let was = Hashtbl.mem t.pressured node in
            if high && not was then begin
              Hashtbl.replace t.pressured node ();
              t.pressure_events <- t.pressure_events + 1
            end
            else if (not high) && was then begin
              Hashtbl.remove t.pressured node;
              t.pressure_events <- t.pressure_events + 1
            end))
    soils;
  (* publish the plain mutable counters as callback gauges, sampled at
     snapshot time — no extra work on the hot paths that bump them *)
  let g name f = Metrics.Registry.gauge_fn reg name (fun () -> float_of_int (f ())) in
  g "seeder.heartbeats.sent" (fun () -> t.heartbeats_sent);
  g "seeder.heartbeats.delivered" (fun () -> t.heartbeats_delivered);
  g "seeder.checkpoints.shipped" (fun () -> t.checkpoints_shipped);
  g "seeder.checkpoints.gaps" (fun () -> t.checkpoint_gaps);
  g "seeder.detections" (fun () -> t.detections);
  g "seeder.detections.false" (fun () -> t.false_detections);
  g "seeder.recoveries.auto" (fun () -> t.auto_recoveries);
  g "seeder.zombies.fenced" (fun () -> t.zombies_fenced);
  g "seeder.sends.fenced" (fun () -> t.fenced_sends);
  g "seeder.control.retransmissions" (fun () -> t.retransmissions);
  g "seeder.control.lost" (fun () -> t.lost_messages);
  g "seeder.migrations" (fun () -> t.migration_count);
  g "seeder.collector.messages" (fun () -> t.collector_messages);
  (* overload instrumentation registers only when protection is on, so
     default runs publish exactly the pre-overload registry *)
  (match t.ov with
  | None -> ()
  | Some ov ->
      g "seeder.ctrl.rate_limited" (fun () -> ov.rate_limited);
      g "seeder.ctrl.breaker_dropped" (fun () -> ov.breaker_dropped);
      g "seeder.ctrl.retry_capped" (fun () -> ov.retry_capped);
      g "seeder.ctrl.breaker_opens" (fun () ->
          Hashtbl.fold
            (fun _ b acc -> acc + Overload.Breaker.opens b)
            ov.breakers 0);
      g "seeder.pressure.switches" (fun () -> Hashtbl.length t.pressured);
      g "seeder.pressure.events" (fun () -> t.pressure_events));
  if config.auto_heal then install_healing t;
  t

(* ------------------------------------------------------------------ *)
(* Deploy                                                              *)
(* ------------------------------------------------------------------ *)

let ( let* ) = Result.bind

let analysis_bindings (m : Ast.machine) externals : Analysis.bindings =
  let static name =
    List.find_map
      (fun (v : Ast.var_decl) ->
        if v.vname = name then
          match v.vinit with
          | Some (Ast.Int i) -> Some (Value.Num (float_of_int i))
          | Some (Ast.Float f) -> Some (Value.Num f)
          | Some (Ast.String s) -> Some (Value.Str s)
          | Some (Ast.Bool b) -> Some (Value.Bool b)
          | _ -> None
        else None)
      m.mvars
  in
  fun name ->
    match List.assoc_opt name externals with
    | Some v -> Some v
    | None -> static name

let last_deploy_diagnostics t = Diagnostic.sort t.last_diags

let deploy t spec =
  t.last_diags <- [];
  let record ds = t.last_diags <- t.last_diags @ ds in
  let parse () =
    match Parser.program_result spec.ts_source with
    | Ok p -> Ok p
    | Error d ->
        record [ d ];
        Error ("syntax error: " ^ Diagnostic.to_string d)
  in
  let* parsed = parse () in
  let* program =
    match Typecheck.check_diags ~extra:spec.ts_extra_sigs parsed with
    | Ok p -> Ok p
    | Error ds ->
        record ds;
        Error
          (match ds with
          | d :: _ -> d.Diagnostic.message
          | [] -> "type error")
  in
  (* deploy-time verification: lint the resolved program, refusing on
     error-severity diagnostics; warnings are recorded and deployment
     proceeds *)
  let bound_externals =
    List.map (fun (m, vs) -> (m, List.map fst vs)) spec.ts_externals
  in
  (* symbolic verification (optional): translation validation of the
     compiled plan against the reference semantics plus invariant/range
     proofs; its reachability results also upgrade the lint verdicts *)
  let verify_diags, reach =
    if not t.cfg.verify_on_deploy then ([], [])
    else
      let host_builtins =
        Equiv.default_host_builtins @ List.map fst spec.ts_builtins
      in
      let equiv = Equiv.verify_program ~host_builtins ~program () in
      let reach = Reach.analyze_program ~host_builtins ~program () in
      ( equiv @ List.concat_map (fun (r : Reach.result) -> r.diags) reach,
        reach )
  in
  let lint_diags =
    Lint.check_program ~externals:bound_externals ~reach program
  in
  let static_diags = Diagnostic.sort (verify_diags @ lint_diags) in
  record static_diags;
  let* () =
    if Diagnostic.has_errors static_diags then
      let d = List.find Diagnostic.is_error static_diags in
      let pass = if d.Diagnostic.code.[0] = 'V' then "verify" else "lint" in
      Error (pass ^ ": " ^ Diagnostic.to_string d)
    else Ok ()
  in
  let task =
    { task_id = t.next_task; spec;
      xml = lazy (Farm_almanac.Machine_xml.compile program);
      harvester = None; placed = false }
  in
  t.next_task <- t.next_task + 1;
  (* analyze every machine and register its seeds *)
  let topo = Fabric.topology t.fabric in
  let* registered, analyzed =
    List.fold_left
      (fun acc (m : Ast.machine) ->
        let* acc, analyzed = acc in
        let externals =
          Option.value
            (List.assoc_opt m.mname spec.ts_externals)
            ~default:[]
        in
        let bindings = analysis_bindings m externals in
        let* summary = Analysis.summarize ~bindings ~topo m in
        let polls = summary.poll_vars in
        let initial_state_util =
          match summary.state_utils with
          | (_, u) :: _ -> u
          | [] -> Analysis.default_utility
        in
        let poll_reqs =
          List.concat_map
            (fun (p : Analysis.poll_summary) ->
              match p.ptrig with
              | Ast.Poll ->
                  List.map
                    (fun subject -> { Model.subject; ival = p.ival })
                    p.subjects
              | Ast.Probe | Ast.Time -> [])
            polls
        in
        let regs =
          List.map
            (fun (site : Analysis.seed_site) ->
              let seed_id = t.next_seed in
              t.next_seed <- seed_id + 1;
              { r_spec =
                  { Model.seed_id; task_id = task.task_id;
                    candidates = site.candidates;
                    branches = initial_state_util; polls = poll_reqs };
                r_task = task; r_machine = m.mname; r_polls = polls;
                r_externals = externals; r_exec = None;
                r_migrating = false; r_epoch = -1; r_ck_timer = None;
                r_next_ck = 0; r_last_shipped = None; r_store = None })
            summary.seeds
        in
        Ok (regs @ acc, (summary, bindings) :: analyzed))
      (Ok ([], [])) program.machines
  in
  (* cross-task conflicts against already-deployed tasks *)
  let profile = Conflict.profile ~task:spec.ts_name (List.rev analyzed) in
  let conflicts =
    Conflict.check_against profile (List.map snd t.profiles)
  in
  record conflicts;
  let* () =
    if conflicts <> [] && t.cfg.refuse_conflicts then
      Error ("conflict: " ^ Diagnostic.to_string (List.hd conflicts))
    else Ok ()
  in
  if registered = [] then Error "task has no seeds to place"
  else begin
    List.iter
      (fun r -> Hashtbl.replace t.registry r.r_spec.seed_id r)
      registered;
    (* harvester wiring *)
    let ctx =
      { Harvester.send_to_seed =
          (fun ~switch v ->
            List.iter
              (fun r ->
                match r.r_exec with
                | Some e when Seed_exec.node e = switch ->
                    send_to_reg t r ~from:Interp.From_harvester v
                | Some _ | None -> ())
              (regs_of_task t task));
        broadcast =
          (fun v ->
            List.iter
              (fun r ->
                match r.r_exec with
                | Some _ -> send_to_reg t r ~from:Interp.From_harvester v
                | None -> ())
              (regs_of_task t task));
        now = (fun () -> Engine.now t.engine);
        log = (fun _ -> ()) }
    in
    let h = Harvester.create spec.ts_harvester ctx in
    Harvester.set_tracer h (Engine.tracer t.engine);
    (match t.cfg.harvester_overload with
    | Some _ as ho -> Harvester.set_overload h ho
    | None -> ());
    Harvester.metrics_register h (Engine.metrics t.engine)
      ~prefix:(Printf.sprintf "harvester.task%d." task.task_id);
    task.harvester <- Some h;
    reoptimize t;
    if not task.placed then begin
      (* release the registry entries *)
      List.iter
        (fun r -> Hashtbl.remove t.registry r.r_spec.seed_id)
        registered;
      Error
        (Printf.sprintf "task %s cannot be placed with available resources"
           spec.ts_name)
    end
    else begin
      Harvester.start h;
      t.profiles <- (task.task_id, profile) :: t.profiles;
      Ok task
    end
  end

(* ------------------------------------------------------------------ *)
(* Failures: injected crashes and the legacy omniscient path           *)
(* ------------------------------------------------------------------ *)

(* Ground-truth crash: the switch's management plane dies silently.  Every
   instance on it stops; the control plane is NOT informed — with
   [auto_heal] the failure detector notices the missing heartbeats, and
   without it the seeds stay dark until an operator calls
   {!fail_switch}/{!recover_switch}. *)
let crash_switch t node =
  if Hashtbl.mem t.soils node && not (Hashtbl.mem t.down node) then begin
    let now = Engine.now t.engine in
    Hashtbl.replace t.down node now;
    Hashtbl.replace t.last_crash node now;
    List.iter
      (fun (r : reg) ->
        match r.r_exec with
        | Some exec when Seed_exec.node exec = node -> retire_exec r
        | Some _ | None -> ())
      (sorted_regs t);
    (* any zombie instances die with the switch too *)
    kill_zombies_on t node
  end

(* The switch's management plane boots back up.  Nothing else happens
   here: the seeder finds out when heartbeats resume (auto_heal) or when
   an operator calls {!recover_switch}. *)
let revive_switch t node = Hashtbl.remove t.down node

let down_switches t =
  Hashtbl.fold (fun n _ acc -> n :: acc) t.down [] |> List.sort Int.compare

(* Fault tolerance, omniscient flavor: an operator (or a test) marks a
   switch as failed.  Its seeds are torn down cleanly and the global
   placement re-optimizes; with checkpointing enabled the re-placed seeds
   resume from their last checkpoint, otherwise they restart cold. *)
let fail_switch t node =
  if Hashtbl.mem t.soils node && not (Hashtbl.mem t.failed node) then begin
    Hashtbl.replace t.failed node ();
    List.iter
      (fun (r : reg) ->
        match r.r_exec with
        | Some exec when Seed_exec.node exec = node -> retire_exec r
        | Some _ | None -> ())
      (sorted_regs t);
    kill_zombies_on t node;
    (* the failed switch's assignments are gone *)
    t.assignments <-
      List.filter (fun (a : Model.assignment) -> a.a_node <> node)
        t.assignments;
    reoptimize t
  end

(* Recovery: a thin wrapper over the same rejoin path the failure detector
   uses.  Calling it on a healthy switch is a no-op; on a crashed one it
   models the reboot, and on a control-plane-failed one it lifts the fence
   and re-optimizes.  [reoptimize:false] skips the re-optimization — only
   useful to demonstrate that the chaos suite catches that bug. *)
let recover_switch ?reoptimize:(reopt = true) t node =
  revive_switch t node;
  if Hashtbl.mem t.failed node then begin
    Hashtbl.remove t.failed node;
    Hashtbl.remove t.detected node;
    kill_zombies_on t node;
    if Hashtbl.mem t.soils node then
      Hashtbl.replace t.last_seen node (Engine.now t.engine);
    if reopt then reoptimize t
  end

let failed_switches t =
  Hashtbl.fold (fun n () acc -> n :: acc) t.failed [] |> List.sort Int.compare

let undeploy t task =
  List.iter
    (fun r ->
      retire_exec r;
      Hashtbl.remove t.registry r.r_spec.seed_id)
    (regs_of_task t task);
  t.assignments <-
    List.filter
      (fun (a : Model.assignment) -> Hashtbl.mem t.registry a.a_seed)
      t.assignments;
  t.reported_utility <- Model.total_utility (instance_stub t) t.assignments;
  t.profiles <- List.filter (fun (id, _) -> id <> task.task_id) t.profiles;
  task.placed <- false

(* ------------------------------------------------------------------ *)
(* Self-healing introspection                                          *)
(* ------------------------------------------------------------------ *)

let healing_enabled t = t.cfg.auto_heal

let suspicion_level t node =
  if not t.cfg.auto_heal then 0
  else
    match Hashtbl.find_opt t.last_seen node with
    | None -> 0
    | Some seen ->
        let gap = (Engine.now t.engine -. seen) /. t.cfg.heartbeat_interval in
        max 0 (int_of_float gap - 1)

(* registered seeds that hold an assignment but have no running instance
   and are not mid-migration — transiently non-empty between a crash and
   its detection; must drain to [] once healing settles *)
let orphaned_seeds t =
  List.filter_map
    (fun (a : Model.assignment) ->
      match Hashtbl.find_opt t.registry a.a_seed with
      | Some r when r.r_exec = None && not r.r_migrating -> Some a.a_seed
      | _ -> None)
    t.assignments
  |> List.sort Int.compare

let last_checkpoint t seed_id =
  match Hashtbl.find_opt t.registry seed_id with
  | Some r ->
      Option.map (fun st -> (st.st_time, st.st_vars, st.st_state)) r.r_store
  | None -> None

let seed_epoch t seed_id =
  match Hashtbl.find_opt t.registry seed_id with
  | Some r -> Some r.r_epoch
  | None -> None

(* ------------------------------------------------------------------ *)
(* Overload resilience: introspection and fault hooks                  *)
(* ------------------------------------------------------------------ *)

let ctrl_protection_enabled t = t.ov <> None
let rate_limited t = match t.ov with Some ov -> ov.rate_limited | None -> 0

let breaker_dropped t =
  match t.ov with Some ov -> ov.breaker_dropped | None -> 0

let retry_capped t = match t.ov with Some ov -> ov.retry_capped | None -> 0

let breaker_opens t =
  match t.ov with
  | Some ov ->
      Hashtbl.fold (fun _ b acc -> acc + Overload.Breaker.opens b) ov.breakers
        0
  | None -> 0

let breaker_state t node =
  Option.bind t.ov (fun ov ->
      Option.map Overload.Breaker.state_name
        (Hashtbl.find_opt ov.breakers node))

let pressured_switches t =
  Hashtbl.fold (fun n () acc -> n :: acc) t.pressured []
  |> List.sort Int.compare

let pressure_events t = t.pressure_events
let storm_reports t = t.storm_reports

(* Fault.Report_storm: every seed instance on [node] blasts [reports]
   junk reports at its harvester through the regular provenance-stamped
   path, so fencing, dedup and the bounded inbox all see them as ordinary
   (if antisocial) traffic. *)
let inject_report_storm t ~node ~reports =
  trace_instant t ~name:"report_storm"
    [ ("node", Trace.I node); ("reports", Trace.I reports) ];
  List.iter
    (fun (r : reg) ->
      match r.r_exec with
      | Some exec when Seed_exec.node exec = node ->
          for i = 0 to reports - 1 do
            t.storm_reports <- t.storm_reports + 1;
            seed_send t r.r_task exec Interp.To_harvester
              (Value.Struct
                 ("Storm", [ ("i", Value.Num (float_of_int i)) ]))
          done
      | Some _ | None -> ())
    (sorted_regs t)

let detection_latency t = t.detection_latency
let recovery_time t = t.recovery_time
let heartbeats_sent t = t.heartbeats_sent
let heartbeats_delivered t = t.heartbeats_delivered
let checkpoints_shipped t = t.checkpoints_shipped
let checkpoint_gaps t = t.checkpoint_gaps
let checkpoint_bytes t = Metrics.Counter.value t.checkpoint_bytes
let detections t = t.detections
let false_detections t = t.false_detections
let auto_recoveries t = t.auto_recoveries
let zombies_fenced t = t.zombies_fenced
let fenced_sends t = t.fenced_sends
let zombie_count t = List.length t.zombies

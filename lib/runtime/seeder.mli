(** The M&M centralized control instance (§II-C b).

    The seeder turns Almanac task descriptions into deployed seeds: it
    type-checks the program, runs the static analyses (placement sites,
    utility polynomials, polling), solves the {e global} placement problem
    across {e all} co-deployed tasks with the Alg. 1 heuristic, instantiates
    or migrates seed instances accordingly, and routes messages between
    seeds and harvesters. *)

module Value := Farm_almanac.Value

type config = {
  soil_config : Soil.config;
  control_latency : float;
      (** one-way latency between a switch and the central components *)
  message_overhead_bytes : float;  (** framing per control message *)
  migration_time : float;  (** seed state-transfer duration *)
  engine : Farm_almanac.Engine.engine;
      (** execution engine deployed seeds run on: the slot-compiled
          [`Compiled] (default) or the reference interpreter [`Interp] *)
  retry_backoff : float;
      (** initial retransmission backoff for control messages whose
          recipient is temporarily away (doubles per attempt) *)
  max_retries : int;  (** retransmission attempts before giving up *)
  refuse_conflicts : bool;
      (** refuse deployment when cross-task conflict detection
          ([Farm_placement.Conflict]) reports [C3xx] warnings against
          already-deployed tasks; [false] (default) deploys and records
          them in {!last_deploy_diagnostics} *)
}

val default_config : config

(** {2 Control-plane faults}

    Degradation applied to every seed↔harvester control message: [loss] is
    the per-transmission drop probability, [delay] adds one-way latency,
    [dup] duplicates delivered messages.  Lost messages and messages to a
    seed that is temporarily away (migrating, or awaiting re-placement
    after a switch failure) are retransmitted with exponential backoff; the
    defaults ([perfect_ctrl]) keep the control plane lossless and runs
    byte-identical to the pre-fault behavior. *)

type ctrl_faults = { loss : float; delay : float; dup : float }

val perfect_ctrl : ctrl_faults

type task_spec = {
  ts_name : string;
  ts_source : string;  (** Almanac source of the task's machines *)
  ts_externals : (string * (string * Value.t) list) list;
      (** per machine: values for [external] variables *)
  ts_builtins : (string * (Value.t list -> Value.t)) list;
      (** host-side auxiliary functions *)
  ts_extra_sigs : (string * Farm_almanac.Typecheck.func_sig) list;
  ts_harvester : Harvester.spec;
}

(** A minimal spec with no externals/builtins and a collector harvester. *)
val simple_spec : name:string -> source:string -> task_spec

type task

type t

val create : ?config:config -> Farm_sim.Engine.t -> Farm_net.Fabric.t -> t

val engine : t -> Farm_sim.Engine.t
val fabric : t -> Farm_net.Fabric.t
val soil : t -> int -> Soil.t
val soils : t -> Soil.t list

(** Deploy a task: parse, check, lint, analyze, verify against deployed
    tasks, re-optimize the global placement and instantiate the task's
    seeds.  Fails (with a message) on syntax/type errors, error-severity
    lint diagnostics ([L105]–[L107]), analysis errors, or when the task
    cannot be placed.  Every diagnostic the verification passes produced
    — including warnings that did not block the deployment — is available
    from {!last_deploy_diagnostics} afterwards. *)
val deploy : t -> task_spec -> (task, string) result

(** All diagnostics (lint, cross-task conflicts) produced by the most
    recent {!deploy} call, sorted. *)
val last_deploy_diagnostics : t -> Farm_almanac.Diagnostic.t list

(** Tear a task down, releasing its switch resources. *)
val undeploy : t -> task -> unit

(** Re-run global placement (resource depletion, topology change...);
    migrates seeds whose optimal location changed. *)
val reoptimize : t -> unit

(** Fault tolerance (the paper's §VIII future work): mark a switch as
    failed.  Seeds running there are lost and restarted on surviving
    candidate switches by a global re-optimization; tasks pinned solely to
    the failed switch are dropped (C1). *)
val fail_switch : t -> int -> unit

(** Undo [fail_switch]: the switch rejoins the candidate pool (its previous
    seed state is lost — crash semantics) and the global placement
    re-optimizes, moving displaced seeds back and re-placing tasks that had
    been dropped.  [reoptimize:false] skips the re-optimization — only
    useful to demonstrate that the chaos suite catches that bug. *)
val recover_switch : ?reoptimize:bool -> t -> int -> unit

(** Failed switches, sorted. *)
val failed_switches : t -> int list

val set_ctrl_faults : t -> ctrl_faults -> unit
val ctrl_faults : t -> ctrl_faults

(** Control messages retransmitted / given up on so far. *)
val retransmissions : t -> int

val lost_messages : t -> int

(** {2 Introspection} *)

val task_name : task -> string
val harvester : task -> Harvester.t
val is_placed : task -> bool

(** Live seed instances of the task (one per placed seed). *)
val seeds : t -> task -> Seed_exec.t list

(** The seed of [machine] on switch [node], if any. *)
val seed_on : t -> task -> machine:string -> node:int -> Seed_exec.t option

val current_utility : t -> float

(** The live optimization instance (healthy switches; registered seeds with
    failed switches removed from their candidate sets) and the assignments
    currently in force — the inputs the chaos suite feeds to
    [Model.validate] and [Model.total_utility] to cross-check the runtime's
    own bookkeeping. *)
val placement_instance : t -> Farm_placement.Model.instance

val current_assignments : t -> Farm_placement.Model.assignment list

(** Utility reported by the optimizer for the placement in force. *)
val reported_utility : t -> float

(** Raw (unfiltered) seed specs registered for the task, sorted by seed
    id. *)
val seed_specs : t -> task -> Farm_placement.Model.seed_spec list

(** Bytes and messages shipped to centralized components since start —
    the "network load towards the collector" of Fig. 4. *)
val collector_bytes : t -> float

val collector_messages : t -> int

(** Count of seed migrations performed so far. *)
val migrations : t -> int

(** The M&M centralized control instance (§II-C b).

    The seeder turns Almanac task descriptions into deployed seeds: it
    type-checks the program, runs the static analyses (placement sites,
    utility polynomials, polling), solves the {e global} placement problem
    across {e all} co-deployed tasks with the Alg. 1 heuristic, instantiates
    or migrates seed instances accordingly, and routes messages between
    seeds and harvesters.

    With [auto_heal] it is also a self-healing control plane: switches
    send periodic heartbeats, a timeout-based failure detector declares
    silent switches dead, running seeds ship periodic delta checkpoints of
    their machine state, and on detection the orphaned seeds are
    automatically re-placed (incremental greedy pass) and resumed from
    their last checkpoint.  Every (re)instantiation bumps the seed's
    {e epoch}; harvesters fence reports by epoch, so an instance that
    survives a false detection (a "zombie") can never corrupt task
    state. *)

module Value := Farm_almanac.Value

(** Control-channel protection knobs (overload resilience).  A global
    token bucket paces unicast control sends; a per-switch circuit breaker
    opens after [breaker_threshold] consecutive failures (loss or
    recipient-away timeouts), rejects sends for [breaker_cooldown]
    seconds, then admits one half-open probe; at most
    [max_inflight_retries] retries per switch may be pending at once; and
    retry backoffs carry up to [retry_jitter] seconds of extra delay drawn
    from a per-message keyed rng stream (deterministic under replay).
    Heartbeats bypass all of it — gating them would convert channel
    congestion into false failure detections and migration storms. *)
type ctrl_protection = {
  rate_limit : float;
  burst : float;
  breaker_threshold : int;
  breaker_cooldown : float;
  max_inflight_retries : int;
  retry_jitter : float;
}

val default_protection : ctrl_protection

type config = {
  soil_config : Soil.config;
  control_latency : float;
      (** one-way latency between a switch and the central components *)
  message_overhead_bytes : float;  (** framing per control message *)
  migration_time : float;  (** seed state-transfer duration *)
  engine : Farm_almanac.Engine.engine;
      (** execution engine deployed seeds run on: the slot-compiled
          [`Compiled] (default) or the reference interpreter [`Interp] *)
  retry_backoff : float;
      (** initial retransmission backoff for control messages whose
          recipient is temporarily away (doubles per attempt) *)
  max_retries : int;  (** retransmission attempts before giving up *)
  refuse_conflicts : bool;
      (** refuse deployment when cross-task conflict detection
          ([Farm_placement.Conflict]) reports [C3xx] warnings against
          already-deployed tasks; [false] (default) deploys and records
          them in {!last_deploy_diagnostics} *)
  verify_on_deploy : bool;
      (** run the symbolic verifier at deploy time: per-handler
          translation validation of the compiled plan against the
          reference semantics ([V401]/[V402]), [assert(..)] invariant
          proofs ([V403]), value-range safety ([V404]), and
          reachability-backed lint verdicts.  Deployment is refused when
          a [V4xx] error is found (the machine's compiled form provably
          diverges from the reference semantics, or an invariant admits
          a feasible violation); warnings are recorded in
          {!last_deploy_diagnostics}.  [false] (default) keeps deploys
          fast — the same checks are available offline via
          [farmc verify]. *)
  auto_heal : bool;
      (** enable the self-healing layer: heartbeats, failure detection,
          checkpoint shipping and automatic re-placement.  [false]
          (default) keeps runs byte-identical to the pre-healing
          behavior. *)
  heartbeat_interval : float;
      (** period of per-switch heartbeats over the control channel *)
  detection_timeout : float;
      (** silence (no heartbeat) after which a switch is declared dead;
          should exceed a few heartbeat intervals or lossy control planes
          produce false positives (which are safe, but cost migrations) *)
  checkpoint_interval : float;
      (** period of per-seed state checkpoints; one interval is the most
          state a crash can lose.  Smaller intervals cost control-channel
          bandwidth and switch CPU ({!checkpoint_bytes}). *)
  checkpoint_full_every : int;
      (** every n-th checkpoint is a full snapshot (the rest are deltas);
          lost deltas leave the seeder's copy stale until the next full *)
  ctrl_bandwidth_bps : float;
      (** control-channel bandwidth checkpoints are costed against *)
  ctrl_protection : ctrl_protection option;
      (** [None] (default): unprotected control channel, byte-identical
          to the pre-overload behavior *)
  harvester_overload : Harvester.overload_config option;
      (** bounded fair-share harvester inboxes; [None] (default) admits
          everything *)
}

val default_config : config

(** [default_config] with every overload-protection layer switched on at
    its defaults: bounded soil queues + pressure monitor
    ([Soil.default_overload]), control-channel protection
    ({!default_protection}) and bounded harvester inboxes
    ([Harvester.default_overload]). *)
val overload_defaults : config

(** {2 Control-plane faults}

    Degradation applied to every seed↔harvester control message: [loss] is
    the per-transmission drop probability, [delay] adds one-way latency,
    [dup] duplicates delivered messages.  Lost messages and messages to a
    seed that is temporarily away (migrating, or awaiting re-placement
    after a switch failure) are retransmitted with exponential backoff; the
    defaults ([perfect_ctrl]) keep the control plane lossless and runs
    byte-identical to the pre-fault behavior.  Heartbeats and checkpoints
    are fire-and-forget: they are subject to the same loss/delay/dup but
    never retried. *)

type ctrl_faults = { loss : float; delay : float; dup : float }

val perfect_ctrl : ctrl_faults

type task_spec = {
  ts_name : string;
  ts_source : string;  (** Almanac source of the task's machines *)
  ts_externals : (string * (string * Value.t) list) list;
      (** per machine: values for [external] variables *)
  ts_builtins : (string * (Value.t list -> Value.t)) list;
      (** host-side auxiliary functions *)
  ts_extra_sigs : (string * Farm_almanac.Typecheck.func_sig) list;
  ts_harvester : Harvester.spec;
  ts_adaptive : string list;
      (** poll variables the task's seeds may stretch under soil pressure
          (AIMD degraded mode); empty = fixed fidelity *)
}

(** A minimal spec with no externals/builtins and a collector harvester. *)
val simple_spec : name:string -> source:string -> task_spec

type task

type t

val create : ?config:config -> Farm_sim.Engine.t -> Farm_net.Fabric.t -> t

val engine : t -> Farm_sim.Engine.t
val fabric : t -> Farm_net.Fabric.t
val soil : t -> int -> Soil.t
val soils : t -> Soil.t list

(** Deploy a task: parse, check, lint, analyze, verify against deployed
    tasks, re-optimize the global placement and instantiate the task's
    seeds.  Fails (with a message) on syntax/type errors, error-severity
    lint diagnostics ([L105]–[L107]), analysis errors, or when the task
    cannot be placed.  Every diagnostic the verification passes produced
    — including warnings that did not block the deployment — is available
    from {!last_deploy_diagnostics} afterwards. *)
val deploy : t -> task_spec -> (task, string) result

(** All diagnostics (lint, cross-task conflicts) produced by the most
    recent {!deploy} call, sorted. *)
val last_deploy_diagnostics : t -> Farm_almanac.Diagnostic.t list

(** Tear a task down, releasing its switch resources. *)
val undeploy : t -> task -> unit

(** Re-run global placement (resource depletion, topology change...);
    migrates seeds whose optimal location changed. *)
val reoptimize : t -> unit

(** {2 Failures}

    Two failure paths exist.  {!crash_switch}/{!revive_switch} are the
    {e ground truth}: the management plane silently dies / reboots, and the
    control plane only learns about it through missing heartbeats (with
    [auto_heal]) or an operator call.  {!fail_switch}/{!recover_switch}
    are the legacy omniscient path: the control plane is told directly. *)

(** Silently crash a switch's management plane: every seed instance on it
    stops; the seeder is {e not} informed.  With [auto_heal] the failure
    detector notices within [detection_timeout] and auto-migrates the
    orphans; without it they stay dark until {!recover_switch}. *)
val crash_switch : t -> int -> unit

(** The crashed switch's management plane boots back up.  Heartbeats
    resume on their own; the seeder re-pushes the seeds assigned there
    when it hears one (or when {!recover_switch} is called). *)
val revive_switch : t -> int -> unit

(** Ground-truth crashed switches, sorted (tests/instrumentation). *)
val down_switches : t -> int list

(** Omnisciently mark a switch as failed.  Seeds running there are torn
    down and restarted on surviving candidate switches by a global
    re-optimization (resuming from their last checkpoint when [auto_heal]
    shipped one); tasks pinned solely to the failed switch are dropped
    (C1). *)
val fail_switch : t -> int -> unit

(** Rejoin a switch: a thin wrapper over the same path the failure
    detector's rejoin uses.  On a healthy switch it is a no-op (calling it
    twice is safe); on a crashed one it models the reboot; on a failed one
    it lifts the fence, terminates any zombie instances, and re-optimizes
    the global placement — moving displaced seeds back and re-placing
    tasks that had been dropped.  [reoptimize:false] skips the
    re-optimization — only useful to demonstrate that the chaos suite
    catches that bug. *)
val recover_switch : ?reoptimize:bool -> t -> int -> unit

(** Failed switches (control-plane view), sorted. *)
val failed_switches : t -> int list

val set_ctrl_faults : t -> ctrl_faults -> unit
val ctrl_faults : t -> ctrl_faults

(** Control messages retransmitted / given up on so far. *)
val retransmissions : t -> int

val lost_messages : t -> int

(** {2 Introspection} *)

val task_name : task -> string
val harvester : task -> Harvester.t
val is_placed : task -> bool

(** Live seed instances of the task (one per placed seed). *)
val seeds : t -> task -> Seed_exec.t list

(** The seed of [machine] on switch [node], if any. *)
val seed_on : t -> task -> machine:string -> node:int -> Seed_exec.t option

val current_utility : t -> float

(** The live optimization instance (healthy switches; registered seeds with
    failed switches removed from their candidate sets) and the assignments
    currently in force — the inputs the chaos suite feeds to
    [Model.validate] and [Model.total_utility] to cross-check the runtime's
    own bookkeeping. *)
val placement_instance : t -> Farm_placement.Model.instance

val current_assignments : t -> Farm_placement.Model.assignment list

(** Utility reported by the optimizer for the placement in force. *)
val reported_utility : t -> float

(** Raw (unfiltered) seed specs registered for the task, sorted by seed
    id. *)
val seed_specs : t -> task -> Farm_placement.Model.seed_spec list

(** Bytes and messages shipped to centralized components since start —
    the "network load towards the collector" of Fig. 4. *)
val collector_bytes : t -> float

val collector_messages : t -> int

(** Count of seed migrations performed so far. *)
val migrations : t -> int

(** {2 Self-healing introspection} *)

val healing_enabled : t -> bool

(** How many heartbeat intervals of silence the detector has accumulated
    for a switch beyond the expected gap (0 = healthy or healing off). *)
val suspicion_level : t -> int -> int

(** Seeds that hold an assignment but have no running instance and are
    not mid-migration, sorted.  Transiently non-empty between a crash and
    its detection; the chaos suite asserts it drains to [[]] once healing
    settles. *)
val orphaned_seeds : t -> int list

(** The seeder's accumulated checkpoint for a seed:
    (arrival time of the newest merged checkpoint, variables, state). *)
val last_checkpoint :
  t -> int -> (float * (string * Value.t) list * string) option

(** Current instance epoch of a registered seed ([-1] = never placed). *)
val seed_epoch : t -> int -> int option

(** Crash → detector declaration latency, over true failures only. *)
val detection_latency : t -> Farm_sim.Metrics.Histogram.t

(** Crash → replacement-instance-running latency, per recovered seed. *)
val recovery_time : t -> Farm_sim.Metrics.Histogram.t

val heartbeats_sent : t -> int
val heartbeats_delivered : t -> int
val checkpoints_shipped : t -> int

(** Checkpoints discarded at the seeder because a lost delta left a gap
    (resynced by the next full snapshot). *)
val checkpoint_gaps : t -> int

(** Control-channel bytes spent on checkpoints (the cost side of the
    checkpoint-frequency trade-off; kept separate from
    {!collector_bytes}). *)
val checkpoint_bytes : t -> float

(** Detector declarations, and the subset that were false positives (the
    switch was merely slow/partitioned, not crashed). *)
val detections : t -> int

val false_detections : t -> int

(** Seed instances automatically re-placed and resumed by the healing
    layer (both after detections and on reboot-rejoin). *)
val auto_recoveries : t -> int

(** Demoted instances terminated (kill order or rejoin handshake). *)
val zombies_fenced : t -> int

(** Seed→seed messages dropped at the router because the sending instance
    had been superseded (epoch fencing). *)
val fenced_sends : t -> int

(** Currently live demoted instances awaiting termination. *)
val zombie_count : t -> int

(** {2 Overload resilience} *)

val ctrl_protection_enabled : t -> bool

(** Control sends delayed by the token bucket so far. *)
val rate_limited : t -> int

(** Control sends refused outright by an open circuit breaker (counted in
    {!lost_messages} too). *)
val breaker_dropped : t -> int

(** Retries refused because the per-switch in-flight bound was hit. *)
val retry_capped : t -> int

(** Total breaker trips across all switches. *)
val breaker_opens : t -> int

(** ["closed" | "open" | "half_open"], or [None] if no breaker exists for
    the switch (protection off, or never sent to). *)
val breaker_state : t -> int -> string option

(** Soils whose pressure monitor currently asserts overload, sorted. *)
val pressured_switches : t -> int list

(** Pressure flag flips observed across all soils. *)
val pressure_events : t -> int

(** Reports injected by {!inject_report_storm} so far. *)
val storm_reports : t -> int

(** Fault hook ([Fault.Report_storm]): every seed instance on [node]
    sends [reports] junk reports through the regular provenance-stamped
    path — fencing, dedup and the bounded inbox treat them as ordinary
    traffic. *)
val inject_report_storm : t -> node:int -> reports:int -> unit

(** The M&M centralized control instance (§II-C b).

    The seeder turns Almanac task descriptions into deployed seeds: it
    type-checks the program, runs the static analyses (placement sites,
    utility polynomials, polling), solves the {e global} placement problem
    across {e all} co-deployed tasks with the Alg. 1 heuristic, instantiates
    or migrates seed instances accordingly, and routes messages between
    seeds and harvesters. *)

module Value := Farm_almanac.Value
module Ast := Farm_almanac.Ast

type config = {
  soil_config : Soil.config;
  control_latency : float;
      (** one-way latency between a switch and the central components *)
  message_overhead_bytes : float;  (** framing per control message *)
  migration_time : float;  (** seed state-transfer duration *)
  engine : Farm_almanac.Engine.engine;
      (** execution engine deployed seeds run on: the slot-compiled
          [`Compiled] (default) or the reference interpreter [`Interp] *)
}

val default_config : config

type task_spec = {
  ts_name : string;
  ts_source : string;  (** Almanac source of the task's machines *)
  ts_externals : (string * (string * Value.t) list) list;
      (** per machine: values for [external] variables *)
  ts_builtins : (string * (Value.t list -> Value.t)) list;
      (** host-side auxiliary functions *)
  ts_extra_sigs : (string * Farm_almanac.Typecheck.func_sig) list;
  ts_harvester : Harvester.spec;
}

(** A minimal spec with no externals/builtins and a collector harvester. *)
val simple_spec : name:string -> source:string -> task_spec

type task

type t

val create : ?config:config -> Farm_sim.Engine.t -> Farm_net.Fabric.t -> t

val engine : t -> Farm_sim.Engine.t
val fabric : t -> Farm_net.Fabric.t
val soil : t -> int -> Soil.t
val soils : t -> Soil.t list

(** Deploy a task: parse, check, analyze, re-optimize the global placement
    and instantiate the task's seeds.  Fails (with a message) on
    syntax/type/analysis errors or when the task cannot be placed. *)
val deploy : t -> task_spec -> (task, string) result

(** Tear a task down, releasing its switch resources. *)
val undeploy : t -> task -> unit

(** Re-run global placement (resource depletion, topology change...);
    migrates seeds whose optimal location changed. *)
val reoptimize : t -> unit

(** Fault tolerance (the paper's §VIII future work): mark a switch as
    failed.  Seeds running there are lost and restarted on surviving
    candidate switches by a global re-optimization; tasks pinned solely to
    the failed switch are dropped (C1). *)
val fail_switch : t -> int -> unit

val failed_switches : t -> int list

(** {2 Introspection} *)

val task_name : task -> string
val harvester : task -> Harvester.t
val is_placed : task -> bool

(** Live seed instances of the task (one per placed seed). *)
val seeds : t -> task -> Seed_exec.t list

(** The seed of [machine] on switch [node], if any. *)
val seed_on : t -> task -> machine:string -> node:int -> Seed_exec.t option

val current_utility : t -> float

(** Bytes and messages shipped to centralized components since start —
    the "network load towards the collector" of Fig. 4. *)
val collector_bytes : t -> float

val collector_messages : t -> int

(** Count of seed migrations performed so far. *)
val migrations : t -> int

module Engine = Farm_sim.Engine
module Metrics = Farm_sim.Metrics
module Trace = Farm_sim.Trace
module Filter = Farm_net.Filter
module Switch_model = Farm_net.Switch_model
module Tcam = Farm_net.Tcam

(* Overload protection (off by default).  When enabled, the implicit
   PCIe waiting line becomes an explicit bounded priority queue with
   deterministic shedding, and a periodic monitor publishes CPU/PCIe
   pressure to the co-located seeds and the seeder. *)
type overload_config = {
  max_pcie_queue : int;  (* outstanding transfers before shedding *)
  cpu_high : float;  (* utilization watermarks, fraction of capacity *)
  cpu_low : float;
  pcie_high : float;
  pcie_low : float;
  pressure_interval : float;  (* monitor period, seconds *)
}

let default_overload =
  { max_pcie_queue = 16; cpu_high = 0.8; cpu_low = 0.5; pcie_high = 0.8;
    pcie_low = 0.5; pressure_interval = 0.05 }

type config = {
  cpu : Cpu_model.t;
  scheme : Ipc.scheme;
  exec_model : Ipc.exec_model;
  aggregate_polls : bool;
  max_poll_queue_delay : float;
  overload : overload_config option;
}

let default_config =
  { cpu = Cpu_model.default; scheme = Ipc.Shared_buffer;
    exec_model = Ipc.Threads; aggregate_polls = true;
    max_poll_queue_delay = 1.; overload = None }

type sub_kind =
  | Poll of { subject : Filter.subject; deliver : float array -> unit }
  | Probe of { filter : Filter.t; deliver : Farm_net.Flow.packet -> unit }
  | Time of (float -> unit)

type subscription = {
  sub_id : int;
  sub_seed : int;  (* owning seed, for drop attribution and fair share *)
  kind : sub_kind;
  mutable period : float;
  mutable timer : Engine.timer option;
  mutable active : bool;
}

(* Aggregation group: one ASIC poll timer shared by all subscribers of a
   subject. *)
type group = {
  g_subject : Filter.subject;
  mutable g_subs : subscription list;
  mutable g_timer : Engine.timer option;
}

type poll_stats = {
  requested : int;
  completed : int;
  dropped : int;
  pcie_bytes : float;
  asic_polls : int;
}

type overload_stats = {
  o_offered : int;
  o_completed : int;
  o_shed : int;
  o_pending : int;
  o_queue_peak : int;
}

(* One queued PCIe transfer under overload protection. *)
type pcie_req = {
  rq_seq : int;  (* arrival order (newest = largest) *)
  rq_bytes : float;
  rq_issued : float;
  rq_prio : int;  (* max of the owning seeds' priorities *)
  rq_seeds : int list;  (* owning seeds, for fair-share shedding *)
  rq_deliver : Engine.t -> unit;
  rq_shed : unit -> unit;  (* drop accounting when this request is shed *)
}

type ov = {
  ov_cfg : overload_config;
  mutable ov_queue : pcie_req list;  (* oldest first *)
  mutable ov_busy : bool;  (* a transfer is on the bus *)
  mutable ov_seq : int;
  mutable ov_offered : int;
  mutable ov_completed : int;
  mutable ov_shed_n : int;
  mutable ov_qpeak : int;
  mutable ov_pcie_busy : float;  (* accumulated bus-busy seconds *)
  mutable ov_last_cpu : float;  (* monitor window baselines *)
  mutable ov_last_pcie : float;
  mutable ov_pressured : bool;
  ov_prio : (int, int) Hashtbl.t;  (* seed_id -> priority (default 0) *)
  ov_pressure_hooks : (int, bool -> unit) Hashtbl.t;  (* seed hooks *)
  mutable ov_listener : (node:int -> high:bool -> unit) option;  (* seeder *)
  ov_shed : Metrics.Counter.t;
  ov_pressure : Metrics.Gauge.t;
}

(* Interned trace ids for the hot emission sites, memoized per sink so
   steady-state tracing allocates nothing (subjects are formatted with
   [Filter.pp_subject] once, on first use, never per poll). *)
type tids = {
  tm_sink : Trace.t;
  tm_soil : int;  (* cat "soil" *)
  tm_pcie : int;  (* cat "soil.pcie" *)
  tm_ipc : int;  (* cat "soil.ipc" *)
  tm_asic_poll : int;
  tm_transfer : int;
  tm_deliver : int;
  tm_k_subject : int;
  tm_k_subs : int;
  tm_k_bytes : int;
  tm_k_polls : int;
  tm_subjects : (Filter.subject, int) Hashtbl.t;
}

type t = {
  engine : Engine.t;
  sw : Switch_model.t;
  cfg : config;
  usage : Cpu_model.usage;
  rng : Farm_sim.Rng.t;
  mutable seeds : int list;
  mutable next_sub : int;
  mutable groups : group list;
  (* PCIe bus scheduling *)
  mutable pcie_free_at : float;
  (* PCIe slowdown fault (Fault.Pcie_degrade): effective bandwidth is
     [caps.pcie_bps / pcie_factor] *)
  mutable pcie_factor : float;
  (* poll accounting, published in the engine registry under
     [soil.<node>.*] *)
  requested : Metrics.Counter.t;
  completed : Metrics.Counter.t;
  dropped : Metrics.Counter.t;
  pcie_bytes : Metrics.Counter.t;
  asic_polls : Metrics.Counter.t;
  latency : Metrics.Histogram.t;
      (* seed-observed delivery latency: ASIC read issue -> handler *)
  (* per-seed drop notification hooks (always available; the reaction is
     up to the seed — counting only, unless overload protection is on) *)
  drop_hooks : (int, int -> unit) Hashtbl.t;
  (* counter fault injection (Fault.Counter_freeze / Counter_glitch) *)
  mutable frozen : bool;
  mutable frozen_cache : (Filter.subject * float array) list;
  mutable glitch_budget : int;
  ov : ov option;
  mutable tmemo : tids option;
}

(* --- pressure monitor (overload mode only) --- *)

let ov_pressure_tick t ov =
  let cfg = ov.ov_cfg in
  let cores = t.cfg.cpu.cores in
  let busy = Cpu_model.busy_seconds t.usage in
  (* a [reset_stats] between ticks rewinds the busy clock; fall back to
     the absolute value so the delta never goes negative *)
  let cpu_delta =
    if busy >= ov.ov_last_cpu then busy -. ov.ov_last_cpu else busy
  in
  ov.ov_last_cpu <- busy;
  let cpu_util = cpu_delta /. (cfg.pressure_interval *. cores) in
  let pcie_delta = ov.ov_pcie_busy -. ov.ov_last_pcie in
  ov.ov_last_pcie <- ov.ov_pcie_busy;
  let pcie_util = pcie_delta /. cfg.pressure_interval in
  let high = cpu_util > cfg.cpu_high || pcie_util > cfg.pcie_high in
  let low = cpu_util < cfg.cpu_low && pcie_util < cfg.pcie_low in
  let flip name =
    match Engine.tracer t.engine with
    | None -> ()
    | Some tr ->
        Trace.instant tr ~ts:(Engine.now t.engine) ~cat:"soil" ~name
          ~tid:(Switch_model.id t.sw)
          ~args:
            [ ("cpu", Trace.F cpu_util); ("pcie", Trace.F pcie_util) ]
          ()
  in
  if high && not ov.ov_pressured then begin
    ov.ov_pressured <- true;
    Metrics.Gauge.set ov.ov_pressure 1.;
    flip "pressure_on"
  end
  else if low && ov.ov_pressured then begin
    ov.ov_pressured <- false;
    Metrics.Gauge.set ov.ov_pressure 0.;
    flip "pressure_off"
  end;
  (* every high tick backs degraded-capable seeds off multiplicatively;
     every low tick recovers them additively (no-op at full fidelity) *)
  if high || low then begin
    let notify sid =
      match Hashtbl.find_opt ov.ov_pressure_hooks sid with
      | Some f -> f high
      | None -> ()
    in
    List.iter notify (List.sort_uniq Int.compare t.seeds);
    match ov.ov_listener with
    | Some f -> f ~node:(Switch_model.id t.sw) ~high
    | None -> ()
  end

let install_pressure_monitor t =
  match t.ov with
  | None -> ()
  | Some ov ->
      ignore
        (Engine.every t.engine ~period:ov.ov_cfg.pressure_interval (fun _ ->
             ov_pressure_tick t ov)
          : Engine.timer)

let create ?(config = default_config) engine sw =
  let reg = Engine.metrics engine in
  let pre = Printf.sprintf "soil.%d." (Switch_model.id sw) in
  let c name = Metrics.Registry.counter reg (pre ^ name) in
  let ov =
    (* overload state (and its registry entries) exists only when the
       protection is configured on, so default runs register exactly the
       same metrics as before *)
    match config.overload with
    | None -> None
    | Some ovc ->
        Some
          { ov_cfg = ovc; ov_queue = []; ov_busy = false; ov_seq = 0;
            ov_offered = 0; ov_completed = 0; ov_shed_n = 0; ov_qpeak = 0;
            ov_pcie_busy = 0.; ov_last_cpu = 0.; ov_last_pcie = 0.;
            ov_pressured = false; ov_prio = Hashtbl.create 8;
            ov_pressure_hooks = Hashtbl.create 8; ov_listener = None;
            ov_shed = c "polls.shed";
            ov_pressure = Metrics.Registry.gauge reg (pre ^ "pressure") }
  in
  let t =
    { engine; sw; cfg = config; usage = Cpu_model.usage ();
      rng = Farm_sim.Rng.split (Engine.rng engine); seeds = [];
      next_sub = 0; groups = []; pcie_free_at = 0.; pcie_factor = 1.;
      requested = c "polls.requested"; completed = c "polls.completed";
      dropped = c "polls.dropped"; pcie_bytes = c "pcie.bytes";
      asic_polls = c "asic.polls";
      latency = Metrics.Registry.histogram reg (pre ^ "delivery_latency");
      drop_hooks = Hashtbl.create 8;
      frozen = false; frozen_cache = []; glitch_budget = 0; ov;
      tmemo = None }
  in
  install_pressure_monitor t;
  t

(* Memoized interned ids for [tr]; rebuilt only if the sink changes. *)
let tids t tr =
  match t.tmemo with
  | Some m when m.tm_sink == tr -> m
  | _ ->
      let m =
        { tm_sink = tr;
          tm_soil = Trace.intern tr "soil";
          tm_pcie = Trace.intern tr "soil.pcie";
          tm_ipc = Trace.intern tr "soil.ipc";
          tm_asic_poll = Trace.intern tr "asic_poll";
          tm_transfer = Trace.intern tr "transfer";
          tm_deliver = Trace.intern tr "deliver";
          tm_k_subject = Trace.intern tr "subject";
          tm_k_subs = Trace.intern tr "subs";
          tm_k_bytes = Trace.intern tr "bytes";
          tm_k_polls = Trace.intern tr "polls";
          tm_subjects = Hashtbl.create 8 }
      in
      t.tmemo <- Some m;
      m

let subject_sid m subject =
  match Hashtbl.find_opt m.tm_subjects subject with
  | Some id -> id
  | None ->
      let id =
        Trace.intern m.tm_sink (Format.asprintf "%a" Filter.pp_subject subject)
      in
      Hashtbl.add m.tm_subjects subject id;
      id

let node_id t = Switch_model.id t.sw
let switch t = t.sw
let config t = t.cfg
let now t = Engine.now t.engine
let engine t = t.engine

let attach_seed t id = t.seeds <- id :: t.seeds

let detach_seed t id =
  (* remove one registration *)
  let rec go = function
    | [] -> []
    | x :: rest -> if x = id then rest else x :: go rest
  in
  t.seeds <- go t.seeds;
  Hashtbl.remove t.drop_hooks id;
  match t.ov with
  | Some ov ->
      Hashtbl.remove ov.ov_pressure_hooks id;
      Hashtbl.remove ov.ov_prio id
  | None -> ()

let seed_count t = List.length t.seeds

let charge_cpu t s = Cpu_model.charge t.usage s
let cpu t = t.usage

let cpu_load t ~window = Cpu_model.offered_load t.usage ~window
let cpu_accuracy t ~window = Cpu_model.accuracy t.cfg.cpu t.usage ~window

(* Bytes a poll of [subject] moves over the PCIe bus: 16 B per hardware
   counter read (id + 64-bit value + framing). *)
let counter_record_bytes = 16.

let poll_payload t = function
  | Filter.All_ports ->
      float_of_int (Switch_model.port_count t.sw) *. counter_record_bytes
  | Filter.Port_counter _ | Filter.Prefix_counter _ | Filter.Proto_counter _
    ->
      counter_record_bytes

(* ------------------------------------------------------------------ *)
(* Overload protection: hooks, drop attribution, bounded PCIe queue    *)
(* ------------------------------------------------------------------ *)

let overload_enabled t = t.ov <> None

let overload_stats t =
  match t.ov with
  | None -> None
  | Some ov ->
      Some
        { o_offered = ov.ov_offered; o_completed = ov.ov_completed;
          o_shed = ov.ov_shed_n;
          o_pending =
            List.length ov.ov_queue + (if ov.ov_busy then 1 else 0);
          o_queue_peak = ov.ov_qpeak }

let under_pressure t =
  match t.ov with Some ov -> ov.ov_pressured | None -> false

let set_pcie_factor t f =
  if f <= 0. then invalid_arg "Soil.set_pcie_factor: factor must be > 0";
  t.pcie_factor <- f

let pcie_factor t = t.pcie_factor

(* Effective PCIe bandwidth; the [= 1.] fast path keeps default runs on
   the exact original float value. *)
let effective_pcie_bps t =
  let caps = Switch_model.caps t.sw in
  if t.pcie_factor = 1. then caps.pcie_bps else caps.pcie_bps /. t.pcie_factor

let on_poll_drop t ~seed_id f = Hashtbl.replace t.drop_hooks seed_id f
let remove_poll_drop_hook t ~seed_id = Hashtbl.remove t.drop_hooks seed_id

let set_seed_priority t ~seed_id prio =
  match t.ov with
  | Some ov -> Hashtbl.replace ov.ov_prio seed_id prio
  | None -> ()

let seed_priority t seed_id =
  match t.ov with
  | Some ov -> Option.value (Hashtbl.find_opt ov.ov_prio seed_id) ~default:0
  | None -> 0

let on_pressure t ~seed_id f =
  match t.ov with
  | Some ov -> Hashtbl.replace ov.ov_pressure_hooks seed_id (fun high -> f ~high)
  | None -> ()

let remove_pressure_hook t ~seed_id =
  match t.ov with
  | Some ov -> Hashtbl.remove ov.ov_pressure_hooks seed_id
  | None -> ()

let set_pressure_listener t f =
  match t.ov with Some ov -> ov.ov_listener <- Some f | None -> ()

(* Per-seed drop attribution + synchronous drop notifications.  [drops] is
   a sorted (seed_id, count) list; notification runs inline (no engine
   events), so runs without drops — and default runs, whose drop behavior
   is unchanged — stay byte-identical. *)
let record_seed_drops t drops =
  let reg = Engine.metrics t.engine in
  List.iter
    (fun (sid, n) ->
      let ctr =
        Metrics.Registry.counter reg
          (Printf.sprintf "soil.%d.polls.dropped.seed%d" (node_id t) sid)
      in
      Metrics.Counter.add ctr (float_of_int n);
      match Hashtbl.find_opt t.drop_hooks sid with
      | Some f -> f n
      | None -> ())
    drops

(* Group [seeds] into a sorted (seed_id, count) list. *)
let drops_by_seed seeds =
  let tbl = Hashtbl.create 4 in
  List.iter
    (fun sid ->
      Hashtbl.replace tbl sid
        (1 + Option.value (Hashtbl.find_opt tbl sid) ~default:0))
    seeds;
  Hashtbl.fold (fun sid n acc -> (sid, n) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let trace_drop t ~name ~n =
  match Engine.tracer t.engine with
  | None -> ()
  | Some tr ->
      let m = tids t tr in
      Trace.instant_i tr ~ts:(Engine.now t.engine) ~cat:m.tm_soil
        ~name:(Trace.intern tr name) ~tid:(node_id t) ~k:m.tm_k_polls n

(* A poll (or probe sample) owned by [seeds] was dropped: count globally,
   attribute per seed, notify the owners. *)
let drop_polls t ~name seeds =
  let n = List.length seeds in
  Metrics.Counter.add t.dropped (float_of_int n);
  trace_drop t ~name ~n;
  record_seed_drops t (drops_by_seed seeds)

(* --- bounded priority queue over the PCIe bus (overload mode only) --- *)

let queued_per_seed reqs =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun r ->
      List.iter
        (fun sid ->
          Hashtbl.replace tbl sid
            (1 + Option.value (Hashtbl.find_opt tbl sid) ~default:0))
        r.rq_seeds)
    reqs;
  tbl

(* Shedding policy: lowest priority first; among those, the request whose
   owning seed holds the most queued requests (most over its fair share);
   ties shed the newest arrival, so the incoming request loses to equally
   guilty older ones.  Pure and deterministic. *)
let pick_victim reqs =
  let counts = queued_per_seed reqs in
  let share r =
    List.fold_left
      (fun acc sid ->
        max acc (Option.value (Hashtbl.find_opt counts sid) ~default:1))
      1 r.rq_seeds
  in
  match reqs with
  | [] -> invalid_arg "Soil.pick_victim: empty"
  | first :: rest ->
      List.fold_left
        (fun v r ->
          if r.rq_prio < v.rq_prio then r
          else if r.rq_prio > v.rq_prio then v
          else
            let sr = share r and sv = share v in
            if sr > sv then r
            else if sr < sv then v
            else if r.rq_seq > v.rq_seq then r
            else v)
        first rest

let rec ov_pump t ov =
  if not ov.ov_busy then
    (* highest priority first, FIFO within a priority *)
    match ov.ov_queue with
    | [] -> ()
    | first :: rest ->
        let next =
          List.fold_left
            (fun best r -> if r.rq_prio > best.rq_prio then r else best)
            first rest
        in
        ov.ov_queue <-
          List.filter (fun r -> r.rq_seq <> next.rq_seq) ov.ov_queue;
        ov.ov_busy <- true;
        let now = Engine.now t.engine in
        let dur = next.rq_bytes *. 8. /. effective_pcie_bps t in
        ov.ov_pcie_busy <- ov.ov_pcie_busy +. dur;
        (match Engine.tracer t.engine with
        | None -> ()
        | Some tr ->
            (* span covers queueing + transfer, as in the default path *)
            let m = tids t tr in
            Trace.span_f tr ~ts:next.rq_issued
              ~dur:(now +. dur -. next.rq_issued)
              ~cat:m.tm_pcie ~name:m.tm_transfer ~tid:(node_id t)
              ~k:m.tm_k_bytes next.rq_bytes);
        Engine.schedule t.engine ~delay:dur (fun engine ->
            Metrics.Counter.add t.pcie_bytes next.rq_bytes;
            ov.ov_busy <- false;
            ov.ov_completed <- ov.ov_completed + 1;
            next.rq_deliver engine;
            ov_pump t ov)

let ov_enqueue t ov ~bytes ~seeds ~shed k =
  ov.ov_offered <- ov.ov_offered + 1;
  let prio =
    List.fold_left (fun acc sid -> max acc (seed_priority t sid)) min_int
      (if seeds = [] then [ -1 ] else seeds)
  in
  let req =
    { rq_seq = ov.ov_seq; rq_bytes = bytes;
      rq_issued = Engine.now t.engine; rq_prio = prio; rq_seeds = seeds;
      rq_deliver = k; rq_shed = shed }
  in
  ov.ov_seq <- ov.ov_seq + 1;
  let accepted =
    if List.length ov.ov_queue < ov.ov_cfg.max_pcie_queue then begin
      ov.ov_queue <- ov.ov_queue @ [ req ];
      true
    end
    else begin
      (* queue full: shed the least valuable request among the queue and
         the incoming one *)
      let victim = pick_victim (req :: ov.ov_queue) in
      ov.ov_shed_n <- ov.ov_shed_n + 1;
      Metrics.Counter.incr ov.ov_shed;
      victim.rq_shed ();
      if victim.rq_seq = req.rq_seq then false
      else begin
        ov.ov_queue <-
          List.filter (fun r -> r.rq_seq <> victim.rq_seq) ov.ov_queue
          @ [ req ];
        true
      end
    end
  in
  let depth = List.length ov.ov_queue + if ov.ov_busy then 1 else 0 in
  if depth > ov.ov_qpeak then ov.ov_qpeak <- depth;
  ov_pump t ov;
  accepted

(* Schedule a transfer over the PCIe bus; calls [k] with the completion
   time, or returns [false] when the poll is dropped (queue too long).
   [seeds] owns the transfer and [shed] runs the drop accounting when the
   overload layer sheds the request after admission. *)
let pcie_transfer t ~bytes ~seeds ~shed k =
  match t.ov with
  | Some ov -> ov_enqueue t ov ~bytes ~seeds ~shed k
  | None ->
      let now = Engine.now t.engine in
      let start = Float.max now t.pcie_free_at in
      if start -. now > t.cfg.max_poll_queue_delay then false
      else begin
        let dur = bytes *. 8. /. effective_pcie_bps t in
        t.pcie_free_at <- start +. dur;
        let completion = start +. dur in
        (match Engine.tracer t.engine with
        | None -> ()
        | Some tr ->
            (* span covers queueing + transfer: starts when the poll was
               issued, ends at bus completion *)
            let m = tids t tr in
            Trace.span_f tr ~ts:now ~dur:(completion -. now) ~cat:m.tm_pcie
              ~name:m.tm_transfer ~tid:(Switch_model.id t.sw)
              ~k:m.tm_k_bytes bytes);
        Engine.schedule t.engine
          ~delay:(completion -. now)
          (fun engine ->
            (* account the transfer when it completes, so byte counters over
               a window reflect achieved (not queued) throughput *)
            Metrics.Counter.add t.pcie_bytes bytes;
            k engine);
        true
      end

let ipc_deliver ?issued t f =
  (* IPC latency depends on how many seeds are co-located (Fig. 10) *)
  let lat = Ipc.latency t.cfg.scheme t.cfg.exec_model ~seeds:(seed_count t) in
  charge_cpu t (Ipc.cpu_cost t.cfg.scheme t.cfg.exec_model);
  if t.cfg.exec_model = Ipc.Processes then
    charge_cpu t t.cfg.cpu.context_switch_cost;
  (match Engine.tracer t.engine with
  | None -> ()
  | Some tr ->
      let m = tids t tr in
      Trace.span0 tr ~ts:(Engine.now t.engine) ~dur:lat ~cat:m.tm_ipc
        ~name:m.tm_deliver ~tid:(Switch_model.id t.sw));
  Engine.schedule t.engine ~delay:lat (fun engine ->
      (match issued with
      | Some t0 ->
          Metrics.Histogram.record t.latency (Engine.now engine -. t0)
      | None -> ());
      f ())

(* ------------------------------------------------------------------ *)
(* Counter fault injection                                             *)
(* ------------------------------------------------------------------ *)

let set_frozen t on =
  t.frozen <- on;
  if not on then t.frozen_cache <- []

let is_frozen t = t.frozen

let glitch ?(polls = 1) t = t.glitch_budget <- t.glitch_budget + polls

(* ASIC counter read, possibly degraded: while frozen, every subject keeps
   returning the snapshot taken at freeze time; a pending glitch corrupts
   one read with deterministic garbage drawn from the soil's rng. *)
let read_counters t subject =
  let data =
    if t.frozen then
      match
        List.find_opt
          (fun (s, _) -> Filter.subject_equal s subject)
          t.frozen_cache
      with
      | Some (_, d) -> Array.copy d
      | None ->
          let d =
            Switch_model.poll_subject t.sw ~time:(Engine.now t.engine) subject
          in
          t.frozen_cache <- (subject, Array.copy d) :: t.frozen_cache;
          d
    else Switch_model.poll_subject t.sw ~time:(Engine.now t.engine) subject
  in
  if t.glitch_budget > 0 then begin
    t.glitch_budget <- t.glitch_budget - 1;
    Array.map
      (fun v -> Farm_sim.Rng.uniform t.rng 0. (Float.max (2. *. v) 1e9))
      data
  end
  else data

(* Issue one ASIC poll for [subject] and deliver the result to [subs]. *)
let sub_seeds subs = List.map (fun s -> s.sub_seed) subs

let issue_poll t subject subs =
  let issued = Engine.now t.engine in
  Metrics.Counter.add t.requested (float_of_int (List.length subs));
  charge_cpu t t.cfg.cpu.poll_issue_cost;
  Metrics.Counter.incr t.asic_polls;
  (match Engine.tracer t.engine with
  | None -> ()
  | Some tr ->
      let m = tids t tr in
      Trace.instant_si tr ~ts:issued ~cat:m.tm_soil ~name:m.tm_asic_poll
        ~tid:(Switch_model.id t.sw) ~k0:m.tm_k_subject
        (subject_sid m subject) ~k1:m.tm_k_subs (List.length subs));
  let bytes = poll_payload t subject in
  (* the ASIC snapshots the counters when the read is issued; the data
     then crosses the PCIe bus *)
  let data = read_counters t subject in
  (* the owning-seed list is only needed on the drop/shed paths (and by
     the bounded queue under overload protection): build it there, not
     per successful poll *)
  let shed () = drop_polls t ~name:"poll_shed" (sub_seeds subs) in
  let seeds = if t.ov = None then [] else sub_seeds subs in
  let ok =
    pcie_transfer t ~bytes ~seeds ~shed (fun _engine ->
        let records = Float.max 1. (bytes /. counter_record_bytes) in
        List.iter
          (fun sub ->
            if sub.active then begin
              (* bulk counter reads are DMA'd: post-processing is cheap
                 per record on top of the fixed per-poll cost *)
              charge_cpu t (t.cfg.cpu.poll_process_cost *. records /. 128.);
              charge_cpu t t.cfg.cpu.poll_process_cost;
              if t.cfg.aggregate_polls then
                charge_cpu t t.cfg.cpu.aggregation_cost;
              Metrics.Counter.incr t.completed;
              match sub.kind with
              | Poll p -> ipc_deliver ~issued t (fun () -> p.deliver data)
              | Probe _ | Time _ -> ()
            end)
          subs)
  in
  if not ok then drop_polls t ~name:"poll_dropped" (sub_seeds subs)

(* ------------------------------------------------------------------ *)
(* Aggregated polling groups                                           *)
(* ------------------------------------------------------------------ *)

let group_period g =
  List.fold_left
    (fun acc s -> Float.min acc s.period)
    infinity g.g_subs

let rearm_group t g =
  (match g.g_timer with Some tm -> Engine.cancel tm | None -> ());
  match g.g_subs with
  | [] -> g.g_timer <- None
  | _ ->
      let period = group_period g in
      g.g_timer <-
        Some
          (Engine.every t.engine ~period (fun _ ->
               issue_poll t g.g_subject g.g_subs))

let find_group t subject =
  List.find_opt (fun g -> Filter.subject_equal g.g_subject subject) t.groups

let fresh_sub t ~seed_id ~period kind =
  let s =
    { sub_id = t.next_sub; sub_seed = seed_id; kind; period; timer = None;
      active = true }
  in
  t.next_sub <- t.next_sub + 1;
  s

let subscribe_poll t ~seed_id ~subject ~period deliver =
  Switch_model.watch_subject t.sw ~time:(Engine.now t.engine) subject;
  let sub = fresh_sub t ~seed_id ~period (Poll { subject; deliver }) in
  if t.cfg.aggregate_polls then begin
    let g =
      match find_group t subject with
      | Some g -> g
      | None ->
          let g = { g_subject = subject; g_subs = []; g_timer = None } in
          t.groups <- g :: t.groups;
          g
    in
    g.g_subs <- sub :: g.g_subs;
    rearm_group t g
  end
  else
    sub.timer <-
      Some
        (Engine.every t.engine ~period (fun _ -> issue_poll t subject [ sub ]));
  sub

let subscribe_probe t ~seed_id ~filter ~period deliver =
  let sub = fresh_sub t ~seed_id ~period (Probe { filter; deliver }) in
  let tick _ =
    (* sampling mirrors one packet over the PCIe bus *)
    Metrics.Counter.incr t.requested;
    match Switch_model.sample_packet t.sw t.rng with
    | Some pkt when Filter.matches filter pkt.tuple ->
        charge_cpu t t.cfg.cpu.sample_cost;
        let shed () = drop_polls t ~name:"poll_shed" [ seed_id ] in
        let ok =
          pcie_transfer t ~bytes:(float_of_int pkt.size) ~seeds:[ seed_id ]
            ~shed (fun _ ->
              if sub.active then begin
                Metrics.Counter.incr t.completed;
                ipc_deliver t (fun () -> deliver pkt)
              end)
        in
        if not ok then drop_polls t ~name:"poll_dropped" [ seed_id ]
    | Some _ | None -> ()
  in
  sub.timer <- Some (Engine.every t.engine ~period tick);
  sub

let subscribe_time t ~seed_id ~period callback =
  let sub = fresh_sub t ~seed_id ~period (Time callback) in
  sub.timer <-
    Some
      (Engine.every t.engine ~period (fun engine ->
           if sub.active then begin
             charge_cpu t t.cfg.cpu.handler_base_cost;
             callback (Engine.now engine)
           end));
  sub

let set_period t sub period =
  sub.period <- period;
  (match sub.timer with Some tm -> Engine.set_period tm period | None -> ());
  if t.cfg.aggregate_polls then
    match sub.kind with
    | Poll p -> (
        match find_group t p.subject with
        | Some g -> rearm_group t g
        | None -> ())
    | Probe _ | Time _ -> ()

let cancel t sub =
  sub.active <- false;
  (match sub.timer with Some tm -> Engine.cancel tm | None -> ());
  match sub.kind with
  | Poll p when t.cfg.aggregate_polls -> (
      match find_group t p.subject with
      | Some g ->
          g.g_subs <- List.filter (fun s -> s.sub_id <> sub.sub_id) g.g_subs;
          rearm_group t g
      | None -> ())
  | Poll _ | Probe _ | Time _ -> ()

(* ------------------------------------------------------------------ *)
(* TCAM                                                                *)
(* ------------------------------------------------------------------ *)

let add_tcam_rule t rule =
  charge_cpu t t.cfg.cpu.handler_base_cost;
  match Tcam.add (Switch_model.tcam t.sw) Tcam.Monitoring rule with
  | Ok _ ->
      Switch_model.apply_tcam_actions t.sw ~time:(Engine.now t.engine);
      Ok ()
  | Error `Full -> Error `Full

let remove_tcam_rule t ~pattern =
  charge_cpu t t.cfg.cpu.handler_base_cost;
  let n = Tcam.remove (Switch_model.tcam t.sw) Tcam.Monitoring ~pattern in
  if n > 0 then
    Switch_model.apply_tcam_actions t.sw ~time:(Engine.now t.engine);
  n

let get_tcam_rule t ~pattern =
  Tcam.find (Switch_model.tcam t.sw) Tcam.Monitoring ~pattern

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)
(* ------------------------------------------------------------------ *)

let poll_stats t =
  let i c = int_of_float (Metrics.Counter.value c) in
  { requested = i t.requested; completed = i t.completed;
    dropped = i t.dropped; pcie_bytes = Metrics.Counter.value t.pcie_bytes;
    asic_polls = i t.asic_polls }

let delivery_latency t = t.latency

let reset_stats t =
  Metrics.Histogram.reset t.latency;
  Metrics.Counter.reset t.requested;
  Metrics.Counter.reset t.completed;
  Metrics.Counter.reset t.dropped;
  Metrics.Counter.reset t.pcie_bytes;
  Metrics.Counter.reset t.asic_polls;
  Cpu_model.reset t.usage

module Engine = Farm_sim.Engine
module Metrics = Farm_sim.Metrics
module Trace = Farm_sim.Trace
module Filter = Farm_net.Filter
module Switch_model = Farm_net.Switch_model
module Tcam = Farm_net.Tcam

type config = {
  cpu : Cpu_model.t;
  scheme : Ipc.scheme;
  exec_model : Ipc.exec_model;
  aggregate_polls : bool;
  max_poll_queue_delay : float;
}

let default_config =
  { cpu = Cpu_model.default; scheme = Ipc.Shared_buffer;
    exec_model = Ipc.Threads; aggregate_polls = true;
    max_poll_queue_delay = 1. }

type sub_kind =
  | Poll of { subject : Filter.subject; deliver : float array -> unit }
  | Probe of { filter : Filter.t; deliver : Farm_net.Flow.packet -> unit }
  | Time of (float -> unit)

type subscription = {
  sub_id : int;
  kind : sub_kind;
  mutable period : float;
  mutable timer : Engine.timer option;
  mutable active : bool;
}

(* Aggregation group: one ASIC poll timer shared by all subscribers of a
   subject. *)
type group = {
  g_subject : Filter.subject;
  mutable g_subs : subscription list;
  mutable g_timer : Engine.timer option;
}

type poll_stats = {
  requested : int;
  completed : int;
  dropped : int;
  pcie_bytes : float;
  asic_polls : int;
}

type t = {
  engine : Engine.t;
  sw : Switch_model.t;
  cfg : config;
  usage : Cpu_model.usage;
  rng : Farm_sim.Rng.t;
  mutable seeds : int list;
  mutable next_sub : int;
  mutable groups : group list;
  (* PCIe bus scheduling *)
  mutable pcie_free_at : float;
  (* poll accounting, published in the engine registry under
     [soil.<node>.*] *)
  requested : Metrics.Counter.t;
  completed : Metrics.Counter.t;
  dropped : Metrics.Counter.t;
  pcie_bytes : Metrics.Counter.t;
  asic_polls : Metrics.Counter.t;
  latency : Metrics.Histogram.t;
      (* seed-observed delivery latency: ASIC read issue -> handler *)
  (* counter fault injection (Fault.Counter_freeze / Counter_glitch) *)
  mutable frozen : bool;
  mutable frozen_cache : (Filter.subject * float array) list;
  mutable glitch_budget : int;
}

let create ?(config = default_config) engine sw =
  let reg = Engine.metrics engine in
  let pre = Printf.sprintf "soil.%d." (Switch_model.id sw) in
  let c name = Metrics.Registry.counter reg (pre ^ name) in
  { engine; sw; cfg = config; usage = Cpu_model.usage ();
    rng = Farm_sim.Rng.split (Engine.rng engine); seeds = [];
    next_sub = 0; groups = []; pcie_free_at = 0.;
    requested = c "polls.requested"; completed = c "polls.completed";
    dropped = c "polls.dropped"; pcie_bytes = c "pcie.bytes";
    asic_polls = c "asic.polls";
    latency = Metrics.Registry.histogram reg (pre ^ "delivery_latency");
    frozen = false; frozen_cache = []; glitch_budget = 0 }

let node_id t = Switch_model.id t.sw
let switch t = t.sw
let config t = t.cfg
let now t = Engine.now t.engine
let engine t = t.engine

let attach_seed t id = t.seeds <- id :: t.seeds

let detach_seed t id =
  (* remove one registration *)
  let rec go = function
    | [] -> []
    | x :: rest -> if x = id then rest else x :: go rest
  in
  t.seeds <- go t.seeds

let seed_count t = List.length t.seeds

let charge_cpu t s = Cpu_model.charge t.usage s
let cpu t = t.usage

let cpu_load t ~window = Cpu_model.offered_load t.usage ~window
let cpu_accuracy t ~window = Cpu_model.accuracy t.cfg.cpu t.usage ~window

(* Bytes a poll of [subject] moves over the PCIe bus: 16 B per hardware
   counter read (id + 64-bit value + framing). *)
let counter_record_bytes = 16.

let poll_payload t = function
  | Filter.All_ports ->
      float_of_int (Switch_model.port_count t.sw) *. counter_record_bytes
  | Filter.Port_counter _ | Filter.Prefix_counter _ | Filter.Proto_counter _
    ->
      counter_record_bytes

(* Schedule a transfer over the PCIe bus; calls [k] with the completion
   time, or returns [false] when the queue is too long (poll dropped). *)
let pcie_transfer t ~bytes k =
  let now = Engine.now t.engine in
  let caps = Switch_model.caps t.sw in
  let start = Float.max now t.pcie_free_at in
  if start -. now > t.cfg.max_poll_queue_delay then false
  else begin
    let dur = bytes *. 8. /. caps.pcie_bps in
    t.pcie_free_at <- start +. dur;
    let completion = start +. dur in
    (match Engine.tracer t.engine with
    | None -> ()
    | Some tr ->
        (* span covers queueing + transfer: starts when the poll was
           issued, ends at bus completion *)
        Trace.span tr ~ts:now ~dur:(completion -. now) ~cat:"soil.pcie"
          ~name:"transfer" ~tid:(Switch_model.id t.sw)
          ~args:[ ("bytes", Trace.F bytes) ]
          ());
    Engine.schedule t.engine
      ~delay:(completion -. now)
      (fun engine ->
        (* account the transfer when it completes, so byte counters over a
           window reflect achieved (not queued) throughput *)
        Metrics.Counter.add t.pcie_bytes bytes;
        k engine);
    true
  end

let ipc_deliver ?issued t f =
  (* IPC latency depends on how many seeds are co-located (Fig. 10) *)
  let lat = Ipc.latency t.cfg.scheme t.cfg.exec_model ~seeds:(seed_count t) in
  charge_cpu t (Ipc.cpu_cost t.cfg.scheme t.cfg.exec_model);
  if t.cfg.exec_model = Ipc.Processes then
    charge_cpu t t.cfg.cpu.context_switch_cost;
  (match Engine.tracer t.engine with
  | None -> ()
  | Some tr ->
      Trace.span tr ~ts:(Engine.now t.engine) ~dur:lat ~cat:"soil.ipc"
        ~name:"deliver" ~tid:(Switch_model.id t.sw) ());
  Engine.schedule t.engine ~delay:lat (fun engine ->
      (match issued with
      | Some t0 ->
          Metrics.Histogram.record t.latency (Engine.now engine -. t0)
      | None -> ());
      f ())

(* ------------------------------------------------------------------ *)
(* Counter fault injection                                             *)
(* ------------------------------------------------------------------ *)

let set_frozen t on =
  t.frozen <- on;
  if not on then t.frozen_cache <- []

let is_frozen t = t.frozen

let glitch ?(polls = 1) t = t.glitch_budget <- t.glitch_budget + polls

(* ASIC counter read, possibly degraded: while frozen, every subject keeps
   returning the snapshot taken at freeze time; a pending glitch corrupts
   one read with deterministic garbage drawn from the soil's rng. *)
let read_counters t subject =
  let fresh () =
    Switch_model.poll_subject t.sw ~time:(Engine.now t.engine) subject
  in
  let data =
    if t.frozen then
      match
        List.find_opt
          (fun (s, _) -> Filter.subject_equal s subject)
          t.frozen_cache
      with
      | Some (_, d) -> Array.copy d
      | None ->
          let d = fresh () in
          t.frozen_cache <- (subject, Array.copy d) :: t.frozen_cache;
          d
  else fresh ()
  in
  if t.glitch_budget > 0 then begin
    t.glitch_budget <- t.glitch_budget - 1;
    Array.map
      (fun v -> Farm_sim.Rng.uniform t.rng 0. (Float.max (2. *. v) 1e9))
      data
  end
  else data

(* Issue one ASIC poll for [subject] and deliver the result to [subs]. *)
let issue_poll t subject subs =
  let issued = Engine.now t.engine in
  Metrics.Counter.add t.requested (float_of_int (List.length subs));
  charge_cpu t t.cfg.cpu.poll_issue_cost;
  Metrics.Counter.incr t.asic_polls;
  (match Engine.tracer t.engine with
  | None -> ()
  | Some tr ->
      Trace.instant tr ~ts:issued ~cat:"soil" ~name:"asic_poll"
        ~tid:(Switch_model.id t.sw)
        ~args:
          [ ("subject", Trace.S (Format.asprintf "%a" Filter.pp_subject subject));
            ("subs", Trace.I (List.length subs)) ]
        ());
  let bytes = poll_payload t subject in
  (* the ASIC snapshots the counters when the read is issued; the data
     then crosses the PCIe bus *)
  let data = read_counters t subject in
  let ok =
    pcie_transfer t ~bytes (fun _engine ->
        let records = Float.max 1. (bytes /. counter_record_bytes) in
        List.iter
          (fun sub ->
            if sub.active then begin
              (* bulk counter reads are DMA'd: post-processing is cheap
                 per record on top of the fixed per-poll cost *)
              charge_cpu t (t.cfg.cpu.poll_process_cost *. records /. 128.);
              charge_cpu t t.cfg.cpu.poll_process_cost;
              if t.cfg.aggregate_polls then
                charge_cpu t t.cfg.cpu.aggregation_cost;
              Metrics.Counter.incr t.completed;
              match sub.kind with
              | Poll p -> ipc_deliver ~issued t (fun () -> p.deliver data)
              | Probe _ | Time _ -> ()
            end)
          subs)
  in
  if not ok then
    Metrics.Counter.add t.dropped (float_of_int (List.length subs))

(* ------------------------------------------------------------------ *)
(* Aggregated polling groups                                           *)
(* ------------------------------------------------------------------ *)

let group_period g =
  List.fold_left
    (fun acc s -> Float.min acc s.period)
    infinity g.g_subs

let rearm_group t g =
  (match g.g_timer with Some tm -> Engine.cancel tm | None -> ());
  match g.g_subs with
  | [] -> g.g_timer <- None
  | _ ->
      let period = group_period g in
      g.g_timer <-
        Some
          (Engine.every t.engine ~period (fun _ ->
               issue_poll t g.g_subject g.g_subs))

let find_group t subject =
  List.find_opt (fun g -> Filter.subject_equal g.g_subject subject) t.groups

let fresh_sub t ~seed_id:_ ~period kind =
  let s =
    { sub_id = t.next_sub; kind; period; timer = None; active = true }
  in
  t.next_sub <- t.next_sub + 1;
  s

let subscribe_poll t ~seed_id ~subject ~period deliver =
  Switch_model.watch_subject t.sw ~time:(Engine.now t.engine) subject;
  let sub = fresh_sub t ~seed_id ~period (Poll { subject; deliver }) in
  if t.cfg.aggregate_polls then begin
    let g =
      match find_group t subject with
      | Some g -> g
      | None ->
          let g = { g_subject = subject; g_subs = []; g_timer = None } in
          t.groups <- g :: t.groups;
          g
    in
    g.g_subs <- sub :: g.g_subs;
    rearm_group t g
  end
  else
    sub.timer <-
      Some
        (Engine.every t.engine ~period (fun _ -> issue_poll t subject [ sub ]));
  sub

let subscribe_probe t ~seed_id ~filter ~period deliver =
  let sub = fresh_sub t ~seed_id ~period (Probe { filter; deliver }) in
  let tick _ =
    (* sampling mirrors one packet over the PCIe bus *)
    Metrics.Counter.incr t.requested;
    match Switch_model.sample_packet t.sw t.rng with
    | Some pkt when Filter.matches filter pkt.tuple ->
        charge_cpu t t.cfg.cpu.sample_cost;
        let ok =
          pcie_transfer t ~bytes:(float_of_int pkt.size) (fun _ ->
              if sub.active then begin
                Metrics.Counter.incr t.completed;
                ipc_deliver t (fun () -> deliver pkt)
              end)
        in
        if not ok then Metrics.Counter.incr t.dropped
    | Some _ | None -> ()
  in
  sub.timer <- Some (Engine.every t.engine ~period tick);
  sub

let subscribe_time t ~seed_id ~period callback =
  let sub = fresh_sub t ~seed_id ~period (Time callback) in
  sub.timer <-
    Some
      (Engine.every t.engine ~period (fun engine ->
           if sub.active then begin
             charge_cpu t t.cfg.cpu.handler_base_cost;
             callback (Engine.now engine)
           end));
  sub

let set_period t sub period =
  sub.period <- period;
  (match sub.timer with Some tm -> Engine.set_period tm period | None -> ());
  if t.cfg.aggregate_polls then
    match sub.kind with
    | Poll p -> (
        match find_group t p.subject with
        | Some g -> rearm_group t g
        | None -> ())
    | Probe _ | Time _ -> ()

let cancel t sub =
  sub.active <- false;
  (match sub.timer with Some tm -> Engine.cancel tm | None -> ());
  match sub.kind with
  | Poll p when t.cfg.aggregate_polls -> (
      match find_group t p.subject with
      | Some g ->
          g.g_subs <- List.filter (fun s -> s.sub_id <> sub.sub_id) g.g_subs;
          rearm_group t g
      | None -> ())
  | Poll _ | Probe _ | Time _ -> ()

(* ------------------------------------------------------------------ *)
(* TCAM                                                                *)
(* ------------------------------------------------------------------ *)

let add_tcam_rule t rule =
  charge_cpu t t.cfg.cpu.handler_base_cost;
  match Tcam.add (Switch_model.tcam t.sw) Tcam.Monitoring rule with
  | Ok _ ->
      Switch_model.apply_tcam_actions t.sw ~time:(Engine.now t.engine);
      Ok ()
  | Error `Full -> Error `Full

let remove_tcam_rule t ~pattern =
  charge_cpu t t.cfg.cpu.handler_base_cost;
  let n = Tcam.remove (Switch_model.tcam t.sw) Tcam.Monitoring ~pattern in
  if n > 0 then
    Switch_model.apply_tcam_actions t.sw ~time:(Engine.now t.engine);
  n

let get_tcam_rule t ~pattern =
  Tcam.find (Switch_model.tcam t.sw) Tcam.Monitoring ~pattern

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)
(* ------------------------------------------------------------------ *)

let poll_stats t =
  let i c = int_of_float (Metrics.Counter.value c) in
  { requested = i t.requested; completed = i t.completed;
    dropped = i t.dropped; pcie_bytes = Metrics.Counter.value t.pcie_bytes;
    asic_polls = i t.asic_polls }

let delivery_latency t = t.latency

let reset_stats t =
  Metrics.Histogram.reset t.latency;
  Metrics.Counter.reset t.requested;
  Metrics.Counter.reset t.completed;
  Metrics.Counter.reset t.dropped;
  Metrics.Counter.reset t.pcie_bytes;
  Metrics.Counter.reset t.asic_polls;
  Cpu_model.reset t.usage

(** The M&M seed foundation layer (§II-B b).

    One soil runs on each switch's management system.  It multiplexes all
    co-located seeds onto the ASIC: it schedules counter polls over the
    {e PCIe bus} (a hard bottleneck — 8 Mbit/s of polling bandwidth against
    a 100+ Gbit/s ASIC, Fig. 8), {e aggregates} polls of seeds that ask for
    the same polling subject (poll once, deliver to all — the key saving
    exploited by placement optimization), samples packets for probe
    triggers, mediates TCAM access (monitoring region only, so forwarding
    is never disturbed), accounts management-CPU time, and models the
    soil↔seed IPC (threads/processes × gRPC/shared-buffer).

    With {!config.overload} set, the soil additionally runs the
    overload-protection layer: the PCIe waiting line becomes an explicit
    bounded priority queue with deterministic fair-share shedding, and a
    periodic monitor publishes CPU/PCIe pressure to the co-located seeds
    (AIMD degraded mode) and to the seeder. *)

module Filter := Farm_net.Filter

(** Overload protection knobs (all watermarks are utilization fractions
    of the respective capacity). *)
type overload_config = {
  max_pcie_queue : int;
      (** waiting PCIe transfers admitted before the shedding policy
          picks a victim *)
  cpu_high : float;  (** pressure asserted above this CPU utilization *)
  cpu_low : float;  (** ... and cleared below this one (hysteresis) *)
  pcie_high : float;
  pcie_low : float;
  pressure_interval : float;  (** monitor period, seconds *)
}

val default_overload : overload_config

type config = {
  cpu : Cpu_model.t;
  scheme : Ipc.scheme;
  exec_model : Ipc.exec_model;
  aggregate_polls : bool;
  max_poll_queue_delay : float;
      (** polls that would wait longer than this on the PCIe bus are
          dropped (counted in [polls_dropped]); superseded by the bounded
          queue when [overload] is set *)
  overload : overload_config option;
      (** [None] (the default) keeps the pre-overload behavior
          byte-identical *)
}

val default_config : config

type t

val create :
  ?config:config -> Farm_sim.Engine.t -> Farm_net.Switch_model.t -> t

val node_id : t -> int
val switch : t -> Farm_net.Switch_model.t
val config : t -> config

(** Current simulation time. *)
val now : t -> float

val engine : t -> Farm_sim.Engine.t

(** {2 Seeds} *)

(** Register a seed instance (affects IPC latency, Fig. 10). *)
val attach_seed : t -> int -> unit

val detach_seed : t -> int -> unit
val seed_count : t -> int

(** {2 Polling, probing, timers} *)

type subscription

(** Ask the soil to poll [subject] every [period] seconds and deliver the
    counter values.  Delivery accounts PCIe transfer time, queueing, IPC
    latency and CPU costs.  When aggregation is on, seeds sharing a subject
    are served by a single ASIC poll at the fastest requested rate. *)
val subscribe_poll :
  t ->
  seed_id:int ->
  subject:Filter.subject ->
  period:float ->
  (float array -> unit) ->
  subscription

(** Sample packets matching [filter] roughly every [period] seconds (an
    upper bound: the actual rate depends on traffic, §III-A a). *)
val subscribe_probe :
  t ->
  seed_id:int ->
  filter:Filter.t ->
  period:float ->
  (Farm_net.Flow.packet -> unit) ->
  subscription

(** Plain periodic timer (the [time] trigger type). *)
val subscribe_time :
  t -> seed_id:int -> period:float -> (float -> unit) -> subscription

val set_period : t -> subscription -> float -> unit
val cancel : t -> subscription -> unit

(** {2 Overload protection}

    Everything here is inert unless {!config.overload} is set, except the
    drop-notification hooks, which also fire for the legacy
    queue-too-long drops (per-seed attribution of previously silent
    losses). *)

val overload_enabled : t -> bool

(** Request-granularity shed accounting, [None] when protection is off.
    Offered = completed + shed + pending at every instant. *)
type overload_stats = {
  o_offered : int;
  o_completed : int;
  o_shed : int;
  o_pending : int;  (** queued + in flight on the bus *)
  o_queue_peak : int;  (** deepest queued + in-flight ever observed *)
}

val overload_stats : t -> overload_stats option

(** Is the pressure flag currently asserted? *)
val under_pressure : t -> bool

(** Shedding prefers low-priority seeds (default priority 0).  No-op when
    protection is off. *)
val set_seed_priority : t -> seed_id:int -> int -> unit

val seed_priority : t -> int -> int

(** [on_poll_drop t ~seed_id f] registers a synchronous callback invoked
    with the number of this seed's polls lost whenever they are dropped
    (queue-too-long) or shed (overload policy).  Drops are also counted
    per seed under [soil.<node>.polls.dropped.seed<id>]. *)
val on_poll_drop : t -> seed_id:int -> (int -> unit) -> unit

val remove_poll_drop_hook : t -> seed_id:int -> unit

(** Per-seed backpressure notification: [f ~high:true] on every monitor
    tick above the high watermark, [f ~high:false] on every tick below
    the low one.  No-op when protection is off. *)
val on_pressure : t -> seed_id:int -> (high:bool -> unit) -> unit

val remove_pressure_hook : t -> seed_id:int -> unit

(** The seeder's global pressure listener (one per soil). *)
val set_pressure_listener : t -> (node:int -> high:bool -> unit) -> unit

(** PCIe slowdown fault (Fault.Pcie_degrade): effective polling bandwidth
    becomes [pcie_bps / factor].  Factor 1 restores full speed and is
    bit-exact with the unfaulted path. *)
val set_pcie_factor : t -> float -> unit

val pcie_factor : t -> float

(** {2 TCAM (monitoring region)} *)

val add_tcam_rule :
  t -> Farm_net.Tcam.rule -> (unit, [ `Full ]) result

val remove_tcam_rule : t -> pattern:Filter.t -> int
val get_tcam_rule : t -> pattern:Filter.t -> Farm_net.Tcam.installed option

(** {2 Counter fault injection}

    Hooks for [Farm_sim.Fault]'s counter faults.  While frozen, ASIC reads
    keep returning the per-subject snapshot taken at the first read after
    the freeze; thawing clears the snapshots.  A glitch corrupts the next
    [polls] ASIC reads with deterministic garbage (drawn from the soil's own
    rng, so runs stay reproducible). *)

val set_frozen : t -> bool -> unit
val is_frozen : t -> bool
val glitch : ?polls:int -> t -> unit

(** {2 Accounting} *)

val charge_cpu : t -> float -> unit
val cpu : t -> Cpu_model.usage

(** Offered CPU load since the last [reset_stats]. *)
val cpu_load : t -> window:float -> float

val cpu_accuracy : t -> window:float -> float

(** Bytes one hardware counter read moves over the PCIe bus. *)
val counter_record_bytes : float

type poll_stats = {
  requested : int;
  completed : int;
  dropped : int;
  pcie_bytes : float;
  asic_polls : int;  (** actual ASIC reads (< requested when aggregating) *)
}

val poll_stats : t -> poll_stats

(** Distribution of seed-observed poll delivery latency (ASIC read issue →
    seed handler), the Fig. 10 measurement. *)
val delivery_latency : t -> Farm_sim.Metrics.Histogram.t

val reset_stats : t -> unit

(** The M&M seed foundation layer (§II-B b).

    One soil runs on each switch's management system.  It multiplexes all
    co-located seeds onto the ASIC: it schedules counter polls over the
    {e PCIe bus} (a hard bottleneck — 8 Mbit/s of polling bandwidth against
    a 100+ Gbit/s ASIC, Fig. 8), {e aggregates} polls of seeds that ask for
    the same polling subject (poll once, deliver to all — the key saving
    exploited by placement optimization), samples packets for probe
    triggers, mediates TCAM access (monitoring region only, so forwarding
    is never disturbed), accounts management-CPU time, and models the
    soil↔seed IPC (threads/processes × gRPC/shared-buffer). *)

module Filter := Farm_net.Filter

type config = {
  cpu : Cpu_model.t;
  scheme : Ipc.scheme;
  exec_model : Ipc.exec_model;
  aggregate_polls : bool;
  max_poll_queue_delay : float;
      (** polls that would wait longer than this on the PCIe bus are
          dropped (counted in [polls_dropped]) *)
}

val default_config : config

type t

val create :
  ?config:config -> Farm_sim.Engine.t -> Farm_net.Switch_model.t -> t

val node_id : t -> int
val switch : t -> Farm_net.Switch_model.t
val config : t -> config

(** Current simulation time. *)
val now : t -> float

val engine : t -> Farm_sim.Engine.t

(** {2 Seeds} *)

(** Register a seed instance (affects IPC latency, Fig. 10). *)
val attach_seed : t -> int -> unit

val detach_seed : t -> int -> unit
val seed_count : t -> int

(** {2 Polling, probing, timers} *)

type subscription

(** Ask the soil to poll [subject] every [period] seconds and deliver the
    counter values.  Delivery accounts PCIe transfer time, queueing, IPC
    latency and CPU costs.  When aggregation is on, seeds sharing a subject
    are served by a single ASIC poll at the fastest requested rate. *)
val subscribe_poll :
  t ->
  seed_id:int ->
  subject:Filter.subject ->
  period:float ->
  (float array -> unit) ->
  subscription

(** Sample packets matching [filter] roughly every [period] seconds (an
    upper bound: the actual rate depends on traffic, §III-A a). *)
val subscribe_probe :
  t ->
  seed_id:int ->
  filter:Filter.t ->
  period:float ->
  (Farm_net.Flow.packet -> unit) ->
  subscription

(** Plain periodic timer (the [time] trigger type). *)
val subscribe_time :
  t -> seed_id:int -> period:float -> (float -> unit) -> subscription

val set_period : t -> subscription -> float -> unit
val cancel : t -> subscription -> unit

(** {2 TCAM (monitoring region)} *)

val add_tcam_rule :
  t -> Farm_net.Tcam.rule -> (unit, [ `Full ]) result

val remove_tcam_rule : t -> pattern:Filter.t -> int
val get_tcam_rule : t -> pattern:Filter.t -> Farm_net.Tcam.installed option

(** {2 Counter fault injection}

    Hooks for [Farm_sim.Fault]'s counter faults.  While frozen, ASIC reads
    keep returning the per-subject snapshot taken at the first read after
    the freeze; thawing clears the snapshots.  A glitch corrupts the next
    [polls] ASIC reads with deterministic garbage (drawn from the soil's own
    rng, so runs stay reproducible). *)

val set_frozen : t -> bool -> unit
val is_frozen : t -> bool
val glitch : ?polls:int -> t -> unit

(** {2 Accounting} *)

val charge_cpu : t -> float -> unit
val cpu : t -> Cpu_model.usage

(** Offered CPU load since the last [reset_stats]. *)
val cpu_load : t -> window:float -> float

val cpu_accuracy : t -> window:float -> float

(** Bytes one hardware counter read moves over the PCIe bus. *)
val counter_record_bytes : float

type poll_stats = {
  requested : int;
  completed : int;
  dropped : int;
  pcie_bytes : float;
  asic_polls : int;  (** actual ASIC reads (< requested when aggregating) *)
}

val poll_stats : t -> poll_stats

(** Distribution of seed-observed poll delivery latency (ASIC read issue →
    seed handler), the Fig. 10 measurement. *)
val delivery_latency : t -> Farm_sim.Metrics.Histogram.t

val reset_stats : t -> unit

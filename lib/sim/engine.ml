type t = {
  mutable clock : float;
  queue : (t -> unit) Heap.t;
  root_rng : Rng.t;
  mutable dispatched : int;
}

type timer = {
  mutable period : float;
  mutable cancelled : bool;
  callback : t -> unit;
}

let create ?(seed = 42) () =
  { clock = 0.; queue = Heap.create (); root_rng = Rng.create seed;
    dispatched = 0 }

let now t = t.clock
let rng t = t.root_rng
let dispatched t = t.dispatched

let schedule_at t ~time f =
  if time < t.clock -. 1e-12 then
    invalid_arg
      (Printf.sprintf "Engine.schedule_at: time %g is in the past (now %g)"
         time t.clock);
  Heap.push t.queue ~time f

let schedule t ~delay f =
  if delay < 0. then invalid_arg "Engine.schedule: negative delay";
  schedule_at t ~time:(t.clock +. delay) f

let rec fire timer engine =
  if not timer.cancelled then begin
    timer.callback engine;
    if not timer.cancelled then
      schedule engine ~delay:timer.period (fire timer)
  end

let every t ~period ?phase f =
  if period <= 0. then invalid_arg "Engine.every: period must be positive";
  let timer = { period; cancelled = false; callback = f } in
  let phase = Option.value phase ~default:period in
  schedule t ~delay:phase (fire timer);
  timer

let cancel timer = timer.cancelled <- true

let set_period timer p =
  if p <= 0. then invalid_arg "Engine.set_period: period must be positive";
  timer.period <- p

let timer_period timer = timer.period

let run ?until t =
  let continue = ref true in
  while !continue do
    if Heap.is_empty t.queue then continue := false
    else
      let time = Heap.min_time_exn t.queue in
      match until with
      | Some u when time > u ->
          t.clock <- u;
          continue := false
      | Some _ | None ->
          let f = Heap.pop_min_exn t.queue in
          t.clock <- time;
          t.dispatched <- t.dispatched + 1;
          f t
  done;
  match until with
  | Some u when t.clock < u && Heap.is_empty t.queue -> t.clock <- u
  | Some _ | None -> ()
